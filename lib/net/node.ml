open Dessim

type t = {
  name : string;
  rx : Resource.t;
  ctl_rx : Resource.t;
  ops : Resource.t;
  mem : Resource.t;
  disk : Resource.t option;
  mutable disk_bytes : int;
  mutable rpcs : int;
  mutable bytes_in : int;
}

let create eng (p : Params.t) ~name ?(with_disk = false) () =
  {
    name;
    rx = Resource.create eng ~metric:"net.rx" ~rate:p.b_net ();
    ctl_rx = Resource.create eng ~metric:"net.ctl" ~rate:p.b_net ();
    ops = Resource.create eng ~metric:"srv.ops" ~rate:p.server_ops ();
    mem = Resource.create eng ~metric:"mem" ~rate:p.b_mem ();
    disk =
      (if with_disk then
         Some (Resource.create eng ~metric:"disk" ~rate:p.b_disk ())
       else None);
    disk_bytes = 0;
    rpcs = 0;
    bytes_in = 0;
  }

let name t = t.name
let rx t = t.rx
let ctl_rx t = t.ctl_rx
let ops t = t.ops
let mem t = t.mem

let disk t =
  match t.disk with
  | Some d -> d
  | None -> invalid_arg (t.name ^ ": node has no disk")

let has_disk t = Option.is_some t.disk

let disk_write t bytes =
  t.disk_bytes <- t.disk_bytes + bytes;
  Resource.consume (disk t) (float_of_int bytes)

let disk_bytes_written t = t.disk_bytes
let rpc_count t = t.rpcs
let incr_rpc t = t.rpcs <- t.rpcs + 1
let net_bytes_in t = t.bytes_in
let add_net_bytes t n = t.bytes_in <- t.bytes_in + n
