(** Simulated RPC transport (the CaRT/Mercury stand-in).

    The cost of an RPC to a server is exactly the paper's model: half an
    RTT of propagation, payload occupancy of the server's inbound NIC pipe
    (size / B_net, FIFO), one operation of the server's RPC processor
    (1 / OPS, FIFO — what bounds term ① of Eq. 1) and, for the reply,
    another half RTT plus payload occupancy of the caller's NIC.

    Each request runs its handler in a dedicated courier process, so a
    handler may block on simulated resources (a data server's write
    handler occupies the disk before replying) without stalling the
    server's other requests beyond the FIFO resources it holds.  A handler
    either calls [reply] before returning or stores it and fires it later
    (how lock servers defer grants during conflict resolution).  Deferred
    or not, the reply's network cost is charged when [reply] runs.

    One-way notifications ({!notify}) model the server→client callbacks of
    the lock protocol (revocations); they never block the sender. *)

type ('req, 'resp) endpoint

val endpoint :
  Dessim.Engine.t -> Params.t -> node:Node.t -> name:string ->
  handler:('req -> reply:('resp -> unit) -> unit) ->
  ('req, 'resp) endpoint
(** Register a service on [node].  [handler] is invoked after the
    request's transport + service costs have been paid. *)

val call :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  'req -> 'resp
(** Synchronous call from a process on [src]; blocks until the reply
    arrives.  Payload sizes default to [ctl_msg_bytes]. *)

val call_async :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  'req -> 'resp Dessim.Ivar.t
(** Like {!call} but returns immediately with the reply ivar; the request
    journey is modelled by a courier process. *)

val notify :
  ('req, unit) endpoint -> src:Node.t -> ?req_bytes:int -> 'req -> unit
(** Fire-and-forget message; transport and service costs are paid by a
    courier process, the caller continues immediately. *)

val calls : ('req, 'resp) endpoint -> int
(** Requests that reached the handler so far. *)

val name : ('req, 'resp) endpoint -> string
(** The service name the endpoint registered under (diagnostics). *)
