(** Simulated RPC transport (the CaRT/Mercury stand-in).

    The cost of an RPC to a server is exactly the paper's model: half an
    RTT of propagation, payload occupancy of the server's inbound NIC pipe
    (size / B_net, FIFO), one operation of the server's RPC processor
    (1 / OPS, FIFO — what bounds term ① of Eq. 1) and, for the reply,
    another half RTT plus payload occupancy of the caller's NIC.

    Each request runs its handler in a dedicated courier process, so a
    handler may block on simulated resources (a data server's write
    handler occupies the disk before replying) without stalling the
    server's other requests beyond the FIFO resources it holds.  A handler
    either calls [reply] before returning or stores it and fires it later
    (how lock servers defer grants during conflict resolution).  Deferred
    or not, the reply's network cost is charged when [reply] runs.

    One-way notifications ({!notify}) model the server→client callbacks of
    the lock protocol (revocations); they never block the sender. *)

type ('req, 'resp) endpoint

val endpoint :
  Dessim.Engine.t -> Params.t -> node:Node.t -> name:string ->
  handler:('req -> reply:('resp -> unit) -> unit) ->
  ('req, 'resp) endpoint
(** Register a service on [node].  [handler] is invoked after the
    request's transport + service costs have been paid. *)

val call :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  'req -> 'resp
(** Synchronous call from a process on [src]; blocks until the reply
    arrives.  Payload sizes default to [ctl_msg_bytes]. *)

val call_async :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  'req -> 'resp Dessim.Ivar.t
(** Like {!call} but returns immediately with the reply ivar; the request
    journey is modelled by a courier process. *)

val notify :
  ('req, unit) endpoint -> src:Node.t -> ?req_bytes:int -> 'req -> unit
(** Fire-and-forget message; transport and service costs are paid by a
    courier process, the caller continues immediately. *)

val calls : ('req, 'resp) endpoint -> int
(** Requests that reached the handler so far. *)

(** {1 Batching}

    Per-destination coalescing of the plain transport (DESIGN.md §13):
    with batching enabled, {!call}/{!call_async}/{!notify} messages queue
    at the caller side and ride one simulated message per flush.  A flush
    happens when [max_batch] messages have accumulated or [delay] seconds
    after the queue first went non-empty.  The batch courier pays half an
    RTT, NIC occupancy for the summed payload, and — the point of the
    exercise — a single RPC-processor operation for the whole batch.
    Messages are delivered strictly in enqueue order.  Fenced traffic
    ({!call_fenced}/{!call_reliable}) never batches: its loss, dup and
    fencing model is per-message. *)

val set_batching :
  ('req, 'resp) endpoint -> max_batch:int -> delay:float -> unit
(** Enable batching ([max_batch >= 1], [delay >= 0]).  Reconfiguring
    flushes anything pending first.  Registers an
    [rpc.batch.size.<name>] histogram; flushes emit [rpc.batch.flush]
    trace instants. *)

val clear_batching : ('req, 'resp) endpoint -> unit
(** Disable batching, flushing anything pending. *)

val set_batch_handler :
  ('req, 'resp) endpoint -> (('req * ('resp -> unit)) list -> unit) -> unit
(** Vectorized service entry: when installed, a flushed batch is handed
    to this function as one request vector (in enqueue order) instead of
    invoking the per-message handler n times.  The lock server uses this
    to amortize queue scans over the batch
    ({!Seqdlm.Lock_server.submit_batch}). *)

val name : ('req, 'resp) endpoint -> string
(** The service name the endpoint registered under (diagnostics). *)

(** {1 Fenced transport}

    The failover machinery (lib/ha) needs four things the plain paths
    above don't model: per-call timeouts with jittered-exponential-backoff
    retries, request-id-based at-most-once execution on the server,
    epoch fencing (a recovered server rejects requests — and clients
    discard replies — stamped with a fenced-off epoch), and injectable
    message loss/duplication.  All of it lives on separate entry points:
    {!call} and {!notify} are byte-for-byte unaffected. *)

type reliability = {
  rel_timeout : float;      (** per-attempt reply deadline, seconds *)
  rel_base_backoff : float; (** first retry delay; doubles per attempt *)
  rel_max_backoff : float;  (** backoff cap *)
}

val reliability_for : Params.t -> reliability
(** Retry policy scaled to the cluster's RTT (40/4/200 RTTs). *)

type 'resp attempt =
  | Reply of 'resp * int  (** response + the server epoch that served it *)
  | Stale of int  (** fenced: the request's epoch predates the server's *)
  | Timeout  (** no reply within the deadline (lost, crashed, or slow) *)

(** Caller-side epoch knowledge (per endpoint name), request-id allocation
    and retry accounting — one per client.  Epochs only move forward. *)
module View : sig
  type t

  val create : ?salt:int -> unit -> t
  (** [salt] partitions the request-id space between callers, so ids are
      unique per endpoint across the cluster. *)

  val epoch : t -> string -> int
  val observe : t -> string -> int -> unit
  (** Raise the view of [name] to [e] (never lowers it). *)

  val fresh_req_id : t -> int
  val retries : t -> int
end

val call_fenced :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  ?timeout:float -> epoch:int -> ?req_id:int -> 'req -> 'resp attempt
(** One fenced attempt.  Deliveries to a down (or reset-since-send)
    endpoint are dropped — the caller sees {!Timeout} (or blocks forever
    without [timeout]).  [req_id] enables at-most-once dedup: a repeated
    id never re-runs the handler, it replays or awaits the stored reply. *)

val call_reliable :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int -> ?resp_bytes:int ->
  ?reliability:reliability -> view:View.t -> 'req -> 'resp
(** Retry {!call_fenced} under one request id until a same-or-newer-epoch
    reply arrives, observing epoch bumps into [view] and sleeping a
    jittered exponential backoff between attempts ({!Engine.random_float},
    so retries are deterministic).  Without [reliability] each attempt
    waits forever — equivalent to {!call} plus fencing and dedup. *)

val send_reliable :
  ('req, 'resp) endpoint -> src:Node.t -> ?req_bytes:int ->
  ?reliability:reliability -> view:View.t -> 'req -> unit
(** Fire-and-forget {!call_reliable} from a courier process: the caller
    continues immediately, the courier retries until the message is
    acknowledged.  The reliable replacement for {!notify} — control
    messages (releases, revoke acks) must survive a server outage. *)

val set_down : ('req, 'resp) endpoint -> bool -> unit
val is_down : ('req, 'resp) endpoint -> bool

val set_epoch : ('req, 'resp) endpoint -> int -> unit
(** Install the serving epoch: fenced requests stamped with an older epoch
    are rejected with {!Stale}, and replies carry this value. *)

val epoch : ('req, 'resp) endpoint -> int

val reset : ('req, 'resp) endpoint -> unit
(** Model a crash of the hosting service: in-flight fenced requests to the
    old incarnation are dropped at delivery and the at-most-once table —
    volatile memory — is cleared. *)

val set_dedup_cap : ('req, 'resp) endpoint -> int -> unit
(** Bound the at-most-once table to [cap] request ids (default 4096).
    Oldest *completed* entries are evicted first; entries whose handler
    has not replied yet are never evicted.  Replay of any id newer than
    the oldest retained one is still deduplicated — the retention
    window.  @raise Invalid_argument if [cap < 1]. *)

val set_fault :
  ('req, 'resp) endpoint -> loss:float -> dup:float -> rng:(unit -> float) ->
  unit
(** Drop ([loss]) or duplicate ([dup]) fenced requests, and drop fenced
    replies, with the given probabilities; [rng] must be deterministic
    (a seeded {!Ccpfs_util.Det_random} draw).  Plain [call]/[notify]
    traffic is never faulted — nothing would retransmit it.
    @raise Invalid_argument if a rate is outside [0,1]. *)

val clear_fault : ('req, 'resp) endpoint -> unit
