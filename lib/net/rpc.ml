open Dessim

type ('req, 'resp) endpoint = {
  eng : Engine.t;
  params : Params.t;
  node : Node.t;
  name : string;
  handler : 'req -> reply:('resp -> unit) -> unit;
  mutable count : int;
  latency : Obs.Metrics.histogram; (* caller-observed call round trip *)
}

let endpoint eng params ~node ~name ~handler =
  let latency =
    Obs.Metrics.histogram (Engine.metrics eng) ("rpc.latency." ^ name)
  in
  { eng; params; node; name; handler; count = 0; latency }

(* Request journey, run in the context of some process: propagation, then
   the server's NIC pipe, then its RPC processor. *)
let pipe_for node params bytes =
  if bytes > params.Params.bulk_threshold then Node.rx node
  else Node.ctl_rx node

let inbound t bytes =
  Engine.sleep t.eng (t.params.Params.rtt /. 2.);
  Node.add_net_bytes t.node bytes;
  Resource.consume (pipe_for t.node t.params bytes) (float_of_int bytes);
  Resource.consume (Node.ops t.node) 1.;
  Node.incr_rpc t.node;
  t.count <- t.count + 1

(* A request/notification span covering transport + the handler's
   synchronous part, on the courier process's own tid.  The deferred tail
   of a handler (a lock server parking [reply] until conflicts resolve)
   is deliberately outside: that wait shows up as the lock-lifecycle
   events instead. *)
let serve_span t kind bytes f =
  let sink = Engine.trace_sink t.eng in
  if not (Obs.Trace.enabled sink) then f ()
  else begin
    let tid = Engine.current_pid t.eng in
    Obs.Trace.begin_span sink ~ts:(Engine.now t.eng) ~tid ~cat:"rpc"
      ~args:[ ("bytes", Obs.Json.Int bytes) ]
      (kind ^ ":" ^ t.name);
    match f () with
    | v ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid (kind ^ ":" ^ t.name);
        v
    | exception e ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid (kind ^ ":" ^ t.name);
        raise e
  end

(* Reply journey: a courier carries it back to [src] and fills the ivar. *)
let reply_courier t ~src ~resp_bytes ivar resp =
  Engine.spawn t.eng ~name:(t.name ^ ".reply")
    (fun () ->
      Engine.sleep t.eng (t.params.Params.rtt /. 2.);
      Node.add_net_bytes src resp_bytes;
      Resource.consume (pipe_for src t.params resp_bytes) (float_of_int resp_bytes);
      Ivar.fill ivar resp)

let call_async t ~src ?req_bytes ?resp_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  let resp_bytes =
    Option.value resp_bytes ~default:t.params.Params.ctl_msg_bytes
  in
  let ivar = Ivar.create t.eng in
  Engine.spawn t.eng ~name:(t.name ^ ".req")
    (fun () ->
      serve_span t "serve" req_bytes (fun () ->
          inbound t req_bytes;
          t.handler req ~reply:(fun resp ->
              reply_courier t ~src ~resp_bytes ivar resp)));
  ivar

let call t ~src ?req_bytes ?resp_bytes req =
  let sink = Engine.trace_sink t.eng in
  let t0 = Engine.now t.eng in
  let traced = Obs.Trace.enabled sink in
  let tid = if traced then Engine.current_pid t.eng else 0 in
  if traced then
    Obs.Trace.begin_span sink ~ts:t0 ~tid ~cat:"rpc" ("call:" ^ t.name);
  let finish () =
    let now = Engine.now t.eng in
    Obs.Metrics.observe t.latency (now -. t0);
    if traced then Obs.Trace.end_span sink ~ts:now ~tid ("call:" ^ t.name)
  in
  match
    Ivar.read ~ctx:("rpc:" ^ t.name) (call_async t ~src ?req_bytes ?resp_bytes req)
  with
  | resp ->
      finish ();
      resp
  | exception e ->
      finish ();
      raise e

let notify t ~src ?req_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  ignore src;
  Engine.spawn t.eng ~name:(t.name ^ ".notify")
    (fun () ->
      serve_span t "notify" req_bytes (fun () ->
          inbound t req_bytes;
          t.handler req ~reply:(fun () -> ())))

let calls t = t.count
let name t = t.name
