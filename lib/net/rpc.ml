open Dessim

type ('req, 'resp) endpoint = {
  eng : Engine.t;
  params : Params.t;
  node : Node.t;
  name : string;
  handler : 'req -> reply:('resp -> unit) -> unit;
  mutable count : int;
}

let endpoint eng params ~node ~name ~handler =
  { eng; params; node; name; handler; count = 0 }

(* Request journey, run in the context of some process: propagation, then
   the server's NIC pipe, then its RPC processor. *)
let pipe_for node params bytes =
  if bytes > params.Params.bulk_threshold then Node.rx node
  else Node.ctl_rx node

let inbound t bytes =
  Engine.sleep t.eng (t.params.Params.rtt /. 2.);
  Node.add_net_bytes t.node bytes;
  Resource.consume (pipe_for t.node t.params bytes) (float_of_int bytes);
  Resource.consume (Node.ops t.node) 1.;
  Node.incr_rpc t.node;
  t.count <- t.count + 1

(* Reply journey: a courier carries it back to [src] and fills the ivar. *)
let reply_courier t ~src ~resp_bytes ivar resp =
  Engine.spawn t.eng ~name:(t.name ^ ".reply")
    (fun () ->
      Engine.sleep t.eng (t.params.Params.rtt /. 2.);
      Node.add_net_bytes src resp_bytes;
      Resource.consume (pipe_for src t.params resp_bytes) (float_of_int resp_bytes);
      Ivar.fill ivar resp)

let call_async t ~src ?req_bytes ?resp_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  let resp_bytes =
    Option.value resp_bytes ~default:t.params.Params.ctl_msg_bytes
  in
  let ivar = Ivar.create t.eng in
  Engine.spawn t.eng ~name:(t.name ^ ".req")
    (fun () ->
      inbound t req_bytes;
      t.handler req ~reply:(fun resp ->
          reply_courier t ~src ~resp_bytes ivar resp));
  ivar

let call t ~src ?req_bytes ?resp_bytes req =
  Ivar.read ~ctx:("rpc:" ^ t.name) (call_async t ~src ?req_bytes ?resp_bytes req)

let notify t ~src ?req_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  ignore src;
  Engine.spawn t.eng ~name:(t.name ^ ".notify")
    (fun () ->
      inbound t req_bytes;
      t.handler req ~reply:(fun () -> ()))

let calls t = t.count
