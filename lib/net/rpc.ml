open Dessim

type reliability = {
  rel_timeout : float;
  rel_base_backoff : float;
  rel_max_backoff : float;
}

let reliability_for (p : Params.t) =
  {
    rel_timeout = 40. *. p.Params.rtt;
    rel_base_backoff = 4. *. p.Params.rtt;
    rel_max_backoff = 200. *. p.Params.rtt;
  }

type 'resp attempt = Reply of 'resp * int | Stale of int | Timeout

type fault = { f_loss : float; f_dup : float; f_rng : unit -> float }

(* At-most-once bookkeeping: the first delivery of a request id runs the
   handler; retried or duplicated deliveries either replay the stored
   result or park a reply sender until the (possibly deferred) handler
   reply fires. *)
type 'resp dedup_entry = {
  mutable de_result : 'resp option;
  mutable de_pending : ('resp -> unit) list;
}

(* Per-endpoint request coalescing (the transport half of the batching
   design, DESIGN.md §13): plain calls/notifications destined for this
   endpoint queue here and ride one simulated message, flushed when
   [b_max] messages have accumulated or [b_delay] elapses since the
   queue went non-empty.  Fenced traffic never batches — the loss/dup/
   fencing model is per-message. *)
type ('req, 'resp) batch = {
  b_max : int;
  b_delay : float;
  mutable b_items : ('req * int * ('resp -> unit)) list; (* reversed *)
  mutable b_armed : bool; (* a delay-timer flush is pending *)
  b_size : Obs.Metrics.histogram; (* rpc.batch.size.<name> *)
}

type ('req, 'resp) endpoint = {
  eng : Engine.t;
  params : Params.t;
  node : Node.t;
  name : string;
  handler : 'req -> reply:('resp -> unit) -> unit;
  mutable count : int;
  latency : Obs.Metrics.histogram; (* caller-observed call round trip *)
  mutable epoch : int; (* membership epoch stamped on fenced replies *)
  mutable down : bool; (* crashed: fenced deliveries are dropped *)
  mutable incarnation : int; (* bumped by [reset]: cuts in-flight requests *)
  dedup : (int, 'resp dedup_entry) Hashtbl.t;
  dedup_order : int Queue.t; (* dedup insertion order, for FIFO pruning *)
  mutable dedup_cap : int;
  mutable fault : fault option; (* loss/duplication, fenced traffic only *)
  retry_counter : Obs.Metrics.counter;
  mutable batch : ('req, 'resp) batch option;
  mutable batch_handler : (('req * ('resp -> unit)) list -> unit) option;
}

(* A client's knowledge of server epochs, plus its request-id allocator
   and retry accounting.  Lives on the caller side so the DLM layer never
   depends on the HA layer: recovery bumps a view through the gather RPC,
   and the retry loop discards replies stamped with an older epoch. *)
module View = struct
  type t = {
    epochs : (string, int) Hashtbl.t;
    salt : int;
    mutable next_req : int;
    mutable retries : int;
  }

  let create ?(salt = 0) () =
    { epochs = Hashtbl.create 8; salt; next_req = 0; retries = 0 }

  let epoch t name =
    match Hashtbl.find_opt t.epochs name with Some e -> e | None -> 0

  let observe t name e = if e > epoch t name then Hashtbl.replace t.epochs name e

  let fresh_req_id t =
    t.next_req <- t.next_req + 1;
    (t.salt * 0x4000_0000) + t.next_req

  let retries t = t.retries
  let note_retry t = t.retries <- t.retries + 1
end

(* Bounded at-most-once retention: keep at most [dedup_cap] request ids,
   dropping the oldest *completed* entries first.  An entry whose handler
   has not replied yet is never dropped (its parked reply senders must
   fire), so the table is bounded by cap + in-flight handlers. *)
let default_dedup_cap = 4096

let endpoint eng params ~node ~name ~handler =
  let latency =
    Obs.Metrics.histogram (Engine.metrics eng) ("rpc.latency." ^ name)
  in
  let retry_counter = Obs.Metrics.counter (Engine.metrics eng) "rpc.retry" in
  { eng; params; node; name; handler; count = 0; latency; epoch = 0;
    down = false; incarnation = 0; dedup = Hashtbl.create 64;
    dedup_order = Queue.create (); dedup_cap = default_dedup_cap;
    fault = None; retry_counter; batch = None; batch_handler = None }

(* Request journey, run in the context of some process: propagation, then
   the server's NIC pipe, then its RPC processor. *)
let pipe_for node params bytes =
  if bytes > params.Params.bulk_threshold then Node.rx node
  else Node.ctl_rx node

let inbound t bytes =
  Engine.sleep t.eng (t.params.Params.rtt /. 2.);
  Node.add_net_bytes t.node bytes;
  Resource.consume (pipe_for t.node t.params bytes) (float_of_int bytes);
  Resource.consume (Node.ops t.node) 1.;
  Node.incr_rpc t.node;
  t.count <- t.count + 1

(* A request/notification span covering transport + the handler's
   synchronous part, on the courier process's own tid.  The deferred tail
   of a handler (a lock server parking [reply] until conflicts resolve)
   is deliberately outside: that wait shows up as the lock-lifecycle
   events instead. *)
let serve_span t kind bytes f =
  let sink = Engine.trace_sink t.eng in
  if not (Obs.Trace.enabled sink) then f ()
  else begin
    let tid = Engine.current_pid t.eng in
    Obs.Trace.begin_span sink ~ts:(Engine.now t.eng) ~tid ~cat:"rpc"
      ~args:[ ("bytes", Obs.Json.Int bytes) ]
      (kind ^ ":" ^ t.name);
    match f () with
    | v ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid (kind ^ ":" ^ t.name);
        v
    | exception e ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid (kind ^ ":" ^ t.name);
        raise e
  end

(* Reply journey: a courier carries it back to [src] and fills the ivar. *)
let reply_courier t ~src ~resp_bytes ivar resp =
  Engine.spawn t.eng ~name:(t.name ^ ".reply")
    (fun () ->
      Engine.sleep t.eng (t.params.Params.rtt /. 2.);
      Node.add_net_bytes src resp_bytes;
      Resource.consume (pipe_for src t.params resp_bytes) (float_of_int resp_bytes);
      Ivar.fill ivar resp)

(* Deliver a flushed batch: one courier pays propagation once, the NIC
   pipe for the summed payload, and a single RPC-processor operation
   amortized over the whole batch (the Eq. 1 term-① win batching buys).
   Messages are then served strictly in enqueue order — through the
   vectorized batch handler when one is installed, else one handler call
   per message. *)
let flush_batch t b cause =
  match List.rev b.b_items with
  | [] -> ()
  | items ->
      b.b_items <- [];
      let n = List.length items in
      let bytes = List.fold_left (fun a (_, by, _) -> a + by) 0 items in
      Obs.Metrics.observe b.b_size (float_of_int n);
      Engine.spawn t.eng ~name:(t.name ^ ".batch")
        (fun () ->
          serve_span t "batch" bytes (fun () ->
              Engine.sleep t.eng (t.params.Params.rtt /. 2.);
              Node.add_net_bytes t.node bytes;
              Resource.consume (pipe_for t.node t.params bytes)
                (float_of_int bytes);
              Resource.consume (Node.ops t.node) 1.;
              List.iter (fun _ -> Node.incr_rpc t.node) items;
              t.count <- t.count + n;
              let sink = Engine.trace_sink t.eng in
              if Obs.Trace.enabled sink then
                Obs.Trace.instant sink ~ts:(Engine.now t.eng)
                  ~tid:(Engine.current_pid t.eng) ~cat:"rpc"
                  ~args:
                    [ ("endpoint", Obs.Json.Str t.name);
                      ("n", Obs.Json.Int n); ("bytes", Obs.Json.Int bytes);
                      ("cause", Obs.Json.Str cause) ]
                  "rpc.batch.flush";
              match t.batch_handler with
              | Some bh -> bh (List.map (fun (r, _, rep) -> (r, rep)) items)
              | None ->
                  List.iter (fun (r, _, rep) -> t.handler r ~reply:rep) items))

(* Queue a message on the batch; flush immediately on reaching b_max,
   else make sure a delay-timer flush is armed.  The timer event keeps
   the engine's heap non-empty while messages wait, so a caller blocked
   on a batched reply can never deadlock the run loop. *)
let enqueue_batch t b ~bytes ~reply req =
  b.b_items <- (req, bytes, reply) :: b.b_items;
  if List.length b.b_items >= b.b_max then flush_batch t b "size"
  else if not b.b_armed then begin
    b.b_armed <- true;
    Engine.schedule t.eng ~delay:b.b_delay (fun () ->
        b.b_armed <- false;
        flush_batch t b "timer")
  end

let set_batching t ~max_batch ~delay =
  if max_batch < 1 || delay < 0. then
    invalid_arg "Rpc.set_batching: max_batch must be >= 1, delay >= 0";
  (match t.batch with Some b -> flush_batch t b "reconfig" | None -> ());
  let b_size =
    Obs.Metrics.histogram (Engine.metrics t.eng) ("rpc.batch.size." ^ t.name)
  in
  t.batch <-
    Some { b_max = max_batch; b_delay = delay; b_items = []; b_armed = false;
           b_size }

let clear_batching t =
  match t.batch with
  | None -> ()
  | Some b ->
      flush_batch t b "reconfig";
      t.batch <- None

let set_batch_handler t bh = t.batch_handler <- Some bh

let call_async t ~src ?req_bytes ?resp_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  let resp_bytes =
    Option.value resp_bytes ~default:t.params.Params.ctl_msg_bytes
  in
  let ivar = Ivar.create t.eng in
  (match t.batch with
  | Some b ->
      enqueue_batch t b ~bytes:req_bytes
        ~reply:(fun resp -> reply_courier t ~src ~resp_bytes ivar resp)
        req
  | None ->
      Engine.spawn t.eng ~name:(t.name ^ ".req")
        (fun () ->
          serve_span t "serve" req_bytes (fun () ->
              inbound t req_bytes;
              t.handler req ~reply:(fun resp ->
                  reply_courier t ~src ~resp_bytes ivar resp))));
  ivar

let call t ~src ?req_bytes ?resp_bytes req =
  let sink = Engine.trace_sink t.eng in
  let t0 = Engine.now t.eng in
  let traced = Obs.Trace.enabled sink in
  let tid = if traced then Engine.current_pid t.eng else 0 in
  if traced then
    Obs.Trace.begin_span sink ~ts:t0 ~tid ~cat:"rpc" ("call:" ^ t.name);
  let finish () =
    let now = Engine.now t.eng in
    Obs.Metrics.observe t.latency (now -. t0);
    if traced then Obs.Trace.end_span sink ~ts:now ~tid ("call:" ^ t.name)
  in
  match
    Ivar.read ~ctx:("rpc:" ^ t.name) (call_async t ~src ?req_bytes ?resp_bytes req)
  with
  | resp ->
      finish ();
      resp
  | exception e ->
      finish ();
      raise e

let notify t ~src ?req_bytes req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  ignore src;
  match t.batch with
  | Some b -> enqueue_batch t b ~bytes:req_bytes ~reply:(fun () -> ()) req
  | None ->
      Engine.spawn t.eng ~name:(t.name ^ ".notify")
        (fun () ->
          serve_span t "notify" req_bytes (fun () ->
              inbound t req_bytes;
              t.handler req ~reply:(fun () -> ())))

let calls t = t.count
let name t = t.name

(* ------------------------------------------------------------------ *)
(* Fenced transport: epoch checks, at-most-once dedup, crash fencing   *)
(* and fault injection.  The plain [call]/[notify] paths above are     *)
(* deliberately untouched — fenced semantics only apply where the HA   *)
(* layer asked for them.                                               *)
(* ------------------------------------------------------------------ *)

let set_down t down = t.down <- down
let is_down t = t.down
let set_epoch t e = t.epoch <- e
let epoch t = t.epoch

let reset t =
  (* A crash cuts the wires: in-flight requests addressed to the old
     incarnation are dropped at delivery, and the dedup table — volatile
     server memory — is lost with everything else. *)
  t.incarnation <- t.incarnation + 1;
  Hashtbl.reset t.dedup;
  Queue.clear t.dedup_order

let set_dedup_cap t cap =
  if cap < 1 then invalid_arg "Rpc.set_dedup_cap: cap must be >= 1";
  t.dedup_cap <- cap

(* Evict oldest completed dedup entries once over cap.  Pruning stops at
   the first still-pending entry: its parked reply senders must fire, and
   FIFO retention keeps the guarantee simple — everything newer than the
   oldest retained id is still deduplicated. *)
let prune_dedup t =
  let continue = ref true in
  while !continue && Hashtbl.length t.dedup > t.dedup_cap do
    match Queue.peek_opt t.dedup_order with
    | None -> continue := false
    | Some oldest -> (
        match Hashtbl.find_opt t.dedup oldest with
        | Some e when e.de_result = None -> continue := false
        | _ ->
            ignore (Queue.pop t.dedup_order);
            Hashtbl.remove t.dedup oldest)
  done

let set_fault t ~loss ~dup ~rng =
  if loss < 0. || loss > 1. || dup < 0. || dup > 1. then
    invalid_arg "Rpc.set_fault: rates must be in [0,1]";
  t.fault <- Some { f_loss = loss; f_dup = dup; f_rng = rng }

let clear_fault t = t.fault <- None

(* Reply leg of a fenced call; drops the message instead of filling the
   ivar when the fault plane loses it, and tolerates duplicate arrivals
   (the ivar is first-writer-wins). *)
let reply_fenced t ~src ~resp_bytes ivar outcome =
  Engine.spawn t.eng ~name:(t.name ^ ".reply")
    (fun () ->
      Engine.sleep t.eng (t.params.Params.rtt /. 2.);
      let lost =
        match t.fault with
        | Some f -> f.f_rng () < f.f_loss
        | None -> false
      in
      if not lost then begin
        Node.add_net_bytes src resp_bytes;
        Resource.consume (pipe_for src t.params resp_bytes)
          (float_of_int resp_bytes);
        if not (Ivar.is_filled ivar) then Ivar.fill ivar outcome
      end)

(* One physical delivery of a fenced request.  Runs in a courier process:
   propagation, then — only if the server is still the same live
   incarnation — NIC + service costs, the epoch fence, and dedup. *)
let deliver_fenced t ~src ~req_bytes ~resp_bytes ~epoch:req_epoch ~req_id ~inc
    ivar req =
  Engine.sleep t.eng (t.params.Params.rtt /. 2.);
  if not (t.down || inc <> t.incarnation) then begin
    Node.add_net_bytes t.node req_bytes;
    Resource.consume (pipe_for t.node t.params req_bytes)
      (float_of_int req_bytes);
    Resource.consume (Node.ops t.node) 1.;
    (* The server may have crashed while the request sat in its NIC/ops
       queues; a dead incarnation must not run handlers. *)
    if not (t.down || inc <> t.incarnation) then begin
      Node.incr_rpc t.node;
      t.count <- t.count + 1;
      let send resp = reply_fenced t ~src ~resp_bytes ivar resp in
      if req_epoch < t.epoch then send (Stale t.epoch)
      else
        let send_reply resp = send (Reply (resp, t.epoch)) in
        match req_id with
        | None -> t.handler req ~reply:send_reply
        | Some id -> (
            match Hashtbl.find_opt t.dedup id with
            | Some e -> (
                (* Retransmission (or duplicate) of a request we already
                   accepted: never re-run the handler. *)
                match e.de_result with
                | Some resp -> send_reply resp
                | None -> e.de_pending <- send_reply :: e.de_pending)
            | None ->
                let e = { de_result = None; de_pending = [ send_reply ] } in
                Hashtbl.add t.dedup id e;
                Queue.push id t.dedup_order;
                prune_dedup t;
                t.handler req ~reply:(fun resp ->
                    match e.de_result with
                    | Some _ -> () (* handler double-reply: keep the first *)
                    | None ->
                        e.de_result <- Some resp;
                        let ps = List.rev e.de_pending in
                        e.de_pending <- [];
                        List.iter (fun send -> send resp) ps))
    end
  end

let call_fenced t ~src ?req_bytes ?resp_bytes ?timeout ~epoch:req_epoch ?req_id
    req =
  let req_bytes = Option.value req_bytes ~default:t.params.Params.ctl_msg_bytes in
  let resp_bytes =
    Option.value resp_bytes ~default:t.params.Params.ctl_msg_bytes
  in
  let ivar = Ivar.create t.eng in
  let inc = t.incarnation in
  let copies =
    match t.fault with
    | None -> 1
    | Some f ->
        let base = if f.f_rng () < f.f_loss then 0 else 1 in
        let extra = if f.f_rng () < f.f_dup then 1 else 0 in
        base + extra
  in
  for _ = 1 to copies do
    Engine.spawn t.eng ~name:(t.name ^ ".req")
      (fun () ->
        serve_span t "serve" req_bytes (fun () ->
            deliver_fenced t ~src ~req_bytes ~resp_bytes ~epoch:req_epoch
              ~req_id ~inc ivar req))
  done;
  match timeout with
  | None -> Ivar.read ~ctx:("rpc:" ^ t.name) ivar
  | Some d -> (
      match Ivar.read_timeout ~ctx:("rpc:" ^ t.name) ivar ~timeout:d with
      | Some outcome -> outcome
      | None -> Timeout)

let note_retry t view ~attempt =
  Obs.Metrics.incr t.retry_counter;
  View.note_retry view;
  let sink = Engine.trace_sink t.eng in
  if Obs.Trace.enabled sink then
    Obs.Trace.instant sink ~ts:(Engine.now t.eng)
      ~tid:(Engine.current_pid t.eng) ~cat:"rpc"
      ~args:[ ("endpoint", Obs.Json.Str t.name); ("attempt", Obs.Json.Int attempt) ]
      "rpc.retry"

let call_reliable t ~src ?req_bytes ?resp_bytes ?reliability ~view req =
  let req_id = View.fresh_req_id view in
  let timeout = Option.map (fun r -> r.rel_timeout) reliability in
  let rec attempt k backoff =
    let req_epoch = View.epoch view t.name in
    let outcome =
      call_fenced t ~src ?req_bytes ?resp_bytes ?timeout ~epoch:req_epoch
        ~req_id req
    in
    let retry () =
      note_retry t view ~attempt:(k + 1);
      (match reliability with
      | None -> ()
      | Some _ ->
          (* Jittered exponential backoff; the jitter draw comes from the
             engine's deterministic stream. *)
          Engine.sleep t.eng
            (backoff +. Engine.random_float t.eng (backoff /. 2.)));
      (* Clamp the accumulator itself, not just the drawn delay: a long
         outage doubles it once per attempt, and an unclamped float
         marches toward infinity (and loses the plateau if the cap is
         ever applied after jitter). *)
      let next =
        match reliability with
        | None -> backoff
        | Some rel -> Float.min (backoff *. 2.) rel.rel_max_backoff
      in
      attempt (k + 1) next
    in
    match outcome with
    | Reply (resp, e) when e >= View.epoch view t.name ->
        View.observe view t.name e;
        resp
    | Reply _ ->
        (* A grant from a fenced-off epoch arrived after we learned of the
           recovery: discard it and re-submit against the new epoch. *)
        retry ()
    | Stale e ->
        View.observe view t.name e;
        retry ()
    | Timeout -> retry ()
  in
  attempt 0
    (match reliability with Some r -> r.rel_base_backoff | None -> 0.)

let send_reliable t ~src ?req_bytes ?reliability ~view req =
  Engine.spawn t.eng ~name:(t.name ^ ".send")
    (fun () ->
      ignore (call_reliable t ~src ?req_bytes ?reliability ~view req))
