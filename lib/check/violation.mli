(** The sanitizer's verdict type.

    Every checker in this library reports a broken invariant by raising
    {!Violation} with the invariant's name and a human-readable account of
    the offending state.  Deliberately not [Assert_failure]: a violation
    names what was violated, so a failing chaos run or schedule
    exploration prints a protocol-level diagnosis instead of a source
    location. *)

type t = { inv : string; detail : string }

exception Violation of t

val fail : inv:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail ~inv fmt ...] raises {!Violation} with a formatted detail. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
