type t = { inv : string; detail : string }

exception Violation of t

let fail ~inv fmt =
  Format.kasprintf (fun detail -> raise (Violation { inv; detail })) fmt

let pp ppf v = Format.fprintf ppf "invariant [%s] violated: %s" v.inv v.detail
let to_string v = Format.asprintf "%a" pp v

let () =
  Printexc.register_printer (function
    | Violation v -> Some (to_string v)
    | _ -> None)
