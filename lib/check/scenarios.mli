(** Canonical scenarios for the schedule explorer.

    Three clients contend for overlapping NBW locks on one resource
    (flush in flight, revocations, early grants — the §III-A machinery).
    A full symmetric start makes the tie tree astronomically large, so
    coverage is factored: {!arrival_orders} enumerates every order in
    which the three requests can be issued, and for each order
    {!Explore.run} exhausts every same-timestamp tie the protocol
    produces downstream (callback races, ack/release ties).  Invariants
    are asserted after every schedule. *)

val three_client_contention : perm:int array -> (int -> int) -> unit
(** One scenario instance; [perm.(i)] is client [i]'s issue slot.  Pass
    to {!Explore.run}.  Raises {!Violation.Violation} if a schedule ends
    in bad lock-server state or a starved writer. *)

val arrival_orders : int array list
(** All 6 permutations of three issue slots. *)

val explore_contention : ?max_schedules:int -> unit -> Explore.result
(** Explore every arrival order exhaustively; [schedules] accumulates
    across orders, [complete] says all six trees were exhausted. *)
