(** The determinism checker.

    The whole experimental methodology rests on the simulator being a
    deterministic function of its inputs.  [check ~name run] executes
    [run] twice — each call must build a fresh world and return its
    engine after running it — and compares the FNV-1a fingerprints of the
    two event streams (dispatch time, process id, process name, per
    event).  Any divergence (hidden global state, hash-order dependence,
    wall-clock leakage) raises {!Violation.Violation}. *)

open Dessim

val check : name:string -> (unit -> Engine.t) -> int64
(** Returns the (common) fingerprint on success. *)
