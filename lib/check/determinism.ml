open Dessim

let fingerprint run =
  let eng = run () in
  Engine.fingerprint eng

let check ~name run =
  let fp1 = fingerprint run in
  let fp2 = fingerprint run in
  if not (Int64.equal fp1 fp2) then
    Violation.fail ~inv:"determinism"
      "scenario %s diverged between identical runs: event-stream \
       fingerprints %Lx vs %Lx"
      name fp1 fp2;
  fp1
