(** An independent transcription of the paper's Table II.

    The invariant checker must not trust [Seqdlm.Lcm] — a bug injected
    into the production compatibility matrix would then be invisible to
    the sanitizer.  This module hand-enumerates all 32 (req, granted,
    state) cells with no shared code, and the checker judges lock-server
    state against it. *)

open Seqdlm

val compatible : req:Mode.t -> granted:Mode.t -> state:Lcm.lock_state -> bool

val all_modes : Mode.t list
val all_states : Lcm.lock_state list

val cross_check : unit -> unit
(** Compare [Lcm.compatible] against this table over every cell; raises
    {!Violation.Violation} on the first divergence. *)
