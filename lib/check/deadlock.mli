(** Wait-for-graph deadlock analysis.

    When a simulation stalls, [Dessim.Engine] can only say which
    processes are blocked.  This module reconstructs {e why} from the
    lock servers' state at quiescence: an edge [c1 -> c2] means client
    [c1] has a queued request that conflicts with a lock client [c2]
    holds, and a cycle among the edges is a lock-order deadlock (e.g. the
    BW multi-resource atomic-write ordering violations of §III-B1). *)

open Dessim
open Seqdlm

type edge = {
  e_waiter : Types.client_id;
  e_holder : Types.client_id;
  e_rid : Types.resource_id;
  e_wait_mode : Mode.t;  (** effective (post-conversion) requested mode *)
  e_hold_mode : Mode.t;
  e_hold_state : Lcm.lock_state;
  e_wait_ranges : Ccpfs_util.Interval.t list;
  e_hold_ranges : Ccpfs_util.Interval.t list;
}

type report = {
  edges : edge list;
  cycles : Types.client_id list list;
      (** each cycle rotated to start at its smallest client id *)
  blocked : Engine.blocked_proc list;
}

exception Deadlock_found of report

val analyze :
  servers:Lock_server.t list -> blocked:Engine.blocked_proc list -> report

val find_cycles : edge list -> Types.client_id list list
(** The cycle enumeration [analyze] runs on its edge set: every directed
    cycle in the wait-for graph, each rotated to start at its smallest
    client id, in a deterministic order.  Exposed so the determinism
    regression tests can drive it on synthetic graphs. *)

val pp_edge : Format.formatter -> edge -> unit
val pp : Format.formatter -> report -> unit
val to_string : report -> string
