open Dessim
open Ccpfs

let invariants_on = ref false
let determinism_on = ref false

let () =
  match Sys.getenv_opt "CCPFS_CHECK" with
  | Some ("full" | "all") ->
      invariants_on := true;
      determinism_on := true
  | Some ("0" | "off" | "") | None -> ()
  | Some _ -> invariants_on := true

let enable_invariants () = invariants_on := true

let enable_all () =
  invariants_on := true;
  determinism_on := true

let enabled () = !invariants_on
let determinism_enabled () = !determinism_on

let servers cl = List.init (Cluster.n_servers cl) (Cluster.lock_server cl)

let attach_server srv =
  Seqdlm.Lock_server.set_validator srv Invariant.check_server;
  Invariant.monitor_sn srv

let attach_cluster cl =
  List.iter attach_server (servers cl);
  for i = 0 to Cluster.n_clients cl - 1 do
    let c = Cluster.client cl i in
    let lock_client = Client.lock_client c and cache = Client.cache c in
    Client_cache.set_audit cache (fun ~rid ->
        Invariant.check_client_rid ~lock_client ~cache rid)
  done

(* Ownership exclusivity (DESIGN.md §15): live lock state for a resource
   may exist only on the server the shard map currently names as its
   owner.  Residual empty rstates (everything released or migrated away)
   are allowed — only grants or queued waiters on a non-owner are a
   violation. *)
let check_ownership cl =
  List.iteri
    (fun i srv ->
      List.iter
        (fun rid ->
          if
            (Seqdlm.Lock_server.granted_locks srv rid <> []
            || Seqdlm.Lock_server.queue_length srv rid > 0)
            && Cluster.server_of_rid cl rid <> i
          then
            Violation.fail ~inv:"shard-ownership"
              "ls%d holds live state for r%d owned by ls%d" i rid
              (Cluster.server_of_rid cl rid))
        (Seqdlm.Lock_server.resource_ids srv))
    (servers cl)

let check_cluster cl =
  Lcm_oracle.cross_check ();
  List.iter Invariant.check_server (servers cl);
  check_ownership cl;
  for i = 0 to Cluster.n_clients cl - 1 do
    let c = Cluster.client cl i in
    Invariant.check_client ~lock_client:(Client.lock_client c)
      ~cache:(Client.cache c)
  done

let run_cluster ?until cl =
  try Cluster.run ?until cl
  with Engine.Deadlock blocked ->
    raise
      (Deadlock.Deadlock_found (Deadlock.analyze ~servers:(servers cl) ~blocked))
