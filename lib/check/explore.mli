(** Schedule exploration (model-checking lite).

    The engine breaks same-timestamp ties deterministically by spawn
    order; real systems do not get to choose.  [run f] drives the
    scenario [f] through {e every} tie-break ordering: [f] receives a
    chooser to install via [Dessim.Engine.set_tie_chooser] on a freshly
    built world, and is re-executed once per distinct schedule,
    depth-first.  Assert invariants inside [f] — a failure aborts the
    search with {!Schedule_failed} carrying the decision path that
    reproduces it.

    Exhaustive only for small scenarios: the schedule count is the
    product of all tie arities.  [max_schedules] (default 10k) bounds the
    search; [result.complete] says whether the tree was exhausted. *)

type result = { schedules : int; complete : bool }

exception
  Schedule_failed of {
    index : int;  (** how many schedules had already passed *)
    choices : (int * int) list;  (** (choice, arity) path, root first *)
    exn : exn;
    backtrace : Printexc.raw_backtrace;
  }

val run : ?max_schedules:int -> ((int -> int) -> unit) -> result

val pp_result : Format.formatter -> result -> unit
