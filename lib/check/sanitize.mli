(** Front end of the protocol sanitizer.

    Two independent switches, settable programmatically (the CLI's
    [--check] flag) or through the [CCPFS_CHECK] environment variable
    (any value enables the invariant layer; ["full"]/["all"] also enable
    the determinism double-run — how the [@sanitize] dune alias runs the
    test suites):

    - {e invariants}: wire {!Invariant} into every lock-server transition
      and every client-cache mutation, and turn engine stalls into
      wait-for-graph {!Deadlock} reports;
    - {e determinism}: harnesses additionally execute each scenario twice
      and compare event-stream fingerprints. *)

open Ccpfs

val enable_invariants : unit -> unit
val enable_all : unit -> unit
val enabled : unit -> bool
val determinism_enabled : unit -> bool

val attach_server : Seqdlm.Lock_server.t -> unit
(** Install the invariant validator and the SN-monotonicity monitor. *)

val attach_cluster : Cluster.t -> unit
(** [attach_server] on every lock server, plus cache audits on every
    client. *)

val check_ownership : Cluster.t -> unit
(** Shard-ownership exclusivity (DESIGN.md §15): raises {!Violation.Violation}
    if any server holds grants or queued waiters for a resource the
    shard map assigns to a different server. *)

val check_cluster : Cluster.t -> unit
(** One full sweep: Table II cross-check, all server invariants,
    shard-ownership exclusivity, all client cache-coverage checks.
    Useful at quiescence even when the per-transition hooks were not
    attached. *)

val run_cluster : ?until:float -> Cluster.t -> unit
(** [Cluster.run] but an engine deadlock is re-raised as
    {!Deadlock.Deadlock_found} with the analyzed wait-for graph. *)
