(** The pluggable invariant layer of the protocol sanitizer.

    Each invariant inspects one lock server's introspection views (never
    its internals) and raises {!Violation.Violation} when the protocol
    state contradicts the paper:

    - [lcm-compat]: no two overlapping granted locks may coexist unless
      Table II (via the independent {!Lcm_oracle}) allows it — the only
      sanctioned exception being an NBW/BW grant over a CANCELING NBW
      lock (early grant, §III-A1).
    - [sn-rules]: write-grant SNs are unique per resource and below the
      sequencer's next value (§III-C).
    - [fifo-queue]: per-resource waiter queues stay in arrival order
      (§II-A fairness).
    - [sn-monotone] (trace monitor): consecutive write grants on a
      resource carry strictly increasing SNs.
    - [cache-under-lock]: a client's dirty extents lie inside the ranges
      of its cached write-capable locks (§I, §III-D2).

    [Sanitize] installs these on every transition; tests may also call
    them directly. *)

open Seqdlm

val register :
  string -> (Lock_server.t -> Types.resource_id -> unit) -> unit
(** Add a custom per-resource invariant to the registry. *)

val checks :
  unit -> (string * (Lock_server.t -> Types.resource_id -> unit)) list
(** Built-in invariants followed by registered ones. *)

val check_server : Lock_server.t -> unit
(** Run every registered invariant over every resource of the server. *)

val monitor_sn : Lock_server.t -> unit
(** Chain a tracer that watches the grant stream for SN regressions. *)

val check_client_rid :
  lock_client:Lock_client.t -> cache:Ccpfs.Client_cache.t ->
  Types.resource_id -> unit

val check_client :
  lock_client:Lock_client.t -> cache:Ccpfs.Client_cache.t -> unit
(** [cache-under-lock] over every stripe with dirty data. *)

val pp_ranges : Format.formatter -> Ccpfs_util.Interval.t list -> unit
val pp_lock : Format.formatter -> Lock_server.lock_view -> unit
