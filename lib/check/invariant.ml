open Ccpfs_util
open Seqdlm
open Ccpfs

let pp_ranges ppf ranges =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       Interval.pp)
    ranges

let pp_lock ppf (v : Lock_server.lock_view) =
  Format.fprintf ppf "#%d c%d %s/%s sn=%d %a" v.v_lock_id v.v_client
    (Mode.to_string v.v_mode)
    (Lcm.state_to_string v.v_state)
    v.v_sn pp_ranges v.v_ranges

(* No two granted locks may overlap unless Table II allows their
   coexistence in at least one direction — the only asymmetric cells are
   the NBW/BW-over-canceling-NBW early grants, which is exactly the
   documented exception. *)
let check_compat srv rid =
  let locks = Lock_server.granted_locks srv rid in
  let rec pairs = function
    | [] -> ()
    | (g : Lock_server.lock_view) :: rest ->
        List.iter
          (fun (h : Lock_server.lock_view) ->
            if Types.ranges_overlap g.v_ranges h.v_ranges then
              if
                not
                  (Lcm_oracle.compatible ~req:g.v_mode ~granted:h.v_mode
                     ~state:h.v_state
                  || Lcm_oracle.compatible ~req:h.v_mode ~granted:g.v_mode
                       ~state:g.v_state)
              then
                Violation.fail ~inv:"lcm-compat"
                  "%s r%d holds conflicting overlapping grants %a and %a"
                  (Lock_server.name srv) rid pp_lock g pp_lock h)
          rest;
        pairs rest
  in
  pairs locks

(* Write grants consume sequence numbers: per resource they must be
   pairwise distinct and below the sequencer's next value (§III-C). *)
let check_sn srv rid =
  let next = Lock_server.next_sn srv rid in
  let writes =
    List.filter
      (fun (v : Lock_server.lock_view) -> Mode.is_write v.v_mode)
      (Lock_server.granted_locks srv rid)
  in
  List.iter
    (fun (v : Lock_server.lock_view) ->
      if v.v_sn >= next then
        Violation.fail ~inv:"sn-rules"
          "%s r%d write grant %a carries sn >= next_sn %d"
          (Lock_server.name srv) rid pp_lock v next)
    writes;
  let sns = List.map (fun (v : Lock_server.lock_view) -> v.v_sn) writes in
  if List.length sns <> List.length (List.sort_uniq Int.compare sns) then
    Violation.fail ~inv:"sn-rules" "%s r%d has duplicate write-grant SNs: %a"
      (Lock_server.name srv) rid
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_lock)
      writes

(* The per-resource queue is FIFO: enqueue timestamps must be
   non-decreasing from head to tail (fairness, §II-A). *)
let check_fifo srv rid =
  let rec walk = function
    | (a : Lock_server.waiter_view) :: (b :: _ as rest) ->
        if a.q_enq_time > b.q_enq_time then
          Violation.fail ~inv:"fifo-queue"
            "%s r%d queue out of order: c%d (t=%g) before c%d (t=%g)"
            (Lock_server.name srv) rid a.q_client a.q_enq_time b.q_client
            b.q_enq_time;
        walk rest
    | [] | [ _ ] -> ()
  in
  walk (Lock_server.waiting_view srv rid)

let builtin : (string * (Lock_server.t -> Types.resource_id -> unit)) list =
  [
    ("lcm-compat", check_compat); ("sn-rules", check_sn);
    ("fifo-queue", check_fifo);
  ]

let extra : (string * (Lock_server.t -> Types.resource_id -> unit)) list ref =
  ref []

let register name f = extra := !extra @ [ (name, f) ]
let checks () = builtin @ !extra

let check_server srv =
  List.iter
    (fun rid -> List.iter (fun (_, f) -> f srv rid) (checks ()))
    (Lock_server.resource_ids srv)

(* Strict SN monotonicity, observed on the live grant stream rather than
   reconstructed from state: each write grant on a resource must carry a
   strictly larger SN than the previous one (the sequencer never reuses
   or reorders, §III-C). *)
let monitor_sn srv =
  let last : (Types.resource_id, int) Hashtbl.t = Hashtbl.create 16 in
  Lock_server.add_tracer srv (fun _now ev ->
      match ev with
      | Lock_server.T_grant (g, _) when Mode.is_write g.mode -> (
          match Hashtbl.find_opt last g.rid with
          | Some prev when g.sn <= prev ->
              Violation.fail ~inv:"sn-monotone"
                "%s r%d issued write sn %d after already issuing %d"
                (Lock_server.name srv) g.rid g.sn prev
          | _ -> Hashtbl.replace last g.rid g.sn)
      | Lock_server.T_crash _ ->
          (* An online crash legitimately forgets SNs that no one can
             ever use: a write grant lost in flight is invisible to the
             recovery gather, and the epoch fence guarantees its SN
             orders no data.  Monotonicity restarts from the recovered
             floor — which the recovery-sn-floor invariant (extent log +
             reinstalled write grants) checks independently. *)
          Hashtbl.reset last
      | _ -> ())

(* A client may hold dirty data only under the protection of a cached
   write-capable lock covering it ("data can be cached in clients under
   the protection of the cached locks", §I; flushing precedes release in
   the cancel path, §III-D2). *)
let check_client_rid ~lock_client ~cache rid =
  let dirty =
    match
      List.find_opt (fun (r, _) -> r = rid) (Client_cache.dirty_view cache)
    with
    | Some (_, extents) -> extents
    | None -> []
  in
  if dirty <> [] then begin
    let protection =
      Lock_client.locks_for_recovery lock_client ~owned:(fun _ -> true)
      |> List.filter_map (fun (l : Lock_client.recovery_lock) ->
             if l.r_rid = rid && Mode.can_write l.r_mode then Some l.r_ranges
             else None)
      |> List.concat |> Types.normalize_ranges
    in
    List.iter
      (fun (iv, (_ : Content.tag)) ->
        if not (List.exists (fun r -> Interval.contains r iv) protection) then
          Violation.fail ~inv:"cache-under-lock"
            "client %d holds dirty extent %a of r%d outside its write locks \
             %a"
            (Client_cache.client_id cache)
            Interval.pp iv rid pp_ranges protection)
      dirty
  end

let check_client ~lock_client ~cache =
  List.iter
    (fun (rid, _) -> check_client_rid ~lock_client ~cache rid)
    (Client_cache.dirty_view cache)
