type result = { schedules : int; complete : bool }

exception
  Schedule_failed of {
    index : int;
    choices : (int * int) list;
    exn : exn;
    backtrace : Printexc.raw_backtrace;
  }

(* Depth-first search over the tree of tie-break decisions.  A schedule
   is a path: each time the scenario asks how to order an n-way
   same-timestamp tie we either follow the forced prefix or default to
   choice 0, recording (choice, arity) as we go.  Backtracking bumps the
   deepest decision that still has unexplored branches and replays. *)
let run ?(max_schedules = 10_000) f =
  let schedules = ref 0 in
  let complete = ref true in
  let prefix = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let trail = ref [] (* deepest decision first *) in
    let remaining = ref !prefix in
    let choose n =
      let c =
        match !remaining with
        | c :: tl ->
            remaining := tl;
            min c (n - 1)
        | [] -> 0
      in
      trail := (c, n) :: !trail;
      c
    in
    (try f choose
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       raise
         (Schedule_failed
            {
              index = !schedules;
              choices = List.rev !trail;
              exn = e;
              backtrace = bt;
            }));
    incr schedules;
    if !schedules >= max_schedules then begin
      complete := false;
      continue_ := false
    end
    else begin
      let rec next = function
        | [] -> None
        | (c, n) :: earlier ->
            if c + 1 < n then Some (List.rev_map fst earlier @ [ c + 1 ])
            else next earlier
      in
      match next !trail with
      | None -> continue_ := false
      | Some p -> prefix := p
    end
  done;
  { schedules = !schedules; complete = !complete }

let pp_result ppf r =
  Format.fprintf ppf "%d schedule(s)%s" r.schedules
    (if r.complete then ", exhaustive" else " (bounded, not exhaustive)")

let () =
  Printexc.register_printer (function
    | Schedule_failed { index; choices; exn; _ } ->
        Some
          (Printf.sprintf
             "schedule %d (tie-breaks [%s]) failed: %s" index
             (String.concat "; "
                (List.map
                   (fun (c, n) -> Printf.sprintf "%d/%d" c n)
                   choices))
             (Printexc.to_string exn))
    | _ -> None)
