open Ccpfs_util
open Dessim
open Seqdlm

type edge = {
  e_waiter : Types.client_id;
  e_holder : Types.client_id;
  e_rid : Types.resource_id;
  e_wait_mode : Mode.t;
  e_hold_mode : Mode.t;
  e_hold_state : Lcm.lock_state;
  e_wait_ranges : Interval.t list;
  e_hold_ranges : Interval.t list;
}

type report = {
  edges : edge list;
  cycles : Types.client_id list list;
  blocked : Engine.blocked_proc list;
}

exception Deadlock_found of report

(* One edge per (queued request, granted lock) pair the server is
   actually blocking on — the same conflict test the scheduler uses, so
   the graph reflects what the DLM will wait for, not what Table II says
   it should. *)
let edges_of_server srv =
  List.concat_map
    (fun rid ->
      let granted = Lock_server.granted_locks srv rid in
      List.concat_map
        (fun (w : Lock_server.waiter_view) ->
          List.filter_map
            (fun (g : Lock_server.lock_view) ->
              if
                g.v_client <> w.q_client
                && Types.ranges_overlap w.q_ranges g.v_ranges
                && not
                     (Lcm.compatible ~req:w.q_eff_mode ~granted:g.v_mode
                        ~state:g.v_state)
              then
                Some
                  {
                    e_waiter = w.q_client;
                    e_holder = g.v_client;
                    e_rid = rid;
                    e_wait_mode = w.q_eff_mode;
                    e_hold_mode = g.v_mode;
                    e_hold_state = g.v_state;
                    e_wait_ranges = w.q_ranges;
                    e_hold_ranges = g.v_ranges;
                  }
              else None)
            granted)
        (Lock_server.waiting_view srv rid))
    (Lock_server.resource_ids srv)

(* Rotate a cycle so its smallest client comes first — cycles found from
   different DFS roots then compare equal. *)
let canonical cycle =
  match cycle with
  | [] -> []
  | _ ->
      let n = List.length cycle in
      let arr = Array.of_list cycle in
      let start = ref 0 in
      Array.iteri (fun i c -> if c < arr.(!start) then start := i) arr;
      List.init n (fun i -> arr.((!start + i) mod n))

let find_cycles edges =
  let adj : (Types.client_id, Types.client_id list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj e.e_waiter) in
      if not (List.mem e.e_holder cur) then
        Hashtbl.replace adj e.e_waiter (e.e_holder :: cur))
    edges;
  let cycles = ref [] in
  let visited : (Types.client_id, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec dfs path c =
    match List.find_index (Int.equal c) path with
    | Some i ->
        (* path is most-recent-first; the first i+1 entries close the
           loop back to [c]. *)
        let cycle = List.rev (List.filteri (fun j _ -> j <= i) path) in
        let cycle = canonical cycle in
        if not (List.mem cycle !cycles) then cycles := cycle :: !cycles
    | None ->
        if not (Hashtbl.mem visited c) then begin
          Hashtbl.add visited c ();
          List.iter
            (dfs (c :: path))
            (Option.value ~default:[] (Hashtbl.find_opt adj c))
        end
  in
  (* The DFS shares [visited] across roots, so which cycles get reported
     (and in what orientation) depends on root order: start from sorted
     client ids, not raw table order, or two runs of the same scenario
     can disagree on the cycle list. *)
  List.iter (dfs []) (Ccpfs_util.Det_tbl.sorted_keys ~cmp:Int.compare adj);
  List.rev !cycles

let analyze ~servers ~blocked =
  let edges = List.concat_map edges_of_server servers in
  { edges; cycles = find_cycles edges; blocked }

let pp_edge ppf e =
  Format.fprintf ppf "c%d (%s %a) waits on c%d holding %s/%s %a of r%d"
    e.e_waiter
    (Mode.to_string e.e_wait_mode)
    Invariant.pp_ranges e.e_wait_ranges e.e_holder
    (Mode.to_string e.e_hold_mode)
    (Lcm.state_to_string e.e_hold_state)
    Invariant.pp_ranges e.e_hold_ranges e.e_rid

let pp ppf r =
  Format.fprintf ppf "deadlock: %d blocked process(es)"
    (List.length (Engine.blocked_names r.blocked));
  List.iter
    (fun b -> Format.fprintf ppf "@\n  %a" Engine.pp_blocked b)
    r.blocked;
  (match r.edges with
  | [] -> Format.fprintf ppf "@\nno lock waits — stuck outside the DLM"
  | edges ->
      Format.fprintf ppf "@\nwait-for graph:";
      List.iter (fun e -> Format.fprintf ppf "@\n  %a" pp_edge e) edges);
  List.iter
    (fun cycle ->
      Format.fprintf ppf "@\ncycle: %s"
        (String.concat " -> "
           (List.map (Printf.sprintf "c%d") (cycle @ [ List.hd cycle ]))))
    r.cycles

let to_string r = Format.asprintf "@[<v>%a@]" pp r

let () =
  Printexc.register_printer (function
    | Deadlock_found r -> Some (to_string r)
    | _ -> None)
