open Seqdlm

(* Every cell of Table II spelled out one row at a time.  Resist the
   temptation to compress with or-patterns that group modes: the value of
   this table is that a bug slipped into [Lcm.compatible]'s grouping
   logic cannot also be here. *)
let compatible ~req ~granted ~state =
  match (req, granted, state) with
  (* row PR *)
  | Mode.PR, Mode.PR, Lcm.Granted -> true
  | Mode.PR, Mode.PR, Lcm.Canceling -> true
  | Mode.PR, Mode.NBW, Lcm.Granted -> false
  | Mode.PR, Mode.NBW, Lcm.Canceling -> false
  | Mode.PR, Mode.BW, Lcm.Granted -> false
  | Mode.PR, Mode.BW, Lcm.Canceling -> false
  | Mode.PR, Mode.PW, Lcm.Granted -> false
  | Mode.PR, Mode.PW, Lcm.Canceling -> false
  (* row NBW — the N/Y pair in the NBW column is early grant *)
  | Mode.NBW, Mode.PR, Lcm.Granted -> false
  | Mode.NBW, Mode.PR, Lcm.Canceling -> false
  | Mode.NBW, Mode.NBW, Lcm.Granted -> false
  | Mode.NBW, Mode.NBW, Lcm.Canceling -> true
  | Mode.NBW, Mode.BW, Lcm.Granted -> false
  | Mode.NBW, Mode.BW, Lcm.Canceling -> false
  | Mode.NBW, Mode.PW, Lcm.Granted -> false
  | Mode.NBW, Mode.PW, Lcm.Canceling -> false
  (* row BW — same early-grant pair as NBW *)
  | Mode.BW, Mode.PR, Lcm.Granted -> false
  | Mode.BW, Mode.PR, Lcm.Canceling -> false
  | Mode.BW, Mode.NBW, Lcm.Granted -> false
  | Mode.BW, Mode.NBW, Lcm.Canceling -> true
  | Mode.BW, Mode.BW, Lcm.Granted -> false
  | Mode.BW, Mode.BW, Lcm.Canceling -> false
  | Mode.BW, Mode.PW, Lcm.Granted -> false
  | Mode.BW, Mode.PW, Lcm.Canceling -> false
  (* row PW — exclusive against everything *)
  | Mode.PW, Mode.PR, Lcm.Granted -> false
  | Mode.PW, Mode.PR, Lcm.Canceling -> false
  | Mode.PW, Mode.NBW, Lcm.Granted -> false
  | Mode.PW, Mode.NBW, Lcm.Canceling -> false
  | Mode.PW, Mode.BW, Lcm.Granted -> false
  | Mode.PW, Mode.BW, Lcm.Canceling -> false
  | Mode.PW, Mode.PW, Lcm.Granted -> false
  | Mode.PW, Mode.PW, Lcm.Canceling -> false

let all_modes = [ Mode.PR; Mode.NBW; Mode.BW; Mode.PW ]
let all_states = [ Lcm.Granted; Lcm.Canceling ]

let cross_check () =
  List.iter
    (fun req ->
      List.iter
        (fun granted ->
          List.iter
            (fun state ->
              let want = compatible ~req ~granted ~state in
              let got = Lcm.compatible ~req ~granted ~state in
              if want <> got then
                Violation.fail ~inv:"lcm-table2"
                  "Lcm.compatible ~req:%s ~granted:%s ~state:%s = %b, Table \
                   II says %b"
                  (Mode.to_string req) (Mode.to_string granted)
                  (Lcm.state_to_string state) got want)
            all_states)
        all_modes)
    all_modes
