open Ccpfs_util
open Dessim
open Seqdlm

let params = Netsim.Params.default

let three_client_contention ~perm choose =
  let eng = Engine.create () in
  Engine.set_tie_chooser eng choose;
  let snode = Netsim.Node.create eng params ~name:"server" () in
  let server =
    Lock_server.create eng params ~node:snode ~name:"ls" ~policy:Policy.seqdlm
  in
  let granted = ref 0 in
  Array.iteri
    (fun i slot ->
      let node =
        Netsim.Node.create eng params ~name:(Printf.sprintf "c%d" i) ()
      in
      let hooks =
        {
          Lock_client.flush = (fun ~rid:_ ~ranges:_ -> Engine.sleep eng 1e-4);
          has_dirty = (fun ~rid:_ ~ranges:_ -> true);
          invalidate = (fun ~rid:_ ~ranges:_ -> ());
        }
      in
      let lc =
        Lock_client.create eng params ~node ~client_id:i
          ~route:(fun _ -> server)
          ~hooks
      in
      Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
          (* Stagger the issue instants (incommensurate with the RTT so no
             accidental alignment): [perm] decides who races first, the
             explorer covers every tie the protocol then produces. *)
          if slot > 0 then Engine.sleep eng (float_of_int slot *. 1.3e-6);
          Lock_client.with_lock lc ~rid:1 ~mode:Mode.NBW
            ~ranges:[ Interval.v ~lo:0 ~hi:4096 ]
            (fun _ -> incr granted)))
    perm;
  Engine.run eng;
  Invariant.check_server server;
  if !granted <> 3 then
    Violation.fail ~inv:"liveness" "only %d of 3 contending writers granted"
      !granted

let arrival_orders =
  [
    [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |];
    [| 2; 1; 0 |];
  ]

let explore_contention ?max_schedules () =
  List.fold_left
    (fun (acc : Explore.result) perm ->
      let r = Explore.run ?max_schedules (three_client_contention ~perm) in
      {
        Explore.schedules = acc.Explore.schedules + r.Explore.schedules;
        complete = acc.Explore.complete && r.Explore.complete;
      })
    { Explore.schedules = 0; complete = true }
    arrival_orders
