open Ccpfs_util

type t = {
  page : int;
  dirty_min : int;
  dirty_max : int;
  flush_period : float;
  extent_cache_limit : int;
  cleanup_batch : int;
  cleanup_period : float;
  extent_log : bool;
  flush_wire_page_only : bool;
  batch_k : int;
  batch_delay : float;
}

(* CCPFS_BATCH=k turns RPC batching on everywhere a Config.default flows
   (experiments, the fuzzer's config_of) without touching call sites;
   unset or 0/1 leaves the transport unbatched. *)
let env_batch_k =
  match Sys.getenv_opt "CCPFS_BATCH" with
  | None | Some "" -> 0
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some k when k > 1 -> k
    | _ -> 0)

let default =
  {
    page = Units.page;
    dirty_min = 256 * Units.mib;
    dirty_max = 4 * Units.gib;
    flush_period = 0.05;
    extent_cache_limit = 256 * 1024;
    cleanup_batch = 1024;
    cleanup_period = 0.1;
    extent_log = false;
    flush_wire_page_only = false;
    batch_k = env_batch_k;
    batch_delay = 0.;
  }

let with_dirty_limits ~dirty_min ~dirty_max t = { t with dirty_min; dirty_max }
let with_extent_cache ~limit t = { t with extent_cache_limit = limit }
let with_extent_log extent_log t = { t with extent_log }

let with_flush_wire_page_only flush_wire_page_only t =
  { t with flush_wire_page_only }

let with_batching ?(delay = default.batch_delay) ~k t =
  if k < 0 || delay < 0. then
    invalid_arg "Config.with_batching: k and delay must be non-negative";
  { t with batch_k = k; batch_delay = delay }
