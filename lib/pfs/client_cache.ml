open Ccpfs_util
open Dessim
open Netsim

type t = {
  eng : Engine.t;
  params : Params.t;
  config : Config.t;
  node : Node.t;
  client_id : int;
  io_route : int -> (Data_server.io_req, Data_server.io_resp) Rpc.endpoint;
  dirty : (int, Content.tag Extent_map.t ref) Hashtbl.t;
  clean : (int, Content.tag option Extent_map.t ref) Hashtbl.t;
  mutable clean_total : int;
  mutable r_hits : int;
  mutable r_misses : int;
  mutable dirty_total : int;
  mutable peak : int;
  space : Condition.t; (* signalled when dirty bytes shrink *)
  work : Condition.t; (* wakes the voluntary flush daemon *)
  mutable cache_seconds : float;
  mutable flushed_bytes : int;
  mutable n_flush_rpcs : int;
  mutable audit : (rid:int -> unit) option;
  mutable write_obs :
    (rid:int -> range:Interval.t -> sn:int -> op:int -> unit) option;
  mutable rel : (Rpc.reliability * Rpc.View.t) option;
      (* flushes go through the fenced retry path when the cluster runs
         with failover enabled: a Write_flush must survive a data-server
         outage, and at-most-once dedup keeps retries idempotent *)
  mutable ctl_source : (rid:int -> Seqdlm.Types.ctl_msg list) option;
      (* batching mode (DESIGN.md §13): the lock client's pending
         acks/downgrades/releases for the stripe's server, drained here
         so they ride the flush RPC instead of going as separate
         messages; their bytes are added to the wire size *)
}

let rid_map t rid =
  match Hashtbl.find_opt t.dirty rid with
  | Some m -> m
  | None ->
      let m = ref Extent_map.empty in
      Hashtbl.add t.dirty rid m;
      m

let account t delta =
  t.dirty_total <- t.dirty_total + delta;
  if t.dirty_total > t.peak then t.peak <- t.dirty_total;
  if delta < 0 then Condition.broadcast t.space

(* Take the dirty extents under [ranges] out of the cache and ship them
   in one batched flush RPC. *)
let flush t ~rid ~ranges =
  let m = rid_map t rid in
  let blocks =
    List.concat_map
      (fun range ->
        List.map
          (fun (iv, tag) ->
            { Data_server.b_range = iv; b_sn = tag.Content.sn; b_tag = tag })
          (Extent_map.overlapping !m range))
      ranges
  in
  if blocks <> [] then begin
    List.iter
      (fun (b : Data_server.block) ->
        m := Extent_map.remove !m b.b_range;
        account t (-Interval.length b.b_range))
      blocks;
    let bytes =
      List.fold_left
        (fun acc (b : Data_server.block) -> acc + Interval.length b.b_range)
        0 blocks
    in
    t.flushed_bytes <- t.flushed_bytes + bytes;
    t.n_flush_rpcs <- t.n_flush_rpcs + 1;
    let ctl =
      match t.ctl_source with None -> [] | Some f -> f ~rid
    in
    let wire_bytes =
      (if t.config.Config.flush_wire_page_only then
         min bytes t.config.Config.page
       else bytes)
      + (List.length ctl * t.params.Params.ctl_msg_bytes)
    in
    let do_rpc () =
      let ep = t.io_route rid in
      let req = Data_server.Write_flush { rid; blocks; ctl } in
      match
        (match t.rel with
        | None -> Rpc.call ep ~src:t.node ~req_bytes:wire_bytes req
        | Some (rel, view) ->
            Rpc.call_reliable ep ~src:t.node ~req_bytes:wire_bytes
              ~reliability:rel ~view req)
      with
      | Data_server.Done -> ()
      | Data_server.Data _ as r ->
          Protocol_error.fail
            ~endpoint:(Rpc.name (t.io_route rid))
            ~request:
              (Printf.sprintf "Write_flush rid=%d blocks=%d bytes=%d" rid
                 (List.length blocks) bytes)
            ~got:(Data_server.io_resp_to_string r)
    in
    let sink = Engine.trace_sink t.eng in
    if not (Obs.Trace.enabled sink) then do_rpc ()
    else begin
      let tid = Engine.current_pid t.eng in
      let args =
        [
          ("rid", Obs.Json.Int rid);
          ("bytes", Obs.Json.Int bytes);
          ("blocks", Obs.Json.Int (List.length blocks));
        ]
      in
      Obs.Trace.begin_span sink ~ts:(Engine.now t.eng) ~tid ~cat:"io" ~args
        "cache.flush";
      match do_rpc () with
      | () -> Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid "cache.flush"
      | exception e ->
          Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid "cache.flush";
          raise e
    end
  end

let flush_all t =
  List.iter
    (fun rid -> flush t ~rid ~ranges:[ Interval.to_eof ~lo:0 ])
    (Det_tbl.sorted_keys ~cmp:Int.compare t.dirty)

let flush_daemon t () =
  while true do
    Engine.sleep t.eng t.config.Config.flush_period;
    if t.dirty_total > t.config.Config.dirty_min then
      (* Voluntary flushing: drain whole stripes until under the
         threshold, largest first. *)
      let by_size =
        Det_tbl.fold_sorted ~cmp:Int.compare
          (fun rid m acc ->
            let bytes =
              Extent_map.fold (fun iv _ a -> a + Interval.length iv) !m 0
            in
            if bytes > 0 then (bytes, rid) :: acc else acc)
          t.dirty []
        (* ties broken by rid: equal-sized stripes are the common case,
           and bytes alone would leave their flush order to the
           traversal order — sorted-key iteration keeps it stable *)
        |> List.sort (fun (a, ar) (b, br) ->
               match Int.compare b a with
               | 0 -> Int.compare ar br
               | c -> c)
      in
      List.iter
        (fun (_, rid) ->
          if t.dirty_total > t.config.Config.dirty_min then
            flush t ~rid ~ranges:[ Interval.to_eof ~lo:0 ])
        by_size
  done

let create eng params config ~node ~client_id ~io_route =
  let t =
    {
      eng; params; config; node; client_id; io_route;
      dirty = Hashtbl.create 16;
      clean = Hashtbl.create 16;
      clean_total = 0;
      r_hits = 0;
      r_misses = 0;
      dirty_total = 0;
      peak = 0;
      space = Condition.create eng;
      work = Condition.create eng;
      cache_seconds = 0.;
      flushed_bytes = 0;
      n_flush_rpcs = 0;
      audit = None;
      write_obs = None;
      rel = None;
      ctl_source = None;
    }
  in
  Engine.spawn eng ~daemon:true
    ~name:(Printf.sprintf "c%d.flushd" client_id)
    (flush_daemon t);
  t

let write t ~rid ~range ~sn ~op =
  (* Forced-flush backpressure (§IV-C1): block while the cache is full. *)
  Condition.wait_until ~ctx:"cache.space" t.space (fun () ->
      t.dirty_total < t.config.Config.dirty_max);
  let t0 = Engine.now t.eng in
  Resource.consume (Node.mem t.node) (float_of_int (Interval.length range));
  t.cache_seconds <- t.cache_seconds +. (Engine.now t.eng -. t0);
  let m = rid_map t rid in
  let tag = { Content.writer = t.client_id; op; sn } in
  let covered =
    List.fold_left
      (fun acc (iv, _) -> acc + Interval.length iv)
      0
      (Extent_map.overlapping !m range)
  in
  let m', _ = Extent_map.merge !m range tag ~keep_new:(fun ~old -> sn >= old.Content.sn) in
  m := m';
  (* Keep the clean cache coherent with our own writes, otherwise a read
     after the dirty data has been flushed away would see the pre-write
     version. *)
  (match Hashtbl.find_opt t.clean rid with
  | Some cm when not (Extent_map.is_empty !cm) ->
      cm := Extent_map.set !cm range (Some tag)
  | Some _ | None -> ());
  account t (Interval.length range - covered);
  Condition.broadcast t.work;
  (match t.write_obs with Some f -> f ~rid ~range ~sn ~op | None -> ());
  match t.audit with Some f -> f ~rid | None -> ()

let has_dirty t ~rid ~ranges =
  match Hashtbl.find_opt t.dirty rid with
  | None -> false
  | Some m ->
      List.exists (fun range -> Extent_map.overlapping !m range <> []) ranges

let local_view t ~rid ~range =
  match Hashtbl.find_opt t.dirty rid with
  | None -> []
  | Some m -> Extent_map.overlapping !m range

let clean_map t rid =
  match Hashtbl.find_opt t.clean rid with
  | Some m -> m
  | None ->
      let m = ref Extent_map.empty in
      Hashtbl.add t.clean rid m;
      m

let store_clean t ~rid segments =
  let m = clean_map t rid in
  List.iter
    (fun (iv, tag) ->
      t.clean_total <- t.clean_total + Interval.length iv;
      m := Extent_map.set !m iv tag)
    segments

let clean_covers t ~rid ~range =
  match Hashtbl.find_opt t.clean rid with
  | None -> false
  | Some m ->
      let covers = Extent_map.covered !m range in
      if covers then t.r_hits <- t.r_hits + 1 else t.r_misses <- t.r_misses + 1;
      covers

let clean_view t ~rid ~range =
  match Hashtbl.find_opt t.clean rid with
  | None -> []
  | Some m -> Extent_map.overlapping !m range

let invalidate_clean t ~rid ~ranges =
  match Hashtbl.find_opt t.clean rid with
  | None -> ()
  | Some m ->
      List.iter
        (fun range ->
          List.iter
            (fun (iv, _) ->
              t.clean_total <- t.clean_total - Interval.length iv)
            (Extent_map.overlapping !m range);
          m := Extent_map.remove !m range)
        ranges

let drop_clean t ~rid ~range =
  invalidate_clean t ~rid ~ranges:[ range ];
  let m = rid_map t rid in
  let covered =
    List.fold_left
      (fun acc (iv, _) -> acc + Interval.length iv)
      0
      (Extent_map.overlapping !m range)
  in
  m := Extent_map.remove !m range;
  account t (-covered)

let lose_all_dirty t =
  let lost = t.dirty_total in
  Det_tbl.iter_sorted ~cmp:Int.compare (fun _ m -> m := Extent_map.empty) t.dirty;
  t.dirty_total <- 0;
  Condition.broadcast t.space;
  lost

let dirty_view t =
  Det_tbl.fold_sorted ~cmp:Int.compare
    (fun rid m acc ->
      match Extent_map.to_list !m with
      | [] -> acc
      | extents -> (rid, extents) :: acc)
    t.dirty []
  |> List.rev

let set_audit t f = t.audit <- Some f
let set_write_observer t f = t.write_obs <- Some f
let set_reliability t rel view = t.rel <- Some (rel, view)
let set_ctl_source t f = t.ctl_source <- Some f
let client_id t = t.client_id
let clean_bytes t = t.clean_total
let read_cache_hits t = t.r_hits
let read_cache_misses t = t.r_misses
let dirty_bytes t = t.dirty_total
let dirty_peak t = t.peak
let cache_write_seconds t = t.cache_seconds
let bytes_flushed t = t.flushed_bytes
let flush_rpcs t = t.n_flush_rpcs
