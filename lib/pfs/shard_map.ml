open Ccpfs_util

type t = {
  n_servers : int;
  mutable epoch : int;
  overrides : (int, int) Hashtbl.t; (* rid -> owner, when not the hash *)
}

let create ~n_servers =
  if n_servers <= 0 then invalid_arg "Shard_map.create: n_servers <= 0";
  { n_servers; epoch = 0; overrides = Hashtbl.create 8 }

let n_servers t = t.n_servers
let epoch t = t.epoch
let data_owner t rid = rid mod t.n_servers

let lock_owner t rid =
  match Hashtbl.find_opt t.overrides rid with
  | Some owner -> owner
  | None -> rid mod t.n_servers

let migrate t ~rid ~dst =
  if dst < 0 || dst >= t.n_servers then
    invalid_arg (Printf.sprintf "Shard_map.migrate: server %d out of range" dst);
  (* Back to the default placement: drop the override instead of pinning
     it, so the table only ever holds exceptions. *)
  if dst = rid mod t.n_servers then Hashtbl.remove t.overrides rid
  else Hashtbl.replace t.overrides rid dst;
  t.epoch <- t.epoch + 1;
  t.epoch

let overrides t = Det_tbl.bindings_sorted ~cmp:Int.compare t.overrides

type snapshot = {
  s_epoch : int;
  s_n_servers : int;
  s_overrides : (int * int) list;
}

let snapshot t =
  { s_epoch = t.epoch; s_n_servers = t.n_servers; s_overrides = overrides t }

module Cache = struct
  type t = {
    n_servers : int;
    mutable epoch : int;
    overrides : (int, int) Hashtbl.t;
  }

  let create ~n_servers = { n_servers; epoch = 0; overrides = Hashtbl.create 8 }
  let epoch t = t.epoch

  let owner t rid =
    match Hashtbl.find_opt t.overrides rid with
    | Some owner -> owner
    | None -> rid mod t.n_servers

  let install t (s : snapshot) =
    if s.s_epoch > t.epoch then begin
      t.epoch <- s.s_epoch;
      Hashtbl.reset t.overrides;
      List.iter (fun (rid, owner) -> Hashtbl.add t.overrides rid owner)
        s.s_overrides
    end
end
