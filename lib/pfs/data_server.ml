open Ccpfs_util
open Dessim
open Netsim

type block = { b_range : Interval.t; b_sn : int; b_tag : Content.tag }

type io_req =
  | Write_flush of {
      rid : int;
      blocks : block list;
      ctl : Seqdlm.Types.ctl_msg list;
          (* control messages piggybacked on the flush (DESIGN.md §13):
             acks/downgrades applied before the blocks land, releases
             after — see [handle] *)
    }
  | Read of { rid : int; range : Interval.t }
  | Truncate of { rid : int; keep_below : int }

type io_resp =
  | Done
  | Data of (Interval.t * Content.tag option) list

type stats = {
  mutable flush_rpcs : int;
  mutable blocks_in : int;
  mutable bytes_received : int;
  mutable bytes_written : int;
  mutable bytes_discarded : int;
  mutable reads : int;
  mutable cleanup_runs : int;
  mutable cleanup_removed : int;
  mutable force_syncs : int;
  mutable cache_peak : int;
}

(* The extent cache orders bytes by (SN, op): the SN decides between
   conflicting locks, and the writer's per-client op counter breaks the
   tie between writes performed under the *same* (cached) lock — a lock
   reused across ops keeps one SN, and a re-flush of a later overwrite
   must still beat the voluntarily flushed earlier version.  SN
   uniqueness across clients (a lock-server invariant) makes the op
   comparison well-defined: equal SNs always belong to one client. *)
type stripe = {
  mutable cache : (int * int) Extent_map.t; (* range -> max (SN, op) *)
  mutable store : Content.t; (* device contents *)
  mutable log : (Interval.t * int * int) list; (* extent log, newest first *)
  mutable coalesced_at : int;
      (* cache cardinality after the last coalescing pass; same-SN
         neighbour merging is amortised rather than per-block *)
}

type t = {
  eng : Engine.t;
  params : Params.t;
  config : Config.t;
  node : Node.t;
  name : string;
  lock_server : Seqdlm.Lock_server.t;
  mutable lock_route : (int -> Seqdlm.Lock_server.t) option;
      (* sharded clusters install the authoritative rid -> owner route;
         None = the colocated server owns everything (pre-sharding) *)
  stripes : (int, stripe) Hashtbl.t;
  stats : stats;
  mutable ep : (io_req, io_resp) Rpc.endpoint option;
  mutable cleaning : bool;
  mutable drop_every : int; (* injected fault: 0 = off *)
  mutable blocks_seen : int;
}

(* The lock server currently owning [rid]'s namespace.  The mSN queries
   of the cleanup task and the ctl application of piggybacked flushes
   must follow migrations: consulting the colocated server after the
   resource moved away would see an empty table and, e.g., reclaim cache
   entries whose write locks are still live on the new owner. *)
let lock_server_for t rid =
  match t.lock_route with Some route -> route rid | None -> t.lock_server

let stripe t rid =
  match Hashtbl.find_opt t.stripes rid with
  | Some s -> s
  | None ->
      let s =
        { cache = Extent_map.empty; store = Content.empty; log = [];
          coalesced_at = 0 }
      in
      Hashtbl.add t.stripes rid s;
      s

let total_cache_entries t =
  Det_tbl.fold_sorted ~cmp:Int.compare
    (fun _ s acc -> acc + Extent_map.cardinal s.cache)
    t.stripes 0

(* Stripe sweeps iterate rids in this canonical order, never raw
   [Hashtbl.iter] order: under randomized hashing the latter varies from
   process to process, and the sweeps below have order-sensitive effects
   (a budget cut-off, lock-request issue order). *)
let stripe_rids t = Det_tbl.sorted_keys ~cmp:Int.compare t.stripes

let pair_eq (a : int * int) (b : int * int) = a = b

(* Fig. 15 steps ①-④ for one incoming block. *)
let apply_block t st (b : block) =
  let key = (b.b_sn, b.b_tag.Content.op) in
  let cache, update_set =
    Extent_map.merge st.cache b.b_range key ~keep_new:(fun ~old -> key > old)
  in
  st.cache <- cache;
  (* Merge continuous same-SN extents (Fig. 15), amortised: a full pass
     only once the cache has grown 25% past its last coalesced size. *)
  if Extent_map.cardinal st.cache > (st.coalesced_at * 5 / 4) + 16 then begin
    st.cache <- Extent_map.coalesce ~eq:pair_eq st.cache;
    st.coalesced_at <- Extent_map.cardinal st.cache
  end;
  let written =
    List.fold_left
      (fun acc seg ->
        st.store <- Content.write st.store seg b.b_tag;
        if t.config.Config.extent_log then
          st.log <- (seg, b.b_sn, b.b_tag.Content.op) :: st.log;
        acc + Interval.length seg)
      0 update_set
  in
  let size = Interval.length b.b_range in
  t.stats.bytes_received <- t.stats.bytes_received + size;
  t.stats.bytes_written <- t.stats.bytes_written + written;
  t.stats.bytes_discarded <- t.stats.bytes_discarded + (size - written);
  written

(* Forward reference: the cleanup task is defined below but triggered
   from the write path the moment the threshold is crossed (§IV-B: "the
   server starts an asynchronous task"). *)
let cleanup_impl :
    (t -> unit) ref =
  ref (fun _ -> ())

let trigger_cleanup t =
  if not t.cleaning then begin
    t.cleaning <- true;
    Engine.spawn t.eng ~name:(t.name ^ ".cleanup-task") (fun () ->
        !cleanup_impl t;
        t.cleaning <- false)
  end

(* One server-side IO span nested inside Rpc's serve span (same courier
   tid), so flushes/reads/truncates are attributable per data server in
   the trace. *)
let ds_span t name args f =
  let sink = Engine.trace_sink t.eng in
  if not (Obs.Trace.enabled sink) then f ()
  else begin
    let tid = Engine.current_pid t.eng in
    Obs.Trace.begin_span sink ~ts:(Engine.now t.eng) ~tid ~cat:"io" ~args name;
    match f () with
    | v ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid name;
        v
    | exception e ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid name;
        raise e
  end

let handle t req ~reply =
  match req with
  | Write_flush { rid; blocks; ctl } ->
      ds_span t "ds.write_flush"
        [ ("rid", Obs.Json.Int rid);
          ("blocks", Obs.Json.Int (List.length blocks));
          ("ctl", Obs.Json.Int (List.length ctl)) ]
      @@ fun () ->
      (* Piggybacked control traffic splits around the blocks (DESIGN.md
         §13): acks and downgrades land first — they only weaken the
         sender's claim, and an early-grantable writer should see the
         downgrade before the flush's disk time elapses — while releases
         land after the blocks are applied and on the device, so the
         next holder is granted only once the released lock's data is
         durable here (the paper's release-on-last-flush-block rule). *)
      let pre, post =
        List.partition
          (function Seqdlm.Types.Release _ -> false | _ -> true)
          ctl
      in
      List.iter (Seqdlm.Lock_server.control (lock_server_for t rid)) pre;
      let st = stripe t rid in
      t.stats.flush_rpcs <- t.stats.flush_rpcs + 1;
      t.stats.blocks_in <- t.stats.blocks_in + List.length blocks;
      let written =
        List.fold_left
          (fun acc b ->
            t.blocks_seen <- t.blocks_seen + 1;
            if t.drop_every > 0 && t.blocks_seen mod t.drop_every = 0 then acc
            else acc + apply_block t st b)
          0 blocks
      in
      let entries = total_cache_entries t in
      if entries > t.stats.cache_peak then t.stats.cache_peak <- entries;
      if entries > t.config.Config.extent_cache_limit then trigger_cleanup t;
      (* Device occupancy for the update set (the discarded parts never
         reach the device). *)
      Node.disk_write t.node written;
      List.iter (Seqdlm.Lock_server.control (lock_server_for t rid)) post;
      reply Done
  | Read { rid; range } ->
      ds_span t "ds.read"
        [ ("rid", Obs.Json.Int rid);
          ("len", Obs.Json.Int (Interval.length range)) ]
      @@ fun () ->
      let st = stripe t rid in
      t.stats.reads <- t.stats.reads + 1;
      Resource.consume (Node.disk t.node) (float_of_int (Interval.length range));
      reply (Data (Content.read st.store range))
  | Truncate { rid; keep_below } ->
      ds_span t "ds.truncate"
        [ ("rid", Obs.Json.Int rid);
          ("keep_below", Obs.Json.Int keep_below) ]
      @@ fun () ->
      let st = stripe t rid in
      if keep_below <= 0 then begin
        st.store <- Content.empty;
        st.cache <- Extent_map.empty
      end
      else begin
        let keep = Content.read st.store (Interval.v ~lo:0 ~hi:keep_below) in
        st.store <-
          List.fold_left
            (fun c (seg, tag) ->
              match tag with Some tg -> Content.write c seg tg | None -> c)
            Content.empty keep;
        st.cache <- Extent_map.remove st.cache (Interval.to_eof ~lo:keep_below)
      end;
      reply Done

(* The asynchronous extent-cache cleanup task (§IV-B).  Removes entries
   whose SN is no larger than the mSN of unreleased write locks over the
   entry's range; falls back to force-synchronising every stripe when the
   cache stays over the limit. *)
let cleanup_round t =
  t.stats.cleanup_runs <- t.stats.cleanup_runs + 1;
  let budget = ref t.config.Config.cleanup_batch in
  let removed = ref 0 in
  List.iter
    (fun rid ->
      let st = Hashtbl.find t.stripes rid in
      if !budget > 0 then begin
        let examined = ref [] in
        Extent_map.iter
          (fun iv (sn, _op) ->
            if !budget > 0 then begin
              decr budget;
              let reclaimable =
                match
                  Seqdlm.Lock_server.min_unreleased_write_sn (lock_server_for t rid)
                    rid iv
                with
                | None -> true
                | Some msn -> sn <= msn
              in
              if reclaimable then examined := iv :: !examined
            end)
          st.cache;
        List.iter
          (fun iv ->
            st.cache <- Extent_map.remove st.cache iv;
            incr removed)
          !examined
      end)
    (stripe_rids t);
  t.stats.cleanup_removed <- t.stats.cleanup_removed + !removed;
  !removed

let force_sync t =
  t.stats.force_syncs <- t.stats.force_syncs + 1;
  let pending = ref 0 in
  let done_ = Condition.create t.eng in
  List.iter
    (fun rid ->
      incr pending;
      Seqdlm.Lock_server.sync_resource (lock_server_for t rid) rid ~on_behalf:(-1)
        ~reply:(fun () ->
          decr pending;
          if !pending = 0 then Condition.broadcast done_))
    (stripe_rids t);
  if !pending > 0 then Condition.wait_until done_ (fun () -> !pending = 0);
  (* Every write lock has been released, so all data is on the device:
     caches and logs can be cleared. *)
  Det_tbl.iter_sorted ~cmp:Int.compare
    (fun _ st ->
      t.stats.cleanup_removed <-
        t.stats.cleanup_removed + Extent_map.cardinal st.cache;
      st.cache <- Extent_map.empty;
      st.log <- [])
    t.stripes

let () =
  cleanup_impl :=
    fun t ->
      ignore (cleanup_round t);
      if total_cache_entries t > t.config.Config.extent_cache_limit then
        force_sync t

let cleanup_daemon t () =
  while true do
    Engine.sleep t.eng t.config.Config.cleanup_period;
    if total_cache_entries t > t.config.Config.extent_cache_limit then
      trigger_cleanup t
  done

let create eng params config ~node ~name ~lock_server =
  let t =
    {
      eng; params; config; node; name; lock_server;
      lock_route = None;
      stripes = Hashtbl.create 64;
      stats =
        {
          flush_rpcs = 0; blocks_in = 0; bytes_received = 0; bytes_written = 0;
          bytes_discarded = 0; reads = 0; cleanup_runs = 0; cleanup_removed = 0;
          force_syncs = 0; cache_peak = 0;
        };
      ep = None;
      cleaning = false;
      drop_every = 0;
      blocks_seen = 0;
    }
  in
  t.ep <-
    Some
      (Rpc.endpoint eng params ~node ~name:(name ^ ".io")
         ~handler:(fun req ~reply -> handle t req ~reply));
  Engine.spawn eng ~daemon:true ~name:(name ^ ".cleanup") (cleanup_daemon t);
  t

let endpoint t = Option.get t.ep
let set_lock_route t route = t.lock_route <- Some route
let contents t rid = (stripe t rid).store
let extent_cache_entries t = total_cache_entries t

let extent_cache_of t rid =
  List.map (fun (iv, (sn, _op)) -> (iv, sn))
    (Extent_map.to_list (stripe t rid).cache)

let rebuild_pairs t rid =
  if not t.config.Config.extent_log then
    invalid_arg (t.name ^ ": extent log disabled");
  let st = stripe t rid in
  let rebuilt =
    List.fold_left
      (fun m (iv, sn, op) ->
        fst (Extent_map.merge m iv (sn, op) ~keep_new:(fun ~old -> (sn, op) > old)))
      Extent_map.empty (List.rev st.log)
  in
  Extent_map.coalesce ~eq:pair_eq rebuilt

let rebuild_extent_cache_from_log t rid =
  List.map (fun (iv, (sn, _op)) -> (iv, sn))
    (Extent_map.to_list (rebuild_pairs t rid))

let crash_and_rebuild t =
  if not t.config.Config.extent_log then
    invalid_arg (t.name ^ ": recovery needs the extent log");
  List.iter
    (fun rid ->
      let st = Hashtbl.find t.stripes rid in
      st.cache <- rebuild_pairs t rid;
      st.coalesced_at <- Extent_map.cardinal st.cache)
    (stripe_rids t)

let max_logged_sn t rid =
  match Hashtbl.find_opt t.stripes rid with
  | None -> None
  | Some st ->
      List.fold_left
        (fun acc (_, sn, _) ->
          match acc with
          | None -> Some sn
          | Some m -> Some (max m sn))
        None st.log

let stats t = t.stats
let node t = t.node

let inject_drop_block t ~every =
  if every <= 0 then invalid_arg (t.name ^ ": inject_drop_block: every <= 0");
  t.drop_every <- every

let io_resp_to_string = function
  | Done -> "Done"
  | Data segs -> Printf.sprintf "Data(%d segments)" (List.length segs)
