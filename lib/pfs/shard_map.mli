(** The epoch-versioned lock-namespace routing table (DESIGN.md §15).

    One authoritative map per cluster answers "which server owns resource
    [rid]'s lock namespace?".  Placement starts as the static hash
    [rid mod n_servers] (§IV); {!migrate} moves a single resource to
    another server and bumps the map {e epoch} — the fencing token the
    [Stale_owner] protocol carries, so a client routing on an older map
    version can always be detected and told to refresh.

    Data placement never moves: a stripe's blocks and extent log stay on
    [rid mod n_servers] forever ({!data_owner}), exactly as Lustre keeps
    object placement fixed while lock namespaces migrate between
    servers.  Only the DLM service for the resource is rehomed.

    Clients do not read the authoritative map directly — they hold a
    {!Cache} refreshed from {!snapshot}s served over RPC, and learn about
    staleness from [Stale_owner] bounces. *)

type t

val create : n_servers:int -> t
(** Identity placement [rid mod n_servers], epoch 0. *)

val n_servers : t -> int

val epoch : t -> int
(** Bumped by every {!migrate}; never decreases. *)

val lock_owner : t -> int -> int
(** Current owner of resource [rid]'s lock namespace. *)

val data_owner : t -> int -> int
(** Owner of the stripe's device contents and extent log — always the
    static hash, migrations notwithstanding. *)

val migrate : t -> rid:int -> dst:int -> int
(** Rehome [rid]'s lock namespace to server [dst] and return the new
    epoch.  Raises [Invalid_argument] if [dst] is out of range. *)

val overrides : t -> (int * int) list
(** The non-default placements, sorted by rid (diagnostics). *)

(** A wire-friendly copy of the whole map at one epoch. *)
type snapshot = {
  s_epoch : int;
  s_n_servers : int;
  s_overrides : (int * int) list;  (** (rid, owner), sorted by rid *)
}

val snapshot : t -> snapshot

(** The client-side replica: routed on by every acquire, refreshed from
    the map service when a server bounces a request.  Installs are
    forward-only — a snapshot older than what the cache already has is
    ignored, so replies racing a refresh cannot roll routing back. *)
module Cache : sig
  type t

  val create : n_servers:int -> t
  val epoch : t -> int
  val owner : t -> int -> int
  val install : t -> snapshot -> unit
end
