open Dessim
open Netsim
module Lock_server = Seqdlm.Lock_server

type server = {
  s_node : Node.t;
  s_lock : Seqdlm.Lock_server.t;
  s_data : Data_server.t;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  config : Config.t;
  policy : Seqdlm.Policy.t;
  meta : Meta_server.t;
  servers : server array;
  clients : Client.t array;
  reliability : Rpc.reliability option;
}

let create ?(params = Params.default) ?(config = Config.default)
    ?(policy = Seqdlm.Policy.seqdlm) ?reliability ~n_servers ~n_clients () =
  if n_servers <= 0 || n_clients <= 0 then
    invalid_arg "Cluster.create: need at least one server and one client";
  let eng = Engine.create () in
  let meta_node = Node.create eng params ~name:"meta" () in
  let meta = Meta_server.create eng params ~node:meta_node in
  let servers =
    Array.init n_servers (fun i ->
        let s_node =
          Node.create eng params ~name:(Printf.sprintf "ds%d" i) ~with_disk:true
            ()
        in
        let s_lock =
          Lock_server.create eng params ~node:s_node
            ~name:(Printf.sprintf "ls%d" i) ~policy
        in
        let s_data =
          Data_server.create eng params config ~node:s_node
            ~name:(Printf.sprintf "ds%d" i) ~lock_server:s_lock
        in
        { s_node; s_lock; s_data })
  in
  (* RPC batching (DESIGN.md §13): coalesce plain-path traffic towards
     each server endpoint.  The fenced retry path is unaffected, so this
     is safe to turn on regardless of the reliability regime. *)
  if config.Config.batch_k > 1 then
    Array.iter
      (fun s ->
        let set ep =
          Rpc.set_batching ep ~max_batch:config.Config.batch_k
            ~delay:config.Config.batch_delay
        in
        set (Lock_server.lock_endpoint s.s_lock);
        set (Lock_server.ctl_endpoint s.s_lock);
        set (Data_server.endpoint s.s_data))
      servers;
  let server_of_rid rid = rid mod n_servers in
  let lock_route rid = servers.(server_of_rid rid).s_lock in
  let io_route rid = Data_server.endpoint servers.(server_of_rid rid).s_data in
  let clients =
    Array.init n_clients (fun i ->
        let node = Node.create eng params ~name:(Printf.sprintf "c%d" i) () in
        Client.create eng params config ~node ~client_id:i
          ~meta:(Meta_server.endpoint meta) ~lock_route ~io_route ~policy
          ~reliability)
  in
  { eng; params; config; policy; meta; servers; clients; reliability }

let engine t = t.eng
let params t = t.params
let config t = t.config
let policy t = t.policy
let n_clients t = Array.length t.clients
let n_servers t = Array.length t.servers
let client t i = t.clients.(i)
let server_of_rid t rid = rid mod Array.length t.servers
let data_server t i = t.servers.(i).s_data
let lock_server t i = t.servers.(i).s_lock
let server_node t i = t.servers.(i).s_node
let meta t = t.meta
let reliability t = t.reliability

let total_retries t =
  Array.fold_left
    (fun acc c -> acc + Seqdlm.Lock_client.retries (Client.lock_client c))
    0 t.clients

let spawn_client t i ~name f =
  Engine.spawn t.eng ~name (fun () -> f t.clients.(i))

let run ?until t = Engine.run ?until t.eng
let now t = Engine.now t.eng

let fsync_all t =
  Array.iteri
    (fun i c ->
      Engine.spawn t.eng ~name:(Printf.sprintf "fsync%d" i) (fun () ->
          Client.fsync c))
    t.clients;
  Engine.run t.eng

let crash_and_recover_server t i =
  let s = t.servers.(i) in
  let owned rid = server_of_rid t rid = i in
  (* (2) first: the extent-log replay also tells us the SN floor. *)
  Data_server.crash_and_rebuild s.s_data;
  (* (1) lose and regather the lock table. *)
  Lock_server.crash s.s_lock;
  Array.iter
    (fun c ->
      let lc = Client.lock_client c in
      let locks =
        Seqdlm.Lock_client.locks_for_recovery lc ~owned
        |> List.map (fun (r : Seqdlm.Lock_client.recovery_lock) ->
               (r.r_rid, r.r_lock_id, r.r_mode, r.r_ranges, r.r_sn, r.r_state))
      in
      Lock_server.reinstall s.s_lock
        ~client:(Seqdlm.Lock_client.client_id lc)
        ~locks)
    t.clients;
  (* (3) SN floors from the durable extent logs — for every stripe the
     server ever wrote, not only those with surviving locks. *)
  List.iter
    (fun rid ->
      match Data_server.max_logged_sn s.s_data rid with
      | Some sn -> Lock_server.restore_sn_floor s.s_lock rid sn
      | None -> ())
    (Data_server.stripe_rids s.s_data);
  Lock_server.check_invariants s.s_lock

let total_locking_seconds t =
  Array.fold_left
    (fun acc c -> acc +. Seqdlm.Lock_client.locking_seconds (Client.lock_client c))
    0. t.clients

let total_cache_seconds t =
  Array.fold_left
    (fun acc c -> acc +. Client_cache.cache_write_seconds (Client.cache c))
    0. t.clients

let total_io_seconds t =
  Array.fold_left (fun acc c -> acc +. Client.io_seconds c) 0. t.clients

let total_bytes_written t =
  Array.fold_left (fun acc c -> acc + Client.bytes_written c) 0 t.clients

let sum_lock_stats t =
  let acc : Seqdlm.Lock_server.stats =
    {
      grants = 0; early_grants = 0; early_revocations = 0; revokes_sent = 0;
      upgrades = 0; downgrades = 0; releases = 0; expansions = 0;
      revocation_wait = 0.; release_wait = 0.; max_queue = 0;
    }
  in
  Array.iter
    (fun s ->
      let st = Seqdlm.Lock_server.stats s.s_lock in
      acc.grants <- acc.grants + st.grants;
      acc.early_grants <- acc.early_grants + st.early_grants;
      acc.early_revocations <- acc.early_revocations + st.early_revocations;
      acc.revokes_sent <- acc.revokes_sent + st.revokes_sent;
      acc.upgrades <- acc.upgrades + st.upgrades;
      acc.downgrades <- acc.downgrades + st.downgrades;
      acc.releases <- acc.releases + st.releases;
      acc.expansions <- acc.expansions + st.expansions;
      acc.revocation_wait <- acc.revocation_wait +. st.revocation_wait;
      acc.release_wait <- acc.release_wait +. st.release_wait;
      acc.max_queue <- max acc.max_queue st.max_queue)
    t.servers;
  acc

let total_disk_bytes t =
  Array.fold_left
    (fun acc s -> acc + Node.disk_bytes_written s.s_node)
    0 t.servers

let check_invariants t =
  Array.iter (fun s -> Seqdlm.Lock_server.check_invariants s.s_lock) t.servers

let stripe_contents t file ~stripe =
  let rid = Layout.rid ~fid:(Client.fid file) ~stripe in
  Data_server.contents t.servers.(server_of_rid t rid).s_data rid
