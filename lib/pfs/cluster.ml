open Dessim
open Netsim
module Lock_server = Seqdlm.Lock_server

type server = {
  s_node : Node.t;
  s_lock : Seqdlm.Lock_server.t;
  s_data : Data_server.t;
}

type migration_record = {
  m_rid : int;
  m_from : int;
  m_to : int;
  m_epoch : int;
  m_start : float;
  m_commit : float;
  m_locks_moved : int;
  m_bounced : int;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  config : Config.t;
  policy : Seqdlm.Policy.t;
  meta : Meta_server.t;
  shard : Shard_map.t;
  map_ep : (unit, Shard_map.snapshot) Rpc.endpoint;
  servers : server array;
  clients : Client.t array;
  caches : Shard_map.Cache.t array; (* one shard-map replica per client *)
  reliability : Rpc.reliability option;
  mutable migrations : migration_record list; (* newest first *)
}

let create ?(params = Params.default) ?(config = Config.default)
    ?(policy = Seqdlm.Policy.seqdlm) ?reliability ~n_servers ~n_clients () =
  if n_servers <= 0 || n_clients <= 0 then
    invalid_arg "Cluster.create: need at least one server and one client";
  let eng = Engine.create () in
  let meta_node = Node.create eng params ~name:"meta" () in
  let meta = Meta_server.create eng params ~node:meta_node in
  (* The authoritative lock-namespace routing table (DESIGN.md §15):
     every ownership answer — client routing, server-side ownership
     gates, data-server mSN routing, recovery filters — derives from
     this one map, so a migration is observed everywhere at once. *)
  let shard = Shard_map.create ~n_servers in
  (* The map service: clients refresh their cached replica from here
     when a server bounces a request with [Stale_owner]. *)
  let map_ep =
    Rpc.endpoint eng params ~node:meta_node ~name:"shard.map"
      ~handler:(fun () ~reply -> reply (Shard_map.snapshot shard))
  in
  let servers =
    Array.init n_servers (fun i ->
        let s_node =
          Node.create eng params ~name:(Printf.sprintf "ds%d" i) ~with_disk:true
            ()
        in
        let s_lock =
          Lock_server.create eng params ~node:s_node
            ~name:(Printf.sprintf "ls%d" i) ~policy
        in
        let s_data =
          Data_server.create eng params config ~node:s_node
            ~name:(Printf.sprintf "ds%d" i) ~lock_server:s_lock
        in
        { s_node; s_lock; s_data })
  in
  let lock_owner rid = Shard_map.lock_owner shard rid in
  Array.iteri
    (fun i s ->
      (* Ownership gate + ctl forwarding: requests for resources this
         server no longer owns bounce; control messages hop on to the
         current owner. *)
      Lock_server.set_sharding s.s_lock
        ~owned:(fun rid -> lock_owner rid = i)
        ~epoch:(fun () -> Shard_map.epoch shard)
        ~forward_ctl:(fun rid ->
          Some (Lock_server.ctl_endpoint servers.(lock_owner rid).s_lock));
      (* mSN queries and piggybacked ctl follow migrations too. *)
      Data_server.set_lock_route s.s_data (fun rid ->
          servers.(lock_owner rid).s_lock))
    servers;
  (* RPC batching (DESIGN.md §13): coalesce plain-path traffic towards
     each server endpoint.  The fenced retry path is unaffected, so this
     is safe to turn on regardless of the reliability regime. *)
  if config.Config.batch_k > 1 then
    Array.iter
      (fun s ->
        let set ep =
          Rpc.set_batching ep ~max_batch:config.Config.batch_k
            ~delay:config.Config.batch_delay
        in
        set (Lock_server.lock_endpoint s.s_lock);
        set (Lock_server.ctl_endpoint s.s_lock);
        set (Data_server.endpoint s.s_data))
      servers;
  (* Data placement is static ({!Shard_map.data_owner}): stripes and
     their extent logs never move, only lock namespaces do. *)
  let io_route rid =
    Data_server.endpoint servers.(Shard_map.data_owner shard rid).s_data
  in
  let caches =
    Array.init n_clients (fun _ -> Shard_map.Cache.create ~n_servers)
  in
  let clients =
    Array.init n_clients (fun i ->
        let node = Node.create eng params ~name:(Printf.sprintf "c%d" i) () in
        let lock_route rid =
          servers.(Shard_map.Cache.owner caches.(i) rid).s_lock
        in
        let c =
          Client.create eng params config ~node ~client_id:i
            ~meta:(Meta_server.endpoint meta) ~lock_route ~io_route ~policy
            ~reliability
        in
        Seqdlm.Lock_client.set_map_refresh (Client.lock_client c)
          (fun ~min_epoch ->
            if Shard_map.Cache.epoch caches.(i) < min_epoch then
              Shard_map.Cache.install caches.(i)
                (Rpc.call map_ep ~src:node ()));
        c)
  in
  {
    eng; params; config; policy; meta; shard; map_ep; servers; clients;
    caches; reliability; migrations = [];
  }

let engine t = t.eng
let params t = t.params
let config t = t.config
let policy t = t.policy
let n_clients t = Array.length t.clients
let n_servers t = Array.length t.servers
let client t i = t.clients.(i)
let server_of_rid t rid = Shard_map.lock_owner t.shard rid
let shard_map t = t.shard
let data_server t i = t.servers.(i).s_data
let lock_server t i = t.servers.(i).s_lock
let server_node t i = t.servers.(i).s_node
let meta t = t.meta
let reliability t = t.reliability

let total_retries t =
  Array.fold_left
    (fun acc c -> acc + Seqdlm.Lock_client.retries (Client.lock_client c))
    0 t.clients

let total_stale_bounces t =
  Array.fold_left
    (fun acc c ->
      acc + Seqdlm.Lock_client.stale_bounces (Client.lock_client c))
    0 t.clients

let spawn_client t i ~name f =
  Engine.spawn t.eng ~name (fun () -> f t.clients.(i))

let run ?until t = Engine.run ?until t.eng
let now t = Engine.now t.eng

let fsync_all t =
  Array.iteri
    (fun i c ->
      Engine.spawn t.eng ~name:(Printf.sprintf "fsync%d" i) (fun () ->
          Client.fsync c))
    t.clients;
  Engine.run t.eng

let refresh_client_maps t =
  let snap = Shard_map.snapshot t.shard in
  Array.iter (fun cache -> Shard_map.Cache.install cache snap) t.caches

(* The §IV-C2 recovery core, shared by the offline path below and the
   online coordinator ({!Ha.Failover}) so floor handling cannot drift
   between them: reinstall every client's gathered grants for the
   resources server [i] owns, restore the SN floors from the durable
   extent logs, and self-check.  Ownership is filtered against the
   authoritative shard map — a client gathering through a stale cached
   map may over-report, and a lock must never be installed on a
   non-owner.  Floors consult the {e data} owner of each candidate
   resource: after a migration the extent log lives on the static home
   server, not necessarily on the recovering lock server's node. *)
let recover_lock_server t i ~gather =
  let s = t.servers.(i) in
  let owned rid = Shard_map.lock_owner t.shard rid = i in
  let reinstalled = ref 0 in
  Array.iter
    (fun c ->
      let lc = Client.lock_client c in
      let locks =
        gather c
        |> List.filter (fun (r : Seqdlm.Lock_client.recovery_lock) ->
               owned r.r_rid)
        |> List.map (fun (r : Seqdlm.Lock_client.recovery_lock) ->
               (r.r_rid, r.r_lock_id, r.r_mode, r.r_ranges, r.r_sn, r.r_state))
      in
      reinstalled := !reinstalled + List.length locks;
      Lock_server.reinstall s.s_lock
        ~client:(Seqdlm.Lock_client.client_id lc)
        ~locks)
    t.clients;
  (* Floor candidates: every stripe homed here, plus every resource
     migrated here from another home. *)
  let candidates =
    List.sort_uniq Int.compare
      (Data_server.stripe_rids s.s_data
      @ List.filter_map
          (fun (rid, owner) -> if owner = i then Some rid else None)
          (Shard_map.overrides t.shard))
  in
  List.iter
    (fun rid ->
      if owned rid then
        let home = t.servers.(Shard_map.data_owner t.shard rid).s_data in
        match Data_server.max_logged_sn home rid with
        | Some sn -> Lock_server.restore_sn_floor s.s_lock rid sn
        | None -> ())
    candidates;
  Lock_server.check_invariants s.s_lock;
  !reinstalled

let crash_and_recover_server t i =
  let s = t.servers.(i) in
  let owned rid = server_of_rid t rid = i in
  (* (2) first: the extent-log replay also tells us the SN floor. *)
  Data_server.crash_and_rebuild s.s_data;
  (* (1) lose and regather the lock table; (3) replay the SN floors. *)
  Lock_server.crash s.s_lock;
  ignore
    (recover_lock_server t i ~gather:(fun c ->
         Seqdlm.Lock_client.locks_for_recovery (Client.lock_client c) ~owned))

(* ------------------------------------------------------------------ *)
(* Epoch-fenced resource migration (DESIGN.md §15)                     *)
(* ------------------------------------------------------------------ *)

(* Rehome one resource's lock namespace onto [dst], under live traffic:

     freeze intake -> drain (in-flight grants/acks complete while new
     arrivals park) -> flip the authoritative map (epoch bump) ->
     extract the lock table, bouncing parked + queued waiters with the
     new epoch -> adopt on [dst] with the sequencer position and the
     extent-log SN floor -> reopen.

   The flip/extract/adopt steps run in one simulated event, so there is
   no observable instant at which two servers own the resource, or none
   does.  Returns [None] without effect (beyond the drain delay) when
   the resource is already on [dst] or a colocated force-sync pins it.
   Must run inside an engine process (it sleeps the drain window). *)
let migrate_resource t ~rid ~dst =
  let n = Array.length t.servers in
  if dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Cluster.migrate_resource: server %d" dst);
  let src = Shard_map.lock_owner t.shard rid in
  if src = dst then None
  else begin
    let s_src = t.servers.(src).s_lock and s_dst = t.servers.(dst).s_lock in
    let start = Engine.now t.eng in
    Lock_server.freeze s_src rid;
    (* The drain window: two control RTTs stand in for the
       prepare/transfer exchange between the owners. *)
    Engine.sleep t.eng (2. *. t.params.Params.rtt);
    if not (Lock_server.is_frozen s_src rid) then
      (* The source crashed during the drain window (crash_online clears
         every freeze): nothing to move, the recovery path owns it. *)
      None
    else if
      Rpc.is_down (Lock_server.lock_endpoint s_dst)
      || not (Lock_server.can_migrate s_src rid)
    then begin
      (* Target down (adopting into a crashed table would collide with
         its recovery reinstalls), or a colocated force-sync pins the
         resource here.  Replay the parked intake locally. *)
      Lock_server.cancel_freeze s_src rid;
      None
    end
    else begin
      let epoch = Shard_map.migrate t.shard ~rid ~dst in
      let st =
        match Lock_server.migrate_out s_src rid ~epoch with
        | Some st -> st
        | None -> assert false (* can_migrate checked in this same event *)
      in
      Lock_server.adopt s_dst st;
      (* SN floor from the resource's static data home: everything ever
         durably written must stay below future SNs, even what the old
         owner's table no longer remembers. *)
      let home = t.servers.(Shard_map.data_owner t.shard rid).s_data in
      (match Data_server.max_logged_sn home rid with
      | Some sn -> Lock_server.restore_sn_floor s_dst rid sn
      | None -> ());
      Lock_server.check_invariants s_dst;
      let r =
        {
          m_rid = rid;
          m_from = src;
          m_to = dst;
          m_epoch = epoch;
          m_start = start;
          m_commit = Engine.now t.eng;
          m_locks_moved = List.length st.Lock_server.mig_locks;
          m_bounced = st.Lock_server.mig_bounced;
        }
      in
      t.migrations <- r :: t.migrations;
      Some r
    end
  end

let migrations t = List.rev t.migrations

let total_locking_seconds t =
  Array.fold_left
    (fun acc c -> acc +. Seqdlm.Lock_client.locking_seconds (Client.lock_client c))
    0. t.clients

let total_cache_seconds t =
  Array.fold_left
    (fun acc c -> acc +. Client_cache.cache_write_seconds (Client.cache c))
    0. t.clients

let total_io_seconds t =
  Array.fold_left (fun acc c -> acc +. Client.io_seconds c) 0. t.clients

let total_bytes_written t =
  Array.fold_left (fun acc c -> acc + Client.bytes_written c) 0 t.clients

let sum_lock_stats t =
  let acc : Seqdlm.Lock_server.stats =
    {
      grants = 0; early_grants = 0; early_revocations = 0; revokes_sent = 0;
      upgrades = 0; downgrades = 0; releases = 0; expansions = 0;
      revocation_wait = 0.; release_wait = 0.; max_queue = 0;
    }
  in
  Array.iter
    (fun s ->
      let st = Seqdlm.Lock_server.stats s.s_lock in
      acc.grants <- acc.grants + st.grants;
      acc.early_grants <- acc.early_grants + st.early_grants;
      acc.early_revocations <- acc.early_revocations + st.early_revocations;
      acc.revokes_sent <- acc.revokes_sent + st.revokes_sent;
      acc.upgrades <- acc.upgrades + st.upgrades;
      acc.downgrades <- acc.downgrades + st.downgrades;
      acc.releases <- acc.releases + st.releases;
      acc.expansions <- acc.expansions + st.expansions;
      acc.revocation_wait <- acc.revocation_wait +. st.revocation_wait;
      acc.release_wait <- acc.release_wait +. st.release_wait;
      acc.max_queue <- max acc.max_queue st.max_queue)
    t.servers;
  acc

let total_disk_bytes t =
  Array.fold_left
    (fun acc s -> acc + Node.disk_bytes_written s.s_node)
    0 t.servers

let check_invariants t =
  Array.iter (fun s -> Seqdlm.Lock_server.check_invariants s.s_lock) t.servers

let stripe_contents t file ~stripe =
  let rid = Layout.rid ~fid:(Client.fid file) ~stripe in
  Data_server.contents t.servers.(Shard_map.data_owner t.shard rid).s_data rid
