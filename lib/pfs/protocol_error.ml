exception
  Protocol_error of { endpoint : string; request : string; got : string }

let to_string ~endpoint ~request ~got =
  Printf.sprintf "protocol error: %s: %s -> unexpected %s" endpoint request got

let fail ~endpoint ~request ~got =
  raise (Protocol_error { endpoint; request; got })

let () =
  Printexc.register_printer (function
    | Protocol_error { endpoint; request; got } ->
        Some (to_string ~endpoint ~request ~got)
    | _ -> None)
