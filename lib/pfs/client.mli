(** libccPFS: the POSIX-like client API (§IV).

    Locking is implicit: every IO derives its lock mode from the Fig. 10
    rules (or the traditional PR/PW mapping for baseline policies), takes
    per-stripe extent locks in resource-id order, performs the IO against
    the client cache, and puts the locks back, leaving grants cached.
    Lock ranges are 4 KiB-aligned, which is why adjacent unaligned writes
    conflict (§V-C2).

    Writes complete when the data is in the client cache; dirty data
    reaches data servers asynchronously (lock revocation, the voluntary
    flush daemon, or {!fsync}). *)

type t

val create :
  Dessim.Engine.t -> Netsim.Params.t -> Config.t -> node:Netsim.Node.t ->
  client_id:int ->
  meta:(Meta_server.req, Meta_server.resp) Netsim.Rpc.endpoint ->
  lock_route:(int -> Seqdlm.Lock_server.t) ->
  io_route:(int -> (Data_server.io_req, Data_server.io_resp) Netsim.Rpc.endpoint) ->
  policy:Seqdlm.Policy.t -> reliability:Netsim.Rpc.reliability option -> t
(** With [reliability], lock traffic, control messages and data-server
    I/O all go through the fenced retry transport under the client's one
    epoch view (online-failover survival); [None] keeps the plain
    transport paths. *)

type file

val open_file :
  t -> ?create:bool -> ?layout:Layout.t -> string -> file
(** Opens (or creates, default layout 1 stripe) a file by path.
    @raise Not_found if absent and [create] is false. *)

val fid : file -> int
val layout : file -> Layout.t

val write :
  ?mode:Seqdlm.Mode.t -> ?lock_whole_range:bool -> t -> file -> off:int ->
  len:int -> unit
(** Contiguous write.  [mode] overrides the Fig. 10 selection and
    [lock_whole_range] requests [0, EOF) locks on each touched stripe
    (both used by the microbenchmarks, Fig. 16: "each write acquires a
    write lock with the range [0, EOF]"). *)

val write_multi : ?mode:Seqdlm.Mode.t -> t -> file ->
  ranges:Ccpfs_util.Interval.t list -> unit
(** Atomic non-contiguous write (Tile-IO).  Under SeqDLM each stripe is
    locked with the minimum covering range; under DLM-datatype the exact
    ranges are sent (datatype locking). *)

val read :
  t -> file -> off:int -> len:int ->
  (int * Ccpfs_util.Interval.t * Ccpfs_util.Content.tag option) list
(** Read under PR locks; returns (stripe, object-space range, provenance)
    segments, local dirty data overlaid, ordered by (stripe, offset). *)

val read_checksum : t -> file -> off:int -> len:int -> int
(** Stable checksum of {!read}'s result (the §V-B1 comparison). *)

val append : t -> file -> len:int -> int
(** Atomic append: PW whole-file locks, reads the global size from the
    metadata server, writes, updates the size.  Returns the offset. *)

val truncate : t -> file -> size:int -> unit
val stat_size : t -> file -> int
val fsync : t -> unit
(** Flush all dirty data of this client to the data servers. *)

val fsync_file : t -> file -> unit
(** Flush only this file's dirty data. *)

val crash : t -> int
(** Simulate a client failure (§IV-C1): all dirty data still in the
    cache is lost — the documented convention shared with ext4, Lustre
    and BeeGFS; data already flushed survives.  Returns the number of
    bytes lost.  The client object must not be used afterwards. *)

(** {1 Instrumentation} *)

val lock_client : t -> Seqdlm.Lock_client.t
val cache : t -> Client_cache.t
val node : t -> Netsim.Node.t
val bytes_written : t -> int
val bytes_read : t -> int
val ops : t -> int
val io_seconds : t -> float
(** Virtual time spent inside write/read calls (the application-visible
    parallel-IO time). *)
