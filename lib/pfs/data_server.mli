(** The IO service of a ccPFS data server (§IV-B, Fig. 15).

    Flush RPCs carry SN-tagged blocks that may arrive out of order across
    conflicting locks.  The server merges each block into the per-stripe
    extent cache keeping the larger (SN, writer-op) per byte — the SN
    orders conflicting locks, the writer's op counter orders successive
    writes under one cached (reused) lock, e.g. a voluntary daemon flush
    followed by an overwrite and a re-flush with the same SN; the parts
    where the incoming block won (the update set) are written to the
    device and applied to stripe contents, the rest is discarded.  Optionally
    every update-set entry is appended to a per-stripe extent log so the
    cache can be rebuilt on recovery.

    A background cleanup task bounds the extent cache: when the total
    entry count exceeds the configured limit it queries the colocated
    lock server for the minimum SN of unreleased write locks (mSN) and
    drops entries whose SN <= mSN — SeqDLM guarantees data with smaller
    SNs is already on the device.  If that cannot reclaim enough, the
    server force-synchronises writers by taking a whole-range read lock
    per stripe and then clears the caches and logs. *)

type t

type block = {
  b_range : Ccpfs_util.Interval.t;  (** object-space byte range *)
  b_sn : int;
  b_tag : Ccpfs_util.Content.tag;
}

type io_req =
  | Write_flush of {
      rid : int;
      blocks : block list;
      ctl : Seqdlm.Types.ctl_msg list;
          (** lock-control messages piggybacked on the flush (acks,
              downgrades, releases — DESIGN.md §13); the server splits
              them around the blocks: acks and downgrades are applied to
              the colocated lock server first, releases only after the
              blocks are durable, so a release riding with the data it
              covers is safe *)
    }
  | Read of { rid : int; range : Ccpfs_util.Interval.t }
  | Truncate of { rid : int; keep_below : int }

type io_resp =
  | Done
  | Data of (Ccpfs_util.Interval.t * Ccpfs_util.Content.tag option) list

val create :
  Dessim.Engine.t -> Netsim.Params.t -> Config.t -> node:Netsim.Node.t ->
  name:string -> lock_server:Seqdlm.Lock_server.t -> t
(** The lock server must be the colocated DLM service for this node's
    stripes (mSN queries are local calls).  Starts the cleanup daemon. *)

val endpoint : t -> (io_req, io_resp) Netsim.Rpc.endpoint

val set_lock_route : t -> (int -> Seqdlm.Lock_server.t) -> unit
(** Install the authoritative rid → owning-lock-server route of a
    sharded cluster (DESIGN.md §15).  The mSN queries of the cleanup
    task, the piggybacked ctl application and {!sync_resource} fallbacks
    then follow resource migrations instead of always consulting the
    colocated server.  Without it the colocated server owns everything
    (the pre-sharding behaviour). *)

val contents : t -> int -> Ccpfs_util.Content.t
(** Current device contents of a stripe (empty if never written). *)

val extent_cache_entries : t -> int
(** Total extent-cache entries across stripes. *)

val extent_cache_of : t -> int -> (Ccpfs_util.Interval.t * int) list
(** A stripe's extent cache: (range, max SN) entries. *)

val rebuild_extent_cache_from_log :
  t -> int -> (Ccpfs_util.Interval.t * int) list
(** Replay the stripe's extent log (§IV-C2).  The result must equal the
    live extent cache — asserted by the recovery tests.
    @raise Invalid_argument if the extent log is disabled. *)

val crash_and_rebuild : t -> unit
(** Simulate a server failure: the in-memory extent caches are lost and
    rebuilt by replaying each stripe's extent log; stripe contents (the
    device) survive.
    @raise Invalid_argument if the extent log is disabled. *)

val max_logged_sn : t -> int -> int option
(** Largest SN in a stripe's extent log (restores the lock server's
    sequence-number floor during recovery). *)

val stripe_rids : t -> int list
(** Every stripe this server has seen IO for. *)

type stats = {
  mutable flush_rpcs : int;
  mutable blocks_in : int;
  mutable bytes_received : int;
  mutable bytes_written : int;  (** update-set bytes that reached the device *)
  mutable bytes_discarded : int;  (** stale bytes dropped by SN merging *)
  mutable reads : int;
  mutable cleanup_runs : int;
  mutable cleanup_removed : int;
  mutable force_syncs : int;
  mutable cache_peak : int;
}

val stats : t -> stats
val node : t -> Netsim.Node.t

val inject_drop_block : t -> every:int -> unit
(** Fault injection for the fuzzer's oracle tests only: silently discard
    every [every]-th incoming flush block (a lost device write).  The
    shadow-file oracle must catch the resulting divergence. *)

val io_resp_to_string : io_resp -> string
(** Short rendering for diagnostics: ["Done"], ["Data(4 segments)"]. *)
