(** Diagnosable protocol violations.

    When a client receives a reply that the protocol says is impossible
    for the request it sent (a [Data] for a write flush, an [Ok] for an
    open), or an internal exchange invariant breaks (a grant handle
    missing for a stripe the client just locked), the failure is a
    protocol bug — the run must die with the endpoint, the request and
    the offending reply in the message, not with a bare
    [Assert_failure].  Chaos and fault-injection runs rely on this to
    turn crashes into diagnoses. *)

exception
  Protocol_error of { endpoint : string; request : string; got : string }

val fail : endpoint:string -> request:string -> got:string -> 'a
(** @raise Protocol_error always. *)

val to_string : endpoint:string -> request:string -> got:string -> string
(** The rendered message, ["protocol error: <endpoint>: <request> ->
    unexpected <got>"] (what [Printexc.to_string] shows). *)
