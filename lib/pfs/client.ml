open Ccpfs_util
open Dessim
open Netsim
open Seqdlm

type t = {
  eng : Engine.t;
  params : Params.t;
  config : Config.t;
  node : Node.t;
  id : int;
  meta : (Meta_server.req, Meta_server.resp) Rpc.endpoint;
  io_route : int -> (Data_server.io_req, Data_server.io_resp) Rpc.endpoint;
  cache : Client_cache.t;
  locks : Lock_client.t;
  policy : Policy.t;
  rel : Rpc.reliability option;
  view : Rpc.View.t;
  mutable op_counter : int;
  mutable w_bytes : int;
  mutable r_bytes : int;
  mutable io_secs : float;
}

type file = { f_fid : int; f_layout : Layout.t; f_path : string }

let create eng params config ~node ~client_id ~meta ~lock_route ~io_route
    ~policy ~reliability =
  let cache = Client_cache.create eng params config ~node ~client_id ~io_route in
  let hooks =
    {
      Lock_client.flush =
        (fun ~rid ~ranges -> Client_cache.flush cache ~rid ~ranges);
      has_dirty = (fun ~rid ~ranges -> Client_cache.has_dirty cache ~rid ~ranges);
      invalidate =
        (fun ~rid ~ranges -> Client_cache.invalidate_clean cache ~rid ~ranges);
    }
  in
  let locks =
    Lock_client.create eng params ~node ~client_id ~route:lock_route ~hooks
  in
  let view = Lock_client.view locks in
  (match reliability with
  | Some rel ->
      (* One epoch view per client: lock, control and data-server I/O
         traffic are all fenced by the same recovery epochs. *)
      Lock_client.set_reliability locks rel;
      Client_cache.set_reliability cache rel view
  | None ->
      (* Piggybacking (DESIGN.md §13) needs the plain transport: under a
         retry policy control messages must stay individually reliable.
         It is a SeqDLM protocol feature — release on the last flush
         block (§III-B) — so it follows the policy flag, not the
         transport batching knob: the traditional baselines send every
         control message on its own RPC. *)
      if policy.Policy.piggyback_release then begin
        Lock_client.set_piggyback locks ~delay:config.Config.batch_delay;
        Client_cache.set_ctl_source cache (fun ~rid ->
            Lock_client.take_piggyback locks ~rid)
      end);
  {
    eng; params; config; node; id = client_id; meta; io_route; cache; locks;
    policy; rel = reliability; view;
    op_counter = 0; w_bytes = 0; r_bytes = 0; io_secs = 0.;
  }

(* Data-server I/O: fenced + retried when the cluster runs with a retry
   policy, the plain transport otherwise. *)
let io_call t rid ?resp_bytes req =
  let ep = t.io_route rid in
  match t.rel with
  | None -> Rpc.call ep ~src:t.node ?resp_bytes req
  | Some rel ->
      Rpc.call_reliable ep ~src:t.node ?resp_bytes ~reliability:rel
        ~view:t.view req

let open_file t ?(create = false) ?(layout = Layout.v ~stripe_count:1 ()) path =
  match
    Rpc.call t.meta ~src:t.node (Meta_server.Open { path; create; layout })
  with
  | Meta_server.Attrs a -> { f_fid = a.fid; f_layout = a.layout; f_path = path }
  | Meta_server.Enoent -> raise Not_found
  | Meta_server.Ok as r ->
      Protocol_error.fail ~endpoint:(Rpc.name t.meta)
        ~request:(Printf.sprintf "Open %S" path)
        ~got:(Meta_server.resp_to_string r)

let fid f = f.f_fid
let layout f = f.f_layout

let timed t f =
  let t0 = Engine.now t.eng in
  let v = f () in
  t.io_secs <- t.io_secs +. (Engine.now t.eng -. t0);
  v

let overhead t =
  if t.params.Params.client_io_overhead > 0. then
    Engine.sleep t.eng t.params.Params.client_io_overhead

(* One application-level IO span on the calling process's tid.  The end
   event is emitted on the exception path too, so traces always pair up. *)
let io_span t name args f =
  let sink = Engine.trace_sink t.eng in
  if not (Obs.Trace.enabled sink) then f ()
  else begin
    let tid = Engine.current_pid t.eng in
    Obs.Trace.begin_span sink ~ts:(Engine.now t.eng) ~tid ~cat:"io" ~args name;
    match f () with
    | v ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid name;
        v
    | exception e ->
        Obs.Trace.end_span sink ~ts:(Engine.now t.eng) ~tid name;
        raise e
  end

(* Group object-space ranges per stripe and lock the stripes in rid
   order (the fixed order is what makes multi-stripe BW acquisition
   deadlock-free). *)
let acquire_stripes t file ~mode ~by_stripe =
  List.map
    (fun (stripe, lock_ranges) ->
      let rid = Layout.rid ~fid:file.f_fid ~stripe in
      let h = Lock_client.acquire t.locks ~rid ~mode ~ranges:lock_ranges in
      (rid, h))
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) by_stripe)

let group_by_stripe chunks =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (stripe, iv) ->
      let cur = Option.value (Hashtbl.find_opt tbl stripe) ~default:[] in
      Hashtbl.replace tbl stripe (iv :: cur))
    chunks;
  (* stripe order, not Hashtbl fold order: callers iterate the result
     directly (cache writes, read gathers), so the grouping must not
     inherit the hash table's randomizable iteration order *)
  Det_tbl.fold_sorted ~cmp:Int.compare
    (fun s ivs acc -> (s, Types.normalize_ranges ivs) :: acc)
    tbl []
  |> List.rev

let do_write ?mode ?(lock_whole_range = false) t file ~data_by_stripe =
  t.op_counter <- t.op_counter + 1;
  let op = t.op_counter in
  overhead t;
  let stripes = List.length data_by_stripe in
  let mode =
    match mode with
    | Some m -> m
    | None ->
        Policy.select_write t.policy ~spans_resources:(stripes > 1)
          ~implicit_read:false
  in
  let lock_ranges_of ranges =
    if lock_whole_range then [ Interval.to_eof ~lo:0 ]
    else if t.policy.Policy.datatype_requests then
      List.map (Interval.align ~page:t.config.Config.page) ranges
      |> Types.normalize_ranges
    else
      [ Interval.align ~page:t.config.Config.page (Types.ranges_hull ranges) ]
  in
  let held =
    acquire_stripes t file ~mode
      ~by_stripe:
        (List.map (fun (s, ranges) -> (s, lock_ranges_of ranges)) data_by_stripe)
  in
  let sn_of rid =
    match List.assoc_opt rid held with
    | Some h -> Lock_client.sn h
    | None ->
        Protocol_error.fail
          ~endpoint:(Printf.sprintf "client%d" t.id)
          ~request:(Printf.sprintf "write op %d: SN for stripe rid %d" op rid)
          ~got:"no lock handle held for that stripe"
  in
  List.iter
    (fun (stripe, ranges) ->
      let rid = Layout.rid ~fid:file.f_fid ~stripe in
      let sn = sn_of rid in
      List.iter
        (fun range ->
          Client_cache.write t.cache ~rid ~range ~sn ~op;
          t.w_bytes <- t.w_bytes + Interval.length range)
        ranges)
    data_by_stripe;
  List.iter (fun (_, h) -> Lock_client.release t.locks h) held

let write ?mode ?lock_whole_range t file ~off ~len =
  if len <= 0 then invalid_arg "Client.write: len must be positive";
  timed t (fun () ->
      io_span t "client.write"
        [ ("off", Obs.Json.Int off); ("len", Obs.Json.Int len) ]
        (fun () ->
          let chunks =
            Layout.chunks file.f_layout (Interval.of_len ~lo:off ~len)
          in
          do_write ?mode ?lock_whole_range t file
            ~data_by_stripe:(group_by_stripe chunks)))

let write_multi ?mode t file ~ranges =
  if ranges = [] then invalid_arg "Client.write_multi: no ranges";
  timed t (fun () ->
      let chunks =
        List.concat_map (fun iv -> Layout.chunks file.f_layout iv) ranges
      in
      do_write ?mode t file ~data_by_stripe:(group_by_stripe chunks))

let fetch_stripe t file ~stripe ~range =
  let rid = Layout.rid ~fid:file.f_fid ~stripe in
  (* Clean data cached under the (still cached) lock serves repeat reads
     without touching the data server. *)
  let remote =
    if Client_cache.clean_covers t.cache ~rid ~range then
      Client_cache.clean_view t.cache ~rid ~range
    else begin
      let segs =
        match
          io_call t rid
            ~resp_bytes:(Interval.length range)
            (Data_server.Read { rid; range })
        with
        | Data_server.Data segs -> segs
        | Data_server.Done as r ->
            Protocol_error.fail
              ~endpoint:(Rpc.name (t.io_route rid))
              ~request:
                (Printf.sprintf "Read rid=%d [%d,%d)" rid range.Interval.lo
                   range.Interval.hi)
              ~got:(Data_server.io_resp_to_string r)
      in
      Client_cache.store_clean t.cache ~rid segs;
      segs
    end
  in
  (* Overlay this client's dirty data (read-your-writes under a cached
     PW lock).  The overlay is SN-ordered like every other data merge:
     a dirty extent wins only where its SN is at least the server
     copy's (equal SN = same lock, and the cache holds its freshest
     bytes). *)
  let dirty = Client_cache.local_view t.cache ~rid ~range in
  let base =
    List.fold_left
      (fun m (iv, tag) ->
        match tag with Some tg -> Content.write m iv tg | None -> m)
      Content.empty remote
  in
  let overlay =
    List.fold_left
      (fun m (iv, tag) -> Content.overlay_cached m iv tag)
      base dirty
  in
  List.map (fun (iv, tag) -> (stripe, iv, tag)) (Content.read overlay range)

let read t file ~off ~len =
  if len <= 0 then invalid_arg "Client.read: len must be positive";
  timed t (fun () ->
    io_span t "client.read"
      [ ("off", Obs.Json.Int off); ("len", Obs.Json.Int len) ]
      (fun () ->
      t.op_counter <- t.op_counter + 1;
      overhead t;
      let chunks = Layout.chunks file.f_layout (Interval.of_len ~lo:off ~len) in
      let by_stripe = group_by_stripe chunks in
      let lock_by_stripe =
        List.map
          (fun (s, ranges) ->
            ( s,
              [ Interval.align ~page:t.config.Config.page
                  (Types.ranges_hull ranges) ] ))
          by_stripe
      in
      let held = acquire_stripes t file ~mode:Mode.PR ~by_stripe:lock_by_stripe in
      let segs =
        List.concat_map
          (fun (stripe, ranges) ->
            List.concat_map
              (fun range ->
                t.r_bytes <- t.r_bytes + Interval.length range;
                fetch_stripe t file ~stripe ~range)
              ranges)
          (List.sort (fun (a, _) (b, _) -> Int.compare a b) by_stripe)
      in
      List.iter (fun (_, h) -> Lock_client.release t.locks h) held;
      segs))

let read_checksum t file ~off ~len =
  (* Canonicalise first: fragment boundaries depend on cache state, so
     adjacent segments with identical provenance must merge before
     hashing or two coherent views could checksum differently. *)
  let tag_equal a b =
    match (a, b) with
    | None, None -> true
    | Some (x : Content.tag), Some y ->
        x.Content.writer = y.Content.writer && x.Content.op = y.Content.op
        && x.Content.sn = y.Content.sn
    | None, Some _ | Some _, None -> false
  in
  let segs = read t file ~off ~len in
  let canonical =
    List.fold_left
      (fun acc (stripe, (iv : Interval.t), tag) ->
        match acc with
        | (s', (p : Interval.t), t') :: rest
          when s' = stripe && p.hi = iv.lo && tag_equal t' tag ->
            (s', Interval.v ~lo:p.lo ~hi:iv.hi, t') :: rest
        | _ -> (stripe, iv, tag) :: acc)
      [] segs
    |> List.rev
  in
  List.fold_left
    (fun acc (stripe, (iv : Interval.t), tag) ->
      let mix acc x = (acc * 1_000_003) lxor x in
      let acc = mix (mix (mix acc stripe) iv.lo) iv.hi in
      match tag with
      | None -> mix acc (-1)
      | Some tg -> mix (mix (mix acc tg.Content.writer) tg.Content.op) tg.Content.sn)
    0x2545F491 canonical

let whole_file_locks t file =
  let stripes = List.init file.f_layout.Layout.stripe_count (fun s -> s) in
  acquire_stripes t file ~mode:Mode.PW
    ~by_stripe:(List.map (fun s -> (s, [ Interval.to_eof ~lo:0 ])) stripes)

let stat_size t file =
  match Rpc.call t.meta ~src:t.node (Meta_server.Stat { fid = file.f_fid }) with
  | Meta_server.Attrs a -> a.size
  | Meta_server.Enoent -> raise Not_found
  | Meta_server.Ok as r ->
      Protocol_error.fail ~endpoint:(Rpc.name t.meta)
        ~request:(Printf.sprintf "Stat fid=%d" file.f_fid)
        ~got:(Meta_server.resp_to_string r)

let append t file ~len =
  if len <= 0 then invalid_arg "Client.append: len must be positive";
  timed t (fun () ->
    io_span t "client.append"
      [ ("len", Obs.Json.Int len) ]
      (fun () ->
      let held = whole_file_locks t file in
      let size = stat_size t file in
      let chunks = Layout.chunks file.f_layout (Interval.of_len ~lo:size ~len) in
      t.op_counter <- t.op_counter + 1;
      let op = t.op_counter in
      overhead t;
      List.iter
        (fun (stripe, range) ->
          let rid = Layout.rid ~fid:file.f_fid ~stripe in
          let sn =
            match List.assoc_opt rid held with
            | Some h -> Lock_client.sn h
            | None ->
                Protocol_error.fail
                  ~endpoint:(Printf.sprintf "client%d" t.id)
                  ~request:
                    (Printf.sprintf "append op %d: SN for stripe rid %d" op rid)
                  ~got:"no whole-file lock handle held for that stripe"
          in
          Client_cache.write t.cache ~rid ~range ~sn ~op;
          t.w_bytes <- t.w_bytes + Interval.length range)
        chunks;
      (match
         Rpc.call t.meta ~src:t.node
           (Meta_server.Update_size { fid = file.f_fid; size = size + len })
       with
      | Meta_server.Ok -> ()
      | (Meta_server.Attrs _ | Meta_server.Enoent) as r ->
          Protocol_error.fail ~endpoint:(Rpc.name t.meta)
            ~request:
              (Printf.sprintf "Update_size fid=%d size=%d" file.f_fid
                 (size + len))
            ~got:(Meta_server.resp_to_string r));
      List.iter (fun (_, h) -> Lock_client.release t.locks h) held;
      size))

(* Object-space boundary of a stripe for a file truncated to [size]. *)
let stripe_keep_below layout ~stripe ~size =
  let s = layout.Layout.stripe_size and c = layout.Layout.stripe_count in
  let full_rows = size / (s * c) in
  let rem = size mod (s * c) in
  let chunk_idx = rem / s and within = rem mod s in
  (full_rows * s)
  + (if stripe < chunk_idx then s else if stripe = chunk_idx then within else 0)

let truncate t file ~size =
  if size < 0 then invalid_arg "Client.truncate: negative size";
  timed t (fun () ->
    io_span t "client.truncate"
      [ ("size", Obs.Json.Int size) ]
      (fun () ->
      let held = whole_file_locks t file in
      (match
         Rpc.call t.meta ~src:t.node
           (Meta_server.Set_size { fid = file.f_fid; size })
       with
      | Meta_server.Ok -> ()
      | (Meta_server.Attrs _ | Meta_server.Enoent) as r ->
          Protocol_error.fail ~endpoint:(Rpc.name t.meta)
            ~request:(Printf.sprintf "Set_size fid=%d size=%d" file.f_fid size)
            ~got:(Meta_server.resp_to_string r));
      for stripe = 0 to file.f_layout.Layout.stripe_count - 1 do
        let rid = Layout.rid ~fid:file.f_fid ~stripe in
        let keep_below = stripe_keep_below file.f_layout ~stripe ~size in
        Client_cache.drop_clean t.cache ~rid
          ~range:(Interval.to_eof ~lo:keep_below);
        match
          io_call t rid (Data_server.Truncate { rid; keep_below })
        with
        | Data_server.Done -> ()
        | Data_server.Data _ as r ->
            Protocol_error.fail
              ~endpoint:(Rpc.name (t.io_route rid))
              ~request:(Printf.sprintf "Truncate rid=%d keep_below=%d" rid keep_below)
              ~got:(Data_server.io_resp_to_string r)
      done;
      List.iter (fun (_, h) -> Lock_client.release t.locks h) held))

let fsync t = Client_cache.flush_all t.cache

let fsync_file t file =
  for stripe = 0 to file.f_layout.Layout.stripe_count - 1 do
    Client_cache.flush t.cache
      ~rid:(Layout.rid ~fid:file.f_fid ~stripe)
      ~ranges:[ Interval.to_eof ~lo:0 ]
  done

let crash t = Client_cache.lose_all_dirty t.cache
let lock_client t = t.locks
let cache t = t.cache
let node t = t.node
let bytes_written t = t.w_bytes
let bytes_read t = t.r_bytes
let ops t = t.op_counter
let io_seconds t = t.io_secs
