(** ccPFS tunables, defaulted to the paper's configuration (§IV-C, §V). *)

type t = {
  page : int;  (** cache / lock alignment unit, 4 KiB *)
  dirty_min : int;
      (** dirty bytes at which the client daemon starts voluntary
          flushing (256 MiB) *)
  dirty_max : int;
      (** dirty bytes at which writers block until space frees (4 GiB) *)
  flush_period : float;  (** client flush-daemon polling period, seconds *)
  extent_cache_limit : int;
      (** data-server extent-cache entries that trigger cleanup (256 K) *)
  cleanup_batch : int;  (** entries examined per cleanup round (1 024) *)
  cleanup_period : float;  (** cleanup-task polling period, seconds *)
  extent_log : bool;  (** keep the per-stripe extent log for recovery *)
  flush_wire_page_only : bool;
      (** Fig. 5's "first page only" hack: flush RPCs put at most one
          4 KiB page on the wire regardless of payload (timing knob; the
          logical data still lands) *)
  batch_k : int;
      (** RPC batching factor (DESIGN.md §13): 0 or 1 = off; [k >= 2]
          coalesces up to [k] plain messages per server endpoint into one
          simulated message and piggybacks client control traffic on
          flush RPCs.  Defaults to the [CCPFS_BATCH] environment
          variable (unset = off). *)
  batch_delay : float;
      (** batch flush delay-timer, seconds: an undersized batch is held
          at most this long before it goes on the wire *)
}

val default : t

val with_dirty_limits : dirty_min:int -> dirty_max:int -> t -> t
val with_extent_cache : limit:int -> t -> t
val with_extent_log : bool -> t -> t
val with_flush_wire_page_only : bool -> t -> t

val with_batching : ?delay:float -> k:int -> t -> t
(** [with_batching ~k t] turns batching on ([k >= 2]) or off ([k = 0/1])
    regardless of [CCPFS_BATCH]; raises [Invalid_argument] on negative
    [k] or [delay]. *)
