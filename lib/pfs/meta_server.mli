(** The namespace service (the external NFS of the paper's deployment).

    ccPFS creates/opens files here, takes the returned fid (the NFS inode
    number in the artifact) to derive stripe/lock-resource ids, and keeps
    the authoritative file size here for append and stat. *)

type t

type attrs = { fid : int; layout : Layout.t; size : int }

type req =
  | Open of { path : string; create : bool; layout : Layout.t }
  | Stat of { fid : int }
  | Update_size of { fid : int; size : int }  (** grows only *)
  | Set_size of { fid : int; size : int }  (** truncate *)

type resp = Attrs of attrs | Ok | Enoent

val create : Dessim.Engine.t -> Netsim.Params.t -> node:Netsim.Node.t -> t
val endpoint : t -> (req, resp) Netsim.Rpc.endpoint
val file_count : t -> int
val resp_to_string : resp -> string
(** Short rendering for diagnostics: ["Attrs{fid=3,size=8192}"], ["Ok"],
    ["Enoent"]. *)
