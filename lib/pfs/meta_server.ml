type attrs = { fid : int; layout : Layout.t; size : int }

type req =
  | Open of { path : string; create : bool; layout : Layout.t }
  | Stat of { fid : int }
  | Update_size of { fid : int; size : int }
  | Set_size of { fid : int; size : int }

type resp = Attrs of attrs | Ok | Enoent

type entry = { e_fid : int; e_layout : Layout.t; mutable e_size : int }

type t = {
  by_path : (string, entry) Hashtbl.t;
  by_fid : (int, entry) Hashtbl.t;
  mutable next_fid : int;
  mutable ep : (req, resp) Netsim.Rpc.endpoint option;
}

let handle t req ~reply =
  match req with
  | Open { path; create; layout } -> (
      match Hashtbl.find_opt t.by_path path with
      | Some e ->
          reply (Attrs { fid = e.e_fid; layout = e.e_layout; size = e.e_size })
      | None ->
          if not create then reply Enoent
          else begin
            t.next_fid <- t.next_fid + 1;
            let e = { e_fid = t.next_fid; e_layout = layout; e_size = 0 } in
            Hashtbl.add t.by_path path e;
            Hashtbl.add t.by_fid e.e_fid e;
            reply (Attrs { fid = e.e_fid; layout; size = 0 })
          end)
  | Stat { fid } -> (
      match Hashtbl.find_opt t.by_fid fid with
      | Some e ->
          reply (Attrs { fid = e.e_fid; layout = e.e_layout; size = e.e_size })
      | None -> reply Enoent)
  | Update_size { fid; size } -> (
      match Hashtbl.find_opt t.by_fid fid with
      | Some e ->
          if size > e.e_size then e.e_size <- size;
          reply Ok
      | None -> reply Enoent)
  | Set_size { fid; size } -> (
      match Hashtbl.find_opt t.by_fid fid with
      | Some e ->
          e.e_size <- size;
          reply Ok
      | None -> reply Enoent)

let create eng params ~node =
  let t =
    { by_path = Hashtbl.create 16; by_fid = Hashtbl.create 16; next_fid = 0;
      ep = None }
  in
  t.ep <-
    Some
      (Netsim.Rpc.endpoint eng params ~node ~name:"meta"
         ~handler:(fun req ~reply -> handle t req ~reply));
  t

let endpoint t = Option.get t.ep
let file_count t = Hashtbl.length t.by_path

let resp_to_string = function
  | Attrs a -> Printf.sprintf "Attrs{fid=%d,size=%d}" a.fid a.size
  | Ok -> "Ok"
  | Enoent -> "Enoent"
