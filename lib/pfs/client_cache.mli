(** The client-side data cache (§IV-A, Fig. 14).

    Dirty data is kept per lock resource (stripe) as SN-tagged extents;
    inserting data with a larger SN overwrites overlapping older data, so
    the cache stays coherent under early grant even while older locks'
    flushes are still in flight.  Flushing a lock sends the dirty extents
    under the lock's ranges in one batched RPC carrying per-block SNs; the
    extents leave the cache at send time (new writes land fresh and the
    server's SN merge orders everything).

    Durability best-effort (§IV-C1): a daemon voluntarily flushes once
    dirty bytes exceed [dirty_min]; writers block on [dirty_max]. *)

type t

val create :
  Dessim.Engine.t -> Netsim.Params.t -> Config.t -> node:Netsim.Node.t ->
  client_id:int ->
  io_route:(int -> (Data_server.io_req, Data_server.io_resp) Netsim.Rpc.endpoint) ->
  t
(** [io_route rid] is the IO endpoint of the data server storing that
    stripe.  Starts the flush daemon. *)

val set_reliability :
  t -> Netsim.Rpc.reliability -> Netsim.Rpc.View.t -> unit
(** Route flush RPCs through the fenced retry transport under the
    client's epoch [view]: a Write_flush then survives a data-server
    outage (retransmitted until acknowledged, deduplicated server-side). *)

val set_ctl_source : t -> (rid:int -> Seqdlm.Types.ctl_msg list) -> unit
(** Piggybacking (DESIGN.md §13): before each flush RPC the cache asks
    this callback for the lock-control messages pending for the stripe's
    server and attaches them to the Write_flush (their bytes are added to
    the wire size).  Installed by {!Client} when the policy piggybacks
    releases ([Policy.piggyback_release], SeqDLM). *)

val write :
  t -> rid:int -> range:Ccpfs_util.Interval.t -> sn:int -> op:int -> unit
(** Insert dirty data written under a lock with sequence number [sn];
    costs [length / b_mem] of the node's memory pipe and blocks while the
    cache is at [dirty_max]. *)

val flush : t -> rid:int -> ranges:Ccpfs_util.Interval.t list -> unit
(** Flush dirty extents under the ranges; blocks until the data server
    acknowledged.  No-op if nothing is dirty there. *)

val flush_all : t -> unit
(** fsync: flush every dirty extent of every stripe. *)

val has_dirty : t -> rid:int -> ranges:Ccpfs_util.Interval.t list -> bool

val local_view :
  t -> rid:int -> range:Ccpfs_util.Interval.t ->
  (Ccpfs_util.Interval.t * Ccpfs_util.Content.tag) list
(** Dirty extents overlapping the range (read-your-writes overlay). *)

(** {1 Clean (read) cache}

    Data fetched from data servers is cached under the protection of the
    read-capable lock that covered the fetch ("data can be cached in
    clients under the protection of the cached locks", §I); the lock
    client invalidates it when that protection lapses. *)

val store_clean :
  t -> rid:int ->
  (Ccpfs_util.Interval.t * Ccpfs_util.Content.tag option) list -> unit
(** Remember fetched segments (holes included, so known-empty ranges do
    not refetch). *)

val clean_covers : t -> rid:int -> range:Ccpfs_util.Interval.t -> bool

val clean_view :
  t -> rid:int -> range:Ccpfs_util.Interval.t ->
  (Ccpfs_util.Interval.t * Ccpfs_util.Content.tag option) list
(** Cached segments over the range, clipped, in offset order. *)

val invalidate_clean :
  t -> rid:int -> ranges:Ccpfs_util.Interval.t list -> unit

val clean_bytes : t -> int
val read_cache_hits : t -> int
val read_cache_misses : t -> int

val dirty_bytes : t -> int
val dirty_peak : t -> int
val cache_write_seconds : t -> float
(** Virtual time spent inserting into the cache — the "IO time" of the
    locking/IO ratio in Fig. 18(b). *)

val bytes_flushed : t -> int
val flush_rpcs : t -> int
val drop_clean : t -> rid:int -> range:Ccpfs_util.Interval.t -> unit
(** Discard dirty extents without flushing (truncate support). *)

val lose_all_dirty : t -> int
(** Client crash (§IV-C1): every dirty byte vanishes.  Returns how many
    were lost. *)

(** {1 Sanitizer hooks} *)

val dirty_view :
  t -> (int * (Ccpfs_util.Interval.t * Ccpfs_util.Content.tag) list) list
(** Every stripe with dirty extents, ascending by rid, extents in offset
    order — the sanitizer checks these against the client's cached lock
    ranges. *)

val set_audit : t -> (rid:int -> unit) -> unit
(** Install a callback invoked after every dirty-cache mutation by
    [write], with the stripe that changed. *)

val set_write_observer :
  t -> (rid:int -> range:Ccpfs_util.Interval.t -> sn:int -> op:int -> unit) ->
  unit
(** Install a callback invoked on every dirty insert with the written
    object range and its provenance (the lock's SN and the writer's op
    counter) — the fuzzer's journal of what was semantically written,
    independent of when it is flushed. *)

val client_id : t -> int
