(** Assembly of a whole simulated ccPFS deployment: a metadata node, data
    servers (each running an IO service and the DLM service for its
    stripes), and clients.

    Data placement is static — stripe [rid] is stored on server
    [rid mod n_servers] (§IV) and never moves.  The {e lock} namespace is
    dynamic: ownership is read from an epoch-versioned {!Shard_map}
    (DESIGN.md §15) on every route decision, and single resources can be
    rehomed between live servers with {!migrate_resource}.  Clients hold
    cached map replicas refreshed through a meta-node map service when a
    server bounces them with [Stale_owner]. *)

type t

val create :
  ?params:Netsim.Params.t -> ?config:Config.t ->
  ?policy:Seqdlm.Policy.t -> ?reliability:Netsim.Rpc.reliability ->
  n_servers:int -> n_clients:int -> unit ->
  t
(** Defaults: testbed {!Netsim.Params.default}, {!Config.default},
    {!Seqdlm.Policy.seqdlm}.  With [reliability], every client's lock
    acquires, control messages and data-server I/O go through the fenced
    retry transport ({!Netsim.Rpc.call_reliable}) — required for online
    failover ({!Ha}); without it the transport behaves exactly as
    before. *)

val engine : t -> Dessim.Engine.t
val params : t -> Netsim.Params.t
val config : t -> Config.t
val policy : t -> Seqdlm.Policy.t
val n_clients : t -> int
val n_servers : t -> int
val client : t -> int -> Client.t

val server_of_rid : t -> int -> int
(** Current lock owner of a resource, read from the authoritative shard
    map — the single source of truth also backing every client's route
    and every server's ownership gate. *)

val shard_map : t -> Shard_map.t
val data_server : t -> int -> Data_server.t
val lock_server : t -> int -> Seqdlm.Lock_server.t
val server_node : t -> int -> Netsim.Node.t
val meta : t -> Meta_server.t
val reliability : t -> Netsim.Rpc.reliability option

val total_retries : t -> int
(** Fenced-call retransmissions summed over all clients. *)

val total_stale_bounces : t -> int
(** [Stale_owner] bounces summed over all clients. *)

val spawn_client : t -> int -> name:string -> (Client.t -> unit) -> unit
(** Spawn a process running on client [i]. *)

val run : ?until:float -> t -> unit
val now : t -> float

val fsync_all : t -> unit
(** Run a process per client flushing all dirty data, and wait for
    completion (the explicit flush phase whose duration is the "F time"
    of the evaluation figures). *)

val refresh_client_maps : t -> unit
(** Install the current shard-map snapshot into every client's cached
    replica.  Recovery coordinators call this before gathering so
    clients filter their cached grants through up-to-date ownership
    (the query is treated as carrying the map). *)

val recover_lock_server :
  t -> int -> gather:(Client.t -> Seqdlm.Lock_client.recovery_lock list) -> int
(** The §IV-C2 recovery core shared by {!crash_and_recover_server} and
    the online coordinator ({!Ha.Failover}): reinstall each client's
    gathered grants for the resources server [i] owns (filtered against
    the authoritative map), restore SN floors from the extent logs of
    each resource's {e data} home, and run the server self-check.
    Returns the number of locks reinstalled. *)

val crash_and_recover_server : t -> int -> unit
(** Fail server [i] between runs and run the §IV-C2 recovery protocol:
    (1) the lock server rebuilds its lock table by gathering the grants
    every client still caches for the stripes this server owns;
    (2) the data server replays its extent logs to rebuild the extent
    caches (the device contents survive);
    (3) sequence-number floors are restored from both sources, so SNs
    issued after recovery stay above everything ever written.
    Requires {!Config.t.extent_log}. *)

(** {1 Resource migration (DESIGN.md §15)} *)

type migration_record = {
  m_rid : int;
  m_from : int;
  m_to : int;
  m_epoch : int;  (** shard-map epoch installed by this migration *)
  m_start : float;
  m_commit : float;
  m_locks_moved : int;
  m_bounced : int;  (** waiters bounced with [Stale_owner] *)
}

val migrate_resource : t -> rid:int -> dst:int -> migration_record option
(** Epoch-fenced rehoming of one resource's lock namespace onto [dst],
    safe under live traffic: freeze intake, drain in-flight activity for
    a two-RTT window, then atomically flip the map, extract the lock
    table (bouncing queued and parked waiters with the new epoch), adopt
    on [dst] and restore the extent-log SN floor from the resource's
    static data home.  [None] (no map change) when the resource already
    lives on [dst], a colocated force-sync pins it, the source crashed
    during the drain window, or [dst] is down.  Must be called from
    within an engine process. *)

val migrations : t -> migration_record list
(** Completed migrations, oldest first. *)

(** {1 Aggregated metrics} *)

val total_locking_seconds : t -> float
val total_cache_seconds : t -> float
val total_io_seconds : t -> float
val total_bytes_written : t -> int
val sum_lock_stats : t -> Seqdlm.Lock_server.stats
val total_disk_bytes : t -> int
val check_invariants : t -> unit

val stripe_contents : t -> Client.file -> stripe:int -> Ccpfs_util.Content.t
(** Device contents of one stripe of a file (for end-to-end checks). *)
