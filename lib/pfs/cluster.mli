(** Assembly of a whole simulated ccPFS deployment: a metadata node, data
    servers (each running an IO service and the DLM service for its
    stripes), and clients.  Stripes are distributed to servers by hashing
    the resource id (§IV), here [rid mod n_servers]. *)

type t

val create :
  ?params:Netsim.Params.t -> ?config:Config.t ->
  ?policy:Seqdlm.Policy.t -> ?reliability:Netsim.Rpc.reliability ->
  n_servers:int -> n_clients:int -> unit ->
  t
(** Defaults: testbed {!Netsim.Params.default}, {!Config.default},
    {!Seqdlm.Policy.seqdlm}.  With [reliability], every client's lock
    acquires, control messages and data-server I/O go through the fenced
    retry transport ({!Netsim.Rpc.call_reliable}) — required for online
    failover ({!Ha}); without it the transport behaves exactly as
    before. *)

val engine : t -> Dessim.Engine.t
val params : t -> Netsim.Params.t
val config : t -> Config.t
val policy : t -> Seqdlm.Policy.t
val n_clients : t -> int
val n_servers : t -> int
val client : t -> int -> Client.t
val server_of_rid : t -> int -> int
val data_server : t -> int -> Data_server.t
val lock_server : t -> int -> Seqdlm.Lock_server.t
val server_node : t -> int -> Netsim.Node.t
val meta : t -> Meta_server.t
val reliability : t -> Netsim.Rpc.reliability option

val total_retries : t -> int
(** Fenced-call retransmissions summed over all clients. *)

val spawn_client : t -> int -> name:string -> (Client.t -> unit) -> unit
(** Spawn a process running on client [i]. *)

val run : ?until:float -> t -> unit
val now : t -> float

val fsync_all : t -> unit
(** Run a process per client flushing all dirty data, and wait for
    completion (the explicit flush phase whose duration is the "F time"
    of the evaluation figures). *)

val crash_and_recover_server : t -> int -> unit
(** Fail server [i] between runs and run the §IV-C2 recovery protocol:
    (1) the lock server rebuilds its lock table by gathering the grants
    every client still caches for the stripes this server owns;
    (2) the data server replays its extent logs to rebuild the extent
    caches (the device contents survive);
    (3) sequence-number floors are restored from both sources, so SNs
    issued after recovery stay above everything ever written.
    Requires {!Config.t.extent_log}. *)

(** {1 Aggregated metrics} *)

val total_locking_seconds : t -> float
val total_cache_seconds : t -> float
val total_io_seconds : t -> float
val total_bytes_written : t -> int
val sum_lock_stats : t -> Seqdlm.Lock_server.stats
val total_disk_bytes : t -> int
val check_invariants : t -> unit

val stripe_contents : t -> Client.file -> stripe:int -> Ccpfs_util.Content.t
(** Device contents of one stripe of a file (for end-to-end checks). *)
