(** Counters, gauges and log-bucketed histograms over simulated time.

    One registry per simulation engine.  Handles are resolved by name
    once, at instrumentation-site setup (endpoint creation, node
    creation, …); the per-observation cost is a flag check plus an array
    or field update, and nothing at all while the registry is disabled —
    registries start disabled and are switched on per run by the
    harness.  Two lookups of the same name return the same instrument. *)

type t

val create : unit -> t
(** A fresh, disabled registry. *)

val enable : t -> unit
val is_enabled : t -> bool

type counter

val counter : t -> string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Records the latest value and tracks the maximum seen. *)

val gauge_value : gauge -> float

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Values land in power-of-two buckets: bucket upper bounds are
    [2^(i-64)], so the span covers ~5.4e-20 .. 9.2e18 with one bucket per
    doubling — ns-to-hours latencies and byte-to-TiB sizes both fit.
    Non-positive values land in the lowest bucket. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val hist_quantile : histogram -> float -> float
(** [hist_quantile h p]: upper bound of the bucket holding the
    nearest-rank [p]-th percentile (the smallest bucket whose cumulative
    count reaches rank [ceil (p/100 * n)]).  Resolution is one
    power-of-two bucket — a tail estimate (p99/p999) for dashboards, not
    an exact order statistic; use {!Ccpfs_util.Stats.percentile} when
    the samples themselves are retained.  [p] is clamped to [0, 100];
    0. on an empty histogram. *)

val to_json : t -> Json.t
(** Snapshot: [{"counters": {...}, "gauges": {...}, "histograms": {...}}]
    with every instrument sorted by name.  Histograms carry count, sum,
    min, max and the non-empty buckets. *)
