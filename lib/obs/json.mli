(** Minimal JSON: a value type, a compact serializer and a strict parser.

    Zero dependencies by design — this is what lets the observability
    layer sit below every other library of the repository (the simulation
    engine included) without pulling a JSON package into the build.  The
    parser exists so tests and CI can validate the writer's output
    (traces, [BENCH_*.json]) without external tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (no whitespace) serialization.  Non-finite floats become
    [null]: the Chrome trace viewer rejects [inf]/[nan] literals. *)

val to_string : t -> string

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a fresh file. *)

exception Parse_error of { offset : int; message : string; context : string }
(** Raised by {!parse_exn}: the byte [offset] of the failure, what went
    wrong, and a short escaped excerpt of the input around the offset
    (the exact byte marked with [<HERE>]).  A printer is registered, so
    an uncaught [Parse_error] renders the same string {!parse} returns
    in its [Error]. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing garbage and
    duplicate object keys are errors — this parser only ever reads this
    serializer's output, where a repeated key means a writer bug).
    Numbers with a fraction or exponent come back as [Float], others as
    [Int].  Error strings carry the byte offset and a context excerpt. *)

val parse_exn : string -> t
(** @raise Parse_error on parse error. *)

(** {1 Accessors} (for tests and validators) *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val get_list : t -> t list
(** [List] payload; [] on anything else. *)

val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts [Int] too. *)
