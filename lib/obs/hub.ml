let trace_path : string option ref = ref None
let sinks : Trace.sink list ref = ref [] (* newest first *)
let cur_experiment = ref ""
let cur_scale = ref 1.0
let run_counter = ref 0
let pid_counter = ref 0

let request_trace path = trace_path := Some path
let trace_requested () = Option.is_some !trace_path

let set_run_info ~experiment ~scale =
  cur_experiment := experiment;
  cur_scale := scale;
  run_counter := 0

let experiment () = !cur_experiment
let scale () = !cur_scale

let next_run_id () =
  let i = !run_counter in
  run_counter := i + 1;
  i

let new_sink ?label () =
  if not (trace_requested ()) then None
  else begin
    incr pid_counter;
    let label =
      match label with
      | Some l -> l
      | None ->
          let exp = if !cur_experiment = "" then "run" else !cur_experiment in
          Printf.sprintf "%s#%d" exp !run_counter
    in
    let s = Trace.make ~pid:!pid_counter ~label () in
    sinks := s :: !sinks;
    Some s
  end

let flush_trace () =
  match !trace_path with
  | None -> None
  | Some path ->
      let ss = List.rev !sinks in
      sinks := [];
      let n = List.fold_left (fun acc s -> acc + Trace.num_events s) 0 ss in
      if n = 0 then None
      else begin
        Json.to_file path (Trace.to_json ss);
        Some (path, n)
      end

let reset () =
  trace_path := None;
  sinks := [];
  cur_experiment := "";
  cur_scale := 1.0;
  run_counter := 0;
  pid_counter := 0
