(** The machine-readable results accumulator behind [BENCH_*.json].

    Experiment harnesses append one row per measured run; the CLI / bench
    drivers write the accumulated rows out once at the end.  Rows are
    arbitrary JSON objects — the schemas actually emitted are documented
    in EXPERIMENTS.md ("Machine-readable results"). *)

val add : Json.t -> unit
(** Append a row (callers pass a [Json.Obj]). *)

val count : unit -> int
val rows : unit -> Json.t list
val clear : unit -> unit

val document : schema:string -> Json.t
(** [{"schema": schema, "generated_by": ..., "results": [rows]}]. *)

val write : schema:string -> path:string -> int
(** Write {!document} to [path] and clear the accumulator; returns the
    number of rows written. *)
