(** The machine-readable results accumulator behind [BENCH_*.json].

    Experiment harnesses append one row per measured run; the CLI / bench
    drivers write the accumulated rows out once at the end.  Rows are
    arbitrary JSON objects — the schemas actually emitted are documented
    in EXPERIMENTS.md ("Machine-readable results"). *)

val add : Json.t -> unit
(** Append a row (callers pass a [Json.Obj]). *)

val count : unit -> int
val rows : unit -> Json.t list
val clear : unit -> unit

val document : schema:string -> Json.t
(** [{"schema": schema, "generated_by": ..., "results": [rows]}]. *)

val write : ?append:bool -> schema:string -> path:string -> unit -> int
(** Write {!document} to [path] and clear the accumulator; returns the
    number of rows written.  With [append] (default false), rows already
    in [path] are kept: if the file exists and parses as a document of
    the same schema, its rows come first and the accumulated rows are
    appended — how repeated fuzz/CI invocations accumulate one results
    file.  A missing, unparsable or different-schema file is simply
    overwritten. *)
