type ev = {
  ph : char;
  name : string;
  cat : string;
  ts : float;
  dur : float;
  tid : int;
  args : (string * Json.t) list;
}

type sink = {
  on : bool;
  s_pid : int;
  s_label : string;
  mutable evs : ev list; (* newest first *)
  mutable n : int;
}

let null = { on = false; s_pid = 0; s_label = ""; evs = []; n = 0 }

let make ?(pid = 0) ?(label = "") () =
  { on = true; s_pid = pid; s_label = label; evs = []; n = 0 }

let enabled s = s.on
let pid s = s.s_pid
let label s = s.s_label

let emit s ev =
  if s.on then begin
    s.evs <- ev :: s.evs;
    s.n <- s.n + 1
  end

let begin_span s ~ts ~tid ?(cat = "") ?(args = []) name =
  emit s { ph = 'B'; name; cat; ts; dur = 0.; tid; args }

let end_span s ~ts ~tid name =
  (* 'E' events need no name in the format, but carrying it makes the
     matched-pair validation in tests/CI purely textual. *)
  emit s { ph = 'E'; name; cat = ""; ts; dur = 0.; tid; args = [] }

let complete s ~ts ~dur ~tid ?(cat = "") ?(args = []) name =
  emit s { ph = 'X'; name; cat; ts; dur; tid; args }

let instant s ~ts ~tid ?(cat = "") ?(args = []) name =
  emit s { ph = 'i'; name; cat; ts; dur = 0.; tid; args }

let thread_name s ~tid name =
  emit s
    {
      ph = 'M'; name = "thread_name"; cat = ""; ts = 0.; dur = 0.; tid;
      args = [ ("name", Json.Str name) ];
    }

let events s = List.rev s.evs
let num_events s = s.n

let usec t = Json.Float (t *. 1e6)

let ev_json ~pid (e : ev) =
  let base =
    [ ("name", Json.Str e.name); ("ph", Json.Str (String.make 1 e.ph));
      ("ts", usec e.ts); ("pid", Json.Int pid); ("tid", Json.Int e.tid) ]
  in
  let base = if e.cat = "" then base else base @ [ ("cat", Json.Str e.cat) ] in
  let base = if e.ph = 'X' then base @ [ ("dur", usec e.dur) ] else base in
  let base =
    (* Instants scoped to the thread track, the viewer's default. *)
    if e.ph = 'i' then base @ [ ("s", Json.Str "t") ] else base
  in
  let base =
    if List.is_empty e.args then base
    else base @ [ ("args", Json.Obj e.args) ]
  in
  Json.Obj base

let to_json sinks =
  let evs =
    List.concat_map
      (fun s ->
        let meta =
          if s.s_label = "" then []
          else
            [ Json.Obj
                [ ("name", Json.Str "process_name"); ("ph", Json.Str "M");
                  ("ts", usec 0.); ("pid", Json.Int s.s_pid);
                  ("tid", Json.Int 0);
                  ("args", Json.Obj [ ("name", Json.Str s.s_label) ]) ] ]
        in
        meta @ List.rev_map (fun e -> ev_json ~pid:s.s_pid e) s.evs)
      sinks
  in
  Json.Obj
    [ ("traceEvents", Json.List evs); ("displayTimeUnit", Json.Str "ms") ]
