(** Process-global observability wiring.

    The CLI drivers see the [--trace] flag; the experiment harness builds
    clusters several layers below without the flag in scope.  The hub is
    the meeting point: drivers {!request_trace} and stamp the current
    experiment with {!set_run_info}; the harness asks {!new_sink} for a
    per-run trace sink (None when tracing is off, so the default path
    stays free) and {!flush_trace} writes everything collected to the
    requested file.  Mirrors the [Check.Sanitize] enable-globals
    pattern. *)

val request_trace : string -> unit
(** Enable trace collection; [string] is the output path. *)

val trace_requested : unit -> bool

val set_run_info : experiment:string -> scale:float -> unit
(** Stamp the experiment the next sinks/rows belong to; resets the
    per-experiment run counter. *)

val experiment : unit -> string
(** Current experiment id; [""] when none was stamped. *)

val scale : unit -> float

val next_run_id : unit -> int
(** Sequence number of runs under the current experiment (0-based);
    increments on every call. *)

val new_sink : ?label:string -> unit -> Trace.sink option
(** A fresh collecting sink registered for {!flush_trace}, with a unique
    pid and a default label ["<experiment>#<run>"] — or [None] when no
    trace was requested.  The caller owns attaching it to an engine. *)

val flush_trace : unit -> (string * int) option
(** Write every registered sink to the requested path as one Chrome
    trace; returns [(path, n_events)] and forgets the sinks.  [None]
    when tracing is off or nothing was collected. *)

val reset : unit -> unit
(** Drop all state (tests). *)
