(** Span/event tracing in Chrome [trace_event] form.

    A {!sink} collects timestamped events for one simulation run; all
    timestamps are in {e simulated} seconds (converted to the format's
    microseconds at export).  Every emitter guards on {!enabled}, and the
    shared {!null} sink keeps that guard a single load-and-branch: with
    tracing off the instrumented hot paths do no allocation and no work.

    Conventions used across the stack (see DESIGN.md §8):
    - [pid] identifies the run (one cluster = one process group in the
      viewer), [tid] is the simulated process id ({!Engine.current_pid}).
    - Synchronous work uses begin/end pairs ([ph:"B"]/[ph:"E"]), which
      must nest per (pid, tid) — guaranteed here because a simulated
      process is sequential.
    - Lock wait attribution uses complete events ([ph:"X"]) carrying a
      duration, so wait totals can be recovered by summation alone.
    - Point events use [ph:"i"], thread/process names [ph:"M"]. *)

type sink

type ev = {
  ph : char;  (** 'B' | 'E' | 'X' | 'i' | 'M' *)
  name : string;
  cat : string;
  ts : float;  (** simulated seconds *)
  dur : float;  (** seconds; only meaningful for 'X' *)
  tid : int;
  args : (string * Json.t) list;
}

val null : sink
(** The disabled sink: {!enabled} is [false], emitters drop everything. *)

val make : ?pid:int -> ?label:string -> unit -> sink
(** A collecting sink.  [pid] tags every event (default 0); [label]
    becomes the viewer's process name. *)

val enabled : sink -> bool
val pid : sink -> int
val label : sink -> string

val begin_span :
  sink -> ts:float -> tid:int -> ?cat:string ->
  ?args:(string * Json.t) list -> string -> unit

val end_span : sink -> ts:float -> tid:int -> string -> unit

val complete :
  sink -> ts:float -> dur:float -> tid:int -> ?cat:string ->
  ?args:(string * Json.t) list -> string -> unit

val instant :
  sink -> ts:float -> tid:int -> ?cat:string ->
  ?args:(string * Json.t) list -> string -> unit

val thread_name : sink -> tid:int -> string -> unit

val events : sink -> ev list
(** In emission order. *)

val num_events : sink -> int

val to_json : sink list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] over every sink,
    each sink contributing its own [pid] plus a [process_name] metadata
    record when labelled.  Load the result in Perfetto / chrome://tracing. *)
