let acc : Json.t list ref = ref [] (* newest first *)

let add row = acc := row :: !acc
let count () = List.length !acc
let rows () = List.rev !acc
let clear () = acc := []

let document ~schema =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("generated_by", Json.Str "ccpfs (SeqDLM reproduction)");
      ("results", Json.List (rows ())) ]

let write ~schema ~path =
  let n = count () in
  Json.to_file path (document ~schema);
  clear ();
  n
