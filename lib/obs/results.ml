let acc : Json.t list ref = ref [] (* newest first *)

let add row = acc := row :: !acc
let count () = List.length !acc
let rows () = List.rev !acc
let clear () = acc := []

let doc_of ~schema rows =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("generated_by", Json.Str "ccpfs (SeqDLM reproduction)");
      ("results", Json.List rows) ]

let document ~schema = doc_of ~schema (rows ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rows already on disk, if [path] holds a valid document of the same
   schema.  A different schema, a missing file or an unparsable one all
   mean "start fresh" — appending across schemas would corrupt both. *)
let prior_rows ~schema ~path =
  if not (Sys.file_exists path) then []
  else
    match Json.parse (read_file path) with
    | Ok doc
      when (match Json.member "schema" doc with
           | Some (Json.Str s) -> String.equal s schema
           | Some _ | None -> false) -> (
        match Json.member "results" doc with
        | Some rows -> Json.get_list rows
        | None -> [])
    | Ok _ | Error _ -> []

let write ?(append = false) ~schema ~path () =
  let all =
    (if append then prior_rows ~schema ~path else []) @ rows ()
  in
  Json.to_file path (doc_of ~schema all);
  clear ();
  List.length all
