type t = {
  mutable on : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

and counter = { c_reg : t; mutable c_v : int }
and gauge = { g_reg : t; mutable g_v : float; mutable g_max : float }

and histogram = {
  h_reg : t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* 128 power-of-two buckets *)
}

let n_buckets = 128
let bucket_bias = 64

let create () =
  {
    on = false;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let enable t = t.on <- true
let is_enabled t = t.on

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_reg = t; c_v = 0 } in
      Hashtbl.add t.counters name c;
      c

let add c n = if c.c_reg.on then c.c_v <- c.c_v + n
let incr c = add c 1
let counter_value c = c.c_v

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_reg = t; g_v = 0.; g_max = neg_infinity } in
      Hashtbl.add t.gauges name g;
      g

let set_gauge g v =
  if g.g_reg.on then begin
    g.g_v <- v;
    if v > g.g_max then g.g_max <- v
  end

let gauge_value g = g.g_v

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_reg = t; h_count = 0; h_sum = 0.; h_min = infinity;
          h_max = neg_infinity; h_buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.add t.histograms name h;
      h

(* Bucket index of [v]: the unique i with 2^(i-65) <= v < 2^(i-64), i.e.
   upper bound 2^(i-64); frexp gives v = m * 2^e with m in [0.5, 1). *)
let bucket_of v =
  if v <= 0. || not (Float.is_finite v) then 0
  else
    let _, e = Float.frexp v in
    let i = e + bucket_bias in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bound_of i = Float.ldexp 1. (i - bucket_bias)

let observe h v =
  if h.h_reg.on then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_of v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let hist_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bound_of i, h.h_buckets.(i)) :: !acc
  done;
  !acc

(* Same ceil-with-tolerance nearest-rank arithmetic as Stats.percentile
   (see the comment there): the tolerance only undoes binary-float noise
   in p/100*n, never skips a genuine rank. *)
let hist_quantile h p =
  if h.h_count = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let x = p /. 100. *. float_of_int h.h_count in
    let rank =
      Stdlib.max 1
        (Stdlib.min h.h_count
           (int_of_float (ceil (x -. (1e-9 +. (1e-12 *. x))))))
    in
    let acc = ref 0 and result = ref 0. and found = ref false in
    for i = 0 to n_buckets - 1 do
      if not !found then begin
        acc := !acc + h.h_buckets.(i);
        if !acc >= rank then begin
          found := true;
          result := bound_of i
        end
      end
    done;
    !result
  end

let sorted_bindings tbl =
  (* obs stays dependency-free (no ccpfs_util / Det_tbl here); the raw
     fold is immediately sorted by key below, so order can't leak *)
  (Hashtbl.fold
     [@lint.allow
       "D001 obs is dependency-free by design; the fold result is sorted \
        by key on the next line"])
    (fun k v acc -> (k, v) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  let counters =
    sorted_bindings t.counters |> List.map (fun (k, c) -> (k, Json.Int c.c_v))
  in
  let gauges =
    sorted_bindings t.gauges
    |> List.map (fun (k, g) ->
           ( k,
             Json.Obj
               [ ("last", Json.Float g.g_v);
                 ( "max",
                   if g.g_max = neg_infinity then Json.Null
                   else Json.Float g.g_max ) ] ))
  in
  let histograms =
    sorted_bindings t.histograms
    |> List.map (fun (k, h) ->
           ( k,
             Json.Obj
               [ ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum);
                 ( "min",
                   if h.h_count = 0 then Json.Null else Json.Float h.h_min );
                 ( "max",
                   if h.h_count = 0 then Json.Null else Json.Float h.h_max );
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (le, n) ->
                          Json.Obj
                            [ ("le", Json.Float le); ("count", Json.Int n) ])
                        (hist_buckets h)) ) ] ))
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms) ]
