type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serializer                                                          *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.12g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf v;
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of { offset : int; message : string; context : string }

(* A short escaped excerpt around the failure offset, with the exact
   byte marked — enough to find the problem in a multi-megabyte trace
   without dumping the document into the error message. *)
let excerpt s offset =
  let n = String.length s in
  let radius = 20 in
  let lo = max 0 (offset - radius) in
  let at = min offset n in
  let hi = min n (offset + radius) in
  Printf.sprintf "%s%s<HERE>%s%s"
    (if lo > 0 then "..." else "")
    (String.escaped (String.sub s lo (at - lo)))
    (String.escaped (String.sub s at (hi - at)))
    (if hi < n then "..." else "")

let parse_error_to_string ~offset ~message ~context =
  Printf.sprintf "Json.parse: at byte %d: %s (near %s)" offset message context

let () =
  Printexc.register_printer (function
    | Parse_error { offset; message; context } ->
        Some (parse_error_to_string ~offset ~message ~context)
    | _ -> None)

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg =
    raise (Parse_error { offset = !pos; message = msg; context = excerpt s !pos })
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let utf8_of_code buf u =
    (* Basic-plane codepoint to UTF-8 (surrogate pairs come pre-combined). *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let u = hex4 () in
               let u =
                 if u >= 0xd800 && u <= 0xdbff && !pos + 6 <= n
                    && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   0x10000 + (((u - 0xd800) lsl 10) lor (lo - 0xdc00))
                 end
                 else u
               in
               utf8_of_code buf u
           | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> error "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' -> true
         | '.' | 'e' | 'E' | '+' | '-' ->
             is_float := true;
             true
         | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec fields () =
            skip_ws ();
            let k = parse_string () in
            if List.mem_assoc k !kvs then
              error (Printf.sprintf "duplicate object key %S" k);
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}'"
          in
          fields ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let xs = ref [] in
          let rec elems () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']'"
          in
          elems ();
          List (List.rev !xs)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error { offset; message; context } ->
      Error (parse_error_to_string ~offset ~message ~context)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let get_list = function List xs -> xs | _ -> []
let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
