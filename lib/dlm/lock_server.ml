open Ccpfs_util
open Dessim
open Netsim
module Int_map = Map.Make (Int)

type stats = {
  mutable grants : int;
  mutable early_grants : int;
  mutable early_revocations : int;
  mutable revokes_sent : int;
  mutable upgrades : int;
  mutable downgrades : int;
  mutable releases : int;
  mutable expansions : int;
  mutable revocation_wait : float;
  mutable release_wait : float;
  mutable max_queue : int;
}

type lock = {
  id : int;
  client : Types.client_id;
  mutable mode : Mode.t;
  ranges : Interval.t list;
  hull : Interval.t;
  sn : int;
  mutable state : Lcm.lock_state;
  mutable revoke_sent : bool;
  seq : int;
      (* per-server insertion stamp; descending seq reproduces the
         newest-first order the granted set was historically kept in, so
         revocation fan-out order is unchanged from the list days *)
}

type waiter = {
  req : Types.request;
  reply : Types.lock_reply -> unit;
  mutable eff_mode : Mode.t;
  enq_time : float;
  mutable acks_time : float option;
      (* when this waiter's conflict set first became all-CANCELING *)
  internal : bool; (* sync_resource pseudo-request: drop lock on grant *)
}

(* Indexed per-resource state (the tentpole of the Fig. 17-20 hot path):

   - [waiting] is a doubly-linked FIFO deque: O(1) enqueue, O(1) removal
     of a waiter granted out of position, O(1) queue depth for the
     dlm.queue metric and the max_queue stat;
   - [granted] is a lock-id hash table: O(1) find/release/ack;
   - [granted_idx] is an interval index over each lock's range hull, so
     conflict checks visit only hull-overlapping grants instead of the
     whole set (candidates are still confirmed against exact ranges). *)
type rstate = {
  rid : Types.resource_id;
  mutable next_sn : int;
  granted : (int, lock) Hashtbl.t; (* by lock id *)
  mutable granted_idx : lock Interval_index.t; (* by range hull *)
  by_client : (Types.client_id, int) Hashtbl.t;
      (* grant count per client: a waiter whose client holds nothing has
         no same-client locks to convert, so its blocked-queue visit can
         be skipped in O(1) (see [pass]) *)
  waiting : waiter Dllist.t; (* FIFO, head first *)
  q_lo : int Int_map.t array;
      (* waiting-queue expansion index, one slot per request-mode rank
         (see [Blocked.mode_rank]): a multiset (hull-lo -> count) of the
         queued waiters in that mode class, so the expansion bound in
         [expanded_ranges] is four ordered-map probes instead of a scan
         of the whole queue per grant *)
  waiting_by_client : (Types.client_id, int) Hashtbl.t;
      (* queued-waiter count per client: against [by_client] it tells a
         saturated [pass] whether any remaining visit could still merge
         a same-client grant — if none can, the rest of the walk is a
         provable no-op and is cut short *)
  mutable total_grants : int;
      (* cumulative; drives DLM-Lustre's contention heuristic *)
  (* Quiescent pass cache (the submit_batch amortization, DESIGN.md §13):
     after a settled [pass] during which nothing mutated ([gen] is the
     witness), the pass's blocked-set accumulator describes the entire
     queue.  A new submit can then be decided by visiting only the fresh
     tail against the cached accumulator — O(1) per request instead of
     re-scanning the queue — because a quiescent revisit of every earlier
     waiter is provably a no-op (same granted set, same blocked prefix,
     revokes already sent, acks_time already stamped). *)
  mutable gen : int;
      (* bumped by every semantic mutation of this resource (grant,
         revoke send, ack, downgrade, release, reinstall) *)
  mutable pass_blocked : unit Extent_map.t array option;
      (* [Blocked.t] of the last settled pass; None = invalid *)
  mutable pass_saturated : bool; (* saturation flag of that pass *)
}

let touch rs =
  rs.gen <- rs.gen + 1;
  rs.pass_blocked <- None

type trace_event =
  | T_request of Types.request
  | T_grant of Types.grant * [ `Normal | `Early ]
  | T_revoke of { t_rid : Types.resource_id; t_lock_id : int;
                  t_client : Types.client_id }
  | T_ack of { t_rid : Types.resource_id; t_lock_id : int }
  | T_release of { t_rid : Types.resource_id; t_lock_id : int }
  | T_downgrade of { t_rid : Types.resource_id; t_lock_id : int;
                     t_mode : Mode.t }
  | T_crash of { t_dropped_waiters : int }

(* Shard-awareness hooks (DESIGN.md §15), installed by the cluster once a
   routing table exists.  [sh_owned] answers against the authoritative
   map; [sh_epoch] stamps the bounces; [sh_forward_ctl] routes a
   fire-and-forget control message that arrived here after its resource
   migrated away (it cannot be bounced — nobody awaits a reply). *)
type sharding = {
  sh_owned : Types.resource_id -> bool;
  sh_epoch : unit -> int;
  sh_forward_ctl :
    Types.resource_id -> (Types.ctl_msg, unit) Rpc.endpoint option;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  node : Node.t;
  name : string;
  policy : Policy.t;
  resources : (Types.resource_id, rstate) Hashtbl.t;
  clients : (Types.client_id, (Types.server_msg, unit) Rpc.endpoint) Hashtbl.t;
  mutable next_lock_id : int;
  mutable next_seq : int;
  stats : stats;
  mutable lock_ep : (Types.request, Types.lock_reply) Rpc.endpoint option;
  mutable ctl_ep : (Types.ctl_msg, unit) Rpc.endpoint option;
  mutable tracer : (float -> trace_event -> unit) option;
  mutable validator : (t -> unit) option;
  q_depth : Obs.Metrics.histogram; (* queue length at each enqueue *)
  q_gauge : Obs.Metrics.gauge; (* live queued-waiter total, all resources *)
  mutable queued_total : int; (* mirror of the gauge (metrics may be off) *)
  mutable sharding : sharding option;
  frozen :
    ( Types.resource_id,
      (Types.request * (Types.lock_reply -> unit)) list ref )
    Hashtbl.t;
      (* migration intake freeze: arrivals for a freezing resource park
         here (newest first) until commit bounces or abort replays them *)
  mutable sn_reuse_every : int; (* injected sequencer fault: 0 = off *)
  mutable sn_issued : int;
}

(* ------------------------------------------------------------------ *)
(* Granted-set operations                                              *)
(* ------------------------------------------------------------------ *)

let granted_add rs (g : lock) =
  Hashtbl.replace rs.granted g.id g;
  rs.granted_idx <- Interval_index.add rs.granted_idx g.hull ~id:g.id g;
  let n = try Hashtbl.find rs.by_client g.client with Not_found -> 0 in
  Hashtbl.replace rs.by_client g.client (n + 1)

let granted_remove rs (g : lock) =
  Hashtbl.remove rs.granted g.id;
  rs.granted_idx <- Interval_index.remove rs.granted_idx g.hull ~id:g.id;
  match Hashtbl.find rs.by_client g.client with
  | 1 -> Hashtbl.remove rs.by_client g.client
  | n -> Hashtbl.replace rs.by_client g.client (n - 1)

(* Grant-set fold on the per-request hot path (PR 4's 15x win): raw
   table order, no sort.  Safe because every caller is order-insensitive
   — a min-fold over hulls (expansion bounds), set-shaped invariant
   checks, or a collection that is sorted before anything order-visible
   (granted_locks). *)
let granted_fold f rs acc =
  (Hashtbl.fold
     [@lint.allow
       "D001 hot-path fold; all callers are commutative min/set folds or \
        sort their result before it escapes"])
    (fun _ g acc -> f g acc)
    rs.granted acc
let find_lock rs lock_id = Hashtbl.find_opt rs.granted lock_id

(* The grants whose hull overlaps any of [ranges], newest first — the
   order the old list-based granted set presented candidates in.  The
   hull test is a superset filter: callers re-check exact ranges. *)
let hull_overlapping rs ranges =
  let candidates =
    List.fold_left
      (fun acc (r : Interval.t) ->
        Interval_index.fold_overlapping rs.granted_idx r ~init:acc
          ~f:(fun acc _iv _id g -> g :: acc))
      [] ranges
  in
  let dedup =
    match ranges with [] | [ _ ] -> candidates | _ -> List.sort_uniq (fun (a : lock) b -> Int.compare a.id b.id) candidates
  in
  List.sort (fun (a : lock) b -> Int.compare b.seq a.seq) dedup

(* ------------------------------------------------------------------ *)
(* Per-pass blocked-request accumulator                                *)
(* ------------------------------------------------------------------ *)

(* FIFO fairness: a request may not overtake an earlier-queued request it
   conflicts with.  The old implementation kept the earlier blocked
   requests as a list and scanned it per waiter — O(queue^2) per pass.
   Bucketing the blocked ranges by mode (there are four) turns the check
   into at most four extent-map probes: two range lists overlap iff one
   overlaps the union of the other's bucket, and mode conflict depends
   only on the modes. *)
module Blocked = struct
  type t = unit Extent_map.t array (* indexed by mode rank;
                                      = rstate.pass_blocked's payload *)

  let mode_rank = function Mode.PR -> 0 | Mode.NBW -> 1 | Mode.BW -> 2 | Mode.PW -> 3
  let modes = [| Mode.PR; Mode.NBW; Mode.BW; Mode.PW |]
  let create () = Array.make 4 Extent_map.empty

  let add (t : t) mode ranges =
    let i = mode_rank mode in
    t.(i) <-
      List.fold_left (fun m (r : Interval.t) -> Extent_map.set m r ()) t.(i)
        ranges

  let blocks (t : t) mode ranges =
    let conflicts_with i =
      let m = modes.(i) in
      Lcm.request_conflict mode m || Lcm.request_conflict m mode
    in
    let overlaps i =
      (not (Extent_map.is_empty t.(i)))
      && List.exists
           (fun (r : Interval.t) -> Extent_map.overlapping t.(i) r <> [])
           ranges
    in
    let rec go i = i < 4 && ((conflicts_with i && overlaps i) || go (i + 1)) in
    go 0

  (* A blocked entry of a write mode spanning the whole offset space
     blocks every possible later request: the three write modes conflict
     with all four modes, and [0, eof) overlaps every valid interval.
     Detecting such an entry lets [pass] stop probing the buckets. *)
  let saturates mode ranges =
    (match mode with Mode.PR -> false | Mode.NBW | Mode.BW | Mode.PW -> true)
    && List.exists
         (fun (r : Interval.t) -> r.lo = 0 && r.hi = Interval.eof)
         ranges
end

(* ------------------------------------------------------------------ *)
(* Waiting-queue index maintenance                                     *)
(* ------------------------------------------------------------------ *)

(* Every queue transition funnels through these three: enqueue
   ([submit_one], [sync_resource]), unlink on grant ([visit_node]) and
   the conversion join rewriting a queued waiter's effective mode
   ([visit_node]).  A crashed resource drops its whole [rstate], index
   included, so the crash paths need no handling. *)
let queue_index_update rs ~rank ~lo delta =
  let m = rs.q_lo.(rank) in
  let n = (match Int_map.find_opt lo m with Some n -> n | None -> 0) + delta in
  rs.q_lo.(rank) <- (if n <= 0 then Int_map.remove lo m else Int_map.add lo n m)

let queue_track t rs (w : waiter) delta =
  (match w.req.ranges with
  | [] -> ()
  | ranges ->
      queue_index_update rs
        ~rank:(Blocked.mode_rank w.eff_mode)
        ~lo:(Types.ranges_hull ranges).Interval.lo delta);
  let c = w.req.client in
  let n =
    (match Hashtbl.find_opt rs.waiting_by_client c with
    | Some n -> n
    | None -> 0)
    + delta
  in
  if n <= 0 then Hashtbl.remove rs.waiting_by_client c
  else Hashtbl.replace rs.waiting_by_client c n;
  (* Server-wide live queue depth: every enqueue/unlink funnels through
     here, so the counter (and its gauge, the rebalancer's load signal)
     is exact at all times. *)
  t.queued_total <- t.queued_total + delta;
  Obs.Metrics.set_gauge t.q_gauge (float_of_int t.queued_total)

let queue_enqueue t rs w = queue_track t rs w 1
let queue_unlink t rs w = queue_track t rs w (-1)

(* Called after [visit_node] writes the conversion join back into
   [eff_mode]: move the waiter's entry between mode buckets. *)
let queue_retag rs (w : waiter) ~old_mode =
  if not (Mode.equal old_mode w.eff_mode) then
    match w.req.ranges with
    | [] -> ()
    | ranges ->
        let lo = (Types.ranges_hull ranges).Interval.lo in
        queue_index_update rs ~rank:(Blocked.mode_rank old_mode) ~lo (-1);
        queue_index_update rs ~rank:(Blocked.mode_rank w.eff_mode) ~lo 1

(* Lock-lifecycle instants on the trace sink (enqueue -> grant -> revoke
   -> ack -> release), attributed to the courier process that triggered
   the transition.  Wait-time attribution is separate: see the complete
   events emitted by [grant_waiter]. *)
let obs_emit t sink ev =
  let ts = Engine.now t.eng in
  let tid = Engine.current_pid t.eng in
  let inst name args = Obs.Trace.instant sink ~ts ~tid ~cat:"lock" ~args name in
  let open Obs.Json in
  match ev with
  | T_request (r : Types.request) ->
      inst "lock.enqueue"
        [ ("rid", Int r.rid); ("client", Int r.client);
          ("mode", Str (Mode.to_string r.mode)) ]
  | T_grant (g, early) ->
      inst "lock.grant"
        [ ("rid", Int g.Types.rid); ("lock_id", Int g.Types.lock_id);
          ("client", Int g.Types.client);
          ("mode", Str (Mode.to_string g.Types.mode)); ("sn", Int g.Types.sn);
          ("early", Bool (early = `Early)) ]
  | T_revoke { t_rid; t_lock_id; t_client } ->
      inst "lock.revoke"
        [ ("rid", Int t_rid); ("lock_id", Int t_lock_id);
          ("client", Int t_client) ]
  | T_ack { t_rid; t_lock_id } ->
      inst "lock.ack" [ ("rid", Int t_rid); ("lock_id", Int t_lock_id) ]
  | T_release { t_rid; t_lock_id } ->
      inst "lock.release" [ ("rid", Int t_rid); ("lock_id", Int t_lock_id) ]
  | T_downgrade { t_rid; t_lock_id; t_mode } ->
      inst "lock.downgrade"
        [ ("rid", Int t_rid); ("lock_id", Int t_lock_id);
          ("mode", Str (Mode.to_string t_mode)) ]
  | T_crash { t_dropped_waiters } ->
      inst "lock.crash" [ ("dropped_waiters", Int t_dropped_waiters) ]

let trace t ev =
  (match t.tracer with
  | Some f -> f (Engine.now t.eng) ev
  | None -> ());
  let sink = Engine.trace_sink t.eng in
  if Obs.Trace.enabled sink then obs_emit t sink ev

(* The sanitizer's post-transition hook: runs after every externally
   triggered state change (request, control message, sync), once the
   queue passes have settled. *)
let validate t =
  match t.validator with Some f -> f t | None -> ()

let fresh_stats () =
  {
    grants = 0; early_grants = 0; early_revocations = 0; revokes_sent = 0;
    upgrades = 0; downgrades = 0; releases = 0; expansions = 0;
    revocation_wait = 0.; release_wait = 0.; max_queue = 0;
  }

let rstate t rid =
  match Hashtbl.find_opt t.resources rid with
  | Some rs -> rs
  | None ->
      let rs =
        {
          rid;
          next_sn = 1;
          granted = Hashtbl.create 16;
          granted_idx = Interval_index.empty;
          by_client = Hashtbl.create 16;
          waiting = Dllist.create ();
          q_lo = Array.make 4 Int_map.empty;
          waiting_by_client = Hashtbl.create 16;
          total_grants = 0;
          gen = 0;
          pass_blocked = None;
          pass_saturated = false;
        }
      in
      Hashtbl.add t.resources rid rs;
      rs

let lock_conflicts_waiter ~eff_mode ~ranges (g : lock) =
  Types.ranges_overlap ranges g.ranges
  && not (Lcm.compatible ~req:eff_mode ~granted:g.mode ~state:g.state)

(* Compute the (possibly expanded) ranges for a grant and whether any
   expansion happened.  Only singleton-range requests expand, only the
   end of the range grows (§II-A), and the expansion stops at the first
   conflicting granted lock or queued request above it. *)
let expanded_ranges t rs (w : waiter) =
  match (t.policy.Policy.expansion, w.req.ranges) with
  | Policy.No_expansion, ranges -> (ranges, false)
  | _, ([] | _ :: _ :: _) -> (w.req.ranges, false)
  | (Policy.Greedy | Policy.Capped _), [ iv ] ->
      let bound = ref Interval.eof in
      let consider lo = if lo >= iv.Interval.hi && lo < !bound then bound := lo in
      (* A min-fold over every grant/waiter: iteration order is
         irrelevant to the result, so the hash table's order is fine. *)
      granted_fold
        (fun (g : lock) () ->
          if not (Lcm.compatible ~req:w.eff_mode ~granted:g.mode ~state:g.state)
          then consider g.hull.Interval.lo)
        rs ();
      (* Queue contribution via the per-mode index: the smallest queued
         hull-lo at or above the request's end, over the mode classes
         that conflict with the waiter — the same bound a full queue
         scan computes, in at most four ordered-map probes. *)
      Array.iteri
        (fun rank m ->
          if
            (not (Int_map.is_empty rs.q_lo.(rank)))
            && (Lcm.request_conflict w.eff_mode m
               || Lcm.request_conflict m w.eff_mode)
          then
            match
              Int_map.find_first_opt
                (fun lo -> lo >= iv.Interval.hi)
                rs.q_lo.(rank)
            with
            | Some (lo, _) -> consider lo
            | None -> ())
        Blocked.modes;
      (match t.policy.Policy.expansion with
      | Policy.Capped { max_expand; lock_threshold } ->
          (* Lustre's contention heuristic: once a resource has seen more
             than [lock_threshold] grants, stop expanding to EOF and cap
             growth at [max_expand] past the requested end. *)
          if rs.total_grants > lock_threshold then
            consider (iv.Interval.hi + max_expand)
      | Policy.Greedy | Policy.No_expansion -> ());
      let hi = !bound in
      if hi > iv.Interval.hi then
        ([ Interval.v ~lo:iv.Interval.lo ~hi ], true)
      else ([ iv ], false)

let send_revoke t rs (g : lock) =
  touch rs;
  g.revoke_sent <- true;
  t.stats.revokes_sent <- t.stats.revokes_sent + 1;
  trace t (T_revoke { t_rid = rs.rid; t_lock_id = g.id; t_client = g.client });
  match Hashtbl.find_opt t.clients g.client with
  | Some ep ->
      Rpc.notify ep ~src:t.node (Types.Revoke { rid = rs.rid; lock_id = g.id })
  | None ->
      invalid_arg
        (Printf.sprintf "%s: revoke for unregistered client %d" t.name g.client)

let grant_waiter t rs (w : waiter) ~own ~early =
  touch rs;
  (* Merge away the holder's own conflicting locks (lock upgrading). *)
  List.iter (fun (o : lock) -> granted_remove rs o) own;
  rs.total_grants <- rs.total_grants + 1;
  let ranges, expanded = expanded_ranges t rs w in
  let ranges =
    Types.normalize_ranges (List.concat_map (fun o -> o.ranges) own @ ranges)
  in
  let mode = w.eff_mode in
  let sn =
    if not (Mode.is_write mode) then rs.next_sn
    else begin
      t.sn_issued <- t.sn_issued + 1;
      if
        t.sn_reuse_every > 0
        && t.sn_issued mod t.sn_reuse_every = 0
        && rs.next_sn > 1
      then (* injected sequencer fault: the previous SN is reissued *)
        rs.next_sn - 1
      else begin
        let sn = rs.next_sn in
        rs.next_sn <- rs.next_sn + 1;
        sn
      end
    end
  in
  let conflicts_queued =
    Dllist.exists
      (fun (w' : waiter) ->
        w'.req.ranges <> []
        && Types.ranges_overlap w'.req.ranges ranges
        && (Lcm.request_conflict w'.eff_mode mode
           || Lcm.request_conflict mode w'.eff_mode))
      rs.waiting
  in
  let early_revoked =
    t.policy.Policy.early_revocation && (not expanded) && conflicts_queued
    && not w.internal
  in
  let state = if early_revoked then Lcm.Canceling else Lcm.Granted in
  t.next_lock_id <- t.next_lock_id + 1;
  t.next_seq <- t.next_seq + 1;
  let lock =
    {
      id = t.next_lock_id;
      client = w.req.client;
      mode;
      ranges;
      hull = Types.ranges_hull ranges;
      sn;
      state;
      revoke_sent = early_revoked;
      seq = t.next_seq;
    }
  in
  granted_add rs lock;
  let s = t.stats in
  s.grants <- s.grants + 1;
  if expanded then s.expansions <- s.expansions + 1;
  if early_revoked then s.early_revocations <- s.early_revocations + 1;
  if early then s.early_grants <- s.early_grants + 1;
  if not (Mode.equal mode w.req.mode) then s.upgrades <- s.upgrades + 1;
  let now = Engine.now t.eng in
  (match w.acks_time with
  | Some ta ->
      s.revocation_wait <- s.revocation_wait +. (ta -. w.enq_time);
      s.release_wait <- s.release_wait +. (now -. ta)
  | None -> s.revocation_wait <- s.revocation_wait +. (now -. w.enq_time));
  (* Fig. 17 wait attribution as trace spans, mirroring the stats update
     above term for term: ① [lock.wait.revocation] runs from enqueue
     until the conflict set is all-CANCELING, ② [lock.wait.release] from
     there to the grant — so summing span durations in a trace file
     reproduces the printed breakdown exactly. *)
  let sink = Engine.trace_sink t.eng in
  if Obs.Trace.enabled sink then begin
    let wtid = 900_000 + w.req.client in
    let args =
      [ ("rid", Obs.Json.Int rs.rid); ("client", Obs.Json.Int w.req.client) ]
    in
    match w.acks_time with
    | Some ta ->
        Obs.Trace.complete sink ~ts:w.enq_time ~dur:(ta -. w.enq_time)
          ~tid:wtid ~cat:"lock" ~args "lock.wait.revocation";
        Obs.Trace.complete sink ~ts:ta ~dur:(now -. ta) ~tid:wtid ~cat:"lock"
          ~args "lock.wait.release"
    | None ->
        Obs.Trace.complete sink ~ts:w.enq_time ~dur:(now -. w.enq_time)
          ~tid:wtid ~cat:"lock" ~args "lock.wait.revocation"
  end;
  let g =
    {
      Types.lock_id = lock.id;
      rid = rs.rid;
      client = w.req.client;
      mode;
      ranges;
      sn;
      state;
      replaces = List.map (fun o -> o.id) own;
    }
  in
  trace t (T_grant (g, if early then `Early else `Normal));
  w.reply (Types.Granted g);
  lock

(* Visit one queue node against the blocked set accumulated over every
   earlier waiter: the shared core of [pass] (which folds it over a queue
   snapshot) and the [submit_one] fast path (which applies it to a fresh
   tail against the cached accumulator).  Returns true when the waiter
   was granted (and unlinked). *)
let visit_node t rs ~blocked ~saturated node =
  if
    (* Once an earlier waiter blocks the whole offset space, every
       later waiter is blocked too; if its client also holds no
       grants on this resource there is nothing to convert, so the
       visit would change no state at all (the only write a blocked
       visit performs is the conversion join into [eff_mode], and
       its [Blocked.add] cannot matter once the set saturates).
       Skipping it keeps a contended pass O(1) per queued request. *)
    !saturated
    && ((not t.policy.Policy.auto_convert)
       || not (Hashtbl.mem rs.by_client (Dllist.value node).req.client))
  then false
  else begin
    let w = Dllist.value node in
    (* Same-client GRANTED conflicts are merged by upgrading when
       conversion is on (and no revocation is already in flight). *)
    let own =
      if t.policy.Policy.auto_convert then
        List.filter
          (fun (g : lock) ->
            g.client = w.req.client && g.state = Lcm.Granted
            && (not g.revoke_sent)
            && lock_conflicts_waiter ~eff_mode:w.eff_mode ~ranges:w.req.ranges
                 g)
          (hull_overlapping rs w.req.ranges)
      else []
    in
    let eff =
      List.fold_left (fun m (g : lock) -> Mode.join m g.mode) w.eff_mode own
    in
    let prev_eff = w.eff_mode in
    w.eff_mode <- eff;
    queue_retag rs w ~old_mode:prev_eff;
    (* Upgrading widens the grant to cover the merged locks' ranges, so
       conflict checks must run on the union: a PR lock expanded to EOF
       that upgrades to PW now conflicts where the PR did not. *)
    let union_ranges =
      Types.normalize_ranges
        (w.req.ranges @ List.concat_map (fun (g : lock) -> g.ranges) own)
    in
    (* Post-saturation adds are dead: every later blocked check
       short-circuits on [saturated]. *)
    let note_blocked () =
      if not !saturated then begin
        Blocked.add blocked eff union_ranges;
        if Blocked.saturates eff union_ranges then saturated := true
      end
    in
    if !saturated || Blocked.blocks blocked eff union_ranges then begin
      note_blocked ();
      false
    end
    else begin
      let conflicts =
        List.filter
          (fun (g : lock) ->
            (not (List.exists (fun (o : lock) -> o.id = g.id) own))
            && lock_conflicts_waiter ~eff_mode:eff ~ranges:union_ranges g)
          (hull_overlapping rs union_ranges)
      in
      if List.is_empty conflicts then begin
        let early =
          List.exists
            (fun (g : lock) ->
              g.state = Lcm.Canceling
              && Types.ranges_overlap w.req.ranges g.ranges)
            (hull_overlapping rs w.req.ranges)
        in
        Dllist.remove rs.waiting node;
        queue_unlink t rs w;
        ignore (grant_waiter t rs w ~own ~early);
        true
      end
      else begin
        List.iter
          (fun (g : lock) ->
            if g.state = Lcm.Granted && not g.revoke_sent then
              send_revoke t rs g)
          conflicts;
        if
          Option.is_none w.acks_time
          && List.for_all (fun (g : lock) -> g.state = Lcm.Canceling) conflicts
        then w.acks_time <- Some (Engine.now t.eng);
        note_blocked ();
        false
      end
    end
  end

(* One scheduling pass over a resource's FIFO queue.  Returns true if any
   waiter was granted (a grant can unblock early grants further down, so
   the caller loops).  A pass that completes without any mutation
   ([rs.gen] unchanged) leaves its accumulator behind as the quiescent
   pass cache; any mutation — by this pass or a re-entrant one —
   invalidates it. *)
let pass t rs =
  let g0 = rs.gen in
  rs.pass_blocked <- None;
  let progress = ref false in
  let blocked = Blocked.create () in
  let saturated = ref false in
  (* Once the blocked set saturates, the only visits that can still
     change state are same-client merges, and those need a queued
     waiter whose client holds a grant.  The check intersects the two
     per-client count tables and is memoized: a "cut" verdict stops the
     walk on the spot, so it can never go stale, while a "keep walking"
     verdict merely falls back to the per-node O(1) skip in
     [visit_node] — conservative if a later grant empties the
     intersection mid-walk, never wrong. *)
  let may_convert = ref None in
  let tail_may_convert () =
    match !may_convert with
    | Some b -> b
    | None ->
        let b =
          t.policy.Policy.auto_convert
          && (Hashtbl.fold
                [@lint.allow
                  "D001 commutative exists: boolean OR of membership \
                   tests, iteration order invisible"])
               (fun c _ acc -> acc || Hashtbl.mem rs.waiting_by_client c)
               rs.by_client false
        in
        may_convert := Some b;
        b
  in
  (* Walk the queue in place; granted waiters are unlinked immediately
     so later decisions in the same pass see a fresh queue.  A reply
     hook may re-enter [process] (internal sync requests) and remove
     nodes ahead of the walk — a removed node keeps its forward link
     ([Dllist.succ]) and [Dllist.active] skips it in O(1), so no
     per-pass node-list snapshot is needed (that allocation was
     measurable under the 512-client convoy, DESIGN.md §13). *)
  let rec go = function
    | None -> ()
    | Some node ->
        (if Dllist.active node then
           if visit_node t rs ~blocked ~saturated node then progress := true);
        if !saturated && not (tail_may_convert ()) then ()
        else go (Dllist.succ node)
  in
  go (Dllist.first_node rs.waiting);
  if rs.gen = g0 then begin
    rs.pass_blocked <- Some blocked;
    rs.pass_saturated <- !saturated
  end;
  !progress

let rec process t rs =
  if pass t rs && not (Dllist.is_empty rs.waiting) then process t rs

let submit_one t (req : Types.request) ~reply =
  trace t (T_request req);
  let rs = rstate t req.rid in
  let w =
    {
      req;
      reply;
      eff_mode = req.mode;
      enq_time = Engine.now t.eng;
      acks_time = None;
      internal = false;
    }
  in
  let node = Dllist.push_back rs.waiting w in
  queue_enqueue t rs w;
  let q = Dllist.length rs.waiting in
  if q > t.stats.max_queue then t.stats.max_queue <- q;
  Obs.Metrics.observe t.q_depth (float_of_int q);
  match rs.pass_blocked with
  | Some blocked ->
      (* Quiescent fast path: nothing has mutated since the last settled
         pass, so revisiting every earlier waiter would be a no-op — the
         cached accumulator stands in for the whole prefix and only the
         fresh tail needs deciding.  A grant (or any other mutation the
         visit performs) bumps [rs.gen], dropping the cache, and the
         follow-up [process] rebuilds it once the queue settles. *)
      let saturated = ref rs.pass_saturated in
      let granted = visit_node t rs ~blocked ~saturated node in
      rs.pass_saturated <- !saturated;
      if granted then process t rs
  | None -> process t rs

(* Ownership gate of the sharded namespace (DESIGN.md §15).  A request
   for a frozen resource parks (the map still names this server, so a
   bounce would just come straight back); a request for a resource this
   server does not own is bounced with the current map epoch, without
   ever creating resource state here. *)
let admit_one t (req : Types.request) ~reply =
  match Hashtbl.find_opt t.frozen req.rid with
  | Some parked -> parked := (req, reply) :: !parked
  | None -> (
      match t.sharding with
      | Some sh when not (sh.sh_owned req.rid) ->
          reply (Types.Stale_owner { epoch = sh.sh_epoch () })
      | _ -> submit_one t req ~reply)

let handle_request t (req : Types.request) ~reply =
  admit_one t req ~reply;
  validate t

(* Vectorized entry for the transport's batch handler: decide a request
   vector in arrival order.  Equivalent to N sequential [submit]s by
   construction — each element runs the same enqueue + visit path — with
   the queue-scan cost amortized: under contention every element after
   the first hits the quiescent fast path refreshed by its predecessor.
   One sanitizer sweep at the end: the batch is one external event. *)
let handle_batch t reqs =
  List.iter (fun (req, reply) -> admit_one t req ~reply) reqs;
  validate t

(* Direct in-process entry (tests, benchmarks, the colocated data
   server): no shard gate, replies are plain grants. *)
let grant_only t (req : Types.request) reply : Types.lock_reply -> unit =
  function
  | Types.Granted g -> reply g
  | Types.Stale_owner { epoch } ->
      invalid_arg
        (Printf.sprintf "%s: direct submit bounced (rid %d, map epoch %d)"
           t.name req.Types.rid epoch)

let submit_batch t reqs =
  List.iter
    (fun (req, reply) -> submit_one t req ~reply:(grant_only t req reply))
    reqs;
  validate t

let ctl_rid : Types.ctl_msg -> Types.resource_id = function
  | Types.Revoke_ack { rid; _ }
  | Types.Downgrade { rid; _ }
  | Types.Release { rid; _ } ->
      rid

let handle_ctl t (msg : Types.ctl_msg) ~reply =
  match t.sharding with
  | Some sh when not (sh.sh_owned (ctl_rid msg)) ->
      (* A control message for a resource that migrated away: route it on
         to the current owner (one extra hop), never touch local state —
         processing it here would resurrect an rstate on a non-owner.
         With no known owner endpoint the message is dropped, which is
         safe: every ctl handler no-ops on unknown lock ids. *)
      (match sh.sh_forward_ctl (ctl_rid msg) with
      | Some ep when Rpc.name ep <> t.name ^ ".ctl" ->
          Rpc.notify ep ~src:t.node msg
      | Some _ | None -> ());
      reply ()
  | _ ->
  (match msg with
  | Types.Revoke_ack { rid; lock_id } -> (
      trace t (T_ack { t_rid = rid; t_lock_id = lock_id });
      let rs = rstate t rid in
      match find_lock rs lock_id with
      | Some g when g.state = Lcm.Granted ->
          touch rs;
          g.state <- Lcm.Canceling;
          process t rs
      | Some _ | None -> ())
  | Types.Downgrade { rid; lock_id; mode } -> (
      trace t (T_downgrade { t_rid = rid; t_lock_id = lock_id; t_mode = mode });
      let rs = rstate t rid in
      match find_lock rs lock_id with
      | Some g ->
          touch rs;
          g.mode <- mode;
          t.stats.downgrades <- t.stats.downgrades + 1;
          process t rs
      | None -> ())
  | Types.Release { rid; lock_id } ->
      trace t (T_release { t_rid = rid; t_lock_id = lock_id });
      let rs = rstate t rid in
      (match find_lock rs lock_id with
      | Some g ->
          touch rs;
          granted_remove rs g;
          t.stats.releases <- t.stats.releases + 1;
          process t rs
      | None -> ()));
  validate t;
  reply ()

let submit t req ~on_grant =
  submit_one t req ~reply:(grant_only t req on_grant);
  validate t

let control t msg = handle_ctl t msg ~reply:(fun () -> ())

let create eng params ~node ~name ~policy =
  let t =
    {
      eng; params; node; name; policy;
      resources = Hashtbl.create 64;
      clients = Hashtbl.create 64;
      next_lock_id = 0;
      next_seq = 0;
      stats = fresh_stats ();
      lock_ep = None;
      ctl_ep = None;
      tracer = None;
      validator = None;
      q_depth =
        Obs.Metrics.histogram (Engine.metrics eng)
          (Printf.sprintf "dlm.%s.queue_depth" name);
      q_gauge =
        Obs.Metrics.gauge (Engine.metrics eng)
          (Printf.sprintf "dlm.%s.queue" name);
      queued_total = 0;
      sharding = None;
      frozen = Hashtbl.create 4;
      sn_reuse_every = 0;
      sn_issued = 0;
    }
  in
  t.lock_ep <-
    Some
      (Rpc.endpoint eng params ~node ~name:(name ^ ".lock")
         ~handler:(fun req ~reply -> handle_request t req ~reply));
  (* With transport batching on, a flushed request batch is decided by
     the vectorized entry instead of n separate handler invocations. *)
  (match t.lock_ep with
  | Some ep -> Rpc.set_batch_handler ep (fun reqs -> handle_batch t reqs)
  | None -> ());
  t.ctl_ep <-
    Some
      (Rpc.endpoint eng params ~node ~name:(name ^ ".ctl")
         ~handler:(fun msg ~reply -> handle_ctl t msg ~reply));
  t

let lock_endpoint t = Option.get t.lock_ep
let ctl_endpoint t = Option.get t.ctl_ep
let register_client t cid ep = Hashtbl.replace t.clients cid ep

let min_unreleased_write_sn t rid iv =
  match Hashtbl.find_opt t.resources rid with
  | None -> None
  | Some rs ->
      (* Hull-overlap narrows the scan; the exact range check decides. *)
      Interval_index.fold_overlapping rs.granted_idx iv ~init:None
        ~f:(fun acc _hull _id (g : lock) ->
          if Mode.is_write g.mode && Types.ranges_overlap [ iv ] g.ranges then
            match acc with
            | None -> Some g.sn
            | Some m -> Some (min m g.sn)
          else acc)

let sync_resource t rid ~on_behalf ~reply =
  let rs = rstate t rid in
  let req =
    {
      Types.client = on_behalf;
      rid;
      mode = Mode.PR;
      ranges = [ Interval.to_eof ~lo:0 ];
    }
  in
  let w_reply : Types.lock_reply -> unit = function
    | Types.Stale_owner _ ->
        (* Internal waiters are never bounced: a migration with one
           queued aborts instead ([migrate_out]). *)
        invalid_arg (t.name ^ ": internal sync waiter bounced")
    | Types.Granted g ->
        (* The pseudo-lock served its purpose the instant it is grantable:
           every conflicting write lock has been released.  Drop it. *)
        (match find_lock rs g.lock_id with
        | Some l ->
            touch rs;
            granted_remove rs l
        | None -> ());
        process t rs;
        reply ()
  in
  let w =
    {
      req;
      reply = w_reply;
      eff_mode = Mode.PR;
      enq_time = Engine.now t.eng;
      acks_time = None;
      internal = true;
    }
  in
  (* The internal waiter bypasses the submit fast path, so the cached
     accumulator no longer covers the queue: drop it before processing. *)
  touch rs;
  ignore (Dllist.push_back rs.waiting w);
  queue_enqueue t rs w;
  process t rs;
  validate t

let sorted_resources t = Det_tbl.bindings_sorted ~cmp:Int.compare t.resources

let crash t =
  List.iter
    (fun (rid, rs) ->
      if not (Dllist.is_empty rs.waiting) then
        invalid_arg
          (Printf.sprintf "%s: crash with %d queued requests on resource %d"
             t.name (Dllist.length rs.waiting) rid))
    (sorted_resources t);
  if Hashtbl.length t.frozen > 0 then
    invalid_arg (t.name ^ ": crash during a resource migration");
  Hashtbl.reset t.resources;
  t.queued_total <- 0;
  Obs.Metrics.set_gauge t.q_gauge 0.

let crash_online t =
  (* Unlike [crash], queued waiters are allowed — and lost with the rest
     of the table.  Safe only when every waiter's caller retransmits (the
     fenced retry path): its resubmission re-enqueues the request on the
     recovered server and re-triggers any revocations it needs.  Parked
     migration intake is lost the same way. *)
  let dropped =
    List.fold_left
      (fun acc (_, rs) -> acc + Dllist.length rs.waiting)
      0 (sorted_resources t)
    + Det_tbl.fold_sorted ~cmp:Int.compare
        (fun _ parked acc -> acc + List.length !parked)
        t.frozen 0
  in
  Hashtbl.reset t.resources;
  Hashtbl.reset t.frozen;
  t.queued_total <- 0;
  Obs.Metrics.set_gauge t.q_gauge 0.;
  trace t (T_crash { t_dropped_waiters = dropped });
  dropped

let reinstall t ~client ~locks =
  List.iter
    (fun (rid, lock_id, mode, ranges, sn, state) ->
      let rs = rstate t rid in
      touch rs;
      t.next_seq <- t.next_seq + 1;
      let lock =
        {
          id = lock_id;
          client;
          mode;
          ranges;
          hull = Types.ranges_hull ranges;
          sn;
          state;
          (* A canceling lock's holder is already flushing; no callback
             must ever be sent for it again. *)
          revoke_sent = (state = Lcm.Canceling);
          seq = t.next_seq;
        }
      in
      granted_add rs lock;
      if lock_id >= t.next_lock_id then t.next_lock_id <- lock_id + 1;
      if sn >= rs.next_sn then rs.next_sn <- sn + 1)
    locks

let restore_sn_floor t rid sn =
  let rs = rstate t rid in
  if sn >= rs.next_sn then rs.next_sn <- sn + 1

(* ------------------------------------------------------------------ *)
(* Sharded namespace: ownership gate and resource migration            *)
(* ------------------------------------------------------------------ *)

let set_sharding t ~owned ~epoch ~forward_ctl =
  t.sharding <-
    Some { sh_owned = owned; sh_epoch = epoch; sh_forward_ctl = forward_ctl }

type migration_state = {
  mig_rid : Types.resource_id;
  mig_next_sn : int;
  mig_bounced : int;
  mig_locks :
    (Types.client_id
    * (Types.resource_id * int * Mode.t * Interval.t list * int
      * Lcm.lock_state))
    list; (* sorted by lock id *)
  mig_clients : (Types.client_id * (Types.server_msg, unit) Rpc.endpoint) list;
      (* revoke-callback registrations the new owner needs, sorted *)
}

let freeze t rid =
  if Hashtbl.mem t.frozen rid then
    invalid_arg (Printf.sprintf "%s: resource %d already freezing" t.name rid);
  Hashtbl.add t.frozen rid (ref [])

let cancel_freeze t rid =
  match Hashtbl.find_opt t.frozen rid with
  | None -> ()
  | Some parked ->
      Hashtbl.remove t.frozen rid;
      (* Replay the parked intake in arrival order: this server still
         owns the resource, so the requests queue normally. *)
      List.iter (fun (req, reply) -> admit_one t req ~reply) (List.rev !parked);
      validate t

let is_frozen t rid = Hashtbl.mem t.frozen rid

let can_migrate t rid =
  match Hashtbl.find_opt t.resources rid with
  | None -> true
  | Some rs -> not (Dllist.exists (fun (w : waiter) -> w.internal) rs.waiting)

let migrate_out t rid ~epoch =
  let parked =
    match Hashtbl.find_opt t.frozen rid with
    | Some p -> p
    | None -> invalid_arg (t.name ^ ": migrate_out without freeze")
  in
  match Hashtbl.find_opt t.resources rid with
  | Some rs when Dllist.exists (fun (w : waiter) -> w.internal) rs.waiting ->
      (* A colocated force-sync holds an internal pseudo-request whose
         reply closure closes over this server's state — it cannot move.
         Abort; the caller cancels the freeze and retries later. *)
      None
  | rs_opt ->
      Hashtbl.remove t.frozen rid;
      let bounce reply = reply (Types.Stale_owner { epoch }) in
      let bounced = ref 0 in
      let st =
        match rs_opt with
        | None ->
            { mig_rid = rid; mig_next_sn = 1; mig_bounced = 0; mig_locks = [];
              mig_clients = [] }
        | Some rs ->
            (* Queued waiters cannot be transferred — their reply closures
               belong to this server's transport.  Bounce them with the
               post-migration epoch: each client refreshes its map and
               resubmits at the new owner (FIFO order across a migration
               is intentionally relaxed, as it is across a failover). *)
            let rec drain () =
              match Dllist.first_node rs.waiting with
              | None -> ()
              | Some node ->
                  let w = Dllist.value node in
                  Dllist.remove rs.waiting node;
                  queue_unlink t rs w;
                  incr bounced;
                  bounce w.reply;
                  drain ()
            in
            drain ();
            let locks =
              granted_fold (fun g acc -> g :: acc) rs []
              |> List.sort (fun (a : lock) b -> Int.compare a.id b.id)
            in
            let cids =
              List.sort_uniq Int.compare
                (List.map (fun (g : lock) -> g.client) locks)
            in
            Hashtbl.remove t.resources rid;
            {
              mig_rid = rid;
              mig_next_sn = rs.next_sn;
              mig_bounced = 0;
              mig_locks =
                List.map
                  (fun (g : lock) ->
                    (g.client, (rid, g.id, g.mode, g.ranges, g.sn, g.state)))
                  locks;
              mig_clients =
                List.filter_map
                  (fun c ->
                    match Hashtbl.find_opt t.clients c with
                    | Some ep -> Some (c, ep)
                    | None -> None)
                  cids;
            }
      in
      List.iter (fun (_req, reply) -> bounce reply) (List.rev !parked);
      bounced := !bounced + List.length !parked;
      validate t;
      Some { st with mig_bounced = !bounced }

let adopt t (st : migration_state) =
  List.iter (fun (c, ep) -> register_client t c ep) st.mig_clients;
  List.iter (fun (c, l) -> reinstall t ~client:c ~locks:[ l ]) st.mig_locks;
  restore_sn_floor t st.mig_rid (st.mig_next_sn - 1)

let total_queued t = t.queued_total

let hottest_resource t =
  List.fold_left
    (fun acc (rid, rs) ->
      let q = Dllist.length rs.waiting in
      match acc with
      | Some (_, best) when best >= q -> acc
      | _ -> if q > 0 then Some (rid, q) else acc)
    None (sorted_resources t)

let inject_sn_reuse t ~every =
  if every <= 0 then invalid_arg (t.name ^ ": inject_sn_reuse: every <= 0");
  t.sn_reuse_every <- every

type lock_view = {
  v_lock_id : int;
  v_client : Types.client_id;
  v_mode : Mode.t;
  v_ranges : Interval.t list;
  v_sn : int;
  v_state : Lcm.lock_state;
}

let granted_locks t rid =
  match Hashtbl.find_opt t.resources rid with
  | None -> []
  | Some rs ->
      granted_fold
        (fun (g : lock) acc ->
          {
            v_lock_id = g.id;
            v_client = g.client;
            v_mode = g.mode;
            v_ranges = g.ranges;
            v_sn = g.sn;
            v_state = g.state;
          }
          :: acc)
        rs []
      |> List.sort (fun a b -> Int.compare a.v_lock_id b.v_lock_id)

type waiter_view = {
  q_client : Types.client_id;
  q_mode : Mode.t;
  q_eff_mode : Mode.t;
  q_ranges : Interval.t list;
  q_enq_time : float;
  q_internal : bool;
}

let waiting_view t rid =
  match Hashtbl.find_opt t.resources rid with
  | None -> []
  | Some rs ->
      List.map
        (fun (w : waiter) ->
          {
            q_client = w.req.client;
            q_mode = w.req.mode;
            q_eff_mode = w.eff_mode;
            q_ranges = w.req.ranges;
            q_enq_time = w.enq_time;
            q_internal = w.internal;
          })
        (Dllist.to_list rs.waiting)

let resource_ids t = Det_tbl.sorted_keys ~cmp:Int.compare t.resources

let queue_length t rid =
  match Hashtbl.find_opt t.resources rid with
  | None -> 0
  | Some rs -> Dllist.length rs.waiting

let next_sn t rid = (rstate t rid).next_sn
let stats t = t.stats
let policy t = t.policy
let node t = t.node
let name t = t.name
let set_tracer t f = t.tracer <- Some f

let add_tracer t f =
  match t.tracer with
  | None -> t.tracer <- Some f
  | Some g ->
      t.tracer <-
        Some
          (fun now ev ->
            g now ev;
            f now ev)

let set_validator t f = t.validator <- Some f
let clear_validator t = t.validator <- None

let pp_trace_event ppf = function
  | T_request r -> Format.fprintf ppf "request  %a" Types.pp_request r
  | T_grant (g, `Normal) -> Format.fprintf ppf "grant    %a" Types.pp_grant g
  | T_grant (g, `Early) ->
      Format.fprintf ppf "grant    %a  <- early grant (over canceling NBW)"
        Types.pp_grant g
  | T_revoke { t_rid; t_lock_id; t_client } ->
      Format.fprintf ppf "revoke   r%d#%d -> client %d" t_rid t_lock_id t_client
  | T_ack { t_rid; t_lock_id } ->
      Format.fprintf ppf "ack      r%d#%d now CANCELING" t_rid t_lock_id
  | T_release { t_rid; t_lock_id } ->
      Format.fprintf ppf "release  r%d#%d" t_rid t_lock_id
  | T_downgrade { t_rid; t_lock_id; t_mode } ->
      Format.fprintf ppf "downgrade r%d#%d -> %s" t_rid t_lock_id
        (Mode.to_string t_mode)
  | T_crash { t_dropped_waiters } ->
      Format.fprintf ppf "crash    lock table lost (%d queued waiter(s) \
                          dropped)" t_dropped_waiters

let check_invariants t =
  List.iter
    (fun (_, rs) ->
      Dllist.check_invariants rs.waiting;
      Interval_index.check_invariants rs.granted_idx;
      (* The hash table and the interval index must agree entry for
         entry, each index entry keyed by the lock's current hull. *)
      assert (Hashtbl.length rs.granted = Interval_index.cardinal rs.granted_idx);
      Interval_index.iter
        (fun hull id (g : lock) ->
          (match find_lock rs id with
          | Some g' -> assert (g' == g)
          | None -> assert false);
          assert (Interval.equal hull g.hull))
        rs.granted_idx;
      (* The waiting-queue indexes must be exactly a recomputation from
         the live queue: per-mode hull-lo multisets and the per-client
         waiter counts. *)
      let q_lo' = Array.make 4 Int_map.empty in
      let wbc' = Hashtbl.create 16 in
      Dllist.iter
        (fun (w : waiter) ->
          (match w.req.ranges with
          | [] -> ()
          | ranges ->
              let rank = Blocked.mode_rank w.eff_mode in
              let lo = (Types.ranges_hull ranges).Interval.lo in
              q_lo'.(rank) <-
                Int_map.update lo
                  (function None -> Some 1 | Some n -> Some (n + 1))
                  q_lo'.(rank));
          let c = w.req.client in
          let n = match Hashtbl.find_opt wbc' c with Some n -> n | None -> 0 in
          Hashtbl.replace wbc' c (n + 1))
        rs.waiting;
      Array.iteri
        (fun rank m -> assert (Int_map.equal Int.equal m q_lo'.(rank)))
        rs.q_lo;
      assert (Hashtbl.length rs.waiting_by_client = Hashtbl.length wbc');
      (Hashtbl.iter
         [@lint.allow
           "D001 invariant sweep: per-entry asserts only, no \
            order-visible output"])
        (fun c n -> assert (Hashtbl.find_opt rs.waiting_by_client c = Some n))
        wbc';
      let granted = granted_fold (fun g acc -> g :: acc) rs [] in
      (* Write-lock SNs unique per resource. *)
      let sns =
        List.filter_map
          (fun (g : lock) -> if Mode.is_write g.mode then Some g.sn else None)
          granted
      in
      assert (List.length sns = List.length (List.sort_uniq Int.compare sns));
      List.iter (fun sn -> assert (sn < rs.next_sn)) sns;
      (* Overlapping granted locks must be compatible in at least one
         direction given their states. *)
      let rec pairs = function
        | [] -> ()
        | g :: rest ->
            List.iter
              (fun (h : lock) ->
                if Types.ranges_overlap g.ranges h.ranges then
                  assert (
                    Lcm.compatible ~req:g.mode ~granted:h.mode ~state:h.state
                    || Lcm.compatible ~req:h.mode ~granted:g.mode ~state:g.state))
              rest;
            pairs rest
      in
      pairs granted)
    (sorted_resources t);
  (* The live server-wide queue counter (the rebalancer's load signal)
     must equal a recomputation from the per-resource queues. *)
  let queued =
    List.fold_left
      (fun acc (_, rs) -> acc + Dllist.length rs.waiting)
      0 (sorted_resources t)
  in
  assert (queued = t.queued_total)
