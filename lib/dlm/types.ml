open Ccpfs_util

type client_id = int
type resource_id = int

type request = {
  client : client_id;
  rid : resource_id;
  mode : Mode.t;
  ranges : Interval.t list;
}

type grant = {
  lock_id : int;
  rid : resource_id;
  client : client_id;
  mode : Mode.t;
  ranges : Interval.t list;
  sn : int;
  state : Lcm.lock_state;
  replaces : int list;
}

(* The lock endpoint's reply: a grant, or a bounce from a server that no
   longer owns the resource's lock namespace (DESIGN.md §15).  The epoch
   is the shard map's version as of the bounce, so the client knows how
   fresh a map it must fetch before retrying. *)
type lock_reply = Granted of grant | Stale_owner of { epoch : int }

type server_msg = Revoke of { rid : resource_id; lock_id : int }

type ctl_msg =
  | Revoke_ack of { rid : resource_id; lock_id : int }
  | Downgrade of { rid : resource_id; lock_id : int; mode : Mode.t }
  | Release of { rid : resource_id; lock_id : int }

let ranges_hull = function
  | [] -> invalid_arg "Types.ranges_hull: empty range list"
  | r :: rest -> List.fold_left Interval.hull r rest

let normalize_ranges ranges =
  let sorted = List.sort Interval.compare ranges in
  let rec merge = function
    | a :: b :: rest when Interval.touches a b ->
        merge (Interval.hull a b :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

(* The merge scan is only correct when each list is sorted by offset with
   non-overlapping entries — the shape every server-side range list has.
   It used to *assume* that shape: handed an unsorted list (a raw request
   off the wire, a hand-built test case) it silently answered false on
   genuinely overlapping ranges.  Inputs are now checked in O(n) and
   normalized when they break the precondition, so the answer is right
   for every input and the well-formed fast path costs one cheap scan. *)
let rec sorted_disjoint : Interval.t list -> bool = function
  | [] | [ _ ] -> true
  | (x : Interval.t) :: ((y :: _) as rest) ->
      x.hi <= y.lo && sorted_disjoint rest

let rec overlap_scan a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | (x : Interval.t) :: xs, (y : Interval.t) :: ys ->
      if Interval.overlaps x y then true
      else if x.hi <= y.lo then overlap_scan xs b
      else overlap_scan a ys

let ranges_overlap a b =
  let canon l = if sorted_disjoint l then l else normalize_ranges l in
  overlap_scan (canon a) (canon b)

let pp_ranges ppf ranges =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Interval.pp ppf ranges

let pp_request ppf (r : request) =
  Format.fprintf ppf "req{c%d r%d %a %a}" r.client r.rid Mode.pp r.mode
    pp_ranges r.ranges

let pp_grant ppf g =
  Format.fprintf ppf "grant{#%d c%d r%d %a %a sn%d %a}" g.lock_id g.client
    g.rid Mode.pp g.mode pp_ranges g.ranges g.sn Lcm.pp_state g.state

let pp_lock_reply ppf = function
  | Granted g -> pp_grant ppf g
  | Stale_owner { epoch } -> Format.fprintf ppf "stale_owner{epoch%d}" epoch
