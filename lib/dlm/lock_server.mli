(** The DLM service of a data server.

    One lock server manages the lock resources of the stripes its node
    owns.  Processing follows §II-A/§III: requests queue FIFO per
    resource; a request is granted when it is compatible (per the Table II
    LCM) with every granted lock and does not conflict with an
    earlier-queued request (fairness — no starvation by later arrivals).

    Conflict resolution revokes GRANTED conflicting locks with a one-way
    callback.  Once the holder's revocation reply arrives the lock turns
    CANCELING; with early grant (NBW modes) that is enough to grant the
    waiting request, without waiting for the holder's data flushing and
    release.  When a grant could not be expanded and a queued request
    already conflicts with it, early revocation tags the grant CANCELING
    so no callback round-trip will ever be needed for it.

    Automatic lock conversion (upgrading) happens here too: a request
    conflicting only with GRANTED locks of the same client is granted with
    the join of the modes, merging those locks away ([replaces] in the
    grant).  Downgrading is client-initiated via the control endpoint.

    All handlers are non-blocking: deferred grants hold the RPC [reply]
    and fire it from a later queue pass. *)

type t

type stats = {
  mutable grants : int;
  mutable early_grants : int;
      (** grants that proceeded over CANCELING NBW conflicts *)
  mutable early_revocations : int;  (** grants tagged CANCELING *)
  mutable revokes_sent : int;
  mutable upgrades : int;  (** grants whose mode was raised by conversion *)
  mutable downgrades : int;
  mutable releases : int;
  mutable expansions : int;  (** grants whose range grew *)
  mutable revocation_wait : float;
      (** total time granted requests spent waiting for conflicting locks
          to turn CANCELING (Fig. 17 part ①) *)
  mutable release_wait : float;
      (** total time spent waiting, after that, for flush + release
          (Fig. 17 part ②) *)
  mutable max_queue : int;
}

val create :
  Dessim.Engine.t -> Netsim.Params.t -> node:Netsim.Node.t -> name:string ->
  policy:Policy.t -> t

val lock_endpoint : t -> (Types.request, Types.lock_reply) Netsim.Rpc.endpoint
(** The request/grant RPC.  In a sharded cluster the reply can be
    [Stale_owner] (DESIGN.md §15): the server consulted the ownership
    hooks ({!set_sharding}) and no longer owns the resource — the caller
    must refresh its shard-map cache and retry at the current owner. *)

val ctl_endpoint : t -> (Types.ctl_msg, unit) Netsim.Rpc.endpoint

val register_client :
  t -> Types.client_id -> (Types.server_msg, unit) Netsim.Rpc.endpoint -> unit
(** Where to deliver revocation callbacks for this client. *)

(** {1 Direct entry points (tests and benchmarks)}

    The in-process equivalents of the lock/ctl RPC endpoints: apply one
    protocol step synchronously, including every queue pass it causes.
    The model-based table tests and microbenchmarks drive the server
    through these, bypassing the simulated network. *)

val submit : t -> Types.request -> on_grant:(Types.grant -> unit) -> unit
(** Enqueue a request; [on_grant] fires (possibly later, from another
    step's queue pass) when it is granted. *)

val control : t -> Types.ctl_msg -> unit
(** Apply a revoke-ack, downgrade or release. *)

val submit_batch :
  t -> (Types.request * (Types.grant -> unit)) list -> unit
(** Vectorized {!submit}: decide a request vector in list order with the
    queue-scan cost amortized over the batch (each element after the
    first reuses the quiescent pass cache its predecessor refreshed).
    Semantically equivalent to N sequential {!submit}s — grants, SNs,
    queue order and stats are identical; the differential suite pins
    this.  Installed as the lock endpoint's transport batch handler. *)

val min_unreleased_write_sn :
  t -> Types.resource_id -> Ccpfs_util.Interval.t -> int option
(** Minimum SN among unreleased write locks overlapping the range, or
    [None] if there is none — the mSN query of the extent-cache cleanup
    task (§IV-B): cache entries with SN <= mSN are reclaimable. *)

val sync_resource : t -> Types.resource_id -> on_behalf:Types.client_id ->
  reply:(unit -> unit) -> unit
(** Force-synchronise all outstanding writes of a resource by queueing a
    whole-range PR request (the extent-cache overflow fallback of §IV-B);
    [reply] fires once every conflicting write lock has been released, and
    the internal lock is dropped immediately. *)

(** {1 Tracing}

    An optional tracer observes every protocol step with its virtual
    timestamp — the timeline the `ccpfs_run trace` command narrates. *)

type trace_event =
  | T_request of Types.request
  | T_grant of Types.grant * [ `Normal | `Early ]
  | T_revoke of { t_rid : Types.resource_id; t_lock_id : int;
                  t_client : Types.client_id }
  | T_ack of { t_rid : Types.resource_id; t_lock_id : int }
  | T_release of { t_rid : Types.resource_id; t_lock_id : int }
  | T_downgrade of { t_rid : Types.resource_id; t_lock_id : int;
                     t_mode : Mode.t }
  | T_crash of { t_dropped_waiters : int }
      (** [crash_online]: the volatile lock table (and any queued
          waiters) was just lost *)

val set_tracer : t -> (float -> trace_event -> unit) -> unit
val pp_trace_event : Format.formatter -> trace_event -> unit

val add_tracer : t -> (float -> trace_event -> unit) -> unit
(** Chain another tracer after whatever is already installed — the
    sanitizer monitors the protocol this way without stealing the trace
    slot from the CLI's [trace] command. *)

(** {1 Sanitizer hooks}

    The protocol sanitizer ([Check]) installs a validator that is invoked
    after every externally triggered state transition — lock request,
    control message (revoke-ack / downgrade / release), and resource sync —
    once the scheduling passes it caused have settled.  The lock server
    carries no knowledge of what is being checked. *)

val set_validator : t -> (t -> unit) -> unit
val clear_validator : t -> unit

(** {1 Server recovery (§IV-C2)}

    A failed lock server loses its in-memory lock table.  Recovery first
    gathers the grants still cached in clients and reinstalls them, then
    restores each resource's sequence number above every SN it may ever
    have issued (the maximum of the recovered locks' SNs and the SNs in
    the data server's extent log). *)

val crash : t -> unit
(** Drop all lock state.  Only legal while no requests are queued (HPC
    recovery happens between runs, §IV-C2); raises [Invalid_argument] if
    a waiter would lose its reply. *)

val crash_online : t -> int
(** Drop all lock state {e including} queued waiters, returning how many
    were dropped.  Only sound when every caller submits through the fenced
    retry path ([Rpc.call_reliable]): a dropped waiter's client times out
    and resubmits against the recovered epoch.  This is the crash the HA
    layer injects under live traffic. *)

val reinstall :
  t -> client:Types.client_id ->
  locks:(Types.resource_id * int * Mode.t * Ccpfs_util.Interval.t list * int
         * Lcm.lock_state) list -> unit
(** Re-adopt one client's cached grants (id, mode, ranges, SN, state). *)

val restore_sn_floor : t -> Types.resource_id -> int -> unit
(** Ensure the resource's next SN is strictly greater than [sn]. *)

(** {1 Sharded namespace (DESIGN.md §15)}

    With ownership hooks installed, the lock endpoint bounces requests
    for resources this server does not own ([Stale_owner] carrying the
    current map epoch) and control messages are forwarded on to the
    owner's ctl endpoint.  Without hooks the server owns everything —
    the pre-sharding behaviour, and what every direct-driven test gets.

    Migrating a resource out is a three-step handshake driven by the
    cluster coordinator: {!freeze} parks new intake, the coordinator
    flips the authoritative map, and {!migrate_out} extracts the lock
    table (bouncing parked and queued waiters with the new epoch) for
    {!adopt} on the new owner.  {!cancel_freeze} aborts, replaying the
    parked intake locally. *)

val set_sharding :
  t ->
  owned:(Types.resource_id -> bool) ->
  epoch:(unit -> int) ->
  forward_ctl:
    (Types.resource_id -> (Types.ctl_msg, unit) Netsim.Rpc.endpoint option) ->
  unit

type migration_state = {
  mig_rid : Types.resource_id;
  mig_next_sn : int;  (** the resource's sequencer position, preserved *)
  mig_bounced : int;  (** waiters (queued + parked) told to re-route *)
  mig_locks :
    (Types.client_id
    * (Types.resource_id * int * Mode.t * Ccpfs_util.Interval.t list * int
      * Lcm.lock_state))
    list;  (** granted locks, sorted by lock id *)
  mig_clients :
    (Types.client_id * (Types.server_msg, unit) Netsim.Rpc.endpoint) list;
      (** revoke-callback registrations the new owner needs *)
}

val freeze : t -> Types.resource_id -> unit
(** Park all new lock requests for the resource (they are neither queued
    nor bounced) while in-flight protocol activity drains.  Raises
    [Invalid_argument] if the resource is already freezing. *)

val cancel_freeze : t -> Types.resource_id -> unit
(** Abort a freeze: replay the parked intake locally, in arrival order. *)

val is_frozen : t -> Types.resource_id -> bool
(** Whether a {!freeze} is in place for the resource.  A crash
    ({!crash_online}) clears all freezes, so a migration coordinator
    re-checks this after its drain window. *)

val can_migrate : t -> Types.resource_id -> bool
(** Whether {!migrate_out} would succeed right now — false iff an
    internal sync pseudo-request is queued on the resource.  Check it in
    the same simulated event as the {!migrate_out} call. *)

val migrate_out : t -> Types.resource_id -> epoch:int -> migration_state option
(** Extract the resource's lock table for transfer, bouncing queued
    waiters and parked intake with [Stale_owner {epoch}] — each client
    refreshes its map and resubmits at the new owner.  Returns [None]
    (leaving the freeze in place) if an internal sync pseudo-request is
    queued: its reply closure cannot move, so the caller must
    {!cancel_freeze} and retry later. *)

val adopt : t -> migration_state -> unit
(** Install a migrated resource: register the transferred clients'
    revoke endpoints, reinstall the grants, and restore the sequencer so
    the next SN issued here continues exactly where the old owner
    stopped.  The caller additionally applies the extent-log SN floor
    from the resource's (static) data server. *)

val total_queued : t -> int
(** Live queued-waiter count over all resources — the value mirrored to
    the [dlm.<name>.queue] gauge that drives the rebalancer. *)

val hottest_resource : t -> (Types.resource_id * int) option
(** The resource with the deepest waiting queue (smallest rid on ties),
    or [None] if nothing is queued. *)

val inject_sn_reuse : t -> every:int -> unit
(** Fault injection for the sanitizer/fuzzer tests only: every [every]-th
    write-lock grant reissues the resource's previous sequence number
    instead of a fresh one — the SN-ordering bug the "sn-rules" and
    "sn-monotone" invariants exist to catch. *)

(** {1 Introspection (tests and reports)} *)

type lock_view = {
  v_lock_id : int;
  v_client : Types.client_id;
  v_mode : Mode.t;
  v_ranges : Ccpfs_util.Interval.t list;
  v_sn : int;
  v_state : Lcm.lock_state;
}

val granted_locks : t -> Types.resource_id -> lock_view list
(** Sorted by lock id. *)

type waiter_view = {
  q_client : Types.client_id;
  q_mode : Mode.t;  (** as requested *)
  q_eff_mode : Mode.t;  (** after conversion joins *)
  q_ranges : Ccpfs_util.Interval.t list;
  q_enq_time : float;
  q_internal : bool;  (** sync_resource pseudo-request *)
}

val waiting_view : t -> Types.resource_id -> waiter_view list
(** The resource's FIFO queue, head first. *)

val resource_ids : t -> Types.resource_id list
(** Every resource this server has state for, ascending. *)

val queue_length : t -> Types.resource_id -> int
val next_sn : t -> Types.resource_id -> int
val stats : t -> stats
val policy : t -> Policy.t
val node : t -> Netsim.Node.t
val name : t -> string

val check_invariants : t -> unit
(** Asserts that no two granted locks are mutually incompatible while both
    GRANTED, and that write-lock SNs are unique per resource. *)
