type expansion =
  | Greedy
  | Capped of { max_expand : int; lock_threshold : int }
  | No_expansion

type mode_selection = Seq_modes | Traditional_modes

type t = {
  name : string;
  expansion : expansion;
  early_grant : bool;
  early_revocation : bool;
  auto_convert : bool;
  datatype_requests : bool;
  selection : mode_selection;
  piggyback_release : bool;
      (** Ride the final Release (and any pending control messages) on the
          revocation flush instead of sending them as separate RPCs —
          SeqDLM's release-on-last-flush-block rule (paper §III-B).
          The traditional baselines send each control message on its own. *)
}

let seqdlm =
  {
    name = "SeqDLM";
    expansion = Greedy;
    early_grant = true;
    early_revocation = true;
    auto_convert = true;
    datatype_requests = false;
    selection = Seq_modes;
    piggyback_release = true;
  }

let dlm_basic =
  {
    name = "DLM-basic";
    expansion = Greedy;
    early_grant = false;
    early_revocation = false;
    auto_convert = false;
    datatype_requests = false;
    selection = Traditional_modes;
    piggyback_release = false;
  }

let dlm_lustre =
  {
    dlm_basic with
    name = "DLM-Lustre";
    expansion =
      Capped { max_expand = 32 * Ccpfs_util.Units.mib; lock_threshold = 32 };
  }

let dlm_datatype =
  {
    dlm_basic with
    name = "DLM-datatype";
    expansion = No_expansion;
    datatype_requests = true;
  }

let without_early_revocation t =
  { t with name = t.name ^ "-noER"; early_revocation = false }

let without_conversion t =
  { t with name = t.name ^ "-noConv"; auto_convert = false }

let with_name name t = { t with name }

let select_read _t = Mode.PR

let select_write t ~spans_resources ~implicit_read =
  match t.selection with
  | Traditional_modes -> Mode.PW
  | Seq_modes ->
      if implicit_read then Mode.PW
      else if spans_resources then Mode.BW
      else Mode.NBW

let all = [ seqdlm; dlm_basic; dlm_lustre; dlm_datatype ]
