(** Wire types of the lock protocol.

    A lock resource (one per file stripe in ccPFS) is identified by a
    [resource_id]; lock ids are unique per lock server, so a lock is
    globally identified by [(resource_id, lock_id)].

    A request normally carries a single byte range; DLM-datatype requests
    carry the full list of non-contiguous ranges of an IO (paper §V-A),
    which the server grants exactly, without range expanding. *)

type client_id = int
type resource_id = int

type request = {
  client : client_id;
  rid : resource_id;
  mode : Mode.t;
  ranges : Ccpfs_util.Interval.t list;
      (** sorted, pairwise disjoint; singleton unless datatype locking *)
}

type grant = {
  lock_id : int;
  rid : resource_id;
  client : client_id;
  mode : Mode.t;  (** possibly upgraded by automatic lock conversion *)
  ranges : Ccpfs_util.Interval.t list;  (** possibly expanded *)
  sn : int;
      (** the resource's sequence number at grant time; tags all data
          written under this lock *)
  state : Lcm.lock_state;
      (** [Canceling] means early revocation was piggybacked: use once,
          then cancel *)
  replaces : int list;
      (** lock ids of the holder's own locks merged into this grant by
          lock upgrading *)
}

(** The lock endpoint's reply.  [Stale_owner] is the bounce of the
    sharded namespace (DESIGN.md §15): the addressed server no longer
    owns the resource, and the client must install a shard map of at
    least [epoch] before retrying at the current owner. *)
type lock_reply = Granted of grant | Stale_owner of { epoch : int }

(** Server → client callbacks. *)
type server_msg = Revoke of { rid : resource_id; lock_id : int }

(** Client → server control messages (all one-way; the lock request /
    grant pair is the only call with a reply). *)
type ctl_msg =
  | Revoke_ack of { rid : resource_id; lock_id : int }
      (** the client switched the lock to CANCELING and will not reuse
          it; data flushing is still in flight *)
  | Downgrade of { rid : resource_id; lock_id : int; mode : Mode.t }
  | Release of { rid : resource_id; lock_id : int }

val ranges_hull : Ccpfs_util.Interval.t list -> Ccpfs_util.Interval.t
(** Bounding interval of a non-empty sorted range list. *)

val ranges_overlap :
  Ccpfs_util.Interval.t list -> Ccpfs_util.Interval.t list -> bool
(** Whether two range lists intersect.  Sorted disjoint lists (the shape
    [normalize_ranges] produces, and the invariant of all server-side
    lists) are compared with a linear merge scan; anything else is
    normalized first, so the answer does not depend on list order. *)

val normalize_ranges : Ccpfs_util.Interval.t list -> Ccpfs_util.Interval.t list
(** Sort and merge touching ranges. *)

val pp_request : Format.formatter -> request -> unit
val pp_grant : Format.formatter -> grant -> unit
val pp_lock_reply : Format.formatter -> lock_reply -> unit
