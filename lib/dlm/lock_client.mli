(** The client side of the lock protocol: the per-client lock-grant
    cache, revocation handling and the cancel path.

    Acquiring first probes the cache for a GRANTED lock whose mode
    subsumes the requested one and whose ranges cover the request
    (§II-A); otherwise it sends a lock request and blocks for the grant.
    Grants arriving in the CANCELING state (early revocation) are used
    once and then cancelled.

    A revocation callback flips the lock to CANCELING so no new IO can
    use it, acknowledges immediately, and a canceller process then waits
    for ongoing holders, performs the automatic downgrade (§III-D2) —
    BW → NBW before flushing, PW → NBW before flushing when dirty data
    exists, PW → PR otherwise — flushes the dirty data under the lock via
    the cache hooks, and releases.

    The data cache itself lives in the PFS layer and is reached through
    {!hooks}: the lock manager stays independent of what it protects. *)

type t

type hooks = {
  flush : rid:Types.resource_id -> ranges:Ccpfs_util.Interval.t list -> unit;
      (** Flush the dirty extents under these ranges to the data server;
          blocks until the data is durable there.  May be called with
          nothing dirty (no-op). *)
  has_dirty : rid:Types.resource_id -> ranges:Ccpfs_util.Interval.t list -> bool;
  invalidate : rid:Types.resource_id -> ranges:Ccpfs_util.Interval.t list -> unit;
      (** Drop clean cached data under these ranges: called when a lock
          loses its read capability (cancel, or PW → NBW downgrade) so the
          client cannot serve stale reads afterwards. *)
}

val create :
  Dessim.Engine.t -> Netsim.Params.t -> node:Netsim.Node.t ->
  client_id:Types.client_id -> route:(Types.resource_id -> Lock_server.t) ->
  hooks:hooks -> t
(** [route] maps a resource to the lock server owning it (ccPFS colocates
    the DLM service for a stripe with the data server storing it).  The
    client registers its callback endpoint with each server on first
    contact.  The conversion policy is taken from each server's policy. *)

type handle
(** A held reference to a cached lock.  Must be released exactly once. *)

val acquire :
  t -> rid:Types.resource_id -> mode:Mode.t ->
  ranges:Ccpfs_util.Interval.t list -> handle
(** Blocks the calling process until a usable lock is held. *)

val release : t -> handle -> unit
(** Drop the hold.  GRANTED locks stay cached for reuse; CANCELING locks
    begin their cancel once the last holder is gone. *)

val with_lock :
  t -> rid:Types.resource_id -> mode:Mode.t ->
  ranges:Ccpfs_util.Interval.t list -> (handle -> 'a) -> 'a

val sn : handle -> int
(** Sequence number tagging data written under this hold. *)

val mode : handle -> Mode.t
val granted_ranges : handle -> Ccpfs_util.Interval.t list
val is_canceling : handle -> bool

(** {1 Server recovery (§IV-C2)}

    After a lock-server failure the server rebuilds its lock table by
    gathering the grants its clients still cache. *)

type recovery_lock = {
  r_rid : Types.resource_id;
  r_lock_id : int;
  r_mode : Mode.t;
  r_ranges : Ccpfs_util.Interval.t list;
  r_sn : int;
  r_state : Lcm.lock_state;
}

val locks_for_recovery :
  t -> owned:(Types.resource_id -> bool) -> recovery_lock list
(** The cached locks whose resources the recovering server owns
    (canceling locks included: their releases are still coming). *)

(** {1 Online failover (lib/ha)}

    With a retry policy installed, lock requests go through the fenced
    transport ({!Netsim.Rpc.call_reliable}) and control messages become
    reliable sends — the client survives a lock-server crash with
    requests in flight.  Without one, behaviour is identical to the
    plain paths. *)

val set_reliability : t -> Netsim.Rpc.reliability -> unit
val reliability : t -> Netsim.Rpc.reliability option

(** {1 Sharded namespace (DESIGN.md §15)}

    In a sharded cluster the [route] closure reads a shard-map cache,
    and a server that no longer owns a resource answers [Stale_owner].
    The refresh hook fetches a map snapshot of at least the bounce's
    epoch and installs it, after which {!acquire} re-routes and
    retries.  Without a hook a bounce is a protocol failure. *)

val set_map_refresh : t -> (min_epoch:int -> unit) -> unit

val stale_bounces : t -> int
(** [Stale_owner] bounces seen so far (each costs one extra round
    trip plus the map fetch). *)

(** {1 Piggybacking (DESIGN.md §13)}

    When the policy rides releases on flush traffic
    ([Policy.piggyback_release] — SeqDLM's release-on-last-flush-block
    rule, paper §III-B), outgoing control messages (revoke-acks,
    downgrades, releases) are parked per server for up to [delay]
    seconds: a flush RPC towards the same server takes them along
    ({!take_piggyback}, wired into the data cache by {!Client}), and a
    delay-timer drains leftovers as plain notifies.  Per-server send
    order is preserved.  Only legal on the plain transport — under a
    retry policy control messages must stay individually reliable, so
    {!Client} never enables both. *)

val set_piggyback : t -> delay:float -> unit
val take_piggyback : t -> rid:Types.resource_id -> Types.ctl_msg list
(** Remove and return every parked control message for the server owning
    [rid], in send order; [[]] when piggybacking is off or nothing is
    parked. *)

val view : t -> Netsim.Rpc.View.t
(** The client's epoch view and request-id allocator, shared with the
    PFS layer so data-server I/O is fenced by the same epochs. *)

val retries : t -> int
(** Fenced-call retransmissions performed so far (all endpoints). *)

type recovery_query = {
  rq_server : string;  (** node name of the crashed server, e.g. ["ds0"] *)
  rq_epoch : int;  (** the recovery epoch being installed *)
  rq_endpoints : string list;  (** endpoint names to fence in the view *)
}

val recovery_endpoint :
  t -> (recovery_query, recovery_lock list) Netsim.Rpc.endpoint
(** The gather service the recovery coordinator calls.  Its handler first
    raises the client's epoch view over [rq_endpoints] — fencing off any
    still-in-flight grant from the crashed epoch — and then reports
    {!locks_for_recovery} for the resources routed to [rq_server]. *)

(** {1 Instrumentation} *)

val locking_seconds : t -> float
(** Total virtual time spent blocked in {!acquire} (the "locking time" of
    Fig. 18(b)). *)

val acquires : t -> int
val cache_hits : t -> int
val cancels : t -> int
val cached_locks : t -> int
val client_id : t -> Types.client_id
