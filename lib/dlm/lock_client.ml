open Ccpfs_util
open Dessim
open Netsim

type hooks = {
  flush : rid:Types.resource_id -> ranges:Interval.t list -> unit;
  has_dirty : rid:Types.resource_id -> ranges:Interval.t list -> bool;
  invalidate : rid:Types.resource_id -> ranges:Interval.t list -> unit;
}

type cached_lock = {
  lock_id : int;
  rid : Types.resource_id;
  mutable cmode : Mode.t;
  ranges : Interval.t list;
  csn : int;
  mutable state : Lcm.lock_state;
  mutable holders : int;
  mutable cancel_started : bool;
  idle : Condition.t;
  mutable merged_into : cached_lock option;
}

type handle = cached_lock

type recovery_query = {
  rq_server : string;
  rq_epoch : int;
  rq_endpoints : string list;
}

type recovery_lock = {
  r_rid : Types.resource_id;
  r_lock_id : int;
  r_mode : Mode.t;
  r_ranges : Interval.t list;
  r_sn : int;
  r_state : Lcm.lock_state;
}

(* Pending control messages for one lock server, awaiting a ride on that
   node's data traffic (DESIGN.md §13).  [pb_msgs] is kept reversed;
   takers restore send order. *)
type pb_queue = {
  pb_srv : Lock_server.t;
  mutable pb_msgs : Types.ctl_msg list;
  mutable pb_armed : bool;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  node : Node.t;
  id : Types.client_id;
  route : Types.resource_id -> Lock_server.t;
  hooks : hooks;
  locks : (Types.resource_id * int, cached_lock) Hashtbl.t;
  by_rid : (Types.resource_id, cached_lock list ref) Hashtbl.t;
  registered : (string, unit) Hashtbl.t;
  pending_revokes : (Types.resource_id * int, unit) Hashtbl.t;
  pb : (string, pb_queue) Hashtbl.t; (* server node name -> pending ctl *)
  mutable piggyback : float option; (* hold-back delay; None = off *)
  mutable revoke_ep : (Types.server_msg, unit) Rpc.endpoint option;
  mutable recover_ep : (recovery_query, recovery_lock list) Rpc.endpoint option;
  view : Rpc.View.t;
  mutable rel : Rpc.reliability option;
  mutable map_refresh : (min_epoch:int -> unit) option;
      (* installed by the cluster: fetch a shard-map snapshot of at least
         [min_epoch] and install it into the cache [route] consults *)
  mutable locking : float;
  mutable n_acquires : int;
  mutable n_hits : int;
  mutable n_cancels : int;
  mutable n_stale : int; (* Stale_owner bounces seen *)
}

let rid_locks t rid =
  match Hashtbl.find_opt t.by_rid rid with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.by_rid rid r;
      r

let remove_lock t (l : cached_lock) =
  Hashtbl.remove t.locks (l.rid, l.lock_id);
  let r = rid_locks t l.rid in
  r := List.filter (fun x -> x.lock_id <> l.lock_id) !r

let server t rid =
  let srv = t.route rid in
  let key = Node.name (Lock_server.node srv) in
  if not (Hashtbl.mem t.registered key) then begin
    Hashtbl.add t.registered key ();
    Lock_server.register_client srv t.id (Option.get t.revoke_ep)
  end;
  srv

(* Piggybacking (DESIGN.md §13).  With batching on, control messages are
   parked here for up to [piggyback] seconds hoping a flush RPC towards
   the same server picks them up ([take_piggyback], wired into the data
   cache); the delay-timer drains leftovers as plain notifies, which the
   transport batch then coalesces.  Per-server order is preserved — the
   queue is FIFO and a taker always takes everything. *)
let pb_queue t srv =
  let key = Node.name (Lock_server.node srv) in
  match Hashtbl.find_opt t.pb key with
  | Some q -> q
  | None ->
      let q = { pb_srv = srv; pb_msgs = []; pb_armed = false } in
      Hashtbl.add t.pb key q;
      q

let pb_take q =
  let msgs = List.rev q.pb_msgs in
  q.pb_msgs <- [];
  msgs

let pb_drain t q =
  List.iter
    (fun msg -> Rpc.notify (Lock_server.ctl_endpoint q.pb_srv) ~src:t.node msg)
    (pb_take q)

let pb_arm t q delay =
  if not q.pb_armed then begin
    q.pb_armed <- true;
    Engine.schedule t.eng ~delay (fun () ->
        q.pb_armed <- false;
        pb_drain t q)
  end

(* Control messages (release / downgrade / revoke-ack) are fire-and-
   forget.  Under the HA regime they must also be *reliable*: a Release
   dropped during a server outage — after the recovery coordinator has
   gathered this client's locks — would leave the reinstalled grant held
   forever.  The server-side handlers no-op on unknown lock ids, so a
   retransmission landing after recovery is always safe regardless of
   whether the lock was gathered. *)
let send_ctl t srv msg =
  let ep = Lock_server.ctl_endpoint srv in
  match t.rel with
  | Some rel -> Rpc.send_reliable ep ~src:t.node ~reliability:rel ~view:t.view msg
  | None -> (
      match t.piggyback with
      | None -> Rpc.notify ep ~src:t.node msg
      | Some delay ->
          let q = pb_queue t srv in
          q.pb_msgs <- msg :: q.pb_msgs;
          pb_arm t q delay)

(* The cancel path (§III-A2, §III-D2).  Runs as its own process: waits
   out ongoing holders, downgrades, flushes, releases. *)
let start_cancel t (l : cached_lock) =
  if not l.cancel_started then begin
    l.cancel_started <- true;
    t.n_cancels <- t.n_cancels + 1;
    Engine.spawn t.eng
      ~name:(Printf.sprintf "c%d.cancel.r%d#%d" t.id l.rid l.lock_id)
      (fun () ->
        Condition.wait_until
          ~ctx:(Printf.sprintf "lock-idle:r%d#%d" l.rid l.lock_id)
          l.idle
          (fun () -> l.holders = 0);
        let srv = server t l.rid in
        let convert = (Lock_server.policy srv).Policy.auto_convert in
        let release_msg = Types.Release { rid = l.rid; lock_id = l.lock_id } in
        let release ~parked () =
          (* The lock protected any clean data cached under it; once it is
             gone the client may no longer serve reads from that data. *)
          t.hooks.invalidate ~rid:l.rid ~ranges:l.ranges;
          (if parked then begin
             (* The release was parked for the flush RPC.  If the flush
                carried it, it is gone from the queue (applied at the
                server after the blocks); if the cache had nothing dirty
                no RPC went out, so reclaim it and send it plainly.
                Everything here runs in the flush's returning event, so
                no drain timer can race the reclaim. *)
             let q = pb_queue t srv in
             if List.memq release_msg q.pb_msgs then begin
               q.pb_msgs <-
                 List.filter (fun m -> m != release_msg) q.pb_msgs;
               Rpc.notify (Lock_server.ctl_endpoint srv) ~src:t.node
                 release_msg
             end
           end
           else send_ctl t srv release_msg);
          remove_lock t l
        in
        (* Flush-then-release, the §III-B rule: with piggybacking on, the
           release is parked *before* the flush so the Write_flush built
           in this same event carries it — the data server applies it
           right after the blocks are durable, and the trailing control
           courier disappears (DESIGN.md §13). *)
        let flush_release () =
          let parked =
            match (t.rel, t.piggyback) with
            | None, Some _ ->
                let q = pb_queue t srv in
                q.pb_msgs <- release_msg :: q.pb_msgs;
                true
            | _ -> false
          in
          t.hooks.flush ~rid:l.rid ~ranges:l.ranges;
          release ~parked ()
        in
        match l.cmode with
        | Mode.PR -> release ~parked:false ()
        | Mode.NBW -> flush_release ()
        | Mode.BW ->
            if convert then begin
              (* Downgrade before flushing so conflicting write requests
                 can be early-granted during the flush (Fig. 12). *)
              l.cmode <- Mode.NBW;
              send_ctl t srv
                (Types.Downgrade
                   { rid = l.rid; lock_id = l.lock_id; mode = Mode.NBW })
            end;
            flush_release ()
        | Mode.PW ->
            if convert && t.hooks.has_dirty ~rid:l.rid ~ranges:l.ranges then begin
              l.cmode <- Mode.NBW;
              (* PW -> NBW loses the read capability immediately. *)
              t.hooks.invalidate ~rid:l.rid ~ranges:l.ranges;
              send_ctl t srv
                (Types.Downgrade
                   { rid = l.rid; lock_id = l.lock_id; mode = Mode.NBW });
              flush_release ()
            end
            else if convert then begin
              (* Read-only use: nothing to flush, shrink to PR so pending
                 readers are granted, then release. *)
              l.cmode <- Mode.PR;
              send_ctl t srv
                (Types.Downgrade
                   { rid = l.rid; lock_id = l.lock_id; mode = Mode.PR });
              release ~parked:false ()
            end
            else flush_release ())
  end

let handle_revoke t (msg : Types.server_msg) =
  match msg with
  | Types.Revoke { rid; lock_id } -> (
      match Hashtbl.find_opt t.locks (rid, lock_id) with
      | Some l ->
          if l.state = Lcm.Granted then begin
            l.state <- Lcm.Canceling;
            send_ctl t (server t rid) (Types.Revoke_ack { rid; lock_id });
            start_cancel t l
          end
      | None ->
          (* Revocation raced ahead of the grant install: remember it and
             apply when the grant arrives. *)
          Hashtbl.replace t.pending_revokes (rid, lock_id) ())

let locks_for_recovery t ~owned =
  (* sorted (rid, lock_id) traversal: the recovery report order feeds the
     reacquire stream, so it must not depend on table internals *)
  Det_tbl.fold_sorted
    ~cmp:(fun (r1, l1) (r2, l2) ->
      match Int.compare r1 r2 with 0 -> Int.compare l1 l2 | c -> c)
    (fun (rid, _) (l : cached_lock) acc ->
      if owned rid then
        {
          r_rid = rid;
          r_lock_id = l.lock_id;
          r_mode = l.cmode;
          r_ranges = l.ranges;
          r_sn = l.csn;
          r_state = l.state;
        }
        :: acc
      else acc)
    t.locks []
  |> List.rev

(* The recovery coordinator's gather RPC (§IV-C2, online).  Bumping the
   view first is the fencing half: any grant from the crashed epoch still
   in flight towards this client arrives with an older epoch stamp and is
   discarded by its retry loop — so no lock unknown to the recovered
   server can be installed after we reported our cached set. *)
let handle_recovery_query t (q : recovery_query) =
  List.iter (fun ep -> Rpc.View.observe t.view ep q.rq_epoch) q.rq_endpoints;
  let owned rid =
    Node.name (Lock_server.node (t.route rid)) = q.rq_server
  in
  locks_for_recovery t ~owned

let create eng params ~node ~client_id ~route ~hooks =
  let t =
    {
      eng; params; node; id = client_id; route; hooks;
      locks = Hashtbl.create 64;
      by_rid = Hashtbl.create 16;
      registered = Hashtbl.create 8;
      pending_revokes = Hashtbl.create 8;
      pb = Hashtbl.create 8;
      piggyback = None;
      revoke_ep = None;
      recover_ep = None;
      view = Rpc.View.create ~salt:client_id ();
      rel = None;
      map_refresh = None;
      locking = 0.;
      n_acquires = 0;
      n_hits = 0;
      n_cancels = 0;
      n_stale = 0;
    }
  in
  t.revoke_ep <-
    Some
      (Rpc.endpoint eng params ~node ~name:(Printf.sprintf "c%d.revoke" client_id)
         ~handler:(fun msg ~reply ->
           handle_revoke t msg;
           reply ()));
  t.recover_ep <-
    Some
      (Rpc.endpoint eng params ~node
         ~name:(Printf.sprintf "c%d.recover" client_id)
         ~handler:(fun q ~reply -> reply (handle_recovery_query t q)));
  t

let covers (l : cached_lock) ranges =
  List.for_all
    (fun iv -> List.exists (fun r -> Interval.contains r iv) l.ranges)
    ranges

let find_usable t ~rid ~mode ~ranges =
  let r = rid_locks t rid in
  List.find_opt
    (fun (l : cached_lock) ->
      l.state = Lcm.Granted && (not l.cancel_started)
      && Mode.subsumes ~cached:l.cmode ~wanted:mode
      && covers l ranges)
    !r

let install_grant t (g : Types.grant) =
  (* Lock upgrading merged some of our own locks into this grant: retire
     them, transferring their in-flight holds to the new lock. *)
  let merged =
    List.filter_map (fun id -> Hashtbl.find_opt t.locks (g.rid, id)) g.replaces
  in
  List.iter (remove_lock t) merged;
  let inherited = List.fold_left (fun acc old -> acc + old.holders) 0 merged in
  let l =
    {
      lock_id = g.lock_id;
      rid = g.rid;
      cmode = g.mode;
      ranges = g.ranges;
      csn = g.sn;
      state = g.state;
      holders = 1 + inherited;
      cancel_started = false;
      idle = Condition.create t.eng;
      merged_into = None;
    }
  in
  List.iter (fun old -> old.merged_into <- Some l) merged;
  Hashtbl.replace t.locks (g.rid, g.lock_id) l;
  let r = rid_locks t g.rid in
  r := l :: !r;
  if Hashtbl.mem t.pending_revokes (g.rid, g.lock_id) then begin
    Hashtbl.remove t.pending_revokes (g.rid, g.lock_id);
    if l.state = Lcm.Granted then begin
      l.state <- Lcm.Canceling;
      send_ctl t (server t g.rid)
        (Types.Revoke_ack { rid = g.rid; lock_id = g.lock_id })
    end
  end;
  l

let acquire t ~rid ~mode ~ranges =
  t.n_acquires <- t.n_acquires + 1;
  match find_usable t ~rid ~mode ~ranges with
  | Some l ->
      t.n_hits <- t.n_hits + 1;
      l.holders <- l.holders + 1;
      l
  | None ->
      let t0 = Engine.now t.eng in
      let req = { Types.client = t.id; rid; mode; ranges } in
      (* The route is re-read on every attempt: a [Stale_owner] bounce
         refreshes the shard-map cache, so the retry goes to the current
         owner (DESIGN.md §15).  The attempt bound only guards against a
         broken map service — each bounce installs a strictly newer map,
         so a live cluster converges in one or two hops. *)
      let rec attempt tries =
        let srv = server t rid in
        (* Push parked control traffic for this server out ahead of the
           request (best effort: ctl and lock ride separate batch queues,
           and the server tolerates either arrival order — unknown lock
           ids no-op, own-lock conflicts convert). *)
        (match Hashtbl.find_opt t.pb (Node.name (Lock_server.node srv)) with
        | Some q -> pb_drain t q
        | None -> ());
        let ep = Lock_server.lock_endpoint srv in
        let resp =
          match t.rel with
          | None -> Rpc.call ep ~src:t.node req
          | Some rel ->
              (* Fenced + retried: survives a server crash while the
                 request (or its grant) is in flight. *)
              Rpc.call_reliable ep ~src:t.node ~reliability:rel ~view:t.view
                req
        in
        match resp with
        | Types.Granted g -> g
        | Types.Stale_owner { epoch } ->
            t.n_stale <- t.n_stale + 1;
            (match t.map_refresh with
            | Some refresh -> refresh ~min_epoch:epoch
            | None ->
                failwith
                  (Printf.sprintf
                     "c%d: Stale_owner (epoch %d) for rid %d with no \
                      shard-map refresh hook"
                     t.id epoch rid));
            if tries <= 1 then
              failwith
                (Printf.sprintf
                   "c%d: rid %d still bouncing after map refresh to epoch \
                    >= %d"
                   t.id rid epoch)
            else attempt (tries - 1)
      in
      let grant = attempt 16 in
      t.locking <- t.locking +. (Engine.now t.eng -. t0);
      install_grant t grant

let rec resolve (l : cached_lock) =
  match l.merged_into with None -> l | Some l' -> resolve l'

let release t h =
  let l = resolve h in
  if l.holders <= 0 then invalid_arg "Lock_client.release: not held";
  l.holders <- l.holders - 1;
  if l.holders = 0 then begin
    Condition.broadcast l.idle;
    if l.state = Lcm.Canceling then start_cancel t l
  end

let with_lock t ~rid ~mode ~ranges f =
  let h = acquire t ~rid ~mode ~ranges in
  match f h with
  | v ->
      release t h;
      v
  | exception e ->
      release t h;
      raise e

let sn h = (resolve h).csn
let mode h = (resolve h).cmode
let granted_ranges h = (resolve h).ranges
let is_canceling h = (resolve h).state = Lcm.Canceling
let locking_seconds t = t.locking
let acquires t = t.n_acquires
let cache_hits t = t.n_hits
let cancels t = t.n_cancels
let cached_locks t = Hashtbl.length t.locks
let client_id t = t.id
let view t = t.view
let set_reliability t rel = t.rel <- Some rel
let set_map_refresh t f = t.map_refresh <- Some f
let stale_bounces t = t.n_stale

let set_piggyback t ~delay =
  if delay < 0. then invalid_arg "Lock_client.set_piggyback: delay < 0";
  t.piggyback <- Some delay

let take_piggyback t ~rid =
  match t.piggyback with
  | None -> []
  | Some _ -> (
      match
        Hashtbl.find_opt t.pb (Node.name (Lock_server.node (t.route rid)))
      with
      | None -> []
      | Some q -> pb_take q)
let reliability t = t.rel
let retries t = Rpc.View.retries t.view
let recovery_endpoint t = Option.get t.recover_ep
