(** Configuration of a DLM variant.

    The paper evaluates four lock managers inside ccPFS (§V-A); all four
    are the same server/client machinery under different policies:

    - {!seqdlm}: greedy range expansion, early grant (NBW/BW modes),
      early revocation, automatic lock conversion.
    - {!dlm_basic}: the general DLM of §II-A — greedy expansion, normal
      grant only (clients select PR/PW).
    - {!dlm_lustre}: like DLM-basic but expansion is capped at 32 MiB once
      the resource has more than 32 granted locks.
    - {!dlm_datatype}: non-contiguous (datatype) locking — exact
      multi-range locks, no expansion, normal grant.

    Ablation variants (early grant without early revocation, SeqDLM
    without conversion) are derived with the [with_*] helpers. *)

type expansion =
  | Greedy  (** expand the end to the largest compatible offset (→ EOF) *)
  | Capped of { max_expand : int; lock_threshold : int }
      (** greedy until the resource holds more than [lock_threshold]
          locks, then expand at most [max_expand] bytes past the request *)
  | No_expansion  (** datatype locking: grant exactly what was asked *)

type mode_selection =
  | Seq_modes  (** Fig. 10 rules: PR / NBW / BW / PW *)
  | Traditional_modes  (** reads → PR, all writes → PW *)

type t = {
  name : string;
  expansion : expansion;
  early_grant : bool;
      (** whether clients may select NBW/BW (the LCM's early-grant
          entries are only reachable through those modes) *)
  early_revocation : bool;
      (** piggyback revocation in the grant reply when a queued conflict
          exists and the range could not be expanded *)
  auto_convert : bool;  (** lock upgrading and downgrading (§III-D) *)
  datatype_requests : bool;
      (** clients send the exact non-contiguous range list *)
  selection : mode_selection;
  piggyback_release : bool;
      (** ride the final Release (and pending control messages) on the
          revocation flush instead of separate RPCs — SeqDLM's
          release-on-last-flush-block rule (§III-B). Baselines send each
          control message on its own. *)
}

val seqdlm : t
val dlm_basic : t
val dlm_lustre : t
val dlm_datatype : t

val without_early_revocation : t -> t
val without_conversion : t -> t
val with_name : string -> t -> t

val select_read : t -> Mode.t
(** Fig. 10: reads always take PR. *)

val select_write : t -> spans_resources:bool -> implicit_read:bool -> Mode.t
(** Fig. 10 for this policy's mode set: implicit reads (append, partial
    pages) → PW; multi-resource atomic writes → BW; otherwise NBW —
    collapsing to PW for traditional mode selection. *)

val all : t list
(** The four paper variants, for parameterised tests. *)
