(** The epoch/lease membership table of the failover layer.

    One entry per lock/data server.  Each entry carries the server's
    current membership epoch — bumped once per recovery, stamped on every
    fenced RPC so a recovered server rejects (and clients discard)
    traffic from before the crash — and a lease that heartbeat successes
    keep extending.  A server is declared failed only after consecutive
    heartbeat misses {e and} lease expiry, so one slow reply never
    triggers a spurious failover. *)

type state =
  | Up  (** serving; lease kept alive by heartbeats *)
  | Down  (** declared failed; endpoints fenced, recovery pending *)
  | Recovering  (** the §IV-C2 rebuild is running under the new epoch *)

type t

val create : Dessim.Engine.t -> lease:float -> names:string array -> t
(** All servers start [Up] with epoch 0 and a full lease.
    @raise Invalid_argument if [lease <= 0]. *)

val n : t -> int
val name : t -> int -> string
val state : t -> int -> state
val epoch : t -> int -> int
val set_state : t -> int -> state -> unit

val bump_epoch : t -> int -> int
(** Advance the server's epoch (the recovery fence) and return it. *)

val renew_lease : t -> int -> unit
(** Extend the lease to [now + lease] (a heartbeat succeeded). *)

val lease_expired : t -> int -> bool
val lease : t -> float

val all_up : t -> bool
val state_to_string : state -> string
