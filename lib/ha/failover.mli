(** Live lock-server failover under traffic (SeqDLM §IV-C2, online).

    [install] wires a heartbeat {!Detector} and an epoch/lease
    {!Membership} table onto a running {!Ccpfs.Cluster}.  [crash] kills a
    lock/data server pair mid-run: its endpoints go down (in-flight
    requests to the old incarnation are dropped), its at-most-once dedup
    state and lock table are lost, and clients' fenced RPCs start timing
    out and retrying.  The detector notices, fences the server behind a
    bumped epoch, and the recovery coordinator rebuilds the lock table
    online: extent logs are replayed for the SN floor, every live client
    is asked (by RPC) for the cached locks it holds on the dead server —
    the gather reply doubles as the client's epoch-view bump, so a
    pre-crash grant still in flight can never be installed afterwards —
    and only then do the endpoints reopen under the new epoch.  Clients
    that were mid-request simply see one more timeout and their next
    retry succeeds. *)

type record = {
  f_server : int;  (** server index *)
  f_epoch : int;  (** epoch installed by this recovery *)
  f_crash : float;  (** when {!crash} fired *)
  f_detect : float;  (** when the detector declared the failure *)
  f_recover : float;  (** when the endpoints reopened *)
  f_reinstalled : int;  (** locks gathered from clients and reinstalled *)
  f_dropped_waiters : int;  (** queued requests lost with the lock table *)
  f_replayed_bytes : int;  (** extent-log bytes replayed for the SN floor *)
}

type t

val install :
  ?period:float ->
  ?hb_timeout:float ->
  ?misses_allowed:int ->
  ?lease:float ->
  Ccpfs.Cluster.t ->
  t
(** Create membership + detector for every server of the cluster and
    start the heartbeat daemons.  Defaults (in units of
    [params.rtt]): period 10, hb_timeout 20, lease 50; [misses_allowed]
    defaults to 2.
    @raise Invalid_argument if the cluster was built without
    [~reliability] — without retries, clients cannot survive an outage. *)

val crash : t -> int -> bool
(** Kill server [i] now (endpoints down, dedup + lock table lost, queued
    waiters dropped).  Returns [false] as a no-op if it is already down. *)

val await_all_up : t -> unit
(** Run the engine until every server is [Up] again.  Call after the
    workload's [Engine.run] returns to guarantee an in-flight recovery
    has completed before inspecting state. *)

val records : t -> record list
(** Completed failovers, oldest first. *)

val membership : t -> Membership.t
val detector : t -> Detector.t
