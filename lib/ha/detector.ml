open Dessim
open Netsim

type t = {
  eng : Engine.t;
  node : Node.t; (* the monitor's own node: heartbeats pay transport *)
  membership : Membership.t;
  hb : (unit, unit) Rpc.endpoint array;
  period : float;
  hb_timeout : float;
  misses_allowed : int;
  on_failure : int -> unit;
  mutable detections : int;
}

let create eng ~node ~membership ~hb ~period ~hb_timeout ~misses_allowed
    ~on_failure =
  if period <= 0. || hb_timeout <= 0. then
    invalid_arg "Detector.create: period and hb_timeout must be positive";
  if misses_allowed < 1 then
    invalid_arg "Detector.create: misses_allowed must be >= 1";
  { eng; node; membership; hb; period; hb_timeout; misses_allowed; on_failure;
    detections = 0 }

(* One daemon per monitored server: ping, count consecutive misses, and
   declare the failure once misses and lease expiry agree.  The daemon
   keeps running across failovers — after recovery flips the server back
   to Up it resumes heartbeating it. *)
let monitor t i =
  let misses = ref 0 in
  let first_miss = ref 0. in
  while true do
    Engine.sleep t.eng t.period;
    match Membership.state t.membership i with
    | Membership.Down | Membership.Recovering -> misses := 0
    | Membership.Up -> (
        (* Heartbeats are fenced single attempts (no retries, no dedup):
           a lost or late beat is exactly what we're here to observe.
           The hb endpoint stays at epoch 0 forever. *)
        match
          Rpc.call_fenced t.hb.(i) ~src:t.node ~timeout:t.hb_timeout ~epoch:0 ()
        with
        | Rpc.Reply ((), _) ->
            misses := 0;
            Membership.renew_lease t.membership i
        | Rpc.Stale _ | Rpc.Timeout ->
            if !misses = 0 then first_miss := Engine.now t.eng;
            incr misses;
            if
              !misses >= t.misses_allowed
              && Membership.lease_expired t.membership i
            then begin
              misses := 0;
              t.detections <- t.detections + 1;
              let sink = Engine.trace_sink t.eng in
              if Obs.Trace.enabled sink then
                Obs.Trace.complete sink ~ts:!first_miss
                  ~dur:(Engine.now t.eng -. !first_miss)
                  ~tid:(Engine.current_pid t.eng) ~cat:"ha"
                  ~args:
                    [
                      ("server", Obs.Json.Str (Membership.name t.membership i));
                      ("epoch", Obs.Json.Int (Membership.epoch t.membership i));
                    ]
                  "ha.detect";
              t.on_failure i
            end)
  done

let start t =
  Array.iteri
    (fun i _ ->
      Engine.spawn t.eng ~daemon:true
        ~name:(Printf.sprintf "ha.detect.%d" i)
        (fun () -> monitor t i))
    t.hb

let detections t = t.detections
let period t = t.period
