open Dessim
open Ccpfs
module Lock_server = Seqdlm.Lock_server

type t = {
  cl : Cluster.t;
  eng : Engine.t;
  membership : Membership.t option;
  period : float;
  threshold : int;
  gauges : Obs.Metrics.gauge array;
  mutable moves : int;
  mutable stopped : bool;
}

let moves t = t.moves
let stop t = t.stopped <- true

let create ?membership ?period ?(threshold = 4) cl =
  let eng = Cluster.engine cl in
  let metrics = Engine.metrics eng in
  if not (Obs.Metrics.is_enabled metrics) then
    invalid_arg
      "Ha.Rebalancer.create: the metrics registry is disabled, so the \
       queue-depth gauges it steers by would read 0 forever";
  if threshold < 1 then invalid_arg "Ha.Rebalancer.create: threshold < 1";
  let period =
    Option.value period ~default:(50. *. (Cluster.params cl).Netsim.Params.rtt)
  in
  let gauges =
    (* The live queue-depth gauge each lock server maintains
       (Lock_server.queue_track); resolved once by name. *)
    Array.init (Cluster.n_servers cl) (fun i ->
        Obs.Metrics.gauge metrics (Printf.sprintf "dlm.ls%d.queue" i))
  in
  {
    cl; eng; membership; period; threshold; gauges; moves = 0;
    stopped = false;
  }

let up t i =
  match t.membership with
  | None -> true
  | Some m -> Membership.state m i = Membership.Up

(* One balancing decision.  Deterministic throughout: depths come from
   the gauges, every arg-extremum scan breaks ties towards the smallest
   server index, and the hottest-resource pick inside the lock server
   breaks ties towards the smallest rid. *)
let tick t =
  let n = Cluster.n_servers t.cl in
  let depth i = int_of_float (Obs.Metrics.gauge_value t.gauges.(i)) in
  let src = ref (-1) and dst = ref (-1) in
  for i = 0 to n - 1 do
    if up t i then begin
      if !src < 0 || depth i > depth !src then src := i;
      if !dst < 0 || depth i < depth !dst then dst := i
    end
  done;
  if
    !src >= 0 && !dst >= 0 && !src <> !dst
    && depth !src - depth !dst >= t.threshold
  then begin
    match Lock_server.hottest_resource (Cluster.lock_server t.cl !src) with
    | Some (rid, _) when Cluster.server_of_rid t.cl rid = !src -> (
        match Cluster.migrate_resource t.cl ~rid ~dst:!dst with
        | Some _ -> t.moves <- t.moves + 1
        | None -> ())
    | _ -> ()
  end

let start t =
  Engine.spawn t.eng ~daemon:true ~name:"ha.rebalance" (fun () ->
      while not t.stopped do
        Engine.sleep t.eng t.period;
        if not t.stopped then tick t
      done)
