open Ccpfs_util
open Dessim
open Netsim
open Ccpfs
module Lock_server = Seqdlm.Lock_server
module Lock_client = Seqdlm.Lock_client

type record = {
  f_server : int;
  f_epoch : int;
  f_crash : float;
  f_detect : float;
  f_recover : float;
  f_reinstalled : int;
  f_dropped_waiters : int;
  f_replayed_bytes : int;
}

type t = {
  cl : Cluster.t;
  eng : Engine.t;
  membership : Membership.t;
  detector : Detector.t;
  hb : (unit, unit) Rpc.endpoint array;
  mon_node : Node.t;
  mutable crash_ts : float array;
  mutable detect_ts : float array;
  mutable dropped : int array;
  mutable records : record list; (* most recent first *)
  failovers : Obs.Metrics.counter;
  reinstalled : Obs.Metrics.counter;
}

let membership t = t.membership
let detector t = t.detector
let records t = List.rev t.records

(* ---------------------------------------------------------------- *)
(* Crash injection                                                   *)
(* ---------------------------------------------------------------- *)

(* Kill server [i] now: cut every service endpoint on its node (in-flight
   fenced requests to the old incarnation are dropped at delivery), lose
   the at-most-once tables, and wipe the lock table including queued
   waiters.  The extent caches are volatile too, but nobody can observe
   them while the I/O endpoint is down — recovery rebuilds them from the
   durable log.  Returns false (no-op) if the server is already down. *)
let crash t i =
  if
    Membership.state t.membership i <> Membership.Up
    || Rpc.is_down (Lock_server.lock_endpoint (Cluster.lock_server t.cl i))
  then false
  else begin
    let ls = Cluster.lock_server t.cl i in
    let ds = Cluster.data_server t.cl i in
    t.crash_ts.(i) <- Engine.now t.eng;
    let cut ep =
      Rpc.set_down ep true;
      Rpc.reset ep
    in
    Rpc.set_down (Lock_server.lock_endpoint ls) true;
    Rpc.reset (Lock_server.lock_endpoint ls);
    cut (Lock_server.ctl_endpoint ls);
    cut (Data_server.endpoint ds);
    cut t.hb.(i);
    t.dropped.(i) <- Lock_server.crash_online ls;
    true
  end

(* ---------------------------------------------------------------- *)
(* Recovery coordinator (§IV-C2, online)                             *)
(* ---------------------------------------------------------------- *)

(* Runs inside its own (regular) simulated process, spawned by the
   failure declaration.  Order matters:
   1. fence — bump the epoch while every endpoint is still down;
   2. replay the extent logs (the SN-floor source that survives even if
      no client caches a lock);
   3. gather cached locks from every client *by RPC*: each gather reply
      also bumps that client's epoch view, so a pre-crash grant still in
      flight towards it can never be installed afterwards;
   4. restore SN floors, re-validate, and only then reopen the endpoints
      under the new epoch. *)
let recover t i =
  let sink = Engine.trace_sink t.eng in
  let ls = Cluster.lock_server t.cl i in
  let ds = Cluster.data_server t.cl i in
  Membership.set_state t.membership i Membership.Recovering;
  let epoch = Membership.bump_epoch t.membership i in
  let span_args =
    [
      ("server", Obs.Json.Str (Membership.name t.membership i));
      ("epoch", Obs.Json.Int epoch);
    ]
  in
  if Obs.Trace.enabled sink then
    Obs.Trace.begin_span sink ~ts:(Engine.now t.eng)
      ~tid:(Engine.current_pid t.eng) ~cat:"ha" ~args:span_args "ha.recover";
  Data_server.crash_and_rebuild ds;
  (* Charge the device for re-reading the logs it just replayed. *)
  let replayed =
    List.fold_left
      (fun acc rid ->
        List.fold_left
          (fun acc (iv, _) -> acc + Interval.length iv)
          acc
          (Data_server.extent_cache_of ds rid))
      0 (Data_server.stripe_rids ds)
  in
  if replayed > 0 then
    Resource.consume (Node.disk (Data_server.node ds)) (float_of_int replayed);
  let srv_name = Node.name (Cluster.server_node t.cl i) in
  let ep_names =
    [
      Rpc.name (Lock_server.lock_endpoint ls);
      Rpc.name (Lock_server.ctl_endpoint ls);
      Rpc.name (Data_server.endpoint ds);
    ]
  in
  (* Clients filter their gathered grants through current lock
     ownership: treat the gather query as carrying the shard map. *)
  Cluster.refresh_client_maps t.cl;
  let query =
    {
      Lock_client.rq_server = srv_name;
      rq_epoch = epoch;
      rq_endpoints = ep_names;
    }
  in
  (* The shared §IV-C2 core (Cluster.recover_lock_server) reinstalls the
     gathered grants and restores the SN floors — identical to the
     offline path, so the two recoveries cannot drift.  Gathering by RPC
     additionally bumps each client's epoch view (the handler fences the
     crashed endpoints), which the offline path does not need. *)
  let reinstalled =
    Cluster.recover_lock_server t.cl i ~gather:(fun c ->
        Rpc.call
          (Lock_client.recovery_endpoint (Client.lock_client c))
          ~src:(Cluster.server_node t.cl i) query)
  in
  (* Reopen under the new epoch: requests stamped with the old one are
     now answered Stale instead of being silently processed. *)
  Rpc.set_epoch (Lock_server.lock_endpoint ls) epoch;
  Rpc.set_epoch (Lock_server.ctl_endpoint ls) epoch;
  Rpc.set_epoch (Data_server.endpoint ds) epoch;
  Rpc.set_down (Lock_server.lock_endpoint ls) false;
  Rpc.set_down (Lock_server.ctl_endpoint ls) false;
  Rpc.set_down (Data_server.endpoint ds) false;
  Rpc.set_down t.hb.(i) false;
  Membership.renew_lease t.membership i;
  Membership.set_state t.membership i Membership.Up;
  Obs.Metrics.incr t.failovers;
  Obs.Metrics.add t.reinstalled reinstalled;
  t.records <-
    {
      f_server = i;
      f_epoch = epoch;
      f_crash = t.crash_ts.(i);
      f_detect = t.detect_ts.(i);
      f_recover = Engine.now t.eng;
      f_reinstalled = reinstalled;
      f_dropped_waiters = t.dropped.(i);
      f_replayed_bytes = replayed;
    }
    :: t.records;
  if Obs.Trace.enabled sink then
    Obs.Trace.end_span sink ~ts:(Engine.now t.eng)
      ~tid:(Engine.current_pid t.eng) "ha.recover"

let declare_failure t i =
  t.detect_ts.(i) <- Engine.now t.eng;
  (* STONITH: if the server is in fact still alive (a detector false
     positive under load), fence it for real before recovering —
     recovery must never run against a live lock table.  [crash] is a
     no-op when the server already died. *)
  ignore (crash t i);
  Membership.set_state t.membership i Membership.Down;
  Engine.spawn t.eng
    ~name:(Printf.sprintf "ha.recover.%d" i)
    (fun () -> recover t i)

(* ---------------------------------------------------------------- *)
(* Wiring                                                            *)
(* ---------------------------------------------------------------- *)

let install ?period ?hb_timeout ?(misses_allowed = 2) ?lease cl =
  (match Cluster.reliability cl with
  | None ->
      invalid_arg
        "Ha.Failover.install: cluster must be created with ~reliability \
         (clients could not survive an outage otherwise)"
  | Some _ -> ());
  let eng = Cluster.engine cl in
  let params = Cluster.params cl in
  let rtt = params.Params.rtt in
  let period = Option.value period ~default:(10. *. rtt) in
  let hb_timeout = Option.value hb_timeout ~default:(20. *. rtt) in
  let lease = Option.value lease ~default:(50. *. rtt) in
  let n = Cluster.n_servers cl in
  let names =
    Array.init n (fun i -> Node.name (Cluster.server_node cl i))
  in
  let membership = Membership.create eng ~lease ~names in
  let mon_node = Node.create eng params ~name:"ha.mon" () in
  let hb =
    Array.init n (fun i ->
        Rpc.endpoint eng params
          ~node:(Cluster.server_node cl i)
          ~name:(Printf.sprintf "ls%d.hb" i)
          ~handler:(fun () ~reply -> reply ()))
  in
  let metrics = Engine.metrics eng in
  let rec t =
    lazy
      {
        cl; eng; membership; hb; mon_node;
        detector =
          Detector.create eng ~node:mon_node ~membership ~hb ~period
            ~hb_timeout ~misses_allowed
            ~on_failure:(fun i -> declare_failure (Lazy.force t) i);
        crash_ts = Array.make n 0.;
        detect_ts = Array.make n 0.;
        dropped = Array.make n 0;
        records = [];
        failovers = Obs.Metrics.counter metrics "ha.failovers";
        reinstalled = Obs.Metrics.counter metrics "ha.reinstalled_locks";
      }
  in
  let t = Lazy.force t in
  Detector.start t.detector;
  t

(* Keep the engine alive until every server is back Up: spawned as a
   regular process so a quiescent [Engine.run] cannot return mid-outage.
   No-op when nothing is down. *)
let spawn_await_all_up t =
  if not (Membership.all_up t.membership) then
    Engine.spawn t.eng ~name:"ha.await" (fun () ->
        while not (Membership.all_up t.membership) do
          Engine.sleep t.eng (Detector.period t.detector)
        done)

let await_all_up t =
  spawn_await_all_up t;
  Engine.run t.eng
