(** Queue-depth-driven lock-namespace rebalancing (DESIGN.md §15).

    A daemon samples every lock server's [dlm.ls<i>.queue] gauge each
    period.  When the deepest queue among Up servers exceeds the
    shallowest by at least [threshold], the most-loaded server's hottest
    resource (deepest per-resource waiting queue) is migrated to the
    least-loaded server via {!Ccpfs.Cluster.migrate_resource} — one
    epoch-fenced move per tick, so the map settles between decisions.
    All tie-breaks are by smallest index/rid, keeping runs
    deterministic. *)

type t

val create :
  ?membership:Membership.t -> ?period:float -> ?threshold:int ->
  Ccpfs.Cluster.t -> t
(** [membership] restricts both ends of a move to servers in state [Up]
    (without it every server is eligible).  [period] defaults to
    50 RTTs; [threshold] (>= 1) to 4 queued waiters.
    @raise Invalid_argument if the engine's metrics registry is
    disabled — the gauges would read 0 forever and the daemon would
    never act.  Enable it first ({!Obs.Metrics.enable}); the experiment
    harness already does. *)

val start : t -> unit
(** Spawn the daemon (an engine daemon: it never blocks {!Ccpfs.Cluster.run}
    from returning). *)

val stop : t -> unit
(** Stop balancing after the current tick. *)

val moves : t -> int
(** Completed migrations initiated by this daemon. *)
