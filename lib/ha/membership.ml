open Dessim

type state = Up | Down | Recovering

type entry = {
  e_name : string;
  mutable e_state : state;
  mutable e_epoch : int;
  mutable e_lease_until : float;
}

type t = { eng : Engine.t; lease : float; entries : entry array }

let create eng ~lease ~names =
  if lease <= 0. then invalid_arg "Membership.create: lease must be positive";
  {
    eng;
    lease;
    entries =
      Array.map
        (fun name ->
          { e_name = name; e_state = Up; e_epoch = 0; e_lease_until = lease })
        names;
  }

let n t = Array.length t.entries
let name t i = t.entries.(i).e_name
let state t i = t.entries.(i).e_state
let epoch t i = t.entries.(i).e_epoch
let set_state t i s = t.entries.(i).e_state <- s

let bump_epoch t i =
  let e = t.entries.(i) in
  e.e_epoch <- e.e_epoch + 1;
  e.e_epoch

let renew_lease t i =
  t.entries.(i).e_lease_until <- Engine.now t.eng +. t.lease

let lease_expired t i = Engine.now t.eng > t.entries.(i).e_lease_until
let lease t = t.lease

let all_up t =
  Array.for_all (fun e -> e.e_state = Up) t.entries

let state_to_string = function
  | Up -> "up"
  | Down -> "down"
  | Recovering -> "recovering"
