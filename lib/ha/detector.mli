(** Heartbeat-based failure detection, run as simulated daemons.

    One daemon per monitored server pings its heartbeat endpoint every
    [period] with a [hb_timeout] reply deadline.  A crashed server's
    endpoint drops deliveries, so its beats time out; after
    [misses_allowed] consecutive misses with the membership lease also
    expired, the daemon emits the [ha.detect] trace span and invokes
    [on_failure] — which is expected to fence the server and spawn the
    recovery coordinator ({!Failover}).  Daemons never exit: once
    recovery flips the server back to [Up] they resume monitoring it. *)

type t

val create :
  Dessim.Engine.t -> node:Netsim.Node.t -> membership:Membership.t ->
  hb:(unit, unit) Netsim.Rpc.endpoint array -> period:float ->
  hb_timeout:float -> misses_allowed:int -> on_failure:(int -> unit) -> t

val start : t -> unit
(** Spawn the monitor daemons (idempotent only if called once). *)

val detections : t -> int
(** Failures declared so far. *)

val period : t -> float
