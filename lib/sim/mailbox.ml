type 'a t = {
  eng : Engine.t;
  msgs : 'a Queue.t;
  waiters : ('a option ref * (unit -> unit)) Queue.t;
}

let create eng = { eng; msgs = Queue.create (); waiters = Queue.create () }

let send t msg =
  match Queue.take_opt t.waiters with
  | Some (cell, resume) ->
      cell := Some msg;
      resume ()
  | None -> Queue.add msg t.msgs

let recv ?(ctx = "mailbox") t =
  match Queue.take_opt t.msgs with
  | Some msg -> msg
  | None ->
      let cell = ref None in
      Engine.suspend ~ctx t.eng (fun resume -> Queue.add (cell, resume) t.waiters);
      (match !cell with
      | Some msg -> msg
      | None -> assert false)

let try_recv t = Queue.take_opt t.msgs
let length t = Queue.length t.msgs
