(** Deterministic discrete-event simulation engine.

    Clients, lock servers and data servers of the simulated cluster run as
    cooperative processes (OCaml 5 effect-handler coroutines) over a
    shared virtual clock.  A process runs until it blocks — on a timer
    ({!sleep}), a mailbox, a semaphore or a bandwidth resource — and the
    engine then dispatches the next event in (time, sequence) order, so
    runs are reproducible event-for-event.

    Two kinds of processes exist: regular ones, which the simulation runs
    to completion, and daemons (cache-flush daemons, extent-cache cleanup
    tasks) that may block forever.  {!run} returns once every regular
    process has finished; if the event queue drains while regular
    processes are still blocked, the simulation is deadlocked and
    {!Deadlock} is raised with a report covering every suspended process —
    daemons included — and what each was blocked on. *)

type t

type blocked_proc = {
  b_name : string;
  b_pid : int;
  b_daemon : bool;
  b_context : string option;
      (** What the process was suspended on (the [ctx] its blocking
          primitive passed to {!suspend}), e.g. ["rpc:ls0.lock"]. *)
}

exception Deadlock of blocked_proc list
(** Every process still suspended when the event queue drained, in pid
    order.  Daemons are listed too: a deadlock involving a server daemon
    is diagnosable only if the daemon's wait shows up in the report. *)

val blocked_names : ?daemons:bool -> blocked_proc list -> string list
(** Names of the blocked processes; daemons are excluded unless
    [daemons] is true. *)

val pp_blocked : Format.formatter -> blocked_proc -> unit
(** ["<name> (daemon)? blocked on <context>"]. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
(** Start a process at the current virtual time.  [daemon] defaults to
    [false]. *)

val schedule : t -> ?delay:float -> (unit -> unit) -> unit
(** Run a plain thunk (not a blocking process) at [now + delay]. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Run a plain thunk at the absolute virtual time [time] (>= {!now}).
    This is the open-loop load generator's arrival hook: a whole arrival
    schedule can be installed up front at exact absolute timestamps,
    independent of whatever the running processes are doing — {!sleep}
    chains would instead accumulate each request's handling into the
    next arrival time.  Installed thunks still pass through the event
    jitter hook, so fuzzed runs may legally deliver them late.
    @raise Invalid_argument if [time] is before {!now}. *)

val run : ?until:float -> t -> unit
(** Dispatch events until every regular process has finished, the queue is
    empty, or virtual time would pass [until].  May be called again to
    continue a paused simulation.

    @raise Deadlock if the queue drains with regular processes blocked. *)

(** {1 Inside a process}

    The following must only be called from code running inside a
    process spawned on the same engine. *)

val sleep : t -> float -> unit
(** Block for a virtual duration (>= 0). *)

val suspend : ?ctx:string -> t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] blocks the current process and hands [register] a
    resume function; calling it (once) reschedules the process at the
    virtual time of the call.  This is the primitive the blocking
    synchronisation structures are built from.  [ctx] names what the
    process is waiting for; it is carried into {!Deadlock} reports. *)

val live_processes : t -> int
(** Regular processes spawned and not yet finished. *)

val events_dispatched : t -> int
(** Total events processed so far (simulation-cost metric). *)

(** {1 Sanitizer support}

    The protocol sanitizer ({!Check}) uses two engine-level levers: an
    event-stream fingerprint for determinism double-runs, and a pluggable
    tie-break chooser for exhaustive same-timestamp schedule
    exploration. *)

val fingerprint : t -> int64
(** FNV-1a hash over the dispatched event stream
    [(time, pid, process name)].  Two runs of the same scenario on fresh
    engines must produce equal fingerprints; divergence means hidden
    nondeterminism (iteration over unordered hashtables, physical-equality
    ordering, …). *)

val set_tie_chooser : t -> (int -> int) -> unit
(** [set_tie_chooser t f] makes the dispatcher call [f n] whenever [n >= 2]
    pending events share the minimal timestamp; [f] returns the index (in
    deterministic seq order) of the event to dispatch.  The default —
    without a chooser — is index 0.  This is the schedule explorer's
    lever: every return value in [0, n) is a legal protocol ordering. *)

val clear_tie_chooser : t -> unit

val set_event_jitter : t -> (unit -> float) -> unit
(** [set_event_jitter t f] delays every subsequently scheduled event by
    [f ()] seconds (must be >= 0 and finite).  Because every blocking
    primitive re-checks its condition on wake-up and RPC transports only
    promise "at least" their service times, a non-negative delay is a
    legal delivery perturbation: it reorders message arrivals and daemon
    wake-ups within the protocol's allowed nondeterminism.  With a
    deterministic (seeded) [f], jittered runs stay reproducible
    event-for-event.  Events deferred by the tie chooser are not
    re-jittered. *)

val clear_event_jitter : t -> unit

val seed_nondeterminism : ?max_jitter:float -> seed:int -> t -> unit
(** Install the fuzzer's legal-nondeterminism levers, all drawn from one
    deterministic stream: a seeded random tie chooser (same-timestamp
    arrivals dispatch in random order), and — when [max_jitter > 0] — a
    seeded event jitter uniform in [0, max_jitter).  Two engines seeded
    identically and running the same scenario produce identical event
    streams (equal {!fingerprint}s); different seeds explore different
    schedules. *)

val random_float : t -> float -> float
(** Deterministic uniform draw in [\[0, bound)] (0 when [bound <= 0]) from
    the engine's seeded stream — retry backoff jitter and similar
    protocol-level randomness.  The stream starts from a fixed seed at
    {!create} and is re-derived by {!seed_nondeterminism}, so identically
    seeded runs of the same scenario see identical draws. *)

val blocked_report : t -> blocked_proc list
(** The processes currently suspended, in pid order (what {!Deadlock}
    would carry if the queue drained now).  If a process body raised, the
    dead process has been dropped and does not appear here. *)

(** {1 Observability}

    The engine carries the run's trace sink and metrics registry so every
    layer above (RPC transport, lock servers, clients) can reach them
    through the engine it already holds.  Both default to disabled — the
    cost on untraced runs is one load-and-branch per instrumentation
    site. *)

val trace_sink : t -> Obs.Trace.sink
(** The run's span/event sink; {!Obs.Trace.null} unless one was set. *)

val set_trace_sink : t -> Obs.Trace.sink -> unit

val metrics : t -> Obs.Metrics.t
(** The run's metrics registry (created disabled with the engine). *)

val current_pid : t -> int
(** Pid of the process whose event is being dispatched; 0 outside any
    process.  Used as the trace [tid]. *)

val current_name : t -> string option
