(** Counting semaphores with FIFO wakeup, used to bound concurrency
    (e.g. forwarding-daemon thread pools) and to model mutual exclusion
    inside simulated servers. *)

type t

val create : Engine.t -> int -> t
(** Initial number of permits (>= 0). *)

val acquire : ?ctx:string -> t -> unit
(** Take a permit, blocking FIFO if none are available.  [ctx] names the
    contended resource in {!Engine.Deadlock} reports. *)

val release : t -> unit

val with_permit : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val available : t -> int
val waiting : t -> int
