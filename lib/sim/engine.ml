type blocked_proc = {
  b_name : string;
  b_pid : int;
  b_daemon : bool;
  b_context : string option;
}

exception Deadlock of blocked_proc list

let blocked_names ?(daemons = false) bs =
  List.filter_map
    (fun b -> if b.b_daemon && not daemons then None else Some b.b_name)
    bs

let pp_blocked ppf (b : blocked_proc) =
  Format.fprintf ppf "%s%s blocked on %s" b.b_name
    (if b.b_daemon then " (daemon)" else "")
    (Option.value b.b_context ~default:"<unknown>")

type proc = {
  pid : int;
  name : string;
  name_fp : int; (* FNV digest of [name], folded into the event fingerprint *)
  daemon : bool;
  mutable blocked : bool;
  mutable wait_ctx : string option;
  mutable done_ : bool;
}

type event = { time : float; seq : int; proc : proc option; thunk : unit -> unit }

(* Binary min-heap on (time, seq); seq breaks ties deterministically in
   scheduling order. *)
module Heap = struct
  type t = { mutable a : event option array; mutable n : int }

  let create () = { a = Array.make 1024 None; n = 0 }

  let before x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let get h i = match h.a.(i) with Some e -> e | None -> assert false

  let push h e =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) None in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let i = ref h.n in
    h.a.(h.n) <- Some e;
    h.n <- h.n + 1;
    while
      !i > 0 &&
      let p = (!i - 1) / 2 in
      before (get h !i) (get h p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(!i) in
      h.a.(!i) <- h.a.(p);
      h.a.(p) <- tmp;
      i := p
    done

  let peek h = if h.n = 0 then None else h.a.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = get h 0 in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && before (get h l) (get h !smallest) then smallest := l;
        if r < h.n && before (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!i) in
          h.a.(!i) <- h.a.(!smallest);
          h.a.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type t = {
  mutable now : float;
  mutable seq : int;
  heap : Heap.t;
  mutable current : proc option;
  mutable live : int; (* regular (non-daemon) processes not yet done *)
  mutable regular_spawned : int;
  mutable next_pid : int;
  mutable dispatched : int;
  blocked_procs : (int, proc) Hashtbl.t;
      (* all procs currently suspended, by pid: suspend/resume are per-RPC
         operations, so membership updates must be O(1) — a list scan per
         resume was quadratic in blocked clients under contention *)
  mutable fp : int;
  mutable tie_chooser : (int -> int) option;
  mutable jitter : (unit -> float) option;
  mutable sink : Obs.Trace.sink; (* Trace.null unless a run is traced *)
  metrics : Obs.Metrics.t; (* per-engine registry, starts disabled *)
  mutable rand : Ccpfs_util.Det_random.t;
      (* engine-held deterministic stream: retry backoff jitter and any
         other protocol-level randomness draw from here so two runs of the
         same scenario see the same values in the same order *)
}

(* FNV-1a folded in the native int width: the event-stream fingerprint
   two runs of the same scenario must agree on (the determinism
   sanitizer's divergence test).  Fingerprints are only ever compared
   against fingerprints computed in the same process, never persisted,
   so the exact modulus does not matter — what matters is that hashing
   is allocation-free.  The engine hashes every dispatched event; the
   previous boxed-Int64 FNV allocated ~30 Int64s per event and dominated
   contended-run profiles. *)
let fnv_offset = Int64.to_int 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3
let fnv_byte h b = (h lxor (b land 0xff)) * fnv_prime

let fnv_int h x =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (x asr (8 * i))
  done;
  !h

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let create () =
  { now = 0.; seq = 0; heap = Heap.create (); current = None; live = 0;
    regular_spawned = 0; next_pid = 0; dispatched = 0; blocked_procs = Hashtbl.create 64;
    fp = fnv_offset; tie_chooser = None; jitter = None; sink = Obs.Trace.null;
    metrics = Obs.Metrics.create ();
    rand = Ccpfs_util.Det_random.create ~seed:0x9e3779b9 }

let now t = t.now
let live_processes t = t.live
let events_dispatched t = t.dispatched
let fingerprint t = Int64.of_int t.fp
let set_tie_chooser t f = t.tie_chooser <- Some f
let clear_tie_chooser t = t.tie_chooser <- None
let set_event_jitter t f = t.jitter <- Some f
let clear_event_jitter t = t.jitter <- None

let seed_nondeterminism ?(max_jitter = 0.) ~seed t =
  let rng = Ccpfs_util.Det_random.create ~seed in
  let tie_rng = Ccpfs_util.Det_random.split rng in
  set_tie_chooser t (fun n -> Ccpfs_util.Det_random.int tie_rng n);
  if max_jitter > 0. then begin
    let jitter_rng = Ccpfs_util.Det_random.split rng in
    set_event_jitter t (fun () ->
        Ccpfs_util.Det_random.float jitter_rng max_jitter)
  end;
  t.rand <- Ccpfs_util.Det_random.split rng

let random_float t bound =
  if bound <= 0. then 0. else Ccpfs_util.Det_random.float t.rand bound
let trace_sink t = t.sink
let set_trace_sink t sink = t.sink <- sink
let metrics t = t.metrics
let current_pid t = match t.current with Some p -> p.pid | None -> 0
let current_name t = Option.map (fun p -> p.name) t.current

(* Every freshly scheduled event passes through the jitter hook (legal-
   delivery perturbation: any event may run later than asked, never
   earlier).  The tie chooser's re-push path in [pop_next] uses
   [Heap.push] directly, so deferred ties are not jittered twice. *)
let push_event t ~time ~proc thunk =
  t.seq <- t.seq + 1;
  let time =
    match t.jitter with
    | None -> time
    | Some f ->
        let d = f () in
        if d < 0. || not (Float.is_finite d) then
          invalid_arg "Engine: jitter hook returned a negative or NaN delay";
        time +. d
  in
  Heap.push t.heap { time; seq = t.seq; proc; thunk }

let schedule t ?(delay = 0.) thunk =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  push_event t ~time:(t.now +. delay) ~proc:None thunk

let at t ~time thunk =
  if time < t.now || not (Float.is_finite time) then
    invalid_arg "Engine.at: time in the past or not finite";
  push_event t ~time ~proc:None thunk

type _ Effect.t +=
  | Suspend : string option * ((unit -> unit) -> unit) -> unit Effect.t
  | SleepFor : float -> unit Effect.t
        (* timed suspension with a dedicated wake: the continuation IS the
           scheduled event.  [Suspend] needs two events per wake (the waker
           runs in some other process's frame and must defer the
           continuation); a sleep's wake belongs to no one else, so the
           deferral would be pure overhead — and sleeps dominate the event
           stream (three per RPC courier). *)

let mark_blocked t proc ctx =
  proc.blocked <- true;
  proc.wait_ctx <- ctx;
  Hashtbl.replace t.blocked_procs proc.pid proc

let mark_unblocked t proc =
  proc.blocked <- false;
  proc.wait_ctx <- None;
  Hashtbl.remove t.blocked_procs proc.pid

let spawn t ?(daemon = false) ~name body =
  t.next_pid <- t.next_pid + 1;
  let proc =
    { pid = t.next_pid; name; name_fp = fnv_string fnv_offset name; daemon;
      blocked = false; wait_ctx = None; done_ = false }
  in
  if not daemon then begin
    t.live <- t.live + 1;
    t.regular_spawned <- t.regular_spawned + 1
  end;
  if Obs.Trace.enabled t.sink then
    Obs.Trace.thread_name t.sink ~tid:proc.pid name;
  let finish () =
    proc.done_ <- true;
    if not daemon then t.live <- t.live - 1
  in
  let open Effect.Deep in
  let exec () =
    match_with body ()
      {
        retc = (fun () -> finish ());
        exnc =
          (fun e ->
            (* The process dies abnormally and the exception is about to
               unwind through [run] to the caller: leave the engine in a
               consistent state so post-mortems ([blocked_report]) and a
               resumed [run] don't see the dead process as current or
               waiting. *)
            finish ();
            t.current <- None;
            Hashtbl.remove t.blocked_procs proc.pid;
            raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend (ctx, register) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let resumed = ref false in
                    mark_blocked t proc ctx;
                    match
                      register (fun () ->
                          if not !resumed then begin
                            resumed := true;
                            mark_unblocked t proc;
                            push_event t ~time:t.now ~proc:(Some proc)
                              (fun () -> continue k ())
                          end)
                    with
                    | () -> ()
                    | exception e ->
                        (* A blocking primitive failed while registering
                           (bad argument, broken invariant): deliver the
                           exception into the fiber at the suspension
                           point so it unwinds the process body and the
                           [exnc] cleanup above runs. *)
                        mark_unblocked t proc;
                        discontinue k e)
            | SleepFor d ->
                Some
                  (fun (k : (a, _) continuation) ->
                    mark_blocked t proc (Some "sleep");
                    push_event t ~time:(t.now +. d) ~proc:(Some proc)
                      (fun () ->
                        mark_unblocked t proc;
                        continue k ()))
            | _ -> None);
      }
  in
  push_event t ~time:t.now ~proc:(Some proc) exec

let suspend ?ctx _t register = Effect.perform (Suspend (ctx, register))

let sleep (_ : t) d =
  if d < 0. then invalid_arg "Engine.sleep: negative duration";
  if d = 0. then () else Effect.perform (SleepFor d)

let blocked_report t =
  (* keys are pids, so sorted-key traversal is already b_pid order *)
  Ccpfs_util.Det_tbl.fold_sorted ~cmp:Int.compare
    (fun _ p acc ->
      { b_name = p.name; b_pid = p.pid; b_daemon = p.daemon;
        b_context = p.wait_ctx }
      :: acc)
    t.blocked_procs []
  |> List.rev

(* Pop the event to dispatch next.  With a tie chooser installed, all
   events sharing the minimal timestamp are candidates and the chooser
   picks among them (in seq order) — the schedule explorer's lever for
   enumerating same-timestamp interleavings.  Without one, plain
   (time, seq) order. *)
let pop_next t =
  match t.tie_chooser with
  | None -> Heap.pop t.heap
  | Some choose -> (
      match Heap.pop t.heap with
      | None -> None
      | Some first ->
          let ties = ref [ first ] in
          let continue = ref true in
          while !continue do
            match Heap.peek t.heap with
            | Some ev when ev.time = first.time ->
                ignore (Heap.pop t.heap);
                ties := ev :: !ties
            | Some _ | None -> continue := false
          done;
          let ties = List.rev !ties in
          let n = List.length ties in
          let pick = if n = 1 then 0 else choose n in
          if pick < 0 || pick >= n then
            invalid_arg "Engine: tie chooser returned an out-of-range index";
          let chosen = List.nth ties pick in
          List.iteri
            (fun i ev -> if i <> pick then Heap.push t.heap ev)
            ties;
          Some chosen)

let run ?until t =
  let stop_time = Option.value until ~default:infinity in
  let rec loop () =
    if t.regular_spawned > 0 && t.live = 0 then ()
    else
      match Heap.peek t.heap with
      | None -> if t.live > 0 then raise (Deadlock (blocked_report t))
      | Some ev when ev.time > stop_time -> t.now <- stop_time
      | Some _ ->
          (match pop_next t with
          | None -> assert false
          | Some ev ->
              t.now <- ev.time;
              t.current <- ev.proc;
              t.dispatched <- t.dispatched + 1;
              let fp =
                fnv_int t.fp (Int64.to_int (Int64.bits_of_float ev.time))
              in
              let fp =
                match ev.proc with
                | Some p -> fnv_int (fnv_int fp p.pid) p.name_fp
                | None -> fnv_byte fp 0
              in
              t.fp <- fp;
              ev.thunk ();
              t.current <- None);
          loop ()
  in
  loop ()
