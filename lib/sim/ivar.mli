(** Write-once cells: the reply slot of an in-flight RPC.  Any number of
    processes may block in [read]; they all resume when [fill] runs. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already filled. *)

val read : ?ctx:string -> 'a t -> 'a
(** Returns immediately if filled, otherwise blocks the current process.
    [ctx] names the awaited reply in {!Engine.Deadlock} reports. *)

val read_timeout : ?ctx:string -> 'a t -> timeout:float -> 'a option
(** Like {!read} but gives up after [timeout] seconds of virtual time:
    [None] means the cell was still empty at the deadline.  The caller may
    abandon the ivar afterwards — a late {!fill} simply finds no live
    waiter.  @raise Invalid_argument on a negative timeout. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option
