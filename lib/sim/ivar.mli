(** Write-once cells: the reply slot of an in-flight RPC.  Any number of
    processes may block in [read]; they all resume when [fill] runs. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already filled. *)

val read : ?ctx:string -> 'a t -> 'a
(** Returns immediately if filled, otherwise blocks the current process.
    [ctx] names the awaited reply in {!Engine.Deadlock} reports. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option
