type t = {
  eng : Engine.t;
  mutable permits : int;
  waiters : (unit -> unit) Queue.t;
}

let create eng n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  { eng; permits = n; waiters = Queue.create () }

let acquire ?(ctx = "semaphore") t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else Engine.suspend ~ctx t.eng (fun resume -> Queue.add resume t.waiters)

let release t =
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None -> t.permits <- t.permits + 1

let with_permit t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let available t = t.permits
let waiting t = Queue.length t.waiters
