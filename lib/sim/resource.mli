(** FIFO-served rate resources: the bandwidth pipes and operation-rate
    limiters of the simulated cluster.

    A resource serves work at [rate] units per second, one request at a
    time in arrival order.  [consume r amount] blocks the calling process
    until its [amount / rate] seconds of service complete, queued behind
    all earlier requests — exactly the store-and-forward occupancy model
    behind the paper's Eq. (2): a network pipe is a resource with
    [rate = B_net] consumed in bytes, a disk is one with [rate = B_disk],
    and a lock server's RPC processor is one with [rate = OPS] consumed in
    operations. *)

type t

val create : Engine.t -> ?metric:string -> rate:float -> unit -> t
(** [rate] in units/second; [infinity] makes {!consume} free.  [metric]
    registers occupancy histograms ([resource.wait.<metric>], the FIFO
    queueing delay before service starts, and [resource.busy.<metric>],
    the service time itself) on the engine's metrics registry; kinds are
    shared across instances, so every node's data pipe aggregates into
    one instrument. *)

val consume : t -> float -> unit
(** Block for the FIFO-queued service time of [amount] units. *)

val busy_seconds : t -> float
(** Total service time performed so far (utilisation accounting). *)

val backlog_until : t -> float
(** Virtual time at which currently-queued work completes. *)

val rate : t -> float
