type t = { eng : Engine.t; waiters : (unit -> unit) Queue.t }

let create eng = { eng; waiters = Queue.create () }

let wait ?(ctx = "condition") t =
  Engine.suspend ~ctx t.eng (fun resume -> Queue.add resume t.waiters)

let rec wait_until ?ctx t pred =
  if pred () then ()
  else begin
    wait ?ctx t;
    wait_until ?ctx t pred
  end

let signal t =
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None -> ()

let broadcast t =
  let ws = Queue.to_seq t.waiters |> List.of_seq in
  Queue.clear t.waiters;
  List.iter (fun resume -> resume ()) ws

let waiting t = Queue.length t.waiters
