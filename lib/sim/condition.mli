(** Condition variables for processes waiting on a predicate over shared
    simulated state (e.g. "dirty bytes below the forced-flush
    threshold").  There is no separate mutex: processes are cooperative,
    so state cannot change between the predicate check and the wait. *)

type t

val create : Engine.t -> t

val wait : ?ctx:string -> t -> unit
(** Block until the next {!signal} or {!broadcast}.  [ctx] names the
    awaited state in {!Engine.Deadlock} reports. *)

val wait_until : ?ctx:string -> t -> (unit -> bool) -> unit
(** Re-check the predicate after each wakeup; returns once it holds.
    Returns immediately if it already holds. *)

val signal : t -> unit
(** Wake one waiter (FIFO), if any. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val waiting : t -> int
