type 'a t = {
  eng : Engine.t;
  mutable value : 'a option;
  mutable waiters : (unit -> unit) list;
}

let create eng = { eng; value = None; waiters = [] }

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun resume -> resume ()) ws

let read ?(ctx = "ivar") t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend ~ctx t.eng (fun resume -> t.waiters <- resume :: t.waiters);
      (match t.value with Some v -> v | None -> assert false)

let is_filled t = Option.is_some t.value
let peek t = t.value
