type 'a t = {
  eng : Engine.t;
  mutable value : 'a option;
  mutable waiters : (unit -> unit) list;
}

let create eng = { eng; value = None; waiters = [] }

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun resume -> resume ()) ws

let read ?(ctx = "ivar") t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend ~ctx t.eng (fun resume -> t.waiters <- resume :: t.waiters);
      (match t.value with Some v -> v | None -> assert false)

let read_timeout ?(ctx = "ivar") t ~timeout =
  (match t.value with
  | Some _ -> ()
  | None ->
      if timeout < 0. then invalid_arg "Ivar.read_timeout: negative timeout";
      (* Race the fill against a timer: resume is idempotent (the engine
         guards re-entry), so whichever fires first wins and the loser is
         a no-op.  If the ivar is abandoned and filled later, the stale
         waiter entry resumes nothing. *)
      Engine.suspend ~ctx t.eng (fun resume ->
          t.waiters <- resume :: t.waiters;
          Engine.schedule t.eng ~delay:timeout resume));
  t.value

let is_filled t = Option.is_some t.value
let peek t = t.value
