(** Unbounded FIFO message queues between simulated processes.  [recv]
    blocks the calling process until a message is available; messages are
    delivered in send order. *)

type 'a t

val create : Engine.t -> 'a t
val send : 'a t -> 'a -> unit
(** Never blocks. *)

val recv : ?ctx:string -> 'a t -> 'a
(** Blocks the current process until a message arrives.  [ctx] names the
    awaited message in {!Engine.Deadlock} reports. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
(** Messages queued and not yet claimed by a receiver. *)
