type t = {
  eng : Engine.t;
  rate : float;
  mutable available_at : float;
  mutable busy : float;
  wait_hist : Obs.Metrics.histogram option;
  busy_hist : Obs.Metrics.histogram option;
}

let create eng ?metric ~rate () =
  if rate <= 0. then invalid_arg "Resource.create: rate must be positive";
  let wait_hist, busy_hist =
    match metric with
    | None -> (None, None)
    | Some name ->
        let m = Engine.metrics eng in
        ( Some (Obs.Metrics.histogram m ("resource.wait." ^ name)),
          Some (Obs.Metrics.histogram m ("resource.busy." ^ name)) )
  in
  { eng; rate; available_at = 0.; busy = 0.; wait_hist; busy_hist }

let consume t amount =
  if amount < 0. then invalid_arg "Resource.consume: negative amount";
  if t.rate = infinity || amount = 0. then ()
  else begin
    let service = amount /. t.rate in
    let now = Engine.now t.eng in
    let start = Float.max now t.available_at in
    t.available_at <- start +. service;
    t.busy <- t.busy +. service;
    (match t.wait_hist with
    | Some h -> Obs.Metrics.observe h (start -. now)
    | None -> ());
    (match t.busy_hist with
    | Some h -> Obs.Metrics.observe h service
    | None -> ());
    Engine.sleep t.eng (t.available_at -. now)
  end

let busy_seconds t = t.busy
let backlog_until t = t.available_at
let rate t = t.rate
