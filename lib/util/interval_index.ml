(* An augmented AVL tree over intervals: entries are keyed by
   (lo, id) — the id disambiguates duplicate starts — and every node
   caches the maximum [hi] of its subtree, so a query for the entries
   overlapping [lo, hi) prunes whole subtrees whose extents end at or
   before [lo].  Unlike {!Extent_map}, entries may overlap freely: this
   indexes the lock server's granted set, where shared locks pile up on
   the same extents. *)

type 'a tree =
  | Leaf
  | Node of {
      l : 'a tree;
      lo : int;
      hi : int;
      id : int;
      v : 'a;
      r : 'a tree;
      h : int; (* AVL height *)
      mh : int; (* max hi over the subtree *)
    }

type 'a t = { tree : 'a tree; n : int }

let empty = { tree = Leaf; n = 0 }
let cardinal t = t.n
let is_empty t = t.n = 0

let height = function Leaf -> 0 | Node { h; _ } -> h
let max_hi = function Leaf -> min_int | Node { mh; _ } -> mh

let mk l lo hi id v r =
  Node
    {
      l; lo; hi; id; v; r;
      h = 1 + max (height l) (height r);
      mh = max hi (max (max_hi l) (max_hi r));
    }

(* Stdlib-Map-style rebalancing: fix a height difference of at most 2. *)
let bal l lo hi id v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Leaf -> assert false
    | Node { l = ll; lo = llo; hi = lhi; id = lid; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll llo lhi lid lv (mk lr lo hi id v r)
        else (
          match lr with
          | Leaf -> assert false
          | Node
              { l = lrl; lo = lrlo; hi = lrhi; id = lrid; v = lrv; r = lrr; _ }
            ->
              mk
                (mk ll llo lhi lid lv lrl)
                lrlo lrhi lrid lrv
                (mk lrr lo hi id v r))
  else if hr > hl + 2 then
    match r with
    | Leaf -> assert false
    | Node { l = rl; lo = rlo; hi = rhi; id = rid; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l lo hi id v rl) rlo rhi rid rv rr
        else (
          match rl with
          | Leaf -> assert false
          | Node
              { l = rll; lo = rllo; hi = rlhi; id = rlid; v = rlv; r = rlr; _ }
            ->
              mk
                (mk l lo hi id v rll)
                rllo rlhi rlid rlv
                (mk rlr rlo rhi rid rv rr))
  else mk l lo hi id v r

let key_cmp lo id lo' id' =
  match Int.compare lo lo' with 0 -> Int.compare id id' | c -> c

let rec insert tree (iv : Interval.t) id v =
  match tree with
  | Leaf -> mk Leaf iv.lo iv.hi id v Leaf
  | Node n ->
      let c = key_cmp iv.lo id n.lo n.id in
      if c = 0 then
        invalid_arg
          (Printf.sprintf "Interval_index.add: duplicate entry (lo=%d, id=%d)"
             iv.lo id)
      else if c < 0 then bal (insert n.l iv id v) n.lo n.hi n.id n.v n.r
      else bal n.l n.lo n.hi n.id n.v (insert n.r iv id v)

let rec min_binding = function
  | Leaf -> invalid_arg "Interval_index.min_binding: empty"
  | Node { l = Leaf; lo; hi; id; v; _ } -> (lo, hi, id, v)
  | Node { l; _ } -> min_binding l

let rec delete tree lo id =
  match tree with
  | Leaf -> raise Not_found
  | Node n ->
      let c = key_cmp lo id n.lo n.id in
      if c < 0 then bal (delete n.l lo id) n.lo n.hi n.id n.v n.r
      else if c > 0 then bal n.l n.lo n.hi n.id n.v (delete n.r lo id)
      else (
        match (n.l, n.r) with
        | Leaf, r -> r
        | l, Leaf -> l
        | l, r ->
            let slo, shi, sid, sv = min_binding r in
            bal l slo shi sid sv (delete r slo sid))

let add t (iv : Interval.t) ~id v = { tree = insert t.tree iv id v; n = t.n + 1 }

let remove t (iv : Interval.t) ~id =
  match delete t.tree iv.lo id with
  | tree -> { tree; n = t.n - 1 }
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Interval_index.remove: no entry (lo=%d, id=%d)" iv.lo
           id)

(* Entries overlapping [q]: the subtree is pruned when every extent in it
   ends at or before [q.lo]; the right child is pruned when the node's
   start (a lower bound on every start to its right) is past [q.hi). *)
let rec iter_over tree (q : Interval.t) f =
  match tree with
  | Leaf -> ()
  | Node n ->
      if n.mh > q.lo then begin
        iter_over n.l q f;
        if n.lo < q.hi then begin
          if n.hi > q.lo then f (Interval.v ~lo:n.lo ~hi:n.hi) n.id n.v;
          iter_over n.r q f
        end
      end

let iter_overlapping t q f = iter_over t.tree q f

let fold_overlapping t q ~init ~f =
  let acc = ref init in
  iter_over t.tree q (fun iv id v -> acc := f !acc iv id v);
  !acc

exception Found

let exists_overlapping t q p =
  match iter_over t.tree q (fun iv id v -> if p iv id v then raise Found) with
  | () -> false
  | exception Found -> true

let rec iter_all tree f =
  match tree with
  | Leaf -> ()
  | Node n ->
      iter_all n.l f;
      f (Interval.v ~lo:n.lo ~hi:n.hi) n.id n.v;
      iter_all n.r f

let iter f t = iter_all t.tree (fun iv id v -> f iv id v)

let to_list t =
  let acc = ref [] in
  iter_all t.tree (fun iv id v -> acc := (iv, id, v) :: !acc);
  List.rev !acc

let check_invariants t =
  let rec check = function
    | Leaf -> (0, min_int, None, None)
    | Node n ->
        let hl, mhl, minl, maxl = check n.l in
        let hr, mhr, minr, maxr = check n.r in
        assert (n.h = 1 + max hl hr);
        assert (abs (hl - hr) <= 2);
        assert (n.mh = max n.hi (max mhl mhr));
        assert (n.lo < n.hi);
        (* BST order on (lo, id) *)
        (match maxl with
        | Some (lo, id) -> assert (key_cmp lo id n.lo n.id < 0)
        | None -> ());
        (match minr with
        | Some (lo, id) -> assert (key_cmp n.lo n.id lo id < 0)
        | None -> ());
        ( 1 + max hl hr,
          max n.hi (max mhl mhr),
          (match minl with Some _ -> minl | None -> Some (n.lo, n.id)),
          match maxr with Some _ -> maxr | None -> Some (n.lo, n.id) )
  in
  ignore (check t.tree);
  let count = ref 0 in
  iter_all t.tree (fun _ _ _ -> incr count);
  assert (!count = t.n)
