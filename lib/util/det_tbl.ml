(* Deterministic Hashtbl traversal.

   Stdlib.Hashtbl iteration visits entries in hash-bucket order: it
   varies with Hashtbl.randomize, the initial size, and insertion
   history, which is exactly the nondeterminism class PR 4 hand-fixed
   three times (lint rule D001).  Every traversal here goes through a
   sorted key list, so the visit order is a function of the table's
   *contents* only.  Tables are small and off the per-request hot path
   at every call site; the O(n log n) sort is noise.  Sites that cannot
   afford it and are provably order-insensitive keep a raw fold under a
   justified [@lint.allow "D001 ..."] instead. *)

let sorted_keys ?(cmp = compare) tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  [@lint.allow
    "D001 this is the one place raw fold order is tolerated: the keys are \
     immediately sorted below, so no caller can observe bucket order"])
  |> List.sort_uniq cmp

let iter_sorted ?cmp f tbl =
  List.iter
    (fun k -> match Hashtbl.find_opt tbl k with
      | Some v -> f k v
      | None -> ())
    (sorted_keys ?cmp tbl)

let fold_sorted ?cmp f tbl init =
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt tbl k with Some v -> f k v acc | None -> acc)
    init
    (sorted_keys ?cmp tbl)

let bindings_sorted ?cmp tbl =
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find_opt tbl k))
    (sorted_keys ?cmp tbl)
