(** An interval index: a multiset of (interval, id, value) entries
    answering "which entries overlap [q]?" in O(log n + k).

    Backed by an AVL tree keyed by (lo, id) and augmented with each
    subtree's maximum [hi] (the classic interval-tree augmentation, as in
    Lustre's LDLM extent queues).  Unlike {!Extent_map}, entries may
    overlap arbitrarily — this indexes lock grant sets, where shared
    locks stack on the same extents.  The [id] (unique per entry, e.g. a
    lock id) disambiguates duplicates and addresses removal. *)

type 'a t

val empty : 'a t
val cardinal : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> Interval.t -> id:int -> 'a -> 'a t
(** O(log n).  Raises [Invalid_argument] on a duplicate (lo, id) key. *)

val remove : 'a t -> Interval.t -> id:int -> 'a t
(** O(log n).  [Interval.t] must be the one the entry was added with;
    raises [Invalid_argument] if the entry is absent. *)

val iter_overlapping : 'a t -> Interval.t -> (Interval.t -> int -> 'a -> unit) -> unit
(** Entries whose interval overlaps the query, in (lo, id) order. *)

val fold_overlapping :
  'a t -> Interval.t -> init:'b -> f:('b -> Interval.t -> int -> 'a -> 'b) -> 'b

val exists_overlapping : 'a t -> Interval.t -> (Interval.t -> int -> 'a -> bool) -> bool

val iter : (Interval.t -> int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> (Interval.t * int * 'a) list
(** All entries in (lo, id) order. *)

val check_invariants : 'a t -> unit
