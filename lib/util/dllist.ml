type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable active : bool;
}

type 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable len : int;
}

let create () = { first = None; last = None; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let value n = n.value
let active n = n.active

let push_back t v =
  let n = { value = v; prev = t.last; next = None; active = true } in
  (match t.last with
  | Some l -> l.next <- Some n
  | None -> t.first <- Some n);
  t.last <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  if not n.active then invalid_arg "Dllist.remove: node already removed";
  n.active <- false;
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  (* Keep [n.next]: an in-place walk parked on [n] when a re-entrant
     mutation removed it can still step forward ([succ]).  The stale
     link retains at most the removed segment, which is garbage as soon
     as the walk passes it.  [prev] is dropped — nothing walks backwards
     — so removed nodes never chain a backward retention path. *)
  n.prev <- None;
  t.len <- t.len - 1

let first_node t = t.first
let succ n = n.next

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.value;
        go next
  in
  go t.first

let fold f t acc =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let next = n.next in
        go (f acc n.value) next
  in
  go acc t.first

let exists p t =
  let rec go = function
    | None -> false
    | Some n -> p n.value || go n.next
  in
  go t.first

let to_list t = List.rev (fold (fun acc v -> v :: acc) t [])

let nodes t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n :: acc) n.next
  in
  go [] t.first

let check_invariants t =
  let rec go count prev = function
    | None ->
        (match (t.last, prev) with
        | Some a, Some b -> assert (a == b)
        | None, None -> ()
        | _ -> assert false);
        count
    | Some n ->
        assert n.active;
        (match (n.prev, prev) with
        | Some p, Some q -> assert (p == q)
        | None, None -> ()
        | _ -> assert false);
        go (count + 1) (Some n) n.next
  in
  let count = go 0 None t.first in
  assert (count = t.len)
