(** Mutable doubly-linked FIFO deque with O(1) append, O(1) removal of
    any node, and O(1) length — the lock server's per-resource wait
    queue.  [push_back] returns the node; holding it allows removal from
    the middle of the queue without scanning (a waiter granted out of
    FIFO position by range parallelism).  A removed node stays
    identifiable via {!active}, so iteration snapshots can skip entries
    removed by re-entrant mutation. *)

type 'a t
type 'a node

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> 'a node
(** Append at the tail; O(1). *)

val remove : 'a t -> 'a node -> unit
(** Unlink a node; O(1).  Raises [Invalid_argument] if already removed.
    The removed node keeps its forward link (see {!succ}). *)

val value : 'a node -> 'a
val active : 'a node -> bool

val first_node : 'a t -> 'a node option
(** The head node, if any; O(1). *)

val succ : 'a node -> 'a node option
(** The node that followed [n] when [n] was last linked.  Because
    {!remove} preserves the forward link, an in-place walk holding [n]
    survives removal of [n] (by the loop body or re-entrantly): [succ]
    still leads back into the live chain.  Check {!active} before using
    a node reached this way. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail; safe against removal of the current node by [f]. *)

val fold : ('b -> 'a -> 'b) -> 'a t -> 'b -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list

val nodes : 'a t -> 'a node list
(** Snapshot of the current nodes, head first — iterate and test
    {!active} per node when the loop body may mutate the list. *)

val check_invariants : 'a t -> unit
