(** Deterministic [Hashtbl] traversal (lint rule D001's prescribed fix).

    Raw [Hashtbl.iter]/[fold] visit entries in hash-bucket order — not
    stable under [Hashtbl.randomize], table sizing or insertion history.
    These traversals visit the table in sorted-key order instead, so the
    result is a function of the table's contents only.

    [cmp] defaults to the polymorphic compare; every table in this repo
    is keyed by ints, strings or int tuples, for which it is total and
    deterministic.  Keys are deduplicated ([Hashtbl.add] shadowing), and
    each key's *current* binding is visited. *)

val sorted_keys : ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
val iter_sorted : ?cmp:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit

val fold_sorted :
  ?cmp:('a -> 'a -> int) ->
  ('a -> 'b -> 'acc -> 'acc) ->
  ('a, 'b) Hashtbl.t ->
  'acc ->
  'acc

val bindings_sorted :
  ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
