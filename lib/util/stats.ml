type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option;
}

let create () =
  { samples = []; n = 0; sum = 0.; sumsq = 0.; mn = infinity;
    mx = neg_infinity; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let min t = if t.n = 0 then 0. else t.mn
let max t = if t.n = 0 then 0. else t.mx

let stddev t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    sqrt (Float.max 0. var)

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

(* Nearest-rank: the smallest index i with (i+1)/n >= p/100.  The rank
   is computed with a tolerance because [p /. 100. *. n] is not exact in
   binary floating point — e.g. 7. /. 100. *. 300. = 21.000000000000004,
   whose bare [ceil] lands one sample too high.  The tolerance (absolute
   + relative) is far below the 1/n spacing between genuine ranks, so it
   can only undo float noise, never skip a rank. *)
let percentile t p =
  if t.n = 0 then 0.
  else
    let a = sorted t in
    let p = Float.max 0. (Float.min 100. p) in
    let x = p /. 100. *. float_of_int t.n in
    let rank = int_of_float (ceil (x -. (1e-9 +. (1e-12 *. x)))) - 1 in
    a.(Stdlib.max 0 (Stdlib.min (t.n - 1) rank))

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.6g min=%.6g p50=%.6g p99=%.6g max=%.6g"
    t.n (mean t) (min t) (percentile t 50.) (percentile t 99.) (max t)
