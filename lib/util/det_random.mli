(** Deterministic random streams.  Every stochastic choice in the
    simulator draws from an explicitly-seeded state so whole-cluster runs
    are reproducible event-for-event. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from this one (stable: the n-th split of
    a given seed is always the same stream). *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val float : t -> float -> float
val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val state_of_ints : int array -> Random.State.t
(** An explicitly seeded raw [Random.State.t], for APIs that demand one
    (QCheck's [~rand]).  This module is the only one allowed to touch
    [Stdlib.Random] (lint rule D002); everything else derives its
    randomness from here or {!Dessim.Engine.random_float}. *)
