type t = { state : Random.State.t; mutable splits : int; seed : int }

let create ~seed =
  { state = Random.State.make [| seed; 0x5ed1 |]; splits = 0; seed }

let split t =
  t.splits <- t.splits + 1;
  create ~seed:((t.seed * 0x9e3779b9) lxor t.splits)

let int t bound = Random.State.int t.state bound
let float t bound = Random.State.float t.state bound
let bool t = Random.State.bool t.state

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Det_random.pick: empty array";
  a.(int t (Array.length a))

(* For consumers that need a raw [Random.State.t] (QCheck's [~rand]):
   still explicitly seeded, and minted here so this stays the only
   module that touches [Stdlib.Random] (lint rule D002). *)
let state_of_ints ints = Random.State.make ints
