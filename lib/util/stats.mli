(** Streaming sample accumulator used by the experiment harness for
    latency breakdowns and bandwidth series. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0. on an empty accumulator. *)

val min : t -> float
val max : t -> float
val stddev : t -> float
val percentile : t -> float -> float
(** [percentile t p]: the nearest-rank percentile — the smallest sample
    whose rank [i] (1-based, ascending) satisfies [i/n >= p/100].
    [p] is clamped to [0, 100]; [p = 0] gives the minimum, [p = 100]
    the maximum, and 0. is returned on an empty accumulator. *)

val pp_summary : Format.formatter -> t -> unit
