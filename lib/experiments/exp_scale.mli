(** Cluster-scale wall-clock benchmark: Fig. 18-style shared-file PW
    contention at 128/256/512 simulated clients, measuring the
    simulator's own throughput (real elapsed seconds, events/sec, lock
    requests/sec) and appending one row per point to [BENCH_scale.json]
    (schema [ccpfs.scale/1]).  [CCPFS_SCALE_CLIENTS] (comma-separated)
    overrides the client counts — CI's scale-smoke job runs "128". *)

val run : scale:float -> unit
