open Ccpfs_util
open Ccpfs

(* Cluster-scale wall-clock benchmark: the Fig. 18 shared-file contention
   pattern (every client rewrites the same range of one file under
   whole-range PW locks) pushed to 128/256/512 simulated clients.

   Unlike the figure reproductions, the measured quantity here is the
   *simulator's* throughput — real elapsed seconds per run, events/sec
   and lock requests/sec — because lock-server queueing under heavy
   contention is the simulation hot path: a contended run used to be
   O(n^2)+ in queued waiters, capping experiments near ~100 clients.
   Each run appends one row to BENCH_scale.json (schema ccpfs.scale/1),
   the repo's wall-clock perf trajectory. *)

let default_clients = [ 128; 256; 512 ]

(* CI's scale-smoke job runs the reduced 128-client point only:
   CCPFS_SCALE_CLIENTS="128" ccpfs_run run scale *)
let client_counts () =
  match Sys.getenv_opt "CCPFS_SCALE_CLIENTS" with
  | None | Some "" -> default_clients
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok ->
             match int_of_string_opt (String.trim tok) with
             | Some n when n > 0 -> Some n
             | _ -> None)
      |> function
      | [] -> default_clients
      | l -> l

let xfer = 64 * Units.kib

(* Span of the deterministic per-write think-time jitter.  Without it the
   convoy is perfectly symmetric: after the first round every write
   experiences the identical steady-state queue wait, all samples are
   bit-for-bit equal and p50 == p99 exactly (the committed-bench
   degeneracy this knob fixes).  Real clients never arrive in lockstep;
   a uniform [0, 50µs) pause before each write — excluded from the
   measured latency — desynchronises arrivals enough that the recorded
   distribution has genuine spread, while staying two orders of
   magnitude below the multi-ms queue waits it perturbs. *)
let think_jitter_span = 50e-6

(* Batch factors measured per client count: the plain transport and, for
   comparison, per-destination RPC batching at CCPFS_BATCH (default 8).
   Each produces its own tagged row in BENCH_scale.json. *)
let batch_points () =
  let k = Config.default.Config.batch_k in
  [ 0; (if k > 1 then k else 8) ]

type measurement = {
  m_batch_k : int;
  m_clients : int;
  m_writes_each : int;
  m_wall_s : float; (* real elapsed seconds for the measured pass *)
  m_events : int;
  m_requests : int; (* lock requests enqueued at the servers *)
  m_sim_pio_s : float;
  m_sim_total_s : float;
  m_write_lat : Stats.t; (* simulated per-write latency *)
  m_lock_stats : Seqdlm.Lock_server.stats;
}

(* One contended run.  The cluster loop mirrors Harness.run_custom
   (sanitizer attach, PIO/F split, invariant sweep) but times the pass
   with a real clock and keeps Obs.Results untouched — scale rows go to
   BENCH_scale.json, not BENCH_experiments.json. *)
let run_one ~clients ~writes_each ~batch_k =
  let one_pass () =
    let config = Config.with_batching ~k:batch_k Config.default in
    let cl = Cluster.create ~config ~policy:Seqdlm.Policy.seqdlm ~n_servers:1
        ~n_clients:clients ()
    in
    let eng = Cluster.engine cl in
    (match Obs.Hub.new_sink () with
    | Some sink -> Dessim.Engine.set_trace_sink eng sink
    | None -> ());
    ignore (Obs.Hub.next_run_id ());
    if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
    let lat = Stats.create () in
    let writers_done = ref 0. in
    let root_rng = Det_random.create ~seed:0x5ca1e in
    for i = 0 to clients - 1 do
      let rng = Det_random.split root_rng in
      Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
          let f = Client.open_file c ~create:true "/scale" in
          for _ = 1 to writes_each do
            Dessim.Engine.sleep eng (Det_random.float rng think_jitter_span);
            let t0 = Cluster.now cl in
            Client.write ~mode:Seqdlm.Mode.PW ~lock_whole_range:true c f
              ~off:0 ~len:xfer;
            Stats.add lat (Cluster.now cl -. t0)
          done;
          if Cluster.now cl > !writers_done then writers_done := Cluster.now cl)
    done;
    Check.Sanitize.run_cluster cl;
    let pio = !writers_done in
    Cluster.fsync_all cl;
    Cluster.check_invariants cl;
    if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
    (cl, pio, lat)
  in
  let wall0 =
    (Unix.gettimeofday () [@lint.allow
                            "D003 host wall-clock IS the measured quantity \
                             here: m_wall_s reports real elapsed time, not \
                             simulated time"])
  in
  let cl, pio, lat =
    if Check.Sanitize.determinism_enabled () then begin
      let result = ref None in
      ignore
        (Check.Determinism.check ~name:"exp_scale" (fun () ->
             let (cl, _, _) as r = one_pass () in
             result := Some r;
             Cluster.engine cl));
      Option.get !result
    end
    else one_pass ()
  in
  let wall =
    (Unix.gettimeofday () [@lint.allow
                            "D003 host wall-clock IS the measured quantity \
                             here: m_wall_s reports real elapsed time, not \
                             simulated time"])
    -. wall0
  in
  let s = Cluster.sum_lock_stats cl in
  {
    m_batch_k = batch_k;
    m_clients = clients;
    m_writes_each = writes_each;
    m_wall_s = wall;
    m_events = Dessim.Engine.events_dispatched (Cluster.engine cl);
    m_requests = clients * writes_each;
    m_sim_pio_s = pio;
    m_sim_total_s = Cluster.now cl;
    m_write_lat = lat;
    m_lock_stats = s;
  }

let row_of (m : measurement) =
  let s = m.m_lock_stats in
  let per_sec n = float_of_int n /. Float.max 1e-9 m.m_wall_s in
  let open Obs.Json in
  Obj
    [
      ("experiment", Str "scale");
      ("scale", Float (Obs.Hub.scale ()));
      ("batch_k", Int m.m_batch_k);
      ("clients", Int m.m_clients);
      ("writes_each", Int m.m_writes_each);
      ("xfer_bytes", Int xfer);
      ("wall_s", Float m.m_wall_s);
      ("events", Int m.m_events);
      ("events_per_s", Float (per_sec m.m_events));
      ("requests", Int m.m_requests);
      ("requests_per_s", Float (per_sec m.m_requests));
      ("sim_pio_s", Float m.m_sim_pio_s);
      ("sim_total_s", Float m.m_sim_total_s);
      ("write_lat_p50_s", Float (Stats.percentile m.m_write_lat 50.));
      ("write_lat_p99_s", Float (Stats.percentile m.m_write_lat 99.));
      ( "lock_stats",
        Obj
          [
            ("grants", Int s.grants);
            ("early_grants", Int s.early_grants);
            ("early_revocations", Int s.early_revocations);
            ("revokes_sent", Int s.revokes_sent);
            ("upgrades", Int s.upgrades);
            ("downgrades", Int s.downgrades);
            ("releases", Int s.releases);
            ("expansions", Int s.expansions);
            ("revocation_wait_s", Float s.revocation_wait);
            ("release_wait_s", Float s.release_wait);
            ("max_queue", Int s.max_queue);
          ] );
    ]

let results_schema = "ccpfs.scale/1"
let results_path = "BENCH_scale.json"

(* Append the scale rows to BENCH_scale.json without disturbing whatever
   the experiment harness has accumulated for BENCH_experiments.json. *)
let write_rows rows =
  let prior = Obs.Results.rows () in
  Obs.Results.clear ();
  List.iter Obs.Results.add rows;
  let n =
    Obs.Results.write ~append:true ~schema:results_schema ~path:results_path ()
  in
  List.iter Obs.Results.add prior;
  n

let run ~scale =
  let writes_each = Harness.scaled ~scale 8 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Scale: simulator wall-clock throughput, shared-file PW contention \
            (%d writes/client x %s)"
           writes_each
           (Units.bytes_to_string xfer))
      ~columns:
        [ "clients"; "batch"; "wall"; "events/s"; "reqs/s"; "max queue";
          "lat p50"; "lat p99" ]
  in
  let rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun batch_k ->
            let m = run_one ~clients ~writes_each ~batch_k in
            Table.add_row tbl
              [
                string_of_int m.m_clients;
                (if m.m_batch_k > 1 then string_of_int m.m_batch_k else "off");
                Units.seconds_to_string m.m_wall_s;
                Printf.sprintf "%.3g"
                  (float_of_int m.m_events /. Float.max 1e-9 m.m_wall_s);
                Printf.sprintf "%.3g"
                  (float_of_int m.m_requests /. Float.max 1e-9 m.m_wall_s);
                string_of_int m.m_lock_stats.max_queue;
                Units.seconds_to_string (Stats.percentile m.m_write_lat 50.);
                Units.seconds_to_string (Stats.percentile m.m_write_lat 99.);
              ];
            row_of m)
          (batch_points ()))
      (client_counts ())
  in
  let n = write_rows rows in
  Table.add_note tbl
    (Printf.sprintf "wall = real elapsed time of the simulation; %d row(s) in %s"
       n results_path);
  Table.print tbl
