(** Index of every reproduced table and figure.

    Each experiment regenerates the rows/series of one paper artefact.
    [default_scale] shrinks the paper's data volumes to laptop-friendly
    sizes (1.0 = the full published configuration); shapes are preserved
    because steady-state bandwidths do not depend on total bytes once
    caches reach their thresholds (see EXPERIMENTS.md). *)

type t = {
  id : string;  (** "fig20", "table3", ... *)
  title : string;
  paper_claim : string;  (** the headline number(s) being reproduced *)
  default_scale : float;
  run : scale:float -> unit;
}

val all : t list
(** In paper order. *)

val find : string -> t option

val run_one : ?scale:float -> t -> unit
(** Runs and prints, with a header naming the experiment and scale. *)

val run_all : ?scale:float -> unit -> unit
(** Every experiment at its default (or overridden) scale. *)

val results_schema : string
(** The schema tag of experiment rows, ["ccpfs.experiments/1"]. *)

val write_results : path:string -> int
(** Write every result row the harness accumulated since the last write
    to [path] as a [BENCH_experiments.json] document (see EXPERIMENTS.md
    "Machine-readable results"); returns the row count and clears the
    accumulator. *)
