type t = {
  id : string;
  title : string;
  paper_claim : string;
  default_scale : float;
  run : scale:float -> unit;
}

let all =
  [
    {
      id = "model";
      title = "§II-C analytical model (Eq. 1, Eq. 2, Table I)";
      paper_claim = "term ③ (flushing) dominates ① and ② by orders of magnitude";
      default_scale = 1.0;
      run = Exp_model.run;
    };
    {
      id = "fig04";
      title = "Fig. 4: IO-pattern performance gap";
      paper_claim = "N-N/segmented ride the cache; N-1 strided collapses";
      default_scale = 0.02;
      run = Exp_fig04.run;
    };
    {
      id = "fig05";
      title = "Fig. 5: reducing data-flushing time";
      paper_claim = "less flushing -> more bandwidth; revocation next bottleneck";
      default_scale = 0.02;
      run = Exp_fig05.run;
    };
    {
      id = "fig17";
      title = "Fig. 17: sequential-conflict time breakdown";
      paper_claim = "PW: 67.9-69.3% in conflict resolution, mostly flushing";
      default_scale = 0.05;
      run = Exp_fig17.run;
    };
    {
      id = "fig18";
      title = "Fig. 18: early grant + early revocation throughput";
      paper_claim = "NBW+ER up to 40.2x over PW; ER does not help PW";
      default_scale = 0.05;
      run = Exp_fig18.run;
    };
    {
      id = "fig19";
      title = "Fig. 19: automatic lock conversion";
      paper_claim = "upgrading matches PW; downgrading 2.48x/9.40x over PW";
      default_scale = 0.2;
      run = Exp_fig19.run;
    };
    {
      id = "table3";
      title = "Table III: N-1 segmented, low contention";
      paper_claim = "SeqDLM within a few % of DLM-basic/DLM-Lustre";
      default_scale = 0.02;
      run = Exp_table3.run;
    };
    {
      id = "fig20";
      title = "Fig. 20: N-1 strided, 1 stripe";
      paper_claim = "up to 18.1x over traditional DLMs; PIO ~5% of total";
      default_scale = 0.02;
      run = Exp_fig20.run;
    };
    {
      id = "fig21";
      title = "Fig. 21/22: N-1 strided, 4 & 8 stripes, 96 clients";
      paper_claim = "3.6-10.3x (4 stripes), 2.0-6.2x (8 stripes) over DLM-Lustre";
      default_scale = 0.1;
      run = Exp_fig21.run;
    };
    {
      id = "fig23";
      title = "Fig. 23: Tile-IO vs DLM-datatype";
      paper_claim = "51.0x (1 stripe) to 4.1x (16 stripes)";
      default_scale = 0.03;
      run = Exp_fig23.run;
    };
    {
      id = "fig24";
      title = "Fig. 24/25: VPIC-IO through IO forwarding";
      paper_claim = "6.2x/1.5x (256KiB) and 34.8x/8.8x (1MiB) over DLM-Lustre";
      default_scale = 0.1;
      run = Exp_fig24.run;
    };
    {
      id = "ablation";
      title = "Ablations: expansion, ER vs contention, extent cache, flush thresholds, sequencer reuse";
      paper_claim = "design-choice sensitivity (DESIGN.md §4)";
      default_scale = 0.1;
      run = Exp_ablation.run;
    };
    {
      id = "scale";
      title = "Scale: simulator wall-clock throughput at 128-512 clients";
      paper_claim =
        "lock-server queueing drives Figs. 17-20; the simulator must stay \
         fast as contention deepens";
      default_scale = 1.0;
      run = Exp_scale.run;
    };
    {
      id = "failover";
      title = "Failover: live lock-server crash under shared-file contention";
      paper_claim =
        "§IV-C2 recovery rebuilds the lock table from client caches; with \
         lib/ha the rebuild runs online behind an epoch fence while \
         in-flight clients retry";
      default_scale = 1.0;
      run = Exp_failover.run;
    };
    {
      id = "shard";
      title = "Shard: lock-namespace sharding, 1-8 servers at 512 clients";
      paper_claim =
        "distributing the DLM lifts aggregate lock throughput (§II-B); \
         epoch-fenced migration keeps Table II semantics while resources \
         rehome under live traffic";
      default_scale = 1.0;
      run = Exp_shard.run;
    };
    {
      id = "load";
      title = "Load: open-loop offered-rate sweep to the latency knee";
      paper_claim =
        "closed-loop clients self-throttle at saturation; only open-loop \
         arrivals expose the offered-load vs p99 knee the paper's \
         sustained-traffic claims rest on";
      default_scale = 1.0;
      run = Exp_load.run;
    };
    {
      id = "safety";
      title = "§V-B1: data safety";
      paper_claim = "ior-hard readback and overlapping-write checksums always correct";
      default_scale = 0.1;
      run = Exp_safety.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one ?scale e =
  let scale = Option.value scale ~default:e.default_scale in
  Printf.printf "\n### %s [%s, scale=%g]\n" e.title e.id scale;
  Printf.printf "### paper: %s\n\n" e.paper_claim;
  Obs.Hub.set_run_info ~experiment:e.id ~scale;
  e.run ~scale

let run_all ?scale () = List.iter (fun e -> run_one ?scale e) all

let results_schema = "ccpfs.experiments/1"

let write_results ~path = Obs.Results.write ~schema:results_schema ~path ()
