(** Online failover under traffic: shared-file PW contention with a
    mid-run lock-server crash, recovered live by [lib/ha].  Reports the
    unavailability window (detection + recovery), retry cost and a
    virtual-time throughput series; appends one row per run to
    [BENCH_failover.json] (schema ["ccpfs.failover/1"]). *)

val run : scale:float -> unit
