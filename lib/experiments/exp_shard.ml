open Ccpfs_util
open Ccpfs

(* Lock-namespace sharding capstone (DESIGN.md §15): the same pairwise
   PW contention workload pushed through 1, 2, 4 and 8 lock servers at
   512 clients.  Client pair k ping-pongs a whole-block PW lock on
   stripe [k mod stripes], so the file's resources form [stripes]
   independent contention domains; with the namespace sharded over n
   servers each server carries [stripes/n] of them and the aggregate
   simulated request rate should rise close to linearly — the paper's
   motivation for distributing the DLM in the first place (§II-B).

   Every multi-server point also performs at least one epoch-fenced
   live migration while the traffic runs (a forced rehoming of stripe
   0's resource plus whatever the queue-depth rebalancer decides), so
   the row doubles as an end-to-end soak of the Stale_owner
   refresh-and-retry path: [migrations] and [stale_bounces] are
   recorded per row.

   The measured quantity is requests per *simulated* second — service
   capacity, the thing sharding buys — with wall-clock throughput kept
   alongside for the perf trajectory.  Each run appends one row to
   BENCH_shard.json (schema ccpfs.shard/1). *)

let default_servers = [ 1; 2; 4; 8 ]
let default_clients = 512
let default_stripes = 32

let int_list_env ~key ~default =
  match Sys.getenv_opt key with
  | None | Some "" -> default
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok ->
             match int_of_string_opt (String.trim tok) with
             | Some n when n > 0 -> Some n
             | _ -> None)
      |> ( function [] -> default | l -> l )

let int_env ~key ~default =
  match Option.bind (Sys.getenv_opt key) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

(* CI's shard-smoke job runs a reduced sweep:
   CCPFS_SHARD_SERVERS="1,2" CCPFS_SHARD_CLIENTS=32 ccpfs_run run shard *)
let server_counts () = int_list_env ~key:"CCPFS_SHARD_SERVERS" ~default:default_servers
let client_count () = int_env ~key:"CCPFS_SHARD_CLIENTS" ~default:default_clients
let stripe_count () = int_env ~key:"CCPFS_SHARD_STRIPES" ~default:default_stripes

let stripe_size = 64 * Units.kib
let xfer = 16 * Units.kib

(* Same role as exp_scale's think jitter: desynchronise the convoy so
   the latency distribution has genuine spread. *)
let think_jitter_span = 50e-6

type measurement = {
  m_servers : int;
  m_clients : int;
  m_stripes : int;
  m_writes_each : int;
  m_wall_s : float;
  m_events : int;
  m_requests : int;
  m_sim_pio_s : float; (* simulated time at which the last writer finished *)
  m_sim_total_s : float;
  m_migrations : int;
  m_stale_bounces : int;
  m_write_lat : Stats.t;
  m_lock_stats : Seqdlm.Lock_server.stats;
}

let run_one ~servers ~clients ~stripes ~writes_each =
  let one_pass () =
    let config = Config.with_extent_log true Config.default in
    let cl = Cluster.create ~config ~policy:Seqdlm.Policy.seqdlm
        ~n_servers:servers ~n_clients:clients ()
    in
    let eng = Cluster.engine cl in
    (match Obs.Hub.new_sink () with
    | Some sink -> Dessim.Engine.set_trace_sink eng sink
    | None -> ());
    ignore (Obs.Hub.next_run_id ());
    if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
    Obs.Metrics.enable (Dessim.Engine.metrics eng);
    let layout = Layout.v ~stripe_size ~stripe_count:stripes () in
    let lat = Stats.create () in
    let writers_done = ref 0. in
    let file = ref None in
    let root_rng = Det_random.create ~seed:0x54a4d in
    for i = 0 to clients - 1 do
      let rng = Det_random.split root_rng in
      let stripe = i / 2 mod stripes in
      Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
          let f = Client.open_file c ~create:true ~layout "/shard" in
          if Option.is_none !file then file := Some f;
          for _ = 1 to writes_each do
            Dessim.Engine.sleep eng (Det_random.float rng think_jitter_span);
            let t0 = Cluster.now cl in
            Client.write ~mode:Seqdlm.Mode.PW c f ~off:(stripe * stripe_size)
              ~len:xfer;
            Stats.add lat (Cluster.now cl -. t0)
          done;
          if Cluster.now cl > !writers_done then writers_done := Cluster.now cl)
    done;
    (* Live migration under traffic: rehome stripe 0's resource to the
       next server partway through the run, and let the queue-depth
       rebalancer shave whatever imbalance it observes. *)
    let rb =
      if servers > 1 then begin
        let params = Cluster.params cl in
        Dessim.Engine.spawn eng ~name:"forced-migration" (fun () ->
            (* Wait for a quarter of the writes, so the rehoming lands
               while the remaining three quarters are still in flight
               and the Stale_owner path sees real traffic. *)
            let quarter = clients * writes_each / 4 in
            while Stats.count lat < quarter do
              Dessim.Engine.sleep eng (10. *. params.Netsim.Params.rtt)
            done;
            match !file with
            | None -> ()
            | Some f ->
                let rid = Layout.rid ~fid:(Client.fid f) ~stripe:0 in
                let dst = (Cluster.server_of_rid cl rid + 1) mod servers in
                ignore (Cluster.migrate_resource cl ~rid ~dst));
        let rb = Ha.Rebalancer.create ~threshold:8 cl in
        Ha.Rebalancer.start rb;
        Some rb
      end
      else None
    in
    Check.Sanitize.run_cluster cl;
    Option.iter Ha.Rebalancer.stop rb;
    let pio = !writers_done in
    Cluster.fsync_all cl;
    Cluster.check_invariants cl;
    if Check.Sanitize.enabled () then begin
      Check.Sanitize.check_cluster cl;
      Check.Sanitize.check_ownership cl
    end;
    (cl, pio, lat)
  in
  let wall0 =
    (Unix.gettimeofday () [@lint.allow
                            "D003 host wall-clock IS the measured quantity \
                             here: m_wall_s reports real elapsed time, not \
                             simulated time"])
  in
  let cl, pio, lat =
    if Check.Sanitize.determinism_enabled () then begin
      let result = ref None in
      ignore
        (Check.Determinism.check ~name:"exp_shard" (fun () ->
             let (cl, _, _) as r = one_pass () in
             result := Some r;
             Cluster.engine cl));
      Option.get !result
    end
    else one_pass ()
  in
  let wall =
    (Unix.gettimeofday () [@lint.allow
                            "D003 host wall-clock IS the measured quantity \
                             here: m_wall_s reports real elapsed time, not \
                             simulated time"])
    -. wall0
  in
  {
    m_servers = servers;
    m_clients = clients;
    m_stripes = stripes;
    m_writes_each = writes_each;
    m_wall_s = wall;
    m_events = Dessim.Engine.events_dispatched (Cluster.engine cl);
    m_requests = clients * writes_each;
    m_sim_pio_s = pio;
    m_sim_total_s = Cluster.now cl;
    m_migrations = List.length (Cluster.migrations cl);
    m_stale_bounces = Cluster.total_stale_bounces cl;
    m_write_lat = lat;
    m_lock_stats = Cluster.sum_lock_stats cl;
  }

let requests_per_sim_s m =
  float_of_int m.m_requests /. Float.max 1e-9 m.m_sim_pio_s

let row_of (m : measurement) =
  let s = m.m_lock_stats in
  let open Obs.Json in
  Obj
    [
      ("experiment", Str "shard");
      ("scale", Float (Obs.Hub.scale ()));
      ("servers", Int m.m_servers);
      ("clients", Int m.m_clients);
      ("stripes", Int m.m_stripes);
      ("writes_each", Int m.m_writes_each);
      ("xfer_bytes", Int xfer);
      ("requests", Int m.m_requests);
      ("sim_pio_s", Float m.m_sim_pio_s);
      ("sim_total_s", Float m.m_sim_total_s);
      ("requests_per_sim_s", Float (requests_per_sim_s m));
      ("wall_s", Float m.m_wall_s);
      ("events", Int m.m_events);
      ("migrations", Int m.m_migrations);
      ("stale_bounces", Int m.m_stale_bounces);
      ("write_lat_p50_s", Float (Stats.percentile m.m_write_lat 50.));
      ("write_lat_p99_s", Float (Stats.percentile m.m_write_lat 99.));
      ( "lock_stats",
        Obj
          [
            ("grants", Int s.grants);
            ("revokes_sent", Int s.revokes_sent);
            ("releases", Int s.releases);
            ("revocation_wait_s", Float s.revocation_wait);
            ("max_queue", Int s.max_queue);
          ] );
    ]

let results_schema = "ccpfs.shard/1"
let results_path = "BENCH_shard.json"

(* Append the shard rows to BENCH_shard.json without disturbing whatever
   the experiment harness has accumulated for BENCH_experiments.json. *)
let write_rows rows =
  let prior = Obs.Results.rows () in
  Obs.Results.clear ();
  List.iter Obs.Results.add rows;
  let n =
    Obs.Results.write ~append:true ~schema:results_schema ~path:results_path ()
  in
  List.iter Obs.Results.add prior;
  n

let run ~scale =
  let writes_each = Harness.scaled ~scale 8 in
  let clients = client_count () and stripes = stripe_count () in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Shard: aggregate lock throughput, %d clients in PW pairs over %d \
            stripes (%d writes/client x %s)"
           clients stripes writes_each
           (Units.bytes_to_string xfer))
      ~columns:
        [ "servers"; "sim reqs/s"; "speedup"; "migrations"; "bounces";
          "max queue"; "lat p99"; "wall" ]
  in
  let base = ref None in
  let rows =
    List.map
      (fun servers ->
        let m = run_one ~servers ~clients ~stripes ~writes_each in
        let rate = requests_per_sim_s m in
        if Option.is_none !base then base := Some rate;
        Table.add_row tbl
          [
            string_of_int m.m_servers;
            Printf.sprintf "%.4g" rate;
            Printf.sprintf "%.2fx" (rate /. Option.get !base);
            string_of_int m.m_migrations;
            string_of_int m.m_stale_bounces;
            string_of_int m.m_lock_stats.max_queue;
            Units.seconds_to_string (Stats.percentile m.m_write_lat 99.);
            Units.seconds_to_string m.m_wall_s;
          ];
        row_of m)
      (server_counts ())
  in
  let n = write_rows rows in
  Table.add_note tbl
    (Printf.sprintf
       "sim reqs/s = lock requests per simulated second (service capacity); \
        %d row(s) in %s"
       n results_path);
  Table.print tbl
