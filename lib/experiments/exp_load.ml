open Ccpfs_util
open Ccpfs

(* Open-loop sustained-traffic benchmark: the offered-load-vs-latency
   curve the closed-loop experiments cannot draw.

   Every figure reproduction in this repo is closed-loop — each client
   issues its next write only after the previous one returns, so the
   offered load self-throttles exactly when the system congests, and
   latency past saturation is unobservable.  This experiment drives the
   same shared-file PW-contention workload (the exp_scale shape) through
   lib/load instead: a seeded arrival process (Poisson by default)
   schedules request arrival times up front, a bounded-backlog driver
   injects them regardless of completions, and a sweep controller walks
   offered rates across a grid around the measured closed-loop capacity
   to locate the knee — the first rate whose sojourn p99 blows past the
   SLO or whose achieved rate falls below 95% of offered.

   One row per rate point lands in BENCH_load.json (schema ccpfs.load/1).
   Rows carry no wall-clock fields, so a determinism double-run must
   reproduce them bit-identically.

   Knobs:
     CCPFS_LOAD_CLIENTS   cluster size (default 128)
     CCPFS_LOAD_REQUESTS  arrivals per rate point (default 8 x clients, scaled)
     CCPFS_LOAD_GRID      rate multipliers of measured capacity
                          (default "0.25,0.5,0.75,0.9,1.1,1.4")
     CCPFS_LOAD_RATES     absolute rates in req/s (overrides GRID)
     CCPFS_LOAD_PROCESS   poisson | constant | mmpp (default poisson)
     CCPFS_LOAD_SLO_MS    sojourn p99 SLO; default auto = 3 x closed-loop p99
     CCPFS_LOAD_CAP       in-flight cap before shedding (default 4 x clients)
     CCPFS_LOAD_CHURN     1 = clients leave/rejoin mid-sweep (default 1)
     CCPFS_LOAD_BISECT    extra bisection points at the knee (default 0)
     CCPFS_BATCH          RPC batching, as everywhere else *)

let xfer = 64 * Units.kib
let seed_base = 0x10ad

let env_int name ~default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> default)

let env_floats name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s ->
      let l =
        String.split_on_char ',' s
        |> List.filter_map (fun tok ->
               match float_of_string_opt (String.trim tok) with
               | Some v when v > 0. -> Some v
               | _ -> None)
      in
      if List.length l = 0 then None else Some l

let clients () = env_int "CCPFS_LOAD_CLIENTS" ~default:128
let default_grid = [ 0.25; 0.5; 0.75; 0.9; 1.1; 1.4 ]

let churn_enabled () =
  match Sys.getenv_opt "CCPFS_LOAD_CHURN" with
  | Some "0" -> false
  | _ -> true

let process_name () =
  match Sys.getenv_opt "CCPFS_LOAD_PROCESS" with
  | None | Some "" -> "poisson"
  | Some s -> String.lowercase_ascii (String.trim s)

(* The workload body: the exp_scale contention shape — every request is
   a whole-range PW write to the one shared file. *)
let prepare c = (c, Client.open_file c ~create:true "/load")
let request (c, f) _k =
  Client.write ~mode:Seqdlm.Mode.PW ~lock_whole_range:true c f ~off:0 ~len:xfer;
  xfer

let fresh_cluster ~n_clients =
  let cl =
    Cluster.create ~config:Config.default ~policy:Seqdlm.Policy.seqdlm
      ~n_servers:1 ~n_clients ()
  in
  let eng = Cluster.engine cl in
  (match Obs.Hub.new_sink () with
  | Some sink -> Dessim.Engine.set_trace_sink eng sink
  | None -> ());
  ignore (Obs.Hub.next_run_id ());
  if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
  cl

(* Closed-loop calibration: the same workload driven the closed way
   (next write only after the previous returns).  Yields the system's
   closed-loop capacity (completions/sec over the PIO span) — the
   anchor the rate grid multiplies — and the closed-loop per-write
   latency that both seeds the auto-SLO and feeds the low-load
   differential test. *)
type calibration = { cap_rps : float; closed_lat : Stats.t }

let calibrate ~n_clients ~writes_each =
  let cl = fresh_cluster ~n_clients in
  let eng = Cluster.engine cl in
  let lat = Stats.create () in
  let pio_end = ref 0. in
  let root_rng = Det_random.create ~seed:seed_base in
  for i = 0 to n_clients - 1 do
    let rng = Det_random.split root_rng in
    Cluster.spawn_client cl i ~name:(Printf.sprintf "cal%d" i) (fun c ->
        let ctx = prepare c in
        for k = 1 to writes_each do
          (* same desynchronising think jitter as exp_scale; excluded
             from the measured latency *)
          Dessim.Engine.sleep eng (Det_random.float rng 50e-6);
          let t0 = Cluster.now cl in
          ignore (request ctx k);
          Stats.add lat (Cluster.now cl -. t0)
        done;
        if Cluster.now cl > !pio_end then pio_end := Cluster.now cl)
  done;
  Check.Sanitize.run_cluster cl;
  let pio = Float.max 1e-9 !pio_end in
  Cluster.fsync_all cl;
  Cluster.check_invariants cl;
  if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
  { cap_rps = float_of_int (n_clients * writes_each) /. pio; closed_lat = lat }

(* Default churn schedule: an eighth of the clients (at least one)
   leaves at a third of the scheduled injection span and rejoins at two
   thirds — enough rotation that arrival routing demonstrably bends
   around Down clients, small enough that capacity barely moves. *)
let churn_schedule ~n_clients ~span =
  if not (churn_enabled ()) then []
  else begin
    let movers = Stdlib.max 1 (n_clients / 8) in
    let acc = ref [] in
    for m = 0 to movers - 1 do
      let c = m * Stdlib.max 1 (n_clients / movers) in
      acc :=
        Load.Driver.{ ch_at = span /. 3.; ch_client = c; ch_up = false }
        :: Load.Driver.{ ch_at = 2. *. span /. 3.; ch_client = c; ch_up = true }
        :: !acc
    done;
    List.rev !acc
  end

(* One open-loop rate point on a fresh cluster.  Wrapped in the
   determinism double-run when CCPFS_CHECK enables it, like the other
   benchmark experiments. *)
let run_point ~n_clients ~requests ~process ~cap ~churn rate =
  let one_pass () =
    let cl = fresh_cluster ~n_clients in
    let proc = Option.get (Load.Arrivals.of_string ~rate process) in
    let span = float_of_int requests /. rate in
    let spec =
      Load.Driver.
        {
          process = proc;
          seed = seed_base;
          requests;
          max_in_flight = cap;
          churn = (if churn then churn_schedule ~n_clients ~span else []);
          start_at = 0.;
        }
    in
    let h = Load.Driver.launch cl spec ~prepare ~request in
    Check.Sanitize.run_cluster cl;
    Cluster.fsync_all cl;
    Cluster.check_invariants cl;
    if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
    (cl, Load.Driver.result h)
  in
  if Check.Sanitize.determinism_enabled () then begin
    let result = ref None in
    ignore
      (Check.Determinism.check ~name:"exp_load" (fun () ->
           let cl, r = one_pass () in
           result := Some r;
           Cluster.engine cl));
    Option.get !result
  end
  else snd (one_pass ())

type setup = {
  s_clients : int;
  s_requests : int;
  s_process : string;
  s_cap : int;
  s_churn : bool;
  s_slo_s : float;
  s_rates : float list;
  s_bisect : int;
  s_cal : calibration;
}

let setup ~scale =
  let n_clients = clients () in
  let writes_each = Harness.scaled ~scale 8 in
  let requests = env_int "CCPFS_LOAD_REQUESTS" ~default:(n_clients * writes_each) in
  let cal = calibrate ~n_clients ~writes_each in
  let slo_s =
    match Sys.getenv_opt "CCPFS_LOAD_SLO_MS" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some ms when ms > 0. -> ms /. 1e3
        | _ -> 3. *. Stats.percentile cal.closed_lat 99.)
    | None -> 3. *. Stats.percentile cal.closed_lat 99.
  in
  let rates =
    match env_floats "CCPFS_LOAD_RATES" with
    | Some l -> l
    | None ->
        let grid =
          Option.value (env_floats "CCPFS_LOAD_GRID") ~default:default_grid
        in
        List.map (fun m -> m *. cal.cap_rps) grid
  in
  {
    s_clients = n_clients;
    s_requests = requests;
    s_process = process_name ();
    s_cap = env_int "CCPFS_LOAD_CAP" ~default:(4 * n_clients);
    s_churn = churn_enabled ();
    s_slo_s = slo_s;
    s_rates = rates;
    s_bisect = env_int "CCPFS_LOAD_BISECT" ~default:0;
    s_cal = cal;
  }

(* The sweep, parameterised for tests (the determinism test re-runs this
   with a fixed setup and compares the JSON rows bit-for-bit). *)
let sweep_points s =
  Load.Sweep.run
    {
      Load.Sweep.rates = s.s_rates;
      slo_s = s.s_slo_s;
      min_achieved_frac = 0.95;
      bisect_steps = s.s_bisect;
    }
    ~run_rate:
      (run_point ~n_clients:s.s_clients ~requests:s.s_requests
         ~process:s.s_process ~cap:s.s_cap ~churn:s.s_churn)

let row_of s (p : Load.Sweep.point) =
  let r = p.Load.Sweep.p_result in
  let open Obs.Json in
  Obj
    [
      ("experiment", Str "load");
      ("scale", Float (Obs.Hub.scale ()));
      ("clients", Int s.s_clients);
      ("process", Str s.s_process);
      ("seed", Int seed_base);
      ("batch_k", Int Config.default.Config.batch_k);
      ("requests", Int s.s_requests);
      ("xfer_bytes", Int xfer);
      ("cap_in_flight", Int s.s_cap);
      ("churn", Bool s.s_churn);
      ("slo_s", Float s.s_slo_s);
      ("offered_rate_rps", Float p.Load.Sweep.p_rate);
      ("achieved_rate_rps", Float r.Load.Driver.r_achieved_rate);
      ("goodput_Bps", Float r.Load.Driver.r_goodput_Bps);
      ("arrivals", Int r.Load.Driver.r_arrivals);
      ("completed", Int r.Load.Driver.r_completed);
      ("shed", Int r.Load.Driver.r_shed);
      ("window_s", Float r.Load.Driver.r_window_s);
      ("sojourn_p50_s", Float p.Load.Sweep.p_p50);
      ("sojourn_p99_s", Float p.Load.Sweep.p_p99);
      ("sojourn_p999_s", Float p.Load.Sweep.p_p999);
      ("violates", Bool p.Load.Sweep.p_violates);
      ("knee", Bool p.Load.Sweep.p_knee);
    ]

let results_schema = "ccpfs.load/1"
let results_path = "BENCH_load.json"

(* Same accumulator-preserving append as exp_scale: load rows go to
   BENCH_load.json without disturbing BENCH_experiments.json rows. *)
let write_rows rows =
  let prior = Obs.Results.rows () in
  Obs.Results.clear ();
  List.iter Obs.Results.add rows;
  let n =
    Obs.Results.write ~append:true ~schema:results_schema ~path:results_path ()
  in
  List.iter Obs.Results.add prior;
  n

let run ~scale =
  let s = setup ~scale in
  let points = sweep_points s in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Open-loop load: %s arrivals, %d clients, %d requests/point, \
            SLO p99 <= %s"
           s.s_process s.s_clients s.s_requests
           (Units.seconds_to_string s.s_slo_s))
      ~columns:
        [ "offered/s"; "achieved/s"; "goodput"; "shed"; "p50"; "p99"; "p999";
          "knee" ]
  in
  List.iter
    (fun (p : Load.Sweep.point) ->
      let r = p.Load.Sweep.p_result in
      Table.add_row tbl
        [
          Printf.sprintf "%.1f" p.Load.Sweep.p_rate;
          Printf.sprintf "%.1f" r.Load.Driver.r_achieved_rate;
          Units.bytes_to_string (int_of_float r.Load.Driver.r_goodput_Bps) ^ "/s";
          string_of_int r.Load.Driver.r_shed;
          Units.seconds_to_string p.Load.Sweep.p_p50;
          Units.seconds_to_string p.Load.Sweep.p_p99;
          Units.seconds_to_string p.Load.Sweep.p_p999;
          (if p.Load.Sweep.p_knee then "<- knee"
           else if p.Load.Sweep.p_violates then "over"
           else "");
        ])
    points;
  let n = write_rows (List.map (row_of s) points) in
  Table.add_note tbl
    (Printf.sprintf
       "closed-loop capacity %.1f req/s (calibration); %d row(s) in %s"
       s.s_cal.cap_rps n results_path);
  Table.print tbl
