open Ccpfs_util
open Ccpfs

type result = {
  pio : float;
  f : float;
  bytes : int;
  bandwidth : float;
  locking : float;
  cache_io : float;
  lock_stats : Seqdlm.Lock_server.stats;
  ops : int;
}

let pp_result ppf r =
  Format.fprintf ppf "pio=%s f=%s bw=%s locking=%s"
    (Units.seconds_to_string r.pio)
    (Units.seconds_to_string r.f)
    (Units.bandwidth_to_string r.bandwidth)
    (Units.seconds_to_string r.locking)

let collect cl ~pio ~f =
  let bytes = Cluster.total_bytes_written cl in
  {
    pio;
    f;
    bytes;
    bandwidth = (if pio > 0. then float_of_int bytes /. pio else 0.);
    locking = Cluster.total_locking_seconds cl;
    cache_io = Cluster.total_cache_seconds cl;
    lock_stats = Cluster.sum_lock_stats cl;
    ops =
      (let n = ref 0 in
       for i = 0 to Cluster.n_clients cl - 1 do
         n := !n + Client.ops (Cluster.client cl i)
       done;
       !n);
  }

type spawn = int -> string -> (Client.t -> unit) -> unit

(* One machine-readable row per measured run (BENCH_experiments.json);
   the experiment id / scale were stamped on Obs.Hub by the driver. *)
let result_row cl ~run_id ~servers ~clients r =
  let s : Seqdlm.Lock_server.stats = r.lock_stats in
  let open Obs.Json in
  Obj
    [
      ("experiment", Str (Obs.Hub.experiment ()));
      ("scale", Float (Obs.Hub.scale ()));
      ("run", Int run_id);
      ("servers", Int servers);
      ("clients", Int clients);
      ("pio_s", Float r.pio);
      ("f_s", Float r.f);
      ("bytes", Int r.bytes);
      ("bandwidth_Bps", Float r.bandwidth);
      ("locking_s", Float r.locking);
      ("cache_io_s", Float r.cache_io);
      ("ops", Int r.ops);
      ( "lock_stats",
        Obj
          [
            ("grants", Int s.grants);
            ("early_grants", Int s.early_grants);
            ("early_revocations", Int s.early_revocations);
            ("revokes_sent", Int s.revokes_sent);
            ("upgrades", Int s.upgrades);
            ("downgrades", Int s.downgrades);
            ("releases", Int s.releases);
            ("expansions", Int s.expansions);
            ("revocation_wait_s", Float s.revocation_wait);
            ("release_wait_s", Float s.release_wait);
            ("max_queue", Int s.max_queue);
          ] );
      ("metrics", Obs.Metrics.to_json (Dessim.Engine.metrics (Cluster.engine cl)));
    ]

let run_custom ?params ?config ?policy ~servers ~clients setup k =
  let last_run_id = ref 0 in
  let one_pass () =
    let cl = Cluster.create ?params ?config ?policy ~n_servers:servers
        ~n_clients:clients ()
    in
    let eng = Cluster.engine cl in
    (* The sink label uses the run counter before it advances, so the
       viewer's process name and the result row's "run" field agree. *)
    (match Obs.Hub.new_sink () with
    | Some sink -> Dessim.Engine.set_trace_sink eng sink
    | None -> ());
    last_run_id := Obs.Hub.next_run_id ();
    Obs.Metrics.enable (Dessim.Engine.metrics eng);
    if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
    (* PIO ends when the last application process finishes; lock-cancel
       flushing still running then is background work the application
       never sees, charged to the F phase. *)
    let writers_done = ref 0. in
    let spawn i name body =
      Cluster.spawn_client cl i ~name (fun c ->
          body c;
          if Cluster.now cl > !writers_done then writers_done := Cluster.now cl)
    in
    setup cl spawn;
    Check.Sanitize.run_cluster cl;
    let pio = !writers_done in
    Cluster.fsync_all cl;
    let f = Cluster.now cl -. pio in
    Cluster.check_invariants cl;
    if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
    (cl, pio, f)
  in
  let cl, pio, f =
    if Check.Sanitize.determinism_enabled () then begin
      (* The simulator must be a pure function of the scenario: build
         and run the whole world twice and compare event streams. *)
      let result = ref None in
      ignore
        (Check.Determinism.check ~name:"harness" (fun () ->
             let (cl, _, _) as r = one_pass () in
             result := Some r;
             Cluster.engine cl));
      Option.get !result
    end
    else one_pass ()
  in
  let r = collect cl ~pio ~f in
  (* In determinism mode one_pass ran twice but only the kept pass is a
     measurement: exactly one row per logical run. *)
  Obs.Results.add (result_row cl ~run_id:!last_run_id ~servers ~clients r);
  k cl r

let run_streams ?params ?config ?policy ?mode ?lock_whole_range
    ?(stripe_size = Units.mib) ~servers ~stripes ~streams () =
  run_custom ?params ?config ?policy ~servers ~clients:(Array.length streams)
    (fun _cl spawn ->
      Array.iteri
        (fun i (path, accesses) ->
          spawn i (Printf.sprintf "w%d" i) (fun c ->
              let layout = Layout.v ~stripe_size ~stripe_count:stripes () in
              let f = Client.open_file c ~create:true ~layout path in
              List.iter
                (fun (a : Workloads.Access.t) ->
                  Client.write ?mode ?lock_whole_range c f ~off:a.off ~len:a.len)
                accesses))
        streams)
    (fun _ r -> r)

let scaled ~scale n =
  max 1 (int_of_float (Float.round (float_of_int n *. scale)))

let speedup a b = Printf.sprintf "%.1fx" (a /. b)
