(** Lock-namespace sharding capstone (DESIGN.md §15): pairwise PW
    contention over many stripes pushed through 1/2/4/8 lock servers at
    512 clients, with at least one epoch-fenced live migration (forced
    rehoming + the queue-depth rebalancer) under every multi-server
    run.  Appends one row per server count to [BENCH_shard.json]
    (schema [ccpfs.shard/1]).  [CCPFS_SHARD_SERVERS] (comma-separated),
    [CCPFS_SHARD_CLIENTS] and [CCPFS_SHARD_STRIPES] override the sweep
    — CI's shard-smoke job runs servers "1,2" at 32 clients. *)

val run : scale:float -> unit
