open Ccpfs_util

let clients = 16

let run_conflicting ~policy ~mode ~xfer ~writes_each =
  let streams =
    Array.init clients (fun _ ->
        ( "/conflict",
          List.init writes_each (fun _ -> { Workloads.Access.off = 0; len = xfer })
        ))
  in
  Harness.run_streams ~policy ~mode ~lock_whole_range:true ~servers:1 ~stripes:1
    ~streams ()

let run ~scale =
  let writes_each = Harness.scaled ~scale 4000 in
  let total_writes = clients * writes_each in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 18(a): lock-resource throughput under contention (16 clients x %d writes)"
           writes_each)
      ~columns:[ "write size"; "variant"; "writes/s"; "vs PW"; "locking/IO (Fig. 18b)" ]
  in
  List.iter
    (fun xfer ->
      let results =
        List.map
          (fun (label, policy, mode) ->
            let r = run_conflicting ~policy ~mode ~xfer ~writes_each in
            (label, r))
          [
            ("PW", Seqdlm.Policy.without_early_revocation Seqdlm.Policy.seqdlm,
             Seqdlm.Mode.PW);
            ("PW+ER", Seqdlm.Policy.seqdlm, Seqdlm.Mode.PW);
            ("NBW", Seqdlm.Policy.without_early_revocation Seqdlm.Policy.seqdlm,
             Seqdlm.Mode.NBW);
            ("NBW+ER", Seqdlm.Policy.seqdlm, Seqdlm.Mode.NBW);
          ]
      in
      let pw_tp =
        match results with
        | ("PW", r) :: _ -> float_of_int total_writes /. r.Harness.pio
        | rs ->
            Ccpfs.Protocol_error.fail ~endpoint:"exp_fig18"
              ~request:"PW baseline first in variant results"
              ~got:
                (match rs with
                | [] -> "empty result list"
                | (label, _) :: _ -> Printf.sprintf "head variant %S" label)
      in
      List.iter
        (fun (label, (r : Harness.result)) ->
          let tp = float_of_int total_writes /. r.pio in
          Table.add_row tbl
            [
              Units.bytes_to_string xfer;
              label;
              Printf.sprintf "%.0f" tp;
              Harness.speedup tp pw_tp;
              Printf.sprintf "%.2f" (r.locking /. Float.max 1e-9 r.cache_io);
            ])
        results)
    [ 64 * Units.kib; 256 * Units.kib; Units.mib ];
  Table.add_note tbl
    "paper: NBW(no ER) = 4.3x/30.3x over PW at 64K/1M; NBW+ER = 12.9x/40.2x; ER does not help PW";
  Table.add_note tbl
    "locking/IO ratio falls with write size for NBW (Fig. 18b)";
  Table.print tbl
