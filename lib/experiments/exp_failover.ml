open Ccpfs_util
open Ccpfs

(* Online lock-server failover under traffic (§IV-C2, made live by
   lib/ha): N clients rewrite a shared file under PW contention; a
   quarter of the way through the workload the lock server is killed
   mid-flight.  Heartbeats time out, the membership lease expires, the
   recovery coordinator regathers the lock table from the clients'
   caches and replays the extent logs behind an epoch fence, and the
   in-flight clients ride their retry loops across the outage.

   The measured quantities are the availability story the figure
   reproductions have no analogue for: the unavailability window
   (crash -> endpoints reopened), its detection and recovery halves,
   the number of RPC retries the outage cost, and a virtual-time
   throughput series whose dip makes the window visible.  Each run
   appends one row to BENCH_failover.json (schema ccpfs.failover/1). *)

let default_clients = 8

(* CI's failover-smoke job pins the client count:
   CCPFS_FAILOVER_CLIENTS=8 ccpfs_run run failover *)
let client_count () =
  match Sys.getenv_opt "CCPFS_FAILOVER_CLIENTS" with
  | None | Some "" -> default_clients
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 1 -> n
      | _ -> default_clients)

let xfer = 64 * Units.kib
let bucket_count = 24

type measurement = {
  m_clients : int;
  m_writes_each : int;
  m_ops : int;
  m_retries : int;
  m_failover : Ha.Failover.record;
  m_sim_total_s : float;
  m_completions : float list; (* virtual completion time of every write *)
}

(* One contended run with a mid-run crash.  The crash trigger is an op
   count, not a wall time, so it scales with the workload: once a
   quarter of all writes have completed, the injector kills the server
   while the remaining three quarters are in flight or queued. *)
let run_once ~clients ~writes_each =
  let one_pass () =
    let params = Netsim.Params.default in
    let cl =
      Cluster.create ~params
        ~config:(Config.with_extent_log true Config.default)
        ~reliability:(Netsim.Rpc.reliability_for params)
        ~policy:Seqdlm.Policy.seqdlm ~n_servers:1 ~n_clients:clients ()
    in
    let eng = Cluster.engine cl in
    (match Obs.Hub.new_sink () with
    | Some sink -> Dessim.Engine.set_trace_sink eng sink
    | None -> ());
    ignore (Obs.Hub.next_run_id ());
    if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
    let ha = Ha.Failover.install cl in
    let total = clients * writes_each in
    let crash_after = max 1 (total / 4) in
    let completions = ref [] in
    let done_ops = ref 0 in
    for i = 0 to clients - 1 do
      Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
          let f = Client.open_file c ~create:true "/failover" in
          (* Alternate between the shared hot range (real PW contention:
             queueing, revocations, retries across the outage) and a
             private per-client segment whose cached PW lock is still
             held when the server dies — those grants are what the
             recovery gather reinstalls. *)
          let private_off = (i + 1) * xfer in
          for k = 1 to writes_each do
            let off = if k land 1 = 0 then 0 else private_off in
            Client.write ~mode:Seqdlm.Mode.PW c f ~off ~len:xfer;
            incr done_ops;
            completions := Cluster.now cl :: !completions
          done)
    done;
    (* The injector doubles as the liveness barrier: the run cannot end
       while the failover is still in progress. *)
    let tick = Ha.Detector.period (Ha.Failover.detector ha) in
    Dessim.Engine.spawn eng ~name:"crash-injector" (fun () ->
        while !done_ops < crash_after do
          Dessim.Engine.sleep eng tick
        done;
        ignore (Ha.Failover.crash ha 0);
        while List.is_empty (Ha.Failover.records ha) do
          Dessim.Engine.sleep eng tick
        done);
    Check.Sanitize.run_cluster cl;
    Cluster.fsync_all cl;
    Cluster.check_invariants cl;
    if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
    (cl, ha, List.rev !completions)
  in
  let cl, ha, completions =
    if Check.Sanitize.determinism_enabled () then begin
      let result = ref None in
      ignore
        (Check.Determinism.check ~name:"exp_failover" (fun () ->
             let (cl, _, _) as r = one_pass () in
             result := Some r;
             Cluster.engine cl));
      Option.get !result
    end
    else one_pass ()
  in
  let record =
    match Ha.Failover.records ha with
    | [ r ] -> r
    | rs ->
        invalid_arg
          (Printf.sprintf "exp_failover: expected exactly 1 failover, got %d"
             (List.length rs))
  in
  {
    m_clients = clients;
    m_writes_each = writes_each;
    m_ops = List.length completions;
    m_retries = Cluster.total_retries cl;
    m_failover = record;
    m_sim_total_s = Cluster.now cl;
    m_completions = completions;
  }

(* Bucket the write completions into a fixed-width virtual-time series;
   the empty buckets between f_crash and f_recover are the outage. *)
let throughput_series (m : measurement) =
  let horizon = Float.max m.m_sim_total_s 1e-9 in
  let width = horizon /. float_of_int bucket_count in
  let counts = Array.make bucket_count 0 in
  List.iter
    (fun t ->
      let b = min (bucket_count - 1) (int_of_float (t /. width)) in
      counts.(b) <- counts.(b) + 1)
    m.m_completions;
  (width, counts)

let row_of (m : measurement) =
  let r = m.m_failover in
  let width, counts = throughput_series m in
  let open Obs.Json in
  Obj
    [
      ("experiment", Str "failover");
      ("scale", Float (Obs.Hub.scale ()));
      ("clients", Int m.m_clients);
      ("writes_each", Int m.m_writes_each);
      ("xfer_bytes", Int xfer);
      ("ops", Int m.m_ops);
      ("sim_total_s", Float m.m_sim_total_s);
      ("crash_s", Float r.f_crash);
      ("detect_s", Float r.f_detect);
      ("recover_s", Float r.f_recover);
      ("detect_latency_s", Float (r.f_detect -. r.f_crash));
      ("unavailability_s", Float (r.f_recover -. r.f_crash));
      ("epoch", Int r.f_epoch);
      ("retries", Int m.m_retries);
      ("reinstalled_locks", Int r.f_reinstalled);
      ("dropped_waiters", Int r.f_dropped_waiters);
      ("replayed_bytes", Int r.f_replayed_bytes);
      ("throughput_bucket_s", Float width);
      ( "throughput_ops",
        List (Array.to_list (Array.map (fun n -> Int n) counts)) );
    ]

let results_schema = "ccpfs.failover/1"
let results_path = "BENCH_failover.json"

let write_rows rows =
  let prior = Obs.Results.rows () in
  Obs.Results.clear ();
  List.iter Obs.Results.add rows;
  let n =
    Obs.Results.write ~append:true ~schema:results_schema ~path:results_path ()
  in
  List.iter Obs.Results.add prior;
  n

let run ~scale =
  let clients = client_count () in
  let writes_each = max 4 (Harness.scaled ~scale 32) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Failover: live lock-server crash under shared-file PW contention \
            (%d clients x %d writes x %s)"
           clients writes_each
           (Units.bytes_to_string xfer))
      ~columns:
        [ "clients"; "crash at"; "detect"; "recover"; "unavailable"; "retries";
          "locks back"; "ops" ]
  in
  let m = run_once ~clients ~writes_each in
  let r = m.m_failover in
  Table.add_row tbl
    [
      string_of_int m.m_clients;
      Units.seconds_to_string r.f_crash;
      Units.seconds_to_string (r.f_detect -. r.f_crash);
      Units.seconds_to_string (r.f_recover -. r.f_detect);
      Units.seconds_to_string (r.f_recover -. r.f_crash);
      string_of_int m.m_retries;
      string_of_int r.f_reinstalled;
      string_of_int m.m_ops;
    ];
  let n = write_rows [ row_of m ] in
  let _, counts = throughput_series m in
  let dip =
    Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 counts
  in
  Table.add_note tbl
    (Printf.sprintf
       "detect/recover are the two halves of the unavailability window; %d of \
        %d throughput buckets empty during the outage; %d row(s) in %s"
       dip bucket_count n results_path);
  Table.print tbl
