open Ccpfs_util
open Ccpfs

let upgrading ~policy ~mode ~ops ~xfer =
  Harness.run_custom ~policy ~servers:1 ~clients:1
    (fun _cl spawn ->
      spawn 0 "rw" (fun c ->
          let f = Client.open_file c ~create:true "/mix" in
          for k = 0 to ops - 1 do
            if k mod 2 = 0 then Client.write ~mode c f ~off:0 ~len:xfer
            else ignore (Client.read c f ~off:0 ~len:xfer)
          done))
    (fun _ r -> r)

let downgrading ~policy ~mode ~writes_each ~xfer =
  let clients = 16 in
  let stripe_size = Units.mib in
  Harness.run_custom ~policy ~servers:2 ~clients
    (fun _cl spawn ->
      let layout = Layout.v ~stripe_size ~stripe_count:2 () in
      for i = 0 to clients - 1 do
        spawn i (Printf.sprintf "w%d" i) (fun c ->
            let f = Client.open_file c ~create:true ~layout "/span" in
            (* every write straddles the stripe boundary *)
            let off = stripe_size - (xfer / 2) in
            for _ = 1 to writes_each do
              Client.write ?mode c f ~off ~len:xfer
            done)
      done)
    (fun _ r -> r)

let run ~scale =
  let ops = Harness.scaled ~scale 1000 in
  let xfer = 64 * Units.kib in
  let tbl_a =
    Table.create
      ~title:
        (Printf.sprintf "Fig. 19(a): lock upgrading (%d interleaved reads/writes)"
           ops)
      ~columns:[ "variant"; "ops/s"; "server grants"; "upgrades" ]
  in
  List.iter
    (fun (label, policy, mode) ->
      let r = upgrading ~policy ~mode ~ops ~xfer in
      Table.add_row tbl_a
        [
          label;
          Printf.sprintf "%.0f" (float_of_int ops /. r.Harness.pio);
          string_of_int r.lock_stats.grants;
          string_of_int r.lock_stats.upgrades;
        ])
    [
      ("PW", Seqdlm.Policy.seqdlm, Seqdlm.Mode.PW);
      ("NBW+U", Seqdlm.Policy.seqdlm, Seqdlm.Mode.NBW);
      ("NBW (no conversion)", Seqdlm.Policy.without_conversion Seqdlm.Policy.seqdlm,
       Seqdlm.Mode.NBW);
    ];
  Table.add_note tbl_a
    "paper: NBW+U upgrades once then matches PW; NBW without conversion thrashes";
  Table.print tbl_a;

  let writes_each = Harness.scaled ~scale 500 in
  let tbl_b =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 19(b): lock downgrading (16 clients, writes spanning 2 stripes, %d each)"
           writes_each)
      ~columns:[ "write size"; "variant"; "writes/s"; "vs PW"; "downgrades" ]
  in
  List.iter
    (fun xfer ->
      let results =
        List.map
          (fun (label, policy, mode) ->
            (label, downgrading ~policy ~mode ~writes_each ~xfer))
          [
            ("PW", Seqdlm.Policy.without_conversion Seqdlm.Policy.seqdlm,
             Some Seqdlm.Mode.PW);
            ("BW-D", Seqdlm.Policy.without_conversion Seqdlm.Policy.seqdlm, None);
            ("BW+D", Seqdlm.Policy.seqdlm, None);
          ]
      in
      let pw_tp =
        match results with
        | ("PW", r) :: _ -> float_of_int (16 * writes_each) /. r.Harness.pio
        | rs ->
            Protocol_error.fail ~endpoint:"exp_fig19"
              ~request:"PW baseline first in variant results"
              ~got:
                (match rs with
                | [] -> "empty result list"
                | (label, _) :: _ -> Printf.sprintf "head variant %S" label)
      in
      List.iter
        (fun (label, (r : Harness.result)) ->
          let tp = float_of_int (16 * writes_each) /. r.pio in
          Table.add_row tbl_b
            [
              Units.bytes_to_string xfer;
              label;
              Printf.sprintf "%.0f" tp;
              Harness.speedup tp pw_tp;
              string_of_int r.lock_stats.downgrades;
            ])
        results)
    [ 64 * Units.kib; Units.mib ];
  Table.add_note tbl_b
    "paper: BW+D = 2.48x/9.40x over PW at 64K/1M; BW-D ~ PW";
  Table.print tbl_b
