(** The rule catalogue.  Each rule is grounded in a bug class this repo
    has actually shipped (DESIGN.md section 12 cross-references the PRs);
    the L-rules police the suppression mechanism itself and cannot be
    suppressed. *)

type t = {
  id : string;
  title : string;
  rationale : string;  (** motivating shipped bug + the prescribed fix *)
}

val all : t list
val known : string -> bool
val find : string -> t option
