val render : ?explain:bool -> Diagnostic.report -> string
(** The full text report: one [file:line:col: \[RULE\] message] line per
    finding (sorted), a per-rule summary, the justified-suppression
    list, and with [~explain:true] the rationale of each fired rule. *)
