(** The cmt-walking analyzer.

    Loads dune-produced [.cmt] files, reconstructs typing environments
    from their summaries (over the load paths the compiler recorded) and
    walks each implementation's typedtree, firing the {!Rules.all}
    checks.  Findings suppressed by an in-scope
    [\[@lint.allow "RULE justification"\]] become {!Diagnostic.suppression}
    records instead; malformed or unused suppressions are L-rule
    findings. *)

val find_cmts : string list -> string list
(** All [.cmt] files under the given files/directories, sorted. *)

val run : cmt_files:string list -> Diagnostic.report
(** Analyze the given cmt files.  Initializes the compiler load path
    from the cmts' recorded paths (resolved against ./, ../ and ../../
    so it works both from the build root and from test directories). *)

val run_roots : string list -> Diagnostic.report
(** [run ~cmt_files:(find_cmts roots)]. *)
