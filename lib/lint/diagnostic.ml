type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type suppression = {
  s_rule : string;
  s_file : string;
  s_line : int;
  s_justification : string;
}

type report = {
  findings : finding list;
  suppressions : suppression list;
  files_scanned : int;
}

(* The lint's own output must be deterministic: every report is sorted on
   a total key before anything is printed or compared. *)
let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let compare_suppression a b =
  match String.compare a.s_file b.s_file with
  | 0 -> (
      match Int.compare a.s_line b.s_line with
      | 0 -> (
          match String.compare a.s_rule b.s_rule with
          | 0 -> String.compare a.s_justification b.s_justification
          | c -> c)
      | c -> c)
  | c -> c

let sorted_report ~files_scanned ~findings ~suppressions =
  {
    findings = List.sort_uniq compare_finding findings;
    suppressions = List.sort_uniq compare_suppression suppressions;
    files_scanned;
  }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let pp_suppression ppf s =
  Format.fprintf ppf "%s:%d: [%s] allowed: %s" s.s_file s.s_line s.s_rule
    s.s_justification
