(* Typedtree-based determinism & protocol lint.

   The analyzer loads dune-produced .cmt files (compiler-libs), rebuilds
   typing environments from their summaries (Envaux over the recorded
   load paths) and walks every implementation with a Tast_iterator,
   firing the rules in Rules.all.  Suppression is scoped and justified:
   an expression or let-binding carrying
     [@lint.allow "D001 <why this site is exempt>"]
   allows findings of that one rule inside its subtree, records the
   justification in the report, and is itself checked (unknown rule,
   missing justification and unused suppressions are findings). *)

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Path normalization                                                 *)

(* Dune wrapped-library units are named Lib__Module, so the same value
   reaches the typedtree as either "Ccpfs.Meta_server.resp" (through the
   alias module) or "Ccpfs__Meta_server.resp" (directly).  Treating "__"
   as a module separator makes both spell the same component list. *)
let split_components name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  String.split_on_char '.' (Buffer.contents buf)
  |> List.filter (fun s -> s <> "")

let path_components p = split_components (Path.name p)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let last2_name comps = String.concat "." (last_n 2 comps)

(* ------------------------------------------------------------------ *)
(* Rule tables                                                        *)

let d001_idents =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "Hashtbl.hash"; "Hashtbl.hash_param";
  ]

let d003_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Unix.localtime";
    "Unix.gmtime" ]

let p001_rpc_entries = [ "Rpc.call"; "Rpc.call_reliable"; "Rpc.call_fenced" ]

let p001_reply_types =
  [
    "Meta_server.resp"; "Data_server.io_resp"; "Rpc.attempt";
    "Types.server_msg"; "Types.ctl_msg";
  ]

let p002_operators = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare"; "min"; "max" ]

let immediate_toplevel =
  [
    "int"; "char"; "bool"; "unit"; "string"; "bytes"; "float"; "int32";
    "int64"; "nativeint";
  ]

(* Built-in site allowlists (everything else goes through [@lint.allow]):
   D002 — Ccpfs_util.Det_random is the one module allowed to seed and
   drive Stdlib.Random; D003 — bench/ measures host time on purpose. *)
let normalize_file f = String.map (fun c -> if c = '\\' then '/' else c) f

let d002_file_allowed file = Filename.basename file = "det_random.ml"

let d003_file_allowed file =
  let file = normalize_file file in
  String.length file >= 6
  && (String.sub file 0 6 = "bench/"
     ||
     let rec has_sub i =
       i + 7 <= String.length file
       && (String.sub file i 7 = "/bench/" || has_sub (i + 1))
     in
     has_sub 0)

(* ------------------------------------------------------------------ *)
(* Analysis context                                                   *)

type frame = {
  f_rule : string;
  f_just : string;
  f_file : string;
  f_line : int;
  mutable f_hits : int;
}

type ctx = {
  mutable findings : Diagnostic.finding list;
  mutable suppressions : Diagnostic.suppression list;
  mutable stack : frame list;
  (* rhs expressions of arms of a reply-typed match, pending their P001
     check when the walk reaches them (so their own attributes are in
     scope first) *)
  mutable reply_arms : Typedtree.expression list;
  mutable fallback_env : Env.t;
}

let loc_file_line_col (loc : Location.t) =
  let p = loc.loc_start in
  (normalize_file p.pos_fname, p.pos_lnum, p.pos_cnum - p.pos_bol)

let add_finding ctx ~rule ~loc message =
  let file, line, col = loc_file_line_col loc in
  ctx.findings <- { Diagnostic.rule; file; line; col; message } :: ctx.findings

let allowed ctx rule =
  match List.find_opt (fun f -> f.f_rule = rule) ctx.stack with
  | None -> false
  | Some f ->
      f.f_hits <- f.f_hits + 1;
      ctx.suppressions <-
        {
          Diagnostic.s_rule = rule;
          s_file = f.f_file;
          s_line = f.f_line;
          s_justification = f.f_just;
        }
        :: ctx.suppressions;
      true

(* ------------------------------------------------------------------ *)
(* [@lint.allow] parsing                                              *)

let attr_string_payload (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Returns the frames opened by [attrs]; malformed suppressions become
   L-findings instead of frames. *)
let frames_of_attributes ctx (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (attr : Parsetree.attribute) ->
      if attr.attr_name.txt <> "lint.allow" then None
      else
        let loc = attr.attr_loc in
        match attr_string_payload attr with
        | None ->
            add_finding ctx ~rule:"L001" ~loc
              "[@lint.allow] payload must be a string: \"<RULE> \
               <justification>\"";
            None
        | Some s -> (
            match split_ws s with
            | [] ->
                add_finding ctx ~rule:"L001" ~loc
                  "[@lint.allow] is empty; expected \"<RULE> \
                   <justification>\"";
                None
            | rule :: rest ->
                let rule =
                  match String.index_opt rule ':' with
                  | Some i -> String.sub rule 0 i
                  | None -> rule
                in
                if not (Rules.known rule) then begin
                  add_finding ctx ~rule:"L000" ~loc
                    (Printf.sprintf "[@lint.allow %S] names unknown rule %s"
                       s rule);
                  None
                end
                else if String.length rule > 0 && rule.[0] = 'L' then begin
                  add_finding ctx ~rule:"L000" ~loc
                    (Printf.sprintf
                       "rule %s polices the suppression mechanism and \
                        cannot itself be suppressed"
                       rule);
                  None
                end
                else if rest = [] then begin
                  add_finding ctx ~rule:"L001" ~loc
                    (Printf.sprintf
                       "[@lint.allow \"%s\"] carries no justification" rule);
                  None
                end
                else
                  let file, line, _ = loc_file_line_col loc in
                  Some
                    {
                      f_rule = rule;
                      f_just = String.concat " " rest;
                      f_file = file;
                      f_line = line;
                      f_hits = 0;
                    }))
    attrs

let push_frames ctx frames = ctx.stack <- frames @ ctx.stack

let pop_frames ctx frames =
  List.iter
    (fun f ->
      if f.f_hits = 0 then
        ctx.findings <-
          {
            Diagnostic.rule = "L002";
            file = f.f_file;
            line = f.f_line;
            col = 0;
            message =
              Printf.sprintf
                "[@lint.allow \"%s %s\"] suppresses nothing; delete it"
                f.f_rule f.f_just;
          }
          :: ctx.findings)
    frames;
  ctx.stack <-
    List.filter (fun f -> not (List.memq f frames)) ctx.stack

(* ------------------------------------------------------------------ *)
(* Typing environments                                                *)

let resolve_env ctx (env : Env.t) =
  try Envaux.env_of_only_summary env with _ -> ctx.fallback_env

let expand ctx env ty =
  let env = resolve_env ctx env in
  (env, try Ctype.expand_head env ty with _ -> ty)

(* ------------------------------------------------------------------ *)
(* P002: structural scan for floats / functions / mutable fields      *)

let rec first_some f = function
  | [] -> None
  | x :: rest -> ( match f x with Some _ as r -> r | None -> first_some f rest)

let rec offending_component env seen depth ty : string option =
  if depth > 8 then None
  else
    let ty = try Ctype.expand_head env ty with _ -> ty in
    match Types.get_desc ty with
    | Tarrow _ -> Some "a function"
    | Ttuple l -> first_some (offending_component env seen (depth + 1)) l
    | Tconstr (p, args, _) -> (
        let name = Path.name p in
        if name = "float" then Some "a float"
        else if name = "array" then Some "an array (mutable)"
        else if
          List.mem name
            [ "int"; "char"; "bool"; "unit"; "string"; "bytes"; "int32";
              "int64"; "nativeint"; "exn" ]
        then None
        else if SS.mem name !seen then None
        else begin
          seen := SS.add name !seen;
          let of_label (ld : Types.label_declaration) =
            if ld.ld_mutable = Asttypes.Mutable then
              Some (Printf.sprintf "mutable field %s" (Ident.name ld.ld_id))
            else offending_component env seen (depth + 1) ld.ld_type
          in
          let from_decl =
            match Env.find_type p env with
            | exception _ -> None
            | decl -> (
                match decl.type_kind with
                | Type_record (lds, _) -> first_some of_label lds
                | Type_variant (cds, _) ->
                    first_some
                      (fun (cd : Types.constructor_declaration) ->
                        match cd.cd_args with
                        | Cstr_tuple tys ->
                            first_some
                              (offending_component env seen (depth + 1))
                              tys
                        | Cstr_record lds -> first_some of_label lds)
                      cds
                | Type_abstract | Type_open -> (
                    match decl.type_manifest with
                    | Some t -> offending_component env seen (depth + 1) t
                    | None -> None))
          in
          match from_decl with
          | Some _ as r -> r
          | None -> first_some (offending_component env seen (depth + 1)) args
        end)
    | _ -> None

(* Bare base types (including bare float) are out of scope: the rule
   targets compound protocol types, not `x = 0.0`. *)
let p002_offense ctx (arg : Typedtree.expression) =
  let env, ty = expand ctx arg.exp_env arg.exp_type in
  match Types.get_desc ty with
  | Tconstr (p, _, _) when List.mem (Path.name p) immediate_toplevel -> None
  | Tvar _ | Tunivar _ -> None
  | _ ->
      offending_component env (ref SS.empty) 0 ty
      |> Option.map (fun reason ->
             let tystr =
               try Format.asprintf "%a" Printtyp.type_expr arg.exp_type
               with _ -> "<type>"
             in
             (reason, tystr))

(* ------------------------------------------------------------------ *)
(* Expression shape helpers                                           *)

let ident_path (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let is_assert_false (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_assert (inner, _) -> (
      match inner.exp_desc with
      | Texp_construct (_, cd, []) -> cd.cstr_name = "false"
      | _ -> false)
  | _ -> false

let failwith_like (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match ident_path f with
      | Some p -> (
          match path_components p with
          | [ "Stdlib"; (("failwith" | "invalid_arg") as fn) ] -> Some fn
          | _ -> None)
      | None -> None)
  | _ -> None

(* Is [scrut] the direct result of an Rpc call entry point? *)
let scrutinee_is_rpc_call (scrut : Typedtree.expression) =
  let rec head (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (f, _) -> ident_path f
    | Texp_match (_, _, _) | Texp_sequence _ -> None
    | Texp_letmodule (_, _, _, _, body) -> head body
    | Texp_let (_, _, body) -> head body
    | _ -> None
  in
  match head scrut with
  | Some p -> List.mem (last2_name (path_components p)) p001_rpc_entries
  | None -> false

let scrutinee_is_reply_typed ctx (scrut : Typedtree.expression) =
  let _, ty = expand ctx scrut.exp_env scrut.exp_type in
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
      List.mem (last2_name (path_components p)) p001_reply_types
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-expression rule checks                                         *)

let check_ident ctx (e : Typedtree.expression) p =
  let comps = path_components p in
  let last2 = last2_name comps in
  if List.mem last2 d001_idents then begin
    if not (allowed ctx "D001") then
      add_finding ctx ~rule:"D001" ~loc:e.exp_loc
        (Printf.sprintf
           "%s iterates in hash-bucket order, which is not deterministic \
            under randomized hashing; iterate sorted keys \
            (Ccpfs_util.Det_tbl) or justify with [@lint.allow \"D001 \
            ...\"]"
           last2)
  end
  else begin
    let file, _, _ = loc_file_line_col e.exp_loc in
    (* module components = everything but the value name itself *)
    let rec module_comps = function [] | [ _ ] -> [] | c :: r -> c :: module_comps r in
    let is_random = List.mem "Random" (module_comps comps) in
    if is_random then begin
      if not (d002_file_allowed file || allowed ctx "D002") then
        add_finding ctx ~rule:"D002" ~loc:e.exp_loc
          (Printf.sprintf
             "%s draws from ambient random state; derive the stream from \
              Ccpfs_util.Det_random or Engine.random_float so runs replay"
             (String.concat "." comps))
    end
    else if List.mem last2 d003_idents then
      if not (d003_file_allowed file || allowed ctx "D003") then
        add_finding ctx ~rule:"D003" ~loc:e.exp_loc
          (Printf.sprintf
             "%s reads host time; simulation logic must use Engine.now \
              (bench/ is exempt, deliberate wall-clock measurement needs \
              [@lint.allow \"D003 ...\"])"
             last2)
  end

let check_apply ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match ident_path f with
      | Some p -> (
          match path_components p with
          | [ "Stdlib"; op ] when List.mem op p002_operators -> (
              let first_arg =
                List.find_map
                  (function
                    | (Asttypes.Nolabel, Some (a : Typedtree.expression)) ->
                        Some a
                    | _ -> None)
                  args
              in
              match first_arg with
              | None -> ()
              | Some arg -> (
                  match p002_offense ctx arg with
                  | None -> ()
                  | Some (reason, tystr) ->
                      if not (allowed ctx "P002") then
                        add_finding ctx ~rule:"P002" ~loc:e.exp_loc
                          (Printf.sprintf
                             "polymorphic (%s) on type %s, which contains \
                              %s; write a field-wise comparison naming \
                              the intended key"
                             op tystr reason)))
          | _ -> ())
      | None -> ())
  | _ -> ()

let check_match ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_match (scrut, cases, _) ->
      if scrutinee_is_rpc_call scrut || scrutinee_is_reply_typed ctx scrut
      then
        List.iter
          (fun (c : Typedtree.computation Typedtree.case) ->
            ctx.reply_arms <- c.c_rhs :: ctx.reply_arms)
          cases
  | _ -> ()

let check_reply_arm ctx (e : Typedtree.expression) =
  if List.memq e ctx.reply_arms then begin
    ctx.reply_arms <- List.filter (fun a -> not (a == e)) ctx.reply_arms;
    let offense =
      if is_assert_false e then Some "assert false"
      else Option.map (fun f -> f ^ " _") (failwith_like e)
    in
    match offense with
    | Some what ->
        if not (allowed ctx "P001") then
          add_finding ctx ~rule:"P001" ~loc:e.exp_loc
            (Printf.sprintf
               "RPC-reply match arm is `%s`; raise Ccpfs.Protocol_error \
                with the endpoint, request and offending reply \
                (Protocol_error.fail) instead"
               what)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* The walk                                                           *)

let iterator ctx =
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    let frames = frames_of_attributes ctx e.exp_attributes in
    push_frames ctx frames;
    check_reply_arm ctx e;
    (match ident_path e with Some p -> check_ident ctx e p | None -> ());
    check_apply ctx e;
    check_match ctx e;
    default_iterator.expr sub e;
    pop_frames ctx frames
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let frames = frames_of_attributes ctx vb.vb_attributes in
    push_frames ctx frames;
    default_iterator.value_binding sub vb;
    pop_frames ctx frames
  in
  { default_iterator with expr; value_binding }

(* ------------------------------------------------------------------ *)
(* cmt loading and the driver                                         *)

let rec find_cmts_under acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> find_cmts_under acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let find_cmts roots =
  List.fold_left find_cmts_under [] roots |> List.sort_uniq String.compare

(* Load-path entries recorded in a cmt are as the compiler saw them —
   often relative to the build root.  The lint may run from the build
   root (the @lint alias) or a subdirectory (the test suite), so resolve
   each entry against a few candidate bases and keep what exists. *)
let resolve_loadpath_entry entry =
  if Filename.is_relative entry then
    List.find_opt Sys.file_exists
      [
        entry;
        Filename.concat ".." entry;
        Filename.concat (Filename.concat ".." "..") entry;
      ]
  else if Sys.file_exists entry then Some entry
  else None

let init_load_path cmts =
  let dirs =
    List.fold_left
      (fun acc cmt ->
        let acc = SS.add (Filename.dirname cmt) acc in
        match Cmt_format.read_cmt cmt with
        | exception _ -> acc
        | infos ->
            List.fold_left
              (fun acc entry ->
                match resolve_loadpath_entry entry with
                | Some d -> SS.add d acc
                | None -> acc)
              acc infos.cmt_loadpath)
      SS.empty cmts
  in
  let dirs = Config.standard_library :: SS.elements dirs in
  Load_path.init ~auto_include:Load_path.no_auto_include dirs;
  Envaux.reset_cache ()

let analyze_structure ctx (str : Typedtree.structure) =
  let it = iterator ctx in
  it.structure it str

let run ~cmt_files =
  init_load_path cmt_files;
  let ctx =
    {
      findings = [];
      suppressions = [];
      stack = [];
      reply_arms = [];
      fallback_env = Env.empty;
    }
  in
  let scanned = ref 0 in
  List.iter
    (fun cmt ->
      match Cmt_format.read_cmt cmt with
      | exception _ -> ()
      | infos -> (
          match infos.cmt_annots with
          | Implementation str ->
              incr scanned;
              ctx.fallback_env <-
                (try Envaux.env_of_only_summary infos.cmt_initial_env
                 with _ -> Env.empty);
              ctx.reply_arms <- [];
              analyze_structure ctx str
          | _ -> ()))
    cmt_files;
  Diagnostic.sorted_report ~files_scanned:!scanned ~findings:ctx.findings
    ~suppressions:ctx.suppressions

let run_roots roots = run ~cmt_files:(find_cmts roots)
