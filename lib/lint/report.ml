let render ?(explain = false) (r : Diagnostic.report) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun f -> Format.fprintf ppf "%a@." Diagnostic.pp_finding f)
    r.findings;
  if r.findings <> [] then Format.fprintf ppf "@.";
  let by_rule =
    List.fold_left
      (fun acc (f : Diagnostic.finding) ->
        let n = try List.assoc f.rule acc with Not_found -> 0 in
        (f.rule, n + 1) :: List.remove_assoc f.rule acc)
      [] r.findings
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.fprintf ppf "lint: %d file%s scanned, %d finding%s, %d suppression%s@."
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.suppressions)
    (if List.length r.suppressions = 1 then "" else "s");
  List.iter
    (fun (rule, n) ->
      let title =
        match Rules.find rule with Some r -> r.title | None -> "?"
      in
      Format.fprintf ppf "  %s: %d (%s)@." rule n title)
    by_rule;
  if r.suppressions <> [] then begin
    Format.fprintf ppf "@.Allowed sites (each carries its justification):@.";
    List.iter
      (fun s -> Format.fprintf ppf "  %a@." Diagnostic.pp_suppression s)
      r.suppressions
  end;
  if explain && by_rule <> [] then begin
    Format.fprintf ppf "@.Rules:@.";
    List.iter
      (fun (rule, _) ->
        match Rules.find rule with
        | Some r ->
            Format.fprintf ppf "  %s — %s@.    %a@." r.id r.title
              Format.pp_print_text r.rationale
        | None -> ())
      by_rule
  end;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
