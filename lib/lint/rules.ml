type t = { id : string; title : string; rationale : string }

let all =
  [
    {
      id = "D001";
      title = "order-sensitive Hashtbl traversal";
      rationale =
        "Hashtbl.iter/fold/to_seq (and Hashtbl.hash-keyed folds) visit \
         entries in hash-bucket order, which varies under randomized \
         hashing and across processes.  PR 4 hand-fixed three shipped \
         nondeterminism bugs of exactly this class (client-cache flush \
         tie-break, data-server stripe sweeps, client group_by_stripe).  \
         Iterate sorted keys instead (Ccpfs_util.Det_tbl), or carry \
         [@lint.allow \"D001 <why the site is order-insensitive>\"].";
    };
    {
      id = "D002";
      title = "unseeded or ambient randomness";
      rationale =
        "Stdlib.Random draws from ambient global (or self_init'd) state, \
         so two runs of the same seed diverge and fuzz failures stop \
         replaying.  All randomness must flow from an explicitly seeded \
         stream: Ccpfs_util.Det_random (the one file allowed to touch \
         Stdlib.Random) or Dessim.Engine.random_float.";
    };
    {
      id = "D003";
      title = "wall-clock / OS time read";
      rationale =
        "Unix.gettimeofday, Unix.time and Sys.time read host time, which \
         differs on every run; simulation logic must use Engine.now.  \
         Only bench/ (host-time measurement is its purpose) is exempt; a \
         deliberate wall-clock benchmark elsewhere carries \
         [@lint.allow \"D003 <why host time is the measured quantity>\"].";
    };
    {
      id = "P001";
      title = "assert false / failwith in an RPC-reply match arm";
      rationale =
        "An unexpected reply shape is a protocol bug to diagnose, not a \
         crash: PR 2 and PR 5 converted nine shipped `| _ -> assert \
         false` reply arms into Ccpfs.Protocol_error carrying the \
         endpoint, request and offending reply.  Raise \
         Ccpfs.Protocol_error (e.g. via Protocol_error.fail) instead.";
    };
    {
      id = "P002";
      title = "polymorphic compare on a float/function/mutable-carrying type";
      rationale =
        "Structural =, <>, compare, min/max on compound types containing \
         floats (nan-breaks-reflexivity), functions (raises at runtime) \
         or mutable fields (compares a moment, not an identity) is how \
         protocol state sneaks nondeterministic or crashing comparisons \
         in.  Write a field-wise comparison naming the intended key.";
    };
    {
      id = "L000";
      title = "lint.allow names an unknown rule";
      rationale =
        "A suppression that misspells its rule id silently allows \
         nothing; the attribute must name an existing rule.";
    };
    {
      id = "L001";
      title = "lint.allow without a justification";
      rationale =
        "Every suppression is a reviewed exception: the attribute \
         payload is \"<RULE> <justification>\", and the justification \
         must be non-empty.";
    };
    {
      id = "L002";
      title = "unused lint.allow";
      rationale =
        "A suppression whose scope no longer contains a finding of its \
         rule is stale and must be deleted, or the allowlist grows \
         monotonically.";
    };
  ]

let known id = List.exists (fun r -> r.id = id) all
let find id = List.find_opt (fun r -> r.id = id) all
