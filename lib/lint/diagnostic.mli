(** Lint diagnostics: findings (build-failing) and suppressions (sites
    explicitly allowed by a justified [\[@lint.allow\]] attribute). *)

type finding = {
  rule : string;  (** rule id, e.g. ["D001"] *)
  file : string;  (** source path as recorded in the cmt (build-relative) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler messages *)
  message : string;
}

type suppression = {
  s_rule : string;
  s_file : string;
  s_line : int;
  s_justification : string;  (** mandatory free text carried by the attribute *)
}

type report = {
  findings : finding list;  (** sorted by (file, line, col, rule, message) *)
  suppressions : suppression list;  (** sorted likewise *)
  files_scanned : int;
}

val compare_finding : finding -> finding -> int
val compare_suppression : suppression -> suppression -> int

val sorted_report :
  files_scanned:int ->
  findings:finding list ->
  suppressions:suppression list ->
  report
(** Deduplicate and sort, so reports are deterministic and comparable. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_suppression : Format.formatter -> suppression -> unit
