(** The case generator: one integer seed -> one {!Case.t}.

    Every choice draws from a {!Ccpfs_util.Det_random} stream created
    from the seed, in a fixed order, so [of_seed n] is a pure function —
    the property the whole replay story ([ccpfs_run fuzz --seed n],
    [CCPFS_SEED]) rests on.

    Roughly 1 in 20 cases is an {!Case.Analytic} differential check
    against Eq. (1); the rest are randomized cluster runs whose op
    streams start from the IOR shared-file patterns of {!Workloads.Ior}
    (segmented / strided) and then mix in random reads, writes, appends
    and truncates, random tight cache limits (to exercise voluntary
    flushing), random event jitter and tie-breaking (legal
    nondeterminism), and random lock-server crash+recovery points. *)

val of_seed : ?faults:bool -> int -> Case.t
(** [~faults:true] is the forcing mode behind [ccpfs_run fuzz --faults]:
    every case is a sim with nonzero message loss and at least one
    mid-phase (online) server crash.  Workload-shape draws are shared
    with the default mode, so seed [n] keeps the op streams it has
    always had — only the fault fields differ. *)

val max_block : int
(** Upper bound (pages) on any generated offset; bounds the shadow file. *)
