(** The shadow-file oracle: an in-memory model of what the shared file
    must contain, maintained from the semantic write stream and compared
    byte-for-byte against data-server contents after the final flush.

    The journal entry for a write is its client-cache insert — the
    moment the data exists under a granted lock (reported by
    {!Ccpfs.Client_cache.set_write_observer} with the lock's SN and the
    writer's op counter).  Inserts are applied to the shadow per byte
    keeping the lexicographically largest [(sn, op)]: under early grant
    a lower-SN insert can *complete* after a higher-SN conflicting write
    (the revoked holder acks immediately while the old writer is still
    blocked in cache backpressure), so completion order alone is not the
    serialization order — but SN order is, by construction, and a
    writer's own op counter orders its successive writes under one
    cached grant.  This mirrors exactly the merge rule the data servers
    apply to flushed blocks, which is why a correct cluster must match
    the shadow and a dropped, duplicated, misordered or misdirected
    flush cannot.

    Truncates are applied at their position in the journal: a truncate
    holds whole-file PW locks, which are never early-granted and force
    conflicting dirty data out first, so its completion really does
    split the write stream. *)

type entry = { writer : int; op : int; sn : int }

exception Divergence of string
(** Raised by {!check_against} with a byte-precise account. *)

type t

val create : layout:Ccpfs.Layout.t -> t

val record_write :
  t -> writer:int -> rid:int -> range:Ccpfs_util.Interval.t -> sn:int ->
  op:int -> unit
(** Journal one dirty-cache insert ([range] in object space of [rid]'s
    stripe; mapped back to file space through the layout). *)

val record_truncate : t -> size:int -> unit
(** Journal a completed truncate: all modeled bytes at file offsets
    [>= size] become holes. *)

val cap : t -> int
(** One past the highest file offset ever modeled (truncation does not
    lower it — the device must prove those bytes are gone). *)

val check_against : t -> Ccpfs.Cluster.t -> Ccpfs.Client.file -> unit
(** Compare every byte of every stripe's device contents against the
    shadow: provenance [(writer, op, sn)] must match exactly, holes
    included.  Call after [Cluster.fsync_all].
    @raise Divergence on the first mismatch. *)
