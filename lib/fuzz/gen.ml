open Ccpfs_util

let max_block = 32
let page = Units.page

let random_op rng =
  match Det_random.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
      let blocks = 1 + Det_random.int rng 6 in
      let block = Det_random.int rng (max_block - blocks + 1) in
      Case.Write { block; blocks }
  | 6 | 7 ->
      let blocks = 1 + Det_random.int rng 6 in
      let block = Det_random.int rng (max_block - blocks + 1) in
      Case.Read { block; blocks }
  | 8 -> Case.Append { blocks = 1 + Det_random.int rng 3 }
  | _ -> Case.Truncate { blocks = Det_random.int rng (max_block + 1) }

(* Per-client op lists for one phase.  Half the phases start from an IOR
   shared-file pattern (the paper's workload shapes), the rest are pure
   random mixes.  Draw order is fixed: loops, not [Array.init] (whose
   evaluation order is unspecified). *)
let gen_phase rng ~n_clients =
  let ops = Array.make n_clients [] in
  if Det_random.bool rng then begin
    let pattern =
      Det_random.pick rng
        [| Workloads.Access.N1_segmented; Workloads.Access.N1_strided |]
    in
    let xfer = (1 + Det_random.int rng 2) * page in
    let blocks = 1 + Det_random.int rng 3 in
    for rank = 0 to n_clients - 1 do
      ops.(rank) <-
        Workloads.Ior.accesses ~pattern ~nprocs:n_clients ~rank ~xfer ~blocks
        |> List.map (fun (a : Workloads.Access.t) ->
               Case.Write { block = a.off / page; blocks = a.len / page })
    done
  end;
  for i = 0 to n_clients - 1 do
    let extra =
      Det_random.int rng 5 + (if ops.(i) = [] then 1 else 0)
    in
    let acc = ref [] in
    for _ = 1 to extra do
      acc := random_op rng :: !acc
    done;
    ops.(i) <- ops.(i) @ List.rev !acc
  done;
  let crash_server = Det_random.int rng 3 = 0 in
  (ops, crash_server)

let gen_sim_params rng =
  let rtt = 5e-5 +. Det_random.float rng 4.5e-4 in
  let b_net = 1e9 +. Det_random.float rng 9e9 in
  let server_ops = 5e3 +. Det_random.float rng 2e5 in
  let b_disk = 2e8 +. Det_random.float rng 1.8e9 in
  let b_mem = 1e9 +. Det_random.float rng 9e9 in
  let client_io_overhead = Det_random.float rng 2e-5 in
  {
    Netsim.Params.rtt;
    b_net;
    server_ops;
    b_disk;
    b_mem;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead;
  }

let gen_sim ?(faults = false) seed rng =
  let params = gen_sim_params rng in
  let policy_idx = Det_random.int rng (Array.length Case.policies) in
  let stripes = Det_random.pick rng [| 1; 1; 2; 4 |] in
  let stripe_blocks = Det_random.pick rng [| 4; 8; 16 |] in
  (* Server count is drawn independently of the stripe count: with the
     sharded namespace, n_servers > stripes is a legal (if lopsided)
     deployment, and multi-server single-stripe cases are exactly where
     migrations and stale-route bounces bite. *)
  let n_servers = 1 + Det_random.int rng 4 in
  let n_clients = 1 + Det_random.int rng 4 in
  let dirty_min_blocks =
    (* Tight limits make the flush daemon and writer backpressure fire
       mid-run; generous ones keep everything dirty until fsync. *)
    if Det_random.bool rng then 8 + Det_random.int rng 56 else 4096
  in
  let dirty_max_blocks = dirty_min_blocks * 4 in
  let extent_cache_limit =
    if Det_random.int rng 4 = 0 then 16 + Det_random.int rng 112
    else Ccpfs.Config.default.extent_cache_limit
  in
  let tie_random = Det_random.bool rng in
  let jitter =
    if Det_random.int rng 3 = 0 then Det_random.float rng (2. *. params.rtt)
    else 0.
  in
  let n_phases = 1 + Det_random.int rng 3 in
  let phases = ref [] in
  for _ = 1 to n_phases do
    let ops, crash = gen_phase rng ~n_clients in
    let crash_server =
      if crash then Some (Det_random.int rng n_servers) else None
    in
    phases := { Case.ops; crash_server; crash_mid = None } :: !phases
  done;
  let phases = List.rev !phases in
  (* Online-failure draws come after everything else so a given seed
     produces the same workload shape it did before the ha layer
     existed, just with faults layered on top. *)
  let loss =
    if faults then 0.01 +. Det_random.float rng 0.07
    else if Det_random.int rng 5 = 0 then Det_random.float rng 0.05
    else 0.
  in
  let dup =
    if faults then Det_random.float rng 0.05
    else if Det_random.int rng 5 = 0 then Det_random.float rng 0.03
    else 0.
  in
  let gen_mid () =
    (* Early enough to land among in-flight requests on most cases;
       harmless (detector + recovery still run) if the phase already
       went quiescent. *)
    Some (Det_random.int rng n_servers, Det_random.float rng (200. *. params.rtt))
  in
  let phases =
    List.map
      (fun (p : Case.phase) ->
        let want = if faults then Det_random.bool rng
                   else Det_random.int rng 6 = 0 in
        if want then { p with crash_mid = gen_mid () } else p)
      phases
  in
  let phases =
    (* Forcing mode (CI fault smoke) guarantees at least one online
       crash per case. *)
    if
      faults
      && not
           (List.exists
              (fun (p : Case.phase) -> Option.is_some p.Case.crash_mid)
              phases)
    then
      match phases with
      | p :: rest -> { p with crash_mid = gen_mid () } :: rest
      | [] -> phases
    else phases
  in
  (* Batch draw is last for the same seed-stability reason as the fault
     draws above: a third of cases turn per-destination RPC batching on,
     with k spanning the flush-on-size / flush-on-timer boundary. *)
  let batch =
    if Det_random.int rng 3 = 0 then 2 + Det_random.int rng 7 else 0
  in
  (* Load draw is at the very tail (after even the batch draw) so every
     seed that existed before the open-loop generator keeps its shape.
     A quarter of cases append a short open-loop segment; the rate spans
     roughly 0.02x-0.15x of the per-request service rate 1/rtt, i.e.
     from comfortable to clearly saturating for small clusters. *)
  let load =
    if Det_random.int rng 4 = 0 then begin
      let l_process = Det_random.int rng 3 in
      let l_rate = (0.5 +. Det_random.float rng 4.) /. (30. *. params.rtt) in
      let l_requests = 4 + Det_random.int rng 21 in
      let l_cap = 1 + Det_random.int rng (2 * n_clients) in
      let span = float_of_int l_requests /. l_rate in
      let n_churn = Det_random.int rng 3 in
      let churn = ref [] in
      for _ = 1 to n_churn do
        let at = Det_random.float rng span in
        let cli = Det_random.int rng n_clients in
        let up = Det_random.bool rng in
        churn := { Case.ch_at = at; ch_client = cli; ch_up = up } :: !churn
      done;
      Some
        { Case.l_rate; l_process; l_requests; l_cap; l_churn = List.rev !churn }
    end
    else None
  in
  (* Migration draw is the very tail of the stream (the newest layer,
     after even the load draw) so every pre-sharding seed keeps its
     shape.  A fifth of cases rehome one or two stripes mid-run; the
     offsets span the window where phase traffic is typically still in
     flight. *)
  let migrations =
    if Det_random.int rng 5 = 0 then begin
      let n = 1 + Det_random.int rng 2 in
      let acc = ref [] in
      for _ = 1 to n do
        let mg_stripe = Det_random.int rng stripes in
        let mg_dst = Det_random.int rng n_servers in
        let mg_after = Det_random.float rng (500. *. params.rtt) in
        acc := { Case.mg_stripe; mg_dst; mg_after } :: !acc
      done;
      List.rev !acc
    end
    else []
  in
  {
    Case.seed;
    params;
    kind =
      Case.Sim
        {
          policy_idx;
          n_servers;
          n_clients;
          stripes;
          stripe_blocks;
          dirty_min_blocks;
          dirty_max_blocks;
          extent_cache_limit;
          tie_random;
          jitter;
          loss;
          dup;
          batch;
          phases;
          load;
          migrations;
        };
  }

(* An Eq. (1) differential case.  D is fixed at 1 MiB and RTT derived so
   the flush term ③ dominates by 25x — where the closed form is an
   accurate model of the simulated serialization (§II-C); unmodeled
   per-client costs (initial grants, control messages) stay within the
   checker's tolerance. *)
let gen_analytic seed rng =
  let b_net = 2e9 +. Det_random.float rng 1.05e10 in
  let b_disk = 5e8 +. Det_random.float rng 4.5e9 in
  let b_flush = b_net *. b_disk /. (b_net +. b_disk) in
  let d = Units.mib in
  let rtt = float_of_int d /. (25. *. b_flush) in
  let server_ops = 1e5 +. Det_random.float rng 9e5 in
  let a_clients = 2 + Det_random.int rng 7 in
  {
    Case.seed;
    params =
      {
        Netsim.Params.rtt;
        b_net;
        server_ops;
        b_disk;
        b_mem = infinity;
        ctl_msg_bytes = 128;
        bulk_threshold = 16 * 1024;
        client_io_overhead = 0.;
      };
    kind = Case.Analytic { a_clients; a_bytes = d };
  }

let of_seed ?(faults = false) seed =
  let rng = Det_random.create ~seed in
  (* The analytic-vs-sim draw happens unconditionally to keep the rng
     stream aligned; fault-forcing mode always takes the sim branch
     (there is no online-failure story for the closed-form cases). *)
  let analytic = Det_random.int rng 20 = 0 in
  if analytic && not faults then gen_analytic seed rng
  else gen_sim ~faults seed rng
