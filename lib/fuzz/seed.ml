let env_var = "CCPFS_SEED"
let default = 0x5eed

let base () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          invalid_arg (Printf.sprintf "%s=%S is not an integer" env_var s))

let from_env () =
  match Sys.getenv_opt env_var with None | Some "" -> false | Some _ -> true

let label name = Printf.sprintf "%s [%s=%d]" name env_var (base ())
(* Same stream as the historical Random.State.make call, but minted by
   Det_random so the D002 lint holds: no Stdlib.Random outside it. *)
let rand_state () = Ccpfs_util.Det_random.state_of_ints [| base (); 0x51a7e |]
