let with_sim (c : Case.t) s = { c with Case.kind = Case.Sim s }
let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let drop_phase (s : Case.sim) n = { s with phases = remove_nth s.phases n }

let drop_client (s : Case.sim) i =
  {
    s with
    n_clients = s.n_clients - 1;
    phases =
      List.map
        (fun (p : Case.phase) ->
          { p with ops = Array.of_list (remove_nth (Array.to_list p.ops) i) })
        s.phases;
  }

let edit_ops (s : Case.sim) ~phase ~client f =
  {
    s with
    phases =
      List.mapi
        (fun pi (p : Case.phase) ->
          if pi <> phase then p
          else begin
            let ops = Array.copy p.ops in
            ops.(client) <- f ops.(client);
            { p with ops }
          end)
        s.phases;
  }

let candidates (c : Case.t) =
  match c.Case.kind with
  | Case.Analytic a ->
      if a.a_clients > 2 then
        [ { c with kind = Case.Analytic { a with a_clients = 2 } } ]
      else []
  | Case.Sim s ->
      let acc = ref [] in
      let add s' = acc := with_sim c s' :: !acc in
      (* Drop the migrations first: the newest layer of the case, and a
         failure that survives without them is an ordinary (and far more
         comprehensible) sharding-free reproduction.  All at once, then
         one by one. *)
      (match s.migrations with
      | [] -> ()
      | ms ->
          add { s with migrations = [] };
          if List.length ms > 1 then
            List.iteri (fun mi _ -> add { s with migrations = remove_nth ms mi }) ms);
      (* Then the open-loop load segment: the next-newest layer, and the
         phases alone usually reproduce old failures. *)
      (match s.load with
      | Some l ->
          add { s with load = None };
          if List.length l.l_churn > 0 then
            add { s with load = Some { l with l_churn = [] } };
          if l.l_requests > 4 then
            add { s with load = Some { l with l_requests = l.l_requests / 2 } }
      | None -> ());
      (* Drop whole phases. *)
      if List.length s.phases > 1 then
        List.iteri (fun pi _ -> add (drop_phase s pi)) s.phases;
      (* Drop whole clients. *)
      if s.n_clients > 1 then
        for i = 0 to s.n_clients - 1 do
          add (drop_client s i)
        done;
      (* Halve, then single out, per-client op lists. *)
      List.iteri
        (fun pi (p : Case.phase) ->
          Array.iteri
            (fun ci ops ->
              let len = List.length ops in
              if len >= 2 then begin
                let half = len / 2 in
                add
                  (edit_ops s ~phase:pi ~client:ci (fun l ->
                       List.filteri (fun i _ -> i < half) l));
                add
                  (edit_ops s ~phase:pi ~client:ci (fun l ->
                       List.filteri (fun i _ -> i >= half) l))
              end;
              if len >= 1 then
                for oi = 0 to len - 1 do
                  add (edit_ops s ~phase:pi ~client:ci (fun l -> remove_nth l oi))
                done)
            p.ops)
        s.phases;
      (* Remove crash faults (all at once, then one by one). *)
      if Case.crash_count c > 0 then begin
        add
          {
            s with
            phases =
              List.map
                (fun (p : Case.phase) -> { p with crash_server = None })
                s.phases;
          };
        List.iteri
          (fun pi (p : Case.phase) ->
            if p.crash_server <> None then
              add
                {
                  s with
                  phases =
                    List.mapi
                      (fun i (q : Case.phase) ->
                        if i = pi then { q with crash_server = None } else q)
                      s.phases;
                })
          s.phases
      end;
      (* Remove online (mid-phase) crashes, all at once then one by one. *)
      if Case.mid_crash_count c > 0 then begin
        add
          {
            s with
            phases =
              List.map
                (fun (p : Case.phase) -> { p with crash_mid = None })
                s.phases;
          };
        List.iteri
          (fun pi (p : Case.phase) ->
            if Option.is_some p.crash_mid then
              add
                {
                  s with
                  phases =
                    List.mapi
                      (fun i (q : Case.phase) ->
                        if i = pi then { q with crash_mid = None } else q)
                      s.phases;
                })
          s.phases
      end;
      (* Remove the message faults. *)
      if s.loss > 0. || s.dup > 0. then add { s with loss = 0.; dup = 0. };
      (* Turn RPC batching off. *)
      if s.batch > 1 then add { s with batch = 0 };
      (* Collapse the layout. *)
      if s.stripes > 1 || s.n_servers > 1 then
        add { s with stripes = 1; n_servers = 1 };
      (* Remove the legal nondeterminism. *)
      if s.tie_random || s.jitter > 0. then
        add { s with tie_random = false; jitter = 0. };
      (* Relax the tight cache limits. *)
      if s.dirty_min_blocks < 4096 || s.extent_cache_limit < 4096 then
        add
          {
            s with
            dirty_min_blocks = 4096;
            dirty_max_blocks = 16384;
            extent_cache_limit = Ccpfs.Config.default.extent_cache_limit;
          };
      List.rev !acc

let minimize ?inject ?(budget = 150) case reason =
  let best = ref case and best_reason = ref reason in
  let reruns = ref 0 in
  let improved = ref true in
  while !improved && !reruns < budget do
    improved := false;
    (try
       List.iter
         (fun cand ->
           if !reruns >= budget then raise Exit;
           incr reruns;
           match Exec.catch ?inject cand with
           | Error r ->
               best := cand;
               best_reason := r;
               improved := true;
               raise Exit
           | Ok _ -> ())
         (candidates !best)
     with Exit -> ())
  done;
  (!best, !best_reason, !reruns)
