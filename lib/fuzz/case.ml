type op =
  | Write of { block : int; blocks : int }
  | Read of { block : int; blocks : int }
  | Append of { blocks : int }
  | Truncate of { blocks : int }

type phase = {
  ops : op list array;
  crash_server : int option;
  crash_mid : (int * float) option;
}

type churn = { ch_at : float; ch_client : int; ch_up : bool }

type load = {
  l_rate : float;
  l_process : int; (* 0 constant, 1 poisson, 2 mmpp *)
  l_requests : int;
  l_cap : int;
  l_churn : churn list;
}

type migration = { mg_stripe : int; mg_dst : int; mg_after : float }

type sim = {
  policy_idx : int;
  n_servers : int;
  n_clients : int;
  stripes : int;
  stripe_blocks : int;
  dirty_min_blocks : int;
  dirty_max_blocks : int;
  extent_cache_limit : int;
  tie_random : bool;
  jitter : float;
  loss : float;
  dup : float;
  batch : int;
      (* RPC batch factor for the plain transport (0/1 = unbatched);
         cases drawing batch > 1 exercise batch-boundary schedules —
         flush-on-size, flush-on-timer and crashes between them. *)
  phases : phase list;
  load : load option;
      (* Optional open-loop tail segment (lib/load): after the phases
         go quiescent, an arrival-scheduled stream of page writes with
         bounded backlog and client churn runs against the same file,
         still under the shadow oracle and the determinism double-run. *)
  migrations : migration list;
      (* Epoch-fenced lock-namespace migrations (DESIGN.md §15) fired
         while the phase traffic runs: at [mg_after] seconds, stripe
         [mg_stripe mod stripes]'s resource is rehomed to server
         [mg_dst mod n_servers].  Moves whose endpoints are not Up, or
         that fire before the shared file exists, are skipped. *)
}

type analytic = { a_clients : int; a_bytes : int }
type kind = Sim of sim | Analytic of analytic
type t = { seed : int; params : Netsim.Params.t; kind : kind }

let policies =
  [|
    Seqdlm.Policy.seqdlm;
    Seqdlm.Policy.dlm_basic;
    Seqdlm.Policy.dlm_lustre;
    Seqdlm.Policy.dlm_datatype;
  |]

let policy_of (s : sim) = policies.(s.policy_idx mod Array.length policies)

let sim_op_count (s : sim) =
  List.fold_left
    (fun acc p -> Array.fold_left (fun acc l -> acc + List.length l) acc p.ops)
    0 s.phases

let op_count t =
  match t.kind with Analytic a -> a.a_clients | Sim s -> sim_op_count s

let client_count t =
  match t.kind with Analytic a -> a.a_clients | Sim s -> s.n_clients

let crash_count t =
  match t.kind with
  | Analytic _ -> 0
  | Sim s ->
      List.fold_left
        (fun acc p -> acc + match p.crash_server with Some _ -> 1 | None -> 0)
        0 s.phases

let mid_crash_count t =
  match t.kind with
  | Analytic _ -> 0
  | Sim s ->
      List.fold_left
        (fun acc p -> acc + match p.crash_mid with Some _ -> 1 | None -> 0)
        0 s.phases

let migration_count t =
  match t.kind with Analytic _ -> 0 | Sim s -> List.length s.migrations

(* Does this case need the fenced transport (retries, failover)? *)
let online (s : sim) =
  s.loss > 0. || s.dup > 0.
  || List.exists (fun p -> Option.is_some p.crash_mid) s.phases

let summary t =
  match t.kind with
  | Analytic a ->
      Printf.sprintf "seed %d: analytic, %d conflicting PW writers x %s" t.seed
        a.a_clients
        (Ccpfs_util.Units.bytes_to_string a.a_bytes)
  | Sim s ->
      Printf.sprintf
        "seed %d: %s, %d client(s) x %d server(s), %d stripe(s), %d phase(s), \
         %d op(s), %d crash(es), %d mid-crash(es)%s"
        t.seed (policy_of s).Seqdlm.Policy.name s.n_clients s.n_servers
        s.stripes (List.length s.phases) (sim_op_count s) (crash_count t)
        (mid_crash_count t)
        ((if s.loss > 0. || s.dup > 0. then
            Printf.sprintf ", loss %.3f dup %.3f" s.loss s.dup
          else "")
        ^ (if s.batch > 1 then Printf.sprintf ", batch %d" s.batch else "")
        ^ (match s.migrations with
          | [] -> ""
          | ms -> Printf.sprintf ", %d migration(s)" (List.length ms))
        ^
        match s.load with
        | Some l ->
            Printf.sprintf ", load(%s %.3g/s x%d cap %d churn %d)"
              (match l.l_process mod 3 with
              | 0 -> "const"
              | 1 -> "poisson"
              | _ -> "mmpp")
              l.l_rate l.l_requests l.l_cap
              (List.length l.l_churn)
        | None -> "")

let pp_op ppf = function
  | Write { block; blocks } ->
      Format.fprintf ppf "write[%d,+%d)" block blocks
  | Read { block; blocks } -> Format.fprintf ppf "read[%d,+%d)" block blocks
  | Append { blocks } -> Format.fprintf ppf "append(+%d)" blocks
  | Truncate { blocks } -> Format.fprintf ppf "truncate(->%d)" blocks

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (summary t);
  (match t.kind with
  | Analytic _ -> ()
  | Sim s ->
      Format.fprintf ppf
        "  dirty %d/%d pages, extent-cache limit %d, tie_random %b, jitter \
         %gs, loss %g, dup %g, batch %d@,"
        s.dirty_min_blocks s.dirty_max_blocks s.extent_cache_limit s.tie_random
        s.jitter s.loss s.dup s.batch;
      (match s.load with
      | Some l ->
          Format.fprintf ppf
            "  load: process %d, %g req/s, %d request(s), cap %d@," l.l_process
            l.l_rate l.l_requests l.l_cap;
          List.iter
            (fun ch ->
              Format.fprintf ppf "    churn: client %d %s at +%gs@,"
                ch.ch_client
                (if ch.ch_up then "up" else "down")
                ch.ch_at)
            l.l_churn
      | None -> ());
      List.iter
        (fun m ->
          Format.fprintf ppf "  migration: stripe %d -> server %d at +%gs@,"
            m.mg_stripe m.mg_dst m.mg_after)
        s.migrations;
      List.iteri
        (fun pi (p : phase) ->
          Format.fprintf ppf "  phase %d%s%s:@," pi
            (match p.crash_mid with
            | Some (srv, d) ->
                Printf.sprintf " (crash server %d at +%gs)" srv d
            | None -> "")
            (match p.crash_server with
            | Some srv -> Printf.sprintf " (then crash server %d)" srv
            | None -> "");
          Array.iteri
            (fun ci ops ->
              if ops <> [] then begin
                Format.fprintf ppf "    client %d: " ci;
                List.iteri
                  (fun i op ->
                    if i > 0 then Format.fprintf ppf ", ";
                    pp_op ppf op)
                  ops;
                Format.fprintf ppf "@,"
              end)
            p.ops)
        s.phases);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let op_to_json op =
  let open Obs.Json in
  match op with
  | Write { block; blocks } ->
      Obj [ ("op", Str "write"); ("block", Int block); ("blocks", Int blocks) ]
  | Read { block; blocks } ->
      Obj [ ("op", Str "read"); ("block", Int block); ("blocks", Int blocks) ]
  | Append { blocks } -> Obj [ ("op", Str "append"); ("blocks", Int blocks) ]
  | Truncate { blocks } ->
      Obj [ ("op", Str "truncate"); ("blocks", Int blocks) ]

let params_to_json (p : Netsim.Params.t) =
  let open Obs.Json in
  Obj
    [
      ("rtt", Float p.rtt);
      ("b_net", Float p.b_net);
      ("server_ops", Float p.server_ops);
      ("b_disk", Float p.b_disk);
      ("b_mem", Float p.b_mem);
      ("ctl_msg_bytes", Int p.ctl_msg_bytes);
      ("bulk_threshold", Int p.bulk_threshold);
      ("client_io_overhead", Float p.client_io_overhead);
    ]

let to_json t =
  let open Obs.Json in
  let kind =
    match t.kind with
    | Analytic a ->
        Obj
          [
            ("kind", Str "analytic");
            ("clients", Int a.a_clients);
            ("bytes", Int a.a_bytes);
          ]
    | Sim s ->
        Obj
          [
            ("kind", Str "sim");
            ("policy", Str (policy_of s).Seqdlm.Policy.name);
            ("policy_idx", Int s.policy_idx);
            ("n_servers", Int s.n_servers);
            ("n_clients", Int s.n_clients);
            ("stripes", Int s.stripes);
            ("stripe_blocks", Int s.stripe_blocks);
            ("dirty_min_blocks", Int s.dirty_min_blocks);
            ("dirty_max_blocks", Int s.dirty_max_blocks);
            ("extent_cache_limit", Int s.extent_cache_limit);
            ("tie_random", Bool s.tie_random);
            ("jitter", Float s.jitter);
            ("loss", Float s.loss);
            ("dup", Float s.dup);
            ("batch", Int s.batch);
            ( "load",
              match s.load with
              | None -> Null
              | Some l ->
                  Obj
                    [
                      ("rate", Float l.l_rate);
                      ("process", Int l.l_process);
                      ("requests", Int l.l_requests);
                      ("cap", Int l.l_cap);
                      ( "churn",
                        List
                          (List.map
                             (fun ch ->
                               Obj
                                 [
                                   ("at", Float ch.ch_at);
                                   ("client", Int ch.ch_client);
                                   ("up", Bool ch.ch_up);
                                 ])
                             l.l_churn) );
                    ] );
            ( "migrations",
              List
                (List.map
                   (fun m ->
                     Obj
                       [
                         ("stripe", Int m.mg_stripe);
                         ("dst", Int m.mg_dst);
                         ("after", Float m.mg_after);
                       ])
                   s.migrations) );
            ( "phases",
              List
                (List.map
                   (fun (p : phase) ->
                     Obj
                       [
                         ( "ops",
                           List
                             (Array.to_list p.ops
                             |> List.map (fun ops ->
                                    List (List.map op_to_json ops))) );
                         ( "crash_server",
                           match p.crash_server with
                           | Some s -> Int s
                           | None -> Null );
                         ( "crash_mid",
                           match p.crash_mid with
                           | Some (srv, d) ->
                               Obj [ ("server", Int srv); ("after", Float d) ]
                           | None -> Null );
                       ])
                   s.phases) );
          ]
  in
  Obj [ ("seed", Int t.seed); ("params", params_to_json t.params); ("case", kind) ]

(* ------------------------------------------------------------------ *)
(* OCaml regression-test skeleton                                      *)
(* ------------------------------------------------------------------ *)

let ml_float f =
  if f = infinity then "infinity"
  else if f = neg_infinity then "neg_infinity"
  else if Float.is_nan f then "nan"
  else Printf.sprintf "%h" f

let ml_op = function
  | Write { block; blocks } ->
      Printf.sprintf "Write { block = %d; blocks = %d }" block blocks
  | Read { block; blocks } ->
      Printf.sprintf "Read { block = %d; blocks = %d }" block blocks
  | Append { blocks } -> Printf.sprintf "Append { blocks = %d }" blocks
  | Truncate { blocks } -> Printf.sprintf "Truncate { blocks = %d }" blocks

let to_ocaml_test t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "(* Minimized fuzz failure; replay: ccpfs_run fuzz --seed %d *)\n" t.seed;
  add "let test_fuzz_seed_%d () =\n" (abs t.seed);
  add "  let open Fuzz.Case in\n";
  add "  let params =\n";
  add
    "    { Netsim.Params.rtt = %s; b_net = %s; server_ops = %s; b_disk = %s;\n"
    (ml_float t.params.rtt) (ml_float t.params.b_net)
    (ml_float t.params.server_ops)
    (ml_float t.params.b_disk);
  add "      b_mem = %s; ctl_msg_bytes = %d; bulk_threshold = %d;\n"
    (ml_float t.params.b_mem) t.params.ctl_msg_bytes t.params.bulk_threshold;
  add "      client_io_overhead = %s }\n" (ml_float t.params.client_io_overhead);
  add "  in\n";
  (match t.kind with
  | Analytic a ->
      add "  let kind = Analytic { a_clients = %d; a_bytes = %d } in\n"
        a.a_clients a.a_bytes
  | Sim s ->
      add "  let kind =\n    Sim\n";
      add "      { policy_idx = %d; n_servers = %d; n_clients = %d;\n"
        s.policy_idx s.n_servers s.n_clients;
      add "        stripes = %d; stripe_blocks = %d; dirty_min_blocks = %d;\n"
        s.stripes s.stripe_blocks s.dirty_min_blocks;
      add "        dirty_max_blocks = %d; extent_cache_limit = %d;\n"
        s.dirty_max_blocks s.extent_cache_limit;
      add "        tie_random = %b; jitter = %s;\n" s.tie_random
        (ml_float s.jitter);
      add "        loss = %s; dup = %s; batch = %d;\n" (ml_float s.loss)
        (ml_float s.dup) s.batch;
      (match s.load with
      | None -> add "        load = None;\n"
      | Some l ->
          add
            "        load =\n\
            \          Some\n\
            \            { l_rate = %s; l_process = %d; l_requests = %d;\n\
            \              l_cap = %d;\n\
            \              l_churn =\n\
            \                [ %s ] };\n"
            (ml_float l.l_rate) l.l_process l.l_requests l.l_cap
            (String.concat ";\n                  "
               (List.map
                  (fun ch ->
                    Printf.sprintf
                      "{ ch_at = %s; ch_client = %d; ch_up = %b }"
                      (ml_float ch.ch_at) ch.ch_client ch.ch_up)
                  l.l_churn)));
      (match s.migrations with
      | [] -> add "        migrations = [];\n"
      | ms ->
          add "        migrations =\n          [ %s ];\n"
            (String.concat ";\n            "
               (List.map
                  (fun m ->
                    Printf.sprintf
                      "{ mg_stripe = %d; mg_dst = %d; mg_after = %s }"
                      m.mg_stripe m.mg_dst (ml_float m.mg_after))
                  ms)));
      add "        phases =\n          [\n";
      List.iter
        (fun (p : phase) ->
          add "            { ops =\n                [|\n";
          Array.iter
            (fun ops ->
              add "                  [ %s ];\n"
                (String.concat "; " (List.map ml_op ops)))
            p.ops;
          add "                |];\n";
          add "              crash_server = %s;\n"
            (match p.crash_server with
            | Some srv -> Printf.sprintf "Some %d" srv
            | None -> "None");
          add "              crash_mid = %s };\n"
            (match p.crash_mid with
            | Some (srv, d) -> Printf.sprintf "Some (%d, %s)" srv (ml_float d)
            | None -> "None"))
        s.phases;
      add "          ] }\n";
      add "  in\n");
  add "  let case = { Fuzz.Case.seed = %d; params; kind } in\n" t.seed;
  add "  ignore (Fuzz.Exec.run case)\n";
  Buffer.contents b
