(** Base-seed plumbing shared by the fuzzer and every randomized test.

    All stochastic choices in the test suite derive from one base seed so
    a CI failure is replayable locally: set the [CCPFS_SEED] environment
    variable (or pass [ccpfs_run fuzz --seed]) to the seed a failure
    message printed. *)

val env_var : string
(** ["CCPFS_SEED"]. *)

val default : int

val base : unit -> int
(** [CCPFS_SEED] if set, {!default} otherwise.
    @raise Invalid_argument if the variable is set but not an integer. *)

val from_env : unit -> bool
(** Whether [CCPFS_SEED] overrides the default. *)

val label : string -> string
(** [label name] is ["name [CCPFS_SEED=<base>]"] — test-case names carry
    the active seed, so every failure message prints it. *)

val rand_state : unit -> Random.State.t
(** A [Random.State.t] derived from {!base}, for QCheck's
    [to_alcotest ~rand]. *)
