type failure = {
  seed : int;
  case : Case.t;
  reason : string;
  shrunk : Case.t;
  shrunk_reason : string;
  shrink_reruns : int;
}

type summary = {
  tested : int;
  sims : int;
  analytics : int;
  failure : failure option;
}

let run_range ?inject ?(faults = false) ?shrink_budget ?progress ~base ~count
    () =
  let sims = ref 0 and analytics = ref 0 in
  let failure = ref None in
  let k = ref 0 in
  while Option.is_none !failure && !k < count do
    let seed = base + !k in
    let case = Gen.of_seed ~faults seed in
    (match case.Case.kind with
    | Case.Sim _ -> incr sims
    | Case.Analytic _ -> incr analytics);
    (match Exec.catch ?inject case with
    | Ok _ -> ()
    | Error reason ->
        let shrunk, shrunk_reason, shrink_reruns =
          Shrink.minimize ?inject ?budget:shrink_budget case reason
        in
        failure :=
          Some { seed; case; reason; shrunk; shrunk_reason; shrink_reruns });
    incr k;
    match progress with Some f -> f !k count | None -> ()
  done;
  { tested = !k; sims = !sims; analytics = !analytics; failure = !failure }

let repro_hint (f : failure) =
  Printf.sprintf "ccpfs_run fuzz --seed %d --shrink" f.seed

let repro_json (f : failure) =
  let open Obs.Json in
  Obj
    [
      ("schema", Str "ccpfs.fuzz-repro/1");
      ("seed", Int f.seed);
      ("reason", Str f.reason);
      ("replay", Str (repro_hint f));
      ("case", Case.to_json f.case);
      ("shrunk_reason", Str f.shrunk_reason);
      ("shrunk_case", Case.to_json f.shrunk);
      ("shrink_reruns", Int f.shrink_reruns);
      ("ocaml_test", Str (Case.to_ocaml_test f.shrunk));
    ]

let result_row ~base (s : summary) =
  let open Obs.Json in
  Obj
    [
      ("base_seed", Int base);
      ("tested", Int s.tested);
      ("sim_cases", Int s.sims);
      ("analytic_cases", Int s.analytics);
      ( "failed_seed",
        match s.failure with Some f -> Int f.seed | None -> Null );
    ]
