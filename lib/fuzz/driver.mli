(** The fuzz campaign driver behind [ccpfs_run fuzz] and the CI smoke
    job: generate-execute-shrink over a contiguous seed range. *)

type failure = {
  seed : int;
  case : Case.t;  (** as generated *)
  reason : string;
  shrunk : Case.t;
  shrunk_reason : string;
  shrink_reruns : int;
}

type summary = {
  tested : int;  (** seeds executed (stops at the first failure) *)
  sims : int;
  analytics : int;
  failure : failure option;
}

val run_range :
  ?inject:Exec.inject -> ?faults:bool -> ?shrink_budget:int ->
  ?progress:(int -> int -> unit) -> base:int -> count:int -> unit -> summary
(** Execute seeds [base .. base+count-1] in order, stopping at (and
    minimizing) the first failure.  [progress done total] is called
    after every case.  [~faults:true] forces every case into the online
    fault mode (message loss + a mid-phase server crash), see
    {!Gen.of_seed}. *)

val repro_hint : failure -> string
(** The replay command line: ["ccpfs_run fuzz --seed N --shrink"]. *)

val repro_json : failure -> Obs.Json.t
(** The [FUZZ_repro.json] document: seed, reason, replay command, the
    minimized case and a paste-ready OCaml regression test. *)

val result_row : base:int -> summary -> Obs.Json.t
(** One accumulator row for [BENCH_fuzz.json]
    (schema ["ccpfs.fuzz/1"]). *)
