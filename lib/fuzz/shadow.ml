open Ccpfs_util

type entry = { writer : int; op : int; sn : int }

exception Divergence of string

type t = {
  layout : Ccpfs.Layout.t;
  mutable data : entry option array;  (* indexed by file offset *)
  mutable cap : int;  (* 1 + highest file offset ever written *)
}

let create ~layout = { layout; data = Array.make 4096 None; cap = 0 }
let cap t = t.cap

let ensure t hi =
  if hi > Array.length t.data then begin
    let n = ref (Array.length t.data) in
    while !n < hi do
      n := !n * 2
    done;
    let a = Array.make !n None in
    Array.blit t.data 0 a 0 (Array.length t.data);
    t.data <- a
  end

(* The data servers' merge rule: SN orders conflicting locks, the
   writer's op counter orders successive writes under one cached lock. *)
let newer (a : entry) (b : entry) = a.sn > b.sn || (a.sn = b.sn && a.op > b.op)

let record_write t ~writer ~rid ~range ~sn ~op =
  let stripe = Ccpfs.Layout.rid_stripe rid in
  let e = { writer; op; sn } in
  let lo = range.Interval.lo and hi = range.Interval.hi in
  if hi > lo then begin
    (* Object offsets map to file offsets monotonically within a stripe;
       the last byte gives the high-water mark. *)
    ensure t (Ccpfs.Layout.file_offset t.layout ~stripe (hi - 1) + 1);
    for o = lo to hi - 1 do
      let f = Ccpfs.Layout.file_offset t.layout ~stripe o in
      if f + 1 > t.cap then t.cap <- f + 1;
      match t.data.(f) with
      | Some cur when not (newer e cur) -> ()
      | _ -> t.data.(f) <- Some e
    done
  end

let record_truncate t ~size =
  for f = max 0 size to t.cap - 1 do
    t.data.(f) <- None
  done

let describe = function
  | None -> "hole"
  | Some e -> Printf.sprintf "writer %d op %d sn %d" e.writer e.op e.sn

let check_against t cl file =
  let layout = t.layout in
  let obj_cap = max t.cap 1 in
  for stripe = 0 to layout.Ccpfs.Layout.stripe_count - 1 do
    let contents = Ccpfs.Cluster.stripe_contents cl file ~stripe in
    List.iter
      (fun ((iv : Interval.t), tag) ->
        let actual =
          Option.map
            (fun (g : Content.tag) -> { writer = g.writer; op = g.op; sn = g.sn })
            tag
        in
        for o = iv.lo to iv.hi - 1 do
          let f = Ccpfs.Layout.file_offset layout ~stripe o in
          let expected = if f < t.cap then t.data.(f) else None in
          if expected <> actual then
            raise
              (Divergence
                 (Printf.sprintf
                    "file offset %d (stripe %d, object offset %d): device \
                     has %s, shadow file has %s"
                    f stripe o (describe actual) (describe expected)))
        done)
      (* Object offsets never exceed their file offsets, so [0, cap)
         in object space covers everything the journal can explain —
         and everything beyond it must be a hole. *)
      (Content.read contents (Interval.v ~lo:0 ~hi:obj_cap))
  done
