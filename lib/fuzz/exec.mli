(** The case executor: run one {!Case.t} under every oracle.

    A simulated case builds a fresh cluster (extent logs on, so crash
    phases can recover), seeds the case's legal nondeterminism (event
    jitter, random tie-breaking) from the case seed, attaches the
    {!Check.Sanitize} invariant layer unconditionally, journals every
    semantic write into a {!Shadow} file, runs each phase to quiescence
    (crashing and recovering lock servers between phases where the case
    says so, asserting the recovered SN floor stays above everything
    recovered), fsyncs, and compares the device contents byte-for-byte
    against the shadow.  The whole scenario is executed {e twice} under
    {!Check.Determinism.check}, so a fingerprint divergence between two
    identical runs is itself a failure.

    An analytic case runs N fully-conflicting PW writers under the basic
    DLM and checks the simulated aggregate bandwidth against Eq. (1)
    within {!tolerance}. *)

(** Deliberate bugs the fuzzer can plant to prove its oracles bite
    (regression tests, [ccpfs_run fuzz --inject]). *)
type inject =
  | Sn_reuse  (** lock servers reissue an old SN every 3rd write grant *)
  | Drop_flush  (** data servers silently drop every 5th flushed block *)

val inject_of_string : string -> inject option
val inject_to_string : inject -> string

type outcome = {
  fingerprint : int64;  (** common FNV-1a fingerprint of the double run *)
  ops : int;  (** client operations executed (one run) *)
  virtual_end : float;  (** simulated seconds at completion *)
  oracle : string;  (** which oracle vouched: ["shadow"] / ["analytic"] *)
}

val tolerance : float
(** Allowed relative error of the analytic differential check. *)

val run : ?inject:inject -> Case.t -> outcome
(** @raise Check.Violation.Violation on any invariant, determinism,
    recovery-floor or analytic-model failure;
    @raise Shadow.Divergence on a shadow-file mismatch;
    @raise Check.Deadlock.Deadlock_found on an engine stall. *)

val catch : ?inject:inject -> Case.t -> (outcome, string) result
(** {!run} with every failure rendered as a printable reason (the
    shrinker's predicate). *)
