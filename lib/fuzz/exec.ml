open Ccpfs_util
open Ccpfs

type inject = Sn_reuse | Drop_flush

let inject_of_string = function
  | "sn-reuse" -> Some Sn_reuse
  | "drop-block" | "drop-flush" -> Some Drop_flush
  | _ -> None

let inject_to_string = function
  | Sn_reuse -> "sn-reuse"
  | Drop_flush -> "drop-block"

type outcome = {
  fingerprint : int64;
  ops : int;
  virtual_end : float;
  oracle : string;
}

let tolerance = 0.25

(* ------------------------------------------------------------------ *)
(* Simulated cases                                                     *)
(* ------------------------------------------------------------------ *)

let config_of (s : Case.sim) =
  let page = Config.default.page in
  {
    Config.default with
    dirty_min = s.dirty_min_blocks * page;
    dirty_max = s.dirty_max_blocks * page;
    extent_cache_limit = s.extent_cache_limit;
    extent_log = true;
    (* The case's own batch draw wins; CCPFS_BATCH (already folded into
       Config.default.batch_k) forces batching onto cases that drew 0,
       so `CCPFS_BATCH=8 ccpfs_run fuzz` sweeps the corpus batched. *)
    batch_k = (if s.batch > 1 then s.batch else Config.default.batch_k);
  }

let install_inject cl = function
  | None -> ()
  | Some Sn_reuse ->
      for i = 0 to Cluster.n_servers cl - 1 do
        Seqdlm.Lock_server.inject_sn_reuse (Cluster.lock_server cl i) ~every:3
      done
  | Some Drop_flush ->
      for i = 0 to Cluster.n_servers cl - 1 do
        Data_server.inject_drop_block (Cluster.data_server cl i) ~every:5
      done

(* §IV-C2: after recovery, freshly issued SNs must stay above everything
   the crashed server ever issued — above both the extent log's high
   water mark and every grant the clients still cache.  With the sharded
   namespace the floor lives wherever the shard map currently homes each
   resource's locks, while the extent log stays on the static data
   owner — so the assertion follows both routes instead of assuming the
   crashed server holds everything. *)
let assert_sn_floor cl srv =
  let ls = Cluster.lock_server cl srv in
  let ds = Cluster.data_server cl srv in
  let rids =
    List.sort_uniq compare
      (Seqdlm.Lock_server.resource_ids ls @ Data_server.stripe_rids ds)
  in
  List.iter
    (fun rid ->
      let owner = Cluster.server_of_rid cl rid in
      let ls_owner = Cluster.lock_server cl owner in
      let next = Seqdlm.Lock_server.next_sn ls_owner rid in
      let home =
        Cluster.data_server cl (Shard_map.data_owner (Cluster.shard_map cl) rid)
      in
      let logged = Option.value (Data_server.max_logged_sn home rid) ~default:0 in
      let reinstalled =
        (* Write grants only: a read grant's [sn] is a snapshot of
           [next_sn] taken without consuming it, so a fresh post-recovery
           read legitimately carries sn = next_sn. *)
        List.fold_left
          (fun m (v : Seqdlm.Lock_server.lock_view) ->
            if Seqdlm.Mode.is_write v.v_mode then max m v.v_sn else m)
          0
          (Seqdlm.Lock_server.granted_locks ls_owner rid)
      in
      if next <= max logged reinstalled then
        Check.Violation.fail ~inv:"recovery-sn-floor"
          "server %d (owner %d) rid %d: next_sn %d not above max recovered SN \
           (extent log %d, reinstalled grants %d)"
          srv owner rid next logged reinstalled)
    rids

let run_op shadow page c f (op : Case.op) =
  match op with
  | Case.Write { block; blocks } ->
      Client.write c f ~off:(block * page) ~len:(blocks * page)
  | Case.Read { block; blocks } ->
      ignore (Client.read c f ~off:(block * page) ~len:(blocks * page))
  | Case.Append { blocks } -> ignore (Client.append c f ~len:(blocks * page))
  | Case.Truncate { blocks } ->
      Client.truncate c f ~size:(blocks * page);
      (* Journaled after completion: the whole-file PW serializes the
         truncate against every conflicting write (no early grant for
         PW), so its completion position in the journal is its
         serialization position. *)
      Shadow.record_truncate shadow ~size:(blocks * page)

(* One full scenario execution on a fresh world; returns the cluster for
   fingerprinting and metrics. *)
let sim_pass ?inject (case : Case.t) (s : Case.sim) =
  let page = Config.default.page in
  let online = Case.online s in
  let reliability =
    if online then Some (Netsim.Rpc.reliability_for case.params) else None
  in
  let cl =
    Cluster.create ~params:case.params ~config:(config_of s)
      ~policy:(Case.policy_of s) ?reliability ~n_servers:s.n_servers
      ~n_clients:s.n_clients ()
  in
  let eng = Cluster.engine cl in
  let ha = if online then Some (Ha.Failover.install cl) else None in
  if s.loss > 0. || s.dup > 0. then begin
    (* One stream for every loss/dup draw; the draw order is the
       (deterministic) event order, so both determinism passes see the
       same fault schedule. *)
    let frng = Det_random.create ~seed:(case.seed lxor 0x3f41) in
    let frand () = Det_random.float frng 1. in
    for i = 0 to s.n_servers - 1 do
      let ls = Cluster.lock_server cl i in
      Netsim.Rpc.set_fault
        (Seqdlm.Lock_server.lock_endpoint ls)
        ~loss:s.loss ~dup:s.dup ~rng:frand;
      Netsim.Rpc.set_fault
        (Seqdlm.Lock_server.ctl_endpoint ls)
        ~loss:s.loss ~dup:s.dup ~rng:frand;
      Netsim.Rpc.set_fault
        (Data_server.endpoint (Cluster.data_server cl i))
        ~loss:s.loss ~dup:s.dup ~rng:frand
    done
  end;
  (* Legal nondeterminism, itself a deterministic function of the seed. *)
  if s.tie_random then
    Dessim.Engine.seed_nondeterminism ~max_jitter:s.jitter ~seed:case.seed eng
  else if s.jitter > 0. then begin
    let jr = Det_random.create ~seed:(case.seed lxor 0x6a17) in
    Dessim.Engine.set_event_jitter eng (fun () ->
        Det_random.float jr s.jitter)
  end;
  Check.Sanitize.attach_cluster cl;
  install_inject cl inject;
  let layout =
    Layout.v ~stripe_size:(s.stripe_blocks * page) ~stripe_count:s.stripes ()
  in
  let shadow = Shadow.create ~layout in
  for i = 0 to s.n_clients - 1 do
    let cache = Client.cache (Cluster.client cl i) in
    let writer = Client_cache.client_id cache in
    Client_cache.set_write_observer cache (fun ~rid ~range ~sn ~op ->
        Shadow.record_write shadow ~writer ~rid ~range ~sn ~op)
  done;
  let file = ref None in
  (* Mid-run migrations (DESIGN.md §15): rehome a stripe's lock
     namespace while the phase traffic runs.  Spawned up front as
     regular processes; each sleeps its offset, then skips if the shared
     file does not exist yet (nothing worth moving) or either end of the
     move is not Up, and otherwise runs the epoch-fenced coordinator —
     whose result may still be None (source crashed mid-drain, target
     went down, or a force-sync pins the resource). *)
  List.iteri
    (fun mi (m : Case.migration) ->
      Dessim.Engine.spawn (Cluster.engine cl)
        ~name:(Printf.sprintf "fuzz-mig-%d" mi)
        (fun () ->
          Dessim.Engine.sleep eng m.Case.mg_after;
          match !file with
          | None -> ()
          | Some f ->
              let stripe = m.Case.mg_stripe mod s.stripes in
              let rid = Layout.rid ~fid:(Client.fid f) ~stripe in
              let dst = m.Case.mg_dst mod s.n_servers in
              let src = Cluster.server_of_rid cl rid in
              let up i =
                match ha with
                | None -> true
                | Some ha ->
                    Ha.Membership.state (Ha.Failover.membership ha) i
                    = Ha.Membership.Up
              in
              if up src && up dst then
                ignore (Cluster.migrate_resource cl ~rid ~dst)))
    s.migrations;
  List.iter
    (fun (ph : Case.phase) ->
      let spawned = ref false in
      Array.iteri
        (fun i ops ->
          if ops <> [] then begin
            spawned := true;
            Cluster.spawn_client cl i ~name:(Printf.sprintf "fuzz-c%d" i)
              (fun c ->
                let f = Client.open_file c ~create:true ~layout "/fuzz" in
                if !file = None then file := Some f;
                List.iter (run_op shadow page c f) ops)
          end)
        ph.ops;
      (match (ph.crash_mid, ha) with
      | Some (srv, delay), Some ha ->
          let srv = srv mod s.n_servers in
          let tick = Ha.Detector.period (Ha.Failover.detector ha) in
          (* A regular process: it also serves as the phase's liveness
             barrier — Engine.run below cannot return until detection
             and recovery have completed.  The barrier watches the
             completed-failover count, not membership: between the crash
             and the detector's declaration the membership table still
             reads Up. *)
          Dessim.Engine.spawn eng ~name:(Printf.sprintf "fuzz-crash-%d" srv)
            (fun () ->
              Dessim.Engine.sleep eng delay;
              let before = List.length (Ha.Failover.records ha) in
              ignore (Ha.Failover.crash ha srv);
              while List.length (Ha.Failover.records ha) <= before do
                Dessim.Engine.sleep eng tick
              done)
      | _ -> ());
      if !spawned || Option.is_some ph.crash_mid then
        Check.Sanitize.run_cluster cl;
      (match ph.crash_mid with
      | Some (srv, _) -> assert_sn_floor cl (srv mod s.n_servers)
      | None -> ());
      match ph.crash_server with
      | Some srv ->
          let srv = srv mod s.n_servers in
          Cluster.crash_and_recover_server cl srv;
          assert_sn_floor cl srv
      | None -> ())
    s.phases;
  (* The optional open-loop tail: a scheduled-arrival stream of page
     writes through Load.Driver, against the same shared file so the
     shadow oracle keeps covering it.  The conservation invariant —
     every scheduled arrival either completes or is counted shed — is
     checked as a fuzz invariant in its own right. *)
  (match s.load with
  | None -> ()
  | Some (l : Case.load) ->
      let proc =
        match l.l_process mod 3 with
        | 0 -> Load.Arrivals.Constant l.l_rate
        | 1 -> Load.Arrivals.Poisson l.l_rate
        | _ -> Load.Arrivals.bursty ~rate:l.l_rate
      in
      let spec =
        Load.Driver.
          {
            process = proc;
            seed = case.seed lxor 0x10ad;
            requests = l.l_requests;
            max_in_flight = Stdlib.max 1 l.l_cap;
            churn =
              List.map
                (fun (ch : Case.churn) ->
                  Load.Driver.
                    {
                      ch_at = ch.Case.ch_at;
                      ch_client = ch.Case.ch_client mod s.n_clients;
                      ch_up = ch.Case.ch_up;
                    })
                l.l_churn;
            start_at = Cluster.now cl;
          }
      in
      let h =
        Load.Driver.launch cl spec
          ~prepare:(fun c ->
            let f = Client.open_file c ~create:true ~layout "/fuzz" in
            if !file = None then file := Some f;
            (c, f))
          ~request:(fun (c, f) k ->
            let block = k mod Gen.max_block in
            Client.write c f ~off:(block * page) ~len:page;
            page)
      in
      Check.Sanitize.run_cluster cl;
      let r = Load.Driver.result h in
      if
        r.Load.Driver.r_completed + r.Load.Driver.r_shed
        <> r.Load.Driver.r_arrivals
        || r.Load.Driver.r_arrivals <> l.l_requests
      then
        Check.Violation.fail ~inv:"load-conservation"
          "open-loop segment lost arrivals: %d completed + %d shed vs %d \
           arrivals (%d scheduled)"
          r.Load.Driver.r_completed r.Load.Driver.r_shed
          r.Load.Driver.r_arrivals l.l_requests);
  (match !file with
  | Some f ->
      Cluster.fsync_all cl;
      Cluster.check_invariants cl;
      Check.Sanitize.check_cluster cl;
      Shadow.check_against shadow cl f
  | None -> ());
  cl

let total_ops cl =
  let n = ref 0 in
  for i = 0 to Cluster.n_clients cl - 1 do
    n := !n + Client.ops (Cluster.client cl i)
  done;
  !n

let run_sim ?inject (case : Case.t) (s : Case.sim) =
  let last = ref (0, 0.) in
  let fp =
    Check.Determinism.check ~name:(Printf.sprintf "fuzz seed %d" case.seed)
      (fun () ->
        let cl = sim_pass ?inject case s in
        last := (total_ops cl, Cluster.now cl);
        Cluster.engine cl)
  in
  let ops, virtual_end = !last in
  { fingerprint = fp; ops; virtual_end; oracle = "shadow" }

(* ------------------------------------------------------------------ *)
(* Analytic cases                                                      *)
(* ------------------------------------------------------------------ *)

(* The §II-C scenario, mirrored from the exp_model validation: N clients
   issue one fully-conflicting PW write of D bytes each under the basic
   DLM; the run ends when the last write returns from the cache, i.e.
   after the (N-1) serialized revocation+flush rounds Eq. (1) counts. *)
let analytic_pass (case : Case.t) (a : Case.analytic) =
  let config =
    Config.with_dirty_limits ~dirty_min:(64 * Units.mib)
      ~dirty_max:(256 * Units.mib) Config.default
  in
  let cl =
    Cluster.create ~params:case.params ~config ~policy:Seqdlm.Policy.dlm_basic
      ~n_servers:1 ~n_clients:a.a_clients ()
  in
  Check.Sanitize.attach_cluster cl;
  let layout = Layout.v ~stripe_size:(4 * Units.mib) ~stripe_count:1 () in
  for i = 0 to a.a_clients - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "an-c%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout "/conflict" in
        Client.write ~mode:Seqdlm.Mode.PW c f ~off:0 ~len:a.a_bytes)
  done;
  Check.Sanitize.run_cluster cl;
  cl

let run_analytic (case : Case.t) (a : Case.analytic) =
  let finish = ref 0. in
  let fp =
    Check.Determinism.check ~name:(Printf.sprintf "fuzz seed %d" case.seed)
      (fun () ->
        let cl = analytic_pass case a in
        finish := Cluster.now cl;
        Cluster.engine cl)
  in
  let n = a.a_clients and d = a.a_bytes in
  let simulated = float_of_int (n * d) /. !finish in
  let model = Analytic.Model.bandwidth_exact case.params ~n ~d in
  let ratio = simulated /. model in
  if Float.abs (ratio -. 1.) > tolerance then
    Check.Violation.fail ~inv:"analytic-model"
      "Eq. (1) disagrees with the simulator: %.3e B/s simulated vs %.3e B/s \
       model (ratio %.3f, n=%d, D=%d)"
      simulated model ratio n d;
  { fingerprint = fp; ops = n; virtual_end = !finish; oracle = "analytic" }

(* ------------------------------------------------------------------ *)

let run ?inject (case : Case.t) =
  match case.kind with
  | Case.Sim s -> run_sim ?inject case s
  | Case.Analytic a -> run_analytic case a

let describe_exn = function
  | Check.Violation.Violation v ->
      "invariant violation: " ^ Check.Violation.to_string v
  | Shadow.Divergence s -> "shadow-file divergence: " ^ s
  | Check.Deadlock.Deadlock_found r -> "deadlock: " ^ Check.Deadlock.to_string r
  | e -> Printexc.to_string e

let catch ?inject case =
  match run ?inject case with
  | o -> Ok o
  | exception e ->
      (* Debug escape hatch: let the raw exception (and with
         OCAMLRUNPARAM=b its backtrace) propagate instead of being
         folded into a failure report. *)
      if Sys.getenv_opt "CCPFS_FUZZ_RERAISE" <> None then
        Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ());
      Error (describe_exn e)
