(** A fuzz case: everything one randomized cluster run depends on,
    as a first-class value.

    Cases are normally derived from a seed by {!Gen.of_seed}, but the
    type is plain data so the shrinker can edit it and regression tests
    can embed a minimized case literally (see {!to_ocaml_test}). *)

(** One client operation.  Offsets and lengths are in units of the cache
    page (4 KiB) — the lock-alignment granularity, so fuzz cases explore
    conflict structure rather than sub-page alignment noise. *)
type op =
  | Write of { block : int; blocks : int }
  | Read of { block : int; blocks : int }
  | Append of { blocks : int }
  | Truncate of { blocks : int }  (** new size *)

type phase = {
  ops : op list array;  (** per client, index = client id *)
  crash_server : int option;
      (** crash and recover this server after the phase completes *)
  crash_mid : (int * float) option;
      (** [(server, delay)]: kill this server [delay] seconds into the
          phase, {e while client requests are in flight} — failure
          detection and online recovery ([lib/ha]) bring it back *)
}

type churn = {
  ch_at : float;  (** seconds after the load segment starts *)
  ch_client : int;  (** taken mod the case's client count at run time *)
  ch_up : bool;
}
(** A client-rotation event inside a load segment (see
    [Load.Driver.churn_event]): a leaving client drains its queue but
    stops receiving new arrivals. *)

type load = {
  l_rate : float;  (** mean offered rate, requests/second *)
  l_process : int;  (** mod 3: 0 constant, 1 Poisson, 2 MMPP *)
  l_requests : int;  (** arrivals to inject *)
  l_cap : int;  (** in-flight cap before shedding *)
  l_churn : churn list;
}
(** An open-loop load segment, run after the case's phases go quiescent:
    page writes to the same shared file at scheduled arrival times
    through [Load.Driver], still under the shadow oracle and the
    determinism double-run.  Exercises arrival-time event scheduling,
    backlog shedding and churn routing inside randomized cluster
    configurations. *)

type migration = {
  mg_stripe : int;  (** taken mod the case's stripe count at run time *)
  mg_dst : int;  (** taken mod the case's server count at run time *)
  mg_after : float;  (** seconds after the simulation starts *)
}
(** An epoch-fenced lock-namespace migration (DESIGN.md §15) fired while
    the phase traffic runs: the stripe's resource is rehomed onto
    [mg_dst] through [Cluster.migrate_resource].  Fired moves are
    skipped when the shared file does not exist yet or either end is not
    Up; the coordinator itself may also abort (source crashed mid-drain,
    target went down, force-sync pinning). *)

(** A randomized cluster run: every client executes its per-phase op
    list against one shared file; phases run to quiescence in turn, with
    optional lock-server crash+recovery between them. *)
type sim = {
  policy_idx : int;  (** index into {!policies} *)
  n_servers : int;
  n_clients : int;
  stripes : int;
  stripe_blocks : int;  (** stripe size, pages *)
  dirty_min_blocks : int;  (** voluntary-flush threshold, pages *)
  dirty_max_blocks : int;  (** writer-blocking threshold, pages *)
  extent_cache_limit : int;
  tie_random : bool;  (** random (legal) choice among same-time events *)
  jitter : float;  (** extra random event delay, seconds; 0 = none *)
  loss : float;  (** fenced-RPC message-loss probability, [0..1] *)
  dup : float;  (** fenced-RPC duplication probability, [0..1] *)
  batch : int;
      (** RPC batch factor for the plain transport (0/1 = unbatched) *)
  phases : phase list;
  load : load option;
      (** optional open-loop tail segment; drawn after every other field
          so pre-existing seeds keep their shapes *)
  migrations : migration list;
      (** mid-run lock-namespace migrations; the newest draw, at the
          very tail of the rng stream (after even [load]) *)
}

(** A no-contention-structure validation case: N fully-conflicting PW
    writes of D bytes under the basic DLM, checked against Eq. (1). *)
type analytic = { a_clients : int; a_bytes : int }

type kind = Sim of sim | Analytic of analytic

type t = { seed : int; params : Netsim.Params.t; kind : kind }

val policies : Seqdlm.Policy.t array
(** The four §V-A lock managers, in a fixed order. *)

val policy_of : sim -> Seqdlm.Policy.t

val op_count : t -> int
(** Total client operations (analytic cases count one write per client). *)

val client_count : t -> int
val crash_count : t -> int

val mid_crash_count : t -> int
(** Mid-phase (online) crashes, counted separately from the quiescent
    [crash_server] ones. *)

val migration_count : t -> int

val online : sim -> bool
(** True when the case needs the fenced transport: any message faults or
    any mid-phase crash. *)

val summary : t -> string
(** One-line human description for progress logs. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump (failure reports). *)

val to_json : t -> Obs.Json.t

val to_ocaml_test : t -> string
(** An OCaml test-skeleton fragment that replays this exact case through
    [Fuzz.Exec.run] — what the shrinker emits for a minimized failure so
    it can be pasted into the regression suite.  Floats are printed as
    hex literals to round-trip exactly. *)
