(** Greedy case minimizer.

    Given a failing case, repeatedly tries structural simplifications —
    drop a phase, drop a client, drop halves then single ops, remove
    crash faults, collapse to one stripe/server, switch off the random
    jitter and tie-breaking, relax the tight cache limits — re-running
    the case after each edit and keeping any edit that still fails
    (with {e any} failure, not necessarily the original one: a simpler
    reproducer for a different symptom of the same run is still a better
    reproducer).  Iterates to a fixpoint or until the re-run budget is
    exhausted. *)

val candidates : Case.t -> Case.t list
(** One round of simplification attempts, most aggressive first. *)

val minimize :
  ?inject:Exec.inject -> ?budget:int -> Case.t -> string ->
  Case.t * string * int
(** [minimize case reason] is [(smallest, its_reason, reruns)].
    [budget] (default 150) bounds the number of re-executions. *)
