(** Open-loop load driver: inject requests at pre-scheduled arrival
    times, regardless of completions.

    Closed-loop clients (the experiment harness's workload loops) issue
    the next request only after the previous one returns, so the offered
    load collapses exactly when the system slows down — latency under
    overload is never observed.  This driver is the open-loop
    counterpart: an {!Arrivals} stream is materialised into absolute
    arrival timestamps and installed up front via [Dessim.Engine.at], so
    request [k] arrives at its scheduled time even if requests
    [0..k-1] are still in flight.  Each arrival is dispatched to the
    next [Up] client (round-robin over an [Ha.Membership] table, so
    clients can churn — leave and rejoin — mid-run), queues behind that
    client's worker process, and its {e sojourn} (completion time minus
    {e scheduled} arrival time, queueing included) is recorded.

    True open loops need a safety valve: past saturation the backlog
    would otherwise grow without bound for as long as the injection
    lasts.  A bounded in-flight cap sheds arrivals beyond
    [max_in_flight] outstanding requests — shed arrivals are counted,
    never silently dropped, and [completed + shed = arrivals] always
    holds at the end of a run. *)

open Ccpfs_util
open Ccpfs

type churn_event = {
  ch_at : float;  (** seconds after the injection origin *)
  ch_client : int;  (** client index, [0 .. n_clients-1] *)
  ch_up : bool;  (** [true] rejoin, [false] leave *)
}
(** A client leaving stops receiving new arrivals but drains what is
    already queued (a graceful leave: no crash, no lost work).  Events
    scheduled after the last completion of a run may never fire — the
    engine stops once all workers exit. *)

type spec = {
  process : Arrivals.process;
  seed : int;  (** arrival-stream seed; same seed = same schedule *)
  requests : int;  (** arrivals to inject (>= 0) *)
  max_in_flight : int;  (** shed arrivals beyond this backlog (>= 1) *)
  churn : churn_event list;
  start_at : float;  (** absolute engine time of the injection origin *)
}

type result = {
  r_offered_rate : float;  (** [Arrivals.mean_rate spec.process] *)
  r_arrivals : int;
  r_completed : int;
  r_shed : int;
  r_window_s : float;
      (** measurement window: [max (requests/rate) (last_completion -
          start)] — at least the scheduled injection span, stretched by
          any overhang, so achieved <= offered by construction *)
  r_achieved_rate : float;  (** completed / window *)
  r_goodput_Bps : float;  (** completed request bytes / window *)
  r_sojourn : Stats.t;  (** per-request sojourn, seconds *)
  r_per_client : int array;  (** arrivals assigned to each client *)
}

type handle

val launch :
  Cluster.t -> spec -> prepare:(Client.t -> 'ctx) ->
  request:('ctx -> int -> int) -> handle
(** Install the arrival schedule and spawn one worker process per
    cluster client (regular processes: the engine run waits for them).
    [prepare] runs once per worker before it starts serving (open files,
    warm caches); [request ctx k] performs arrival [k]'s work and
    returns the bytes it moved (for goodput).  The caller then drives
    the engine ([Check.Sanitize.run_cluster] / [Dessim.Engine.run]) and
    reads {!result}.
    @raise Invalid_argument on a negative [requests], [max_in_flight <
    1], an out-of-range churn client, or [start_at] in the past. *)

val result : handle -> result
(** Totals so far; call after the engine run for the final figures. *)
