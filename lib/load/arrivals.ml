module Det_random = Ccpfs_util.Det_random

type process =
  | Constant of float
  | Poisson of float
  | Mmpp of { rate0 : float; rate1 : float; dwell0 : float; dwell1 : float }

let validate = function
  | Constant r | Poisson r ->
      if not (r > 0. && Float.is_finite r) then
        invalid_arg "Arrivals: rate must be positive and finite"
  | Mmpp { rate0; rate1; dwell0; dwell1 } ->
      List.iter
        (fun v ->
          if not (v > 0. && Float.is_finite v) then
            invalid_arg "Arrivals: MMPP rates and dwells must be positive")
        [ rate0; rate1; dwell0; dwell1 ]

let mean_rate = function
  | Constant r | Poisson r -> r
  | Mmpp { rate0; rate1; dwell0; dwell1 } ->
      ((dwell0 *. rate0) +. (dwell1 *. rate1)) /. (dwell0 +. dwell1)

let bursty ~rate =
  let dwell = 20. /. rate in
  Mmpp { rate0 = 0.4 *. rate; rate1 = 1.6 *. rate; dwell0 = dwell; dwell1 = dwell }

let of_string ~rate = function
  | "constant" -> Some (Constant rate)
  | "poisson" -> Some (Poisson rate)
  | "mmpp" -> Some (bursty ~rate)
  | _ -> None

let to_string = function
  | Constant _ -> "constant"
  | Poisson _ -> "poisson"
  | Mmpp _ -> "mmpp"

type t = {
  proc : process;
  rng : Det_random.t;
  (* MMPP modulation: the stream's own clock is the running sum of gaps
     handed out; state flips are tracked against that clock. *)
  mutable clock : float; (* sum of all gaps returned so far *)
  mutable st : int; (* current modulation state, 0 or 1 *)
  mutable dwell_end : float; (* clock value at which the current dwell ends *)
  st_time : float array; (* accumulated clock time per state *)
  st_visits : int array; (* dwell periods entered per state *)
}

(* Inverse-CDF exponential draw; 1 - u is in (0, 1] when u is in [0, 1),
   so the log argument never hits 0. *)
let exp_draw rng ~mean = -.log (1. -. Det_random.float rng 1.) *. mean

let create ~seed proc =
  validate proc;
  let rng = Det_random.create ~seed in
  let t =
    {
      proc; rng; clock = 0.; st = 0; dwell_end = infinity;
      st_time = [| 0.; 0. |]; st_visits = [| 1; 0 |];
    }
  in
  (match proc with
  | Mmpp { dwell0; _ } -> t.dwell_end <- exp_draw rng ~mean:dwell0
  | Constant _ | Poisson _ -> ());
  t

let process t = t.proc
let state t = t.st
let state_time t i = t.st_time.(i)
let state_visits t i = t.st_visits.(i)

let mmpp_rate t =
  match t.proc with
  | Mmpp { rate0; rate1; _ } -> if t.st = 0 then rate0 else rate1
  | Constant _ | Poisson _ -> assert false

let mmpp_dwell t =
  match t.proc with
  | Mmpp { dwell0; dwell1; _ } -> if t.st = 0 then dwell0 else dwell1
  | Constant _ | Poisson _ -> assert false

let advance_clock t dt =
  t.st_time.(t.st) <- t.st_time.(t.st) +. dt;
  t.clock <- t.clock +. dt

let next_gap t =
  match t.proc with
  | Constant r -> 1. /. r
  | Poisson r -> exp_draw t.rng ~mean:(1. /. r)
  | Mmpp _ ->
      (* Walk modulation periods until an arrival lands inside one: draw
         the candidate arrival at the current state's rate; if it falls
         past the dwell boundary, discard it (memorylessness of the
         exponential makes the restart in the next state exact), flip
         state, and retry from the boundary. *)
      let start = t.clock in
      let rec hunt () =
        let cand = exp_draw t.rng ~mean:(1. /. mmpp_rate t) in
        if t.clock +. cand <= t.dwell_end then begin
          advance_clock t cand;
          t.clock -. start
        end
        else begin
          advance_clock t (t.dwell_end -. t.clock);
          t.st <- 1 - t.st;
          t.st_visits.(t.st) <- t.st_visits.(t.st) + 1;
          t.dwell_end <- t.clock +. exp_draw t.rng ~mean:(mmpp_dwell t);
          hunt ()
        end
      in
      hunt ()

let times ~seed proc ~n =
  let t = create ~seed proc in
  let a = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. next_gap t;
    a.(k) <- !acc
  done;
  a
