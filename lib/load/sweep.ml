open Ccpfs_util

type point = {
  p_rate : float;
  p_result : Driver.result;
  p_p50 : float;
  p_p99 : float;
  p_p999 : float;
  p_violates : bool;
  p_knee : bool;
}

type config = {
  rates : float list;
  slo_s : float;
  min_achieved_frac : float;
  bisect_steps : int;
}

let eval config ~run_rate rate =
  let r : Driver.result = run_rate rate in
  let pct p =
    if Stats.count r.Driver.r_sojourn = 0 then 0.
    else Stats.percentile r.Driver.r_sojourn p
  in
  let p50 = pct 50. and p99 = pct 99. and p999 = pct 99.9 in
  let violates =
    p99 > config.slo_s
    || r.Driver.r_achieved_rate < config.min_achieved_frac *. rate
  in
  { p_rate = rate; p_result = r; p_p50 = p50; p_p99 = p99; p_p999 = p999;
    p_violates = violates; p_knee = false }

let run config ~run_rate =
  let rates = List.sort_uniq Float.compare config.rates in
  if List.length rates = 0 || List.exists (fun r -> not (r > 0.)) rates then
    invalid_arg "Load.Sweep: rates must be a non-empty positive grid";
  let grid = List.map (eval config ~run_rate) rates in
  (* Bisect between the last compliant grid rate and the first violating
     one: each step halves the bracket, keeping the knee the lowest
     violating rate seen. *)
  let rec first_bad prev = function
    | [] -> None
    | p :: tl ->
        if p.p_violates then Some (prev, p) else first_bad (Some p) tl
  in
  let extra =
    match first_bad None grid with
    | Some (Some good, bad) when config.bisect_steps > 0 ->
        let lo = ref good.p_rate and hi = ref bad.p_rate in
        let acc = ref [] in
        for _ = 1 to config.bisect_steps do
          let mid = 0.5 *. (!lo +. !hi) in
          let p = eval config ~run_rate mid in
          acc := p :: !acc;
          if p.p_violates then hi := mid else lo := mid
        done;
        List.rev !acc
    | _ -> []
  in
  let all =
    List.sort (fun a b -> Float.compare a.p_rate b.p_rate) (grid @ extra)
  in
  match List.find_opt (fun p -> p.p_violates) all with
  | None -> all
  | Some k ->
      List.map (fun p -> { p with p_knee = p.p_rate = k.p_rate && p.p_violates }) all

let knee points = List.find_opt (fun p -> p.p_knee) points
