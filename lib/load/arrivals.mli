(** Deterministic-seeded arrival processes for open-loop load generation.

    A stream of inter-arrival gaps drawn from an explicitly seeded
    {!Ccpfs_util.Det_random} state: two streams created with the same
    seed and process produce bit-identical gap sequences, so whole load
    runs fingerprint deterministically (the repo's determinism
    double-run applies to the benchmark harness too).

    Three processes, in increasing burstiness:
    - {e constant}: gaps are exactly [1/rate] — a paced closed-grid
      baseline (lockstep by construction; prefer Poisson when latency
      percentiles matter).
    - {e Poisson}: i.i.d. exponential gaps with parameter [rate] — the
      memoryless open-loop standard; bursts of back-to-back arrivals
      occur at any utilisation, which is exactly what closed-loop
      clients can never generate.
    - {e MMPP(2)}: a Markov-modulated Poisson process with two states;
      the process dwells an exponential time (mean [dwell0]/[dwell1]) in
      each state and emits Poisson arrivals at that state's rate —
      heavy-tailed burstiness with a controlled long-run mean. *)

type process =
  | Constant of float  (** rate, requests/second *)
  | Poisson of float  (** rate, requests/second *)
  | Mmpp of { rate0 : float; rate1 : float; dwell0 : float; dwell1 : float }
      (** per-state Poisson rates (req/s) and mean state dwell times
          (seconds); all four must be positive *)

val mean_rate : process -> float
(** Long-run arrivals/second: the rate itself, or for MMPP the
    dwell-weighted average [(d0·r0 + d1·r1) / (d0 + d1)]. *)

val bursty : rate:float -> process
(** A canonical 2-state MMPP with long-run mean [rate]: a quiet state at
    [0.4·rate] and a bursty state at [1.6·rate], equal mean dwells of 20
    mean inter-arrival times each — bursty enough to expose queueing at
    moderate utilisation while keeping the offered load comparable to
    [Poisson rate]. *)

val of_string : rate:float -> string -> process option
(** ["constant"], ["poisson"] or ["mmpp"] (the {!bursty} shape), at the
    given mean rate. *)

val to_string : process -> string
(** The [of_string] name: ["constant"], ["poisson"] or ["mmpp"]. *)

type t

val create : seed:int -> process -> t
(** @raise Invalid_argument on a non-positive rate or dwell. *)

val process : t -> process

val next_gap : t -> float
(** The next inter-arrival gap, seconds (>= 0, finite).  Draw [n] gaps
    and the [k]-th arrival lands at the running sum of the first [k]. *)

val times : seed:int -> process -> n:int -> float array
(** The first [n] arrival times relative to the stream start (the
    prefix sums of [next_gap] on a fresh stream): what a load driver
    installs as its arrival schedule. *)

(** {1 MMPP introspection (statistical tests)} *)

val state : t -> int
(** Current modulation state (0 or 1; constant/Poisson always 0). *)

val state_time : t -> int -> float
(** Total virtual time the stream has spent in state [i] so far. *)

val state_visits : t -> int -> int
(** Completed-or-current dwell periods in state [i] (1 for state 0 and 0
    for state 1 on a fresh MMPP stream). *)
