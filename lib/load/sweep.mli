(** Offered-load sweep: walk a rate grid, find the knee.

    The classic open-loop methodology (offered load vs response time):
    evaluate each offered rate on a {e fresh} system — one cluster per
    point, so no warm caches or leftover backlog couple the points —
    and locate the knee, the first rate where the system stops keeping
    up.  A point violates when its sojourn p99 exceeds the SLO {e or}
    its achieved rate falls below [min_achieved_frac] of offered (the
    saturation signature: completions can no longer track arrivals).
    Optionally bisect between the last compliant and first violating
    grid rates to pin the knee tighter than the grid resolution. *)

type point = {
  p_rate : float;  (** offered rate, requests/second *)
  p_result : Driver.result;
  p_p50 : float;
  p_p99 : float;
  p_p999 : float;  (** sojourn percentiles, seconds *)
  p_violates : bool;  (** past the SLO or below the achieved-rate floor *)
  p_knee : bool;  (** the lowest-rate violating point of the sweep *)
}

type config = {
  rates : float list;  (** grid of offered rates; evaluated ascending *)
  slo_s : float;  (** sojourn p99 SLO, seconds *)
  min_achieved_frac : float;  (** violation floor, typically 0.95 *)
  bisect_steps : int;  (** extra points between last-good and first-bad *)
}

val run : config -> run_rate:(float -> Driver.result) -> point list
(** [run_rate rate] must evaluate one rate point on a fresh cluster and
    return the driver result.  Points come back sorted by rate
    (bisection points interleaved), with [p_knee] set on the lowest
    violating rate, if any.
    @raise Invalid_argument on an empty or non-positive rate grid. *)

val knee : point list -> point option
(** The [p_knee] point, if the sweep found one. *)
