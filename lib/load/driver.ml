open Ccpfs_util
open Ccpfs

type churn_event = { ch_at : float; ch_client : int; ch_up : bool }

type spec = {
  process : Arrivals.process;
  seed : int;
  requests : int;
  max_in_flight : int;
  churn : churn_event list;
  start_at : float;
}

type result = {
  r_offered_rate : float;
  r_arrivals : int;
  r_completed : int;
  r_shed : int;
  r_window_s : float;
  r_achieved_rate : float;
  r_goodput_Bps : float;
  r_sojourn : Stats.t;
  r_per_client : int array;
}

type handle = {
  h_spec : spec;
  h_completed : int ref;
  h_shed : int ref;
  h_bytes : int ref;
  h_last_completion : float ref;
  h_sojourn : Stats.t;
  h_per_client : int array;
}

let validate cl spec =
  if spec.requests < 0 then invalid_arg "Load.Driver: requests < 0";
  if spec.max_in_flight < 1 then invalid_arg "Load.Driver: max_in_flight < 1";
  if spec.start_at < Cluster.now cl then
    invalid_arg "Load.Driver: start_at in the past";
  let n = Cluster.n_clients cl in
  List.iter
    (fun c ->
      if c.ch_client < 0 || c.ch_client >= n || c.ch_at < 0. then
        invalid_arg "Load.Driver: churn event out of range")
    spec.churn

let launch cl spec ~prepare ~request =
  validate cl spec;
  let eng = Cluster.engine cl in
  let n = Cluster.n_clients cl in
  let h =
    {
      h_spec = spec;
      h_completed = ref 0;
      h_shed = ref 0;
      h_bytes = ref 0;
      h_last_completion = ref spec.start_at;
      h_sojourn = Stats.create ();
      h_per_client = Array.make n 0;
    }
  in
  let sojourn_hist = Obs.Metrics.histogram (Dessim.Engine.metrics eng) "load.sojourn" in
  let shed_ctr = Obs.Metrics.counter (Dessim.Engine.metrics eng) "load.shed" in
  (* The client churn table: Ha.Membership's Up/Down states, reused for
     clients (the lease machinery is idle — a huge lease, no
     heartbeats; only the Up/Down bit routes arrivals). *)
  let members =
    Ha.Membership.create eng ~lease:1e12
      ~names:(Array.init n (Printf.sprintf "load-c%d"))
  in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let conds = Array.init n (fun _ -> Dessim.Condition.create eng) in
  let injection_done = ref (spec.requests = 0) in
  let arrivals_seen = ref 0 in
  let in_flight = ref 0 in
  let rr = ref 0 in
  let finish_injection () =
    injection_done := true;
    Array.iter Dessim.Condition.broadcast conds
  in
  (* Round-robin over Up clients; None when every client has left. *)
  let pick_client () =
    let found = ref None in
    for step = 0 to n - 1 do
      if !found = None then begin
        let i = (!rr + step) mod n in
        if Ha.Membership.state members i = Ha.Membership.Up then
          found := Some i
      end
    done;
    (match !found with Some i -> rr := (i + 1) mod n | None -> ());
    !found
  in
  let arrive k sched =
    incr arrivals_seen;
    (if !in_flight >= spec.max_in_flight then begin
       incr h.h_shed;
       Obs.Metrics.incr shed_ctr
     end
     else
       match pick_client () with
       | None ->
           incr h.h_shed;
           Obs.Metrics.incr shed_ctr
       | Some i ->
           incr in_flight;
           h.h_per_client.(i) <- h.h_per_client.(i) + 1;
           Queue.push (k, sched) queues.(i);
           Dessim.Condition.signal conds.(i));
    if !arrivals_seen = spec.requests then finish_injection ()
  in
  (* The whole arrival schedule goes in up front, at absolute times:
     this is what makes the loop open — arrival k+1 fires on schedule
     whether or not arrival k has even been dequeued yet. *)
  let times = Arrivals.times ~seed:spec.seed spec.process ~n:spec.requests in
  Array.iteri
    (fun k dt ->
      let sched = spec.start_at +. dt in
      Dessim.Engine.at eng ~time:sched (fun () -> arrive k sched))
    times;
  List.iter
    (fun c ->
      Dessim.Engine.at eng ~time:(spec.start_at +. c.ch_at) (fun () ->
          Ha.Membership.set_state members c.ch_client
            (if c.ch_up then Ha.Membership.Up else Ha.Membership.Down)))
    spec.churn;
  for i = 0 to n - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "load-w%d" i) (fun c ->
        let ctx = prepare c in
        let q = queues.(i) and cond = conds.(i) in
        let running = ref true in
        while !running do
          Dessim.Condition.wait_until ~ctx:"load arrival" cond (fun () ->
              (not (Queue.is_empty q)) || !injection_done);
          if not (Queue.is_empty q) then begin
            let k, sched = Queue.pop q in
            let bytes = request ctx k in
            let now = Cluster.now cl in
            decr in_flight;
            incr h.h_completed;
            h.h_bytes := !(h.h_bytes) + bytes;
            if now > !(h.h_last_completion) then h.h_last_completion := now;
            let s = now -. sched in
            Stats.add h.h_sojourn s;
            Obs.Metrics.observe sojourn_hist s
          end
          else if !injection_done then running := false
        done)
  done;
  h

let result h =
  let spec = h.h_spec in
  let rate = Arrivals.mean_rate spec.process in
  let span = float_of_int spec.requests /. rate in
  let window =
    Float.max span (!(h.h_last_completion) -. spec.start_at)
    |> Float.max 1e-12
  in
  {
    r_offered_rate = rate;
    r_arrivals = !(h.h_completed) + !(h.h_shed);
    r_completed = !(h.h_completed);
    r_shed = !(h.h_shed);
    r_window_s = window;
    r_achieved_rate = float_of_int !(h.h_completed) /. window;
    r_goodput_Bps = float_of_int !(h.h_bytes) /. window;
    r_sojourn = h.h_sojourn;
    r_per_client = Array.copy h.h_per_client;
  }
