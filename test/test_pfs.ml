(* Tests for ccPFS: layout math, the data-server write routine, the
   client cache, and end-to-end data safety (paper §V-B1). *)

open Ccpfs_util
open Dessim
open Ccpfs

let iv lo hi = Interval.v ~lo ~hi
let mib = Units.mib

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_single_stripe () =
  let l = Layout.v ~stripe_count:1 () in
  Alcotest.(check (list (pair int (pair int int))))
    "identity map"
    [ (0, (123, 456_000)) ]
    (Layout.chunks l (iv 123 456_000)
    |> List.map (fun (s, (r : Interval.t)) -> (s, (r.lo, r.hi))));
  Alcotest.(check bool) "never spans" false
    (Layout.spans_multiple l (iv 0 (100 * mib)))

let test_layout_two_stripes () =
  let l = Layout.v ~stripe_size:mib ~stripe_count:2 () in
  (* [0, 2MiB) covers chunk 0 (stripe 0) and chunk 1 (stripe 1). *)
  let got =
    Layout.chunks l (iv 0 (2 * mib))
    |> List.map (fun (s, (r : Interval.t)) -> (s, r.lo, r.hi))
  in
  Alcotest.(check (list (triple int int int)))
    "one object range per stripe"
    [ (0, 0, mib); (1, 0, mib) ]
    got;
  Alcotest.(check bool) "spans" true (Layout.spans_multiple l (iv 0 (2 * mib)));
  Alcotest.(check bool) "within one chunk" false
    (Layout.spans_multiple l (iv 100 200))

let test_layout_contiguous_merging () =
  (* A 4 MiB write on 2 stripes: each stripe's two chunks merge into one
     contiguous object range. *)
  let l = Layout.v ~stripe_size:mib ~stripe_count:2 () in
  let got =
    Layout.chunks l (iv 0 (4 * mib))
    |> List.map (fun (s, (r : Interval.t)) -> (s, r.lo, r.hi))
  in
  Alcotest.(check (list (triple int int int)))
    "merged rows"
    [ (0, 0, 2 * mib); (1, 0, 2 * mib) ]
    got

let test_layout_unaligned_span () =
  let l = Layout.v ~stripe_size:mib ~stripe_count:4 () in
  let lo = mib - 1000 in
  let got =
    Layout.chunks l (iv lo (lo + 2000))
    |> List.map (fun (s, (r : Interval.t)) -> (s, r.lo, r.hi))
  in
  Alcotest.(check (list (triple int int int)))
    "straddles stripes 0 and 1"
    [ (0, mib - 1000, mib); (1, 0, 1000) ]
    got

let prop_layout_partition =
  let open QCheck in
  Test.make ~name:"chunks partition the range; file_offset inverts" ~count:200
    (make
       ~print:(fun (sc, lo, len) -> Printf.sprintf "sc=%d lo=%d len=%d" sc lo len)
       Gen.(triple (int_range 1 8) (int_bound 10_000_000) (int_range 1 5_000_000)))
    (fun (stripe_count, lo, len) ->
      let l = Layout.v ~stripe_size:65536 ~stripe_count () in
      let chunks = Layout.chunks l (iv lo (lo + len)) in
      let total =
        List.fold_left (fun acc (_, r) -> acc + Interval.length r) 0 chunks
      in
      let inverse_ok =
        List.for_all
          (fun (stripe, (r : Interval.t)) ->
            let f = Layout.file_offset l ~stripe r.lo in
            lo <= f && f < lo + len
            && Layout.chunks l (iv f (f + 1))
               |> List.for_all (fun (s', (r' : Interval.t)) ->
                      s' = stripe && r'.lo = r.lo))
          chunks
      in
      total = len && inverse_ok)

(* Per-byte bijection: with tiny stripes, walk every byte of a random
   range — each file byte must map to exactly one (stripe, object) byte,
   no two file bytes may collide on the same object byte, and
   [file_offset] must invert the map exactly. *)
let prop_layout_byte_bijection =
  let open QCheck in
  Test.make ~name:"stripe map is a per-byte bijection" ~count:300
    (make
       ~print:(fun ((sc, ss), (lo, len)) ->
         Printf.sprintf "sc=%d ss=%d lo=%d len=%d" sc ss lo len)
       Gen.(
         pair
           (pair (int_range 1 5) (int_range 1 7))
           (pair (int_bound 200) (int_range 1 64))))
    (fun ((stripe_count, stripe_size), (lo, len)) ->
      let l = Layout.v ~stripe_size ~stripe_count () in
      let seen = Hashtbl.create 64 in
      for f = lo to lo + len - 1 do
        (match Layout.chunks l (iv f (f + 1)) with
        | [ (stripe, (r : Interval.t)) ] when Interval.length r = 1 ->
            let key = (stripe, r.lo) in
            (match Hashtbl.find_opt seen key with
            | Some f' ->
                Test.fail_reportf
                  "file bytes %d and %d both land on stripe %d object byte %d"
                  f' f stripe r.lo
            | None -> Hashtbl.add seen key f);
            let back = Layout.file_offset l ~stripe r.lo in
            if back <> f then
              Test.fail_reportf
                "file_offset ~stripe:%d %d = %d, expected %d" stripe r.lo back
                f
        | _ -> Test.fail_reportf "file byte %d maps to %s" f "not exactly one object byte");
      done;
      Hashtbl.length seen = len)

(* Extents round-trip: decompose a range into per-stripe object extents,
   map every extent byte back through [file_offset], and the union must
   reassemble the original range exactly — no loss, no overlap, no
   spill beyond the ends. *)
let prop_layout_extents_round_trip =
  let open QCheck in
  Test.make ~name:"extents round-trip through file_offset" ~count:300
    (make
       ~print:(fun ((sc, ss), (lo, len)) ->
         Printf.sprintf "sc=%d ss=%d lo=%d len=%d" sc ss lo len)
       Gen.(
         pair
           (pair (int_range 1 6) (int_range 1 9))
           (pair (int_bound 500) (int_range 1 200))))
    (fun ((stripe_count, stripe_size), (lo, len)) ->
      let l = Layout.v ~stripe_size ~stripe_count () in
      let bytes =
        Layout.chunks l (iv lo (lo + len))
        |> List.concat_map (fun (stripe, (r : Interval.t)) ->
               List.init (Interval.length r) (fun k ->
                   Layout.file_offset l ~stripe (r.lo + k)))
      in
      List.sort_uniq compare bytes = List.init len (fun k -> lo + k))

let test_rid_packing () =
  let rid = Layout.rid ~fid:42 ~stripe:7 in
  Alcotest.(check int) "fid" 42 (Layout.rid_fid rid);
  Alcotest.(check int) "stripe" 7 (Layout.rid_stripe rid);
  Alcotest.(check bool) "distinct files distinct rids" true
    (Layout.rid ~fid:1 ~stripe:0 <> Layout.rid ~fid:0 ~stripe:1)

(* ------------------------------------------------------------------ *)
(* Cluster harness                                                     *)
(* ------------------------------------------------------------------ *)

(* Small, fast parameters; generous bandwidths keep timings short while
   preserving protocol behaviour. *)
let fast_params =
  {
    Netsim.Params.rtt = 1e-4;
    b_net = 1e9;
    server_ops = 10_000.;
    b_disk = 5e8;
    b_mem = 2e9;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let small_config =
  Config.with_dirty_limits ~dirty_min:(4 * mib) ~dirty_max:(16 * mib)
    Config.default

let make ?(policy = Seqdlm.Policy.seqdlm) ?(config = small_config) ~servers
    ~clients () =
  Cluster.create ~params:fast_params ~config ~policy ~n_servers:servers
    ~n_clients:clients ()

let tag_of_byte cl file ~stripe ~obj_off =
  let c = Cluster.stripe_contents cl file ~stripe in
  match Content.read c (iv obj_off (obj_off + 1)) with
  | [ (_, tag) ] -> tag
  | _ -> None

(* ------------------------------------------------------------------ *)
(* End-to-end basics                                                   *)
(* ------------------------------------------------------------------ *)

let test_write_fsync_contents () =
  let cl = make ~servers:1 ~clients:1 () in
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"writer" (fun c ->
      let f = Client.open_file c ~create:true "/a" in
      file := Some f;
      Client.write c f ~off:0 ~len:65536;
      Client.write c f ~off:65536 ~len:65536;
      Client.fsync c);
  Cluster.run cl;
  let f = Option.get !file in
  let contents = Cluster.stripe_contents cl f ~stripe:0 in
  Alcotest.(check int) "all bytes on device" (128 * 1024)
    (Content.written_bytes contents);
  (match Content.read contents (iv 0 (128 * 1024)) with
  | segs ->
      Alcotest.(check bool) "no holes" true
        (List.for_all (fun (_, t) -> t <> None) segs));
  Cluster.check_invariants cl

let test_read_your_writes_before_flush () =
  let cl = make ~servers:1 ~clients:1 () in
  let seen = ref [] in
  Cluster.spawn_client cl 0 ~name:"rw" (fun c ->
      let f = Client.open_file c ~create:true "/a" in
      Client.write c f ~off:0 ~len:8192;
      (* No fsync: data only in the client cache; the read must see it
         via the upgraded PW lock. *)
      seen := Client.read c f ~off:0 ~len:8192);
  Cluster.run cl;
  Alcotest.(check bool) "saw own dirty data" true
    (!seen <> []
    && List.for_all
         (fun (_, _, tag) ->
           match tag with Some t -> t.Content.writer = 0 | None -> false)
         !seen)

let test_read_after_other_client_write () =
  (* Producer/consumer coherence: reader must see the producer's data
     even though the producer never fsyncs — the PR lock conflict forces
     the flush. *)
  let cl = make ~servers:1 ~clients:2 () in
  let seen = ref [] in
  Cluster.spawn_client cl 0 ~name:"producer" (fun c ->
      let f = Client.open_file c ~create:true "/shared" in
      Client.write c f ~off:0 ~len:65536);
  Cluster.spawn_client cl 1 ~name:"consumer" (fun c ->
      Engine.sleep (Cluster.engine cl) 0.05;
      let f = Client.open_file c "/shared" in
      seen := Client.read c f ~off:0 ~len:65536);
  Cluster.run cl;
  Alcotest.(check bool) "consumer sees producer bytes" true
    (!seen <> []
    && List.for_all
         (fun (_, _, tag) ->
           match tag with Some t -> t.Content.writer = 0 | None -> false)
         !seen)

let test_append_atomic () =
  let cl = make ~servers:1 ~clients:4 () in
  let offsets = ref [] in
  for i = 0 to 3 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "a%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/log" in
        for _ = 1 to 3 do
          let off = Client.append c f ~len:1000 in
          offsets := off :: !offsets
        done)
  done;
  Cluster.run cl;
  let offs = List.sort Int.compare !offsets in
  Alcotest.(check (list int))
    "appends got disjoint consecutive offsets"
    (List.init 12 (fun i -> i * 1000))
    offs;
  let cl0 = Cluster.client cl 0 in
  let size = ref 0 in
  Cluster.spawn_client cl 0 ~name:"stat" (fun c ->
      let f = Client.open_file c "/log" in
      size := Client.stat_size c f);
  Cluster.run cl;
  ignore cl0;
  Alcotest.(check int) "final size" 12_000 !size

let test_truncate () =
  let cl = make ~servers:1 ~clients:1 () in
  let post = ref [] and size = ref (-1) in
  Cluster.spawn_client cl 0 ~name:"t" (fun c ->
      let f = Client.open_file c ~create:true "/t" in
      ignore (Client.append c f ~len:10_000);
      Client.fsync c;
      Client.truncate c f ~size:4_000;
      size := Client.stat_size c f;
      post := Client.read c f ~off:0 ~len:10_000);
  Cluster.run cl;
  Alcotest.(check int) "size after truncate" 4_000 !size;
  let data_bytes =
    List.fold_left
      (fun acc (_, r, tag) ->
        if tag = None then acc else acc + Interval.length r)
      0 !post
  in
  Alcotest.(check int) "bytes beyond truncation are holes" 4_000 data_bytes

let test_dirty_max_blocks_writers () =
  let config =
    Config.with_dirty_limits ~dirty_min:(1 * mib) ~dirty_max:(2 * mib)
      Config.default
  in
  let cl = make ~config ~servers:1 ~clients:1 () in
  let peak = ref 0 in
  Cluster.spawn_client cl 0 ~name:"w" (fun c ->
      let f = Client.open_file c ~create:true "/big" in
      for k = 0 to 63 do
        Client.write c f ~off:(k * 256 * 1024) ~len:(256 * 1024)
      done;
      peak := Client_cache.dirty_peak (Client.cache c));
  Cluster.run cl;
  Alcotest.(check bool)
    (Printf.sprintf "dirty stayed under max (peak %d)" !peak)
    true
    (!peak <= 2 * mib);
  Alcotest.(check bool) "flush daemon drained voluntarily" true
    (Client_cache.bytes_flushed (Client.cache (Cluster.client cl 0)) > 0)

(* ------------------------------------------------------------------ *)
(* Data safety (paper §V-B1)                                           *)
(* ------------------------------------------------------------------ *)

(* IO500 ior-hard shape: N-1 strided, odd-sized writes, each client
   writes its own slots; then every client reads a peer's region back
   and checks provenance.  Run for 1, 2 and 4 stripes. *)
let test_ior_hard_readback stripes () =
  let n = 4 and per_client = 6 and xfer = 47_008 in
  let cl = make ~servers:(max 1 (stripes / 2)) ~clients:n () in
  let layout = Layout.v ~stripe_size:mib ~stripe_count:stripes () in
  for i = 0 to n - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout "/ior" in
        for k = 0 to per_client - 1 do
          let slot = (k * n) + i in
          Client.write c f ~off:(slot * xfer) ~len:xfer
        done)
  done;
  Cluster.run cl;
  (* Read-back phase from different clients (client j reads i's data). *)
  let errors = ref 0 in
  for j = 0 to n - 1 do
    Cluster.spawn_client cl j ~name:(Printf.sprintf "r%d" j) (fun c ->
        let f = Client.open_file c "/ior" in
        let owner = (j + 1) mod n in
        for k = 0 to per_client - 1 do
          let slot = (k * n) + owner in
          let segs = Client.read c f ~off:(slot * xfer) ~len:xfer in
          List.iter
            (fun (_, _, tag) ->
              match tag with
              | Some t when t.Content.writer = owner -> ()
              | Some _ | None -> incr errors)
            segs
        done)
  done;
  Cluster.run cl;
  Alcotest.(check int) "every byte has the right writer" 0 !errors;
  Cluster.check_invariants cl

(* Fig. 7 workload: concurrent overlapping writes, two per client; after
   a barrier, all clients read the whole range; checksums must agree and
   the surviving content must be some client's second write. *)
let test_overlapping_writes_checksum stripes () =
  let n = 4 and len = 256 * 1024 in
  let cl = make ~servers:1 ~clients:n () in
  let layout = Layout.v ~stripe_size:(64 * 1024) ~stripe_count:stripes () in
  for i = 0 to n - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout "/overlap" in
        Client.write c f ~off:0 ~len;
        Client.write c f ~off:0 ~len)
  done;
  Cluster.run cl (* barrier: all writes complete *);
  let sums = Array.make n 0 in
  for i = 0 to n - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "r%d" i) (fun c ->
        let f = Client.open_file c "/overlap" in
        sums.(i) <- Client.read_checksum c f ~off:0 ~len)
  done;
  Cluster.run cl;
  for i = 1 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "checksum %d = checksum 0" i)
      sums.(0) sums.(i)
  done;
  (* Examine the device after the PR locks forced all flushes: each byte
     must carry the same winner, and it must be a second write (op = 2,
     matching "the results are from the second write of some client"). *)
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/overlap"));
  Cluster.run cl;
  let f = Option.get !file in
  let winner = tag_of_byte cl f ~stripe:0 ~obj_off:0 in
  (match winner with
  | Some t ->
      Alcotest.(check int) "winner wrote twice (second write)" 2 t.Content.op
  | None -> Alcotest.fail "no data on device");
  (* All stripes, all bytes: same (writer, op). *)
  for stripe = 0 to stripes - 1 do
    let c = Cluster.stripe_contents cl f ~stripe in
    Content.read c (iv 0 (len / stripes))
    |> List.iter (fun (_, tag) ->
           match (tag, winner) with
           | Some a, Some b ->
               Alcotest.(check int) "same writer" b.Content.writer a.Content.writer;
               Alcotest.(check int) "same op" b.Content.op a.Content.op
           | _ -> Alcotest.fail "hole or missing winner")
  done;
  Cluster.check_invariants cl

(* The same overlapping-write safety must hold for every DLM policy. *)
let test_overlap_all_policies () =
  List.iter
    (fun policy ->
      if not policy.Seqdlm.Policy.datatype_requests then begin
        let n = 3 and len = 128 * 1024 in
        let cl = make ~policy ~servers:1 ~clients:n () in
        for i = 0 to n - 1 do
          Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
              let f = Client.open_file c ~create:true "/p" in
              Client.write c f ~off:0 ~len)
        done;
        Cluster.run cl;
        let sums = Array.make n 0 in
        for i = 0 to n - 1 do
          Cluster.spawn_client cl i ~name:(Printf.sprintf "r%d" i) (fun c ->
              let f = Client.open_file c "/p" in
              sums.(i) <- Client.read_checksum c f ~off:0 ~len)
        done;
        Cluster.run cl;
        for i = 1 to n - 1 do
          Alcotest.(check int)
            (policy.Seqdlm.Policy.name ^ ": coherent readback")
            sums.(0) sums.(i)
        done;
        Cluster.check_invariants cl
      end)
    Seqdlm.Policy.all

(* Multi-stripe spanning writes under BW: the final file must be one
   whole write, never a mix of two clients' writes (§III-B1). *)
let test_spanning_write_atomicity () =
  let stripes = 2 and len = 2 * mib in
  let cl = make ~servers:2 ~clients:4 () in
  let layout = Layout.v ~stripe_size:mib ~stripe_count:stripes () in
  for i = 0 to 3 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout "/atomic" in
        for _ = 1 to 3 do
          Client.write c f ~off:0 ~len
        done)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/atomic"));
  Cluster.run cl;
  let f = Option.get !file in
  let tags = ref [] in
  for stripe = 0 to stripes - 1 do
    let c = Cluster.stripe_contents cl f ~stripe in
    Content.read c (iv 0 mib)
    |> List.iter (fun (_, tag) -> tags := tag :: !tags)
  done;
  (match !tags with
  | Some first :: rest ->
      List.iter
        (fun tag ->
          match tag with
          | Some t ->
              Alcotest.(check int) "atomic writer" first.Content.writer
                t.Content.writer;
              Alcotest.(check int) "atomic op" first.Content.op t.Content.op
          | None -> Alcotest.fail "hole in written range")
        rest
  | _ -> Alcotest.fail "no data");
  Cluster.check_invariants cl

(* ------------------------------------------------------------------ *)
(* Durability (§IV-C1)                                                 *)
(* ------------------------------------------------------------------ *)

let test_fsync_file_scoped () =
  let cl = make ~servers:1 ~clients:1 () in
  Cluster.spawn_client cl 0 ~name:"w" (fun c ->
      let fa = Client.open_file c ~create:true "/a" in
      let fb = Client.open_file c ~create:true "/b" in
      Client.write c fa ~off:0 ~len:65536;
      Client.write c fb ~off:0 ~len:65536;
      Client.fsync_file c fa;
      (* /a durable, /b still dirty *)
      Alcotest.(check int) "b still dirty" 65536
        (Client_cache.dirty_bytes (Client.cache c)));
  Cluster.run cl;
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/a"));
  Cluster.run cl;
  Alcotest.(check int) "a on device" 65536
    (Content.written_bytes (Cluster.stripe_contents cl (Option.get !file) ~stripe:0))

let test_client_crash_durability () =
  (* The §IV-C1 convention: a crashing client loses exactly its dirty
     data; everything flushed earlier survives and stays readable. *)
  let cl = make ~servers:1 ~clients:2 () in
  Cluster.spawn_client cl 0 ~name:"doomed" (fun c ->
      let f = Client.open_file c ~create:true "/d" in
      Client.write c f ~off:0 ~len:65536;
      Client.fsync c;
      Client.write c f ~off:65536 ~len:65536;
      (* crash before the second write is flushed *)
      let lost = Client.crash c in
      Alcotest.(check int) "exactly the dirty bytes lost" 65536 lost);
  Cluster.run cl;
  let seen = ref [] in
  Cluster.spawn_client cl 1 ~name:"survivor" (fun c ->
      let f = Client.open_file c "/d" in
      seen := Client.read c f ~off:0 ~len:(2 * 65536));
  Cluster.run cl;
  let data_bytes =
    List.fold_left
      (fun acc (_, r, tag) -> if tag = None then acc else acc + Interval.length r)
      0 !seen
  in
  Alcotest.(check int) "flushed half survives, dirty half is a hole" 65536
    data_bytes

(* ------------------------------------------------------------------ *)
(* Clean (read) cache                                                  *)
(* ------------------------------------------------------------------ *)

let test_read_cache_serves_repeats () =
  let cl = make ~servers:1 ~clients:1 () in
  Cluster.spawn_client cl 0 ~name:"r" (fun c ->
      let f = Client.open_file c ~create:true "/rc" in
      Client.write c f ~off:0 ~len:65536;
      Client.fsync c;
      ignore (Client.read c f ~off:0 ~len:65536);
      ignore (Client.read c f ~off:0 ~len:65536);
      ignore (Client.read c f ~off:8192 ~len:4096));
  Cluster.run cl;
  let ds = Data_server.stats (Cluster.data_server cl 0) in
  Alcotest.(check int) "only the first read hits the server" 1 ds.reads;
  let cc = Client.cache (Cluster.client cl 0) in
  Alcotest.(check bool) "hits recorded" true (Client_cache.read_cache_hits cc >= 2)

let test_read_cache_invalidated_on_revoke () =
  (* Client 0 caches clean data under its PR lock; client 1 overwrites,
     revoking the lock; client 0 must then refetch, not serve stale. *)
  let cl = make ~servers:1 ~clients:2 () in
  let eng = Cluster.engine cl in
  let stale = ref true in
  Cluster.spawn_client cl 0 ~name:"reader" (fun c ->
      let f = Client.open_file c ~create:true "/inv" in
      Client.write c f ~off:0 ~len:4096;
      Client.fsync c;
      ignore (Client.read c f ~off:0 ~len:4096);
      Engine.sleep eng 0.1;
      (* by now client 1 has overwritten the range *)
      match Client.read c f ~off:0 ~len:4096 with
      | [ (_, _, Some t) ] -> stale := t.Content.writer <> 1
      | _ -> ());
  Cluster.spawn_client cl 1 ~name:"writer" (fun c ->
      Engine.sleep eng 0.02;
      let f = Client.open_file c "/inv" in
      Client.write c f ~off:0 ~len:4096);
  Cluster.run cl;
  Alcotest.(check bool) "no stale read after revocation" false !stale

let test_read_cache_coherent_with_own_flushed_writes () =
  (* Regression: read, write (same range), let the flush daemon drain the
     dirty data, read again — must see the write, not the cached
     pre-write data. *)
  let cl = make ~servers:1 ~clients:1 () in
  let ok = ref false in
  Cluster.spawn_client cl 0 ~name:"rwr" (fun c ->
      let f = Client.open_file c ~create:true "/own" in
      Client.write c f ~off:0 ~len:4096;
      Client.fsync c;
      ignore (Client.read c f ~off:0 ~len:4096);
      Client.write c f ~off:0 ~len:4096;
      (* drain the dirty data; ops so far: write=1, read=2, write=3 *)
      Client.fsync c;
      match Client.read c f ~off:0 ~len:4096 with
      | [ (_, _, Some t) ] -> ok := t.Content.op = 3
      | _ -> ());
  Cluster.run cl;
  Alcotest.(check bool) "second write visible after flush" true !ok

(* ------------------------------------------------------------------ *)
(* Data-server machinery                                               *)
(* ------------------------------------------------------------------ *)

let test_extent_cache_cleanup () =
  (* Tiny extent-cache limit: the cleanup task must kick in and keep the
     cache bounded while writes stay correct. *)
  let config =
    Config.with_extent_cache ~limit:64
      (Config.with_dirty_limits ~dirty_min:(256 * 1024) ~dirty_max:mib
         Config.default)
  in
  let cl = make ~config ~servers:1 ~clients:2 () in
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/strided" in
        (* N-1 strided with odd sizes: maximally fragmenting. *)
        for k = 0 to 199 do
          let slot = (k * 2) + i in
          Client.write c f ~off:(slot * 5000) ~len:5000
        done;
        Client.fsync c)
  done;
  Cluster.run cl;
  let ds = Cluster.data_server cl 0 in
  let st = Data_server.stats ds in
  Alcotest.(check bool) "cleanup ran" true (st.cleanup_runs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "entries bounded (now %d)" (Data_server.extent_cache_entries ds))
    true
    (Data_server.extent_cache_entries ds <= 3 * 64);
  (* correctness unaffected *)
  let errors = ref 0 in
  Cluster.spawn_client cl 0 ~name:"verify" (fun c ->
      let f = Client.open_file c "/strided" in
      for slot = 0 to 399 do
        let owner = slot mod 2 in
        Client.read c f ~off:(slot * 5000) ~len:5000
        |> List.iter (fun (_, _, tag) ->
               match tag with
               | Some t when t.Content.writer = owner -> ()
               | Some _ | None -> incr errors)
      done);
  Cluster.run cl;
  Alcotest.(check int) "strided data intact after cleanup" 0 !errors

let test_extent_log_recovery () =
  let config = Config.with_extent_log true small_config in
  let cl = make ~config ~servers:1 ~clients:3 () in
  for i = 0 to 2 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/rec" in
        for k = 0 to 20 do
          Client.write c f ~off:(((k * 3) + i) * 7000) ~len:9000
        done;
        Client.fsync c)
  done;
  Cluster.run cl;
  let ds = Cluster.data_server cl 0 in
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/rec"));
  Cluster.run cl;
  let rid = Layout.rid ~fid:(Client.fid (Option.get !file)) ~stripe:0 in
  (* The live cache is lazily coalesced, so compare canonical forms:
     same (byte -> max SN) mapping. *)
  let canonical entries =
    Extent_map.to_list
      (Extent_map.coalesce ~eq:Int.equal (Extent_map.of_list entries))
  in
  let live = canonical (Data_server.extent_cache_of ds rid) in
  let rebuilt = canonical (Data_server.rebuild_extent_cache_from_log ds rid) in
  Alcotest.(check int) "same entry count" (List.length live)
    (List.length rebuilt);
  List.iter2
    (fun (a, sa) (b, sb) ->
      Alcotest.(check bool) "same extent" true (Interval.equal a b);
      Alcotest.(check int) "same SN" sa sb)
    live rebuilt

let suite =
  [
    ( "pfs.layout",
      [
        Alcotest.test_case "single stripe" `Quick test_layout_single_stripe;
        Alcotest.test_case "two stripes" `Quick test_layout_two_stripes;
        Alcotest.test_case "contiguous merging" `Quick
          test_layout_contiguous_merging;
        Alcotest.test_case "unaligned span" `Quick test_layout_unaligned_span;
        Alcotest.test_case "rid packing" `Quick test_rid_packing;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_layout_partition;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_layout_byte_bijection;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_layout_extents_round_trip;
      ] );
    ( "pfs.endtoend",
      [
        Alcotest.test_case "write + fsync reaches device" `Quick
          test_write_fsync_contents;
        Alcotest.test_case "read your writes before flush" `Quick
          test_read_your_writes_before_flush;
        Alcotest.test_case "producer/consumer coherence" `Quick
          test_read_after_other_client_write;
        Alcotest.test_case "atomic append" `Quick test_append_atomic;
        Alcotest.test_case "truncate" `Quick test_truncate;
        Alcotest.test_case "dirty_max blocks writers" `Quick
          test_dirty_max_blocks_writers;
      ] );
    ( "pfs.safety",
      [
        Alcotest.test_case "IO500 ior-hard readback, 1 stripe" `Quick
          (test_ior_hard_readback 1);
        Alcotest.test_case "IO500 ior-hard readback, 2 stripes" `Quick
          (test_ior_hard_readback 2);
        Alcotest.test_case "IO500 ior-hard readback, 4 stripes" `Quick
          (test_ior_hard_readback 4);
        Alcotest.test_case "overlapping writes checksum, 1 stripe (NBW)"
          `Quick
          (test_overlapping_writes_checksum 1);
        Alcotest.test_case "overlapping writes checksum, 2 stripes (BW)"
          `Quick
          (test_overlapping_writes_checksum 2);
        Alcotest.test_case "coherent readback under every policy" `Quick
          test_overlap_all_policies;
        Alcotest.test_case "spanning-write atomicity (BW)" `Quick
          test_spanning_write_atomicity;
      ] );
    ( "pfs.durability",
      [
        Alcotest.test_case "fsync_file flushes one file" `Quick
          test_fsync_file_scoped;
        Alcotest.test_case "client crash loses only dirty data" `Quick
          test_client_crash_durability;
      ] );
    ( "pfs.readcache",
      [
        Alcotest.test_case "repeat reads served locally" `Quick
          test_read_cache_serves_repeats;
        Alcotest.test_case "invalidated on revocation" `Quick
          test_read_cache_invalidated_on_revoke;
        Alcotest.test_case "coherent with own flushed writes" `Quick
          test_read_cache_coherent_with_own_flushed_writes;
      ] );
    ( "pfs.dataserver",
      [
        Alcotest.test_case "extent cache cleanup bounds entries" `Quick
          test_extent_cache_cleanup;
        Alcotest.test_case "extent log rebuild (recovery)" `Quick
          test_extent_log_recovery;
      ] );
  ]
