(* Tests for the §II-C analytic model. *)

open Netsim
open Analytic

let feq = Alcotest.(check (float 1e-6))

let test_paper_numbers () =
  (* The paper evaluates ①②③ at D = 10^6 bytes with Table I:
     ① ≈ 1.0e-13, ② ≈ 1.0e-12, ③ ≈ 4.1e-10 sec/byte. *)
  let t = Model.terms Params.table1 ~d:1_000_000 in
  Alcotest.(check (float 1e-15)) "term 1" 1.0e-13 t.Model.t1;
  Alcotest.(check (float 1e-14)) "term 2" 1.0e-12 t.Model.t2;
  Alcotest.(check bool) "term 3 ~ 4.1e-10" true
    (t.Model.t3 > 4.0e-10 && t.Model.t3 < 4.2e-10);
  Alcotest.(check bool) "flushing dominates" true
    (Model.dominant_term t = `T3)

let test_b_flush_harmonic () =
  (* Eq. 2 is the harmonic combination of net and disk bandwidth. *)
  let p = { Params.table1 with b_net = 4e9; b_disk = 4e9 } in
  feq "equal rates halve" 2e9 (Model.b_flush p);
  let p2 = { p with b_net = infinity } in
  Alcotest.(check bool) "infinite net -> disk bound" true
    (abs_float (Model.b_flush p2 -. 4e9) < 1.)

let test_bandwidth_monotonic_in_d () =
  (* Larger writes amortise ① and ②, so the bound rises toward B_flush. *)
  let p = Params.table1 in
  let b d = Model.bandwidth_approx p ~d in
  Alcotest.(check bool) "monotone" true
    (b 4096 < b 65536 && b 65536 < b 1_048_576);
  Alcotest.(check bool) "capped by B_flush" true
    (b 16_777_216 < Model.b_flush p)

let test_exact_vs_approx () =
  let p = Params.table1 in
  let exact = Model.bandwidth_exact p ~n:10_000 ~d:1_000_000 in
  let approx = Model.bandwidth_approx p ~d:1_000_000 in
  Alcotest.(check bool) "large-N exact ~ approx" true
    (abs_float (exact -. approx) /. approx < 0.01)

let test_no_flush_bound () =
  let p = Params.table1 in
  Alcotest.(check bool) "removing 3 lifts the bound by orders of magnitude"
    true
    (Model.bandwidth_no_flush p ~n:64 ~d:1_000_000
    > 50. *. Model.bandwidth_exact p ~n:64 ~d:1_000_000)

let prop_bandwidth_positive_bounded =
  let open QCheck in
  Test.make ~name:"Eq. 1 yields positive bandwidth below B_flush" ~count:200
    (make
       ~print:(fun (n, d) -> Printf.sprintf "n=%d d=%d" n d)
       Gen.(pair (int_range 2 1000) (int_range 1 (1 lsl 24))))
    (fun (n, d) ->
      (* N conflicting writes serialize only N-1 flushes, so the bound is
         B_flush * N/(N-1), approaching B_flush for large N. *)
      let p = Params.default in
      let b = Model.bandwidth_exact p ~n ~d in
      b > 0.
      && b <= Model.b_flush p *. (float_of_int n /. float_of_int (n - 1))
              *. 1.0001)

let suite =
  [
    ( "analytic.model",
      [
        Alcotest.test_case "paper's term values" `Quick test_paper_numbers;
        Alcotest.test_case "Eq. 2 harmonic" `Quick test_b_flush_harmonic;
        Alcotest.test_case "bound monotone in D" `Quick
          test_bandwidth_monotonic_in_d;
        Alcotest.test_case "exact ~ approx at large N" `Quick
          test_exact_vs_approx;
        Alcotest.test_case "no-flush bound" `Quick test_no_flush_bound;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_bandwidth_positive_bounded;
      ] );
  ]
