(* Tests for lib/load: the statistical properties of the arrival
   processes (deterministic streams, Poisson mean and gap CDF, MMPP
   dwell fractions), the Engine.at arrival hook, the open-loop driver
   (conservation, shedding, churn routing, the open-vs-closed
   differential at low load) and the double-run determinism of the
   BENCH_load.json rows. *)

open Ccpfs_util
open Ccpfs

let feq = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Engine.at                                                           *)
(* ------------------------------------------------------------------ *)

let test_engine_at () =
  let eng = Dessim.Engine.create () in
  let log = ref [] in
  Dessim.Engine.at eng ~time:2.0 (fun () ->
      log := (2, Dessim.Engine.now eng) :: !log);
  Dessim.Engine.at eng ~time:1.0 (fun () ->
      log := (1, Dessim.Engine.now eng) :: !log;
      (* installing from inside a running event is legal *)
      Dessim.Engine.at eng ~time:1.5 (fun () ->
          log := (15, Dessim.Engine.now eng) :: !log));
  (* a regular process so the run has a liveness root *)
  Dessim.Engine.spawn eng ~name:"spin" (fun () -> Dessim.Engine.sleep eng 3.0);
  Dessim.Engine.run eng;
  Alcotest.(check (list (pair int (float 0.))))
    "thunks fire in time order at their exact timestamps"
    [ (1, 1.0); (15, 1.5); (2, 2.0) ]
    (List.rev !log);
  Alcotest.check_raises "past time rejected"
    (Invalid_argument "Engine.at: time in the past or not finite")
    (fun () -> Dessim.Engine.at eng ~time:1.0 (fun () -> ()));
  Alcotest.check_raises "non-finite time rejected"
    (Invalid_argument "Engine.at: time in the past or not finite")
    (fun () -> Dessim.Engine.at eng ~time:nan (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Arrivals: determinism                                               *)
(* ------------------------------------------------------------------ *)

let processes_under_test =
  [
    ("constant", Load.Arrivals.Constant 100.);
    ("poisson", Load.Arrivals.Poisson 100.);
    ("mmpp", Load.Arrivals.bursty ~rate:100.);
  ]

let test_arrivals_deterministic () =
  List.iter
    (fun (name, proc) ->
      let a = Load.Arrivals.create ~seed:0xfeed proc in
      let b = Load.Arrivals.create ~seed:0xfeed proc in
      for k = 1 to 500 do
        let ga = Load.Arrivals.next_gap a and gb = Load.Arrivals.next_gap b in
        if ga <> gb then
          Alcotest.failf "%s: gap %d differs: %h vs %h" name k ga gb
      done;
      (* a different seed must actually change the random streams *)
      if String.equal name "constant" then ()
      else begin
        let c = Load.Arrivals.create ~seed:0xbeef proc in
        let differs = ref false in
        let a' = Load.Arrivals.create ~seed:0xfeed proc in
        for _ = 1 to 50 do
          if Load.Arrivals.next_gap a' <> Load.Arrivals.next_gap c then
            differs := true
        done;
        Alcotest.(check bool) (name ^ ": seeds separate streams") true !differs
      end)
    processes_under_test

let test_arrivals_times () =
  List.iter
    (fun (name, proc) ->
      let ts = Load.Arrivals.times ~seed:7 proc ~n:200 in
      Alcotest.(check int) (name ^ ": n times") 200 (Array.length ts);
      for k = 1 to 199 do
        if not (ts.(k) >= ts.(k - 1)) then
          Alcotest.failf "%s: times not monotone at %d" name k
      done;
      if not (ts.(0) > 0.) then Alcotest.failf "%s: first time not positive" name;
      (* bit-identical to the prefix sums of a fresh stream *)
      let s = Load.Arrivals.create ~seed:7 proc in
      let acc = ref 0. in
      for k = 0 to 199 do
        acc := !acc +. Load.Arrivals.next_gap s;
        if ts.(k) <> !acc then Alcotest.failf "%s: times diverge at %d" name k
      done)
    processes_under_test

let test_arrivals_validation () =
  List.iter
    (fun bad ->
      match Load.Arrivals.create ~seed:1 bad with
      | _ -> Alcotest.fail "invalid process accepted"
      | exception Invalid_argument _ -> ())
    [
      Load.Arrivals.Constant 0.;
      Load.Arrivals.Poisson (-1.);
      Load.Arrivals.Poisson infinity;
      Load.Arrivals.Mmpp { rate0 = 1.; rate1 = 0.; dwell0 = 1.; dwell1 = 1. };
      Load.Arrivals.Mmpp { rate0 = 1.; rate1 = 1.; dwell0 = -1.; dwell1 = 1. };
    ]

let test_mean_rate () =
  feq "constant" 80. (Load.Arrivals.mean_rate (Load.Arrivals.Constant 80.));
  feq "poisson" 80. (Load.Arrivals.mean_rate (Load.Arrivals.Poisson 80.));
  (* dwell-weighted average *)
  feq "mmpp"
    ((2. *. 10.) +. (8. *. 40.))
    (10. *. Load.Arrivals.mean_rate
              (Load.Arrivals.Mmpp
                 { rate0 = 10.; rate1 = 40.; dwell0 = 2.; dwell1 = 8. }));
  (* the bursty helper's time-average equals its nominal rate *)
  Alcotest.(check (float 1e-9))
    "bursty mean" 123.
    (Load.Arrivals.mean_rate (Load.Arrivals.bursty ~rate:123.));
  (* of_string round-trips the names *)
  List.iter
    (fun name ->
      match Load.Arrivals.of_string ~rate:10. name with
      | Some p ->
          Alcotest.(check string) name name (Load.Arrivals.to_string p)
      | None -> Alcotest.failf "of_string %s" name)
    [ "constant"; "poisson"; "mmpp" ];
  Alcotest.(check bool) "unknown name" true
    (Option.is_none (Load.Arrivals.of_string ~rate:10. "weibull"))

(* ------------------------------------------------------------------ *)
(* Arrivals: statistics                                                *)
(* ------------------------------------------------------------------ *)

(* Empirical mean of Poisson inter-arrival gaps: for n draws the sample
   mean of Exp(lambda) is within ~4 standard errors (4/(lambda sqrt n))
   of 1/lambda essentially always; a seeded stream makes this exact
   rather than flaky. *)
let prop_poisson_mean =
  let open QCheck in
  Test.make ~name:"poisson gaps have empirical mean ~ 1/lambda" ~count:40
    (make
       ~print:Print.(pair int (float))
       Gen.(pair (int_bound 1_000_000) (float_range 0.5 5000.)))
    (fun (seed, lambda) ->
      let n = 4000 in
      let s = Load.Arrivals.create ~seed (Load.Arrivals.Poisson lambda) in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. Load.Arrivals.next_gap s
      done;
      let mean = !sum /. float_of_int n in
      let se = 1. /. (lambda *. sqrt (float_of_int n)) in
      Float.abs (mean -. (1. /. lambda)) < 4. *. se)

(* Coarse CDF check at the deciles: the empirical fraction of gaps below
   the Exp(lambda) q-quantile -ln(1-q)/lambda must be within a few
   standard errors of q — this pins the distribution's shape, not just
   its mean (a constant stream passes the mean test; it fails this). *)
let prop_poisson_gap_cdf =
  let open QCheck in
  Test.make ~name:"poisson gaps pass a decile CDF check" ~count:25
    (make
       ~print:Print.(pair int (float))
       Gen.(pair (int_bound 1_000_000) (float_range 0.5 5000.)))
    (fun (seed, lambda) ->
      let n = 4000 in
      let s = Load.Arrivals.create ~seed (Load.Arrivals.Poisson lambda) in
      let gaps = Array.make n 0. in
      for i = 0 to n - 1 do
        gaps.(i) <- Load.Arrivals.next_gap s
      done;
      List.for_all
        (fun q ->
          let quantile = -.log (1. -. q) /. lambda in
          let below = ref 0 in
          Array.iter (fun g -> if g < quantile then incr below) gaps;
          let frac = float_of_int !below /. float_of_int n in
          (* binomial std error sqrt(q(1-q)/n) <= 0.0079 at n=4000 *)
          let se = sqrt (q *. (1. -. q) /. float_of_int n) in
          Float.abs (frac -. q) < 5. *. se)
        [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ])

(* A constant stream must fail the shape check the Poisson stream
   passes — all its mass sits at exactly 1/rate. *)
let test_constant_gaps_degenerate () =
  let s = Load.Arrivals.create ~seed:3 (Load.Arrivals.Constant 50.) in
  for _ = 1 to 100 do
    feq "gap" (1. /. 50.) (Load.Arrivals.next_gap s)
  done

(* MMPP dwell accounting: the fraction of stream time spent in each
   state converges to dwell_i / (dwell0 + dwell1), and the long-run
   arrival rate to the dwell-weighted mean.  Asymmetric dwells make the
   check discriminating. *)
let prop_mmpp_dwell =
  let open QCheck in
  Test.make ~name:"mmpp dwell fractions match the modulation matrix"
    ~count:25
    (make ~print:Print.int Gen.(int_bound 1_000_000))
    (fun seed ->
      let proc =
        Load.Arrivals.Mmpp
          { rate0 = 40.; rate1 = 400.; dwell0 = 0.3; dwell1 = 0.1 }
      in
      let s = Load.Arrivals.create ~seed proc in
      let n = 30_000 in
      let clock = ref 0. in
      for _ = 1 to n do
        clock := !clock +. Load.Arrivals.next_gap s
      done;
      let t0 = Load.Arrivals.state_time s 0
      and t1 = Load.Arrivals.state_time s 1 in
      (* the stream's own clock decomposes exactly into the two states *)
      if Float.abs (t0 +. t1 -. !clock) > 1e-6 *. !clock then false
      else begin
        let frac0 = t0 /. (t0 +. t1) in
        let expect0 = 0.3 /. (0.3 +. 0.1) in
        let visits = Load.Arrivals.state_visits s 0 in
        let rate = float_of_int n /. !clock in
        let expect_rate = Load.Arrivals.mean_rate proc in
        (* ~n/expected-arrivals-per-cycle modulation cycles; 10%
           tolerance holds with margin at these sample sizes *)
        Float.abs (frac0 -. expect0) < 0.1
        && visits > 10
        && Float.abs ((rate /. expect_rate) -. 1.) < 0.15
      end)

let test_mmpp_state_visits_fresh () =
  let s = Load.Arrivals.create ~seed:5 (Load.Arrivals.bursty ~rate:10.) in
  Alcotest.(check int) "fresh stream is in state 0" 0 (Load.Arrivals.state s);
  Alcotest.(check int) "state 0 entered once" 1 (Load.Arrivals.state_visits s 0);
  Alcotest.(check int) "state 1 not yet" 0 (Load.Arrivals.state_visits s 1);
  feq "no time accumulated" 0.
    (Load.Arrivals.state_time s 0 +. Load.Arrivals.state_time s 1)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let xfer = 4 * Units.kib

let mk_cluster ~n_clients = Cluster.create ~n_servers:1 ~n_clients ()

let drive ?(churn = []) ?(cap = 1024) ?(seed = 42) ~n_clients ~requests ~rate
    process =
  let cl = mk_cluster ~n_clients in
  let proc = Option.get (Load.Arrivals.of_string ~rate process) in
  let spec =
    Load.Driver.
      {
        process = proc;
        seed;
        requests;
        max_in_flight = cap;
        churn;
        start_at = 0.;
      }
  in
  let h =
    Load.Driver.launch cl spec
      ~prepare:(fun c -> (c, Client.open_file c ~create:true "/t"))
      ~request:(fun (c, f) k ->
        Client.write c f ~off:(k mod 8 * xfer) ~len:xfer;
        xfer)
  in
  Dessim.Engine.run (Cluster.engine cl);
  Cluster.fsync_all cl;
  Cluster.check_invariants cl;
  Load.Driver.result h

(* Conservation + accounting identities that hold for every run. *)
let check_accounting (r : Load.Driver.result) ~requests =
  Alcotest.(check int) "arrivals" requests r.Load.Driver.r_arrivals;
  Alcotest.(check int) "completed + shed = arrivals" requests
    (r.Load.Driver.r_completed + r.Load.Driver.r_shed);
  Alcotest.(check int) "sojourn samples = completed"
    r.Load.Driver.r_completed
    (Stats.count r.Load.Driver.r_sojourn);
  Alcotest.(check int) "per-client assignments = completed"
    r.Load.Driver.r_completed
    (Array.fold_left ( + ) 0 r.Load.Driver.r_per_client)

let test_driver_low_load_open_eq_offered () =
  (* far below capacity: nothing sheds, the achieved rate equals the
     offered rate up to the final-completion edge effect *)
  let requests = 400 in
  let r = drive ~n_clients:4 ~requests ~rate:100. "poisson" in
  check_accounting r ~requests;
  Alcotest.(check int) "nothing shed" 0 r.Load.Driver.r_shed;
  let ratio = r.Load.Driver.r_achieved_rate /. r.Load.Driver.r_offered_rate in
  if not (ratio > 0.98 && ratio <= 1.0) then
    Alcotest.failf "achieved/offered = %.4f not in (0.98, 1]" ratio

(* The open-vs-closed differential: at negligible utilisation the
   open-loop sojourn of a single client matches the closed-loop latency
   of the same request shape — queueing adds nothing, so the two
   methodologies must agree before they diverge under load. *)
let test_driver_differential_closed_loop () =
  let requests = 50 in
  (* closed loop: one client, one write after another *)
  let cl = mk_cluster ~n_clients:1 in
  let closed = Stats.create () in
  Cluster.spawn_client cl 0 ~name:"closed" (fun c ->
      let f = Client.open_file c ~create:true "/t" in
      for k = 0 to requests - 1 do
        let t0 = Cluster.now cl in
        Client.write c f ~off:(k mod 8 * xfer) ~len:xfer;
        Stats.add closed (Cluster.now cl -. t0)
      done);
  Dessim.Engine.run (Cluster.engine cl);
  (* open loop at ~1% utilisation of the just-measured service rate *)
  let service = Stats.mean closed in
  let rate = 0.01 /. service in
  let r = drive ~n_clients:1 ~requests ~rate "poisson" in
  check_accounting r ~requests;
  let open_mean = Stats.mean r.Load.Driver.r_sojourn in
  let ratio = open_mean /. service in
  if not (ratio > 0.9 && ratio < 1.1) then
    Alcotest.failf
      "open-loop mean sojourn %.3e vs closed-loop latency %.3e (ratio %.3f)"
      open_mean service ratio;
  let ar = r.Load.Driver.r_achieved_rate /. r.Load.Driver.r_offered_rate in
  if not (ar > 0.98 && ar <= 1.0) then
    Alcotest.failf "low-load achieved/offered = %.4f" ar

let test_driver_sheds_above_cap () =
  (* cap 1 with a deliberately saturating rate: most arrivals find the
     backlog full and are shed; the rest complete; nothing is lost *)
  let requests = 200 in
  let r = drive ~cap:1 ~n_clients:2 ~requests ~rate:1e6 "constant" in
  check_accounting r ~requests;
  Alcotest.(check bool) "some arrivals shed" true (r.Load.Driver.r_shed > 0);
  Alcotest.(check bool) "some arrivals served" true
    (r.Load.Driver.r_completed > 0);
  (* achieved <= offered holds by construction even past saturation *)
  Alcotest.(check bool) "achieved <= offered" true
    (r.Load.Driver.r_achieved_rate <= r.Load.Driver.r_offered_rate)

let test_driver_churn_routing () =
  (* client 0 leaves before the first arrival and never returns: it must
     receive no work; the others absorb the full stream *)
  let requests = 120 in
  let churn =
    [ Load.Driver.{ ch_at = 0.; ch_client = 0; ch_up = false } ]
  in
  let r = drive ~churn ~n_clients:3 ~requests ~rate:200. "poisson" in
  check_accounting r ~requests;
  Alcotest.(check int) "nothing shed" 0 r.Load.Driver.r_shed;
  Alcotest.(check int) "down client got nothing" 0
    r.Load.Driver.r_per_client.(0);
  Alcotest.(check bool) "others balanced the stream" true
    (r.Load.Driver.r_per_client.(1) > 0 && r.Load.Driver.r_per_client.(2) > 0)

let test_driver_churn_rejoin () =
  (* leave at a third of the window, rejoin at two thirds: the client
     serves strictly less than a fair share but more than nothing *)
  let requests = 600 in
  let rate = 300. in
  let span = float_of_int requests /. rate in
  let churn =
    Load.Driver.
      [
        { ch_at = span /. 3.; ch_client = 0; ch_up = false };
        { ch_at = 2. *. span /. 3.; ch_client = 0; ch_up = true };
      ]
  in
  let r = drive ~churn ~n_clients:3 ~requests ~rate "poisson" in
  check_accounting r ~requests;
  let got = r.Load.Driver.r_per_client.(0) in
  let fair = requests / 3 in
  if not (got > 0 && got < fair) then
    Alcotest.failf "churned client served %d of fair share %d" got fair

let test_driver_all_down_sheds () =
  (* every client gone: all arrivals shed, none lost, run terminates *)
  let requests = 30 in
  let churn =
    [
      Load.Driver.{ ch_at = 0.; ch_client = 0; ch_up = false };
      Load.Driver.{ ch_at = 0.; ch_client = 1; ch_up = false };
    ]
  in
  let r = drive ~churn ~n_clients:2 ~requests ~rate:100. "constant" in
  check_accounting r ~requests;
  Alcotest.(check int) "all shed" requests r.Load.Driver.r_shed

let test_driver_validation () =
  let cl = mk_cluster ~n_clients:2 in
  let spec requests max_in_flight churn =
    Load.Driver.
      {
        process = Load.Arrivals.Poisson 10.;
        seed = 1;
        requests;
        max_in_flight;
        churn;
        start_at = 0.;
      }
  in
  let launch s =
    ignore
      (Load.Driver.launch cl s
         ~prepare:(fun c -> c)
         ~request:(fun _ _ -> 0))
  in
  List.iter
    (fun s ->
      match launch s with
      | () -> Alcotest.fail "invalid spec accepted"
      | exception Invalid_argument _ -> ())
    [
      spec (-1) 4 [];
      spec 4 0 [];
      spec 4 4 [ Load.Driver.{ ch_at = 0.; ch_client = 9; ch_up = false } ];
      spec 4 4 [ Load.Driver.{ ch_at = -1.; ch_client = 0; ch_up = false } ];
    ]

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

(* A synthetic run_rate with a hard capacity: below it sojourns are
   tiny, above it the backlog overhang inflates the window (achieved <
   offered) and the percentiles blow up — the sweep must place the knee
   at the first rate past capacity, and bisection must tighten toward
   it without moving the knee flag off the lowest violating point. *)
let synthetic_run_rate ~capacity rate =
  let requests = 100 in
  let sojourn = Stats.create () in
  let base = if rate <= capacity then 1e-4 else 0.5 /. capacity in
  for k = 1 to requests do
    Stats.add sojourn (base *. (1. +. (float_of_int k /. 1e4)))
  done;
  let span = float_of_int requests /. rate in
  let overhang = if rate <= capacity then 0. else span *. (rate /. capacity -. 1.) in
  let window = span +. overhang in
  Load.Driver.
    {
      r_offered_rate = rate;
      r_arrivals = requests;
      r_completed = requests;
      r_shed = 0;
      r_window_s = window;
      r_achieved_rate = float_of_int requests /. window;
      r_goodput_Bps = 0.;
      r_sojourn = sojourn;
      r_per_client = [| requests |];
    }

let test_sweep_knee () =
  let capacity = 100. in
  let cfg =
    Load.Sweep.
      {
        rates = [ 25.; 50.; 75.; 110.; 140. ];
        slo_s = 1e-2;
        min_achieved_frac = 0.95;
        bisect_steps = 0;
      }
  in
  let points = Load.Sweep.run cfg ~run_rate:(synthetic_run_rate ~capacity) in
  Alcotest.(check int) "one point per rate" 5 (List.length points);
  (match Load.Sweep.knee points with
  | None -> Alcotest.fail "no knee found"
  | Some k -> feq "knee at first rate past capacity" 110. k.Load.Sweep.p_rate);
  List.iter
    (fun (p : Load.Sweep.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "violation iff past capacity (rate %g)" p.Load.Sweep.p_rate)
        (p.Load.Sweep.p_rate > capacity)
        p.Load.Sweep.p_violates)
    points

let test_sweep_bisect () =
  let capacity = 100. in
  let cfg =
    Load.Sweep.
      {
        rates = [ 50.; 150. ];
        slo_s = 1e-2;
        min_achieved_frac = 0.95;
        bisect_steps = 3;
      }
  in
  let points = Load.Sweep.run cfg ~run_rate:(synthetic_run_rate ~capacity) in
  Alcotest.(check int) "grid + bisection points" 5 (List.length points);
  (* rates ascend and the knee is the lowest violating rate *)
  let rec ascending = function
    | a :: (b :: _ as tl) -> a.Load.Sweep.p_rate <= b.Load.Sweep.p_rate && ascending tl
    | _ -> true
  in
  Alcotest.(check bool) "points sorted by rate" true (ascending points);
  match Load.Sweep.knee points with
  | None -> Alcotest.fail "no knee found"
  | Some k ->
      List.iter
        (fun (p : Load.Sweep.point) ->
          if p.Load.Sweep.p_violates && p.Load.Sweep.p_rate < k.Load.Sweep.p_rate
          then Alcotest.fail "knee is not the lowest violating rate")
        points;
      (* three bisection steps on (50, 150) tighten the bracket to
         within 12.5 of the capacity *)
      Alcotest.(check bool)
        (Printf.sprintf "bisected knee %g within 12.5 of capacity"
           k.Load.Sweep.p_rate)
        true
        (k.Load.Sweep.p_rate > capacity
        && k.Load.Sweep.p_rate <= capacity +. 12.5)

let test_sweep_no_knee () =
  let cfg =
    Load.Sweep.
      {
        rates = [ 10.; 20. ];
        slo_s = 1e-2;
        min_achieved_frac = 0.95;
        bisect_steps = 2;
      }
  in
  let points = Load.Sweep.run cfg ~run_rate:(synthetic_run_rate ~capacity:100.) in
  Alcotest.(check int) "no bisection without a violation" 2 (List.length points);
  Alcotest.(check bool) "no knee" true (Option.is_none (Load.Sweep.knee points))

(* ------------------------------------------------------------------ *)
(* exp_load: double-run determinism of the benchmark rows              *)
(* ------------------------------------------------------------------ *)

(* The acceptance criterion for BENCH_load.json: the same seed must
   reproduce identical rows — run the real sweep (real clusters, the
   real experiment row encoder) twice and compare the JSON bit for
   bit.  Small scale: 8 clients, 2 rates. *)
let test_exp_load_rows_deterministic () =
  let setup =
    Experiments.Exp_load.
      {
        s_clients = 8;
        s_requests = 64;
        s_process = "poisson";
        s_cap = 32;
        s_churn = true;
        s_slo_s = 5e-3;
        s_rates = [ 400.; 4000. ];
        s_bisect = 0;
        s_cal = { cap_rps = 1000.; closed_lat = Stats.create () };
      }
  in
  let rows () =
    Experiments.Exp_load.sweep_points setup
    |> List.map (fun p ->
           Obs.Json.to_string (Experiments.Exp_load.row_of setup p))
  in
  let a = rows () and b = rows () in
  Alcotest.(check (list string)) "identical rows across runs" a b;
  Alcotest.(check int) "one row per rate" 2 (List.length a)

(* The committed-artifact invariants CI enforces on every row, checked
   here on a live sweep: achieved <= offered and p50 <= p99 <= p999. *)
let test_exp_load_row_invariants () =
  let setup =
    Experiments.Exp_load.
      {
        s_clients = 8;
        s_requests = 96;
        s_process = "poisson";
        s_cap = 32;
        s_churn = false;
        s_slo_s = 5e-3;
        s_rates = [ 500.; 2000.; 8000. ];
        s_bisect = 0;
        s_cal = { cap_rps = 1000.; closed_lat = Stats.create () };
      }
  in
  let points = Experiments.Exp_load.sweep_points setup in
  List.iter
    (fun (p : Load.Sweep.point) ->
      let r = p.Load.Sweep.p_result in
      Alcotest.(check bool) "achieved <= offered" true
        (r.Load.Driver.r_achieved_rate <= p.Load.Sweep.p_rate);
      Alcotest.(check bool) "p50 <= p99 <= p999" true
        (p.Load.Sweep.p_p50 <= p.Load.Sweep.p_p99
        && p.Load.Sweep.p_p99 <= p.Load.Sweep.p_p999))
    points

let suite =
  let q = QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ()) in
  [
    ( "load.arrivals",
      [
        Alcotest.test_case "Engine.at hook" `Quick test_engine_at;
        Alcotest.test_case "same seed, bit-identical stream" `Quick
          test_arrivals_deterministic;
        Alcotest.test_case "times = prefix sums" `Quick test_arrivals_times;
        Alcotest.test_case "invalid processes rejected" `Quick
          test_arrivals_validation;
        Alcotest.test_case "mean_rate and names" `Quick test_mean_rate;
        Alcotest.test_case "constant gaps degenerate" `Quick
          test_constant_gaps_degenerate;
        Alcotest.test_case "fresh mmpp introspection" `Quick
          test_mmpp_state_visits_fresh;
        q prop_poisson_mean;
        q prop_poisson_gap_cdf;
        q prop_mmpp_dwell;
      ] );
    ( "load.driver",
      [
        Alcotest.test_case "low load: achieved ~ offered" `Quick
          test_driver_low_load_open_eq_offered;
        Alcotest.test_case "open matches closed loop at low load" `Quick
          test_driver_differential_closed_loop;
        Alcotest.test_case "backlog cap sheds, loses nothing" `Quick
          test_driver_sheds_above_cap;
        Alcotest.test_case "churned-out client gets no work" `Quick
          test_driver_churn_routing;
        Alcotest.test_case "leave then rejoin serves a partial share" `Quick
          test_driver_churn_rejoin;
        Alcotest.test_case "all clients down: everything sheds" `Quick
          test_driver_all_down_sheds;
        Alcotest.test_case "spec validation" `Quick test_driver_validation;
      ] );
    ( "load.sweep",
      [
        Alcotest.test_case "knee at first violating rate" `Quick
          test_sweep_knee;
        Alcotest.test_case "bisection tightens the knee" `Quick
          test_sweep_bisect;
        Alcotest.test_case "no violation, no knee" `Quick test_sweep_no_knee;
        Alcotest.test_case "BENCH_load rows are double-run identical" `Quick
          test_exp_load_rows_deterministic;
        Alcotest.test_case "row invariants: achieved and percentiles" `Quick
          test_exp_load_row_invariants;
      ] );
  ]
