(* Unit and property tests for the interval / extent-map / content
   substrate (lib/util). *)

open Ccpfs_util

let iv lo hi = Interval.v ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval_basic () =
  let a = iv 0 10 and b = iv 5 15 and c = iv 10 20 in
  Alcotest.(check int) "length" 10 (Interval.length a);
  Alcotest.(check bool) "overlaps" true (Interval.overlaps a b);
  Alcotest.(check bool) "adjacent do not overlap" false (Interval.overlaps a c);
  Alcotest.(check bool) "adjacent touch" true (Interval.touches a c);
  Alcotest.(check bool) "contains" true (Interval.contains (iv 0 20) b);
  Alcotest.(check bool) "not contains" false (Interval.contains b (iv 0 20));
  Alcotest.(check bool) "mem lo" true (Interval.mem a 0);
  Alcotest.(check bool) "mem hi excluded" false (Interval.mem a 10)

let test_interval_inter_hull () =
  let a = iv 0 10 and b = iv 5 15 in
  (match Interval.inter a b with
  | Some i -> Alcotest.(check bool) "inter" true (Interval.equal i (iv 5 10))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint inter" true
    (Interval.inter (iv 0 5) (iv 5 10) = None);
  Alcotest.(check bool) "hull" true (Interval.equal (Interval.hull a b) (iv 0 15))

let test_interval_align () =
  let a = iv 5 6001 in
  let al = Interval.align ~page:4096 a in
  Alcotest.(check bool) "aligned" true (Interval.equal al (iv 0 8192));
  let e = Interval.to_eof ~lo:5000 in
  let ae = Interval.align ~page:4096 e in
  Alcotest.(check int) "eof preserved" Interval.eof ae.Interval.hi;
  Alcotest.(check int) "lo aligned down" 4096 ae.Interval.lo

let test_interval_split () =
  let a = iv 0 10 in
  (match Interval.split_at a 5 with
  | Some l, Some r ->
      Alcotest.(check bool) "left" true (Interval.equal l (iv 0 5));
      Alcotest.(check bool) "right" true (Interval.equal r (iv 5 10))
  | _ -> Alcotest.fail "expected both parts");
  (match Interval.split_at a 0 with
  | None, Some r -> Alcotest.(check bool) "all right" true (Interval.equal r a)
  | _ -> Alcotest.fail "expected right only");
  match Interval.split_at a 10 with
  | Some l, None -> Alcotest.(check bool) "all left" true (Interval.equal l a)
  | _ -> Alcotest.fail "expected left only"

let test_interval_invalid () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Interval.v: hi <= lo")
    (fun () -> ignore (iv 5 5));
  Alcotest.check_raises "neg" (Invalid_argument "Interval.v: negative lo")
    (fun () -> ignore (iv (-1) 5))

(* ------------------------------------------------------------------ *)
(* Extent_map                                                          *)
(* ------------------------------------------------------------------ *)

let em_of_list l = Extent_map.of_list (List.map (fun (lo, hi, v) -> (iv lo hi, v)) l)

let em_to_triples m =
  Extent_map.to_list m
  |> List.map (fun ((i : Interval.t), v) -> (i.lo, i.hi, v))

let triples = Alcotest.(list (triple int int int))

let test_em_set_disjoint () =
  let m = em_of_list [ (0, 10, 1); (20, 30, 2) ] in
  Extent_map.check_invariants m;
  Alcotest.check triples "two extents" [ (0, 10, 1); (20, 30, 2) ]
    (em_to_triples m)

let test_em_set_overwrite_middle () =
  let m = em_of_list [ (0, 30, 1); (10, 20, 2) ] in
  Extent_map.check_invariants m;
  Alcotest.check triples "split" [ (0, 10, 1); (10, 20, 2); (20, 30, 1) ]
    (em_to_triples m)

let test_em_set_overwrite_spanning () =
  let m = em_of_list [ (0, 10, 1); (20, 30, 2); (5, 25, 3) ] in
  Extent_map.check_invariants m;
  Alcotest.check triples "span" [ (0, 5, 1); (5, 25, 3); (25, 30, 2) ]
    (em_to_triples m)

let test_em_remove () =
  let m = em_of_list [ (0, 30, 1) ] in
  let m = Extent_map.remove m (iv 10 20) in
  Extent_map.check_invariants m;
  Alcotest.check triples "hole" [ (0, 10, 1); (20, 30, 1) ] (em_to_triples m)

let test_em_find () =
  let m = em_of_list [ (0, 10, 1); (20, 30, 2) ] in
  Alcotest.(check (option int)) "inside" (Some 1) (Extent_map.find m 5);
  Alcotest.(check (option int)) "gap" None (Extent_map.find m 15);
  Alcotest.(check (option int)) "boundary excluded" None (Extent_map.find m 10);
  Alcotest.(check (option int)) "boundary included" (Some 2) (Extent_map.find m 20)

let test_em_overlapping_clips () =
  let m = em_of_list [ (0, 10, 1); (10, 20, 2); (25, 30, 3) ] in
  let ov = Extent_map.overlapping m (iv 5 27) in
  let got = List.map (fun ((i : Interval.t), v) -> (i.lo, i.hi, v)) ov in
  Alcotest.check triples "clipped" [ (5, 10, 1); (10, 20, 2); (25, 27, 3) ] got

let test_em_covered () =
  let m = em_of_list [ (0, 10, 1); (10, 20, 2) ] in
  Alcotest.(check bool) "covered" true (Extent_map.covered m (iv 0 20));
  Alcotest.(check bool) "partial" false (Extent_map.covered m (iv 0 21));
  let m = Extent_map.remove m (iv 5 6) in
  Alcotest.(check bool) "hole detected" false (Extent_map.covered m (iv 0 20))

let test_em_merge_update_set () =
  (* The paper's Fig. 15 example: extent cache holds [0,2K)@8 via
     merging D[0,4K,8]; then D[0,2K,7], D[2K,4K,9], D[4K,8K,9] arrive. *)
  let k = 1024 in
  let m = em_of_list [ (0, 4 * k, 8) ] in
  let keep_new sn ~old = sn > old in
  let m, won1 = Extent_map.merge m (iv 0 (2 * k)) 7 ~keep_new:(keep_new 7) in
  Alcotest.(check int) "old data discarded" 0 (List.length won1);
  let m, won2 =
    Extent_map.merge m (iv (2 * k) (4 * k)) 9 ~keep_new:(keep_new 9)
  in
  Alcotest.(check (list (pair int int)))
    "update set covers overwritten part"
    [ (2 * k, 4 * k) ]
    (List.map (fun (i : Interval.t) -> (i.lo, i.hi)) won2);
  let m, won3 =
    Extent_map.merge m (iv (4 * k) (8 * k)) 9 ~keep_new:(keep_new 9)
  in
  Alcotest.(check (list (pair int int)))
    "gap filled" [ (4 * k, 8 * k) ]
    (List.map (fun (i : Interval.t) -> (i.lo, i.hi)) won3);
  Extent_map.check_invariants m;
  Alcotest.check triples "final cache"
    [ (0, 2 * k, 8); (2 * k, 4 * k, 9); (4 * k, 8 * k, 9) ]
    (em_to_triples m)

let test_em_coalesce () =
  let m = em_of_list [ (0, 10, 1); (10, 20, 1); (20, 30, 2); (40, 50, 2) ] in
  let m = Extent_map.coalesce ~eq:Int.equal m in
  Extent_map.check_invariants m;
  Alcotest.check triples "merged adjacent equal"
    [ (0, 20, 1); (20, 30, 2); (40, 50, 2) ]
    (em_to_triples m)

let test_em_filter () =
  let m = em_of_list [ (0, 10, 1); (10, 20, 2); (20, 30, 3) ] in
  let m = Extent_map.filter (fun _ v -> v <> 2) m in
  Alcotest.check triples "filtered" [ (0, 10, 1); (20, 30, 3) ] (em_to_triples m)

(* Model-based property test: an extent map must agree with a naive
   per-byte array under a random sequence of set/remove operations. *)
let prop_em_matches_model =
  let open QCheck in
  let bound = 64 in
  let op =
    Gen.(
      oneof
        [
          map3 (fun lo len v -> `Set (lo, len, v)) (int_bound (bound - 2))
            (int_range 1 8) (int_bound 5);
          map2 (fun lo len -> `Remove (lo, len)) (int_bound (bound - 2))
            (int_range 1 8);
        ])
  in
  let print_op = function
    | `Set (lo, len, v) -> Printf.sprintf "set[%d,+%d)=%d" lo len v
    | `Remove (lo, len) -> Printf.sprintf "rm[%d,+%d)" lo len
  in
  Test.make ~name:"extent_map agrees with per-byte model" ~count:300
    (make ~print:Print.(list print_op) (Gen.list_size (Gen.int_range 1 40) op))
    (fun ops ->
      let model = Array.make bound None in
      let m =
        List.fold_left
          (fun m op ->
            match op with
            | `Set (lo, len, v) ->
                let hi = min bound (lo + len) in
                for i = lo to hi - 1 do
                  model.(i) <- Some v
                done;
                Extent_map.set m (iv lo hi) v
            | `Remove (lo, len) ->
                let hi = min bound (lo + len) in
                for i = lo to hi - 1 do
                  model.(i) <- None
                done;
                Extent_map.remove m (iv lo hi))
          Extent_map.empty ops
      in
      Extent_map.check_invariants m;
      let ok = ref true in
      for i = 0 to bound - 1 do
        if Extent_map.find m i <> model.(i) then ok := false
      done;
      !ok)

let prop_em_merge_matches_model =
  let open QCheck in
  let bound = 64 in
  let op =
    Gen.(
      map3
        (fun lo len sn -> (lo, len, sn))
        (int_bound (bound - 2)) (int_range 1 10) (int_bound 10))
  in
  Test.make ~name:"merge keeps max SN per byte" ~count:300
    (make
       ~print:
         Print.(list (fun (l, n, s) -> Printf.sprintf "w[%d,+%d)sn%d" l n s))
       (Gen.list_size (Gen.int_range 1 40) op))
    (fun writes ->
      let model = Array.make bound (-1) in
      let m =
        List.fold_left
          (fun m (lo, len, sn) ->
            let hi = min bound (lo + len) in
            for i = lo to hi - 1 do
              if sn > model.(i) then model.(i) <- sn
            done;
            let m, _ =
              Extent_map.merge m (iv lo hi) sn ~keep_new:(fun ~old -> sn > old)
            in
            m)
          Extent_map.empty writes
      in
      Extent_map.check_invariants m;
      let ok = ref true in
      for i = 0 to bound - 1 do
        let got = Option.value (Extent_map.find m i) ~default:(-1) in
        if got <> model.(i) then ok := false
      done;
      !ok)

let gen_interval bound =
  QCheck.Gen.(
    map2
      (fun lo len -> iv lo (lo + len))
      (int_bound (bound - 2)) (int_range 1 16))

let print_iv (a : Interval.t) = Interval.to_string a

let prop_interval_split_round_trip =
  let open QCheck in
  Test.make ~name:"split_at reassembles the interval" ~count:500
    (make
       ~print:(fun (a, cut) -> Printf.sprintf "%s @%d" (print_iv a) cut)
       Gen.(pair (gen_interval 64) (int_bound 80)))
    (fun (a, cut) ->
      let lo_part, hi_part = Interval.split_at a cut in
      let parts = List.filter_map Fun.id [ lo_part; hi_part ] in
      List.fold_left (fun acc p -> acc + Interval.length p) 0 parts
      = Interval.length a
      && List.for_all (fun p -> Interval.contains a p) parts
      && (match (lo_part, hi_part) with
         | Some l, Some h ->
             l.Interval.hi = cut && h.Interval.lo = cut
             && not (Interval.overlaps l h)
         | _ -> true))

let prop_interval_inter_hull_algebra =
  let open QCheck in
  Test.make ~name:"inter/hull/overlaps/align agree" ~count:500
    (make
       ~print:(fun (a, b) -> print_iv a ^ " " ^ print_iv b)
       Gen.(pair (gen_interval 64) (gen_interval 64)))
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains h a && Interval.contains h b
      && Interval.overlaps a b = Option.is_some (Interval.inter a b)
      && (match Interval.inter a b with
         | Some i -> Interval.contains a i && Interval.contains b i
         | None -> true)
      && Interval.contains (Interval.align ~page:8 a) a)

(* The pairwise-disjointness invariant under random inserts is what makes
   every extent store trustworthy; check_invariants asserts sortedness
   and disjointness of the underlying list. *)
let prop_em_disjoint_after_inserts =
  let open QCheck in
  Test.make ~name:"entries stay disjoint under random set" ~count:300
    (make
       ~print:Print.(list print_iv)
       Gen.(list_size (int_range 1 40) (gen_interval 64)))
    (fun ivs ->
      let m =
        List.fold_left
          (fun (m, v) a -> (Extent_map.set m a v, v + 1))
          (Extent_map.empty, 0) ivs
        |> fst
      in
      Extent_map.check_invariants m;
      List.for_all
        (fun ((x, _), rest) ->
          List.for_all (fun (y, _) -> not (Interval.overlaps x y)) rest)
        (let rec tails = function
           | [] -> []
           | x :: r -> (x, r) :: tails r
         in
         tails (Extent_map.to_list m)))

let prop_em_coalesce_preserves =
  let open QCheck in
  Test.make ~name:"coalesce preserves per-byte values" ~count:300
    (make
       ~print:Print.(list (pair print_iv int))
       Gen.(list_size (int_range 1 30) (pair (gen_interval 64) (int_bound 3))))
    (fun entries ->
      let m =
        List.fold_left (fun m (a, v) -> Extent_map.set m a v) Extent_map.empty
          entries
      in
      let c = Extent_map.coalesce ~eq:Int.equal m in
      Extent_map.check_invariants c;
      let ok = ref true in
      for i = 0 to 80 do
        if Extent_map.find m i <> Extent_map.find c i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Content                                                             *)
(* ------------------------------------------------------------------ *)

let tag w op sn = { Content.writer = w; op; sn }

let test_content_in_order () =
  let c = Content.write Content.empty (iv 0 100) (tag 1 0 1) in
  let c = Content.write c (iv 50 150) (tag 2 0 2) in
  match Content.read c (iv 0 150) with
  | [ (_, Some t1); (_, Some t2) ] ->
      Alcotest.(check int) "first writer" 1 t1.Content.writer;
      Alcotest.(check int) "second writer" 2 t2.Content.writer
  | l -> Alcotest.fail (Printf.sprintf "unexpected segments: %d" (List.length l))

let test_content_out_of_order () =
  (* An SN-9 flush landing before an SN-7 flush must win on overlap. *)
  let c, _ = Content.write_if_newer Content.empty (iv 0 100) (tag 2 0 9) in
  let c, won = Content.write_if_newer c (iv 50 150) (tag 1 0 7) in
  Alcotest.(check (list (pair int int)))
    "only non-overlap applied" [ (100, 150) ]
    (List.map (fun (i : Interval.t) -> (i.lo, i.hi)) won);
  Alcotest.(check (option int)) "newer kept"
    (Some 9)
    (match Content.read c (iv 60 61) with
    | [ (_, Some t) ] -> Some t.Content.sn
    | _ -> None)

let test_content_equal_checksum () =
  let mk order =
    List.fold_left
      (fun c (lo, hi, t) -> fst (Content.write_if_newer c (iv lo hi) t))
      Content.empty order
  in
  let a = mk [ (0, 100, tag 1 0 1); (50, 150, tag 2 0 2) ] in
  let b = mk [ (50, 150, tag 2 0 2); (0, 100, tag 1 0 1) ] in
  Alcotest.(check bool) "order independent" true (Content.equal a b);
  Alcotest.(check int) "checksums equal" (Content.checksum a) (Content.checksum b);
  let c = mk [ (0, 100, tag 1 0 2); (50, 150, tag 2 0 1) ] in
  Alcotest.(check bool) "different content differs" false (Content.equal a c)

let test_content_holes () =
  let c = Content.write Content.empty (iv 10 20) (tag 1 0 1) in
  match Content.read c (iv 0 30) with
  | [ (h1, None); (_, Some _); (h2, None) ] ->
      Alcotest.(check (pair int int)) "hole 1" (0, 10) (h1.Interval.lo, h1.Interval.hi);
      Alcotest.(check (pair int int)) "hole 2" (20, 30) (h2.Interval.lo, h2.Interval.hi)
  | _ -> Alcotest.fail "expected hole/data/hole"

(* ------------------------------------------------------------------ *)
(* Dllist                                                              *)
(* ------------------------------------------------------------------ *)

let test_dllist_fifo () =
  let l = Dllist.create () in
  Alcotest.(check bool) "empty" true (Dllist.is_empty l);
  let n1 = Dllist.push_back l 1 in
  let n2 = Dllist.push_back l 2 in
  let _n3 = Dllist.push_back l 3 in
  Dllist.check_invariants l;
  Alcotest.(check int) "length" 3 (Dllist.length l);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Dllist.to_list l);
  (* O(1) removal from the middle *)
  Dllist.remove l n2;
  Dllist.check_invariants l;
  Alcotest.(check (list int)) "mid removed" [ 1; 3 ] (Dllist.to_list l);
  Alcotest.(check bool) "inactive" false (Dllist.active n2);
  Alcotest.(check bool) "still active" true (Dllist.active n1);
  Alcotest.check_raises "double remove rejected"
    (Invalid_argument "Dllist.remove: node already removed") (fun () ->
      Dllist.remove l n2);
  Alcotest.(check int) "value survives removal" 2 (Dllist.value n2)

let test_dllist_iter_safe_against_removal () =
  (* [iter] must survive the body unlinking the node it is visiting —
     the lock server grants (and unlinks) waiters mid-iteration. *)
  let l = Dllist.create () in
  let nodes = List.map (Dllist.push_back l) [ 1; 2; 3; 4 ] in
  let seen = ref [] in
  Dllist.iter
    (fun v ->
      seen := v :: !seen;
      if v mod 2 = 0 then
        Dllist.remove l (List.nth nodes (v - 1)))
    l;
  Alcotest.(check (list int)) "visited all" [ 1; 2; 3; 4 ] (List.rev !seen);
  Alcotest.(check (list int)) "odd survivors" [ 1; 3 ] (Dllist.to_list l);
  Dllist.check_invariants l

(* Model-based: a Dllist under random push/remove agrees with a plain
   list of (id, value) pairs. *)
let prop_dllist_matches_model =
  let open QCheck in
  let op = Gen.(oneof [ return `Push; return `Remove_mid; return `Remove_head ]) in
  let print_op = function
    | `Push -> "push"
    | `Remove_mid -> "rm-mid"
    | `Remove_head -> "rm-head"
  in
  Test.make ~name:"dllist agrees with list model" ~count:300
    (make ~print:Print.(list print_op) (Gen.list_size (Gen.int_range 1 60) op))
    (fun ops ->
      let l = Dllist.create () in
      let nodes = ref [] (* (id, node) newest first *) in
      let model = ref [] (* ids, queue order *) in
      let next = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Push ->
              let id = !next in
              incr next;
              nodes := (id, Dllist.push_back l id) :: !nodes;
              model := !model @ [ id ]
          | `Remove_mid | `Remove_head -> (
              let live =
                List.filter (fun (_, n) -> Dllist.active n) !nodes
              in
              match (op, List.rev live) with
              | _, [] -> ()
              | `Remove_head, (id, n) :: _ | _, _ :: (id, n) :: _ | _, [ (id, n) ]
                ->
                  Dllist.remove l n;
                  model := List.filter (fun x -> x <> id) !model))
        ops;
      Dllist.check_invariants l;
      Dllist.to_list l = !model
      && Dllist.length l = List.length !model
      && Dllist.fold (fun acc x -> acc + x) l 0
         = List.fold_left ( + ) 0 !model)

(* ------------------------------------------------------------------ *)
(* Interval_index                                                      *)
(* ------------------------------------------------------------------ *)

let ii_add m lo hi id = Interval_index.add m (iv lo hi) ~id id

let ii_hits m q =
  Interval_index.fold_overlapping m q ~init:[] ~f:(fun acc _ id _ -> id :: acc)
  |> List.sort Int.compare

let test_interval_index_basic () =
  let m =
    ii_add (ii_add (ii_add Interval_index.empty 0 10 1) 5 15 2) 20 30 3
  in
  Interval_index.check_invariants m;
  Alcotest.(check int) "cardinal" 3 (Interval_index.cardinal m);
  Alcotest.(check (list int)) "stacked overlap" [ 1; 2 ] (ii_hits m (iv 6 9));
  Alcotest.(check (list int)) "gap" [] (ii_hits m (iv 15 20));
  Alcotest.(check (list int))
    "touching is not overlap" [ 3 ]
    (ii_hits m (iv 20 21));
  Alcotest.(check (list int)) "all" [ 1; 2; 3 ] (ii_hits m (iv 0 100));
  let m = Interval_index.remove m (iv 5 15) ~id:2 in
  Interval_index.check_invariants m;
  Alcotest.(check (list int)) "after removal" [ 1 ] (ii_hits m (iv 6 9))

let test_interval_index_duplicates_rejected () =
  let m = ii_add Interval_index.empty 0 10 7 in
  Alcotest.check_raises "duplicate (lo,id)"
    (Invalid_argument "Interval_index.add: duplicate entry (lo=0, id=7)")
    (fun () -> ignore (ii_add m 0 99 7));
  (* same lo, different id: fine — shared locks stack *)
  let m2 = ii_add m 0 10 8 in
  Alcotest.(check int) "stacked" 2 (Interval_index.cardinal m2);
  Alcotest.check_raises "absent entry"
    (Invalid_argument "Interval_index.remove: no entry (lo=3, id=7)")
    (fun () -> ignore (Interval_index.remove m (iv 3 10) ~id:7))

(* Model-based: overlap queries against a naive association list, under
   random add/remove — including many duplicate extents (shared locks
   piling up on the same range, the shape that motivates the (lo, id)
   key). *)
let prop_interval_index_matches_model =
  let open QCheck in
  let bound = 64 in
  let genop =
    Gen.(
      oneof
        [
          map2 (fun lo len -> `Add (lo, lo + len)) (int_bound (bound - 2))
            (int_range 1 16);
          map (fun i -> `Remove i) (int_bound 30);
          map2 (fun lo len -> `Query (lo, lo + len)) (int_bound (bound - 2))
            (int_range 1 16);
        ])
  in
  let print_op = function
    | `Add (lo, hi) -> Printf.sprintf "add[%d,%d)" lo hi
    | `Remove i -> Printf.sprintf "rm#%d" i
    | `Query (lo, hi) -> Printf.sprintf "q[%d,%d)" lo hi
  in
  Test.make ~name:"interval_index agrees with naive list" ~count:300
    (make ~print:Print.(list print_op)
       (Gen.list_size (Gen.int_range 1 60) genop))
    (fun ops ->
      let next = ref 0 in
      let model = ref [] (* (interval, id) *) in
      let ok = ref true in
      let m =
        List.fold_left
          (fun m op ->
            match op with
            | `Add (lo, hi) ->
                let id = !next in
                incr next;
                model := (iv lo hi, id) :: !model;
                Interval_index.add m (iv lo hi) ~id id
            | `Remove k -> (
                (* remove the k-th live entry, if any *)
                match List.nth_opt !model k with
                | None -> m
                | Some (ivl, id) ->
                    model := List.filter (fun (_, i) -> i <> id) !model;
                    Interval_index.remove m ivl ~id)
            | `Query (lo, hi) ->
                let got =
                  Interval_index.fold_overlapping m (iv lo hi) ~init:[]
                    ~f:(fun acc _ id _ -> id :: acc)
                  |> List.sort Int.compare
                in
                let want =
                  List.filter_map
                    (fun (ivl, id) ->
                      if Interval.overlaps ivl (iv lo hi) then Some id else None)
                    !model
                  |> List.sort Int.compare
                in
                if got <> want then ok := false;
                m)
          Interval_index.empty ops
      in
      Interval_index.check_invariants m;
      !ok
      && Interval_index.cardinal m = List.length !model
      && Interval_index.to_list m |> List.map (fun (_, id, _) -> id)
         |> List.sort Int.compare
         = (List.map snd !model |> List.sort Int.compare))

(* ------------------------------------------------------------------ *)
(* Stats / Table / Units / Det_random                                  *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.max s);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile s 100.);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "pct empty" 0. (Stats.percentile s 50.)

(* Hand-computed nearest-rank fixtures, including the edges the old
   index arithmetic got wrong. *)
let test_stats_percentile_edges () =
  let of_list l =
    let s = Stats.create () in
    List.iter (Stats.add s) l;
    s
  in
  let check name s p want =
    Alcotest.(check (float 0.)) name want (Stats.percentile s p)
  in
  (* n = 1: every percentile is the sample *)
  let s1 = of_list [ 42. ] in
  check "n=1 p0" s1 0. 42.;
  check "n=1 p50" s1 50. 42.;
  check "n=1 p100" s1 100. 42.;
  (* n = 2: ranks split at exactly p = 50 *)
  let s2 = of_list [ 10.; 20. ] in
  check "n=2 p0" s2 0. 10.;
  check "n=2 p50" s2 50. 10.;
  check "n=2 p50.1" s2 50.1 20.;
  check "n=2 p100" s2 100. 20.;
  (* n = 4, unsorted insert order *)
  let s4 = of_list [ 4.; 1.; 3.; 2. ] in
  check "n=4 p25" s4 25. 1.;
  check "n=4 p26" s4 26. 2.;
  check "n=4 p75" s4 75. 3.;
  check "n=4 p76" s4 76. 4.;
  (* binary float noise: 7/100*300 = 21.000000000000004, whose bare
     ceil picked sample 22 instead of 21 *)
  let s300 = of_list (List.init 300 (fun i -> float_of_int (i + 1))) in
  check "n=300 p7 (float noise)" s300 7. 21.;
  check "n=300 p50" s300 50. 150.;
  check "n=300 p100" s300 100. 300.;
  (* out-of-range p clamps instead of indexing out of bounds *)
  check "p<0 clamps" s4 (-5.) 1.;
  check "p>100 clamps" s4 200. 4.

(* Regression pin for the BENCH_scale percentile degeneracy: a stream
   with genuine spread must yield p50 strictly below p99.  The shape
   mirrors the scale benchmark after the think-jitter fix — a tight
   cluster of steady-state latencies plus a jittered tail — where the
   pre-fix lockstep workload produced p50 == p99 bit-for-bit. *)
let test_stats_spread_p50_lt_p99 () =
  let s = Stats.create () in
  let rng = Det_random.create ~seed:0x1a7 in
  for _ = 1 to 4096 do
    Stats.add s (25e-3 +. Det_random.float rng 50e-6)
  done;
  let p50 = Stats.percentile s 50. and p99 = Stats.percentile s 99. in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.9f < p99 %.9f" p50 p99)
    true (p50 < p99)

(* Nearest-rank definition checked directly against its spec: the
   result is the smallest sample whose 1-based rank i has i/n >= p/100. *)
let prop_stats_percentile_nearest_rank =
  let open QCheck in
  Test.make ~name:"percentile matches nearest-rank spec" ~count:300
    (make
       ~print:Print.(pair (list int) int)
       Gen.(pair (list_size (int_range 1 50) (int_bound 100)) (int_bound 100)))
    (fun (xs, p) ->
      let s = Stats.create () in
      List.iter (fun x -> Stats.add s (float_of_int x)) xs;
      let sorted = List.sort compare (List.map float_of_int xs) in
      let n = List.length sorted in
      let rank =
        (* smallest i (1-based) with i * 100 >= p * n, in exact integer
           arithmetic, clamped to [1, n] *)
        Stdlib.max 1 (Stdlib.min n (((p * n) + 99) / 100))
      in
      Stats.percentile s (float_of_int p) = List.nth sorted (rank - 1))

(* The same exact-rank property at per-mille resolution: p is drawn in
   tenths of a percent (0..1000 per-mille), the oracle rank is computed
   in exact integer arithmetic, and the tail percentiles the load
   benchmark reports — p50/p99/p999 — are all inside the drawn range.
   n stays below 1000, so this also sweeps the below-resolution regime
   where every p > (n-1)/n * 100 must return the maximum. *)
let prop_stats_percentile_permille =
  let open QCheck in
  Test.make ~name:"percentile matches nearest-rank spec at p999 resolution"
    ~count:300
    (make
       ~print:Print.(pair (list int) int)
       Gen.(pair (list_size (int_range 1 80) (int_bound 1000)) (int_bound 1000)))
    (fun (xs, pm) ->
      let s = Stats.create () in
      List.iter (fun x -> Stats.add s (float_of_int x)) xs;
      let sorted = List.sort compare (List.map float_of_int xs) in
      let n = List.length sorted in
      let rank =
        (* smallest i (1-based) with i * 1000 >= pm * n *)
        Stdlib.max 1 (Stdlib.min n (((pm * n) + 999) / 1000))
      in
      Stats.percentile s (float_of_int pm /. 10.) = List.nth sorted (rank - 1))

(* Regression pins for p999 around the resolution boundary: with fewer
   than 1000 samples the nearest rank of p999 is n itself (the maximum);
   at exactly n = 1000 distinct samples the rank is 999, i.e. the
   second-largest value — the first point where p999 and the max
   separate. *)
let test_stats_p999_resolution () =
  let ramp n =
    let s = Stats.create () in
    for i = 1 to n do
      Stats.add s (float_of_int i)
    done;
    s
  in
  List.iter
    (fun n ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "n=%d below p999 resolution: p999 = max" n)
        (float_of_int n)
        (Stats.percentile (ramp n) 99.9))
    [ 1; 10; 100; 999 ];
  let s1000 = ramp 1000 in
  Alcotest.(check (float 0.)) "n=1000: p999 is the 999th sample" 999.
    (Stats.percentile s1000 99.9);
  Alcotest.(check (float 0.)) "n=1000: p100 is still the max" 1000.
    (Stats.percentile s1000 100.);
  (* ordering the load rows rely on: p50 <= p99 <= p999 <= max *)
  let p50 = Stats.percentile s1000 50.
  and p99 = Stats.percentile s1000 99.
  and p999 = Stats.percentile s1000 99.9 in
  Alcotest.(check bool) "p50 <= p99 <= p999" true (p50 <= p99 && p99 <= p999)

let test_units () =
  Alcotest.(check string) "64KiB" "64KiB" (Units.bytes_to_string (64 * 1024));
  Alcotest.(check string) "1MiB" "1MiB" (Units.bytes_to_string (1024 * 1024));
  Alcotest.(check string) "odd" "47008B" (Units.bytes_to_string 47008);
  Alcotest.(check string) "GB/s" "3.00GB/s" (Units.bandwidth_to_string 3e9);
  Alcotest.(check string) "ms" "1.50ms" (Units.seconds_to_string 1.5e-3)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  Table.add_note t "n";
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (string_contains s "== t ==");
  Alcotest.(check bool) "has note" true (string_contains s "note: n");
  Alcotest.(check bool) "short row padded" true (string_contains s "333");
  let csv = Table.render_csv t in
  Alcotest.(check bool) "csv header" true (string_contains csv "a,bb");
  Alcotest.(check bool) "csv rows, no notes" true
    (string_contains csv "1,2" && not (string_contains csv "note"))

let test_csv_quoting () =
  let t = Table.create ~title:"q" ~columns:[ "x" ] in
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  let csv = Table.render_csv t in
  Alcotest.(check bool) "comma quoted" true
    (string_contains csv "\"has,comma\"");
  Alcotest.(check bool) "quote doubled" true
    (string_contains csv "\"has\"\"quote\"")

let test_det_random () =
  let a = Det_random.create ~seed:42 and b = Det_random.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Det_random.int a 1000) in
  let ys = List.init 20 (fun _ -> Det_random.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let s1 = Det_random.split a and s1' = Det_random.split b in
  Alcotest.(check int) "splits agree" (Det_random.int s1 1000)
    (Det_random.int s1' 1000)

let test_det_random_state_of_ints () =
  (* [state_of_ints] must reproduce the exact stream the fuzz seeder
     historically drew from [Random.State.make]: pinned corpus seeds and
     CI reproduction lines encode offsets into it. *)
  let a = Det_random.state_of_ints [| 7; 0x51a7e |] in
  let b = Random.State.make [| 7; 0x51a7e |] in
  for _ = 1 to 50 do
    Alcotest.(check int) "stream-identical to Random.State.make"
      (Random.State.int b 1_000_000)
      (Random.State.int a 1_000_000)
  done

let test_det_tbl_sorted_traversal () =
  (* All four traversals must visit in sorted-key order regardless of
     the table's (randomized) bucket layout. *)
  Hashtbl.randomize ();
  let tbl = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace tbl k (k * 10)) [ 5; 3; 9; 1; 7; 2 ];
  Alcotest.(check (list int)) "sorted_keys" [ 1; 2; 3; 5; 7; 9 ]
    (Det_tbl.sorted_keys ~cmp:Int.compare tbl);
  let seen = ref [] in
  Det_tbl.iter_sorted ~cmp:Int.compare (fun k v -> seen := (k, v) :: !seen) tbl;
  Alcotest.(check (list (pair int int)))
    "iter_sorted"
    [ (1, 10); (2, 20); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (List.rev !seen);
  Alcotest.(check (list int)) "fold_sorted"
    [ 9; 7; 5; 3; 2; 1 ]
    (Det_tbl.fold_sorted ~cmp:Int.compare (fun k _ acc -> k :: acc) tbl []);
  Alcotest.(check (list (pair int int)))
    "bindings_sorted"
    [ (1, 10); (2, 20); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (Det_tbl.bindings_sorted ~cmp:Int.compare tbl)

let test_det_tbl_shadowed_bindings () =
  (* [Hashtbl.add] shadowing: keys are deduplicated and only each key's
     current binding is visited. *)
  let tbl = Hashtbl.create 4 in
  Hashtbl.add tbl 1 "old";
  Hashtbl.add tbl 1 "new";
  Hashtbl.add tbl 2 "only";
  Alcotest.(check (list int)) "keys deduplicated" [ 1; 2 ]
    (Det_tbl.sorted_keys ~cmp:Int.compare tbl);
  Alcotest.(check (list (pair int string)))
    "current binding wins"
    [ (1, "new"); (2, "only") ]
    (Det_tbl.bindings_sorted ~cmp:Int.compare tbl)

let suite =
  let q = QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ()) in
  [
    ( "util.interval",
      [
        Alcotest.test_case "basic predicates" `Quick test_interval_basic;
        Alcotest.test_case "inter and hull" `Quick test_interval_inter_hull;
        Alcotest.test_case "page alignment" `Quick test_interval_align;
        Alcotest.test_case "split_at" `Quick test_interval_split;
        Alcotest.test_case "invalid args" `Quick test_interval_invalid;
        q prop_interval_split_round_trip;
        q prop_interval_inter_hull_algebra;
      ] );
    ( "util.extent_map",
      [
        Alcotest.test_case "set disjoint" `Quick test_em_set_disjoint;
        Alcotest.test_case "overwrite middle splits" `Quick
          test_em_set_overwrite_middle;
        Alcotest.test_case "overwrite spanning" `Quick
          test_em_set_overwrite_spanning;
        Alcotest.test_case "remove punches hole" `Quick test_em_remove;
        Alcotest.test_case "find" `Quick test_em_find;
        Alcotest.test_case "overlapping clips" `Quick test_em_overlapping_clips;
        Alcotest.test_case "covered" `Quick test_em_covered;
        Alcotest.test_case "merge update set (Fig. 15)" `Quick
          test_em_merge_update_set;
        Alcotest.test_case "coalesce" `Quick test_em_coalesce;
        Alcotest.test_case "filter" `Quick test_em_filter;
        q prop_em_matches_model;
        q prop_em_merge_matches_model;
        q prop_em_disjoint_after_inserts;
        q prop_em_coalesce_preserves;
      ] );
    ( "util.content",
      [
        Alcotest.test_case "in-order writes" `Quick test_content_in_order;
        Alcotest.test_case "out-of-order flush kept by SN" `Quick
          test_content_out_of_order;
        Alcotest.test_case "equality and checksum" `Quick
          test_content_equal_checksum;
        Alcotest.test_case "holes" `Quick test_content_holes;
      ] );
    ( "util.dllist",
      [
        Alcotest.test_case "fifo push/remove" `Quick test_dllist_fifo;
        Alcotest.test_case "iter safe against removal" `Quick
          test_dllist_iter_safe_against_removal;
        q prop_dllist_matches_model;
      ] );
    ( "util.interval_index",
      [
        Alcotest.test_case "overlap queries" `Quick test_interval_index_basic;
        Alcotest.test_case "duplicate and absent entries" `Quick
          test_interval_index_duplicates_rejected;
        q prop_interval_index_matches_model;
      ] );
    ( "util.misc",
      [
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "stats empty" `Quick test_stats_empty;
        Alcotest.test_case "percentile edges" `Quick
          test_stats_percentile_edges;
        Alcotest.test_case "spread stream has p50 < p99" `Quick
          test_stats_spread_p50_lt_p99;
        q prop_stats_percentile_nearest_rank;
        q prop_stats_percentile_permille;
        Alcotest.test_case "p999 at the resolution boundary" `Quick
          test_stats_p999_resolution;
        Alcotest.test_case "units" `Quick test_units;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
        Alcotest.test_case "det_random" `Quick test_det_random;
        Alcotest.test_case "det_random state_of_ints" `Quick
          test_det_random_state_of_ints;
      ] );
    ( "util.det_tbl",
      [
        Alcotest.test_case "sorted traversal" `Quick
          test_det_tbl_sorted_traversal;
        Alcotest.test_case "shadowed bindings" `Quick
          test_det_tbl_shadowed_bindings;
      ] );
  ]
