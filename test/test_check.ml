(* Tests for the protocol sanitizer (lib/check): the invariant layer
   catching deliberately injected protocol bugs, the wait-for-graph
   deadlock analyzer, the determinism checker, and the schedule
   explorer. *)

open Ccpfs_util
open Dessim
open Seqdlm

let iv lo hi = Interval.v ~lo ~hi
let params = Netsim.Params.default

let make_server () =
  let eng = Engine.create () in
  let snode = Netsim.Node.create eng params ~name:"server" () in
  let server =
    Lock_server.create eng params ~node:snode ~name:"ls"
      ~policy:Policy.seqdlm
  in
  (eng, server)

let expect_violation inv f =
  match f () with
  | () -> Alcotest.failf "expected a %s violation" inv
  | exception Check.Violation.Violation v ->
      Alcotest.(check string) "violated invariant" inv v.Check.Violation.inv

(* ------------------------------------------------------------------ *)
(* Invariant layer vs injected bugs                                    *)
(* ------------------------------------------------------------------ *)

let test_catches_pw_beside_pr () =
  (* The acceptance scenario: corrupt the lock table as a compatibility
     bug would (a PW granted alongside an overlapping PR) and the
     invariant layer must call it out. *)
  let _, server = make_server () in
  Lock_server.reinstall server ~client:0
    ~locks:[ (1, 1, Mode.PW, [ iv 0 4096 ], 1, Lcm.Granted) ];
  Lock_server.reinstall server ~client:1
    ~locks:[ (1, 2, Mode.PR, [ iv 0 4096 ], 1, Lcm.Granted) ];
  expect_violation "lcm-compat" (fun () -> Check.Invariant.check_server server)

let test_catches_duplicate_sn () =
  let _, server = make_server () in
  Lock_server.reinstall server ~client:0
    ~locks:[ (1, 1, Mode.NBW, [ iv 0 4096 ], 5, Lcm.Granted) ];
  Lock_server.reinstall server ~client:1
    ~locks:[ (1, 2, Mode.NBW, [ iv 8192 12288 ], 5, Lcm.Granted) ];
  expect_violation "sn-rules" (fun () -> Check.Invariant.check_server server)

let test_clean_state_passes () =
  let _, server = make_server () in
  Lock_server.reinstall server ~client:0
    ~locks:[ (1, 1, Mode.NBW, [ iv 0 4096 ], 1, Lcm.Granted) ];
  Lock_server.reinstall server ~client:1
    ~locks:[ (1, 2, Mode.NBW, [ iv 8192 12288 ], 2, Lcm.Granted) ];
  Check.Invariant.check_server server

(* ------------------------------------------------------------------ *)
(* Cache-under-lock                                                    *)
(* ------------------------------------------------------------------ *)

let make_cache_world () =
  let eng, server = make_server () in
  let node = Netsim.Node.create eng params ~name:"c0" () in
  let hooks =
    {
      Lock_client.flush = (fun ~rid:_ ~ranges:_ -> ());
      has_dirty = (fun ~rid:_ ~ranges:_ -> false);
      invalidate = (fun ~rid:_ ~ranges:_ -> ());
    }
  in
  let lc =
    Lock_client.create eng params ~node ~client_id:0
      ~route:(fun _ -> server)
      ~hooks
  in
  let io_ep =
    Netsim.Rpc.endpoint eng params ~node ~name:"io" ~handler:(fun _ ~reply:_ ->
        assert false)
  in
  let cache =
    Ccpfs.Client_cache.create eng params Ccpfs.Config.default ~node
      ~client_id:0
      ~io_route:(fun _ -> io_ep)
  in
  (eng, lc, cache)

let test_dirty_without_lock_flagged () =
  let eng, lc, cache = make_cache_world () in
  Engine.spawn eng ~name:"w" (fun () ->
      Ccpfs.Client_cache.write cache ~rid:1 ~range:(iv 0 4096) ~sn:1 ~op:1);
  Engine.run eng;
  expect_violation "cache-under-lock" (fun () ->
      Check.Invariant.check_client ~lock_client:lc ~cache)

let test_dirty_under_lock_passes () =
  let eng, lc, cache = make_cache_world () in
  Engine.spawn eng ~name:"w" (fun () ->
      let _h = Lock_client.acquire lc ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ] in
      Ccpfs.Client_cache.write cache ~rid:1 ~range:(iv 0 4096) ~sn:1 ~op:1);
  Engine.run eng;
  Check.Invariant.check_client ~lock_client:lc ~cache

(* ------------------------------------------------------------------ *)
(* Wait-for-graph deadlock analysis                                    *)
(* ------------------------------------------------------------------ *)

let test_wait_for_graph_cycle () =
  (* Classic lock-order inversion with BW (which never early-grants):
     c0 holds r1 and wants r2, c1 holds r2 and wants r1.  The engine
     must stall, and the analyzer must name the cycle with modes and
     ranges. *)
  let eng, server = make_server () in
  let clients =
    Array.init 2 (fun i ->
        let node =
          Netsim.Node.create eng params ~name:(Printf.sprintf "c%d" i) ()
        in
        let hooks =
          {
            Lock_client.flush = (fun ~rid:_ ~ranges:_ -> ());
            has_dirty = (fun ~rid:_ ~ranges:_ -> false);
            invalidate = (fun ~rid:_ ~ranges:_ -> ());
          }
        in
        Lock_client.create eng params ~node ~client_id:i
          ~route:(fun _ -> server)
          ~hooks)
  in
  let order = [| (1, 2); (2, 1) |] in
  Array.iteri
    (fun i (first, second) ->
      Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
          let _h1 =
            Lock_client.acquire clients.(i) ~rid:first ~mode:Mode.BW
              ~ranges:[ iv 0 4096 ]
          in
          let _h2 =
            Lock_client.acquire clients.(i) ~rid:second ~mode:Mode.BW
              ~ranges:[ iv 0 4096 ]
          in
          ()))
    order;
  match Engine.run eng with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Engine.Deadlock blocked ->
      let report = Check.Deadlock.analyze ~servers:[ server ] ~blocked in
      Alcotest.(check (list (list int)))
        "one 2-cycle" [ [ 0; 1 ] ] report.Check.Deadlock.cycles;
      Alcotest.(check int) "two wait edges" 2
        (List.length report.Check.Deadlock.edges);
      List.iter
        (fun (e : Check.Deadlock.edge) ->
          Alcotest.(check bool) "BW on both sides" true
            (Mode.equal e.e_wait_mode Mode.BW
            && Mode.equal e.e_hold_mode Mode.BW))
        report.Check.Deadlock.edges;
      (* The engine-level report names the stuck application processes
         (waiting on the lock RPC) and the cancel processes that cannot
         drain because each client still holds its first lock. *)
      let names = Engine.blocked_names blocked in
      Alcotest.(check bool) "both writers reported" true
        (List.mem "w0" names && List.mem "w1" names);
      let ctx_of name =
        match List.find_opt (fun b -> b.Engine.b_name = name) blocked with
        | Some { Engine.b_context = Some ctx; _ } -> ctx
        | _ -> ""
      in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (w ^ " blocked on the lock RPC")
            true
            (String.starts_with ~prefix:"rpc:" (ctx_of w)))
        [ "w0"; "w1" ];
      Alcotest.(check bool) "cancel wait context reported" true
        (List.exists
           (fun b ->
             match b.Engine.b_context with
             | Some ctx -> String.starts_with ~prefix:"lock-idle:" ctx
             | None -> false)
           blocked)

(* ------------------------------------------------------------------ *)
(* Determinism checker                                                 *)
(* ------------------------------------------------------------------ *)

let test_determinism_accepts_pure_scenario () =
  let fp =
    Check.Determinism.check ~name:"pure" (fun () ->
        let eng, server = make_server () in
        ignore server;
        Engine.spawn eng ~name:"p" (fun () -> Engine.sleep eng 1.0);
        Engine.run eng;
        eng)
  in
  Alcotest.(check bool) "nonzero fingerprint" true (not (Int64.equal fp 0L))

let test_determinism_catches_hidden_state () =
  (* A scenario leaking state across runs (here: a counter that changes
     an event's timing) must be caught by the double-run. *)
  let counter = ref 0 in
  expect_violation "determinism" (fun () ->
      ignore
        (Check.Determinism.check ~name:"leaky" (fun () ->
             incr counter;
             let eng = Engine.create () in
             Engine.spawn eng ~name:"p" (fun () ->
                 Engine.sleep eng (float_of_int !counter));
             Engine.run eng;
             eng)))

let test_determinism_under_randomized_hashing () =
  (* Regression for a family of latent ordering bugs: sweeps that leaked
     raw [Hashtbl] iteration order into protocol events — the flush
     daemon's equal-size tie order, the data server's budget-limited
     cleanup sweep and force-sync issue order, the client's per-stripe
     write grouping.  [Hashtbl.randomize] gives every subsequently
     created table a fresh random seed, so the two runs of the
     determinism check iterate their tables in genuinely different
     orders; if any of those sweeps still depended on it, the
     event-stream fingerprints would diverge. *)
  Hashtbl.randomize ();
  let open Ccpfs in
  ignore
    (Check.Determinism.check ~name:"randomized-hashing" (fun () ->
         let config =
           Config.with_extent_cache ~limit:48
             (Config.with_dirty_limits ~dirty_min:(32 * 1024)
                ~dirty_max:(256 * 1024) Config.default)
         in
         (* the voluntary flush daemon must get a chance to run between
            writes — its largest-first drain order is one of the sweeps
            under test *)
         let config = { config with Config.flush_period = 2e-4 } in
         let cl =
           Cluster.create ~config ~policy:Policy.seqdlm ~n_servers:2
             ~n_clients:4 ()
         in
         let layout = Layout.v ~stripe_size:(16 * 1024) ~stripe_count:8 () in
         for i = 0 to 3 do
           Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
               let f = Client.open_file c ~create:true ~layout "/rand" in
               (* Stripe-crossing strided writes over an 8-stripe layout:
                  every write spans stripes (the per-stripe grouping
                  table), the equal-size dirty stripes exercise the flush
                  daemon's tie order, and the extent-cache pressure on
                  both servers drives the cleanup sweep and force-sync. *)
               for k = 0 to 11 do
                 let slot = (k * 4) + i in
                 Client.write c f ~off:(slot * 20_000) ~len:20_000
               done;
               Client.write c f ~off:(i * 160 * 1024) ~len:(128 * 1024);
               Client.fsync c)
         done;
         Cluster.run cl;
         Cluster.fsync_all cl;
         Cluster.check_invariants cl;
         Cluster.engine cl))

let test_find_cycles_stable_under_randomized_hashing () =
  (* Regression for the lint rule D001 finding in [Deadlock.find_cycles]:
     the DFS shares its [visited] table across roots, so the order the
     roots are taken in decides which traversal discovers each cycle —
     and with roots supplied by raw [Hashtbl.iter], two analyses of the
     same stall could report the same cycles in different orders.  Roots
     now come from sorted-key iteration; under [Hashtbl.randomize] every
     call builds its adjacency table with a fresh random seed, so any
     remaining dependence on bucket order would show up as run-to-run
     disagreement below. *)
  Hashtbl.randomize ();
  let mk_edge w h =
    {
      Check.Deadlock.e_waiter = w;
      e_holder = h;
      e_rid = 0;
      e_wait_mode = Mode.PW;
      e_hold_mode = Mode.PW;
      e_hold_state = Lcm.Granted;
      e_wait_ranges = [ iv 0 8 ];
      e_hold_ranges = [ iv 0 8 ];
    }
  in
  (* Three disjoint 2-cycles: with unsorted roots, whichever component's
     root the table yields first gets its cycle listed first. *)
  let edges =
    List.concat_map
      (fun (a, b) -> [ mk_edge a b; mk_edge b a ])
      [ (1, 2); (3, 4); (5, 6) ]
  in
  let expect = [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  for _ = 1 to 60 do
    Alcotest.(check (list (list int)))
      "cycle list independent of table seed" expect
      (Check.Deadlock.find_cycles edges)
  done

(* ------------------------------------------------------------------ *)
(* Schedule explorer                                                   *)
(* ------------------------------------------------------------------ *)

let test_explore_enumerates_tie_orders () =
  (* Two processes tied at t=1.0: exactly two schedules, both orders
     observed. *)
  let seen = ref [] in
  let r =
    Check.Explore.run (fun choose ->
        let eng = Engine.create () in
        Engine.set_tie_chooser eng choose;
        let log = ref [] in
        List.iter
          (fun name ->
            Engine.spawn eng ~name (fun () ->
                Engine.sleep eng 1.0;
                log := name :: !log))
          [ "a"; "b" ];
        Engine.run eng;
        seen := List.rev !log :: !seen)
  in
  Alcotest.(check bool)
    (Printf.sprintf "several schedules (%d)" r.Check.Explore.schedules)
    true
    (r.Check.Explore.schedules >= 2);
  Alcotest.(check bool) "exhaustive" true r.Check.Explore.complete;
  Alcotest.(check bool) "both orders seen" true
    (List.mem [ "a"; "b" ] !seen && List.mem [ "b"; "a" ] !seen)

let test_explore_pinpoints_failing_schedule () =
  (* A bug that only fires under one interleaving must be found and
     reported with the decision path that reproduces it. *)
  match
    Check.Explore.run (fun choose ->
        let eng = Engine.create () in
        Engine.set_tie_chooser eng choose;
        let log = ref [] in
        List.iter
          (fun name ->
            Engine.spawn eng ~name (fun () ->
                Engine.sleep eng 1.0;
                log := name :: !log))
          [ "a"; "b" ];
        Engine.run eng;
        if List.rev !log = [ "b"; "a" ] then failwith "order-sensitive bug")
  with
  | _ -> Alcotest.fail "expected Schedule_failed"
  | exception Check.Explore.Schedule_failed { index; choices; exn; _ } ->
      Alcotest.(check int) "found on second schedule" 1 index;
      Alcotest.(check bool) "decision path recorded" true
        (List.exists (fun (c, n) -> c = 1 && n = 2) choices);
      Alcotest.(check bool) "original exception kept" true
        (match exn with Failure _ -> true | _ -> false)

let test_explore_three_client_contention () =
  (* The acceptance scenario: three contending writers, all arrival
     orders, every same-timestamp interleaving, invariants after each
     schedule. *)
  let r = Check.Scenarios.explore_contention () in
  Alcotest.(check bool) "exhaustive" true r.Check.Explore.complete;
  Alcotest.(check bool)
    (Printf.sprintf "many schedules (%d)" r.Check.Explore.schedules)
    true
    (r.Check.Explore.schedules >= 100)

let suite =
  [
    ( "check.invariant",
      [
        Alcotest.test_case "injected PW beside PR caught" `Quick
          test_catches_pw_beside_pr;
        Alcotest.test_case "injected duplicate SN caught" `Quick
          test_catches_duplicate_sn;
        Alcotest.test_case "clean state passes" `Quick test_clean_state_passes;
        Alcotest.test_case "dirty data without lock flagged" `Quick
          test_dirty_without_lock_flagged;
        Alcotest.test_case "dirty data under lock passes" `Quick
          test_dirty_under_lock_passes;
      ] );
    ( "check.deadlock",
      [
        Alcotest.test_case "wait-for graph names the cycle" `Quick
          test_wait_for_graph_cycle;
        Alcotest.test_case "cycle list stable under randomized hashing" `Quick
          test_find_cycles_stable_under_randomized_hashing;
      ] );
    ( "check.determinism",
      [
        Alcotest.test_case "pure scenario accepted" `Quick
          test_determinism_accepts_pure_scenario;
        Alcotest.test_case "hidden state caught" `Quick
          test_determinism_catches_hidden_state;
        Alcotest.test_case "stable under randomized hashing" `Quick
          test_determinism_under_randomized_hashing;
      ] );
    ( "check.explore",
      [
        Alcotest.test_case "enumerates tie orders" `Quick
          test_explore_enumerates_tie_orders;
        Alcotest.test_case "pinpoints failing schedule" `Quick
          test_explore_pinpoints_failing_schedule;
        Alcotest.test_case "three-client contention exhaustive" `Quick
          test_explore_three_client_contention;
      ] );
  ]
