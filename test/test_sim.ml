(* Tests for the discrete-event engine and its synchronisation
   primitives (lib/sim). *)

open Dessim

let feq = Alcotest.(check (float 1e-9))

let test_clock_and_sleep () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng ~name:"a" (fun () ->
      Engine.sleep eng 1.0;
      log := ("a", Engine.now eng) :: !log;
      Engine.sleep eng 2.0;
      log := ("a2", Engine.now eng) :: !log);
  Engine.spawn eng ~name:"b" (fun () ->
      Engine.sleep eng 1.5;
      log := ("b", Engine.now eng) :: !log);
  Engine.run eng;
  feq "final time" 3.0 (Engine.now eng);
  let order = List.rev_map fst !log in
  Alcotest.(check (list string)) "event order" [ "a"; "b"; "a2" ] order

let test_deterministic_tie_break () =
  (* Two processes waking at the same instant run in spawn order. *)
  let run () =
    let eng = Engine.create () in
    let log = ref [] in
    List.iter
      (fun name ->
        Engine.spawn eng ~name (fun () ->
            Engine.sleep eng 1.0;
            log := name :: !log))
      [ "p1"; "p2"; "p3" ];
    Engine.run eng;
    List.rev !log
  in
  Alcotest.(check (list string)) "spawn order" [ "p1"; "p2"; "p3" ] (run ());
  Alcotest.(check (list string)) "reproducible" (run ()) (run ())

let test_run_until () =
  let eng = Engine.create () in
  let hit = ref 0 in
  Engine.spawn eng ~name:"p" (fun () ->
      Engine.sleep eng 1.0;
      incr hit;
      Engine.sleep eng 10.;
      incr hit);
  Engine.run ~until:5.0 eng;
  Alcotest.(check int) "first wake only" 1 !hit;
  feq "paused at until" 5.0 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "resumed" 2 !hit;
  feq "completed" 11.0 (Engine.now eng)

let test_deadlock_detection () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  Engine.spawn eng ~name:"stuck" (fun () -> ignore (Mailbox.recv mb));
  (try
     Engine.run eng;
     Alcotest.fail "expected deadlock"
   with Engine.Deadlock blocked ->
     Alcotest.(check (list string))
       "blocked names" [ "stuck" ]
       (Engine.blocked_names blocked);
     match blocked with
     | [ b ] ->
         Alcotest.(check (option string))
           "wait context" (Some "mailbox") b.Engine.b_context
     | _ -> Alcotest.fail "expected one blocked process")

let test_deadlock_reports_daemons () =
  (* A deadlock report must show blocked daemons with their wait context,
     or a stuck server daemon stays opaque. *)
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  let cond = Condition.create eng in
  Engine.spawn eng ~daemon:true ~name:"flushd" (fun () ->
      Condition.wait ~ctx:"flush-work" cond);
  Engine.spawn eng ~name:"stuck" (fun () -> ignore (Mailbox.recv mb));
  try
    Engine.run eng;
    Alcotest.fail "expected deadlock"
  with Engine.Deadlock blocked ->
    Alcotest.(check (list string))
      "non-daemons only by default" [ "stuck" ]
      (Engine.blocked_names blocked);
    Alcotest.(check (list string))
      "daemons included on demand" [ "flushd"; "stuck" ]
      (List.sort compare (Engine.blocked_names ~daemons:true blocked));
    let daemon =
      List.find (fun b -> b.Engine.b_daemon) blocked
    in
    Alcotest.(check (option string))
      "daemon wait context" (Some "flush-work") daemon.Engine.b_context

let test_daemon_does_not_deadlock () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  Engine.spawn eng ~daemon:true ~name:"daemon" (fun () ->
      ignore (Mailbox.recv mb));
  Engine.spawn eng ~name:"worker" (fun () -> Engine.sleep eng 1.0);
  Engine.run eng;
  feq "finished" 1.0 (Engine.now eng)

let test_daemon_polling_stops_with_work () =
  (* A periodic daemon must not keep the simulation alive once all
     regular processes are done. *)
  let eng = Engine.create () in
  let polls = ref 0 in
  Engine.spawn eng ~daemon:true ~name:"poller" (fun () ->
      while true do
        Engine.sleep eng 0.1;
        incr polls
      done);
  Engine.spawn eng ~name:"worker" (fun () -> Engine.sleep eng 1.05);
  Engine.run eng;
  Alcotest.(check bool) "daemon polled during work" true (!polls >= 10);
  Alcotest.(check bool) "stopped promptly" true (!polls <= 11)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  Engine.spawn eng ~name:"recv" (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.spawn eng ~name:"send" (fun () ->
      Mailbox.send mb 1;
      Engine.sleep eng 0.5;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_many_waiters () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng ~name:(Printf.sprintf "r%d" i) (fun () ->
        let v = Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Engine.spawn eng ~name:"send" (fun () ->
      Engine.sleep eng 1.;
      List.iter (Mailbox.send mb) [ 10; 20; 30 ]);
  Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "waiters served fifo"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !got)

let test_ivar () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  let seen = ref [] in
  for i = 1 to 2 do
    Engine.spawn eng ~name:(Printf.sprintf "r%d" i) (fun () ->
        let v = Ivar.read iv in
        seen := (i, v, Engine.now eng) :: !seen)
  done;
  Engine.spawn eng ~name:"filler" (fun () ->
      Engine.sleep eng 2.;
      Ivar.fill iv 42);
  Engine.run eng;
  Alcotest.(check int) "both resumed" 2 (List.length !seen);
  List.iter
    (fun (_, v, t) ->
      Alcotest.(check int) "value" 42 v;
      feq "at fill time" 2. t)
    !seen;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 0)

let test_semaphore_mutex () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng 1 in
  let active = ref 0 and max_active = ref 0 in
  for i = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr active;
            if !active > !max_active then max_active := !active;
            Engine.sleep eng 1.0;
            decr active))
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_active;
  feq "serialized" 4.0 (Engine.now eng)

let test_semaphore_counting () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng 2 in
  Engine.spawn eng ~name:"w" (fun () ->
      Semaphore.acquire sem;
      Semaphore.acquire sem;
      Alcotest.(check int) "none left" 0 (Semaphore.available sem);
      Semaphore.release sem;
      Semaphore.release sem;
      Alcotest.(check int) "restored" 2 (Semaphore.available sem));
  Engine.run eng

let test_resource_fifo_rate () =
  let eng = Engine.create () in
  let r = Resource.create eng ~rate:10. () in
  let t1 = ref 0. and t2 = ref 0. in
  Engine.spawn eng ~name:"a" (fun () ->
      Resource.consume r 10.;
      t1 := Engine.now eng);
  Engine.spawn eng ~name:"b" (fun () ->
      Resource.consume r 20.;
      t2 := Engine.now eng);
  Engine.run eng;
  feq "first done at 1s" 1.0 !t1;
  feq "second queued behind" 3.0 !t2;
  feq "busy accounting" 3.0 (Resource.busy_seconds r)

let test_resource_idle_gap () =
  let eng = Engine.create () in
  let r = Resource.create eng ~rate:10. () in
  Engine.spawn eng ~name:"a" (fun () ->
      Resource.consume r 10.;
      Engine.sleep eng 5.;
      Resource.consume r 10.;
      feq "no charge for idle gap" 7.0 (Engine.now eng));
  Engine.run eng;
  feq "busy excludes idle" 2.0 (Resource.busy_seconds r)

let test_condition () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let state = ref 0 in
  let woke = ref (-1.) in
  Engine.spawn eng ~name:"waiter" (fun () ->
      Condition.wait_until cond (fun () -> !state >= 3);
      woke := Engine.now eng);
  Engine.spawn eng ~name:"producer" (fun () ->
      for _ = 1 to 3 do
        Engine.sleep eng 1.;
        incr state;
        Condition.broadcast cond
      done);
  Engine.run eng;
  feq "woke when predicate held" 3.0 !woke

let test_nested_spawn () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng ~name:"parent" (fun () ->
      Engine.sleep eng 1.;
      Engine.spawn eng ~name:"child" (fun () ->
          Engine.sleep eng 1.;
          log := "child" :: !log);
      log := "parent" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "both ran" [ "parent"; "child" ] (List.rev !log);
  feq "child extended the run" 2.0 (Engine.now eng)

let test_crash_leaves_engine_consistent () =
  (* An exception escaping a process body unwinds through [run] to the
     caller; the engine must not keep the dead process as [current] or in
     the blocked set, and must remain resumable. *)
  let eng = Engine.create () in
  let survived = ref false in
  Engine.spawn eng ~name:"crasher" (fun () ->
      Engine.sleep eng 1.0;
      failwith "boom");
  Engine.spawn eng ~name:"survivor" (fun () ->
      Engine.sleep eng 2.0;
      survived := true);
  (try
     Engine.run eng;
     Alcotest.fail "expected the crash to escape run"
   with Failure msg -> Alcotest.(check string) "the crash itself" "boom" msg);
  Alcotest.(check (option string))
    "no stale current process" None (Engine.current_name eng);
  Alcotest.(check (list string))
    "post-mortem blames only live waiters" [ "survivor" ]
    (Engine.blocked_names (Engine.blocked_report eng));
  Engine.run eng;
  Alcotest.(check bool) "engine resumable after crash" true !survived;
  feq "survivor finished on time" 2.0 (Engine.now eng)

let test_crash_in_suspend_register () =
  (* A blocking primitive that fails while registering its wakeup must
     deliver the exception into the fiber (so the same cleanup runs),
     not abort the scheduler mid-dispatch. *)
  let eng = Engine.create () in
  Engine.spawn eng ~name:"bad-blocker" (fun () ->
      Engine.suspend ~ctx:"broken" eng (fun _resume ->
          invalid_arg "broken primitive"));
  (try
     Engine.run eng;
     Alcotest.fail "expected the register failure to escape run"
   with Invalid_argument msg ->
     Alcotest.(check string) "register's exception" "broken primitive" msg);
  Alcotest.(check (option string))
    "no stale current process" None (Engine.current_name eng);
  Alcotest.(check (list string))
    "dead process not reported blocked" []
    (Engine.blocked_names (Engine.blocked_report eng))

let test_many_processes_scale () =
  let eng = Engine.create () in
  let n = 10_000 in
  let done_count = ref 0 in
  for i = 1 to n do
    Engine.spawn eng ~name:(Printf.sprintf "p%d" i) (fun () ->
        Engine.sleep eng (float_of_int (i mod 17) *. 0.001);
        incr done_count)
  done;
  Engine.run eng;
  Alcotest.(check int) "all completed" n !done_count

let suite =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "clock and sleep" `Quick test_clock_and_sleep;
        Alcotest.test_case "deterministic ties" `Quick
          test_deterministic_tie_break;
        Alcotest.test_case "run until / resume" `Quick test_run_until;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "deadlock report includes daemons" `Quick
          test_deadlock_reports_daemons;
        Alcotest.test_case "daemons exempt from deadlock" `Quick
          test_daemon_does_not_deadlock;
        Alcotest.test_case "polling daemon stops with work" `Quick
          test_daemon_polling_stops_with_work;
        Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
        Alcotest.test_case "crash leaves engine consistent" `Quick
          test_crash_leaves_engine_consistent;
        Alcotest.test_case "crash in suspend register" `Quick
          test_crash_in_suspend_register;
        Alcotest.test_case "10k processes" `Quick test_many_processes_scale;
      ] );
    ( "sim.sync",
      [
        Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
        Alcotest.test_case "mailbox waiter order" `Quick
          test_mailbox_many_waiters;
        Alcotest.test_case "ivar broadcast + double fill" `Quick test_ivar;
        Alcotest.test_case "semaphore as mutex" `Quick test_semaphore_mutex;
        Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
        Alcotest.test_case "resource fifo rate" `Quick test_resource_fifo_rate;
        Alcotest.test_case "resource idle gap" `Quick test_resource_idle_gap;
        Alcotest.test_case "condition wait_until" `Quick test_condition;
      ] );
  ]
