let () =
  Alcotest.run "seqdlm"
    (List.concat
       [
         Test_util.suite;
         Test_obs.suite;
         Test_sim.suite;
         Test_net.suite;
         Test_dlm.suite;
         Test_pfs.suite;
         Test_workloads.suite;
         Test_analytic.suite;
         Test_recovery.suite;
         Test_chaos.suite;
         Test_check.suite;
         Test_meta.suite;
         Test_experiments.suite;
       ])
