(* Tag every test-case name with the active base seed (CCPFS_SEED or
   the default), so any failure message carries the seed needed to
   replay it — randomized suites draw their QCheck streams from the
   same seed via [Fuzz.Seed.rand_state]. *)
let with_seed (name, cases) =
  (name, List.map (fun (n, speed, fn) -> (Fuzz.Seed.label n, speed, fn)) cases)

let () =
  Alcotest.run "seqdlm"
    (List.map with_seed
       (List.concat
          [
            Test_util.suite;
            Test_obs.suite;
            Test_sim.suite;
            Test_net.suite;
            Test_dlm.suite;
            Test_pfs.suite;
            Test_workloads.suite;
            Test_analytic.suite;
            Test_recovery.suite;
            Test_chaos.suite;
            Test_check.suite;
            Test_meta.suite;
            Test_experiments.suite;
            Test_load.suite;
            Test_fuzz.suite;
            Test_ha.suite;
            Test_shard.suite;
            Test_lint.suite;
          ]))
