(* Sharded lock namespace (DESIGN.md §15): shard-map routing and the
   stale-route fix, Stale_owner refresh-and-retry, epoch-fenced live
   migration, the shared §IV-C2 recovery core, the queue-driven
   rebalancer, and QCheck differentials against sharding-free
   references. *)

open Ccpfs_util
open Dessim
open Ccpfs

let params =
  {
    Netsim.Params.rtt = 1e-4;
    b_net = 1e9;
    server_ops = 10_000.;
    b_disk = 5e8;
    b_mem = 2e9;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let config = Config.with_extent_log true Config.default
let page = Config.default.page

(* ---------------------------------------------------------------- *)
(* Shard_map unit behaviour                                          *)
(* ---------------------------------------------------------------- *)

let test_shard_map_unit () =
  let m = Shard_map.create ~n_servers:4 in
  Alcotest.(check int) "initial epoch" 0 (Shard_map.epoch m);
  Alcotest.(check int) "default lock owner" 3 (Shard_map.lock_owner m 7);
  Alcotest.(check int) "data owner" 3 (Shard_map.data_owner m 7);
  let e1 = Shard_map.migrate m ~rid:7 ~dst:1 in
  Alcotest.(check int) "migrate bumps epoch" 1 e1;
  Alcotest.(check int) "lock owner moved" 1 (Shard_map.lock_owner m 7);
  Alcotest.(check int) "data owner static" 3 (Shard_map.data_owner m 7);
  Alcotest.(check (list (pair int int))) "override recorded" [ (7, 1) ]
    (Shard_map.overrides m);
  let e2 = Shard_map.migrate m ~rid:7 ~dst:3 in
  Alcotest.(check int) "second epoch" 2 e2;
  Alcotest.(check (list (pair int int)))
    "migrating home removes the override" [] (Shard_map.overrides m);
  (* Client caches install snapshots forward-only. *)
  let c = Shard_map.Cache.create ~n_servers:4 in
  Alcotest.(check int) "cache default" 3 (Shard_map.Cache.owner c 7);
  let old_snap = Shard_map.snapshot m in
  ignore (Shard_map.migrate m ~rid:7 ~dst:2);
  Shard_map.Cache.install c (Shard_map.snapshot m);
  Alcotest.(check int) "cache follows install" 2 (Shard_map.Cache.owner c 7);
  Alcotest.(check int) "cache epoch" 3 (Shard_map.Cache.epoch c);
  Shard_map.Cache.install c old_snap;
  Alcotest.(check int) "stale install ignored" 2 (Shard_map.Cache.owner c 7);
  Alcotest.(check int) "epoch kept" 3 (Shard_map.Cache.epoch c)

(* ---------------------------------------------------------------- *)
(* Stale-route regression: a map change is observed by clients that   *)
(* were created (and had routed) before it                            *)
(* ---------------------------------------------------------------- *)

let test_stale_route_refresh () =
  let cl = Cluster.create ~params ~config ~n_servers:2 ~n_clients:2 () in
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"w0" (fun c ->
      let f = Client.open_file c ~create:true "/shard" in
      file := Some f;
      Client.write c f ~off:0 ~len:page);
  Cluster.run cl;
  Cluster.fsync_all cl;
  let f = Option.get !file in
  let rid = Layout.rid ~fid:(Client.fid f) ~stripe:0 in
  let src = Cluster.server_of_rid cl rid in
  let dst = 1 - src in
  let rec_ref = ref None in
  Engine.spawn (Cluster.engine cl) ~name:"mig" (fun () ->
      (* No-op move first: same destination must not change the map. *)
      Alcotest.(check bool) "src -> src is None" true
        (Option.is_none (Cluster.migrate_resource cl ~rid ~dst:src));
      rec_ref := Cluster.migrate_resource cl ~rid ~dst);
  Cluster.run cl;
  let r =
    match !rec_ref with
    | Some r -> r
    | None -> Alcotest.fail "migration did not commit"
  in
  Alcotest.(check int) "record src" src r.Cluster.m_from;
  Alcotest.(check int) "record dst" dst r.Cluster.m_to;
  Alcotest.(check bool) "the granted lock moved" true (r.Cluster.m_locks_moved >= 1);
  Alcotest.(check int) "authoritative route flipped" dst
    (Cluster.server_of_rid cl rid);
  Alcotest.(check bool) "lock table lives at dst" true
    (match Seqdlm.Lock_server.granted_locks (Cluster.lock_server cl dst) rid with
    | [] -> false
    | _ -> true);
  (* Client 1 still holds the pre-migration map: its conflicting write
     must bounce at the old owner, refresh, retry at the new owner, and
     revoke client 0's (transferred) grant. *)
  Cluster.spawn_client cl 1 ~name:"w1" (fun c ->
      let f1 = Client.open_file c "/shard" in
      Client.write c f1 ~off:0 ~len:page);
  Cluster.run cl;
  Cluster.fsync_all cl;
  Alcotest.(check bool) "client 1 was bounced" true
    (Seqdlm.Lock_client.stale_bounces
       (Client.lock_client (Cluster.client cl 1))
    >= 1);
  (* Client 1's write won (it revoked client 0's transferred lock). *)
  (match Content.read (Cluster.stripe_contents cl f ~stripe:0)
           (Interval.of_len ~lo:0 ~len:page)
   with
  | [ (_, Some tag) ] ->
      Alcotest.(check int) "writer 1 owns the page" 1 tag.Content.writer
  | segs ->
      Alcotest.fail
        (Printf.sprintf "unexpected segment count %d" (List.length segs)));
  Check.Sanitize.check_cluster cl;
  Check.Sanitize.check_ownership cl

(* ---------------------------------------------------------------- *)
(* Differential: offline and online recovery share one core           *)
(* ---------------------------------------------------------------- *)

let layout2 = Layout.v ~stripe_size:(8 * page) ~stripe_count:2 ()

(* Identical clusters, identical workloads: three clients interleave
   writes across two stripes, then one resource is migrated onto the
   server about to fail (so recovery must take the override path for
   its extent-log floor too). *)
let mk_loaded () =
  let reliability = Netsim.Rpc.reliability_for params in
  let cl =
    Cluster.create ~params ~config ~reliability ~n_servers:2 ~n_clients:3 ()
  in
  let file = ref None in
  for i = 0 to 2 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout:layout2 "/diff" in
        if Option.is_none !file then file := Some f;
        for k = 0 to 5 do
          Client.write c f ~off:(((k * 3) + i) * page) ~len:page
        done)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;
  let f = Option.get !file in
  (* Rehome stripe 1's resource onto server 0, the server the tests
     crash: its post-recovery table must include the migrated-in
     resource, with the SN floor fetched from stripe 1's static home. *)
  let rid1 = Layout.rid ~fid:(Client.fid f) ~stripe:1 in
  if Cluster.server_of_rid cl rid1 <> 0 then begin
    Engine.spawn (Cluster.engine cl) ~name:"mig" (fun () ->
        ignore (Cluster.migrate_resource cl ~rid:rid1 ~dst:0));
    Cluster.run cl
  end;
  (cl, f)

(* Canonical rendering of one server's lock table and sequencers. *)
let server_state cl i =
  let ls = Cluster.lock_server cl i in
  let buf = Buffer.create 256 in
  List.iter
    (fun rid ->
      match Seqdlm.Lock_server.granted_locks ls rid with
      | [] -> ()
      | locks ->
          Buffer.add_string buf
            (Printf.sprintf "r%d sn%d:" rid (Seqdlm.Lock_server.next_sn ls rid));
          List.iter
            (fun (v : Seqdlm.Lock_server.lock_view) ->
              Buffer.add_string buf
                (Printf.sprintf " [%d c%d %s sn%d %s %s]" v.v_lock_id v.v_client
                   (Seqdlm.Mode.to_string v.v_mode)
                   v.v_sn
                   (Seqdlm.Lcm.state_to_string v.v_state)
                   (String.concat ","
                      (List.map
                         (fun (iv : Interval.t) ->
                           Printf.sprintf "%d-%d" iv.lo iv.hi)
                         v.v_ranges))))
            locks;
          Buffer.add_char buf '\n')
    (List.sort_uniq Int.compare (Seqdlm.Lock_server.resource_ids ls));
  Buffer.contents buf

let test_recovery_paths_agree () =
  (* Path A: the offline between-runs helper. *)
  let cl_a, f_a = mk_loaded () in
  Cluster.crash_and_recover_server cl_a 0;
  (* Path B: the online coordinator (detector -> STONITH -> gather by
     RPC -> reopen), which routes through the same recovery core. *)
  let cl_b, f_b = mk_loaded () in
  let ha = Ha.Failover.install cl_b in
  let eng = Cluster.engine cl_b in
  Engine.spawn eng ~name:"crash" (fun () ->
      ignore (Ha.Failover.crash ha 0);
      (* Keep a regular process alive until the coordinator has filed
         its record — the heartbeat machinery itself is all daemons. *)
      let tick = Ha.Detector.period (Ha.Failover.detector ha) in
      while Ha.Failover.records ha = [] do
        Engine.sleep eng tick
      done);
  Cluster.run cl_b;
  Ha.Failover.await_all_up ha;
  Alcotest.(check string) "identical post-recovery server state"
    (server_state cl_a 0) (server_state cl_b 0);
  (* And the recovered worlds keep serving identical data. *)
  List.iter
    (fun stripe ->
      Alcotest.(check bool)
        (Printf.sprintf "stripe %d contents agree" stripe)
        true
        (Content.equal
           (Cluster.stripe_contents cl_a f_a ~stripe)
           (Cluster.stripe_contents cl_b f_b ~stripe)))
    [ 0; 1 ];
  Check.Sanitize.check_cluster cl_a;
  Check.Sanitize.check_cluster cl_b

(* ---------------------------------------------------------------- *)
(* Rebalancer: hot resource leaves the loaded server                  *)
(* ---------------------------------------------------------------- *)

let test_rebalancer_moves_hot_resource () =
  let cl = Cluster.create ~params ~config ~n_servers:2 ~n_clients:4 () in
  Obs.Metrics.enable (Engine.metrics (Cluster.engine cl));
  let file = ref None in
  (* All four clients hammer the same page of stripe 0: every request
     conflicts, so the owner's queue stays deep while the other server
     idles — exactly the imbalance the daemon is built to shave. *)
  for i = 0 to 3 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "hot%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout:layout2 "/hot" in
        if Option.is_none !file then file := Some f;
        for _ = 1 to 12 do
          Client.write c f ~off:0 ~len:page
        done)
  done;
  let rb =
    Ha.Rebalancer.create ~period:(10. *. params.Netsim.Params.rtt) ~threshold:2
      cl
  in
  Ha.Rebalancer.start rb;
  Cluster.run cl;
  Cluster.fsync_all cl;
  Ha.Rebalancer.stop rb;
  Alcotest.(check bool) "the daemon migrated the hot resource" true
    (Ha.Rebalancer.moves rb >= 1);
  Alcotest.(check bool) "cluster records agree" true
    (List.length (Cluster.migrations cl) = Ha.Rebalancer.moves rb);
  (* The contended page still reflects exactly one winning writer. *)
  (match Content.read
           (Cluster.stripe_contents cl (Option.get !file) ~stripe:0)
           (Interval.of_len ~lo:0 ~len:page)
   with
  | [ (_, Some _) ] -> ()
  | _ -> Alcotest.fail "contended page not fully written");
  Check.Sanitize.check_cluster cl;
  Check.Sanitize.check_ownership cl

(* ---------------------------------------------------------------- *)
(* QCheck differential: static sharding == independent clusters       *)
(* ---------------------------------------------------------------- *)

(* Per-client ops confined to the client's own stripe, so the two
   resources never interact and a sharded 2-server world must behave
   exactly like per-client single-server worlds. *)
let gen_confined_ops rng ~stripe =
  let stripe_blocks = 8 in
  let n = 4 + Det_random.int rng 8 in
  List.init n (fun _ ->
      let blocks = 1 + Det_random.int rng 3 in
      let block = Det_random.int rng (stripe_blocks - blocks + 1) in
      let off = ((stripe * stripe_blocks) + block) * page in
      let len = blocks * page in
      if Det_random.int rng 4 = 0 then `Read (off, len) else `Write (off, len))

let run_confined cl ~client ~ops =
  let file = ref None in
  Cluster.spawn_client cl client ~name:(Printf.sprintf "cf%d" client) (fun c ->
      let f = Client.open_file c ~create:true ~layout:layout2 "/eq" in
      file := Some f;
      List.iter
        (function
          | `Write (off, len) -> Client.write c f ~off ~len
          | `Read (off, len) -> ignore (Client.read c f ~off ~len))
        ops);
  Cluster.run cl;
  Cluster.fsync_all cl;
  Option.get !file

let test_sharded_equals_independent =
  QCheck.Test.make ~name:"static sharding == independent single-server runs"
    ~count:12
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Det_random.create ~seed in
      let ops = [| gen_confined_ops rng ~stripe:0; gen_confined_ops rng ~stripe:1 |] in
      (* Sharded world: both clients in one 2-server cluster. *)
      let cl = Cluster.create ~params ~config ~n_servers:2 ~n_clients:2 () in
      let f01 = ref None in
      for i = 0 to 1 do
        Cluster.spawn_client cl i ~name:(Printf.sprintf "cf%d" i) (fun c ->
            let f = Client.open_file c ~create:true ~layout:layout2 "/eq" in
            if Option.is_none !f01 then f01 := Some f;
            List.iter
              (function
                | `Write (off, len) -> Client.write c f ~off ~len
                | `Read (off, len) -> ignore (Client.read c f ~off ~len))
              ops.(i))
      done;
      Cluster.run cl;
      Cluster.fsync_all cl;
      Check.Sanitize.check_cluster cl;
      let f = Option.get !f01 in
      (* Reference worlds: a fresh single-server cluster per client
         (same client population, so writer tags align; the other
         client stays idle). *)
      List.for_all
        (fun i ->
          let ref_cl =
            Cluster.create ~params ~config ~n_servers:1 ~n_clients:2 ()
          in
          let rf = run_confined ref_cl ~client:i ~ops:ops.(i) in
          Check.Sanitize.check_cluster ref_cl;
          let same_contents =
            Content.equal
              (Cluster.stripe_contents cl f ~stripe:i)
              (Cluster.stripe_contents ref_cl rf ~stripe:i)
          in
          let rid = Layout.rid ~fid:(Client.fid f) ~stripe:i in
          let owner = Cluster.server_of_rid cl rid in
          let ref_owner = Cluster.server_of_rid ref_cl rid in
          let same_sn =
            Seqdlm.Lock_server.next_sn (Cluster.lock_server cl owner) rid
            = Seqdlm.Lock_server.next_sn
                (Cluster.lock_server ref_cl ref_owner)
                rid
          in
          if not (same_contents && same_sn) then
            QCheck.Test.fail_reportf
              "stripe %d diverged (contents %b, sn %b) for seed %d" i
              same_contents same_sn seed;
          true)
        [ 0; 1 ])

(* ---------------------------------------------------------------- *)
(* QCheck differential: migrations preserve single-writer semantics   *)
(* ---------------------------------------------------------------- *)

let gen_free_ops rng =
  let n = 8 + Det_random.int rng 12 in
  List.init n (fun _ ->
      match Det_random.int rng 8 with
      | 0 -> `Append (1 + Det_random.int rng 2)
      | 1 -> `Truncate (Det_random.int rng 16)
      | _ ->
          let blocks = 1 + Det_random.int rng 4 in
          let block = Det_random.int rng (16 - blocks + 1) in
          `Write (block, blocks))

let run_free cl ~ops ~migrations ~crash =
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"solo" (fun c ->
      let f = Client.open_file c ~create:true ~layout:layout2 "/mig" in
      file := Some f;
      List.iter
        (function
          | `Write (block, blocks) ->
              Client.write c f ~off:(block * page) ~len:(blocks * page)
          | `Append blocks -> ignore (Client.append c f ~len:(blocks * page))
          | `Truncate blocks -> Client.truncate c f ~size:(blocks * page))
        ops);
  List.iteri
    (fun mi (stripe, dst, after) ->
      Engine.spawn (Cluster.engine cl) ~name:(Printf.sprintf "mig%d" mi)
        (fun () ->
          Engine.sleep (Cluster.engine cl) after;
          match !file with
          | None -> ()
          | Some f ->
              let rid = Layout.rid ~fid:(Client.fid f) ~stripe in
              ignore (Cluster.migrate_resource cl ~rid ~dst)))
    migrations;
  Cluster.run cl;
  Cluster.fsync_all cl;
  if crash then begin
    Cluster.crash_and_recover_server cl 0;
    (* Post-recovery traffic must keep working on the recovered world. *)
    Cluster.spawn_client cl 0 ~name:"post" (fun c ->
        let f = Option.get !file in
        Client.write c f ~off:0 ~len:page);
    Cluster.run cl;
    Cluster.fsync_all cl
  end;
  Check.Sanitize.check_cluster cl;
  Check.Sanitize.check_ownership cl;
  Option.get !file

let test_migration_preserves_semantics =
  QCheck.Test.make
    ~name:"mid-run migration == no-migration reference (single writer)"
    ~count:12
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Det_random.create ~seed in
      let ops = gen_free_ops rng in
      let n_mig = 1 + Det_random.int rng 3 in
      let migrations =
        List.init n_mig (fun _ ->
            let stripe = Det_random.int rng 2 in
            let dst = Det_random.int rng 2 in
            let after = Det_random.float rng (400. *. params.Netsim.Params.rtt) in
            (stripe, dst, after))
      in
      let crash = Det_random.bool rng in
      let cl_m = Cluster.create ~params ~config ~n_servers:2 ~n_clients:1 () in
      let f_m = run_free cl_m ~ops ~migrations ~crash in
      let cl_r = Cluster.create ~params ~config ~n_servers:2 ~n_clients:1 () in
      let f_r = run_free cl_r ~ops ~migrations:[] ~crash in
      List.iter
        (fun stripe ->
          if
            not
              (Content.equal
                 (Cluster.stripe_contents cl_m f_m ~stripe)
                 (Cluster.stripe_contents cl_r f_r ~stripe))
          then
            QCheck.Test.fail_reportf "stripe %d diverged for seed %d" stripe
              seed)
        [ 0; 1 ];
      true)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "shard map + cache unit behaviour" `Quick
          test_shard_map_unit;
        Alcotest.test_case "stale route bounces, refreshes and retries" `Quick
          test_stale_route_refresh;
        Alcotest.test_case "offline and online recovery agree" `Quick
          test_recovery_paths_agree;
        Alcotest.test_case "rebalancer moves the hot resource" `Quick
          test_rebalancer_moves_hot_resource;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          test_sharded_equals_independent;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          test_migration_preserves_semantics;
      ] );
  ]
