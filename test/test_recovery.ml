(* Server recovery tests (§IV-C2): lock-state gathering from clients,
   extent-log replay, and sequence-number floor restoration. *)

open Ccpfs_util
open Dessim
open Ccpfs

let params =
  {
    Netsim.Params.rtt = 1e-4;
    b_net = 1e9;
    server_ops = 10_000.;
    b_disk = 5e8;
    b_mem = 2e9;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let config = Config.with_extent_log true Config.default

let make ~clients =
  Cluster.create ~params ~config ~n_servers:1 ~n_clients:clients ()

let test_recovery_round_trip () =
  let cl = make ~clients:3 in
  for i = 0 to 2 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/rec" in
        for k = 0 to 9 do
          Client.write c f ~off:(((k * 3) + i) * 8192) ~len:8192
        done;
        Client.fsync c)
  done;
  Cluster.run cl;
  let ls = Cluster.lock_server cl 0 in
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/rec"));
  Cluster.run cl;
  let rid = Layout.rid ~fid:(Client.fid (Option.get !file)) ~stripe:0 in
  let before = Seqdlm.Lock_server.granted_locks ls rid in
  let sn_before = Seqdlm.Lock_server.next_sn ls rid in
  let cache_before =
    Data_server.extent_cache_of (Cluster.data_server cl 0) rid
  in

  Cluster.crash_and_recover_server cl 0;

  let after = Seqdlm.Lock_server.granted_locks ls rid in
  Alcotest.(check int) "lock table regathered" (List.length before)
    (List.length after);
  List.iter2
    (fun (a : Seqdlm.Lock_server.lock_view) (b : Seqdlm.Lock_server.lock_view) ->
      Alcotest.(check int) "same lock id" a.v_lock_id b.v_lock_id;
      Alcotest.(check int) "same client" a.v_client b.v_client;
      Alcotest.(check int) "same SN" a.v_sn b.v_sn;
      Alcotest.(check bool) "same mode" true
        (Seqdlm.Mode.equal a.v_mode b.v_mode))
    before after;
  Alcotest.(check bool) "SN floor restored" true
    (Seqdlm.Lock_server.next_sn ls rid >= sn_before);
  let cache_after = Data_server.extent_cache_of (Cluster.data_server cl 0) rid in
  let canonical entries =
    Extent_map.to_list
      (Extent_map.coalesce ~eq:Int.equal (Extent_map.of_list entries))
  in
  Alcotest.(check bool) "extent cache rebuilt from log" true
    (canonical cache_before = canonical cache_after)

let test_post_recovery_data_safety () =
  (* Conflicting writes continue after recovery: SNs must not collide
     with pre-crash data, and readback stays correct. *)
  let cl = make ~clients:2 in
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "pre%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/pr" in
        Client.write c f ~off:0 ~len:65536)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;

  Cluster.crash_and_recover_server cl 0;

  (* Post-crash overwrites must win over pre-crash data. *)
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "post%d" i) (fun c ->
        let f = Client.open_file c "/pr" in
        Client.write c f ~off:0 ~len:65536)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/pr"));
  Cluster.run cl;
  let contents = Cluster.stripe_contents cl (Option.get !file) ~stripe:0 in
  (match Content.read contents (Interval.v ~lo:0 ~hi:65536) with
  | segs ->
      Alcotest.(check bool) "post-crash writer won everywhere" true
        (List.for_all
           (fun (_, tag) ->
             match tag with
             | Some (t : Content.tag) -> t.Content.op >= 2
             | None -> false)
           segs));
  Cluster.check_invariants cl

let test_recovery_requires_extent_log () =
  let cl =
    Cluster.create ~params ~config:Config.default ~n_servers:1 ~n_clients:1 ()
  in
  Cluster.spawn_client cl 0 ~name:"w" (fun c ->
      let f = Client.open_file c ~create:true "/x" in
      Client.write c f ~off:0 ~len:4096;
      Client.fsync c);
  Cluster.run cl;
  Alcotest.check_raises "needs the log"
    (Invalid_argument "ds0: recovery needs the extent log") (fun () ->
      Cluster.crash_and_recover_server cl 0)

let test_crash_refuses_queued_waiters () =
  (* A waiter parked in the queue would lose its reply: crashing then is
     a programming error, not a recovery scenario. *)
  let cl = make ~clients:2 in
  let eng = Cluster.engine cl in
  Cluster.spawn_client cl 0 ~name:"holder" (fun c ->
      let f = Client.open_file c ~create:true "/q" in
      (* 16 MiB of dirty data: the revocation-triggered flush takes tens
         of simulated milliseconds, keeping the waiter queued. *)
      Client.write ~mode:Seqdlm.Mode.PW c f ~off:0 ~len:(16 * Units.mib);
      Engine.sleep eng 10.);
  Cluster.spawn_client cl 1 ~name:"waiter" (fun c ->
      Engine.sleep eng 0.05;
      let f = Client.open_file c "/q" in
      Client.write ~mode:Seqdlm.Mode.PW c f ~off:0 ~len:(16 * Units.mib));
  (* Pause mid-protocol: holder cached its PW lock and is sleeping; the
     waiter's request is queued behind the revocation. *)
  Cluster.run ~until:0.06 cl;
  Alcotest.(check bool) "waiter is queued" true
    (Seqdlm.Lock_server.queue_length (Cluster.lock_server cl 0)
       (Layout.rid ~fid:1 ~stripe:0)
    > 0);
  (try
     Seqdlm.Lock_server.crash (Cluster.lock_server cl 0);
     Alcotest.fail "expected crash to refuse"
   with Invalid_argument _ -> ());
  (* Let the run finish cleanly. *)
  Cluster.run cl

(* Crash while flushed and still-dirty data coexist, end-to-end under
   the fuzzer's shadow-file oracle.  Tight dirty limits make the
   voluntary daemon flush part of phase 0 (populating the extent log)
   while the rest is still dirty in the client caches when the server
   dies; recovery rebuilds the extent cache from the log and restores
   the SN floor (Exec raises [recovery-sn-floor] if the rebuilt next_sn
   is not above every recovered SN), and the pre-crash-SN dirty data
   that flushes afterwards must still merge into exactly the bytes the
   shadow file predicts. *)
let test_crash_with_dirty_cache_flush () =
  let open Fuzz.Case in
  let case =
    {
      Fuzz.Case.seed = 424242;
      params;
      kind =
        Sim
          {
            policy_idx = 0;
            n_servers = 1;
            n_clients = 2;
            stripes = 2;
            stripe_blocks = 4;
            dirty_min_blocks = 8;
            dirty_max_blocks = 32;
            extent_cache_limit = Config.default.extent_cache_limit;
            tie_random = false;
            jitter = 0.;
            loss = 0.;
            dup = 0.;
            batch = 0;
            load = None;
            migrations = [];
            phases =
              [
                {
                  ops =
                    [|
                      [
                        Write { block = 0; blocks = 6 };
                        Write { block = 8; blocks = 6 };
                      ];
                      [ Write { block = 4; blocks = 6 } ];
                    |];
                  crash_server = Some 0;
                  crash_mid = None;
                };
                {
                  ops =
                    [| [ Write { block = 2; blocks = 4 } ]; [ Append { blocks = 2 } ] |];
                  crash_server = None;
                  crash_mid = None;
                };
              ];
          };
    }
  in
  let o = Fuzz.Exec.run case in
  Alcotest.(check string) "shadow file agrees byte-for-byte" "shadow" o.oracle;
  Alcotest.(check bool) "ops actually ran" true (o.ops > 0)

(* Queue contention, then recovery: a waiter sits in the lock-server
   queue behind a revocation mid-run; once the run drains, the server
   crashes and recovers, and the rebuilt SN counter must sit strictly
   above everything recovered — both the extent log's high-water mark
   and every grant the clients still cache. *)
let test_queued_waiters_then_recovery () =
  let cl = make ~clients:2 in
  let eng = Cluster.engine cl in
  Cluster.spawn_client cl 0 ~name:"holder" (fun c ->
      let f = Client.open_file c ~create:true "/qr" in
      Client.write ~mode:Seqdlm.Mode.PW c f ~off:0 ~len:(16 * Units.mib));
  Cluster.spawn_client cl 1 ~name:"waiter" (fun c ->
      Engine.sleep eng 0.05;
      let f = Client.open_file c "/qr" in
      Client.write ~mode:Seqdlm.Mode.PW c f ~off:0 ~len:(16 * Units.mib));
  let rid = Layout.rid ~fid:1 ~stripe:0 in
  let ls = Cluster.lock_server cl 0 in
  (* Pause mid-protocol to prove the queue really formed... *)
  Cluster.run ~until:0.06 cl;
  Alcotest.(check bool) "waiter queued mid-run" true
    (Seqdlm.Lock_server.queue_length ls rid > 0);
  (* ...then drain it and crash at quiescence. *)
  Cluster.run cl;
  Alcotest.(check int) "queue drained" 0
    (Seqdlm.Lock_server.queue_length ls rid);
  Cluster.crash_and_recover_server cl 0;
  let ds = Cluster.data_server cl 0 in
  let rids =
    List.sort_uniq compare
      (Seqdlm.Lock_server.resource_ids ls @ Data_server.stripe_rids ds)
  in
  Alcotest.(check bool) "some state recovered" true (rids <> []);
  List.iter
    (fun rid ->
      let next = Seqdlm.Lock_server.next_sn ls rid in
      let logged =
        Option.value (Data_server.max_logged_sn ds rid) ~default:0
      in
      let reinstalled =
        List.fold_left
          (fun m (v : Seqdlm.Lock_server.lock_view) -> max m v.v_sn)
          0
          (Seqdlm.Lock_server.granted_locks ls rid)
      in
      Alcotest.(check bool)
        (Printf.sprintf "rid %d: next_sn %d above recovered max (log %d, \
                         grants %d)" rid next logged reinstalled)
        true
        (next > max logged reinstalled))
    rids;
  (* The waiter's dirty data (pre-crash SN) still lands correctly. *)
  Cluster.fsync_all cl;
  let file = ref None in
  Cluster.spawn_client cl 0 ~name:"open" (fun c ->
      file := Some (Client.open_file c "/qr"));
  Cluster.run cl;
  let contents = Cluster.stripe_contents cl (Option.get !file) ~stripe:0 in
  Alcotest.(check bool) "last writer owns every byte" true
    (Content.read contents (Interval.v ~lo:0 ~hi:(16 * Units.mib))
    |> List.for_all (fun (_, tag) ->
           match tag with
           | Some (t : Content.tag) -> t.Content.writer = 1
           | None -> false));
  Cluster.check_invariants cl

(* Recovery ownership with two lock servers: a file striped across both
   means every client caches grants for rids owned by each server.  When
   one server crashes, the gather must hand it back exactly the locks on
   rids it owns — the [~owned] predicate of
   [Lock_client.locks_for_recovery] — and the survivor's table and SN
   counter must come through untouched. *)
let test_multi_server_recovery_ownership () =
  let cl = Cluster.create ~params ~config ~n_servers:2 ~n_clients:2 () in
  let layout = Layout.v ~stripe_count:2 () in
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true ~layout "/multi" in
        (* One write per stripe, disjoint between clients, so both keep
           cached grants on both servers' resources. *)
        Client.write c f ~off:(i * 65536) ~len:8192;
        Client.write c f ~off:(Units.mib + (i * 65536)) ~len:8192;
        Client.fsync c)
  done;
  Cluster.run cl;
  let fid = 1 in
  let rid0 = Layout.rid ~fid ~stripe:0 in
  let rid1 = Layout.rid ~fid ~stripe:1 in
  let crashed = Cluster.server_of_rid cl rid0 in
  let survivor = Cluster.server_of_rid cl rid1 in
  Alcotest.(check bool) "stripes land on different servers" true
    (crashed <> survivor);
  let view_key (v : Seqdlm.Lock_server.lock_view) =
    (v.v_client, v.v_sn, Seqdlm.Mode.to_string v.v_mode)
  in
  let table ls rid =
    List.sort compare (List.map view_key (Seqdlm.Lock_server.granted_locks ls rid))
  in
  let ls_crashed = Cluster.lock_server cl crashed in
  let ls_survivor = Cluster.lock_server cl survivor in
  let crashed_before = table ls_crashed rid0 in
  let survivor_before = table ls_survivor rid1 in
  let survivor_sn = Seqdlm.Lock_server.next_sn ls_survivor rid1 in
  (* Expansion may have let one client's grant swallow the stripe and a
     later conflicting write revoke the other's, so only demand that
     both servers still have grants to lose. *)
  Alcotest.(check bool) "crashed server has grants to regather" true
    (crashed_before <> []);
  Alcotest.(check bool) "survivor has grants to keep" true
    (survivor_before <> []);

  Cluster.crash_and_recover_server cl crashed;

  Alcotest.(check (list (triple int int string)))
    "crashed server regathered exactly its own grants" crashed_before
    (table ls_crashed rid0);
  List.iter
    (fun rid ->
      Alcotest.(check int)
        (Printf.sprintf "rebuilt rid %d owned by the crashed server" rid)
        crashed
        (Cluster.server_of_rid cl rid))
    (Seqdlm.Lock_server.resource_ids ls_crashed);
  Alcotest.(check (list (triple int int string)))
    "survivor's table untouched" survivor_before (table ls_survivor rid1);
  Alcotest.(check int) "survivor's SN counter untouched" survivor_sn
    (Seqdlm.Lock_server.next_sn ls_survivor rid1);
  Cluster.check_invariants cl

let suite =
  [
    ( "pfs.recovery",
      [
        Alcotest.test_case "lock table + extent cache round trip" `Quick
          test_recovery_round_trip;
        Alcotest.test_case "data safety across recovery" `Quick
          test_post_recovery_data_safety;
        Alcotest.test_case "requires extent log" `Quick
          test_recovery_requires_extent_log;
        Alcotest.test_case "crash refuses queued waiters" `Quick
          test_crash_refuses_queued_waiters;
        Alcotest.test_case "crash during dirty-cache flush (shadow oracle)"
          `Quick test_crash_with_dirty_cache_flush;
        Alcotest.test_case "queued waiters, then recovery restores SN floor"
          `Quick test_queued_waiters_then_recovery;
        Alcotest.test_case "multi-server recovery gathers only owned locks"
          `Quick test_multi_server_recovery_ownership;
      ] );
  ]
