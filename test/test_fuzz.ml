(* The simulation fuzzer's own tests: clean seed ranges pass every
   oracle; identical seeds give identical fingerprints; planted bugs
   (SN reuse, dropped flush blocks) are caught within the CI budget and
   shrink to small replayable reproducers. *)

let base = Fuzz.Seed.base ()

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_sim (c : Fuzz.Case.t) =
  match c.kind with Fuzz.Case.Sim _ -> true | Fuzz.Case.Analytic _ -> false

(* First generated case from [from] satisfying [p] (the generator mixes
   kinds ~19:1, so this terminates fast for either kind). *)
let first_case p from =
  let rec go s =
    let c = Fuzz.Gen.of_seed s in
    if p c then c else go (s + 1)
  in
  go from

let test_seed_range_passes () =
  let summary = Fuzz.Driver.run_range ~base ~count:40 () in
  (match summary.failure with
  | Some f ->
      Alcotest.fail (Printf.sprintf "seed %d failed: %s" f.seed f.reason)
  | None -> ());
  Alcotest.(check int) "all seeds executed" 40 summary.tested;
  Alcotest.(check bool) "simulated cases generated" true (summary.sims > 0)

let test_same_seed_same_fingerprint () =
  (* Exec already double-runs internally; this checks reproducibility
     across independent invocations too. *)
  let case = first_case is_sim base in
  let o1 = Fuzz.Exec.run case in
  let o2 = Fuzz.Exec.run case in
  Alcotest.(check int64) "identical fingerprints" o1.fingerprint o2.fingerprint;
  Alcotest.(check int) "identical op counts" o1.ops o2.ops;
  Alcotest.(check (float 0.)) "identical virtual end" o1.virtual_end
    o2.virtual_end

let test_analytic_oracle_runs () =
  let case = first_case (fun c -> not (is_sim c)) base in
  let o = Fuzz.Exec.run case in
  Alcotest.(check string) "analytic oracle vouched" "analytic" o.oracle;
  Alcotest.(check bool) "simulated time advanced" true (o.virtual_end > 0.)

let test_sn_reuse_caught_and_shrinks () =
  let summary =
    Fuzz.Driver.run_range ~inject:Fuzz.Exec.Sn_reuse ~base ~count:200 ()
  in
  match summary.failure with
  | None -> Alcotest.fail "planted SN-reuse bug survived 200 seeds"
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "an SN invariant caught it (got: %s)" f.reason)
        true
        (contains ~sub:"sn-" f.reason);
      Alcotest.(check bool)
        (Printf.sprintf "shrinks to <= 3 clients (got %d)"
           (Fuzz.Case.client_count f.shrunk))
        true
        (Fuzz.Case.client_count f.shrunk <= 3);
      Alcotest.(check bool)
        (Printf.sprintf "shrinks to <= 10 ops (got %d)"
           (Fuzz.Case.op_count f.shrunk))
        true
        (Fuzz.Case.op_count f.shrunk <= 10);
      (* The minimized case must itself be a reproducer. *)
      (match Fuzz.Exec.catch ~inject:Fuzz.Exec.Sn_reuse f.shrunk with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "minimized case no longer fails")

let test_drop_block_caught_by_shadow () =
  let summary =
    Fuzz.Driver.run_range ~inject:Fuzz.Exec.Drop_flush ~base ~count:200 ()
  in
  match summary.failure with
  | None -> Alcotest.fail "planted drop-block bug survived 200 seeds"
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "the shadow file caught it (got: %s)" f.reason)
        true
        (contains ~sub:"shadow-file divergence" f.reason);
      (* The repro artifact round-trips and replays. *)
      let doc = Fuzz.Driver.repro_json f in
      (match Obs.Json.parse (Obs.Json.to_string doc) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("repro JSON does not parse: " ^ e));
      Alcotest.(check bool) "replay hint names the seed" true
        (contains ~sub:(string_of_int f.seed) (Fuzz.Driver.repro_hint f));
      Alcotest.(check bool) "skeleton replays through Exec" true
        (contains ~sub:"Fuzz.Exec.run" (Fuzz.Case.to_ocaml_test f.shrunk))

(* ---- open-loop load segments (lib/load integration) ---- *)

let has_load (c : Fuzz.Case.t) =
  match c.kind with
  | Fuzz.Case.Sim s -> Option.is_some s.Fuzz.Case.load
  | Fuzz.Case.Analytic _ -> false

(* The generator draws load segments at the tail: they must actually
   appear, and a case carrying one must pass every oracle (including
   the load-conservation invariant Exec adds for the segment). *)
let test_load_segment_generated_and_runs () =
  let case = first_case has_load base in
  let o = Fuzz.Exec.run case in
  Alcotest.(check bool) "virtual time advanced" true (o.virtual_end > 0.);
  let o2 = Fuzz.Exec.run case in
  Alcotest.(check int64) "load segment is deterministic" o.fingerprint
    o2.fingerprint

(* Tail-draw stability: deleting the load segment from a case must not
   change anything the earlier draws produced — i.e. the segment is
   purely additive on the generated shape. *)
let test_load_segment_tail_positioned () =
  let case = first_case has_load base in
  match case.kind with
  | Fuzz.Case.Analytic _ -> assert false
  | Fuzz.Case.Sim s ->
      let stripped = { case with kind = Fuzz.Case.Sim { s with load = None } } in
      ignore (Fuzz.Exec.run stripped);
      (* summary of the stripped case is the old-style summary prefix *)
      let sum = Fuzz.Case.summary case
      and sum' = Fuzz.Case.summary stripped in
      Alcotest.(check bool) "stripped summary is a prefix" true
        (String.length sum > String.length sum'
        && String.sub sum 0 (String.length sum') = sum')

let has_migrations (c : Fuzz.Case.t) = Fuzz.Case.migration_count c > 0

(* The shrinker's very first candidate for a load-carrying case drops
   the whole segment, so old failures minimize back to plain cases.
   (Migration-free case: migrations are a yet-newer layer and shed
   before the load segment — covered by its own test below.) *)
let test_shrink_drops_load_first () =
  let case = first_case (fun c -> has_load c && not (has_migrations c)) base in
  match Fuzz.Shrink.candidates case with
  | [] -> Alcotest.fail "no candidates for a load-carrying case"
  | first :: _ ->
      Alcotest.(check bool) "first candidate has no load segment" true
        (not (has_load first));
      (* and nothing else about the sim changed *)
      (match (case.kind, first.kind) with
      | Fuzz.Case.Sim a, Fuzz.Case.Sim b ->
          Alcotest.(check int) "clients kept" a.Fuzz.Case.n_clients
            b.Fuzz.Case.n_clients;
          Alcotest.(check int) "phases kept"
            (List.length a.Fuzz.Case.phases)
            (List.length b.Fuzz.Case.phases)
      | _ -> Alcotest.fail "candidate changed case kind")

(* ---- mid-run migrations (DESIGN.md §15 integration) ---- *)

(* The generator draws migrations at the very tail: they must appear,
   run oracle-clean (the suite-wide CCPFS_CHECK=full pass adds the
   ownership-exclusivity sweep), and stay deterministic. *)
let test_migration_segment_generated_and_runs () =
  let case = first_case has_migrations base in
  let o = Fuzz.Exec.run case in
  let o2 = Fuzz.Exec.run case in
  Alcotest.(check int64) "migration case is deterministic" o.fingerprint
    o2.fingerprint

(* Migrations are the newest layer, so the shrinker sheds them before
   anything else — a failure that survives without them reproduces on a
   sharding-free case. *)
let test_shrink_drops_migrations_first () =
  let case = first_case has_migrations base in
  match Fuzz.Shrink.candidates case with
  | [] -> Alcotest.fail "no candidates for a migration-carrying case"
  | first :: _ ->
      Alcotest.(check bool) "first candidate has no migrations" true
        (not (has_migrations first));
      (match (case.kind, first.kind) with
      | Fuzz.Case.Sim a, Fuzz.Case.Sim b ->
          Alcotest.(check int) "clients kept" a.Fuzz.Case.n_clients
            b.Fuzz.Case.n_clients;
          Alcotest.(check bool) "load kept" true
            (Option.is_some a.Fuzz.Case.load = Option.is_some b.Fuzz.Case.load);
          Alcotest.(check int) "phases kept"
            (List.length a.Fuzz.Case.phases)
            (List.length b.Fuzz.Case.phases)
      | _ -> Alcotest.fail "candidate changed case kind")

let test_migration_json_and_skeleton () =
  let case = first_case has_migrations base in
  (match Obs.Json.parse (Obs.Json.to_string (Fuzz.Case.to_json case)) with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  let skel = Fuzz.Case.to_ocaml_test case in
  Alcotest.(check bool) "skeleton embeds the migrations" true
    (contains ~sub:"mg_stripe" skel);
  Alcotest.(check bool) "summary mentions them" true
    (contains ~sub:"migration" (Fuzz.Case.summary case))

let test_load_segment_json_and_skeleton () =
  let case = first_case has_load base in
  (match Obs.Json.parse (Obs.Json.to_string (Fuzz.Case.to_json case)) with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  let skel = Fuzz.Case.to_ocaml_test case in
  Alcotest.(check bool) "skeleton embeds the load segment" true
    (contains ~sub:"l_rate" skel && contains ~sub:"l_churn" skel);
  let plain = first_case (fun c -> is_sim c && not (has_load c)) base in
  Alcotest.(check bool) "plain skeleton writes load = None" true
    (contains ~sub:"load = None" (Fuzz.Case.to_ocaml_test plain))

let test_case_json_shape () =
  let case = first_case is_sim base in
  match Obs.Json.parse (Obs.Json.to_string (Fuzz.Case.to_json case)) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      Alcotest.(check (option int))
        "seed survives" (Some case.Fuzz.Case.seed)
        (Option.bind (Obs.Json.member "seed" doc) Obs.Json.get_int)

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "seed range passes all oracles" `Quick
          test_seed_range_passes;
        Alcotest.test_case "same seed, same fingerprint" `Quick
          test_same_seed_same_fingerprint;
        Alcotest.test_case "analytic differential oracle" `Quick
          test_analytic_oracle_runs;
        Alcotest.test_case "planted SN reuse: caught and minimized" `Quick
          test_sn_reuse_caught_and_shrinks;
        Alcotest.test_case "planted block drop: caught by shadow file" `Quick
          test_drop_block_caught_by_shadow;
        Alcotest.test_case "case JSON round-trip" `Quick test_case_json_shape;
        Alcotest.test_case "load segment generated and deterministic" `Quick
          test_load_segment_generated_and_runs;
        Alcotest.test_case "load draw is tail-positioned" `Quick
          test_load_segment_tail_positioned;
        Alcotest.test_case "shrinker drops the load segment first" `Quick
          test_shrink_drops_load_first;
        Alcotest.test_case "load segment JSON and test skeleton" `Quick
          test_load_segment_json_and_skeleton;
        Alcotest.test_case "migration segment generated and deterministic"
          `Quick test_migration_segment_generated_and_runs;
        Alcotest.test_case "shrinker drops migrations first" `Quick
          test_shrink_drops_migrations_first;
        Alcotest.test_case "migration JSON and test skeleton" `Quick
          test_migration_json_and_skeleton;
      ] );
  ]
