(* Tests for the determinism & protocol lint (lib/lint): the analyzer
   is run over the planted-violation corpus in lint_fixtures/, built as
   a sibling library so its .cmt files sit next to this test in _build.

   Per rule the corpus carries three files: <rule>_bad.ml (must fire),
   <rule>_ok.ml (must stay silent) and <rule>_allow.ml (a justified
   [@lint.allow] — must become a suppression record, not a finding);
   l_meta.ml plants the three suppression-misuse findings L000/L001/
   L002.  d001_bad.ml is the exact pre-PR 4 [group_by_stripe] shape, so
   this suite is also the regression proof that reverting that fix
   would be caught at build time. *)

let fixtures_root = "lint_fixtures/.lint_fixtures.objs/byte"

let report = lazy (Lint.Analyze.run_roots [ fixtures_root ])

let findings_in name =
  List.filter
    (fun (f : Lint.Diagnostic.finding) -> Filename.basename f.file = name)
    (Lazy.force report).Lint.Diagnostic.findings

let suppressions_in name =
  List.filter
    (fun (s : Lint.Diagnostic.suppression) ->
      Filename.basename s.s_file = name)
    (Lazy.force report).Lint.Diagnostic.suppressions

let rules_of findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Lint.Diagnostic.finding) -> f.rule) findings)

(* The bad fixture must fire its own rule (and nothing else), the ok
   fixture must be silent, and the allow fixture must turn the planted
   violation into a suppression that kept its justification. *)
let check_rule rule () =
  let stem = String.lowercase_ascii rule in
  let bad = findings_in (stem ^ "_bad.ml") in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %s_bad.ml" rule stem)
    true (bad <> []);
  Alcotest.(check (list string))
    (Printf.sprintf "only %s in %s_bad.ml" rule stem)
    [ rule ] (rules_of bad);
  Alcotest.(check (list string))
    (Printf.sprintf "%s_ok.ml is clean" stem)
    []
    (rules_of (findings_in (stem ^ "_ok.ml")));
  Alcotest.(check (list string))
    (Printf.sprintf "%s_allow.ml reports no finding" stem)
    []
    (rules_of (findings_in (stem ^ "_allow.ml")));
  match suppressions_in (stem ^ "_allow.ml") with
  | [ s ] ->
      Alcotest.(check string)
        (Printf.sprintf "%s_allow.ml suppression rule" stem)
        rule s.Lint.Diagnostic.s_rule;
      Alcotest.(check bool)
        (Printf.sprintf "%s_allow.ml justification kept" stem)
        true
        (String.length s.Lint.Diagnostic.s_justification > 10)
  | l ->
      Alcotest.failf "%s_allow.ml: expected exactly one suppression, got %d"
        stem (List.length l)

let test_finding_counts () =
  (* The plants are precise: each bad file carries a known number of
     violations, so a partially-firing rule can't pass unnoticed. *)
  List.iter
    (fun (file, n) ->
      Alcotest.(check int)
        (Printf.sprintf "findings in %s" file)
        n
        (List.length (findings_in file)))
    [
      ("d001_bad.ml", 2) (* fold + iter *);
      ("d002_bad.ml", 2) (* Random.int + Random.float *);
      ("d003_bad.ml", 3) (* gettimeofday + Sys.time + Unix.time *);
      ("p001_bad.ml", 2) (* failwith + assert false *);
      ("p002_bad.ml", 2) (* (=) + compare *);
    ]

let test_l_rules () =
  (* Suppression misuse is itself reported: unknown rule id, missing
     justification, and a stale allow that never fired. *)
  Alcotest.(check (list string))
    "l_meta.ml misuse findings"
    [ "L000"; "L001"; "L002" ]
    (rules_of (findings_in "l_meta.ml"));
  Alcotest.(check (list string))
    "no suppressions survive from l_meta.ml" []
    (List.map
       (fun (s : Lint.Diagnostic.suppression) -> s.Lint.Diagnostic.s_rule)
       (suppressions_in "l_meta.ml"))

let test_report_deterministic () =
  (* Two independent analyses of the same corpus must render
     byte-identically — the lint polices determinism, so it holds
     itself to the same bar. *)
  let render () = Lint.Report.render (Lint.Analyze.run_roots [ fixtures_root ]) in
  Alcotest.(check string) "same corpus, same report" (render ()) (render ())

let test_scans_whole_corpus () =
  let r = Lazy.force report in
  Alcotest.(check bool)
    (Printf.sprintf "scanned the corpus (%d files)"
       r.Lint.Diagnostic.files_scanned)
    true
    (r.Lint.Diagnostic.files_scanned >= 16)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "D001 hashtbl iteration order" `Quick
          (check_rule "D001");
        Alcotest.test_case "D002 unseeded randomness" `Quick
          (check_rule "D002");
        Alcotest.test_case "D003 wall-clock reads" `Quick (check_rule "D003");
        Alcotest.test_case "P001 crash in RPC-reply arm" `Quick
          (check_rule "P001");
        Alcotest.test_case "P002 polymorphic compare on floats" `Quick
          (check_rule "P002");
        Alcotest.test_case "planted finding counts" `Quick test_finding_counts;
        Alcotest.test_case "suppression misuse (L-rules)" `Quick test_l_rules;
        Alcotest.test_case "report is deterministic" `Quick
          test_report_deterministic;
        Alcotest.test_case "corpus fully scanned" `Quick
          test_scans_whole_corpus;
      ] );
  ]
