(* Tests for the lock manager core: modes, the Table II LCM, and
   end-to-end lock-server/lock-client protocol scenarios. *)

open Ccpfs_util
open Dessim
open Seqdlm

let iv lo hi = Interval.v ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Mode                                                                *)
(* ------------------------------------------------------------------ *)

let all_modes = [ Mode.PR; Mode.NBW; Mode.BW; Mode.PW ]

let mode = Alcotest.testable Mode.pp Mode.equal

let test_mode_capabilities () =
  Alcotest.(check bool) "PR reads" true (Mode.can_read Mode.PR);
  Alcotest.(check bool) "PR no write" false (Mode.can_write Mode.PR);
  Alcotest.(check bool) "NBW writes only" true
    (Mode.can_write Mode.NBW && not (Mode.can_read Mode.NBW));
  Alcotest.(check bool) "BW writes only" true
    (Mode.can_write Mode.BW && not (Mode.can_read Mode.BW));
  Alcotest.(check bool) "PW both" true
    (Mode.can_read Mode.PW && Mode.can_write Mode.PW)

let test_mode_join_table () =
  Alcotest.check mode "PR+NBW=PW" Mode.PW (Mode.join Mode.PR Mode.NBW);
  Alcotest.check mode "PR+BW=PW" Mode.PW (Mode.join Mode.PR Mode.BW);
  Alcotest.check mode "NBW+BW=BW" Mode.BW (Mode.join Mode.NBW Mode.BW);
  Alcotest.check mode "NBW+NBW=NBW" Mode.NBW (Mode.join Mode.NBW Mode.NBW);
  Alcotest.check mode "PR+PR=PR" Mode.PR (Mode.join Mode.PR Mode.PR);
  List.iter
    (fun m -> Alcotest.check mode "PW absorbs" Mode.PW (Mode.join m Mode.PW))
    all_modes

let prop_join_lattice =
  let open QCheck in
  let gen_mode = Gen.oneofl all_modes in
  Test.make ~name:"join is a commutative idempotent upper bound" ~count:200
    (make
       ~print:(fun (a, b) -> Mode.to_string a ^ "," ^ Mode.to_string b)
       Gen.(pair gen_mode gen_mode))
    (fun (a, b) ->
      let j = Mode.join a b in
      Mode.equal j (Mode.join b a)
      && Mode.equal (Mode.join a a) a
      (* the join grants every capability of both arguments *)
      && (not (Mode.can_read a) || Mode.can_read j)
      && (not (Mode.can_write a) || Mode.can_write j)
      && (not (Mode.can_read b) || Mode.can_read j)
      && (not (Mode.can_write b) || Mode.can_write j)
      && Mode.severity j >= Mode.severity a
      && Mode.severity j >= Mode.severity b)

let test_mode_subsumes () =
  (* A cached lock serves an operation iff it grants every capability the
     selected mode needs, per the usable-mode table. *)
  let expect = function
    | Mode.PR, (Mode.PR | Mode.PW) -> true
    | Mode.NBW, (Mode.NBW | Mode.BW | Mode.PW) -> true
    | Mode.BW, (Mode.BW | Mode.PW) -> true
    | Mode.PW, Mode.PW -> true
    | _ -> false
  in
  List.iter
    (fun wanted ->
      List.iter
        (fun cached ->
          Alcotest.(check bool)
            (Printf.sprintf "cached %s serves %s" (Mode.to_string cached)
               (Mode.to_string wanted))
            (expect (wanted, cached))
            (Mode.subsumes ~cached ~wanted))
        all_modes)
    all_modes

(* ------------------------------------------------------------------ *)
(* LCM — exact Table II                                                *)
(* ------------------------------------------------------------------ *)

let test_lcm_table2 () =
  let expect req granted state =
    match (req, granted, state) with
    | Mode.PR, Mode.PR, _ -> true
    | (Mode.NBW | Mode.BW), Mode.NBW, Lcm.Canceling -> true
    | _ -> false
  in
  List.iter
    (fun req ->
      List.iter
        (fun granted ->
          List.iter
            (fun state ->
              Alcotest.(check bool)
                (Printf.sprintf "%s vs %s(%s)" (Mode.to_string req)
                   (Mode.to_string granted)
                   (Lcm.state_to_string state))
                (expect req granted state)
                (Lcm.compatible ~req ~granted ~state))
            [ Lcm.Granted; Lcm.Canceling ])
        all_modes)
    all_modes

let test_lcm_pw_blocks_everything () =
  List.iter
    (fun req ->
      List.iter
        (fun state ->
          Alcotest.(check bool) "PW column all N" false
            (Lcm.compatible ~req ~granted:Mode.PW ~state);
          Alcotest.(check bool) "PW row all N" false
            (Lcm.compatible ~req:Mode.PW ~granted:req ~state))
        [ Lcm.Granted; Lcm.Canceling ])
    all_modes

let test_lcm_golden_table () =
  (* The complete list of Y cells of Table II, pinned as data: any change
     to the matrix must edit this list consciously. *)
  let y_cells =
    [
      (Mode.PR, Mode.PR, Lcm.Granted); (Mode.PR, Mode.PR, Lcm.Canceling);
      (Mode.NBW, Mode.NBW, Lcm.Canceling); (Mode.BW, Mode.NBW, Lcm.Canceling);
    ]
  in
  List.iter
    (fun req ->
      List.iter
        (fun granted ->
          List.iter
            (fun state ->
              Alcotest.(check bool)
                (Printf.sprintf "golden %s vs %s(%s)" (Mode.to_string req)
                   (Mode.to_string granted)
                   (Lcm.state_to_string state))
                (List.mem (req, granted, state) y_cells)
                (Lcm.compatible ~req ~granted ~state))
            [ Lcm.Granted; Lcm.Canceling ])
        all_modes)
    all_modes;
  (* Early grant is asymmetric: a BW request passes over a CANCELING NBW
     grant, but an NBW request never passes over a CANCELING BW grant —
     only the non-blocking mode loses its protection when revoked. *)
  Alcotest.(check bool) "BW over canceling NBW" true
    (Lcm.compatible ~req:Mode.BW ~granted:Mode.NBW ~state:Lcm.Canceling);
  Alcotest.(check bool) "NBW over canceling BW" false
    (Lcm.compatible ~req:Mode.NBW ~granted:Mode.BW ~state:Lcm.Canceling);
  (* And the sanitizer's independently transcribed table agrees cell by
     cell with the production matrix. *)
  Check.Lcm_oracle.cross_check ()

(* ------------------------------------------------------------------ *)
(* Types helpers                                                       *)
(* ------------------------------------------------------------------ *)

let test_ranges_overlap () =
  let a = [ iv 0 10; iv 20 30 ] and b = [ iv 10 20 ] in
  Alcotest.(check bool) "interleaved disjoint" false (Types.ranges_overlap a b);
  Alcotest.(check bool) "hit second" true
    (Types.ranges_overlap a [ iv 25 26 ]);
  Alcotest.(check bool) "empty" false (Types.ranges_overlap [] a)

let test_normalize_ranges () =
  let got = Types.normalize_ranges [ iv 20 30; iv 0 10; iv 10 20; iv 40 50 ] in
  Alcotest.(check (list (pair int int)))
    "sorted and merged"
    [ (0, 30); (40, 50) ]
    (List.map (fun (i : Interval.t) -> (i.lo, i.hi)) got)

(* [ranges_overlap] against the obvious O(n²) definition, on lists that
   are deliberately NOT sorted or disjoint — the shapes that broke the
   old merge scan, which silently assumed its inputs were canonical. *)
let prop_ranges_overlap_oracle =
  let open QCheck in
  let genlist =
    Gen.(
      list_size (int_bound 8)
        (map2 (fun lo len -> (lo, lo + len)) (int_bound 40) (int_range 1 12)))
  in
  let print = Print.(list (pair int int)) in
  Test.make ~name:"ranges_overlap matches O(n^2) oracle on raw lists"
    ~count:500
    (make ~print:(Print.pair print print) Gen.(pair genlist genlist))
    (fun (a, b) ->
      let a = List.map (fun (lo, hi) -> iv lo hi) a
      and b = List.map (fun (lo, hi) -> iv lo hi) b in
      let naive =
        List.exists (fun x -> List.exists (Interval.overlaps x) b) a
      in
      Types.ranges_overlap a b = naive
      (* and the answer is order-independent *)
      && Types.ranges_overlap (List.rev a) (List.rev b) = naive
      && Types.ranges_overlap b a = naive)

(* ------------------------------------------------------------------ *)
(* Protocol scenarios                                                  *)
(* ------------------------------------------------------------------ *)

(* Time constants chosen so phases are easy to tell apart: RTT 1 ms,
   1 ms of server service per RPC, negligible payload cost. *)
let params =
  {
    Netsim.Params.rtt = 1e-3;
    b_net = 1e12;
    server_ops = 1000.;
    b_disk = 1e12;
    b_mem = 1e12;
    ctl_msg_bytes = 0;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

type world = {
  eng : Engine.t;
  server : Lock_server.t;
  clients : Lock_client.t array;
  flush_time : float ref;
  flush_log : (int * float * float) list ref; (* client, start, end *)
  dirty : bool ref;
}

let make_world ?(n = 4) ?(policy = Policy.seqdlm) () =
  let eng = Engine.create () in
  let snode = Netsim.Node.create eng params ~name:"server" () in
  let server = Lock_server.create eng params ~node:snode ~name:"ls" ~policy in
  let flush_time = ref 0.1 in
  let flush_log = ref [] in
  let dirty = ref true in
  let clients =
    Array.init n (fun i ->
        let node = Netsim.Node.create eng params ~name:(Printf.sprintf "c%d" i) () in
        let hooks =
          {
            Lock_client.flush =
              (fun ~rid:_ ~ranges:_ ->
                let t0 = Engine.now eng in
                Engine.sleep eng !flush_time;
                flush_log := (i, t0, Engine.now eng) :: !flush_log);
            has_dirty = (fun ~rid:_ ~ranges:_ -> !dirty);
            invalidate = (fun ~rid:_ ~ranges:_ -> ());
          }
        in
        Lock_client.create eng params ~node ~client_id:i
          ~route:(fun _ -> server)
          ~hooks)
  in
  { eng; server; clients; flush_time; flush_log; dirty }

let spawn w name f = Engine.spawn w.eng ~name f
let run w = Engine.run w.eng

let test_grant_and_expansion () =
  let w = make_world () in
  let got = ref None in
  spawn w "c0" (fun () ->
      let h =
        Lock_client.acquire w.clients.(0) ~rid:1 ~mode:Mode.NBW
          ~ranges:[ iv 4096 8192 ]
      in
      got := Some (Lock_client.granted_ranges h, Lock_client.sn h);
      Lock_client.release w.clients.(0) h);
  run w;
  (match !got with
  | Some ([ r ], sn) ->
      Alcotest.(check int) "lo kept" 4096 r.Interval.lo;
      Alcotest.(check int) "end expanded to EOF" Interval.eof r.Interval.hi;
      Alcotest.(check int) "first write SN" 1 sn
  | _ -> Alcotest.fail "expected one expanded range");
  Alcotest.(check int) "one grant" 1 (Lock_server.stats w.server).grants;
  Lock_server.check_invariants w.server

let test_cache_reuse () =
  let w = make_world () in
  spawn w "c0" (fun () ->
      let c = w.clients.(0) in
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 8192 12288 ]
        (fun _ -> ()));
  run w;
  Alcotest.(check int) "one server grant" 1 (Lock_server.stats w.server).grants;
  Alcotest.(check int) "one cache hit" 1 (Lock_client.cache_hits w.clients.(0));
  Alcotest.(check int) "lock stays cached" 1
    (Lock_client.cached_locks w.clients.(0))

let test_pw_conflict_waits_for_flush () =
  (* Traditional (normal grant): the second client's grant waits for
     revocation + data flushing + release of the first. *)
  let w = make_world ~policy:Policy.dlm_basic () in
  w.flush_time := 0.5;
  let t_grant1 = ref 0. and t_grant0 = ref 0. in
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:1 ~mode:Mode.PW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> t_grant0 := Engine.now w.eng));
  spawn w "c1" (fun () ->
      Engine.sleep w.eng 0.01;
      Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.PW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> t_grant1 := Engine.now w.eng));
  run w;
  (match !(w.flush_log) with
  | [ (0, fstart, fend) ] ->
      Alcotest.(check bool) "flush happened" true (fstart > !t_grant0);
      Alcotest.(check bool) "grant 1 after flush end" true (!t_grant1 > fend)
  | l -> Alcotest.fail (Printf.sprintf "expected one flush, got %d" (List.length l)));
  Alcotest.(check int) "one revocation" 1 (Lock_server.stats w.server).revokes_sent;
  Alcotest.(check int) "no early grant" 0 (Lock_server.stats w.server).early_grants

let test_early_grant_overlaps_flush () =
  (* SeqDLM NBW: the second grant arrives while the first holder's data
     flushing is still in flight (Fig. 6, right). *)
  let w = make_world () in
  w.flush_time := 0.5;
  let t_grant1 = ref 0. in
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:1 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  spawn w "c1" (fun () ->
      Engine.sleep w.eng 0.01;
      Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun h ->
          t_grant1 := Engine.now w.eng;
          Alcotest.(check int) "second write SN" 2 (Lock_client.sn h)));
  run w;
  (match List.rev !(w.flush_log) with
  | (0, fstart, fend) :: _ ->
      Alcotest.(check bool) "grant before flush completed" true
        (!t_grant1 < fend);
      Alcotest.(check bool) "but after flush started" true (!t_grant1 > fstart -. 1e-9)
  | _ -> Alcotest.fail "expected c0's flush first");
  Alcotest.(check bool) "early grant counted" true
    ((Lock_server.stats w.server).early_grants >= 1);
  Lock_server.check_invariants w.server

let test_early_revocation_piggyback () =
  (* Simultaneous conflicting requests: with ER the server tags grants
     CANCELING instead of sending revocation callbacks. *)
  let run_with policy =
    let w = make_world ~policy () in
    w.flush_time := 0.01;
    for i = 0 to 3 do
      spawn w (Printf.sprintf "c%d" i) (fun () ->
          Lock_client.with_lock w.clients.(i) ~rid:1 ~mode:Mode.NBW
            ~ranges:[ Interval.to_eof ~lo:0 ]
            (fun _ -> ()))
    done;
    run w;
    Lock_server.stats w.server
  in
  let er = run_with Policy.seqdlm in
  let no_er = run_with (Policy.without_early_revocation Policy.seqdlm) in
  (* The very first request is granted before any conflict is queued, so
     it still needs one classic revocation; every later grant sees the
     queue and is tagged CANCELING instead. *)
  Alcotest.(check bool) "ER piggybacked" true (er.early_revocations >= 2);
  Alcotest.(check bool) "ER avoids callbacks" true (er.revokes_sent <= 1);
  Alcotest.(check int) "no piggyback without ER" 0 no_er.early_revocations;
  Alcotest.(check bool) "callbacks without ER" true (no_er.revokes_sent >= 3)

let test_sequencer_monotonic () =
  let w = make_world ~n:8 () in
  w.flush_time := 0.001;
  let sns = ref [] in
  for i = 0 to 7 do
    spawn w (Printf.sprintf "c%d" i) (fun () ->
        for _ = 1 to 5 do
          Lock_client.with_lock w.clients.(i) ~rid:1 ~mode:Mode.NBW
            ~ranges:[ Interval.to_eof ~lo:0 ]
            (fun h -> sns := Lock_client.sn h :: !sns)
        done)
  done;
  run w;
  let sns = List.rev !sns in
  Alcotest.(check bool) "SNs positive" true (List.for_all (fun s -> s >= 1) sns);
  (* Cache hits legitimately reuse an SN, but the server's counter must
     dominate everything handed out and each *grant* got a fresh SN. *)
  let stats = Lock_server.stats w.server in
  let max_sn = List.fold_left max 0 sns in
  Alcotest.(check bool) "server SN counter dominates" true
    (Lock_server.next_sn w.server 1 > max_sn);
  Alcotest.(check int) "one SN per grant" (stats.grants + 1)
    (Lock_server.next_sn w.server 1);
  Lock_server.check_invariants w.server

let test_expansion_bounded_by_waiter () =
  (* A queued conflicting request above the grant bounds expansion: the
     N-1 segmented case where each client ends up owning its segment.
     c2 holds a whole-file lock so that c0's and c1's requests are both
     queued when the grants are finally processed. *)
  let w = make_world () in
  w.flush_time := 0.05;
  let r0 = ref [] and r1 = ref [] in
  spawn w "c2" (fun () ->
      Lock_client.with_lock w.clients.(2) ~rid:1 ~mode:Mode.NBW
        ~ranges:[ Interval.to_eof ~lo:0 ]
        (fun _ -> ()));
  spawn w "c0" (fun () ->
      Engine.sleep w.eng 0.01;
      Lock_client.with_lock w.clients.(0) ~rid:1 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun h -> r0 := Lock_client.granted_ranges h));
  spawn w "c1" (fun () ->
      Engine.sleep w.eng 0.012;
      Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.NBW
        ~ranges:[ iv 1_048_576 1_052_672 ]
        (fun _ -> ()));
  run w;
  (match !r0 with
  | [ r ] ->
      Alcotest.(check int) "expansion stops at waiter" 1_048_576 r.Interval.hi
  | _ -> Alcotest.fail "expected a single range");
  ignore r1;
  Lock_server.check_invariants w.server

let test_lustre_cap_after_threshold () =
  let w = make_world ~policy:Policy.dlm_lustre () in
  w.flush_time := 0.0;
  let last_range = ref None in
  spawn w "c0" (fun () ->
      let c = w.clients.(0) in
      (* Burn through the grant threshold on rid 1 with releases forced by
         a conflicting partner. *)
      for k = 0 to 39 do
        let lo = k * 8192 in
        let h =
          Lock_client.acquire c ~rid:1 ~mode:Mode.PW ~ranges:[ iv lo (lo + 4096) ]
        in
        last_range := Some (Lock_client.granted_ranges h);
        Lock_client.release c h;
        (* Partner forces the cached lock away so each iteration issues a
           fresh request. *)
        Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.PW
          ~ranges:[ iv lo (lo + 4096) ]
          (fun _ -> ())
      done);
  run w;
  (match !last_range with
  | Some [ r ] ->
      let len = r.Interval.hi - r.Interval.lo in
      Alcotest.(check bool)
        (Printf.sprintf "capped to <= 32MiB + request (got %d)" len)
        true
        (len <= (32 * 1024 * 1024) + 4096)
  | _ -> Alcotest.fail "expected a granted range");
  Lock_server.check_invariants w.server

let test_datatype_exact_ranges () =
  let w = make_world ~policy:Policy.dlm_datatype () in
  let got = ref [] in
  (* Interleaved non-contiguous writes from two clients, disjoint: both
     must hold grants concurrently. *)
  let concurrent = ref 0 and max_concurrent = ref 0 in
  let ranges_of i =
    List.init 4 (fun k -> iv ((k * 8192) + (i * 4096)) ((k * 8192) + (i * 4096) + 4096))
  in
  for i = 0 to 1 do
    spawn w (Printf.sprintf "c%d" i) (fun () ->
        Lock_client.with_lock w.clients.(i) ~rid:1 ~mode:Mode.PW
          ~ranges:(ranges_of i)
          (fun h ->
            incr concurrent;
            if !concurrent > !max_concurrent then max_concurrent := !concurrent;
            got := (i, Lock_client.granted_ranges h) :: !got;
            Engine.sleep w.eng 0.1;
            decr concurrent))
  done;
  run w;
  Alcotest.(check int) "disjoint datatype locks run concurrently" 2
    !max_concurrent;
  List.iter
    (fun (i, ranges) ->
      Alcotest.(check int) "no expansion: 4 ranges" 4 (List.length ranges);
      Alcotest.(check bool) "exact ranges" true
        (List.for_all2 Interval.equal ranges (ranges_of i)))
    !got;
  Alcotest.(check int) "no revocations" 0 (Lock_server.stats w.server).revokes_sent

let test_upgrade_same_client () =
  (* Fig. 11: a PR request conflicting with the client's own NBW lock is
     upgraded to PW and merged — no revocation round-trip. *)
  let w = make_world () in
  let final_mode = ref Mode.PR in
  spawn w "c0" (fun () ->
      let c = w.clients.(0) in
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.PR ~ranges:[ iv 0 4096 ]
        (fun h -> final_mode := Lock_client.mode h);
      (* Both reads and writes now reuse the merged PW lock. *)
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.PR ~ranges:[ iv 4096 8192 ]
        (fun _ -> ()));
  run w;
  Alcotest.check mode "upgraded to PW" Mode.PW !final_mode;
  let s = Lock_server.stats w.server in
  Alcotest.(check int) "no revocations" 0 s.revokes_sent;
  Alcotest.(check int) "one upgrade" 1 s.upgrades;
  Alcotest.(check int) "two server grants total" 2 s.grants;
  Alcotest.(check int) "single cached lock after merge" 1
    (Lock_client.cached_locks w.clients.(0));
  Lock_server.check_invariants w.server

let test_no_upgrade_without_conversion () =
  (* Same sequence with conversion disabled (Fig. 11(a)): the client's
     own cached NBW lock must be revoked — flush + release — before the
     PR grant, because NBW cannot serve the read. *)
  let w = make_world ~policy:(Policy.without_conversion Policy.seqdlm) () in
  spawn w "c0" (fun () ->
      let c = w.clients.(0) in
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.PR ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  run w;
  let s = Lock_server.stats w.server in
  Alcotest.(check int) "own lock revoked" 1 s.revokes_sent;
  Alcotest.(check int) "no upgrades" 0 s.upgrades;
  Alcotest.(check int) "flushed own dirty data" 1 (List.length !(w.flush_log))

let test_downgrade_bw_to_nbw () =
  (* Fig. 12: with conversion, a BW lock being cancelled downgrades to
     NBW first, so the conflicting BW request is granted while the flush
     is still running. *)
  let run_with policy =
    let w = make_world ~policy () in
    w.flush_time := 0.5;
    let t_grant1 = ref 0. in
    spawn w "c0" (fun () ->
        Lock_client.with_lock w.clients.(0) ~rid:1 ~mode:Mode.BW
          ~ranges:[ iv 0 4096 ]
          (fun _ -> ()));
    spawn w "c1" (fun () ->
        Engine.sleep w.eng 0.01;
        Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.BW
          ~ranges:[ iv 0 4096 ]
          (fun _ -> t_grant1 := Engine.now w.eng));
    run w;
    let fend =
      match List.rev !(w.flush_log) with
      | (0, _, fend) :: _ -> fend
      | _ -> Alcotest.fail "expected c0's flush first"
    in
    (!t_grant1, fend, Lock_server.stats w.server)
  in
  let t1, fend, s = run_with Policy.seqdlm in
  Alcotest.(check bool) "granted during flush" true (t1 < fend);
  Alcotest.(check int) "one downgrade" 1 s.downgrades;
  let t1', fend', s' = run_with (Policy.without_conversion Policy.seqdlm) in
  Alcotest.(check bool) "without conversion waits for flush" true (t1' > fend');
  Alcotest.(check int) "no downgrades" 0 s'.downgrades

let test_upgrade_reclaims_other_readers () =
  (* §III-D1: upgrading to PW while other clients cache conflicting PR
     locks first reclaims those PR locks — all except the requester's. *)
  let w = make_world () in
  w.dirty := false;
  let got_mode = ref Mode.PR in
  (* Clients 1 and 2 cache PR locks. *)
  for i = 1 to 2 do
    spawn w (Printf.sprintf "r%d" i) (fun () ->
        Lock_client.with_lock w.clients.(i) ~rid:1 ~mode:Mode.PR
          ~ranges:[ iv 0 4096 ]
          (fun _ -> ()))
  done;
  (* Client 0 reads, then writes: its PR lock upgrades to PW, which
     requires revoking the other readers but NOT client 0's own PR. *)
  spawn w "c0" (fun () ->
      Engine.sleep w.eng 0.05;
      let c = w.clients.(0) in
      Lock_client.with_lock c ~rid:1 ~mode:Mode.PR ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun h -> got_mode := Lock_client.mode h));
  run w;
  Alcotest.check mode "merged own PR into PW" Mode.PW !got_mode;
  let s = Lock_server.stats w.server in
  Alcotest.(check int) "revoked exactly the other two readers" 2 s.revokes_sent;
  Alcotest.(check int) "one cached lock left on c0" 1
    (Lock_client.cached_locks w.clients.(0));
  Lock_server.check_invariants w.server

let test_upgrade_nbw_plus_bw () =
  (* Fig. 9's middle edge: a BW request over the client's own NBW lock
     joins at BW (not PW — no read capability was requested). *)
  let w = make_world () in
  let got_mode = ref Mode.PR in
  spawn w "c0" (fun () ->
      let c = w.clients.(0) in
      Lock_client.with_lock c ~rid:1 ~mode:Mode.NBW ~ranges:[ iv 0 4096 ]
        (fun _ -> ());
      Lock_client.with_lock c ~rid:1 ~mode:Mode.BW ~ranges:[ iv 0 4096 ]
        (fun h -> got_mode := Lock_client.mode h));
  run w;
  Alcotest.check mode "NBW+BW joins at BW" Mode.BW !got_mode;
  Alcotest.(check int) "no revocations" 0 (Lock_server.stats w.server).revokes_sent

let test_early_revoked_grant_cancels_after_use () =
  (* A grant carrying the CANCELING state is used once and then cancels
     itself — no callback ever needed. *)
  let w = make_world () in
  w.flush_time := 0.01;
  for i = 0 to 2 do
    spawn w (Printf.sprintf "c%d" i) (fun () ->
        Lock_client.with_lock w.clients.(i) ~rid:1 ~mode:Mode.NBW
          ~ranges:[ Interval.to_eof ~lo:0 ]
          (fun _ -> Engine.sleep w.eng 0.001))
  done;
  run w;
  let s = Lock_server.stats w.server in
  (* Every CANCELING grant self-cancels after its single use; only the
     final grant — nothing queued behind it — stays cached. *)
  Alcotest.(check int) "all but the last grant released" (s.grants - 1)
    s.releases;
  let remaining = Lock_server.granted_locks w.server 1 in
  Alcotest.(check int) "one lock left on the server" 1 (List.length remaining);
  (match remaining with
  | [ v ] ->
      Alcotest.(check bool) "and it is GRANTED" true (v.v_state = Lcm.Granted)
  | _ -> Alcotest.fail "expected one lock");
  let cached_total =
    List.fold_left
      (fun acc i -> acc + Lock_client.cached_locks w.clients.(i))
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "exactly one client still caches it" 1 cached_total

let test_downgrade_pw_to_pr_when_clean () =
  (* A PW lock with no dirty data downgrades to PR on cancel, letting a
     pending reader in before the release round-trip. *)
  let w = make_world () in
  w.dirty := false;
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:1 ~mode:Mode.PW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  spawn w "c1" (fun () ->
      Engine.sleep w.eng 0.01;
      Lock_client.with_lock w.clients.(1) ~rid:1 ~mode:Mode.PR
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  run w;
  let s = Lock_server.stats w.server in
  Alcotest.(check int) "downgraded" 1 s.downgrades;
  Alcotest.(check int) "no flush for clean PW" 0 (List.length !(w.flush_log));
  Lock_server.check_invariants w.server

let test_min_unreleased_write_sn () =
  let w = make_world () in
  w.flush_time := 0.2;
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:7 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun _ ->
          Alcotest.(check (option int))
            "one unreleased write lock" (Some 1)
            (Lock_server.min_unreleased_write_sn w.server 7 (iv 0 1_000_000))));
  run w;
  (* Still cached (never revoked) => still unreleased. *)
  Alcotest.(check (option int))
    "cached lock still unreleased" (Some 1)
    (Lock_server.min_unreleased_write_sn w.server 7 (iv 0 4096));
  Alcotest.(check (option int))
    "unknown resource has none" None
    (Lock_server.min_unreleased_write_sn w.server 999 (iv 0 4096))

let test_min_unreleased_none_after_release () =
  let w = make_world () in
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:7 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  spawn w "c1" (fun () ->
      Engine.sleep w.eng 0.05;
      Lock_client.with_lock w.clients.(1) ~rid:7 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  run w;
  (* c0's lock was revoked and released; c1's is still cached. *)
  match Lock_server.min_unreleased_write_sn w.server 7 (iv 0 4096) with
  | Some sn2 -> Alcotest.(check int) "only the newer lock remains" 2 sn2
  | None -> Alcotest.fail "expected c1's lock to be unreleased"

let test_sync_resource () =
  let w = make_world () in
  w.flush_time := 0.3;
  let synced_at = ref 0. in
  spawn w "c0" (fun () ->
      Lock_client.with_lock w.clients.(0) ~rid:3 ~mode:Mode.NBW
        ~ranges:[ iv 0 4096 ]
        (fun _ -> ()));
  spawn w "syncer" (fun () ->
      Engine.sleep w.eng 0.05;
      let done_ = Ivar.create w.eng in
      Lock_server.sync_resource w.server 3 ~on_behalf:(-1) ~reply:(fun () ->
          Ivar.fill done_ ());
      Ivar.read done_;
      synced_at := Engine.now w.eng);
  run w;
  (* The sync completes only after c0's flush (0.3 s) and release. *)
  (match List.rev !(w.flush_log) with
  | (0, _, fend) :: _ ->
      Alcotest.(check bool) "sync after flush" true (!synced_at >= fend)
  | _ -> Alcotest.fail "expected c0's flush first");
  Alcotest.(check int) "pseudo-lock dropped" 0
    (List.length (Lock_server.granted_locks w.server 3))

(* Randomised stress: clients issue random-mode random-range locks; the
   run must terminate (no deadlock), keep server invariants, and leave
   the queue empty. *)
let prop_random_protocol =
  let open QCheck in
  let scenario =
    Gen.(
      list_size (int_range 5 40)
        (triple (int_bound 3) (oneofl all_modes) (pair (int_bound 15) (int_range 1 8))))
  in
  let print_step (c, m, (blk, len)) =
    Printf.sprintf "c%d:%s@[%d,+%d)" c (Mode.to_string m) blk len
  in
  Test.make ~name:"random lock traffic: live, fair, invariant-preserving"
    ~count:60
    (make ~print:Print.(list print_step) scenario)
    (fun steps ->
      let w = make_world ~n:4 () in
      w.flush_time := 0.003;
      let completed = ref 0 in
      List.iteri
        (fun idx (c, m, (blk, len)) ->
          spawn w
            (Printf.sprintf "op%d" idx)
            (fun () ->
              Engine.sleep w.eng (float_of_int idx *. 1e-4);
              let lo = blk * 4096 in
              let ranges = [ iv lo (lo + (len * 4096)) ] in
              Lock_client.with_lock w.clients.(c) ~rid:1 ~mode:m ~ranges
                (fun _ ->
                  Engine.sleep w.eng 1e-4;
                  incr completed)))
        steps;
      run w;
      Lock_server.check_invariants w.server;
      !completed = List.length steps
      && Lock_server.queue_length w.server 1 = 0)

(* Tracer-based grant-contract property: every grant must cover its
   request, never expand the start, use a fresh SN per write grant, and
   only carry the CANCELING state when early revocation is on. *)
let prop_grant_contract =
  let open QCheck in
  let scenario =
    Gen.(
      pair (int_bound 2)
        (list_size (int_range 3 25)
           (triple (int_bound 3) (oneofl all_modes)
              (pair (int_bound 20) (int_range 1 6)))))
  in
  let print_s (p, steps) =
    Printf.sprintf "policy=%d %s" p
      (String.concat ";"
         (List.map
            (fun (c, m, (b, n)) ->
              Printf.sprintf "c%d:%s[%d,+%d)" c (Mode.to_string m) b n)
            steps))
  in
  Test.make ~name:"grants cover requests, never expand lo, fresh write SNs"
    ~count:60
    (make ~print:print_s scenario)
    (fun (policy_idx, steps) ->
      let policy =
        List.nth
          [ Policy.seqdlm; Policy.dlm_basic;
            Policy.without_early_revocation Policy.seqdlm ]
          policy_idx
      in
      let w = make_world ~n:4 ~policy () in
      w.flush_time := 0.002;
      let ok = ref true in
      (* Tracer-side checks: write-grant SNs are never reused on a
         resource, the mode only ever upgrades, and CANCELING grants
         appear only when early revocation is on. *)
      let write_sns = Hashtbl.create 64 in
      Lock_server.set_tracer w.server (fun _now ev ->
          match ev with
          | Lock_server.T_grant (g, _) ->
              if Mode.is_write g.Types.mode then begin
                if Hashtbl.mem write_sns (g.Types.rid, g.Types.sn) then
                  ok := false;
                Hashtbl.replace write_sns (g.Types.rid, g.Types.sn) ()
              end;
              if
                g.Types.state = Lcm.Canceling
                && not policy.Policy.early_revocation
              then ok := false
          | Lock_server.T_request _ | Lock_server.T_revoke _
          | Lock_server.T_ack _ | Lock_server.T_release _
          | Lock_server.T_downgrade _ | Lock_server.T_crash _ -> ());
      (* Client-side checks at every acquire: the held lock covers the
         requested range, never starts above it, and its mode subsumes
         the requested one. *)
      List.iteri
        (fun idx (c, m, (blk, len)) ->
          spawn w
            (Printf.sprintf "op%d" idx)
            (fun () ->
              Engine.sleep w.eng (float_of_int idx *. 1e-4);
              let lo = blk * 4096 in
              let req = iv lo (lo + (len * 4096)) in
              Lock_client.with_lock w.clients.(c) ~rid:1 ~mode:m
                ~ranges:[ req ]
                (fun h ->
                  let hull = Types.ranges_hull (Lock_client.granted_ranges h) in
                  if not (Interval.contains hull req) then ok := false;
                  if hull.Interval.lo > req.Interval.lo then ok := false;
                  if
                    not
                      (Mode.subsumes ~cached:(Lock_client.mode h) ~wanted:m)
                  then ok := false;
                  Engine.sleep w.eng 1e-4)))
        steps;
      run w;
      Lock_server.check_invariants w.server;
      !ok)

(* Compatibility vs the independent Table II transcription, plus the
   structural symmetry the paper's table implies: in the GRANTED state
   compatibility is an undirected relation (only PR/PR is true), so
   req/granted must commute.  The CANCELING column is deliberately
   asymmetric — NBW requests overlap a canceling holder's flush (early
   grant, Fig. 6) while the converse does not — so the symmetry claim is
   scoped to GRANTED and the oracle check covers both states. *)
let prop_lcm_table2_symmetry =
  let open QCheck in
  let gen = Gen.(pair (oneofl all_modes) (oneofl all_modes)) in
  Test.make ~name:"Table II: granted-state symmetry, both states match oracle"
    ~count:100
    (make
       ~print:(fun (a, b) ->
         Printf.sprintf "req=%s granted=%s" (Mode.to_string a)
           (Mode.to_string b))
       gen)
    (fun (a, b) ->
      let symmetric =
        Lcm.compatible ~req:a ~granted:b ~state:Lcm.Granted
        = Lcm.compatible ~req:b ~granted:a ~state:Lcm.Granted
      in
      let matches_oracle =
        List.for_all
          (fun state ->
            Lcm.compatible ~req:a ~granted:b ~state
            = Check.Lcm_oracle.compatible ~req:a ~granted:b ~state)
          [ Lcm.Granted; Lcm.Canceling ]
      in
      symmetric && matches_oracle)

(* ------------------------------------------------------------------ *)
(* Differential model test: indexed server vs the list reference       *)
(* ------------------------------------------------------------------ *)

(* The production lock server keeps its per-resource state in indexed
   structures (Dllist wait queue, lock-id table, extent interval index);
   [Ref_lock_server] is the pre-index implementation kept verbatim, with
   plain lists.  Both are driven through [submit]/[control]/
   [sync_resource] with the same operation script — no simulated network,
   the test plays every client — and must stay observationally identical
   after every step: same grants in the same order (ids, modes, ranges,
   SNs, states, replaced locks), same revokes, same queue contents and
   sequence numbers. *)

(* Everything observable about one server, behind closures so the same
   driver handles both modules. *)
type side = {
  s_submit : Types.request -> unit;
  s_submit_batch : (Types.request * (Types.grant -> unit)) list -> unit;
  s_control : Types.ctl_msg -> unit;
  s_sync : client:int -> rid:int -> unit;
  (* newest first *)
  s_grants :
    (int * int * int * Mode.t * (int * int) list * int * bool * bool * int list)
    list
    ref;
  s_revokes : (int * int * int) list ref;
  s_syncs : int ref;
  s_live : (int * int) list ref; (* (rid, lock_id), newest first *)
  s_q_len : int -> int;
  s_next_sn : int -> int;
  s_granted : int -> (int * int * Mode.t * (int * int) list * int * bool) list;
  s_waiting : int -> (int * Mode.t * Mode.t * (int * int) list) list;
  (* counter fields of the server's stats record, as a comparable tuple *)
  s_stats : unit -> int * int * int * int * int * int * int * int * int;
}

let flat_ranges = List.map (fun (i : Interval.t) -> (i.Interval.lo, i.Interval.hi))

let observe_grant side (g : Types.grant) ~early =
  side.s_grants :=
    ( g.lock_id,
      g.rid,
      g.client,
      g.mode,
      flat_ranges g.ranges,
      g.sn,
      g.state = Lcm.Canceling,
      early,
      g.replaces )
    :: !(side.s_grants);
  side.s_live :=
    (g.rid, g.lock_id)
    :: List.filter
         (fun (rid, id) -> rid <> g.rid || not (List.mem id g.replaces))
         !(side.s_live)

let indexed_side eng ~policy ~clients =
  let node = Netsim.Node.create eng params ~name:"idx-node" () in
  let s = Lock_server.create eng params ~node ~name:"idx" ~policy in
  List.iter (fun (cid, ep) -> Lock_server.register_client s cid ep) clients;
  let side =
    ref
      {
        s_submit = (fun _ -> ());
        s_submit_batch = Lock_server.submit_batch s;
        s_control = Lock_server.control s;
        s_sync = (fun ~client:_ ~rid:_ -> ());
        s_grants = ref [];
        s_revokes = ref [];
        s_syncs = ref 0;
        s_live = ref [];
        s_q_len = Lock_server.queue_length s;
        s_next_sn = Lock_server.next_sn s;
        s_granted =
          (fun rid ->
            List.map
              (fun (v : Lock_server.lock_view) ->
                ( v.v_lock_id,
                  v.v_client,
                  v.v_mode,
                  flat_ranges v.v_ranges,
                  v.v_sn,
                  v.v_state = Lcm.Canceling ))
              (Lock_server.granted_locks s rid));
        s_waiting =
          (fun rid ->
            List.map
              (fun (w : Lock_server.waiter_view) ->
                (w.q_client, w.q_mode, w.q_eff_mode, flat_ranges w.q_ranges))
              (Lock_server.waiting_view s rid));
        s_stats =
          (fun () ->
            let st = Lock_server.stats s in
            ( st.Lock_server.grants,
              st.early_grants,
              st.early_revocations,
              st.revokes_sent,
              st.upgrades,
              st.downgrades,
              st.releases,
              st.expansions,
              st.max_queue ));
      }
  in
  Lock_server.set_tracer s (fun _ ev ->
      match ev with
      | Lock_server.T_grant (g, early) ->
          observe_grant !side g ~early:(early = `Early)
      | Lock_server.T_revoke { t_rid; t_lock_id; t_client } ->
          !side.s_revokes := (t_rid, t_lock_id, t_client) :: !(!side.s_revokes)
      | _ -> ());
  side :=
    {
      !side with
      s_submit = (fun req -> Lock_server.submit s req ~on_grant:(fun _ -> ()));
      s_sync =
        (fun ~client ~rid ->
          Lock_server.sync_resource s rid ~on_behalf:client ~reply:(fun () ->
              incr !side.s_syncs));
    };
  !side

let reference_side eng ~policy ~clients =
  let node = Netsim.Node.create eng params ~name:"ref-node" () in
  let s = Ref_lock_server.create eng params ~node ~name:"ref" ~policy in
  List.iter (fun (cid, ep) -> Ref_lock_server.register_client s cid ep) clients;
  let side =
    ref
      {
        s_submit = (fun _ -> ());
        (* The reference has no vectorized path: a batch is, by
           definition, N sequential submits. *)
        s_submit_batch =
          (fun reqs ->
            List.iter
              (fun (req, reply) ->
                Ref_lock_server.submit s req ~on_grant:reply)
              reqs);
        s_control = Ref_lock_server.control s;
        s_sync = (fun ~client:_ ~rid:_ -> ());
        s_grants = ref [];
        s_revokes = ref [];
        s_syncs = ref 0;
        s_live = ref [];
        s_q_len = Ref_lock_server.queue_length s;
        s_next_sn = Ref_lock_server.next_sn s;
        s_granted =
          (fun rid ->
            List.map
              (fun (v : Ref_lock_server.lock_view) ->
                ( v.v_lock_id,
                  v.v_client,
                  v.v_mode,
                  flat_ranges v.v_ranges,
                  v.v_sn,
                  v.v_state = Lcm.Canceling ))
              (Ref_lock_server.granted_locks s rid));
        s_waiting =
          (fun rid ->
            List.map
              (fun (w : Ref_lock_server.waiter_view) ->
                (w.q_client, w.q_mode, w.q_eff_mode, flat_ranges w.q_ranges))
              (Ref_lock_server.waiting_view s rid));
        s_stats =
          (fun () ->
            let st = Ref_lock_server.stats s in
            ( st.Ref_lock_server.grants,
              st.early_grants,
              st.early_revocations,
              st.revokes_sent,
              st.upgrades,
              st.downgrades,
              st.releases,
              st.expansions,
              st.max_queue ));
      }
  in
  Ref_lock_server.set_tracer s (fun _ ev ->
      match ev with
      | Ref_lock_server.T_grant (g, early) ->
          observe_grant !side g ~early:(early = `Early)
      | Ref_lock_server.T_revoke { t_rid; t_lock_id; t_client } ->
          !side.s_revokes := (t_rid, t_lock_id, t_client) :: !(!side.s_revokes)
      | _ -> ());
  side :=
    {
      !side with
      s_submit =
        (fun req -> Ref_lock_server.submit s req ~on_grant:(fun _ -> ()));
      s_sync =
        (fun ~client ~rid ->
          Ref_lock_server.sync_resource s rid ~on_behalf:client
            ~reply:(fun () -> incr !side.s_syncs));
    };
  !side

let sides_agree ~n_rids a b =
  !(a.s_grants) = !(b.s_grants)
  && !(a.s_revokes) = !(b.s_revokes)
  && !(a.s_syncs) = !(b.s_syncs)
  && a.s_stats () = b.s_stats ()
  && List.for_all
       (fun rid ->
         a.s_q_len rid = b.s_q_len rid
         && a.s_next_sn rid = b.s_next_sn rid
         && a.s_granted rid = b.s_granted rid
         && a.s_waiting rid = b.s_waiting rid)
       (List.init n_rids (fun i -> i))

(* One scripted step against one side.  Acks/releases/downgrades address
   locks through the side's own event logs — the logs are asserted equal
   after every step, so both sides always receive the same message. *)
let apply_op side op =
  match op with
  | `Req (client, rid, mode, ranges) ->
      side.s_submit { Types.client; rid; mode; ranges }
  | `Batch reqs ->
      side.s_submit_batch
        (List.map
           (fun (client, rid, mode, ranges) ->
             ({ Types.client; rid; mode; ranges }, fun _ -> ()))
           reqs)
  | `Ack k -> (
      match !(side.s_revokes) with
      | [] -> ()
      | log ->
          let rid, lock_id, _ = List.nth log (k mod List.length log) in
          side.s_control (Types.Revoke_ack { rid; lock_id }))
  | `Release k -> (
      match !(side.s_live) with
      | [] -> ()
      | live ->
          let rid, lock_id = List.nth live (k mod List.length live) in
          side.s_live := List.filter (( <> ) (rid, lock_id)) live;
          side.s_control (Types.Release { rid; lock_id }))
  | `Downgrade (k, mode) -> (
      match !(side.s_live) with
      | [] -> ()
      | live ->
          let rid, lock_id = List.nth live (k mod List.length live) in
          side.s_control (Types.Downgrade { rid; lock_id; mode }))
  | `Sync (client, rid) -> side.s_sync ~client ~rid

let model_policies =
  Policy.all
  @ [
      Policy.without_early_revocation Policy.seqdlm;
      Policy.without_conversion Policy.seqdlm;
    ]

(* Generators and driver shared by the two differential properties. *)
let model_clients = 3
let model_rids = 2

let gen_model_ranges =
  (* mostly singletons; sometimes two disjoint ranges (datatype shape) *)
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map2
            (fun lo len -> [ iv lo (lo + len) ])
            (int_bound 40) (int_range 1 24) );
        ( 1,
          map
            (fun (lo, len, gap, len2) ->
              [ iv lo (lo + len); iv (lo + len + gap) (lo + len + gap + len2) ])
            (quad (int_bound 30) (int_range 1 12) (int_range 1 8)
               (int_range 1 12)) );
      ])

let gen_model_req =
  QCheck.Gen.(
    map2
      (fun (c, r, m) ranges -> (c, r, m, ranges))
      (triple
         (int_bound (model_clients - 1))
         (int_bound (model_rids - 1))
         (oneofl all_modes))
      gen_model_ranges)

let gen_model_op =
  QCheck.Gen.(
    frequency
      [
        (8, map (fun req -> `Req req) gen_model_req);
        (2, map (fun k -> `Ack k) (int_bound 30));
        (3, map (fun k -> `Release k) (int_bound 30));
        ( 1,
          map2
            (fun k m -> `Downgrade (k, m))
            (int_bound 30) (oneofl all_modes) );
        ( 1,
          map2
            (fun c r -> `Sync (c, r))
            (int_bound (model_clients - 1))
            (int_bound (model_rids - 1)) );
      ])

let print_model_req (c, r, m, ranges) =
  Printf.sprintf "c%d r%d %s %s" c r (Mode.to_string m)
    (String.concat ","
       (List.map
          (fun (i : Interval.t) ->
            Printf.sprintf "[%d,%d)" i.Interval.lo i.Interval.hi)
          ranges))

let print_model_op = function
  | `Req req -> "req " ^ print_model_req req
  | `Batch reqs ->
      Printf.sprintf "batch{ %s }"
        (String.concat "; " (List.map print_model_req reqs))
  | `Ack k -> Printf.sprintf "ack#%d" k
  | `Release k -> Printf.sprintf "release#%d" k
  | `Downgrade (k, m) -> Printf.sprintf "downgrade#%d->%s" k (Mode.to_string m)
  | `Sync (c, r) -> Printf.sprintf "sync c%d r%d" c r

let print_model_script (p, ops) =
  Printf.sprintf "policy=%s\n%s" (List.nth model_policies p).Policy.name
    (String.concat "\n" (List.map print_model_op ops))

let run_model_script (p, ops) =
  let policy = List.nth model_policies p in
  let eng = Engine.create () in
  (* Dummy revocation callbacks: couriers are spawned but the engine
     never runs, so nothing is ever delivered — the test itself plays
     the clients, answering revokes out of the trace log. *)
  let clients =
    List.init model_clients (fun cid ->
        let node =
          Netsim.Node.create eng params
            ~name:(Printf.sprintf "mc%d" cid)
            ()
        in
        ( cid,
          Netsim.Rpc.endpoint eng params ~node
            ~name:(Printf.sprintf "mc%d.cb" cid)
            ~handler:(fun _ ~reply -> reply ()) ))
  in
  let idx = indexed_side eng ~policy ~clients in
  let re = reference_side eng ~policy ~clients in
  List.for_all
    (fun op ->
      apply_op idx op;
      apply_op re op;
      sides_agree ~n_rids:model_rids idx re)
    ops

let prop_indexed_matches_reference =
  let open QCheck in
  Test.make
    ~name:"indexed lock server == list reference (grants, SNs, queues)"
    ~count:400
    (make ~print:print_model_script
       Gen.(
         pair
           (int_bound (List.length model_policies - 1))
           (list_size (int_range 1 40) gen_model_op)))
    run_model_script

let prop_batched_matches_sequential =
  let open QCheck in
  (* Pins [Lock_server.submit_batch] ≡ N sequential [submit]s: in these
     scripts request vectors of 1–8 arrive through the batch entry point
     on the indexed server, while the list reference (which has no
     vectorized path) plays the same vector as sequential submits.
     [sides_agree] then demands identical grants, SNs, queue order and
     stats counters after every step — interleaved with the usual acks,
     releases, downgrades and syncs so batches also land mid-protocol. *)
  let gen_op =
    Gen.(
      frequency
        [
          (4, gen_model_op);
          ( 4,
            map
              (fun reqs -> `Batch reqs)
              (list_size (int_range 1 8) gen_model_req) );
        ])
  in
  Test.make ~name:"submit_batch == N sequential submits (vs reference)"
    ~count:300
    (make ~print:print_model_script
       Gen.(
         pair
           (int_bound (List.length model_policies - 1))
           (list_size (int_range 1 30) gen_op)))
    run_model_script

let suite =
  let q = QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ()) in
  [
    ( "dlm.mode",
      [
        Alcotest.test_case "capabilities" `Quick test_mode_capabilities;
        Alcotest.test_case "join table (Fig. 9)" `Quick test_mode_join_table;
        Alcotest.test_case "subsumes table" `Quick test_mode_subsumes;
        q prop_join_lattice;
      ] );
    ( "dlm.lcm",
      [
        Alcotest.test_case "Table II exact" `Quick test_lcm_table2;
        Alcotest.test_case "PW blocks everything" `Quick
          test_lcm_pw_blocks_everything;
        Alcotest.test_case "golden table vs oracle" `Quick
          test_lcm_golden_table;
        Alcotest.test_case "ranges_overlap" `Quick test_ranges_overlap;
        Alcotest.test_case "normalize_ranges" `Quick test_normalize_ranges;
        q prop_ranges_overlap_oracle;
        q prop_lcm_table2_symmetry;
      ] );
    ( "dlm.protocol",
      [
        Alcotest.test_case "grant + EOF expansion" `Quick
          test_grant_and_expansion;
        Alcotest.test_case "cache reuse" `Quick test_cache_reuse;
        Alcotest.test_case "normal grant waits for flush" `Quick
          test_pw_conflict_waits_for_flush;
        Alcotest.test_case "early grant overlaps flush (Fig. 6)" `Quick
          test_early_grant_overlaps_flush;
        Alcotest.test_case "early revocation piggyback" `Quick
          test_early_revocation_piggyback;
        Alcotest.test_case "sequencer SNs unique" `Quick
          test_sequencer_monotonic;
        Alcotest.test_case "expansion bounded by waiter" `Quick
          test_expansion_bounded_by_waiter;
        Alcotest.test_case "DLM-Lustre expansion cap" `Quick
          test_lustre_cap_after_threshold;
        Alcotest.test_case "datatype exact ranges" `Quick
          test_datatype_exact_ranges;
      ] );
    ( "dlm.conversion",
      [
        Alcotest.test_case "upgrade NBW+PR -> PW (Fig. 11)" `Quick
          test_upgrade_same_client;
        Alcotest.test_case "no upgrade without conversion" `Quick
          test_no_upgrade_without_conversion;
        Alcotest.test_case "downgrade BW -> NBW (Fig. 12)" `Quick
          test_downgrade_bw_to_nbw;
        Alcotest.test_case "downgrade clean PW -> PR" `Quick
          test_downgrade_pw_to_pr_when_clean;
        Alcotest.test_case "upgrade reclaims other readers" `Quick
          test_upgrade_reclaims_other_readers;
        Alcotest.test_case "NBW+BW joins at BW" `Quick test_upgrade_nbw_plus_bw;
        Alcotest.test_case "early-revoked grant self-cancels" `Quick
          test_early_revoked_grant_cancels_after_use;
      ] );
    ( "dlm.server",
      [
        Alcotest.test_case "min unreleased write SN" `Quick
          test_min_unreleased_write_sn;
        Alcotest.test_case "mSN after release" `Quick
          test_min_unreleased_none_after_release;
        Alcotest.test_case "sync_resource" `Quick test_sync_resource;
        q prop_random_protocol;
        q prop_grant_contract;
        q prop_indexed_matches_reference;
        q prop_batched_matches_sequential;
      ] );
  ]
