(* Online failover tests (lib/ha): heartbeat detection, epoch-fenced
   recovery under live traffic, retry survival of message loss, and
   determinism of the whole machinery. *)

open Ccpfs_util
open Ccpfs

let params =
  {
    Netsim.Params.rtt = 1e-4;
    b_net = 1e9;
    server_ops = 10_000.;
    b_disk = 5e8;
    b_mem = 2e9;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let config = Config.with_extent_log true Config.default

let make ~clients =
  Cluster.create ~params ~config
    ~reliability:(Netsim.Rpc.reliability_for params)
    ~n_servers:1 ~n_clients:clients ()

(* The exp_failover workload in miniature: every client alternates
   between a shared hot range (PW contention) and a private segment
   whose cached grant is alive at crash time.  Returns the cluster, the
   installed ha, and the number of completed writes. *)
let contended_run ?(crash_after = 6) ~clients ~writes_each () =
  let cl = make ~clients in
  let eng = Cluster.engine cl in
  let ha = Ha.Failover.install cl in
  let completed = ref 0 in
  for i = 0 to clients - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/ha" in
        let private_off = (i + 1) * 65536 in
        for k = 1 to writes_each do
          let off = if k land 1 = 0 then 0 else private_off in
          Client.write ~mode:Seqdlm.Mode.PW c f ~off ~len:16384;
          incr completed
        done)
  done;
  let tick = Ha.Detector.period (Ha.Failover.detector ha) in
  Dessim.Engine.spawn eng ~name:"crash-injector" (fun () ->
      while !completed < crash_after do
        Dessim.Engine.sleep eng tick
      done;
      ignore (Ha.Failover.crash ha 0);
      while Ha.Failover.records ha = [] do
        Dessim.Engine.sleep eng tick
      done);
  Cluster.run cl;
  Cluster.fsync_all cl;
  (cl, ha, !completed)

let test_failover_under_traffic () =
  let clients = 4 and writes_each = 8 in
  let cl, ha, completed = contended_run ~clients ~writes_each () in
  Alcotest.(check int) "every write completed" (clients * writes_each)
    completed;
  (match Ha.Failover.records ha with
  | [ r ] ->
      Alcotest.(check int) "crashed server" 0 r.f_server;
      Alcotest.(check int) "epoch bumped" 1 r.f_epoch;
      Alcotest.(check bool) "detected after the crash" true
        (r.f_detect > r.f_crash);
      Alcotest.(check bool) "recovered after detection" true
        (r.f_recover > r.f_detect)
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one failover, got %d"
           (List.length rs)));
  Alcotest.(check int) "one detection" 1
    (Ha.Detector.detections (Ha.Failover.detector ha));
  Alcotest.(check bool) "outage cost retries" true
    (Cluster.total_retries cl > 0);
  let m = Ha.Failover.membership ha in
  Alcotest.(check string) "server back up" "up"
    (Ha.Membership.state_to_string (Ha.Membership.state m 0));
  Alcotest.(check int) "membership epoch matches" 1 (Ha.Membership.epoch m 0);
  Cluster.check_invariants cl

let test_failover_is_deterministic () =
  ignore
    (Check.Determinism.check ~name:"ha.failover" (fun () ->
         let cl, _, _ = contended_run ~clients:3 ~writes_each:6 () in
         Cluster.engine cl))

let test_healthy_cluster_no_detections () =
  let cl = make ~clients:2 in
  let ha = Ha.Failover.install cl in
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/quiet" in
        for _ = 1 to 4 do
          Client.write c f ~off:(i * 65536) ~len:16384
        done)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;
  Alcotest.(check int) "no detections" 0
    (Ha.Detector.detections (Ha.Failover.detector ha));
  Alcotest.(check (list reject)) "no failovers" [] (Ha.Failover.records ha);
  Alcotest.(check int) "epoch still 0" 0
    (Ha.Membership.epoch (Ha.Failover.membership ha) 0);
  Cluster.check_invariants cl

(* Lossy, duplicating network with no crash at all: the retry loop and
   the at-most-once dedup table must make every write land exactly once
   (a duplicated PW write applied twice would trip the invariant sweep
   and the byte checks downstream of it). *)
let test_loss_and_duplication_survived () =
  let cl = make ~clients:2 in
  let rng = Det_random.create ~seed:0xfaded in
  let frand () = Det_random.float rng 1. in
  let ls = Cluster.lock_server cl 0 in
  Netsim.Rpc.set_fault (Seqdlm.Lock_server.lock_endpoint ls) ~loss:0.3
    ~dup:0.2 ~rng:frand;
  Netsim.Rpc.set_fault (Seqdlm.Lock_server.ctl_endpoint ls) ~loss:0.3 ~dup:0.2
    ~rng:frand;
  Netsim.Rpc.set_fault
    (Data_server.endpoint (Cluster.data_server cl 0))
    ~loss:0.3 ~dup:0.2 ~rng:frand;
  let completed = ref 0 in
  for i = 0 to 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Client.open_file c ~create:true "/lossy" in
        for k = 0 to 5 do
          Client.write ~mode:Seqdlm.Mode.PW c f
            ~off:(((k * 2) + i) * 16384)
            ~len:16384;
          incr completed
        done)
  done;
  Cluster.run cl;
  Cluster.fsync_all cl;
  Alcotest.(check int) "every write completed" 12 !completed;
  Alcotest.(check bool) "losses cost retries" true
    (Cluster.total_retries cl > 0);
  Cluster.check_invariants cl

let suite =
  [
    ( "ha.failover",
      [
        Alcotest.test_case "crash under traffic, online recovery" `Quick
          test_failover_under_traffic;
        Alcotest.test_case "failover is deterministic" `Quick
          test_failover_is_deterministic;
        Alcotest.test_case "healthy cluster: no detections" `Quick
          test_healthy_cluster_no_detections;
        Alcotest.test_case "message loss + duplication survived" `Quick
          test_loss_and_duplication_survived;
      ] );
  ]
