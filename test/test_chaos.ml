(* Randomised end-to-end coherence: arbitrary mixes of writes, reads and
   appends from several clients, over random stripe counts, under every
   DLM policy.  Whatever the interleaving, the run must terminate, keep
   the lock-server invariants, leave all clients agreeing on the file's
   contents, and every surviving byte must trace back to an operation
   that was actually issued. *)

open Ccpfs_util
open Ccpfs

let params =
  {
    Netsim.Params.rtt = 1e-4;
    b_net = 1e9;
    server_ops = 10_000.;
    b_disk = 5e8;
    b_mem = 2e9;
    ctl_msg_bytes = 128;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

type op = Write of int * int | Read of int * int | Append of int

let print_op = function
  | Write (off, len) -> Printf.sprintf "w[%d,+%d)" off len
  | Read (off, len) -> Printf.sprintf "r[%d,+%d)" off len
  | Append len -> Printf.sprintf "a+%d" len

type scenario = {
  policy_idx : int;
  stripes : int;
  per_client : op list list; (* one op list per client *)
}

let gen_scenario =
  let open QCheck.Gen in
  let block = 4096 in
  let op =
    frequency
      [
        (6, map2 (fun b n -> Write (b * block, n * block)) (int_bound 24)
             (int_range 1 6));
        (2, map2 (fun b n -> Read (b * block, n * block)) (int_bound 24)
             (int_range 1 6));
        (1, map (fun n -> Append (n * block)) (int_range 1 3));
      ]
  in
  let client_ops = list_size (int_range 1 8) op in
  map3
    (fun policy_idx stripes per_client -> { policy_idx; stripes; per_client })
    (int_bound 3) (oneofl [ 1; 2; 4 ])
    (list_size (int_range 2 4) client_ops)

let print_scenario s =
  Printf.sprintf "policy=%d stripes=%d %s" s.policy_idx s.stripes
    (String.concat " | "
       (List.map (fun ops -> String.concat "," (List.map print_op ops))
          s.per_client))

let run_once s =
  let policy = List.nth Seqdlm.Policy.all s.policy_idx in
  (* Datatype locking only differs for multi-range writes; it still must
     pass this single-range workload. *)
  let n = List.length s.per_client in
  let cl =
    Cluster.create ~params
      ~config:
        (Config.with_dirty_limits ~dirty_min:(4 * Units.mib)
           ~dirty_max:(16 * Units.mib) Config.default)
      ~policy ~n_servers:(min 2 s.stripes) ~n_clients:n ()
  in
  if Check.Sanitize.enabled () then Check.Sanitize.attach_cluster cl;
  let issued = Hashtbl.create 64 in
  List.iteri
    (fun i ops ->
      Cluster.spawn_client cl i ~name:(Printf.sprintf "chaos%d" i) (fun c ->
          let layout =
            Layout.v ~stripe_size:(16 * 4096) ~stripe_count:s.stripes ()
          in
          let f = Client.open_file c ~create:true ~layout "/chaos" in
          List.iter
            (fun op ->
              match op with
              | Write (off, len) ->
                  Client.write c f ~off ~len;
                  Hashtbl.replace issued (i, Client.ops c) ()
              | Read (off, len) -> ignore (Client.read c f ~off ~len)
              | Append len ->
                  ignore (Client.append c f ~len);
                  Hashtbl.replace issued (i, Client.ops c) ())
            ops))
    s.per_client;
  Check.Sanitize.run_cluster cl;
  Cluster.check_invariants cl;
  (* Barrier passed: everyone reads everything and must agree. *)
  let extent = 40 * 4096 in
  let sums = Array.make n 0 in
  let provenance_ok = ref true in
  for i = 0 to n - 1 do
    Cluster.spawn_client cl i ~name:(Printf.sprintf "check%d" i) (fun c ->
        let f = Client.open_file c "/chaos" in
        sums.(i) <- Client.read_checksum c f ~off:0 ~len:extent;
        Client.read c f ~off:0 ~len:extent
        |> List.iter (fun (_, _, tag) ->
               match tag with
               | Some (t : Content.tag) ->
                   if not (Hashtbl.mem issued (t.Content.writer, t.Content.op))
                   then provenance_ok := false
               | None -> ()))
  done;
  Check.Sanitize.run_cluster cl;
  Cluster.check_invariants cl;
  if Check.Sanitize.enabled () then Check.Sanitize.check_cluster cl;
  (cl, Array.for_all (fun x -> x = sums.(0)) sums && !provenance_ok)

let run_scenario s =
  if Check.Sanitize.determinism_enabled () then begin
    let ok = ref true in
    ignore
      (Check.Determinism.check ~name:(print_scenario s) (fun () ->
           let cl, passed = run_once s in
           ok := !ok && passed;
           Cluster.engine cl));
    !ok
  end
  else snd (run_once s)

let prop_chaos =
  QCheck.Test.make ~name:"chaos: coherent, live and provenance-clean" ~count:60
    (QCheck.make ~print:print_scenario gen_scenario)
    run_scenario

let suite =
  [ ("pfs.chaos", [ QCheck_alcotest.to_alcotest ~long:false prop_chaos ]) ]
