(* Randomised end-to-end coherence, driven by the simulation fuzzer:
   QCheck picks case seeds, [Fuzz.Gen] derives a random cluster
   (policies, striping, cache limits, event jitter, crash schedules) and
   workload, and [Fuzz.Exec] runs it twice under the full oracle stack —
   protocol invariants, determinism fingerprints, the byte-exact
   shadow-file model and the Eq. (1) differential check.  This subsumes
   the old hand-rolled chaos harness (checksum agreement across clients
   is implied by byte-exact device contents): any interleaving must
   terminate and explain every surviving byte.

   The QCheck stream is seeded from CCPFS_SEED (see [Fuzz.Seed]), and
   every failure message prints the case seed, so a CI hit is replayed
   with `ccpfs_run fuzz --seed N --shrink`. *)

let print_seed s = Fuzz.Case.summary (Fuzz.Gen.of_seed s)

let prop_chaos =
  QCheck.Test.make
    ~name:"chaos: random cluster runs pass invariants, determinism and oracles"
    ~count:40
    (QCheck.make ~print:print_seed QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      match Fuzz.Exec.catch (Fuzz.Gen.of_seed seed) with
      | Ok _ -> true
      | Error reason ->
          QCheck.Test.fail_reportf
            "seed %d: %s@.replay: ccpfs_run fuzz --seed %d --shrink" seed
            reason seed)

(* A handful of pinned seeds so the deterministic corpus is exercised
   even when the QCheck stream moves (e.g. under a CCPFS_SEED override). *)
let test_fixed_seeds () =
  List.iter
    (fun seed ->
      match Fuzz.Exec.catch (Fuzz.Gen.of_seed seed) with
      | Ok _ -> ()
      | Error reason ->
          Alcotest.fail (Printf.sprintf "seed %d: %s" seed reason))
    [ 0; 1; 7; 42; 1234; 99991 ]

let suite =
  [
    ( "pfs.chaos",
      [
        Alcotest.test_case "fixed corpus seeds" `Quick test_fixed_seeds;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ()) ~long:false
          prop_chaos;
      ] );
  ]
