(* Tests for the workload generators: the offset streams must match the
   benchmark definitions exactly (§V). *)

open Ccpfs_util
open Workloads

let offs l = List.map (fun (a : Access.t) -> a.off) l

(* ------------------------------------------------------------------ *)
(* IOR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ior_segmented () =
  let a = Ior.accesses ~pattern:Access.N1_segmented ~nprocs:4 ~rank:1
      ~xfer:100 ~blocks:3
  in
  Alcotest.(check (list int)) "contiguous segment" [ 300; 400; 500 ] (offs a);
  Alcotest.(check bool) "lengths" true
    (List.for_all (fun (x : Access.t) -> x.len = 100) a)

let test_ior_strided () =
  let a =
    Ior.accesses ~pattern:Access.N1_strided ~nprocs:4 ~rank:1 ~xfer:100
      ~blocks:3
  in
  Alcotest.(check (list int)) "slot k*n+r" [ 100; 500; 900 ] (offs a)

let test_ior_nn () =
  let a = Ior.accesses ~pattern:Access.N_n ~nprocs:4 ~rank:2 ~xfer:100 ~blocks:3 in
  Alcotest.(check (list int)) "own file from 0" [ 0; 100; 200 ] (offs a);
  Alcotest.(check string) "rank file" "/ior.rank2"
    (Ior.file_of_rank ~pattern:Access.N_n ~rank:2);
  Alcotest.(check string) "shared file"
    (Ior.file_of_rank ~pattern:Access.N1_strided ~rank:0)
    (Ior.file_of_rank ~pattern:Access.N1_segmented ~rank:3)

let prop_ior_disjoint_cover =
  let open QCheck in
  Test.make ~name:"IOR ranks partition the file without overlap" ~count:100
    (make
       ~print:(fun (n, x, b) -> Printf.sprintf "n=%d xfer=%d blocks=%d" n x b)
       Gen.(triple (int_range 1 8) (int_range 1 1000) (int_range 1 20)))
    (fun (nprocs, xfer, blocks) ->
      List.for_all
        (fun pattern ->
          let all =
            List.concat
              (List.init nprocs (fun rank ->
                   Ior.accesses ~pattern ~nprocs ~rank ~xfer ~blocks))
          in
          let sorted =
            List.sort Int.compare (List.map (fun (a : Access.t) -> a.off) all)
          in
          let rec disjoint = function
            | a :: b :: rest -> a + xfer <= b && disjoint (b :: rest)
            | [ _ ] | [] -> true
          in
          List.length all = nprocs * blocks
          && disjoint sorted
          && Access.total_length all = nprocs * blocks * xfer)
        [ Access.N1_segmented; Access.N1_strided ])

(* ------------------------------------------------------------------ *)
(* Tile-IO                                                             *)
(* ------------------------------------------------------------------ *)

let small_grid = { Tile_io.rows = 2; cols = 3; tile = 8; overlap = 2; elem = 4 }

let test_tile_counts () =
  Alcotest.(check int) "clients" 6 (Tile_io.nclients small_grid);
  let r = Tile_io.ranges small_grid ~rank:0 in
  Alcotest.(check int) "one range per tile row" 8 (List.length r);
  Alcotest.(check bool) "each range is tile width" true
    (List.for_all
       (fun iv -> Interval.length iv = small_grid.Tile_io.tile * 4)
       r);
  Alcotest.(check int) "bytes per client" (8 * 8 * 4)
    (Tile_io.bytes_per_client small_grid)

let test_tile_neighbours_overlap () =
  (* Tiles 0 and 1 share a 2-pixel vertical strip; tiles 0 and 3 share a
     2-pixel horizontal strip (rank 3 = row 1, col 0). *)
  let r0 = Tile_io.ranges small_grid ~rank:0 in
  let r1 = Tile_io.ranges small_grid ~rank:1 in
  let r3 = Tile_io.ranges small_grid ~rank:3 in
  Alcotest.(check bool) "horizontal neighbours overlap" true
    (Seqdlm.Types.ranges_overlap r0 r1);
  Alcotest.(check bool) "vertical neighbours overlap" true
    (Seqdlm.Types.ranges_overlap r0 r3);
  let r2 = Tile_io.ranges small_grid ~rank:2 in
  Alcotest.(check bool) "distant tiles disjoint" false
    (Seqdlm.Types.ranges_overlap r0 r2)

let test_tile_paper_grid () =
  let g = Tile_io.paper_grid in
  Alcotest.(check int) "96 clients" 96 (Tile_io.nclients g);
  Alcotest.(check int) "1.6 GB per client" (20480 * 20480 * 4)
    (Tile_io.bytes_per_client g);
  let s = Tile_io.scaled_grid g ~scale:0.1 in
  Alcotest.(check int) "scaling keeps the grid" 96 (Tile_io.nclients s);
  Alcotest.(check bool) "tile shrinks" true (s.Tile_io.tile < g.Tile_io.tile)

let test_tile_union_covers_file () =
  (* The union of all clients' ranges covers the whole global array. *)
  let m =
    List.fold_left
      (fun m rank ->
        List.fold_left
          (fun m iv -> Extent_map.set m iv ())
          m
          (Tile_io.ranges small_grid ~rank))
      Extent_map.empty
      (List.init (Tile_io.nclients small_grid) (fun r -> r))
  in
  Alcotest.(check bool) "full coverage" true
    (Extent_map.covered m
       (Interval.v ~lo:0 ~hi:(Tile_io.file_bytes small_grid)))

(* ------------------------------------------------------------------ *)
(* VPIC                                                                *)
(* ------------------------------------------------------------------ *)

let test_vpic_layout () =
  let a = Vpic.accesses ~nprocs:2 ~rank:1 ~particles:10 ~iterations:2 in
  Alcotest.(check int) "8 vars x 2 iters" 16 (List.length a);
  let seg = 10 * 4 in
  (* iteration 0, var 0: base 0; rank 1 writes at seg. *)
  Alcotest.(check int) "first write" seg (List.hd a).Access.off;
  Alcotest.(check bool) "all writes are P*4 bytes" true
    (List.for_all (fun (x : Access.t) -> x.len = seg) a);
  Alcotest.(check int) "write size" (256 * 1024)
    (Vpic.write_size ~particles:65536)

let test_vpic_disjoint_total () =
  let nprocs = 4 and particles = 16 and iterations = 3 in
  let all =
    List.concat
      (List.init nprocs (fun rank ->
           Vpic.accesses ~nprocs ~rank ~particles ~iterations))
  in
  let m =
    List.fold_left
      (fun m (a : Access.t) ->
        Extent_map.set m (Access.interval a) ())
      Extent_map.empty all
  in
  let total = Vpic.total_bytes ~nprocs ~particles ~iterations in
  Alcotest.(check int) "total bytes" total (Access.total_length all);
  Alcotest.(check bool) "file fully covered, no gaps" true
    (Extent_map.covered m (Interval.v ~lo:0 ~hi:total))

let suite =
  [
    ( "workloads.ior",
      [
        Alcotest.test_case "segmented offsets" `Quick test_ior_segmented;
        Alcotest.test_case "strided offsets" `Quick test_ior_strided;
        Alcotest.test_case "N-N offsets and files" `Quick test_ior_nn;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_ior_disjoint_cover;
      ] );
    ( "workloads.tile_io",
      [
        Alcotest.test_case "tile geometry" `Quick test_tile_counts;
        Alcotest.test_case "neighbour overlaps" `Quick
          test_tile_neighbours_overlap;
        Alcotest.test_case "paper grid" `Quick test_tile_paper_grid;
        Alcotest.test_case "tiles cover the array" `Quick
          test_tile_union_covers_file;
      ] );
    ( "workloads.vpic",
      [
        Alcotest.test_case "variable layout" `Quick test_vpic_layout;
        Alcotest.test_case "ranks disjoint and covering" `Quick
          test_vpic_disjoint_total;
      ] );
  ]
