(* Tests for the observability layer (lib/obs): histogram bucketing,
   span collection, JSON round-trips, the hub's trace plumbing, and a
   golden end-to-end check that a traced cluster run exports valid
   Chrome trace_event JSON with matched begin/end pairs whose lock-wait
   totals agree with the lock-server statistics. *)

open Obs

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_hist_bucketing () =
  let reg = Metrics.create () in
  Metrics.enable reg;
  let h = Metrics.histogram reg "lat" in
  List.iter (Metrics.observe h) [ 1.0; 1.5; 3.0; 0.6; 0.0; -2.0 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  feq "sum keeps raw values" 4.1 (Metrics.hist_sum h);
  let lowest = Float.ldexp 1. (-64) in
  Alcotest.(check (list (pair (float 1e-30) int)))
    "power-of-two buckets, ascending"
    [ (lowest, 2); (1.0, 1); (2.0, 2); (4.0, 1) ]
    (Metrics.hist_buckets h);
  (* Two lookups of one name share the instrument. *)
  Metrics.observe (Metrics.histogram reg "lat") 1.2;
  Alcotest.(check int) "same instrument" 7 (Metrics.hist_count h)

(* hist_quantile: nearest-rank over the cumulative bucket counts,
   reported as the holding bucket's upper bound. *)
let test_hist_quantile () =
  let reg = Metrics.create () in
  Metrics.enable reg;
  let h = Metrics.histogram reg "q" in
  feq "empty histogram" 0. (Metrics.hist_quantile h 50.);
  (* 90 samples in the (0.5, 1] bucket, 9 in (1, 2], 1 in (2, 4]:
     ranks 1-90 resolve to 1.0, 91-99 to 2.0, 100 to 4.0 *)
  for _ = 1 to 90 do Metrics.observe h 0.9 done;
  for _ = 1 to 9 do Metrics.observe h 1.5 done;
  Metrics.observe h 3.0;
  feq "p50 in the bulk bucket" 1.0 (Metrics.hist_quantile h 50.);
  feq "p90 is the bulk's last rank" 1.0 (Metrics.hist_quantile h 90.);
  feq "p91 crosses into the tail" 2.0 (Metrics.hist_quantile h 91.);
  feq "p99 in the tail bucket" 2.0 (Metrics.hist_quantile h 99.);
  feq "p99.9 rounds up to the max bucket" 4.0 (Metrics.hist_quantile h 99.9);
  feq "p100 is the max bucket" 4.0 (Metrics.hist_quantile h 100.);
  feq "p0 clamps to rank 1" 1.0 (Metrics.hist_quantile h 0.);
  feq "p<0 clamps" 1.0 (Metrics.hist_quantile h (-3.));
  feq "p>100 clamps" 4.0 (Metrics.hist_quantile h 200.)

(* Differential check against the exact order statistic: on retained
   samples, Stats.percentile and hist_quantile must agree up to one
   power-of-two bucket (the histogram's stated resolution). *)
let prop_hist_quantile_vs_stats =
  let open QCheck in
  Test.make ~name:"hist_quantile brackets Stats.percentile" ~count:200
    (make
       ~print:Print.(pair (list float) (list int))
       Gen.(pair
              (list_size (int_range 1 60) (float_range 1e-6 1e6))
              (list_size (int_range 1 8) (int_bound 1000))))
    (fun (xs, ps) ->
      let reg = Metrics.create () in
      Metrics.enable reg;
      let h = Metrics.histogram reg "d" in
      let s = Ccpfs_util.Stats.create () in
      List.iter
        (fun x ->
          Metrics.observe h x;
          Ccpfs_util.Stats.add s x)
        xs;
      List.for_all
        (fun pm ->
          let p = float_of_int pm /. 10. in
          let exact = Ccpfs_util.Stats.percentile s p in
          let bucket = Metrics.hist_quantile h p in
          (* the exact sample lies in the bucket: [bucket/2, bucket) *)
          exact < bucket && exact >= bucket /. 2.)
        ps)

let test_metrics_disabled_noop () =
  let reg = Metrics.create () in
  Alcotest.(check bool) "starts disabled" false (Metrics.is_enabled reg);
  let h = Metrics.histogram reg "h" in
  let c = Metrics.counter reg "c" in
  let g = Metrics.gauge reg "g" in
  Metrics.observe h 1.0;
  Metrics.incr c;
  Metrics.set_gauge g 5.0;
  Alcotest.(check int) "histogram untouched" 0 (Metrics.hist_count h);
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  feq "gauge untouched" 0. (Metrics.gauge_value g);
  Metrics.enable reg;
  Metrics.incr c;
  Alcotest.(check int) "counts once enabled" 1 (Metrics.counter_value c)

let test_metrics_json_snapshot () =
  let reg = Metrics.create () in
  Metrics.enable reg;
  Metrics.add (Metrics.counter reg "rpc.calls") 3;
  Metrics.observe (Metrics.histogram reg "lat") 0.5;
  let j = Metrics.to_json reg in
  let counter =
    Option.bind (Json.member "counters" j) (Json.member "rpc.calls")
  in
  Alcotest.(check (option int)) "counter value" (Some 3)
    (Option.bind counter Json.get_int);
  let count =
    Option.bind (Json.member "histograms" j) (fun h ->
        Option.bind (Json.member "lat" h) (Json.member "count"))
  in
  Alcotest.(check (option int)) "hist count" (Some 1)
    (Option.bind count Json.get_int)

(* ------------------------------------------------------------------ *)
(* Trace sinks                                                         *)
(* ------------------------------------------------------------------ *)

let test_null_sink_noop () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.begin_span Trace.null ~ts:0. ~tid:1 "x";
  Trace.end_span Trace.null ~ts:1. ~tid:1 "x";
  Trace.complete Trace.null ~ts:0. ~dur:1. ~tid:1 "y";
  Trace.instant Trace.null ~ts:0. ~tid:1 "z";
  Alcotest.(check int) "nothing collected" 0 (Trace.num_events Trace.null)

let test_span_collection () =
  let s = Trace.make ~pid:7 ~label:"run" () in
  Alcotest.(check bool) "collecting sink enabled" true (Trace.enabled s);
  Trace.begin_span s ~ts:0.1 ~tid:3 ~cat:"io" "outer";
  Trace.begin_span s ~ts:0.2 ~tid:3 "inner";
  Trace.end_span s ~ts:0.3 ~tid:3 "inner";
  Trace.end_span s ~ts:0.4 ~tid:3 "outer";
  Trace.instant s ~ts:0.5 ~tid:3 "tick";
  let evs = Trace.events s in
  Alcotest.(check int) "five events" 5 (List.length evs);
  Alcotest.(check (list string))
    "emission order preserved"
    [ "outer"; "inner"; "inner"; "outer"; "tick" ]
    (List.map (fun (e : Trace.ev) -> e.name) evs);
  Alcotest.(check (list char))
    "phases" [ 'B'; 'B'; 'E'; 'E'; 'i' ]
    (List.map (fun (e : Trace.ev) -> e.ph) evs)

(* Walk Chrome trace events checking B/E nesting per (pid, tid); returns
   the number of events seen.  Fails the test on a mismatched pair. *)
let check_matched_spans json =
  let evs =
    match Json.member "traceEvents" json with
    | Some l -> Json.get_list l
    | None -> Alcotest.fail "no traceEvents field"
  in
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let get name = Option.bind (Json.member name e) Json.get_int in
      let key = (Option.value ~default:0 (get "pid"),
                 Option.value ~default:0 (get "tid")) in
      let name =
        Option.value ~default:""
          (Option.bind (Json.member "name" e) Json.get_string)
      in
      match Option.bind (Json.member "ph" e) Json.get_string with
      | Some "B" ->
          Hashtbl.replace stacks key
            (name :: Option.value ~default:[] (Hashtbl.find_opt stacks key))
      | Some "E" -> (
          match Hashtbl.find_opt stacks key with
          | Some (top :: rest) when top = name ->
              Hashtbl.replace stacks key rest
          | _ -> Alcotest.fail (Printf.sprintf "unmatched end span %S" name))
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun _ stack ->
      if stack <> [] then
        Alcotest.fail
          (Printf.sprintf "unclosed span %S" (List.hd stack)))
    stacks;
  List.length evs

let test_trace_json_shape () =
  let s = Trace.make ~pid:2 ~label:"demo" () in
  Trace.begin_span s ~ts:1e-6 ~tid:1 ~cat:"rpc"
    ~args:[ ("bytes", Json.Int 42) ] "call";
  Trace.end_span s ~ts:2e-6 ~tid:1 "call";
  let j = Trace.to_json [ s ] in
  Alcotest.(check (option string))
    "time unit" (Some "ms")
    (Option.bind (Json.member "displayTimeUnit" j) Json.get_string);
  (* 2 span events + 1 process_name metadata record for the label. *)
  Alcotest.(check int) "events incl. metadata" 3 (check_matched_spans j);
  (* Round-trip through the serializer and parser. *)
  let j' = Json.parse_exn (Json.to_string j) in
  Alcotest.(check int) "survives round-trip" 3 (check_matched_spans j')

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\ntab\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("o", Json.Obj [ ("nested", Json.Int 1) ]);
      ]
  in
  let v' = Json.parse_exn (Json.to_string v) in
  Alcotest.(check string) "identical after round-trip" (Json.to_string v)
    (Json.to_string v');
  (match Json.parse "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must not parse");
  match Json.parse "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated document must not parse"

(* Parser error paths: every rejection must be an [Error], never an
   exception or a silently wrong value. *)
let test_json_error_paths () =
  let rejects label input =
    match Json.parse input with
    | Error _ -> ()
    | Ok v ->
        Alcotest.fail
          (Printf.sprintf "%s: %S parsed to %s" label input (Json.to_string v))
  in
  rejects "empty input" "";
  rejects "truncated object" "{\"a\": {\"b\": 1";
  rejects "truncated list" "[1, 2,";
  rejects "truncated string" "\"abc";
  rejects "truncated literal" "tru";
  rejects "truncated unicode escape" "\"\\u00";
  rejects "short unicode escape" "\"\\u12\"";
  rejects "bad escape" "\"\\q\"";
  rejects "bare control char in string" "\"a\nb\"";
  rejects "lone minus" "-";
  rejects "missing colon" "{\"a\" 1}";
  rejects "missing comma" "[1 2]";
  rejects "duplicate object keys" "{\"a\": 1, \"a\": 2}";
  (* The accepted forms next door must stay accepted. *)
  (match Json.parse "{\"a\": 1, \"b\": 2}" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("distinct keys must parse: " ^ e));
  (match Json.parse "\"\\u0041\\\\\\n\"" with
  | Ok (Json.Str "A\\\n") -> ()
  | Ok v -> Alcotest.fail ("escapes decoded wrong: " ^ Json.to_string v)
  | Error e -> Alcotest.fail ("valid escapes must parse: " ^ e));
  (* The dedicated exception pinpoints the failing byte and excerpts the
     input around it. *)
  (match Json.parse_exn "[1, 2, x]" with
  | v -> Alcotest.fail ("bogus list parsed to " ^ Json.to_string v)
  | exception Json.Parse_error { offset; message; context } ->
      Alcotest.(check int) "failure offset" 7 offset;
      Alcotest.(check string) "failure message" "unexpected 'x'" message;
      Alcotest.(check string) "marked excerpt" "[1, 2, <HERE>x]" context);
  match Json.parse "[1, 2, x]" with
  | Ok v -> Alcotest.fail ("bogus list parsed to " ^ Json.to_string v)
  | Error e ->
      Alcotest.(check string)
        "Error string renders offset and excerpt"
        "Json.parse: at byte 7: unexpected 'x' (near [1, 2, <HERE>x])" e

(* ------------------------------------------------------------------ *)
(* Results accumulator                                                 *)
(* ------------------------------------------------------------------ *)

let read_rows path =
  let doc = Json.parse_exn (In_channel.with_open_text path In_channel.input_all) in
  Json.get_list (Option.get (Json.member "results" doc))

let with_temp_results f =
  let path = Filename.temp_file "ccpfs_results" ".json" in
  Results.clear ();
  Fun.protect
    ~finally:(fun () ->
      Results.clear ();
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let row k = Json.Obj [ ("k", Json.Int k) ]

let test_results_append_keeps_rows () =
  with_temp_results (fun path ->
      Results.add (row 1);
      Alcotest.(check int) "first write" 1
        (Results.write ~schema:"ccpfs.test/1" ~path ());
      Alcotest.(check int) "accumulator cleared" 0 (Results.count ());
      Results.add (row 2);
      Results.add (row 3);
      Alcotest.(check int) "append reports the total" 3
        (Results.write ~append:true ~schema:"ccpfs.test/1" ~path ());
      Alcotest.(check (list (option int)))
        "prior rows first, new rows after"
        [ Some 1; Some 2; Some 3 ]
        (List.map
           (fun r -> Option.bind (Json.member "k" r) Json.get_int)
           (read_rows path)))

let test_results_append_schema_mismatch () =
  with_temp_results (fun path ->
      Results.add (row 1);
      ignore (Results.write ~schema:"ccpfs.old/1" ~path ());
      Results.add (row 2);
      Alcotest.(check int) "different schema: overwritten, not merged" 1
        (Results.write ~append:true ~schema:"ccpfs.new/1" ~path ());
      Alcotest.(check (list (option int)))
        "only the new row survives" [ Some 2 ]
        (List.map
           (fun r -> Option.bind (Json.member "k" r) Json.get_int)
           (read_rows path)))

let test_results_append_unparsable_file () =
  with_temp_results (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "{not json");
      Results.add (row 7);
      Alcotest.(check int) "unparsable file: overwritten" 1
        (Results.write ~append:true ~schema:"ccpfs.test/1" ~path ());
      Alcotest.(check (list (option int)))
        "fresh document" [ Some 7 ]
        (List.map
           (fun r -> Option.bind (Json.member "k" r) Json.get_int)
           (read_rows path)))

(* ------------------------------------------------------------------ *)
(* Hub                                                                 *)
(* ------------------------------------------------------------------ *)

let test_hub_plumbing () =
  Hub.reset ();
  Alcotest.(check bool) "off by default" false (Hub.trace_requested ());
  Alcotest.(check bool) "no sink when off" true (Hub.new_sink () = None);
  let path = Filename.temp_file "ccpfs_trace" ".json" in
  Hub.request_trace path;
  Hub.set_run_info ~experiment:"figX" ~scale:0.5;
  Alcotest.(check string) "experiment stamped" "figX" (Hub.experiment ());
  feq "scale stamped" 0.5 (Hub.scale ());
  Alcotest.(check int) "run ids count up" 0 (Hub.next_run_id ());
  Alcotest.(check int) "run ids count up" 1 (Hub.next_run_id ());
  (match Hub.new_sink () with
  | None -> Alcotest.fail "expected a sink once requested"
  | Some s ->
      Alcotest.(check string) "default label" "figX#2" (Trace.label s);
      Trace.begin_span s ~ts:0. ~tid:1 "work";
      Trace.end_span s ~ts:1. ~tid:1 "work");
  (match Hub.flush_trace () with
  | None -> Alcotest.fail "expected a flushed trace"
  | Some (p, n) ->
      Alcotest.(check string) "written to the requested path" path p;
      Alcotest.(check int) "both events" 2 n;
      let j = Json.parse_exn (In_channel.with_open_text p In_channel.input_all) in
      (* 2 spans + process_name metadata. *)
      Alcotest.(check int) "file parses, spans matched" 3
        (check_matched_spans j));
  Sys.remove path;
  Hub.reset ()

(* ------------------------------------------------------------------ *)
(* Golden: a traced cluster run                                        *)
(* ------------------------------------------------------------------ *)

let test_cluster_trace_golden () =
  (* Two clients fight over one stripe so revocation and release waits
     both occur; the exported trace must parse, nest, and attribute the
     same wait totals as the lock-server statistics. *)
  let cl = Ccpfs.Cluster.create ~n_servers:1 ~n_clients:2 () in
  let sink = Trace.make ~pid:1 ~label:"golden" () in
  Dessim.Engine.set_trace_sink (Ccpfs.Cluster.engine cl) sink;
  for i = 0 to 1 do
    Ccpfs.Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i) (fun c ->
        let f = Ccpfs.Client.open_file c ~create:true "/contend" in
        (* PW forbids early grant, so both wait terms are exercised. *)
        for _ = 1 to 4 do
          Ccpfs.Client.write c f ~mode:Seqdlm.Mode.PW ~off:0 ~len:65536
        done)
  done;
  Ccpfs.Cluster.run cl;
  Ccpfs.Cluster.fsync_all cl;
  let j = Json.parse_exn (Json.to_string (Trace.to_json [ sink ])) in
  let n = check_matched_spans j in
  Alcotest.(check bool) "a real trace" true (n > 20);
  (* Sum the lock-wait attribution spans (ph X, µs) per wait kind. *)
  let rev = ref 0. and rel = ref 0. in
  List.iter
    (fun e ->
      match
        ( Option.bind (Json.member "ph" e) Json.get_string,
          Option.bind (Json.member "name" e) Json.get_string,
          Option.bind (Json.member "dur" e) Json.get_float )
      with
      | Some "X", Some "lock.wait.revocation", Some d -> rev := !rev +. d
      | Some "X", Some "lock.wait.release", Some d -> rel := !rel +. d
      | _ -> ())
    (Json.get_list (Option.get (Json.member "traceEvents" j)));
  let stats = Ccpfs.Cluster.sum_lock_stats cl in
  Alcotest.(check (float 1e-6))
    "revocation wait agrees with stats" stats.Seqdlm.Lock_server.revocation_wait
    (!rev /. 1e6);
  Alcotest.(check (float 1e-6))
    "release wait agrees with stats" stats.Seqdlm.Lock_server.release_wait
    (!rel /. 1e6);
  Alcotest.(check bool) "waits actually happened" true (!rel > 0.)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram bucketing" `Quick test_hist_bucketing;
        Alcotest.test_case "histogram quantiles" `Quick test_hist_quantile;
        QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.rand_state ())
          prop_hist_quantile_vs_stats;
        Alcotest.test_case "disabled metrics are no-ops" `Quick
          test_metrics_disabled_noop;
        Alcotest.test_case "metrics JSON snapshot" `Quick
          test_metrics_json_snapshot;
        Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_noop;
        Alcotest.test_case "span collection order" `Quick test_span_collection;
        Alcotest.test_case "trace JSON shape" `Quick test_trace_json_shape;
        Alcotest.test_case "JSON round-trip + strictness" `Quick
          test_json_roundtrip;
        Alcotest.test_case "JSON parser error paths" `Quick
          test_json_error_paths;
        Alcotest.test_case "results append keeps prior rows" `Quick
          test_results_append_keeps_rows;
        Alcotest.test_case "results append, schema mismatch" `Quick
          test_results_append_schema_mismatch;
        Alcotest.test_case "results append, unparsable file" `Quick
          test_results_append_unparsable_file;
        Alcotest.test_case "hub plumbing" `Quick test_hub_plumbing;
        Alcotest.test_case "golden traced cluster run" `Quick
          test_cluster_trace_golden;
      ] );
  ]
