(* Tests for the simulated RPC transport (lib/net). *)

open Dessim
open Netsim

let feq msg = Alcotest.(check (float 1e-9)) msg

let params =
  (* Round numbers make latencies easy to assert: RTT 1 ms, 1 MB/s NIC,
     100 ops/s service, 1 MB/s disk. *)
  {
    Params.rtt = 1e-3;
    b_net = 1e6;
    server_ops = 100.;
    b_disk = 1e6;
    b_mem = 1e6;
    ctl_msg_bytes = 0;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let test_call_latency () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"echo"
      ~handler:(fun x ~reply -> reply (x + 1))
  in
  let got = ref 0 and at = ref 0. in
  Engine.spawn eng ~name:"caller" (fun () ->
      got := Rpc.call ep ~src:client 41;
      at := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "reply value" 42 !got;
  (* rtt/2 + 1/ops + rtt/2 = 0.5ms + 10ms + 0.5ms *)
  feq "latency = rtt + service" 0.011 !at;
  Alcotest.(check int) "one call" 1 (Rpc.calls ep)

let test_call_payload_bandwidth () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"put"
      ~handler:(fun () ~reply -> reply ())
  in
  Engine.spawn eng ~name:"caller" (fun () ->
      Rpc.call ep ~src:client ~req_bytes:1_000_000 ();
      (* 0.5ms + 1s pipe + 10ms service + 0.5ms *)
      feq "payload occupies pipe" 1.011 (Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "bytes accounted" 1_000_000 (Node.net_bytes_in server)

let test_server_ops_serialise () =
  (* Term ① of Eq. 1: N concurrent small calls take ~N/OPS at the
     server. *)
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"noop"
      ~handler:(fun () ~reply -> reply ())
  in
  let n = 10 in
  let last = ref 0. in
  for i = 1 to n do
    let client = Node.create eng params ~name:(Printf.sprintf "c%d" i) () in
    Engine.spawn eng ~name:(Printf.sprintf "caller%d" i) (fun () ->
        Rpc.call ep ~src:client ();
        if Engine.now eng > !last then last := Engine.now eng)
  done;
  Engine.run eng;
  feq "N/OPS + rtt" (float_of_int n /. params.Params.server_ops +. params.Params.rtt)
    !last

let test_deferred_reply () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let pending = ref None in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"defer"
      ~handler:(fun () ~reply -> pending := Some reply)
  in
  Engine.spawn eng ~name:"releaser" (fun () ->
      Engine.sleep eng 5.;
      match !pending with Some r -> r 7 | None -> Alcotest.fail "no pending");
  let got = ref 0 and at = ref 0. in
  Engine.spawn eng ~name:"caller" (fun () ->
      got := Rpc.call ep ~src:client ();
      at := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "deferred value" 7 !got;
  feq "released at 5s + rtt/2" 5.0005 !at

let test_notify_does_not_block () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let received = ref (-1.) in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"cb"
      ~handler:(fun () ~reply ->
        received := Engine.now eng;
        reply ())
  in
  Engine.spawn eng ~name:"sender" (fun () ->
      Rpc.notify ep ~src:client ();
      feq "sender not blocked" 0. (Engine.now eng));
  Engine.run eng;
  feq "delivered after rtt/2 + service" 0.0105 !received

let test_blocking_handler_uses_disk () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" ~with_disk:true () in
  let client = Node.create eng params ~name:"c" () in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"write"
      ~handler:(fun bytes ~reply ->
        Node.disk_write server bytes;
        reply ())
  in
  Engine.spawn eng ~name:"caller" (fun () ->
      Rpc.call ep ~src:client ~req_bytes:500_000 500_000;
      (* 0.5ms + 0.5s pipe + 10ms + 0.5s disk + 0.5ms *)
      feq "disk time charged" 1.011 (Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "disk bytes" 500_000 (Node.disk_bytes_written server)

let test_params_b_flush () =
  let p = Params.default in
  let expected =
    p.Params.b_net *. p.Params.b_disk /. (p.Params.b_net +. p.Params.b_disk)
  in
  feq "Eq. 2" expected (Params.b_flush p);
  Alcotest.(check bool) "slower than both" true
    (Params.b_flush p < p.Params.b_net && Params.b_flush p < p.Params.b_disk)

let test_node_no_disk () =
  let eng = Engine.create () in
  let n = Node.create eng params ~name:"diskless" () in
  Alcotest.(check bool) "has_disk" false (Node.has_disk n);
  Alcotest.check_raises "disk access" (Invalid_argument "diskless: node has no disk")
    (fun () -> ignore (Node.disk n))

(* ------------------------------------------------------------------ *)
(* Fenced transport                                                    *)
(* ------------------------------------------------------------------ *)

let fenced_world () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let hits = ref 0 in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"svc"
      ~handler:(fun x ~reply ->
        incr hits;
        reply (x * 2))
  in
  (eng, server, client, ep, hits)

let test_fenced_timeout_and_stale () =
  let eng, _, client, ep, hits = fenced_world () in
  Rpc.set_epoch ep 2;
  Engine.spawn eng ~name:"caller" (fun () ->
      (* Older-epoch request is fenced off without touching the handler. *)
      (match Rpc.call_fenced ep ~src:client ~timeout:1. ~epoch:1 21 with
      | Rpc.Stale e -> Alcotest.(check int) "fence reports server epoch" 2 e
      | Rpc.Reply _ -> Alcotest.fail "stale request must not be served"
      | Rpc.Timeout -> Alcotest.fail "stale request must not time out");
      Alcotest.(check int) "handler never ran" 0 !hits;
      (* Current-epoch request goes through. *)
      (match Rpc.call_fenced ep ~src:client ~timeout:1. ~epoch:2 21 with
      | Rpc.Reply (v, e) ->
          Alcotest.(check int) "reply value" 42 v;
          Alcotest.(check int) "reply epoch" 2 e
      | _ -> Alcotest.fail "live request must be served");
      (* A down endpoint drops the delivery: the deadline expires. *)
      Rpc.set_down ep true;
      let t0 = Engine.now eng in
      match Rpc.call_fenced ep ~src:client ~timeout:0.5 ~epoch:2 21 with
      | Rpc.Timeout ->
          Alcotest.(check (float 1e-9)) "waited the full deadline" 0.5
            (Engine.now eng -. t0)
      | _ -> Alcotest.fail "down endpoint must time out");
  Engine.run eng

let test_fenced_at_most_once () =
  let eng, _, client, ep, hits = fenced_world () in
  Engine.spawn eng ~name:"caller" (fun () ->
      let first = Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:7 21 in
      (* Same request id again: the stored reply is replayed, the handler
         does not run a second time. *)
      let second = Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:7 21 in
      (match (first, second) with
      | Rpc.Reply (a, _), Rpc.Reply (b, _) ->
          Alcotest.(check int) "same answer" a b
      | _ -> Alcotest.fail "both attempts must get the reply");
      Alcotest.(check int) "handler ran once" 1 !hits;
      (* A crash wipes the dedup table: the id becomes fresh again. *)
      Rpc.reset ep;
      (match Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:7 21 with
      | Rpc.Reply _ -> ()
      | _ -> Alcotest.fail "post-reset attempt must be served");
      Alcotest.(check int) "reset cleared at-most-once state" 2 !hits);
  Engine.run eng

(* ------------------------------------------------------------------ *)
(* Batching (DESIGN.md §13)                                            *)
(* ------------------------------------------------------------------ *)

let test_batching_size_flush_preserves_order () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let seen = ref [] in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"seq"
      ~handler:(fun x ~reply ->
        seen := x :: !seen;
        reply (x * 10))
  in
  Rpc.set_batching ep ~max_batch:3 ~delay:1.0;
  let replies = ref [] in
  Engine.spawn eng ~name:"caller" (fun () ->
      (* Three same-instant calls fill the batch: the size trigger fires
         long before the (deliberately huge) delay timer could. *)
      let ivs = List.map (fun x -> Rpc.call_async ep ~src:client x) [ 1; 2; 3 ] in
      replies := List.map (fun iv -> Ivar.read iv) ivs;
      (* One amortized service op for the whole batch: rtt/2 in, one
         1/OPS charge, rtt/2 back — not 3/OPS. *)
      feq "batch paid one service op" 0.011 (Engine.now eng));
  Engine.run eng;
  Alcotest.(check (list int)) "served strictly in enqueue order" [ 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check (list int)) "each call got its own reply" [ 10; 20; 30 ]
    !replies;
  Alcotest.(check int) "all messages counted" 3 (Rpc.calls ep)

let test_batching_timer_flush () =
  let eng = Engine.create () in
  let server = Node.create eng params ~name:"s" () in
  let client = Node.create eng params ~name:"c" () in
  let served_at = ref (-1.) in
  let ep =
    Rpc.endpoint eng params ~node:server ~name:"tick"
      ~handler:(fun () ~reply ->
        served_at := Engine.now eng;
        reply ())
  in
  Rpc.set_batching ep ~max_batch:8 ~delay:0.004;
  Engine.spawn eng ~name:"sender" (fun () ->
      (* A blocking call (not a notify): the suspended caller keeps the
         run alive until the delay timer fires. *)
      Rpc.call ep ~src:client ());
  Engine.run eng;
  (* A lone message below max_batch waits out the delay timer, then pays
     the normal journey: delay + rtt/2 + 1/OPS. *)
  feq "timer flushed the partial batch" 0.0145 !served_at

let test_reliable_rides_out_an_outage () =
  let eng, _, client, ep, hits = fenced_world () in
  let rel =
    { Rpc.rel_timeout = 0.02; rel_base_backoff = 0.002; rel_max_backoff = 0.05 }
  in
  let view = Rpc.View.create () in
  Rpc.set_down ep true;
  Engine.spawn eng ~name:"healer" (fun () ->
      Engine.sleep eng 0.1;
      Rpc.set_epoch ep 3;
      Rpc.set_down ep false);
  Engine.spawn eng ~name:"caller" (fun () ->
      let v = Rpc.call_reliable ep ~src:client ~reliability:rel ~view 21 in
      Alcotest.(check int) "eventually answered" 42 v;
      Alcotest.(check bool) "after the outage" true (Engine.now eng > 0.1);
      Alcotest.(check bool) "attempts were retries, not re-executions" true
        (Rpc.View.retries view > 0);
      Alcotest.(check int) "handler ran exactly once" 1 !hits;
      Alcotest.(check int) "epoch bump observed" 3
        (Rpc.View.epoch view (Rpc.name ep)));
  Engine.run eng

let test_reliable_survives_loss_and_dup () =
  let eng, _, client, ep, hits = fenced_world () in
  let rel =
    { Rpc.rel_timeout = 0.02; rel_base_backoff = 0.002; rel_max_backoff = 0.05 }
  in
  let view = Rpc.View.create () in
  let rng = Ccpfs_util.Det_random.create ~seed:0xbadbeef in
  Rpc.set_fault ep ~loss:0.4 ~dup:0.3 ~rng:(fun () ->
      Ccpfs_util.Det_random.float rng 1.);
  let n = 20 in
  Engine.spawn eng ~name:"caller" (fun () ->
      for i = 1 to n do
        Alcotest.(check int) "answer survives the faults" (2 * i)
          (Rpc.call_reliable ep ~src:client ~reliability:rel ~view i)
      done);
  Engine.run eng;
  Alcotest.(check int) "each logical call executed exactly once" n !hits;
  Alcotest.(check bool) "losses forced retries" true (Rpc.View.retries view > 0)

let test_dedup_retention_bound () =
  let eng, _, client, ep, hits = fenced_world () in
  Rpc.set_dedup_cap ep 4;
  Engine.spawn eng ~name:"caller" (fun () ->
      for id = 1 to 10 do
        match Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:id id with
        | Rpc.Reply _ -> ()
        | _ -> Alcotest.fail "fresh request must be served"
      done;
      Alcotest.(check int) "ten distinct requests executed" 10 !hits;
      (* Ids inside the retention window (the 4 newest) are still
         deduplicated after pruning... *)
      (match Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:7 7 with
      | Rpc.Reply (v, _) -> Alcotest.(check int) "stored reply replayed" 14 v
      | _ -> Alcotest.fail "replay must get the stored reply");
      (match Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:10 10 with
      | Rpc.Reply (v, _) -> Alcotest.(check int) "stored reply replayed" 20 v
      | _ -> Alcotest.fail "replay must get the stored reply");
      Alcotest.(check int) "no double execution within the window" 10 !hits;
      (* ...while an id older than the window really was pruned: it
         re-executes, which is what bounds the table. *)
      (match Rpc.call_fenced ep ~src:client ~epoch:0 ~req_id:1 1 with
      | Rpc.Reply _ -> ()
      | _ -> Alcotest.fail "pruned id must be served afresh");
      Alcotest.(check int) "oldest entries were evicted" 11 !hits);
  Engine.run eng

let test_backoff_plateaus_under_long_outage () =
  let eng, _, client, ep, hits = fenced_world () in
  let rel =
    (* rel_timeout must exceed the served round trip (rtt + 1/OPS = 11 ms)
       or the call livelocks: the reply would always arrive just after the
       deadline. *)
    { Rpc.rel_timeout = 0.02; rel_base_backoff = 0.001; rel_max_backoff = 0.008 }
  in
  let view = Rpc.View.create () in
  Rpc.set_down ep true;
  Engine.spawn eng ~name:"healer" (fun () ->
      Engine.sleep eng 10.;
      Rpc.set_down ep false);
  Engine.spawn eng ~name:"caller" (fun () ->
      let v = Rpc.call_reliable ep ~src:client ~reliability:rel ~view 21 in
      Alcotest.(check int) "answered after the outage" 42 v);
  Engine.run eng;
  Alcotest.(check int) "handler ran exactly once" 1 !hits;
  (* With the accumulator clamped at rel_max_backoff, each attempt costs
     at most timeout + 1.5 * max_backoff = 32 ms, so a 10 s outage takes
     >300 attempts.  An unclamped accumulator doubles past the outage
     length by attempt ~15 and would retry only a couple dozen times. *)
  Alcotest.(check bool)
    (Printf.sprintf "retry cadence plateaued (%d retries)"
       (Rpc.View.retries view))
    true
    (Rpc.View.retries view > 300)

let suite =
  [
    ( "net.rpc",
      [
        Alcotest.test_case "call latency" `Quick test_call_latency;
        Alcotest.test_case "payload bandwidth" `Quick
          test_call_payload_bandwidth;
        Alcotest.test_case "server OPS serialise calls" `Quick
          test_server_ops_serialise;
        Alcotest.test_case "deferred reply" `Quick test_deferred_reply;
        Alcotest.test_case "notify is non-blocking" `Quick
          test_notify_does_not_block;
        Alcotest.test_case "blocking handler on disk" `Quick
          test_blocking_handler_uses_disk;
      ] );
    ( "net.batch",
      [
        Alcotest.test_case "size flush preserves order + replies" `Quick
          test_batching_size_flush_preserves_order;
        Alcotest.test_case "timer flushes a partial batch" `Quick
          test_batching_timer_flush;
      ] );
    ( "net.fenced",
      [
        Alcotest.test_case "epoch fence + timeout" `Quick
          test_fenced_timeout_and_stale;
        Alcotest.test_case "at-most-once dedup" `Quick test_fenced_at_most_once;
        Alcotest.test_case "dedup retention is bounded" `Quick
          test_dedup_retention_bound;
        Alcotest.test_case "retry backoff plateaus in a long outage" `Quick
          test_backoff_plateaus_under_long_outage;
        Alcotest.test_case "reliable call rides out an outage" `Quick
          test_reliable_rides_out_an_outage;
        Alcotest.test_case "reliable call survives loss + duplication" `Quick
          test_reliable_survives_loss_and_dup;
      ] );
    ( "net.params",
      [
        Alcotest.test_case "b_flush (Eq. 2)" `Quick test_params_b_flush;
        Alcotest.test_case "diskless node" `Quick test_node_no_disk;
      ] );
  ]
