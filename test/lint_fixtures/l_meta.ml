(* Suppression-misuse plants: the lint's own bookkeeping rules.
   L000 — unknown rule id in an allow attribute;
   L001 — allow attribute with no justification text;
   L002 — justified suppression that never fires (stale allow). *)

let unknown_rule = (1 + 1 [@lint.allow "Z999 no such rule exists"])
let missing_justification = (2 + 2 [@lint.allow "D001"])
let stale_allow = (3 + 3 [@lint.allow "D002 nothing here draws randomness"])
