(* Planted P002: polymorphic comparison on a type carrying a float —
   NaN makes [=] non-reflexive, so deduplication and change detection
   built on it silently misbehave. *)

type sample = { s_time : float; s_value : int }

let same (a : sample) (b : sample) = a = b
let newest (a : sample) (b : sample) = if compare a b > 0 then a else b
