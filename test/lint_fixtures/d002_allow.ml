(* A justified D002 suppression.  Must produce a suppression record and
   no finding. *)

let entropy () =
  (Random.bits
     [@lint.allow
       "D002 fixture: one-off diagnostics tag, never feeds simulation \
        state"])
    ()
