(* A justified P002 suppression.  Must produce a suppression record and
   no finding. *)

type sample = { s_time : float; s_value : int }

(* note the extra parens: attributes bind tighter than infix operators,
   so [a = b [@attr]] would annotate [b] alone *)
let same (a : sample) (b : sample) =
  ((a = b)
  [@lint.allow
    "P002 fixture: s_time is never NaN here, produced by the simulated \
     clock which only adds finite deltas"])
