(* Time as a parameter (simulated clock), never read from the host.
   Must produce no findings. *)

let elapsed ~now ~since = now -. since
let deadline ~now ~timeout = now +. timeout
