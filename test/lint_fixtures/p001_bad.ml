(* Planted P001: [assert false] / [failwith] in RPC-reply match arms —
   the pre-PR 2 shape that turned protocol bugs into bare
   [Assert_failure] crashes with no endpoint or request context. *)

let size_of (r : Ccpfs.Meta_server.resp) =
  match r with
  | Ccpfs.Meta_server.Attrs a -> a.Ccpfs.Meta_server.size
  | Ccpfs.Meta_server.Ok -> failwith "unexpected Ok"
  | Ccpfs.Meta_server.Enoent -> assert false
