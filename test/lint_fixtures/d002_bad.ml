(* Planted D002: unseeded [Stdlib.Random] outside [Det_random] — the
   shape of the fuzz seeder bug where a raw draw made "same seed, same
   case" silently false. *)

let roll () = Random.int 6
let jitter () = Random.float 1.0
