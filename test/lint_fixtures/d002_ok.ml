(* Randomness drawn through the deterministic, seeded stream.  Must
   produce no findings. *)

let roll rng = Ccpfs_util.Det_random.int rng 6
let jitter rng = Ccpfs_util.Det_random.float rng 1.0
