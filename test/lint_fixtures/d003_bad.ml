(* Planted D003: host wall-clock reads outside bench/ — real time
   leaking into what should be simulated-time-only logic. *)

let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let coarse () = Unix.time ()
