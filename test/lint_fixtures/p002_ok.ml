(* Comparisons on immediate / float-free types are fine.  Must produce
   no findings. *)

type tag = { t_id : int; t_name : string }

let same_id (a : tag) (b : tag) = a.t_id = b.t_id
let named (a : tag) n = String.equal a.t_name n
let ordered a b = Int.compare a b <= 0
