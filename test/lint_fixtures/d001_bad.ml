(* Planted D001: the exact shape of the PR 4 regression — a raw
   [Hashtbl.fold] whose traversal order leaks into the returned list
   (the pre-fix [Client.group_by_stripe]).  The lint must flag both the
   fold and the iter below. *)

let group_by_stripe pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (stripe, iv) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl stripe) in
      Hashtbl.replace tbl stripe (iv :: cur))
    pairs;
  Hashtbl.fold (fun stripe ivs acc -> (stripe, List.rev ivs) :: acc) tbl []

let emit_all tbl out = Hashtbl.iter (fun k v -> out := (k, v) :: !out) tbl
