(* A justified D003 suppression.  Must produce a suppression record and
   no finding. *)

let wall () =
  (Unix.gettimeofday
     [@lint.allow
       "D003 fixture: wall-clock is the measured quantity, as in \
        exp_scale"])
    ()
