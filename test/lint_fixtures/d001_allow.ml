(* A justified D001 suppression: the fold computes an order-insensitive
   aggregate, so raw traversal order cannot be observed.  Must produce a
   suppression record and no finding. *)

let total tbl =
  (Hashtbl.fold
     [@lint.allow
       "D001 fixture: integer sum is commutative, traversal order cannot \
        be observed"])
    (fun _ v acc -> acc + v)
    tbl 0
