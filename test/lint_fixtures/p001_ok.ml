(* The PR 2 convention: impossible replies die through
   [Protocol_error.fail] with endpoint/request/reply context.  Must
   produce no findings. *)

let size_of (r : Ccpfs.Meta_server.resp) =
  match r with
  | Ccpfs.Meta_server.Attrs a -> a.Ccpfs.Meta_server.size
  | Ccpfs.Meta_server.Ok ->
      Ccpfs.Protocol_error.fail ~endpoint:"meta" ~request:"Stat" ~got:"Ok"
  | Ccpfs.Meta_server.Enoent ->
      Ccpfs.Protocol_error.fail ~endpoint:"meta" ~request:"Stat" ~got:"Enoent"

(* [assert false] over non-reply types is not P001's business. *)
let parity n = match n mod 2 with 0 -> `Even | 1 -> `Odd | _ -> assert false
