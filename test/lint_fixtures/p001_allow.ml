(* A justified P001 suppression on one arm.  Must produce a suppression
   record and no finding. *)

let size_of (r : Ccpfs.Meta_server.resp) =
  match r with
  | Ccpfs.Meta_server.Attrs a -> a.Ccpfs.Meta_server.size
  | Ccpfs.Meta_server.Ok | Ccpfs.Meta_server.Enoent ->
      (assert false
       [@lint.allow
         "P001 fixture: unreachable by construction in this harness, \
          scrutinee built one line above"])
