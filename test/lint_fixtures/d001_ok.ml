(* The prescribed D001 fix: sorted-key traversal via [Det_tbl].  Must
   produce no findings. *)

let group_by_stripe pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (stripe, iv) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl stripe) in
      Hashtbl.replace tbl stripe (iv :: cur))
    pairs;
  Ccpfs_util.Det_tbl.fold_sorted ~cmp:Int.compare
    (fun stripe ivs acc -> (stripe, List.rev ivs) :: acc)
    tbl []
  |> List.rev

(* Order-free table operations are fine without any ceremony. *)
let lookup tbl k = Hashtbl.find_opt tbl k
let count tbl = Hashtbl.length tbl
