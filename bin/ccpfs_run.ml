(* Command-line driver for the experiment reproductions:

     ccpfs_run list               enumerate experiments
     ccpfs_run run fig20          one experiment at its default scale
     ccpfs_run run fig20 -s 0.1   override the workload scale
     ccpfs_run all [-s SCALE]     the whole evaluation section *)

open Cmdliner

let scale_arg =
  let doc =
    "Workload scale factor; 1.0 reproduces the paper's data volumes, the \
     defaults shrink them to laptop-friendly sizes with the same shapes."
  in
  Arg.(value & opt (some float) None & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let check_arg =
  let doc =
    "Run under the protocol sanitizer: assert the DLM invariants on every \
     lock-server transition, audit client caches, analyze engine stalls \
     into wait-for graphs, and execute every scenario twice to verify \
     determinism."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let apply_check check = if check then Check.Sanitize.enable_all ()

let trace_arg =
  let doc =
    "Also record every simulated run as Chrome trace_event JSON written \
     to $(docv) — RPC and I/O spans, lock lifecycle instants, per-waiter \
     lock-wait attribution.  Open the file in Perfetto \
     (https://ui.perfetto.dev) or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let apply_trace trace = Option.iter Obs.Hub.request_trace trace

(* Post-run flush of everything the observability layer collected:
   the combined Chrome trace (when [--trace] was given) and the
   machine-readable result rows the harness accumulated. *)
let finish_obs () =
  (match Obs.Hub.flush_trace () with
  | Some (path, n) -> Printf.printf "\ntrace: wrote %d events to %s\n" n path
  | None -> ());
  if Obs.Results.count () > 0 then begin
    let n =
      Experiments.Registry.write_results ~path:"BENCH_experiments.json"
    in
    Printf.printf "results: wrote %d rows to BENCH_experiments.json\n" n
  end

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.t) ->
        Printf.printf "%-8s (scale %-4g)  %s\n" e.id e.default_scale e.title;
        Printf.printf "%-8s               paper: %s\n" "" e.paper_claim)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduced tables and figures")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run id scale check trace =
    apply_check check;
    apply_trace trace;
    match Experiments.Registry.find id with
    | Some e ->
        Experiments.Registry.run_one ?scale e;
        finish_obs ();
        `Ok ()
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; try `ccpfs_run list`" id )
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment")
    Term.(ret (const run $ id_arg $ scale_arg $ check_arg $ trace_arg))

(* A narrated protocol timeline: three clients contend for one stripe
   under a chosen policy, and every lock-server step is printed with its
   virtual timestamp — the fastest way to see early grant / early
   revocation / conversion actually happen. *)
let trace_cmd =
  let policy_arg =
    let doc = "DLM variant: seqdlm, basic, lustre or datatype." in
    Arg.(value & opt string "seqdlm" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let run policy_name trace =
    apply_trace trace;
    let policy =
      match policy_name with
      | "seqdlm" -> Some Seqdlm.Policy.seqdlm
      | "basic" -> Some Seqdlm.Policy.dlm_basic
      | "lustre" -> Some Seqdlm.Policy.dlm_lustre
      | "datatype" -> Some Seqdlm.Policy.dlm_datatype
      | _ -> None
    in
    match policy with
    | None -> `Error (false, "unknown policy " ^ policy_name)
    | Some policy ->
        let cl = Ccpfs.Cluster.create ~policy ~n_servers:1 ~n_clients:3 () in
        (match Obs.Hub.new_sink ~label:("trace:" ^ policy.Seqdlm.Policy.name) ()
         with
        | Some sink ->
            Dessim.Engine.set_trace_sink (Ccpfs.Cluster.engine cl) sink
        | None -> ());
        Seqdlm.Lock_server.set_tracer (Ccpfs.Cluster.lock_server cl 0)
          (fun now ev ->
            Format.printf "%10.1fus  %a@." (now *. 1e6)
              Seqdlm.Lock_server.pp_trace_event ev);
        Format.printf "# three clients, two conflicting writes each, then a read (%s)@."
          policy.Seqdlm.Policy.name;
        for i = 0 to 2 do
          Ccpfs.Cluster.spawn_client cl i ~name:(Printf.sprintf "c%d" i)
            (fun c ->
              let f = Ccpfs.Client.open_file c ~create:true "/traced" in
              for _ = 1 to 2 do
                Ccpfs.Client.write c f ~off:0 ~len:65536
              done;
              if i = 0 then ignore (Ccpfs.Client.read c f ~off:0 ~len:65536))
        done;
        Ccpfs.Cluster.run cl;
        finish_obs ();
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a narrated lock-protocol timeline for a tiny scenario")
    Term.(ret (const run $ policy_arg $ trace_arg))

let all_cmd =
  let run scale check trace =
    apply_check check;
    apply_trace trace;
    Experiments.Registry.run_all ?scale ();
    finish_obs ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run $ scale_arg $ check_arg $ trace_arg)

(* Model-checking lite: replay a three-client write-contention scenario
   under every same-timestamp tie-break ordering the event heap allows,
   asserting the protocol invariants after each schedule. *)
let explore_cmd =
  let max_arg =
    let doc = "Bound on the number of schedules to explore." in
    Arg.(value & opt int 10_000 & info [ "m"; "max-schedules" ] ~docv:"N" ~doc)
  in
  let run max_schedules =
    match Check.Scenarios.explore_contention ~max_schedules () with
    | r ->
        Format.printf
          "three-client NBW contention, all 6 arrival orders: %a, every \
           schedule invariant-clean@."
          Check.Explore.pp_result r;
        if r.Check.Explore.complete then `Ok ()
        else `Error (false, "schedule bound hit; raise --max-schedules")
    | exception (Check.Explore.Schedule_failed _ as e) ->
        `Error (false, Printexc.to_string e)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively model-check a small contention scenario over all \
          event-tie orderings")
    Term.(ret (const run $ max_arg))

(* Deterministic simulation fuzzing: randomized cluster runs (seeded
   configs, workloads and fault schedules) under the shadow-file and
   analytic oracles, with greedy shrinking of any failure into a
   replayable reproducer. *)
let fuzz_cmd =
  let count_arg =
    let doc = "Number of consecutive seeds to run." in
    Arg.(value & opt (some int) None & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Base seed (default: \\$(b,CCPFS_SEED) or the built-in default).  \
       With no $(b,--count), runs exactly this one seed — how a failure \
       printed by CI is replayed."
    in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let shrink_arg =
    let doc = "Re-run budget of the greedy minimizer applied to a failure." in
    Arg.(value & opt int 150 & info [ "shrink" ] ~docv:"BUDGET" ~doc)
  in
  let inject_arg =
    let doc =
      "Plant a deliberate bug to prove the oracles bite: $(b,sn-reuse) \
       (lock servers reissue an old sequence number) or $(b,drop-block) \
       (data servers silently drop flushed blocks)."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"BUG" ~doc)
  in
  let faults_arg =
    let doc =
      "Force online fault schedules: every case gets nonzero message \
       loss/duplication on the fenced transport plus at least one \
       mid-phase lock-server crash, recovered live by the lib/ha \
       failover layer while client requests are in flight."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let run count seed shrink inject_name faults =
    let inject =
      match inject_name with
      | None -> Ok None
      | Some s -> (
          match Fuzz.Exec.inject_of_string s with
          | Some i -> Ok (Some i)
          | None -> Error (Printf.sprintf "unknown --inject %S" s))
    in
    match inject with
    | Error e -> `Error (false, e)
    | Ok inject ->
        let base = match seed with Some s -> s | None -> Fuzz.Seed.base () in
        let count =
          match (count, seed) with
          | Some n, _ -> n
          | None, Some _ -> 1
          | None, None -> 100
        in
        let progress k total =
          if k mod 25 = 0 || k = total then
            Printf.printf "fuzz: %d/%d seeds ok\n%!" k total
        in
        Printf.printf "fuzz: seeds %d..%d%s%s\n%!" base
          (base + count - 1)
          (match inject with
          | Some i -> " (injecting " ^ Fuzz.Exec.inject_to_string i ^ ")"
          | None -> "")
          (if faults then " (forced online faults)" else "");
        let summary =
          Fuzz.Driver.run_range ?inject ~faults ~shrink_budget:shrink
            ~progress ~base ~count ()
        in
        Obs.Results.add (Fuzz.Driver.result_row ~base summary);
        let n =
          Obs.Results.write ~append:true ~schema:"ccpfs.fuzz/1"
            ~path:"BENCH_fuzz.json" ()
        in
        Printf.printf "results: %d row(s) in BENCH_fuzz.json\n" n;
        (match summary.failure with
        | None ->
            Printf.printf
              "fuzz: %d case(s) passed (%d simulated, %d analytic), all \
               oracles clean\n"
              summary.tested summary.sims summary.analytics;
            `Ok ()
        | Some f ->
            Printf.printf "\nfuzz: FAILURE at seed %d\n  %s\n" f.seed f.reason;
            Printf.printf "replay: %s\n" (Fuzz.Driver.repro_hint f);
            Format.printf "minimized (%d rerun(s)): %s@.%a@."
              f.shrink_reruns f.shrunk_reason Fuzz.Case.pp f.shrunk;
            Obs.Json.to_file "FUZZ_repro.json" (Fuzz.Driver.repro_json f);
            Printf.printf
              "wrote FUZZ_repro.json (minimized case + OCaml test skeleton)\n";
            `Error (false, "fuzz failure"))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the simulated cluster: randomized configs, workloads and \
          fault schedules under determinism, invariant, shadow-file and \
          analytic oracles")
    Term.(
      ret (const run $ count_arg $ seed_arg $ shrink_arg $ inject_arg
           $ faults_arg))

let () =
  let info =
    Cmd.info "ccpfs_run" ~version:"1.0.0"
      ~doc:"Reproduce the SeqDLM / ccPFS evaluation (SC '22)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; trace_cmd; explore_cmd; fuzz_cmd ]))
