(* ccpfs_lint — the determinism & protocol lint (DESIGN.md §12).

   Scans the given roots (directories or .cmt files, usually the built
   lib/ and bin/ trees) for .cmt files, runs Lint.Analyze over them and
   prints the report.  Exit status: 0 clean, 1 findings, 2 usage or
   internal error.  `dune build @lint` drives it over the whole repo. *)

let usage () =
  prerr_endline
    "usage: ccpfs_lint [--report FILE] [--explain] ROOT...\n\
     \n\
     Lints the .cmt files found under each ROOT.\n\
     \  --report FILE   also write the report to FILE\n\
     \  --explain       append each fired rule's rationale";
  exit 2

let () =
  let report_file = ref None in
  let explain = ref false in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--report" :: file :: rest ->
        report_file := Some file;
        parse rest
    | "--report" :: [] -> usage ()
    | "--explain" :: rest ->
        explain := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then usage ();
  match Lint.Analyze.run_roots roots with
  | exception e ->
      Printf.eprintf "ccpfs_lint: internal error: %s\n" (Printexc.to_string e);
      exit 2
  | report ->
      let text = Lint.Report.render ~explain:!explain report in
      print_string text;
      (match !report_file with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc text;
          close_out oc);
      if report.findings <> [] then exit 1
