(* Checkpointing a simulation to a shared file — the motivating HPC
   workload.  Ranks dump interleaved state slices (N-1 strided) between
   compute phases; the time the application sees is the parallel-IO time,
   which is where SeqDLM's early grant pays off.

     dune exec examples/checkpoint.exe *)

open Ccpfs_util
open Ccpfs

let ranks = 16
let xfer = 256 * Units.kib
let blocks_per_rank = 64
let stripes = 4

let checkpoint_once ~policy =
  let cluster =
    Cluster.create ~policy ~n_servers:stripes ~n_clients:ranks ()
  in
  for rank = 0 to ranks - 1 do
    Cluster.spawn_client cluster rank ~name:(Printf.sprintf "rank%d" rank)
      (fun c ->
        let layout = Layout.v ~stripe_count:stripes () in
        let f = Client.open_file c ~create:true ~layout "/checkpoint.0" in
        List.iter
          (fun (a : Workloads.Access.t) ->
            Client.write c f ~off:a.off ~len:a.len)
          (Workloads.Ior.accesses ~pattern:Workloads.Access.N1_strided
             ~nprocs:ranks ~rank ~xfer ~blocks:blocks_per_rank))
  done;
  Cluster.run cluster;
  let pio = Cluster.now cluster in
  Cluster.fsync_all cluster;
  (pio, Cluster.now cluster, Cluster.total_bytes_written cluster)

let () =
  Printf.printf "checkpoint: %d ranks x %d x %s (N-1 strided, %d stripes)\n\n"
    ranks blocks_per_rank (Units.bytes_to_string xfer) stripes;
  let report name (pio, total, bytes) =
    Printf.printf
      "%-12s application-visible checkpoint time %-8s (%.2f GB/s), durable \
       after %s\n"
      name
      (Units.seconds_to_string pio)
      (float_of_int bytes /. pio /. 1e9)
      (Units.seconds_to_string total)
  in
  let seq = checkpoint_once ~policy:Seqdlm.Policy.seqdlm in
  let lus = checkpoint_once ~policy:Seqdlm.Policy.dlm_lustre in
  report "SeqDLM" seq;
  report "DLM-Lustre" lus;
  let (pio_s, _, _), (pio_l, _, _) = (seq, lus) in
  Printf.printf
    "\nthe compute phase resumes %.1fx sooner under SeqDLM; flushing \
     continues in the background either way\n"
    (pio_l /. pio_s)
