examples/producer_consumer.ml: Ccpfs Ccpfs_util Client Cluster Condition Content Dessim Engine List Printf Units
