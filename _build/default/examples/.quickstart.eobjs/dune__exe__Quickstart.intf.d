examples/quickstart.mli:
