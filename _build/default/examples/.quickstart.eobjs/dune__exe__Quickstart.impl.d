examples/quickstart.ml: Ccpfs Ccpfs_util Client Cluster Interval Layout List Printf Units
