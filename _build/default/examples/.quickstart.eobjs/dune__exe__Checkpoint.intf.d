examples/checkpoint.mli:
