examples/custom_dlm.mli:
