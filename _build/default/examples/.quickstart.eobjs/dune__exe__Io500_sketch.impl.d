examples/io500_sketch.ml: Ccpfs Ccpfs_util Client Cluster Layout List Printf Seqdlm Units Workloads
