examples/custom_dlm.ml: Array Ccpfs_util Dessim Engine Interval List Lock_client Lock_server Mode Netsim Policy Printf Seqdlm Units
