examples/checkpoint.ml: Ccpfs Ccpfs_util Client Cluster Layout List Printf Seqdlm Units Workloads
