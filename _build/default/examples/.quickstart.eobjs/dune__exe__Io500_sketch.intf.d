examples/io500_sketch.mli:
