(* A concurrent producer/consumer workflow over a shared file — the
   overlapping-IO pattern the introduction motivates: the producer keeps
   appending records while the consumer reads finished regions, and the
   distributed lock manager alone keeps the consumer's view coherent
   (reads force the producer's cached data out; no fsync, no barriers).

     dune exec examples/producer_consumer.exe *)

open Ccpfs_util
open Ccpfs
open Dessim

let record = 128 * Units.kib
let records = 24

let () =
  let cluster = Cluster.create ~n_servers:1 ~n_clients:2 () in
  let eng = Cluster.engine cluster in
  let produced = Condition.create eng in
  let count = ref 0 in

  Cluster.spawn_client cluster 0 ~name:"producer" (fun c ->
      let f = Client.open_file c ~create:true "/stream" in
      for _ = 1 to records do
        let off = Client.append c f ~len:record in
        ignore off;
        incr count;
        Condition.broadcast produced;
        (* Simulated compute between records. *)
        Engine.sleep eng 2e-3
      done);

  Cluster.spawn_client cluster 1 ~name:"consumer" (fun c ->
      let f = Client.open_file c "/stream" in
      let consumed = ref 0 in
      while !consumed < records do
        Condition.wait_until produced (fun () -> !count > !consumed);
        let next = !consumed in
        let segs = Client.read c f ~off:(next * record) ~len:record in
        let ok =
          segs <> []
          && List.for_all
               (fun (_, _, tag) ->
                 match tag with
                 | Some t -> t.Content.writer = 0
                 | None -> false)
               segs
        in
        Printf.printf "t=%-8s consumer read record %2d: %s\n"
          (Units.seconds_to_string (Engine.now eng))
          next
          (if ok then "coherent" else "STALE/HOLE!");
        incr consumed
      done);

  Cluster.run cluster;
  let stats = Cluster.sum_lock_stats cluster in
  Printf.printf
    "\n%d records handed over through lock revocations alone (%d revocation \
     callbacks, %d upgrades)\n"
    records stats.revokes_sent stats.upgrades
