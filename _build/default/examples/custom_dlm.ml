(* Using the SeqDLM library without ccPFS: the lock manager protects any
   resource you define.  Here three workers serialise updates to a
   shared "log" object under NBW locks and we watch early grant let the
   next holder in while the previous one is still writing back.

     dune exec examples/custom_dlm.exe *)

open Ccpfs_util
open Dessim
open Seqdlm

let params = Netsim.Params.default
let resource = 1

let () =
  let eng = Engine.create () in
  let server_node = Netsim.Node.create eng params ~name:"lockserver" () in
  let server =
    Lock_server.create eng params ~node:server_node ~name:"ls"
      ~policy:Policy.seqdlm
  in
  let writeback_log = ref [] in
  let workers =
    Array.init 3 (fun i ->
        let node = Netsim.Node.create eng params ~name:(Printf.sprintf "w%d" i) () in
        let hooks =
          {
            (* "Flushing" for a custom resource: 2 ms of write-back that
               early grant moves off the next holder's critical path. *)
            Lock_client.flush =
              (fun ~rid:_ ~ranges:_ ->
                Engine.sleep eng 2e-3;
                writeback_log := (i, Engine.now eng) :: !writeback_log);
            has_dirty = (fun ~rid:_ ~ranges:_ -> true);
            invalidate = (fun ~rid:_ ~ranges:_ -> ());
          }
        in
        Lock_client.create eng params ~node ~client_id:i
          ~route:(fun _ -> server)
          ~hooks)
  in
  for i = 0 to 2 do
    Engine.spawn eng ~name:(Printf.sprintf "worker%d" i) (fun () ->
        for round = 1 to 3 do
          Lock_client.with_lock workers.(i) ~rid:resource ~mode:Mode.NBW
            ~ranges:[ Interval.to_eof ~lo:0 ]
            (fun h ->
              Printf.printf "t=%-8s worker %d holds the log (SN %d%s)\n"
                (Units.seconds_to_string (Engine.now eng))
                i (Lock_client.sn h)
                (if Lock_client.is_canceling h then ", early-revoked" else ""));
          ignore round
        done)
  done;
  Engine.run eng;
  let stats = Lock_server.stats server in
  Printf.printf
    "\n%d grants, %d early grants (handed over before write-back finished), \
     %d early revocations, %d callbacks\n"
    stats.grants stats.early_grants stats.early_revocations stats.revokes_sent;
  Printf.printf "write-backs completed: %d\n" (List.length !writeback_log)
