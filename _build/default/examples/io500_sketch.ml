(* An IO500-flavoured score sheet: the ior-easy (N-N, large aligned
   writes) and ior-hard (N-1 strided, 47008-byte unaligned writes)
   write phases, run under SeqDLM and under DLM-Lustre on the same
   simulated cluster, with the geometric-mean-style summary the
   benchmark popularised.  ior-easy barely moves — the lock manager is
   invisible without contention — while ior-hard is where SeqDLM earns
   its keep.

     dune exec examples/io500_sketch.exe *)

open Ccpfs_util
open Ccpfs

let clients = 16
let easy_xfer = Units.mib
let easy_blocks = 64
let hard_xfer = 47_008
let hard_blocks = 512

let phase ~policy ~pattern ~xfer ~blocks ~stripes =
  let cl = Cluster.create ~policy ~n_servers:stripes ~n_clients:clients () in
  for rank = 0 to clients - 1 do
    Cluster.spawn_client cl rank ~name:(Printf.sprintf "r%d" rank) (fun c ->
        let layout = Layout.v ~stripe_count:stripes () in
        let f =
          Client.open_file c ~create:true ~layout
            (Workloads.Ior.file_of_rank ~pattern ~rank)
        in
        List.iter
          (fun (a : Workloads.Access.t) -> Client.write c f ~off:a.off ~len:a.len)
          (Workloads.Ior.accesses ~pattern ~nprocs:clients ~rank ~xfer ~blocks))
  done;
  Cluster.run cl;
  let pio = Cluster.now cl in
  float_of_int (Cluster.total_bytes_written cl) /. pio /. 1e9

let () =
  Printf.printf "IO500-style write phases, %d clients (GiB/s, higher is better)\n\n"
    clients;
  Printf.printf "%-12s %14s %14s %14s\n" "DLM" "ior-easy" "ior-hard" "score (geo-mean)";
  List.iter
    (fun policy ->
      let easy =
        phase ~policy ~pattern:Workloads.Access.N_n ~xfer:easy_xfer
          ~blocks:easy_blocks ~stripes:1
      in
      let hard =
        phase ~policy ~pattern:Workloads.Access.N1_strided ~xfer:hard_xfer
          ~blocks:hard_blocks ~stripes:4
      in
      Printf.printf "%-12s %14.2f %14.2f %14.2f\n" policy.Seqdlm.Policy.name
        easy hard
        (sqrt (easy *. hard)))
    [ Seqdlm.Policy.seqdlm; Seqdlm.Policy.dlm_lustre; Seqdlm.Policy.dlm_basic ];
  Printf.printf
    "\nior-easy is contention-free (the DLM costs nothing); ior-hard is the\n\
     unaligned shared-file pattern where early grant changes the score.\n"
