(* Quickstart: bring up a small simulated ccPFS cluster, write a shared
   file from several clients under SeqDLM, read it back coherently, and
   look at what the lock manager did.

     dune exec examples/quickstart.exe *)

open Ccpfs_util
open Ccpfs

let () =
  (* A 2-data-server, 4-client cluster with the paper's testbed
     parameters and the SeqDLM policy (the default). *)
  let cluster = Cluster.create ~n_servers:2 ~n_clients:4 () in

  (* Every client writes its own interleaved slots of a shared 2-stripe
     file — the N-1 strided pattern that cripples traditional DLMs. *)
  let xfer = 64 * Units.kib and slots = 32 in
  for i = 0 to 3 do
    Cluster.spawn_client cluster i ~name:(Printf.sprintf "writer%d" i)
      (fun c ->
        let layout = Layout.v ~stripe_count:2 () in
        let f = Client.open_file c ~create:true ~layout "/shared.dat" in
        for k = 0 to slots - 1 do
          let slot = (k * 4) + i in
          Client.write c f ~off:(slot * xfer) ~len:xfer
        done)
  done;
  Cluster.run cluster;
  let pio = Cluster.now cluster in

  (* Reads take PR locks, which force conflicting writers to flush:
     the reader sees every byte without any explicit synchronisation. *)
  let holes = ref 0 and bytes = ref 0 in
  Cluster.spawn_client cluster 0 ~name:"reader" (fun c ->
      let f = Client.open_file c "/shared.dat" in
      Client.read c f ~off:0 ~len:(4 * slots * xfer)
      |> List.iter (fun (_, iv, tag) ->
             bytes := !bytes + Interval.length iv;
             if tag = None then incr holes));
  Cluster.run cluster;

  let stats = Cluster.sum_lock_stats cluster in
  Printf.printf "wrote %s from 4 clients in %s of simulated time\n"
    (Units.bytes_to_string (Cluster.total_bytes_written cluster))
    (Units.seconds_to_string pio);
  Printf.printf "read back %s, holes: %d\n" (Units.bytes_to_string !bytes) !holes;
  Printf.printf
    "lock server: %d grants (%d early), %d early revocations, %d revocation \
     callbacks, %d upgrades, %d downgrades\n"
    stats.grants stats.early_grants stats.early_revocations stats.revokes_sent
    stats.upgrades stats.downgrades;
  Cluster.check_invariants cluster;
  print_endline "invariants hold — done."
