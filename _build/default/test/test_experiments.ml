(* Behavioural tests of the experiment harness: at tiny scale, the
   paper's qualitative claims must already hold (who wins, in which
   direction) — these are the assertions behind the bench output. *)

open Ccpfs_util

let seg_streams ~clients ~xfer ~blocks =
  Array.init clients (fun rank ->
      ( "/t",
        Workloads.Ior.accesses ~pattern:Workloads.Access.N1_segmented
          ~nprocs:clients ~rank ~xfer ~blocks ))

let strided_streams ~clients ~xfer ~blocks =
  Array.init clients (fun rank ->
      ( "/t",
        Workloads.Ior.accesses ~pattern:Workloads.Access.N1_strided
          ~nprocs:clients ~rank ~xfer ~blocks ))

let test_harness_pio_excludes_async_flush () =
  (* A single client writing into the cache finishes its PIO long before
     the data is durable: F must carry the flush cost. *)
  let streams =
    [| ("/a", List.init 64 (fun k -> { Workloads.Access.off = k * Units.mib;
                                       len = Units.mib }) ) |]
  in
  let r = Experiments.Harness.run_streams ~servers:1 ~stripes:1 ~streams () in
  Alcotest.(check bool) "F dominates PIO for cached writes" true (r.f > r.pio);
  Alcotest.(check int) "bytes accounted" (64 * Units.mib) r.bytes

let test_seqdlm_beats_baselines_on_strided () =
  let run policy =
    (Experiments.Harness.run_streams ~policy ~servers:1 ~stripes:1
       ~streams:(strided_streams ~clients:8 ~xfer:(64 * Units.kib) ~blocks:40)
       ())
      .Experiments.Harness.pio
  in
  let seq = run Seqdlm.Policy.seqdlm in
  let basic = run Seqdlm.Policy.dlm_basic in
  let lustre = run Seqdlm.Policy.dlm_lustre in
  Alcotest.(check bool)
    (Printf.sprintf "SeqDLM (%.4fs) at least 2x faster than DLM-basic (%.4fs)"
       seq basic)
    true
    (basic > 2. *. seq);
  Alcotest.(check bool) "and than DLM-Lustre" true (lustre > 2. *. seq)

let test_low_contention_parity () =
  (* Table III's claim: segmented writes cost the same under all three
     policies (within 10%). *)
  let run policy =
    (Experiments.Harness.run_streams ~policy ~servers:1 ~stripes:1
       ~streams:(seg_streams ~clients:8 ~xfer:(64 * Units.kib) ~blocks:40)
       ())
      .Experiments.Harness.pio
  in
  let seq = run Seqdlm.Policy.seqdlm in
  let basic = run Seqdlm.Policy.dlm_basic in
  Alcotest.(check bool)
    (Printf.sprintf "parity (SeqDLM %.4fs vs basic %.4fs)" seq basic)
    true
    (seq < 1.1 *. basic && basic < 1.1 *. seq)

let test_early_grant_decouples_flush () =
  (* Fig. 20(b)'s claim, in miniature: under strided contention the
     SeqDLM PIO share of total IO time is far below the baselines'. *)
  let share policy =
    let r =
      Experiments.Harness.run_streams ~policy ~servers:1 ~stripes:1
        ~streams:(strided_streams ~clients:8 ~xfer:(256 * Units.kib) ~blocks:20)
        ()
    in
    r.Experiments.Harness.pio /. (r.pio +. r.f)
  in
  let seq = share Seqdlm.Policy.seqdlm in
  let basic = share Seqdlm.Policy.dlm_basic in
  Alcotest.(check bool)
    (Printf.sprintf "PIO share: SeqDLM %.0f%% < basic %.0f%%" (seq *. 100.)
       (basic *. 100.))
    true (seq < basic)

let test_er_improves_small_writes () =
  let tp policy =
    let streams =
      Array.init 8 (fun _ ->
          ("/c", List.init 50 (fun _ -> { Workloads.Access.off = 0; len = 64 * Units.kib })))
    in
    let r =
      Experiments.Harness.run_streams ~policy ~mode:Seqdlm.Mode.NBW ~lock_whole_range:true
        ~servers:1 ~stripes:1 ~streams ()
    in
    float_of_int r.Experiments.Harness.ops /. r.pio
  in
  let er = tp Seqdlm.Policy.seqdlm in
  let no_er = tp (Seqdlm.Policy.without_early_revocation Seqdlm.Policy.seqdlm) in
  Alcotest.(check bool)
    (Printf.sprintf "ER throughput %.0f > no-ER %.0f" er no_er)
    true (er > no_er)

let test_scaled_helper () =
  Alcotest.(check int) "floor at 1" 1 (Experiments.Harness.scaled ~scale:0.001 100);
  Alcotest.(check int) "rounds" 5 (Experiments.Harness.scaled ~scale:0.05 100);
  Alcotest.(check int) "identity" 100 (Experiments.Harness.scaled ~scale:1.0 100)

let test_registry_complete () =
  let ids = List.map (fun (e : Experiments.Registry.t) -> e.id)
      Experiments.Registry.all
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry has " ^ id) true (List.mem id ids))
    [ "model"; "fig04"; "fig05"; "fig17"; "fig18"; "fig19"; "table3";
      "fig20"; "fig21"; "fig23"; "fig24"; "safety" ];
  Alcotest.(check bool) "find works" true
    (Experiments.Registry.find "fig20" <> None);
  Alcotest.(check bool) "unknown id" true
    (Experiments.Registry.find "fig99" = None)

let test_model_agrees_with_sim () =
  (* The Eq. (1) validation inside exp_model, as an assertion. *)
  let d = Units.mib and n = 8 in
  let params =
    { Netsim.Params.default with b_mem = infinity; client_io_overhead = 0. }
  in
  let streams =
    Array.init n (fun _ -> ("/v", [ { Workloads.Access.off = 0; len = d } ]))
  in
  let r =
    Experiments.Harness.run_streams ~params ~policy:Seqdlm.Policy.dlm_basic
      ~mode:Seqdlm.Mode.PW ~servers:1 ~stripes:1 ~streams ()
  in
  let model = Analytic.Model.bandwidth_exact params ~n ~d in
  let ratio = r.bandwidth /. model in
  Alcotest.(check bool)
    (Printf.sprintf "sim within 15%% of Eq. 1 (ratio %.2f)" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

let suite =
  [
    ( "experiments.harness",
      [
        Alcotest.test_case "PIO excludes async flushing" `Quick
          test_harness_pio_excludes_async_flush;
        Alcotest.test_case "scaled helper" `Quick test_scaled_helper;
        Alcotest.test_case "registry covers all artefacts" `Quick
          test_registry_complete;
      ] );
    ( "experiments.claims",
      [
        Alcotest.test_case "SeqDLM beats baselines on strided" `Slow
          test_seqdlm_beats_baselines_on_strided;
        Alcotest.test_case "low-contention parity (Table III)" `Quick
          test_low_contention_parity;
        Alcotest.test_case "early grant decouples flushing (Fig. 20b)" `Quick
          test_early_grant_decouples_flush;
        Alcotest.test_case "ER improves small writes (Fig. 18)" `Quick
          test_er_improves_small_writes;
        Alcotest.test_case "simulator matches Eq. 1" `Quick
          test_model_agrees_with_sim;
      ] );
  ]
