test/test_net.ml: Alcotest Dessim Engine Netsim Node Params Printf Rpc
