test/test_meta.ml: Alcotest Ccpfs Dessim Engine Layout Meta_server Netsim
