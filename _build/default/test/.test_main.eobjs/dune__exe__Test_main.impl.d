test/test_main.ml: Alcotest List Test_analytic Test_chaos Test_dlm Test_experiments Test_meta Test_net Test_pfs Test_recovery Test_sim Test_util Test_workloads
