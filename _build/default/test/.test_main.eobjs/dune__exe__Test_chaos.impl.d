test/test_chaos.ml: Array Ccpfs Ccpfs_util Client Cluster Config Content Hashtbl Layout List Netsim Printf QCheck QCheck_alcotest Seqdlm String Units
