test/test_experiments.ml: Alcotest Analytic Array Ccpfs_util Experiments List Netsim Printf Seqdlm Units Workloads
