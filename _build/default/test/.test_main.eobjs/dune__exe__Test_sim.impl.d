test/test_sim.ml: Alcotest Condition Dessim Engine Ivar List Mailbox Printf Resource Semaphore
