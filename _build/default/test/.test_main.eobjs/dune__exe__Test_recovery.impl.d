test/test_recovery.ml: Alcotest Ccpfs Ccpfs_util Client Cluster Config Content Data_server Dessim Engine Extent_map Int Interval Layout List Netsim Option Printf Seqdlm Units
