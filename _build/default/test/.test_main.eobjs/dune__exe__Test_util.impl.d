test/test_util.ml: Alcotest Array Ccpfs_util Content Det_random Extent_map Gen Int Interval List Option Print Printf QCheck QCheck_alcotest Stats String Table Test Units
