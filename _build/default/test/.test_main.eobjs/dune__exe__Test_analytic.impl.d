test/test_analytic.ml: Alcotest Analytic Gen Model Netsim Params Printf QCheck QCheck_alcotest Test
