test/test_workloads.ml: Access Alcotest Ccpfs_util Extent_map Gen Int Interval Ior List Printf QCheck QCheck_alcotest Seqdlm Test Tile_io Vpic Workloads
