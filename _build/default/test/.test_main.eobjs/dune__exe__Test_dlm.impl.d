test/test_dlm.ml: Alcotest Array Ccpfs_util Dessim Engine Gen Hashtbl Interval Ivar Lcm List Lock_client Lock_server Mode Netsim Policy Print Printf QCheck QCheck_alcotest Seqdlm String Test Types
