(* Direct tests of the namespace service (the NFS stand-in). *)

open Dessim
open Ccpfs

let params = Netsim.Params.default

let with_meta f =
  let eng = Engine.create () in
  let node = Netsim.Node.create eng params ~name:"meta" () in
  let client = Netsim.Node.create eng params ~name:"c" () in
  let meta = Meta_server.create eng params ~node in
  let ep = Meta_server.endpoint meta in
  Engine.spawn eng ~name:"test" (fun () ->
      f meta (fun req -> Netsim.Rpc.call ep ~src:client req));
  Engine.run eng

let layout = Layout.v ~stripe_count:2 ()

let test_create_open_stat () =
  with_meta (fun meta call ->
      (match call (Meta_server.Open { path = "/a"; create = true; layout }) with
      | Meta_server.Attrs a ->
          Alcotest.(check int) "first fid" 1 a.fid;
          Alcotest.(check int) "empty" 0 a.size
      | _ -> Alcotest.fail "expected attrs");
      (match call (Meta_server.Open { path = "/a"; create = true; layout }) with
      | Meta_server.Attrs a -> Alcotest.(check int) "same fid on reopen" 1 a.fid
      | _ -> Alcotest.fail "expected attrs");
      (match call (Meta_server.Open { path = "/b"; create = true; layout }) with
      | Meta_server.Attrs a -> Alcotest.(check int) "next fid" 2 a.fid
      | _ -> Alcotest.fail "expected attrs");
      Alcotest.(check int) "two files" 2 (Meta_server.file_count meta))

let test_enoent () =
  with_meta (fun _ call ->
      (match call (Meta_server.Open { path = "/nope"; create = false; layout })
       with
      | Meta_server.Enoent -> ()
      | _ -> Alcotest.fail "expected Enoent");
      match call (Meta_server.Stat { fid = 99 }) with
      | Meta_server.Enoent -> ()
      | _ -> Alcotest.fail "expected Enoent on unknown fid")

let test_size_semantics () =
  with_meta (fun _ call ->
      (match call (Meta_server.Open { path = "/s"; create = true; layout }) with
      | Meta_server.Attrs _ -> ()
      | _ -> Alcotest.fail "create failed");
      let size () =
        match call (Meta_server.Stat { fid = 1 }) with
        | Meta_server.Attrs a -> a.size
        | _ -> Alcotest.fail "stat failed"
      in
      ignore (call (Meta_server.Update_size { fid = 1; size = 100 }));
      Alcotest.(check int) "grew" 100 (size ());
      (* Update_size only grows (concurrent appenders race upward). *)
      ignore (call (Meta_server.Update_size { fid = 1; size = 50 }));
      Alcotest.(check int) "no shrink via update" 100 (size ());
      (* Set_size (truncate) may shrink. *)
      ignore (call (Meta_server.Set_size { fid = 1; size = 30 }));
      Alcotest.(check int) "truncated" 30 (size ()))

let suite =
  [
    ( "pfs.meta",
      [
        Alcotest.test_case "create / reopen / fids" `Quick test_create_open_stat;
        Alcotest.test_case "enoent" `Quick test_enoent;
        Alcotest.test_case "size semantics" `Quick test_size_semantics;
      ] );
  ]
