open Netsim

type terms = { t1 : float; t2 : float; t3 : float }

let b_flush (p : Params.t) = Params.b_flush p

let terms (p : Params.t) ~d =
  let df = float_of_int d in
  {
    t1 = 1. /. (p.server_ops *. df);
    t2 = p.rtt /. df;
    t3 = 1. /. b_flush p;
  }

let dominant_term t =
  if t.t3 >= t.t1 && t.t3 >= t.t2 then `T3
  else if t.t2 >= t.t1 then `T2
  else `T1

let bandwidth_exact (p : Params.t) ~n ~d =
  let nf = float_of_int n and df = float_of_int d in
  nf *. df
  /. ((nf /. p.server_ops)
     +. ((nf -. 1.) *. p.rtt)
     +. ((nf -. 1.) *. df /. b_flush p))

let bandwidth_approx p ~d =
  let t = terms p ~d in
  1. /. (t.t1 +. t.t2 +. t.t3)

let bandwidth_no_flush (p : Params.t) ~n ~d =
  let nf = float_of_int n and df = float_of_int d in
  nf *. df /. ((nf /. p.server_ops) +. ((nf -. 1.) *. p.rtt))
