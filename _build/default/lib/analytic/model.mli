(** The closed-form cost model of §II-C.

    For N fully-conflicting writes of D bytes on one stripe under a
    traditional DLM, Eq. (1) bounds the aggregate bandwidth by three
    per-byte cost terms: ① 1/(OPS·D) for lock-request service, ② RTT/D
    for the serialized revocation round-trips, ③ 1/B_flush for the
    serialized data flushing, with B_flush from Eq. (2).  The paper's
    point — and this module's {!dominant_term} — is that ③ dwarfs ① and
    ② on real hardware, which is exactly what early grant removes. *)

type terms = {
  t1 : float;  (** ① = 1/(OPS·D), seconds/byte *)
  t2 : float;  (** ② = RTT/D, seconds/byte *)
  t3 : float;  (** ③ = 1/B_flush, seconds/byte *)
}

val b_flush : Netsim.Params.t -> float
(** Eq. (2). *)

val terms : Netsim.Params.t -> d:int -> terms

val dominant_term : terms -> [ `T1 | `T2 | `T3 ]

val bandwidth_exact : Netsim.Params.t -> n:int -> d:int -> float
(** Eq. (1) without the large-N approximation:
    N·D / (N/OPS + (N−1)·RTT + (N−1)·D/B_flush). *)

val bandwidth_approx : Netsim.Params.t -> d:int -> float
(** Eq. (1)'s approximation 1/(① + ② + ③). *)

val bandwidth_no_flush : Netsim.Params.t -> n:int -> d:int -> float
(** Eq. (1) with term ③ removed — the bound once early grant decouples
    data flushing (revocation becomes the bottleneck). *)
