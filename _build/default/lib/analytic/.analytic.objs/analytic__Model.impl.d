lib/analytic/model.ml: Netsim Params
