lib/analytic/model.mli: Netsim
