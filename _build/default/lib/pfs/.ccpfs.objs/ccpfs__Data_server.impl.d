lib/pfs/data_server.ml: Ccpfs_util Condition Config Content Dessim Engine Extent_map Hashtbl Int Interval List Netsim Node Option Params Resource Rpc Seqdlm
