lib/pfs/client_cache.ml: Ccpfs_util Condition Config Content Data_server Dessim Engine Extent_map Hashtbl Int Interval List Netsim Node Params Printf Resource Rpc
