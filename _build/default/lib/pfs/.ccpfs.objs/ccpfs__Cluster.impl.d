lib/pfs/cluster.ml: Array Client Client_cache Config Data_server Dessim Engine Layout List Meta_server Netsim Node Params Printf Seqdlm
