lib/pfs/config.ml: Ccpfs_util Units
