lib/pfs/layout.ml: Array Ccpfs_util Interval List Seqdlm Units
