lib/pfs/meta_server.ml: Hashtbl Layout Netsim Option
