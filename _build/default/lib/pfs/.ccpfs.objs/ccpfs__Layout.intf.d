lib/pfs/layout.mli: Ccpfs_util
