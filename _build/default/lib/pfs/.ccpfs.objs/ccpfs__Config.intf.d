lib/pfs/config.mli:
