lib/pfs/client_cache.mli: Ccpfs_util Config Data_server Dessim Netsim
