lib/pfs/data_server.mli: Ccpfs_util Config Dessim Netsim Seqdlm
