lib/pfs/client.ml: Ccpfs_util Client_cache Config Content Data_server Dessim Engine Hashtbl Int Interval Layout List Lock_client Meta_server Mode Netsim Node Option Params Policy Rpc Seqdlm Types
