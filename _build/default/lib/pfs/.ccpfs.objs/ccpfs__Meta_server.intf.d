lib/pfs/meta_server.mli: Dessim Layout Netsim
