lib/pfs/cluster.mli: Ccpfs_util Client Config Data_server Dessim Meta_server Netsim Seqdlm
