lib/pfs/client.mli: Ccpfs_util Client_cache Config Data_server Dessim Layout Meta_server Netsim Seqdlm
