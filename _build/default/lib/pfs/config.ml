open Ccpfs_util

type t = {
  page : int;
  dirty_min : int;
  dirty_max : int;
  flush_period : float;
  extent_cache_limit : int;
  cleanup_batch : int;
  cleanup_period : float;
  extent_log : bool;
  flush_wire_page_only : bool;
}

let default =
  {
    page = Units.page;
    dirty_min = 256 * Units.mib;
    dirty_max = 4 * Units.gib;
    flush_period = 0.05;
    extent_cache_limit = 256 * 1024;
    cleanup_batch = 1024;
    cleanup_period = 0.1;
    extent_log = false;
    flush_wire_page_only = false;
  }

let with_dirty_limits ~dirty_min ~dirty_max t = { t with dirty_min; dirty_max }
let with_extent_cache ~limit t = { t with extent_cache_limit = limit }
let with_extent_log extent_log t = { t with extent_log }

let with_flush_wire_page_only flush_wire_page_only t =
  { t with flush_wire_page_only }
