open Ccpfs_util

type t = { stripe_size : int; stripe_count : int }

let v ?(stripe_size = Units.mib) ~stripe_count () =
  if stripe_size <= 0 || stripe_count <= 0 then
    invalid_arg "Layout.v: sizes must be positive";
  { stripe_size; stripe_count }

let max_stripes = 256
let rid ~fid ~stripe = (fid * max_stripes) + stripe
let rid_fid r = r / max_stripes
let rid_stripe r = r mod max_stripes

let chunks t (iv : Interval.t) =
  if t.stripe_count = 1 then [ (0, iv) ]
  else begin
    let acc = Array.make t.stripe_count [] in
    let s = t.stripe_size in
    let pos = ref iv.lo in
    while !pos < iv.hi do
      let chunk = !pos / s in
      let chunk_end = (chunk + 1) * s in
      let hi = min iv.hi chunk_end in
      let stripe = chunk mod t.stripe_count in
      let obj_lo = (chunk / t.stripe_count * s) + (!pos mod s) in
      let obj = Interval.v ~lo:obj_lo ~hi:(obj_lo + (hi - !pos)) in
      acc.(stripe) <- obj :: acc.(stripe);
      pos := hi
    done;
    let out = ref [] in
    for stripe = t.stripe_count - 1 downto 0 do
      match Seqdlm.Types.normalize_ranges acc.(stripe) with
      | [] -> ()
      | ranges ->
          (* One lock/flush range per stripe: take the covering hull so a
             strided write holds a single extent lock per stripe, as in
             §V-D ("a lock with a minimum range covering all of the
             non-contiguous writes for each stripe"). *)
          List.iter (fun r -> out := (stripe, r) :: !out) ranges
    done;
    !out
  end

let spans_multiple t iv =
  match chunks t iv with [] | [ _ ] -> false | _ :: _ :: _ -> true

let file_offset t ~stripe obj_off =
  if t.stripe_count = 1 then obj_off
  else
    let s = t.stripe_size in
    let row = obj_off / s in
    let within = obj_off mod s in
    (((row * t.stripe_count) + stripe) * s) + within
