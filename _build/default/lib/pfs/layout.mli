(** File striping (Lustre-style round-robin layout).

    A file with [stripe_count] stripes of [stripe_size] bytes maps file
    offset [b] to stripe [(b / stripe_size) mod stripe_count] at object
    offset [(b / (stripe_size * stripe_count)) * stripe_size
    + b mod stripe_size].  Each stripe is one object on one data server
    and is associated with one lock resource of the same id (§IV); lock
    ranges and cached-data extents are kept in object space. *)

type t = { stripe_size : int; stripe_count : int }

val v : ?stripe_size:int -> stripe_count:int -> unit -> t
(** Default stripe size 1 MiB (the evaluation's configuration). *)

val chunks : t -> Ccpfs_util.Interval.t -> (int * Ccpfs_util.Interval.t) list
(** Decompose a file range into per-stripe object ranges, one merged
    interval per stripe, ordered by stripe index.  A range confined to
    one stripe-size chunk yields a single element. *)

val spans_multiple : t -> Ccpfs_util.Interval.t -> bool
(** Whether the file range touches more than one stripe (selects BW over
    NBW in the Fig. 10 rules). *)

val file_offset : t -> stripe:int -> int -> int
(** Inverse map: object offset back to file offset. *)

val max_stripes : int
(** Upper bound on stripes per file, used to pack (fid, stripe) into a
    single resource id. *)

val rid : fid:int -> stripe:int -> int
val rid_fid : int -> int
val rid_stripe : int -> int
