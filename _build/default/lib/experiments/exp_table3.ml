open Ccpfs_util

let run ~scale =
  let per_client = Harness.scaled ~scale (2 * Units.gib) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Table III: IOR N-1 segmented, 64KiB, 1 stripe, 16 clients x %s"
           (Units.bytes_to_string per_client))
      ~columns:[ "DLM"; "bandwidth"; "PIO time"; "F time"; "total IO time" ]
  in
  List.iter
    (fun policy ->
      let r =
        Exp_ior.run ~policy ~pattern:Workloads.Access.N1_segmented ~clients:16
          ~servers:1 ~stripes:1 ~xfer:(64 * Units.kib) ~per_client ()
      in
      Table.add_row tbl
        [
          policy.Seqdlm.Policy.name;
          Units.bandwidth_to_string r.bandwidth;
          Units.seconds_to_string r.pio;
          Units.seconds_to_string r.f;
          Units.seconds_to_string (r.pio +. r.f);
        ])
    [ Seqdlm.Policy.seqdlm; Seqdlm.Policy.dlm_basic; Seqdlm.Policy.dlm_lustre ];
  Table.add_note tbl
    "paper: 33.2 / 33.8 / 33.7 GB/s and 18.1 / 19.1 / 19.5 s — all three within a few %";
  Table.print tbl
