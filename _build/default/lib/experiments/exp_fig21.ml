open Ccpfs_util

let xfer_base = 47_008

let run ~scale =
  let clients = max 8 (Harness.scaled ~scale 96) in
  let per_client = Harness.scaled ~scale (2 * Units.gib) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 21/22: IOR N-1 strided, multi-stripe, %d clients x %s (1MiB stripes)"
           clients
           (Units.bytes_to_string per_client))
      ~columns:
        [ "stripes"; "write size"; "DLM"; "bandwidth"; "PIO"; "F"; "vs DLM-Lustre" ]
  in
  List.iter
    (fun stripes ->
      List.iter
        (fun xfer ->
          let rows =
            List.map
              (fun policy ->
                ( policy.Seqdlm.Policy.name,
                  Exp_ior.run ~policy ~pattern:Workloads.Access.N1_strided
                    ~clients ~servers:stripes ~stripes ~xfer ~per_client () ))
              [ Seqdlm.Policy.seqdlm; Seqdlm.Policy.dlm_basic;
                Seqdlm.Policy.dlm_lustre ]
          in
          let lustre_bw = (List.assoc "DLM-Lustre" rows).Harness.bandwidth in
          List.iter
            (fun (label, (r : Harness.result)) ->
              Table.add_row tbl
                [
                  string_of_int stripes;
                  string_of_int xfer;
                  label;
                  Units.bandwidth_to_string r.bandwidth;
                  Units.seconds_to_string r.pio;
                  Units.seconds_to_string r.f;
                  Harness.speedup r.bandwidth lustre_bw;
                ])
            rows)
        [ xfer_base; 4 * xfer_base; 16 * xfer_base ])
    [ 4; 8 ];
  Table.add_note tbl
    "paper: SeqDLM over DLM-Lustre = 3.6x (47008B) to 10.3x (16x) at 4 stripes; 2.0x to 6.2x at 8";
  Table.add_note tbl
    "writes are unaligned (4KiB lock alignment makes neighbours conflict); some span two stripes (BW + downgrade)";
  Table.print tbl
