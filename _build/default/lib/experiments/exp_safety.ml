open Ccpfs_util
open Ccpfs

let ior_hard_check ~stripes ~clients ~blocks =
  let xfer = 47_008 in
  let errors = ref 0 in
  Harness.run_custom ~servers:(max 1 (stripes / 2)) ~clients
    (fun _cl spawn ->
      let layout = Layout.v ~stripe_size:Units.mib ~stripe_count:stripes () in
      for i = 0 to clients - 1 do
        spawn i (Printf.sprintf "w%d" i) (fun c ->
            let f = Client.open_file c ~create:true ~layout "/ior-hard" in
            for k = 0 to blocks - 1 do
              Client.write c f ~off:(((k * clients) + i) * xfer) ~len:xfer
            done)
      done)
    (fun cl _ ->
      for j = 0 to clients - 1 do
        Cluster.spawn_client cl j ~name:(Printf.sprintf "r%d" j) (fun c ->
            let f = Client.open_file c "/ior-hard" in
            let owner = (j + 1) mod clients in
            for k = 0 to blocks - 1 do
              Client.read c f ~off:(((k * clients) + owner) * xfer) ~len:xfer
              |> List.iter (fun (_, _, tag) ->
                     match tag with
                     | Some t when t.Content.writer = owner -> ()
                     | Some _ | None -> incr errors)
            done)
      done;
      Cluster.run cl;
      !errors = 0)

let overlap_check ~stripes ~clients =
  let len = 512 * Units.kib in
  Harness.run_custom ~servers:1 ~clients
    (fun _cl spawn ->
      let layout =
        Layout.v ~stripe_size:(256 * Units.kib) ~stripe_count:stripes ()
      in
      for i = 0 to clients - 1 do
        spawn i (Printf.sprintf "w%d" i) (fun c ->
            let f = Client.open_file c ~create:true ~layout "/overlap" in
            Client.write c f ~off:0 ~len;
            Client.write c f ~off:0 ~len)
      done)
    (fun cl _ ->
      let sums = Array.make clients 0 in
      for i = 0 to clients - 1 do
        Cluster.spawn_client cl i ~name:(Printf.sprintf "r%d" i) (fun c ->
            let f = Client.open_file c "/overlap" in
            sums.(i) <- Client.read_checksum c f ~off:0 ~len)
      done;
      Cluster.run cl;
      Array.for_all (fun s -> s = sums.(0)) sums)

let run ~scale =
  let clients = 16 in
  let blocks = Harness.scaled ~scale 100 in
  let tbl =
    Table.create ~title:"§V-B1 data safety (write-write conflicts)"
      ~columns:[ "workload"; "stripes"; "repetitions"; "result" ]
  in
  List.iter
    (fun stripes ->
      let ok = ior_hard_check ~stripes ~clients ~blocks in
      Table.add_row tbl
        [
          "IO500 ior-hard write+readback";
          string_of_int stripes;
          "1";
          (if ok then "PASS" else "FAIL");
        ])
    [ 1; 2; 4 ];
  List.iter
    (fun stripes ->
      let reps = max 1 (Harness.scaled ~scale 10) in
      let ok = ref true in
      for _ = 1 to reps do
        if not (overlap_check ~stripes ~clients) then ok := false
      done;
      Table.add_row tbl
        [
          (if stripes = 1 then "overlapping writes (NBW)"
           else "overlapping writes (BW + conversion)");
          string_of_int stripes;
          string_of_int reps;
          (if !ok then "PASS" else "FAIL");
        ])
    [ 1; 2 ];
  Table.add_note tbl
    "paper: always correct; final contents equal some client's second write";
  Table.print tbl
