lib/experiments/exp_fig21.mli:
