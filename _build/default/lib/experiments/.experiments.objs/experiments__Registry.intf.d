lib/experiments/registry.mli:
