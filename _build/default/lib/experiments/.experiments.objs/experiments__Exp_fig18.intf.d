lib/experiments/exp_fig18.mli:
