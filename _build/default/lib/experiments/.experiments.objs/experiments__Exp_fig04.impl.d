lib/experiments/exp_fig04.ml: Array Ccpfs Ccpfs_util Harness List Netsim Params Printf Seqdlm Table Units Workloads
