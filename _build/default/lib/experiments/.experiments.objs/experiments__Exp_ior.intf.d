lib/experiments/exp_ior.mli: Harness Netsim Seqdlm Workloads
