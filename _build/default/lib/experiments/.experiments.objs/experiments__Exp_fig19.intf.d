lib/experiments/exp_fig19.mli:
