lib/experiments/exp_safety.ml: Array Ccpfs Ccpfs_util Client Cluster Content Harness Layout List Printf Table Units
