lib/experiments/registry.ml: Exp_ablation Exp_fig04 Exp_fig05 Exp_fig17 Exp_fig18 Exp_fig19 Exp_fig20 Exp_fig21 Exp_fig23 Exp_fig24 Exp_model Exp_safety Exp_table3 List Option Printf
