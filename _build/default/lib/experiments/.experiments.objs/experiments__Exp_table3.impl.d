lib/experiments/exp_table3.ml: Ccpfs_util Exp_ior Harness List Printf Seqdlm Table Units Workloads
