lib/experiments/exp_safety.mli:
