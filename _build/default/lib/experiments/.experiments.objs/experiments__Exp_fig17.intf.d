lib/experiments/exp_fig17.mli:
