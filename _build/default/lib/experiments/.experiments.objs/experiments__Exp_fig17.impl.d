lib/experiments/exp_fig17.ml: Array Ccpfs Ccpfs_util Client Cluster Dessim Float Harness List Mailbox Printf Seqdlm Table Units
