lib/experiments/exp_fig23.ml: Ccpfs Ccpfs_util Client Harness Layout List Printf Seqdlm Table Units Workloads
