lib/experiments/harness.ml: Array Ccpfs Ccpfs_util Client Cluster Float Format Layout List Printf Seqdlm Units Workloads
