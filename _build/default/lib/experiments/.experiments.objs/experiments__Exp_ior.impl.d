lib/experiments/exp_ior.ml: Array Harness Workloads
