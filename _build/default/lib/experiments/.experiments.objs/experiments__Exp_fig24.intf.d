lib/experiments/exp_fig24.mli:
