lib/experiments/exp_fig19.ml: Ccpfs Ccpfs_util Client Harness Layout List Printf Seqdlm Table Units
