lib/experiments/exp_model.ml: Analytic Array Ccpfs_util Harness List Netsim Params Printf Seqdlm Table Units Workloads
