lib/experiments/exp_fig18.ml: Array Ccpfs_util Float Harness List Printf Seqdlm Table Units Workloads
