lib/experiments/exp_fig24.ml: Ccpfs Ccpfs_util Client Cluster Dessim Harness Layout List Netsim Params Printf Semaphore Seqdlm Table Units Workloads
