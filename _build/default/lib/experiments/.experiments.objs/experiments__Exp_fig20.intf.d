lib/experiments/exp_fig20.mli:
