lib/experiments/exp_fig04.mli:
