lib/experiments/exp_ablation.ml: Array Ccpfs Ccpfs_util Client Client_cache Cluster Config Data_server Harness List Printf Seqdlm Table Units Workloads
