lib/experiments/exp_fig05.mli:
