lib/experiments/harness.mli: Ccpfs Format Netsim Seqdlm Workloads
