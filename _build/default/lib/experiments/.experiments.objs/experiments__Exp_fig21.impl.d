lib/experiments/exp_fig21.ml: Ccpfs_util Exp_ior Harness List Printf Seqdlm Table Units Workloads
