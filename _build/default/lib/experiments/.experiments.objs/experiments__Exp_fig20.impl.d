lib/experiments/exp_fig20.ml: Ccpfs_util Exp_ior Harness List Netsim Params Printf Seqdlm Table Units Workloads
