let run ?params ~policy ~pattern ~clients ~servers ~stripes ~xfer ~per_client
    () =
  let blocks = Workloads.Ior.blocks_for_total ~total:per_client ~xfer in
  let streams =
    Array.init clients (fun rank ->
        ( Workloads.Ior.file_of_rank ~pattern ~rank,
          Workloads.Ior.accesses ~pattern ~nprocs:clients ~rank ~xfer ~blocks ))
  in
  Harness.run_streams ?params ~policy ~servers ~stripes ~streams ()
