(** Shared machinery of the experiment reproductions: build a cluster,
    drive a workload's access stream from every client, measure the
    paper's two phases — parallel IO (PIO: writes returning from the
    client cache) and flushing (F: the explicit drain at the end) — and
    aggregate the lock/IO instrumentation the figures plot. *)

type result = {
  pio : float;  (** seconds of the parallel-IO phase *)
  f : float;  (** seconds of the final flush phase *)
  bytes : int;  (** payload written during PIO *)
  bandwidth : float;  (** bytes / pio *)
  locking : float;  (** summed client lock-wait seconds *)
  cache_io : float;  (** summed client cache-insert seconds *)
  lock_stats : Seqdlm.Lock_server.stats;  (** summed over lock servers *)
  ops : int;  (** client operations during PIO *)
}

val pp_result : Format.formatter -> result -> unit

val run_streams :
  ?params:Netsim.Params.t -> ?config:Ccpfs.Config.t ->
  ?policy:Seqdlm.Policy.t -> ?mode:Seqdlm.Mode.t -> ?lock_whole_range:bool ->
  ?stripe_size:int -> servers:int -> stripes:int ->
  streams:(string * Workloads.Access.t list) array -> unit -> result
(** One client per stream element; each stream is (file path, ordered
    accesses).  Files are created with [stripes] stripes (N-N streams
    simply name distinct paths).  [mode] pins the write lock mode
    (microbenchmarks); otherwise Fig. 10 selection applies. *)

type spawn = int -> string -> (Ccpfs.Client.t -> unit) -> unit
(** [spawn i name body] runs [body] as a process on client [i], tracked
    as an application writer for PIO accounting. *)

val run_custom :
  ?params:Netsim.Params.t -> ?config:Ccpfs.Config.t ->
  ?policy:Seqdlm.Policy.t -> servers:int -> clients:int ->
  (Ccpfs.Cluster.t -> spawn -> unit) ->
  (Ccpfs.Cluster.t -> result -> 'a) -> 'a
(** Full control.  [setup] launches the application processes through the
    given tracked [spawn].  PIO ends when the last tracked process
    finishes — asynchronous flushing still in flight afterwards is
    charged to the F phase together with the final fsync drain, exactly
    like the paper's PIO/F split ("the write performance that
    applications can see"). *)

val scaled : scale:float -> int -> int
(** [scaled ~scale n] = max 1 (round (n·scale)). *)

val speedup : float -> float -> string
(** "[4.2x]" — convenience for table notes. *)
