open Ccpfs_util
open Ccpfs

let run_tile ~policy ~grid ~stripes =
  let n = Workloads.Tile_io.nclients grid in
  Harness.run_custom ~policy ~servers:(min stripes 16) ~clients:n
    (fun _cl spawn ->
      let layout = Layout.v ~stripe_size:Units.mib ~stripe_count:stripes () in
      for rank = 0 to n - 1 do
        spawn rank (Printf.sprintf "tile%d" rank)
          (fun c ->
            let f = Client.open_file c ~create:true ~layout "/tiles" in
            let ranges = Workloads.Tile_io.ranges grid ~rank in
            Client.write_multi c f ~ranges)
      done)
    (fun _ r -> r)

let run ~scale =
  (* Preserve the 8x12 grid; scale the tile edge (20480 px at paper
     scale). *)
  let grid =
    Workloads.Tile_io.scaled_grid Workloads.Tile_io.paper_grid ~scale
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 23: Tile-IO, %dx%d tiles of %dpx (overlap %d), %d clients, %s each"
           grid.Workloads.Tile_io.rows grid.Workloads.Tile_io.cols
           grid.Workloads.Tile_io.tile grid.Workloads.Tile_io.overlap
           (Workloads.Tile_io.nclients grid)
           (Units.bytes_to_string (Workloads.Tile_io.bytes_per_client grid)))
      ~columns:
        [ "stripes"; "DLM"; "bandwidth"; "PIO"; "F"; "SeqDLM speedup" ]
  in
  List.iter
    (fun stripes ->
      let seq = run_tile ~policy:Seqdlm.Policy.seqdlm ~grid ~stripes in
      let dt = run_tile ~policy:Seqdlm.Policy.dlm_datatype ~grid ~stripes in
      List.iter
        (fun (label, (r : Harness.result)) ->
          Table.add_row tbl
            [
              string_of_int stripes;
              label;
              Units.bandwidth_to_string r.bandwidth;
              Units.seconds_to_string r.pio;
              Units.seconds_to_string r.f;
              (if label = "SeqDLM" then
                 Harness.speedup r.bandwidth dt.Harness.bandwidth
               else "");
            ])
        [ ("SeqDLM", seq); ("DLM-datatype", dt) ])
    [ 1; 4; 16 ];
  Table.add_note tbl
    "paper: SeqDLM = 51.0x (1 stripe) to 4.1x (16 stripes) over DLM-datatype";
  Table.print tbl
