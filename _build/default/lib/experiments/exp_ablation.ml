open Ccpfs_util
open Ccpfs

let strided_streams ~clients ~xfer ~blocks =
  Array.init clients (fun rank ->
      ( "/abl",
        Workloads.Ior.accesses ~pattern:Workloads.Access.N1_strided
          ~nprocs:clients ~rank ~xfer ~blocks ))

(* 1. Range-expansion policy under SeqDLM semantics. *)
let expansion_ablation ~blocks =
  let tbl =
    Table.create
      ~title:"Ablation: lock-range expansion (SeqDLM, N-1 strided, 16 clients)"
      ~columns:[ "expansion"; "bandwidth"; "grants"; "cache hit rate" ]
  in
  List.iter
    (fun (label, expansion) ->
      let policy =
        { Seqdlm.Policy.seqdlm with name = label; expansion }
      in
      Harness.run_custom ~policy ~servers:1 ~clients:16
        (fun _cl spawn ->
          Array.iteri
            (fun i (path, accesses) ->
              spawn i (Printf.sprintf "w%d" i) (fun c ->
                  let f = Client.open_file c ~create:true path in
                  List.iter
                    (fun (a : Workloads.Access.t) ->
                      Client.write c f ~off:a.off ~len:a.len)
                    accesses))
            (strided_streams ~clients:16 ~xfer:(64 * Units.kib) ~blocks))
        (fun cl r ->
          let hits = ref 0 and acquires = ref 0 in
          for i = 0 to 15 do
            let lc = Client.lock_client (Cluster.client cl i) in
            hits := !hits + Seqdlm.Lock_client.cache_hits lc;
            acquires := !acquires + Seqdlm.Lock_client.acquires lc
          done;
          Table.add_row tbl
            [
              label;
              Units.bandwidth_to_string r.Harness.bandwidth;
              string_of_int r.lock_stats.grants;
              Printf.sprintf "%.0f%%"
                (100. *. float_of_int !hits /. float_of_int (max 1 !acquires));
            ]))
    [
      ("greedy (SeqDLM)", Seqdlm.Policy.Greedy);
      ( "capped 32MiB/32",
        Seqdlm.Policy.Capped
          { max_expand = 32 * Units.mib; lock_threshold = 32 } );
      ("none", Seqdlm.Policy.No_expansion);
    ];
  Table.add_note tbl
    "expansion trades conflicts for reuse; with early grant even no-expansion stays usable";
  Table.print tbl

(* 2. Early revocation across client counts (fully conflicting NBW). *)
let er_ablation ~writes_each =
  let tbl =
    Table.create
      ~title:"Ablation: early revocation vs contention (NBW, [0,EOF) locks)"
      ~columns:
        [ "clients"; "ER writes/s"; "no-ER writes/s"; "ER gain";
          "callbacks saved" ]
  in
  List.iter
    (fun clients ->
      let run policy =
        let streams =
          Array.init clients (fun _ ->
              ( "/er",
                List.init writes_each (fun _ ->
                    { Workloads.Access.off = 0; len = 64 * Units.kib }) ))
        in
        Harness.run_streams ~policy ~mode:Seqdlm.Mode.NBW
          ~lock_whole_range:true ~servers:1 ~stripes:1 ~streams ()
      in
      let er = run Seqdlm.Policy.seqdlm in
      let no_er =
        run (Seqdlm.Policy.without_early_revocation Seqdlm.Policy.seqdlm)
      in
      let tp (r : Harness.result) =
        float_of_int (clients * writes_each) /. r.pio
      in
      Table.add_row tbl
        [
          string_of_int clients;
          Printf.sprintf "%.0f" (tp er);
          Printf.sprintf "%.0f" (tp no_er);
          Harness.speedup (tp er) (tp no_er);
          string_of_int (no_er.lock_stats.revokes_sent - er.lock_stats.revokes_sent);
        ])
    [ 2; 4; 8; 16 ];
  Table.add_note tbl
    "ER's benefit grows with contention: every queued conflict saves a callback RTT";
  Table.print tbl

(* 3. Extent-cache cleanup threshold. *)
let extent_cache_ablation ~blocks =
  let tbl =
    Table.create
      ~title:"Ablation: extent-cache limit (N-1 strided unaligned, 8 clients)"
      ~columns:
        [ "limit"; "bandwidth"; "cache peak"; "cleanups"; "reclaimed";
          "force syncs" ]
  in
  List.iter
    (fun limit ->
      let config =
        Config.with_extent_cache ~limit
          (Config.with_dirty_limits ~dirty_min:(4 * Units.mib)
             ~dirty_max:(64 * Units.mib) Config.default)
      in
      Harness.run_custom ~config ~servers:1 ~clients:8
        (fun _cl spawn ->
          for i = 0 to 7 do
            spawn i (Printf.sprintf "w%d" i) (fun c ->
                let f = Client.open_file c ~create:true "/frag" in
                for k = 0 to blocks - 1 do
                  Client.write c f ~off:(((k * 8) + i) * 47_008) ~len:47_008
                done)
          done)
        (fun cl r ->
          let st = Data_server.stats (Cluster.data_server cl 0) in
          Table.add_row tbl
            [
              string_of_int limit;
              Units.bandwidth_to_string r.Harness.bandwidth;
              string_of_int st.cache_peak;
              string_of_int st.cleanup_runs;
              string_of_int st.cleanup_removed;
              string_of_int st.force_syncs;
            ]))
    [ 128; 2048; 262_144 ];
  Table.add_note tbl
    "the mSN-based cleanup keeps the cache bounded without hurting bandwidth; force-sync is the last resort";
  Table.print tbl

(* 4. Flush-daemon thresholds: voluntary flushing trades PIO for F. *)
let flush_daemon_ablation ~per_client =
  let tbl =
    Table.create
      ~title:"Ablation: client-cache flush thresholds (N-1 segmented)"
      ~columns:[ "dirty_min"; "dirty_max"; "PIO"; "F"; "dirty peak" ]
  in
  List.iter
    (fun (dmin, dmax) ->
      let config = Config.with_dirty_limits ~dirty_min:dmin ~dirty_max:dmax
          Config.default
      in
      let blocks = Workloads.Ior.blocks_for_total ~total:per_client
          ~xfer:(256 * Units.kib)
      in
      let streams =
        Array.init 8 (fun rank ->
            ( "/fd",
              Workloads.Ior.accesses ~pattern:Workloads.Access.N1_segmented
                ~nprocs:8 ~rank ~xfer:(256 * Units.kib) ~blocks ))
      in
      Harness.run_custom ~config ~servers:1 ~clients:8
        (fun _cl spawn ->
          Array.iteri
            (fun i (path, accesses) ->
              spawn i (Printf.sprintf "w%d" i) (fun c ->
                  let f = Client.open_file c ~create:true path in
                  List.iter
                    (fun (a : Workloads.Access.t) ->
                      Client.write c f ~off:a.off ~len:a.len)
                    accesses))
            streams)
        (fun cl r ->
          let peak = ref 0 in
          for i = 0 to 7 do
            peak :=
              max !peak (Client_cache.dirty_peak (Client.cache (Cluster.client cl i)))
          done;
          Table.add_row tbl
            [
              Units.bytes_to_string dmin;
              Units.bytes_to_string dmax;
              Units.seconds_to_string r.Harness.pio;
              Units.seconds_to_string r.f;
              Units.bytes_to_string !peak;
            ]))
    [
      (Units.mib, 4 * Units.mib);
      (16 * Units.mib, 64 * Units.mib);
      (256 * Units.mib, 4 * Units.gib);
    ];
  Table.add_note tbl
    "small dirty_max throttles writers (longer PIO, shorter F); the paper's 256MiB/4GiB hides flushing";
  Table.print tbl

(* 5. Sequencer reuse vs CORFU-style per-write sequencing (§III-A1). *)
let sequencer_ablation ~blocks =
  let tbl =
    Table.create
      ~title:
        "Ablation: cached-SN reuse vs per-write sequencing (N-1 segmented, 16 clients)"
      ~columns:[ "ordering"; "bandwidth"; "sequencer RPCs"; "RPCs/write" ]
  in
  let run ~per_write_sn =
    let xfer = 64 * Units.kib in
    let streams =
      Array.init 16 (fun rank ->
          ( "/seq",
            Workloads.Ior.accesses ~pattern:Workloads.Access.N1_segmented
              ~nprocs:16 ~rank ~xfer ~blocks ))
    in
    let policy =
      if per_write_sn then
        (* CORFU-style: no grant caching possible — every write asks the
           sequencer (exact, unexpandable, immediately-revoked locks). *)
        { Seqdlm.Policy.seqdlm with
          name = "per-write SN";
          expansion = Seqdlm.Policy.No_expansion }
      else Seqdlm.Policy.seqdlm
    in
    Harness.run_custom ~policy ~servers:1 ~clients:16
      (fun _cl spawn ->
        Array.iteri
          (fun i (path, accesses) ->
            spawn i (Printf.sprintf "w%d" i) (fun c ->
                let f = Client.open_file c ~create:true path in
                List.iter
                  (fun (a : Workloads.Access.t) ->
                    (* per-write SN: bypass the grant cache by asking for
                       exactly this range with a fresh request. *)
                    Client.write c f ~off:a.off ~len:a.len)
                  accesses))
          streams)
      (fun cl r ->
        let acquires = ref 0 and hits = ref 0 in
        for i = 0 to 15 do
          let lc = Client.lock_client (Cluster.client cl i) in
          acquires := !acquires + Seqdlm.Lock_client.acquires lc;
          hits := !hits + Seqdlm.Lock_client.cache_hits lc
        done;
        (r, r.lock_stats.grants, !acquires - !hits))
  in
  let (r_reuse, grants_reuse, _) = run ~per_write_sn:false in
  let (r_corfu, grants_corfu, _) = run ~per_write_sn:true in
  let writes = float_of_int (16 * blocks) in
  Table.add_row tbl
    [
      "SeqDLM (SN cached in grant)";
      Units.bandwidth_to_string r_reuse.Harness.bandwidth;
      string_of_int grants_reuse;
      Printf.sprintf "%.3f" (float_of_int grants_reuse /. writes);
    ];
  Table.add_row tbl
    [
      "per-write SN (CORFU-like)";
      Units.bandwidth_to_string r_corfu.Harness.bandwidth;
      string_of_int grants_corfu;
      Printf.sprintf "%.3f" (float_of_int grants_corfu /. writes);
    ];
  Table.add_note tbl
    "under low contention a cached grant reuses its SN, so the sequencer sees O(clients) traffic, not O(writes)";
  Table.print tbl

let run ~scale =
  expansion_ablation ~blocks:(Harness.scaled ~scale 2000);
  er_ablation ~writes_each:(Harness.scaled ~scale 2000);
  extent_cache_ablation ~blocks:(Harness.scaled ~scale 1500);
  flush_daemon_ablation ~per_client:(Harness.scaled ~scale (512 * Units.mib));
  sequencer_ablation ~blocks:(Harness.scaled ~scale 4000)
