(** Fig. 19: automatic lock conversion.

    (a) Upgrading — one client interleaving reads and writes on a
    1-stripe file: plain NBW thrashes against its own PR requests,
    NBW+upgrading converges to a reusable PW, matching PW from the
    start.

    (b) Downgrading — 16 clients writing across two stripes: BW with
    downgrading early-grants during the flush; without it BW behaves
    like PW. *)

val run : scale:float -> unit
