(** Shared IOR runner for Table III and Figs. 20-22: run a pattern on a
    shared striped file under a policy and report the paper's metrics. *)

val run :
  ?params:Netsim.Params.t -> policy:Seqdlm.Policy.t ->
  pattern:Workloads.Access.pattern -> clients:int -> servers:int ->
  stripes:int -> xfer:int -> per_client:int -> unit -> Harness.result
