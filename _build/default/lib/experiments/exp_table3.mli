(** Table III: IOR N-1 segmented, 64 KiB transfers, one stripe,
    16 clients — low contention.  SeqDLM must match DLM-basic and
    DLM-Lustre in both PIO bandwidth and total IO time (sequencer
    ordering costs nothing when uncontended). *)

val run : scale:float -> unit
