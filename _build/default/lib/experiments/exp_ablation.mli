(** Ablations of the design choices DESIGN.md calls out: range-expansion
    policy, early revocation across client counts, the extent-cache
    cleanup threshold, flush-daemon thresholds, and sequencer reuse vs
    CORFU-style per-write sequencing (§III-A1's comparison). *)

val run : scale:float -> unit
