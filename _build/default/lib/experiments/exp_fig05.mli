(** Fig. 5: shrinking the data-flushing cost of the traditional DLM
    recovers N-1 strided bandwidth — fakeWrite (no device cost) and the
    first-page-only wire hack, confirming ③ of Eq. (1) is the
    bottleneck and revocation (②) is next. *)

val run : scale:float -> unit
