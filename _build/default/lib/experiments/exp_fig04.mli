(** Fig. 4: the IO-pattern performance gap under a traditional DLM —
    16 clients, 1 GB each, 1-stripe files on a 2 GB/s store; N-N and N-1
    segmented ride the client cache while N-1 strided collapses. *)

val run : scale:float -> unit
