open Ccpfs_util
open Ccpfs
open Dessim

let clients = 16

let run_seq ~mode ~xfer ~writes_each =
  Harness.run_custom ~policy:Seqdlm.Policy.seqdlm ~servers:1 ~clients
    (fun cl spawn ->
      let eng = Cluster.engine cl in
      let boxes = Array.init clients (fun _ -> Mailbox.create eng) in
      for i = 0 to clients - 1 do
        spawn i (Printf.sprintf "seq%d" i) (fun c ->
            let f = Client.open_file c ~create:true "/seq" in
            for _ = 1 to writes_each do
              Mailbox.recv boxes.(i);
              Client.write ~mode ~lock_whole_range:true c f ~off:0 ~len:xfer;
              Mailbox.send boxes.((i + 1) mod clients) ()
            done)
      done;
      Mailbox.send boxes.(0) ())
    (fun _ r -> r)

let run ~scale =
  let writes_each = Harness.scaled ~scale 4000 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 17: sequential-conflict time breakdown (16 clients, %d writes each)"
           writes_each)
      ~columns:
        [ "write size"; "mode"; "total"; "1 revocation"; "2 cancel"; "3 others";
          "(1+2)/total" ]
  in
  List.iter
    (fun xfer ->
      List.iter
        (fun mode ->
          let r = run_seq ~mode ~xfer ~writes_each in
          let p1 = r.lock_stats.revocation_wait
          and p2 = r.lock_stats.release_wait in
          let p3 = Float.max 0. (r.pio -. p1 -. p2) in
          Table.add_row tbl
            [
              Units.bytes_to_string xfer;
              Seqdlm.Mode.to_string mode;
              Units.seconds_to_string r.pio;
              Units.seconds_to_string p1;
              Units.seconds_to_string p2;
              Units.seconds_to_string p3;
              Printf.sprintf "%.1f%%" ((p1 +. p2) /. r.pio *. 100.);
            ])
        [ Seqdlm.Mode.PW; Seqdlm.Mode.NBW ])
    [ 16 * Units.kib; 64 * Units.kib; 256 * Units.kib; Units.mib ];
  Table.add_note tbl
    "paper: PW spends 67.9-69.3% in conflict resolution, dominated by ② (flushing); NBW decouples it";
  Table.print tbl
