(** Figs. 24+25: VPIC-IO (h5bench) — 1 280 processes on 80 client nodes
    writing particle variables into a shared HDF5-style file through an
    IO-forwarding layer (16 processes funnel into 8 daemon threads per
    node), 16 data servers, 1/4/16 stripes, 256 KiB and 1 MiB writes.
    ccPFS-SeqDLM vs ccPFS-DLM-Lustre vs Lustre-IOF; plus the PIO/F time
    split of Fig. 25. *)

val run : scale:float -> unit
