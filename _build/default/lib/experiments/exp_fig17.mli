(** Fig. 17: time breakdown of a totally-conflicting sequential write
    sequence (16 clients round-robin, token-passing).  Parts: ① lock
    revocation wait, ② lock cancel (data flushing + release) wait,
    ③ everything else.  PW pays ①+② on the critical path; NBW's early
    grant removes ② and early revocation removes ①. *)

val run : scale:float -> unit
