(** Fig. 23: Tile-IO — 8x12 overlapping tiles written atomically by 96
    clients to a shared file with 1-16 stripes; SeqDLM (covering-range
    locks + early grant) vs DLM-datatype (exact non-contiguous locks, no
    expansion).  SeqDLM wins 51x at 1 stripe shrinking to ~4x at 16. *)

val run : scale:float -> unit
