(** §V-B1 data safety at experiment scale: the IO500 ior-hard
    write-then-readback check (1/2/4 stripes) and the Fig. 7
    overlapping-writes checksum comparison (1 and 2 stripes, repeated),
    printed as PASS/FAIL rows. *)

val run : scale:float -> unit
