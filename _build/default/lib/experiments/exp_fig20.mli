(** Figs. 20(a)+(b): IOR N-1 strided on a single-striped file,
    16 clients — the headline single-resource result.  SeqDLM's strided
    bandwidth approaches its own segmented bandwidth (up to ~18x over
    the traditional DLMs), and its PIO time is a small slice of the
    total IO time while the baselines' PIO is nearly all of it. *)

val run : scale:float -> unit
