open Ccpfs_util
open Ccpfs
open Dessim
open Netsim

let procs_per_client = 16
let iof_threads = 8

let lustre_iof_params = { Params.default with client_io_overhead = 45e-6 }

let run_vpic ?params ~policy ~client_nodes ~servers ~stripes ~particles
    ~iterations () =
  let nprocs = client_nodes * procs_per_client in
  Harness.run_custom ?params ~policy ~servers ~clients:client_nodes
    (fun cl spawn ->
      let eng = Cluster.engine cl in
      let layout = Layout.v ~stripe_size:Units.mib ~stripe_count:stripes () in
      for node = 0 to client_nodes - 1 do
        (* The IO-forwarding daemon: 16 application processes ship their
           IO to 8 forwarder threads on the node. *)
        let iof = Semaphore.create eng iof_threads in
        for p = 0 to procs_per_client - 1 do
          let rank = (node * procs_per_client) + p in
          spawn node (Printf.sprintf "vpic%d" rank)
            (fun c ->
              let f = Client.open_file c ~create:true ~layout "/particles.h5" in
              List.iter
                (fun (a : Workloads.Access.t) ->
                  Semaphore.with_permit iof (fun () ->
                      Client.write c f ~off:a.off ~len:a.len))
                (Workloads.Vpic.accesses ~nprocs ~rank ~particles ~iterations))
        done
      done)
    (fun _ r -> r)

let run ~scale =
  let client_nodes = max 4 (Harness.scaled ~scale 80) in
  let servers = max 4 (Harness.scaled ~scale 16) in
  let cases =
    [ (65_536, Harness.scaled ~scale 128); (262_144, Harness.scaled ~scale 32) ]
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 24/25: VPIC-IO, %d procs on %d clients, %d servers"
           (client_nodes * procs_per_client) client_nodes servers)
      ~columns:
        [ "write size"; "stripes"; "system"; "bandwidth"; "PIO"; "F";
          "vs ccPFS-L" ]
  in
  List.iter
    (fun (particles, iterations) ->
      let xfer = Workloads.Vpic.write_size ~particles in
      List.iter
        (fun stripes ->
          let rows =
            List.map
              (fun (label, policy, params) ->
                ( label,
                  run_vpic ?params ~policy ~client_nodes ~servers ~stripes
                    ~particles ~iterations () ))
              [
                ("ccPFS-S", Seqdlm.Policy.seqdlm, None);
                ("ccPFS-L", Seqdlm.Policy.dlm_lustre, None);
                ("Lustre-IOF", Seqdlm.Policy.dlm_lustre, Some lustre_iof_params);
              ]
          in
          let base = (List.assoc "ccPFS-L" rows).Harness.bandwidth in
          List.iter
            (fun (label, (r : Harness.result)) ->
              Table.add_row tbl
                [
                  Units.bytes_to_string xfer;
                  string_of_int stripes;
                  label;
                  Units.bandwidth_to_string r.bandwidth;
                  Units.seconds_to_string r.pio;
                  Units.seconds_to_string r.f;
                  Harness.speedup r.bandwidth base;
                ])
            rows)
        [ 1; 4; 16 ])
    cases;
  Table.add_note tbl
    "paper: SeqDLM over DLM-Lustre = 6.2x/1.5x (256KiB, 1/16 stripes) and 34.8x/8.8x (1MiB)";
  Table.add_note tbl
    "paper Fig. 25: total (PIO+F) similar for both — the extent cache costs little; the split differs";
  Table.print tbl
