(** Figs. 21+22: IOR N-1 strided on multi-striped files (4 and 8
    stripes), 96 clients, IO500-hard transfer sizes (47 008 bytes and
    multiples — unaligned, so adjacent writes conflict and some writes
    span two stripes, exercising BW + downgrading).  SeqDLM wins 3.6x to
    10.3x (4 stripes) and 2.0x to 6.2x (8 stripes) over DLM-Lustre, with
    a PIO time that is a small slice of the total (Fig. 22). *)

val run : scale:float -> unit
