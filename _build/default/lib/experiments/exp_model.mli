(** §II-C reproduction: evaluate terms ①②③ of Eq. (1) on Table I
    parameters, show ③ dominates, and cross-validate the closed form
    against the simulator on a small fully-conflicting PW run. *)

val run : scale:float -> unit
