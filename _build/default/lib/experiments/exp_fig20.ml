open Ccpfs_util
open Netsim

(* Original Lustre lacks ccPFS's pre-registered RDMA memory pool: model
   the slower client IO path as a fixed per-op overhead (§V-C1). *)
let orig_lustre_params =
  { Params.default with client_io_overhead = 45e-6 }

let run ~scale =
  let per_client = Harness.scaled ~scale (2 * Units.gib) in
  let strided = Workloads.Access.N1_strided in
  let variants =
    [
      ("SeqDLM strided", Seqdlm.Policy.seqdlm, strided, None);
      ("SeqDLM segmented", Seqdlm.Policy.seqdlm, Workloads.Access.N1_segmented, None);
      ("DLM-basic", Seqdlm.Policy.dlm_basic, strided, None);
      ("DLM-Lustre", Seqdlm.Policy.dlm_lustre, strided, None);
      ("original Lustre", Seqdlm.Policy.dlm_lustre, strided, Some orig_lustre_params);
    ]
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 20: IOR N-1 strided, 1 stripe, 16 clients x %s"
           (Units.bytes_to_string per_client))
      ~columns:
        [ "write size"; "variant"; "bandwidth"; "PIO"; "F"; "PIO share" ]
  in
  List.iter
    (fun xfer ->
      let rows =
        List.map
          (fun (label, policy, pattern, params) ->
            ( label,
              Exp_ior.run ?params ~policy ~pattern ~clients:16 ~servers:1
                ~stripes:1 ~xfer ~per_client () ))
          variants
      in
      let find l = List.assoc l rows in
      List.iter
        (fun (label, (r : Harness.result)) ->
          Table.add_row tbl
            [
              Units.bytes_to_string xfer;
              label;
              Units.bandwidth_to_string r.bandwidth;
              Units.seconds_to_string r.pio;
              Units.seconds_to_string r.f;
              Printf.sprintf "%.0f%%" (r.pio /. (r.pio +. r.f) *. 100.);
            ])
        rows;
      let seq = find "SeqDLM strided" and basic = find "DLM-basic" in
      let seg = find "SeqDLM segmented" in
      Table.add_note tbl
        (Printf.sprintf
           "%s: SeqDLM strided = %s of its segmented; %s over DLM-basic"
           (Units.bytes_to_string xfer)
           (Printf.sprintf "%.1f%%" (seq.bandwidth /. seg.bandwidth *. 100.))
           (Harness.speedup seq.bandwidth basic.bandwidth)))
    [ 64 * Units.kib; 256 * Units.kib; Units.mib ];
  Table.add_note tbl
    "paper: strided SeqDLM = 81.7-96.9% of segmented; up to 18.1x over DLM-basic/Lustre;";
  Table.add_note tbl
    "paper: PIO ~5% of total under SeqDLM vs up to 99% under the baselines (Fig. 20b)";
  Table.print tbl
