(** Fig. 18: throughput of one lock resource under high contention —
    16 clients independently issuing fully-conflicting writes — for NBW
    vs PW, with and without early revocation; plus the locking/IO time
    ratio. *)

val run : scale:float -> unit
