open Ccpfs_util
open Netsim

let clients = 16

let params = { Params.default with b_disk = 2e9 }

let config =
  Ccpfs.Config.with_dirty_limits ~dirty_min:(256 * Units.mib)
    ~dirty_max:(2 * Units.gib) Ccpfs.Config.default

let run_pattern ~pattern ~xfer ~per_client =
  let blocks = Workloads.Ior.blocks_for_total ~total:per_client ~xfer in
  let streams =
    Array.init clients (fun rank ->
        ( Workloads.Ior.file_of_rank ~pattern ~rank,
          Workloads.Ior.accesses ~pattern ~nprocs:clients ~rank ~xfer ~blocks ))
  in
  Harness.run_streams ~params ~config ~policy:Seqdlm.Policy.dlm_lustre
    ~servers:1 ~stripes:1 ~streams ()

let run ~scale =
  let per_client = Harness.scaled ~scale Units.gib in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 4: IO-pattern gap, traditional DLM (16 clients x %s, 1 stripe)"
           (Units.bytes_to_string per_client))
      ~columns:[ "write size"; "N-N"; "N-1 segmented"; "N-1 strided"; "seg/strided" ]
  in
  List.iter
    (fun xfer ->
      let bw pattern = (run_pattern ~pattern ~xfer ~per_client).bandwidth in
      let nn = bw Workloads.Access.N_n in
      let seg = bw Workloads.Access.N1_segmented in
      let str = bw Workloads.Access.N1_strided in
      Table.add_row tbl
        [
          Units.bytes_to_string xfer;
          Units.bandwidth_to_string nn;
          Units.bandwidth_to_string seg;
          Units.bandwidth_to_string str;
          Harness.speedup seg str;
        ])
    [ 16 * Units.kib; 64 * Units.kib; 256 * Units.kib; Units.mib ];
  Table.add_note tbl
    "paper: N-N and segmented rise toward cache speed; strided stays far below";
  Table.print tbl
