open Ccpfs_util
open Netsim

let clients = 16

let strided ~params ~config ~xfer ~per_client =
  let blocks = Workloads.Ior.blocks_for_total ~total:per_client ~xfer in
  let pattern = Workloads.Access.N1_strided in
  let streams =
    Array.init clients (fun rank ->
        ( Workloads.Ior.file_of_rank ~pattern ~rank,
          Workloads.Ior.accesses ~pattern ~nprocs:clients ~rank ~xfer ~blocks ))
  in
  Harness.run_streams ~params ~config ~policy:Seqdlm.Policy.dlm_lustre
    ~servers:1 ~stripes:1 ~streams ()

let run ~scale =
  let per_client = Harness.scaled ~scale Units.gib in
  let base_params = { Params.default with b_disk = 2e9 } in
  let fake_params = { base_params with b_disk = infinity } in
  let config = Ccpfs.Config.default in
  let page_config = Ccpfs.Config.with_flush_wire_page_only true config in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 5: N-1 strided while reducing flush cost (16 clients x %s)"
           (Units.bytes_to_string per_client))
      ~columns:
        [ "write size"; "baseline"; "+fakeWrite"; "+fakeWrite+1page"; "gain" ]
  in
  List.iter
    (fun xfer ->
      let b0 = (strided ~params:base_params ~config ~xfer ~per_client).bandwidth in
      let b1 = (strided ~params:fake_params ~config ~xfer ~per_client).bandwidth in
      let b2 =
        (strided ~params:fake_params ~config:page_config ~xfer ~per_client)
          .bandwidth
      in
      Table.add_row tbl
        [
          Units.bytes_to_string xfer;
          Units.bandwidth_to_string b0;
          Units.bandwidth_to_string b1;
          Units.bandwidth_to_string b2;
          Harness.speedup b2 b0;
        ])
    [ 64 * Units.kib; 256 * Units.kib; Units.mib ];
  Table.add_note tbl
    "paper: each flush reduction raises bandwidth; lock revocation becomes the next bottleneck";
  Table.print tbl
