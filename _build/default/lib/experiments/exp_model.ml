open Ccpfs_util
open Netsim

let term_table () =
  let p = Params.table1 in
  let d = 1_000_000 in
  let t = Analytic.Model.terms p ~d in
  let tbl =
    Table.create ~title:"§II-C cost terms (Table I parameters, D = 1 MB)"
      ~columns:[ "term"; "value (sec/byte)"; "meaning" ]
  in
  Table.add_row tbl [ "① 1/(OPS·D)"; Printf.sprintf "%.2e" t.t1; "lock request service" ];
  Table.add_row tbl [ "② RTT/D"; Printf.sprintf "%.2e" t.t2; "revocation round trip" ];
  Table.add_row tbl [ "③ 1/B_flush"; Printf.sprintf "%.2e" t.t3; "data flushing" ];
  Table.add_note tbl
    (Printf.sprintf "dominant: %s (paper: ③ ≈ 4.1e-10 ≫ ② ≈ 1.0e-12 ≫ ① ≈ 1.0e-13)"
       (match Analytic.Model.dominant_term t with
       | `T1 -> "①"
       | `T2 -> "②"
       | `T3 -> "③"));
  Table.add_note tbl
    (Printf.sprintf "B_flush (Eq. 2) = %s; Eq. 1 bound = %s; without ③ = %s"
       (Units.bandwidth_to_string (Analytic.Model.b_flush p))
       (Units.bandwidth_to_string (Analytic.Model.bandwidth_approx p ~d))
       (Units.bandwidth_to_string (Analytic.Model.bandwidth_no_flush p ~n:64 ~d)));
  Table.print tbl

(* Validate the simulator against Eq. (1): N clients, fully conflicting
   PW writes of D bytes.  §II-C ignores memory-operation overhead, so the
   validation runs with an infinite-bandwidth client cache. *)
let no_mem_params =
  { Params.default with b_mem = infinity; client_io_overhead = 0. }

let validate ~scale =
  let tbl =
    Table.create ~title:"Eq. (1) vs simulator (fully-conflicting PW writes)"
      ~columns:[ "N"; "D"; "model"; "simulated"; "sim/model" ]
  in
  let d = Units.mib in
  List.iter
    (fun n ->
      let n = max 2 (Harness.scaled ~scale n) in
      (* One write per client: consecutive writes from one client would
         coalesce under its cached grant and stop being "N conflicting
         writes" in the model's sense. *)
      let streams =
        Array.init n (fun _ ->
            ("/conflict", [ { Workloads.Access.off = 0; len = d } ]))
      in
      let r =
        Harness.run_streams ~params:no_mem_params
          ~policy:Seqdlm.Policy.dlm_basic ~mode:Seqdlm.Mode.PW ~servers:1
          ~stripes:1 ~streams ()
      in
      let model = Analytic.Model.bandwidth_exact no_mem_params ~n ~d in
      Table.add_row tbl
        [
          string_of_int n;
          Units.bytes_to_string d;
          Units.bandwidth_to_string model;
          Units.bandwidth_to_string r.bandwidth;
          Printf.sprintf "%.2f" (r.bandwidth /. model);
        ])
    [ 4; 8; 16 ];
  Table.add_note tbl
    "sim/model ≈ 1 confirms the simulator reproduces the §II-C cost structure";
  Table.add_note tbl
    "(run with infinite-bandwidth client cache — the model ignores memory operations)";
  Table.print tbl

let run ~scale =
  term_table ();
  validate ~scale
