(** Plain-text table rendering for the benchmark harness: each experiment
    prints the same rows/series as the corresponding paper table or
    figure. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val add_note : t -> string -> unit
(** Free-form line printed under the table (used for the paper-vs-measured
    commentary). *)

val render : t -> string

val render_csv : t -> string
(** Header row + data rows, comma-separated with minimal quoting (notes
    are omitted). *)

val print : t -> unit
(** [render] followed by a newline on stdout.  If the environment
    variable [CCPFS_TABLE_CSV] names a directory, a CSV copy of the
    table is also written there (slugified title as the file name) for
    plotting. *)
