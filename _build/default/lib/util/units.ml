let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let page = 4 * kib

let bytes_to_string n =
  if n >= gib && n mod gib = 0 then Printf.sprintf "%dGiB" (n / gib)
  else if n >= mib && n mod mib = 0 then Printf.sprintf "%dMiB" (n / mib)
  else if n >= kib && n mod kib = 0 then Printf.sprintf "%dKiB" (n / kib)
  else Printf.sprintf "%dB" n

let pp_bytes ppf n = Format.pp_print_string ppf (bytes_to_string n)

let bandwidth_to_string b =
  if b >= 1e9 then Printf.sprintf "%.2fGB/s" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2fMB/s" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2fKB/s" (b /. 1e3)
  else Printf.sprintf "%.2fB/s" b

let pp_bandwidth ppf b = Format.pp_print_string ppf (bandwidth_to_string b)

let seconds_to_string s =
  if s >= 1. then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fus" (s *. 1e6)

let pp_seconds ppf s = Format.pp_print_string ppf (seconds_to_string s)
