type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
  mutable notes : string list;
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }
let add_row t row = t.rows <- row :: t.rows
let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let pad row =
    let n = List.length row in
    if n >= ncols then row
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure t.columns;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line t.columns;
  let total = Array.fold_left (fun a w -> a + w + 2) (-2) widths in
  Buffer.add_string buf (String.make (max 1 total) '-');
  Buffer.add_char buf '\n';
  List.iter line rows;
  List.iter
    (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let render_csv t =
  let buf = Buffer.create 256 in
  let line row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter line (List.rev t.rows);
  Buffer.contents buf

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    title

let print t =
  print_string (render t);
  print_newline ();
  match Sys.getenv_opt "CCPFS_TABLE_CSV" with
  | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
      let path = Filename.concat dir (slug t.title ^ ".csv") in
      let oc = open_out path in
      output_string oc (render_csv t);
      close_out oc
  | Some _ | None -> ()
