(** Maps from disjoint half-open byte intervals to values.

    This is the single data structure behind the three extent stores in
    the system: the client-cache page extent lists (value = SN of the
    dirty data), the data-server extent cache (value = max SN written to
    the device, paper §IV-B) and the abstract file contents used for
    correctness checking.

    The map maintains the invariant that stored intervals are pairwise
    disjoint.  Adjacent intervals with equal values are not automatically
    merged; use {!coalesce} (the extent cache merges "continuous extents
    of the same stripe with the same SN" to bound its size). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of stored extents (the quantity the data server's cleanup task
    compares against its 256 K-entry threshold). *)

val set : 'a t -> Interval.t -> 'a -> 'a t
(** [set m iv v] overwrites the range [iv] with [v], splitting any
    overlapping extents. *)

val remove : 'a t -> Interval.t -> 'a t
(** Clear a range, splitting partially-covered extents. *)

val find : 'a t -> int -> 'a option
(** Value at a byte offset, if covered. *)

val overlapping : 'a t -> Interval.t -> (Interval.t * 'a) list
(** Extents intersecting the range, clipped to it, in offset order. *)

val covered : 'a t -> Interval.t -> bool
(** True iff every byte of the range is mapped. *)

val merge :
  'a t -> Interval.t -> 'a -> keep_new:(old:'a -> bool) ->
  'a t * Interval.t list
(** [merge m iv v ~keep_new] writes [v] over [iv] but, where an old value
    [w] is present, keeps [w] unless [keep_new ~old:w].  Returns the new
    map and the ordered sub-ranges where the new value won (the paper's
    "update set": the parts of an out-of-order flush that must actually
    reach the device). *)

val fold : (Interval.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Fold in increasing offset order. *)

val iter : (Interval.t -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> (Interval.t * 'a) list
val of_list : (Interval.t * 'a) list -> 'a t
(** Builds by successive {!set}; later entries win on overlap. *)

val coalesce : eq:('a -> 'a -> bool) -> 'a t -> 'a t
(** Merge adjacent extents carrying equal values. *)

val filter : (Interval.t -> 'a -> bool) -> 'a t -> 'a t

val check_invariants : 'a t -> unit
(** Raises [Assert_failure] if intervals are not sorted and disjoint.
    Used by the property tests. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
