(** Byte-size constants and human-readable formatting for the experiment
    reports (bandwidths as GB/s like the paper's figures, times in
    seconds, sizes in KiB/MiB). *)

val kib : int
val mib : int
val gib : int

val page : int
(** 4 KiB — the minimal management unit of the PFS client cache and the
    alignment of lock ranges (paper §III-B2, §V-C2). *)

val bytes_to_string : int -> string
(** "64KiB", "1MiB", "47008B", ... *)

val pp_bytes : Format.formatter -> int -> unit

val pp_bandwidth : Format.formatter -> float -> unit
(** Bytes/second, rendered as GB/s or MB/s (decimal, like the paper). *)

val pp_seconds : Format.formatter -> float -> unit

val bandwidth_to_string : float -> string
val seconds_to_string : float -> string
