(** Abstract file / stripe contents.

    Simulated experiments move hundreds of gigabytes, so data payloads are
    not materialised as bytes.  A write is identified by its provenance —
    (writer id, per-writer op counter, sequence number) — and contents are
    interval maps from byte ranges to provenance.  Two contents are equal
    iff a real byte store written the same way would be equal, and a
    checksum lets the data-safety experiments compare replicas exactly as
    the paper compares checksums (§V-B1). *)

type tag = { writer : int; op : int; sn : int }
(** Provenance of a block of written data.  [sn] is the sequence number of
    the lock the write was performed under. *)

val pp_tag : Format.formatter -> tag -> unit

type t

val empty : t
val write : t -> Interval.t -> tag -> t
(** Overwrite a range unconditionally (in-order application). *)

val write_if_newer : t -> Interval.t -> tag -> t * Interval.t list
(** Apply a possibly out-of-order flush: the new data only lands where its
    [sn] is strictly greater than what is present.  Returns the update
    set. *)

val overlay_cached : t -> Interval.t -> tag -> t
(** Overlay a client-cache extent over (already flushed) base data: the
    cached data wins where its [sn] is greater {e or equal} — an equal SN
    means the same lock, whose freshest bytes live in the cache. *)

val read : t -> Interval.t -> (Interval.t * tag option) list
(** Contents over a range; [None] marks never-written (hole) bytes. *)

val equal : t -> t -> bool
(** Equality up to extent fragmentation. *)

val checksum : t -> int
(** Stable across fragmentation; equal contents have equal checksums. *)

val written_bytes : t -> int
val extent_count : t -> int
val pp : Format.formatter -> t -> unit
