type tag = { writer : int; op : int; sn : int }

let pp_tag ppf t =
  Format.fprintf ppf "w%d#%d@@sn%d" t.writer t.op t.sn

type t = tag Extent_map.t

let empty = Extent_map.empty
let write m iv tag = Extent_map.set m iv tag

let write_if_newer m iv tag =
  Extent_map.merge m iv tag ~keep_new:(fun ~old -> tag.sn > old.sn)

let overlay_cached m iv tag =
  fst (Extent_map.merge m iv tag ~keep_new:(fun ~old -> tag.sn >= old.sn))

let read m iv =
  (* Walk the covered extents, inserting explicit holes. *)
  let covered = Extent_map.overlapping m iv in
  let out = ref [] in
  let push lo hi v = if lo < hi then out := (Interval.v ~lo ~hi, v) :: !out in
  let pos =
    List.fold_left
      (fun pos ((e : Interval.t), tag) ->
        push pos e.lo None;
        push e.lo e.hi (Some tag);
        e.hi)
      iv.Interval.lo covered
  in
  push pos iv.Interval.hi None;
  List.rev !out

let tag_equal a b = a.writer = b.writer && a.op = b.op && a.sn = b.sn
let normalize m = Extent_map.coalesce ~eq:tag_equal m

let equal a b =
  let la = Extent_map.to_list (normalize a)
  and lb = Extent_map.to_list (normalize b) in
  List.length la = List.length lb
  && List.for_all2
       (fun (ia, ta) (ib, tb) -> Interval.equal ia ib && tag_equal ta tb)
       la lb

let checksum m =
  Extent_map.fold
    (fun (iv : Interval.t) tag acc ->
      let mix acc x = (acc * 1_000_003) lxor x in
      List.fold_left mix acc [ iv.lo; iv.hi; tag.writer; tag.op; tag.sn ])
    (normalize m) 0x9e3779b9

let written_bytes m =
  Extent_map.fold (fun iv _ acc -> acc + Interval.length iv) m 0

let extent_count = Extent_map.cardinal
let pp ppf m = Extent_map.pp pp_tag ppf m
