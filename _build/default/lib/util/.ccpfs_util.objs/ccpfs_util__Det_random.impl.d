lib/util/det_random.ml: Array Random
