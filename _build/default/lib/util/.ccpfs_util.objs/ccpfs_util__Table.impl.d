lib/util/table.ml: Array Buffer Filename List String Sys
