lib/util/content.ml: Extent_map Format Interval List
