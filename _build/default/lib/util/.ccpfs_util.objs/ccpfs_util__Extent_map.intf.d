lib/util/extent_map.mli: Format Interval
