lib/util/extent_map.ml: Format Int Interval List Map Seq
