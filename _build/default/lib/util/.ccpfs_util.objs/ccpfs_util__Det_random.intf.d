lib/util/det_random.mli:
