lib/util/content.mli: Format Interval
