lib/util/units.ml: Format Printf
