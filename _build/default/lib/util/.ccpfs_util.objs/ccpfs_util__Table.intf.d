lib/util/table.mli:
