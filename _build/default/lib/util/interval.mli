(** Half-open byte intervals [lo, hi).

    Lock ranges, cached-data extents and data-server extent-cache entries
    are all intervals over file/stripe offsets.  [hi = eof] encodes the
    "expanded to end-of-file" ranges produced by the lock servers'
    range-expanding mechanism (the paper's [start, EOF]). *)

type t = private { lo : int; hi : int }

val eof : int
(** Sentinel for "end of file" used by expanded lock ranges. *)

val v : lo:int -> hi:int -> t
(** [v ~lo ~hi] is the interval [lo, hi).  Raises [Invalid_argument] if
    [lo < 0] or [hi <= lo]. *)

val of_len : lo:int -> len:int -> t
(** [of_len ~lo ~len] is [v ~lo ~hi:(lo + len)]. *)

val to_eof : lo:int -> t
(** [to_eof ~lo] is the interval [lo, eof). *)

val length : t -> int
(** Byte length; [length (to_eof ~lo)] is [eof - lo]. *)

val overlaps : t -> t -> bool
(** Non-empty intersection. *)

val touches : t -> t -> bool
(** Overlapping or adjacent (can be merged into one interval). *)

val contains : t -> t -> bool
(** [contains a b] iff [b] lies entirely within [a]. *)

val mem : t -> int -> bool
(** [mem a off] iff [lo <= off < hi]. *)

val inter : t -> t -> t option
(** Intersection, [None] if disjoint. *)

val hull : t -> t -> t
(** Smallest interval covering both. *)

val align : page:int -> t -> t
(** Expand to [page]-byte boundaries (lock servers align lock ranges to
    4 KiB pages, which is what makes adjacent unaligned writes conflict
    in the paper's Fig. 21 workload). *)

val split_at : t -> int -> t option * t option
(** [split_at a cut] splits into the parts strictly below and at-or-above
    [cut]. *)

val compare : t -> t -> int
(** Order by [lo], then [hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
