module Int_map = Map.Make (Int)

(* Keyed by extent start; each binding [lo -> (hi, v)] is the extent
   [lo, hi) carrying [v].  Invariant: extents are pairwise disjoint.
   The entry count is tracked incrementally so [cardinal] is O(1) —
   the data server's cleanup trigger reads it on every flush RPC. *)
type 'a t = { m : (int * 'a) Int_map.t; n : int }

let empty = { m = Int_map.empty; n = 0 }
let is_empty t = Int_map.is_empty t.m
let cardinal t = t.n

(* Extents intersecting [lo, hi), unclipped, in offset order. *)
let raw_overlapping t lo hi =
  let first =
    match Int_map.find_last_opt (fun k -> k <= lo) t.m with
    | Some (l, (h, v)) when h > lo -> [ (l, h, v) ]
    | Some _ | None -> []
  in
  let rest =
    Int_map.to_seq_from (lo + 1) t.m
    |> Seq.take_while (fun (l, _) -> l < hi)
    |> Seq.map (fun (l, (h, v)) -> (l, h, v))
    |> List.of_seq
  in
  first @ rest

let remove_span t lo hi =
  let ov = raw_overlapping t lo hi in
  let m = List.fold_left (fun m (l, _, _) -> Int_map.remove l m) t.m ov in
  let n = t.n - List.length ov in
  let m, n =
    List.fold_left
      (fun (m, n) (l, h, w) ->
        let m, n = if l < lo then (Int_map.add l (lo, w) m, n + 1) else (m, n) in
        if h > hi then (Int_map.add hi (h, w) m, n + 1) else (m, n))
      (m, n) ov
  in
  { m; n }

let set t (iv : Interval.t) v =
  let t = remove_span t iv.lo iv.hi in
  { m = Int_map.add iv.lo (iv.hi, v) t.m; n = t.n + 1 }

let remove t (iv : Interval.t) = remove_span t iv.lo iv.hi

let find t off =
  match Int_map.find_last_opt (fun k -> k <= off) t.m with
  | Some (_, (h, v)) when h > off -> Some v
  | Some _ | None -> None

let overlapping t (iv : Interval.t) =
  raw_overlapping t iv.lo iv.hi
  |> List.map (fun (l, h, v) ->
         (Interval.v ~lo:(max l iv.lo) ~hi:(min h iv.hi), v))

let covered m (iv : Interval.t) =
  let rec loop pos = function
    | [] -> pos >= iv.hi
    | ((e : Interval.t), _) :: rest ->
        if e.lo > pos then false else loop (max pos e.hi) rest
  in
  loop iv.lo (overlapping m iv)

let merge m (iv : Interval.t) v ~keep_new =
  (* Sub-ranges of [iv] where the new value wins: gaps, plus covered parts
     whose old value loses to [keep_new]. *)
  let ov = overlapping m iv in
  let won = ref [] in
  let push lo hi = if lo < hi then won := Interval.v ~lo ~hi :: !won in
  let pos =
    List.fold_left
      (fun pos ((e : Interval.t), w) ->
        push pos e.lo;
        if keep_new ~old:w then push e.lo e.hi;
        e.hi)
      iv.lo ov
  in
  push pos iv.hi;
  let won = List.rev !won in
  let m = List.fold_left (fun m seg -> set m seg v) m won in
  (m, won)

let fold f t acc =
  Int_map.fold (fun lo (hi, v) acc -> f (Interval.v ~lo ~hi) v acc) t.m acc

let iter f t = Int_map.iter (fun lo (hi, v) -> f (Interval.v ~lo ~hi) v) t.m
let to_list t = List.rev (fold (fun iv v acc -> (iv, v) :: acc) t [])
let of_list l = List.fold_left (fun t (iv, v) -> set t iv v) empty l

let coalesce ~eq t =
  let merged, last =
    fold
      (fun iv v (acc, last) ->
        match last with
        | Some ((p : Interval.t), pv) when p.hi = iv.lo && eq pv v ->
            (acc, Some (Interval.v ~lo:p.lo ~hi:iv.hi, pv))
        | Some (p, pv) -> ((p, pv) :: acc, Some (iv, v))
        | None -> (acc, Some (iv, v)))
      t ([], None)
  in
  let entries =
    match last with Some e -> List.rev (e :: merged) | None -> []
  in
  List.fold_left
    (fun t (iv, v) ->
      { m = Int_map.add iv.Interval.lo (iv.Interval.hi, v) t.m; n = t.n + 1 })
    empty entries

let filter f t =
  let m = Int_map.filter (fun lo (hi, v) -> f (Interval.v ~lo ~hi) v) t.m in
  { m; n = Int_map.cardinal m }

let check_invariants t =
  let _ =
    Int_map.fold
      (fun lo (hi, _) prev_hi ->
        assert (lo < hi);
        assert (lo >= prev_hi);
        hi)
      t.m 0
  in
  assert (t.n = Int_map.cardinal t.m)

let pp pp_v ppf m =
  Format.fprintf ppf "@[<v>";
  iter (fun iv v -> Format.fprintf ppf "%a -> %a@," Interval.pp iv pp_v v) m;
  Format.fprintf ppf "@]"
