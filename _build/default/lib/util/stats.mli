(** Streaming sample accumulator used by the experiment harness for
    latency breakdowns and bandwidth series. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0. on an empty accumulator. *)

val min : t -> float
val max : t -> float
val stddev : t -> float
val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; nearest-rank. *)

val pp_summary : Format.formatter -> t -> unit
