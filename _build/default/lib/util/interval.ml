type t = { lo : int; hi : int }

let eof = max_int

let v ~lo ~hi =
  if lo < 0 then invalid_arg "Interval.v: negative lo";
  if hi <= lo then invalid_arg "Interval.v: hi <= lo";
  { lo; hi }

let of_len ~lo ~len = v ~lo ~hi:(lo + len)
let to_eof ~lo = v ~lo ~hi:eof
let length a = a.hi - a.lo
let overlaps a b = a.lo < b.hi && b.lo < a.hi
let touches a b = a.lo <= b.hi && b.lo <= a.hi
let contains a b = a.lo <= b.lo && b.hi <= a.hi
let mem a off = a.lo <= off && off < a.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let align ~page a =
  let lo = a.lo / page * page in
  let hi = if a.hi = eof then eof else (a.hi + page - 1) / page * page in
  { lo; hi }

let split_at a cut =
  let below = if a.lo < cut then Some { lo = a.lo; hi = min a.hi cut } else None in
  let above = if a.hi > cut then Some { lo = max a.lo cut; hi = a.hi } else None in
  (below, above)

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf a =
  if a.hi = eof then Format.fprintf ppf "[%d, EOF)" a.lo
  else Format.fprintf ppf "[%d, %d)" a.lo a.hi

let to_string a = Format.asprintf "%a" pp a
