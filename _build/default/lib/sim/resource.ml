type t = {
  eng : Engine.t;
  rate : float;
  mutable available_at : float;
  mutable busy : float;
}

let create eng ~rate =
  if rate <= 0. then invalid_arg "Resource.create: rate must be positive";
  { eng; rate; available_at = 0.; busy = 0. }

let consume t amount =
  if amount < 0. then invalid_arg "Resource.consume: negative amount";
  if t.rate = infinity || amount = 0. then ()
  else begin
    let service = amount /. t.rate in
    let now = Engine.now t.eng in
    let start = Float.max now t.available_at in
    t.available_at <- start +. service;
    t.busy <- t.busy +. service;
    Engine.sleep t.eng (t.available_at -. now)
  end

let busy_seconds t = t.busy
let backlog_until t = t.available_at
let rate t = t.rate
