exception Deadlock of string list

type proc = {
  pid : int;
  name : string;
  daemon : bool;
  mutable blocked : bool;
  mutable done_ : bool;
}

type event = { time : float; seq : int; proc : proc option; thunk : unit -> unit }

(* Binary min-heap on (time, seq); seq breaks ties deterministically in
   scheduling order. *)
module Heap = struct
  type t = { mutable a : event option array; mutable n : int }

  let create () = { a = Array.make 1024 None; n = 0 }

  let before x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let get h i = match h.a.(i) with Some e -> e | None -> assert false

  let push h e =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) None in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let i = ref h.n in
    h.a.(h.n) <- Some e;
    h.n <- h.n + 1;
    while
      !i > 0 &&
      let p = (!i - 1) / 2 in
      before (get h !i) (get h p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(!i) in
      h.a.(!i) <- h.a.(p);
      h.a.(p) <- tmp;
      i := p
    done

  let peek h = if h.n = 0 then None else h.a.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = get h 0 in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && before (get h l) (get h !smallest) then smallest := l;
        if r < h.n && before (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!i) in
          h.a.(!i) <- h.a.(!smallest);
          h.a.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type t = {
  mutable now : float;
  mutable seq : int;
  heap : Heap.t;
  mutable current : proc option;
  mutable live : int; (* regular (non-daemon) processes not yet done *)
  mutable regular_spawned : int;
  mutable next_pid : int;
  mutable dispatched : int;
  mutable blocked_procs : proc list; (* regular procs currently suspended *)
}

let create () =
  { now = 0.; seq = 0; heap = Heap.create (); current = None; live = 0;
    regular_spawned = 0; next_pid = 0; dispatched = 0; blocked_procs = [] }

let now t = t.now
let live_processes t = t.live
let events_dispatched t = t.dispatched

let push_event t ~time ~proc thunk =
  t.seq <- t.seq + 1;
  Heap.push t.heap { time; seq = t.seq; proc; thunk }

let schedule t ?(delay = 0.) thunk =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  push_event t ~time:(t.now +. delay) ~proc:None thunk

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let mark_blocked t proc =
  proc.blocked <- true;
  if not proc.daemon then t.blocked_procs <- proc :: t.blocked_procs

let mark_unblocked t proc =
  proc.blocked <- false;
  if not proc.daemon then
    t.blocked_procs <- List.filter (fun p -> p.pid <> proc.pid) t.blocked_procs

let spawn t ?(daemon = false) ~name body =
  t.next_pid <- t.next_pid + 1;
  let proc = { pid = t.next_pid; name; daemon; blocked = false; done_ = false } in
  if not daemon then begin
    t.live <- t.live + 1;
    t.regular_spawned <- t.regular_spawned + 1
  end;
  let finish () =
    proc.done_ <- true;
    if not daemon then t.live <- t.live - 1
  in
  let open Effect.Deep in
  let exec () =
    match_with body ()
      {
        retc = (fun () -> finish ());
        exnc = (fun e -> finish (); raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let resumed = ref false in
                    mark_blocked t proc;
                    register (fun () ->
                        if not !resumed then begin
                          resumed := true;
                          mark_unblocked t proc;
                          push_event t ~time:t.now ~proc:(Some proc)
                            (fun () -> continue k ())
                        end))
            | _ -> None);
      }
  in
  push_event t ~time:t.now ~proc:(Some proc) exec

let suspend _t register = Effect.perform (Suspend register)

let sleep t d =
  if d < 0. then invalid_arg "Engine.sleep: negative duration";
  if d = 0. then ()
  else suspend t (fun resume -> push_event t ~time:(t.now +. d) ~proc:t.current resume)

let run ?until t =
  let stop_time = Option.value until ~default:infinity in
  let rec loop () =
    if t.regular_spawned > 0 && t.live = 0 then ()
    else
      match Heap.peek t.heap with
      | None ->
          if t.live > 0 then begin
            let names =
              List.sort compare (List.map (fun p -> p.name) t.blocked_procs)
            in
            raise (Deadlock names)
          end
      | Some ev when ev.time > stop_time -> t.now <- stop_time
      | Some _ ->
          (match Heap.pop t.heap with
          | None -> assert false
          | Some ev ->
              t.now <- ev.time;
              t.current <- ev.proc;
              t.dispatched <- t.dispatched + 1;
              ev.thunk ();
              t.current <- None);
          loop ()
  in
  loop ()
