(** Deterministic discrete-event simulation engine.

    Clients, lock servers and data servers of the simulated cluster run as
    cooperative processes (OCaml 5 effect-handler coroutines) over a
    shared virtual clock.  A process runs until it blocks — on a timer
    ({!sleep}), a mailbox, a semaphore or a bandwidth resource — and the
    engine then dispatches the next event in (time, sequence) order, so
    runs are reproducible event-for-event.

    Two kinds of processes exist: regular ones, which the simulation runs
    to completion, and daemons (cache-flush daemons, extent-cache cleanup
    tasks) that may block forever.  {!run} returns once every regular
    process has finished; if the event queue drains while regular
    processes are still blocked, the simulation is deadlocked and
    {!Deadlock} is raised with their names. *)

type t

exception Deadlock of string list
(** Names of the regular processes blocked forever. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> unit
(** Start a process at the current virtual time.  [daemon] defaults to
    [false]. *)

val schedule : t -> ?delay:float -> (unit -> unit) -> unit
(** Run a plain thunk (not a blocking process) at [now + delay]. *)

val run : ?until:float -> t -> unit
(** Dispatch events until every regular process has finished, the queue is
    empty, or virtual time would pass [until].  May be called again to
    continue a paused simulation.

    @raise Deadlock if the queue drains with regular processes blocked. *)

(** {1 Inside a process}

    The following must only be called from code running inside a
    process spawned on the same engine. *)

val sleep : t -> float -> unit
(** Block for a virtual duration (>= 0). *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] blocks the current process and hands [register] a
    resume function; calling it (once) reschedules the process at the
    virtual time of the call.  This is the primitive the blocking
    synchronisation structures are built from. *)

val live_processes : t -> int
(** Regular processes spawned and not yet finished. *)

val events_dispatched : t -> int
(** Total events processed so far (simulation-cost metric). *)
