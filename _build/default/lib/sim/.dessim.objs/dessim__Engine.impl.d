lib/sim/engine.ml: Array Effect List Option
