lib/sim/engine.mli:
