type lock_state = Granted | Canceling

let state_to_string = function Granted -> "GRANTED" | Canceling -> "CANCELING"
let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

let compatible ~req ~granted ~state =
  match (req, granted, state) with
  | Mode.PR, Mode.PR, _ -> true
  | Mode.PR, (Mode.NBW | Mode.BW | Mode.PW), _ -> false
  | (Mode.NBW | Mode.BW), Mode.NBW, Canceling -> true (* early grant *)
  | (Mode.NBW | Mode.BW), Mode.NBW, Granted -> false
  | (Mode.NBW | Mode.BW), (Mode.PR | Mode.BW | Mode.PW), _ -> false
  | Mode.PW, _, _ -> false

let request_conflict a b =
  not (compatible ~req:a ~granted:b ~state:Granted)
