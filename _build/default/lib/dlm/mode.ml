type t = PR | NBW | BW | PW

let is_write = function NBW | BW | PW -> true | PR -> false
let can_read = function PR | PW -> true | NBW | BW -> false
let can_write = function NBW | BW | PW -> true | PR -> false

let severity = function NBW -> 0 | PR -> 1 | BW -> 1 | PW -> 2

let join a b =
  match (a, b) with
  | PW, _ | _, PW -> PW
  | PR, PR -> PR
  | PR, (NBW | BW) | (NBW | BW), PR -> PW
  | BW, (NBW | BW) | NBW, BW -> BW
  | NBW, NBW -> NBW

let subsumes ~cached ~wanted =
  match (wanted, cached) with
  | PR, (PR | PW) -> true
  | PR, (NBW | BW) -> false
  | NBW, (NBW | BW | PW) -> true
  | NBW, PR -> false
  | BW, (BW | PW) -> true
  | BW, (PR | NBW) -> false
  | PW, PW -> true
  | PW, (PR | NBW | BW) -> false

let equal a b = a = b
let compare = Stdlib.compare
let to_string = function PR -> "PR" | NBW -> "NBW" | BW -> "BW" | PW -> "PW"
let pp ppf m = Format.pp_print_string ppf (to_string m)
