(** The lock compatibility matrix of SeqDLM (paper Table II).

    A granted lock is in one of two states.  GRANTED locks may be cached
    and reused by their holder; CANCELING locks have been revoked (the
    server processed the revocation reply, or the lock was granted with
    early revocation piggybacked) and will be cancelled after use.

    Early grant is the single N/Y entry pair: a new NBW or BW request is
    incompatible with a GRANTED NBW lock but compatible with a CANCELING
    one — the grant does not wait for the old lock's data flushing.  BW
    and PW granted locks block every conflicting request in both states,
    which is what preserves multi-resource write atomicity and
    read-update atomicity. *)

type lock_state = Granted | Canceling

val state_to_string : lock_state -> string
val pp_state : Format.formatter -> lock_state -> unit

val compatible : req:Mode.t -> granted:Mode.t -> state:lock_state -> bool
(** Table II, row = [req], column = [granted] in [state]. *)

val request_conflict : Mode.t -> Mode.t -> bool
(** Conservative conflict between two not-yet-granted requests (both
    treated as GRANTED): used for queue fairness and for detecting the
    "newer conflicting request" condition of early revocation. *)
