lib/dlm/mode.ml: Format Stdlib
