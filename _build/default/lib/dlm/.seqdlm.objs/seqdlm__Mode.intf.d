lib/dlm/mode.mli: Format
