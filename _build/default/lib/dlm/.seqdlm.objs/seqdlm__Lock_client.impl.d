lib/dlm/lock_client.ml: Ccpfs_util Condition Dessim Engine Hashtbl Interval Lcm List Lock_server Mode Netsim Node Option Params Policy Printf Rpc Types
