lib/dlm/lcm.ml: Format Mode
