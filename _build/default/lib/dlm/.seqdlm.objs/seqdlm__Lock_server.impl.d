lib/dlm/lock_server.ml: Ccpfs_util Dessim Engine Format Hashtbl Int Interval Lcm List Mode Netsim Node Option Params Policy Printf Rpc Types
