lib/dlm/lock_server.mli: Ccpfs_util Dessim Format Lcm Mode Netsim Policy Types
