lib/dlm/lcm.mli: Format Mode
