lib/dlm/types.ml: Ccpfs_util Format Interval Lcm List Mode
