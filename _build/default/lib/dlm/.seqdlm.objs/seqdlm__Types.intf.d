lib/dlm/types.mli: Ccpfs_util Format Lcm Mode
