lib/dlm/lock_client.mli: Ccpfs_util Dessim Lcm Lock_server Mode Netsim Types
