lib/dlm/policy.mli: Mode
