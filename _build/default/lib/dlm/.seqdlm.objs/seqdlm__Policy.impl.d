lib/dlm/policy.ml: Ccpfs_util Mode
