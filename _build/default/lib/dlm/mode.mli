(** SeqDLM lock modes (paper §III-C).

    The traditional read lock is kept as PR; the traditional write lock is
    refined into three write modes.  Restrictiveness (Fig. 9) orders them
    NBW < BW < PW, with PR on a separate branch joining the writes at PW:
    a more restrictive mode can stand in for a less restrictive one, and
    automatic lock conversion moves along these edges. *)

type t =
  | PR  (** Protective Read — shared read, the traditional read lock. *)
  | NBW
      (** Non-Blocking Write — write-only, no blocking feature; eligible
          for early grant.  The high-contention fast path. *)
  | BW
      (** Blocking Write — write-only but keeps the blocking feature;
          required for atomic writes across multiple resources
          (§III-B1). *)
  | PW
      (** Protective Write — read+write, the traditional write lock;
          required for atomic read-update operations (§III-B2). *)

val is_write : t -> bool
val can_read : t -> bool
(** PR and PW holders may read the resource. *)

val can_write : t -> bool
(** NBW, BW and PW holders may write it. *)

val severity : t -> int
(** Position in Fig. 9's restrictiveness order; PW is the maximum. *)

val join : t -> t -> t
(** Least restrictive mode subsuming both — the target of lock upgrading
    (Fig. 9's upward edges): [join PR NBW = PW], [join NBW BW = BW], etc. *)

val subsumes : cached:t -> wanted:t -> bool
(** Whether a cached lock of mode [cached] can serve an operation that
    selected [wanted] (a PW serves anything; a BW serves BW and NBW
    writes; PR serves reads only). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
