open Ccpfs_util

type client_id = int
type resource_id = int

type request = {
  client : client_id;
  rid : resource_id;
  mode : Mode.t;
  ranges : Interval.t list;
}

type grant = {
  lock_id : int;
  rid : resource_id;
  client : client_id;
  mode : Mode.t;
  ranges : Interval.t list;
  sn : int;
  state : Lcm.lock_state;
  replaces : int list;
}

type server_msg = Revoke of { rid : resource_id; lock_id : int }

type ctl_msg =
  | Revoke_ack of { rid : resource_id; lock_id : int }
  | Downgrade of { rid : resource_id; lock_id : int; mode : Mode.t }
  | Release of { rid : resource_id; lock_id : int }

let ranges_hull = function
  | [] -> invalid_arg "Types.ranges_hull: empty range list"
  | r :: rest -> List.fold_left Interval.hull r rest

let rec ranges_overlap a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | (x : Interval.t) :: xs, (y : Interval.t) :: ys ->
      if Interval.overlaps x y then true
      else if x.hi <= y.lo then ranges_overlap xs b
      else ranges_overlap a ys

let normalize_ranges ranges =
  let sorted = List.sort Interval.compare ranges in
  let rec merge = function
    | a :: b :: rest when Interval.touches a b ->
        merge (Interval.hull a b :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let pp_ranges ppf ranges =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Interval.pp ppf ranges

let pp_request ppf (r : request) =
  Format.fprintf ppf "req{c%d r%d %a %a}" r.client r.rid Mode.pp r.mode
    pp_ranges r.ranges

let pp_grant ppf g =
  Format.fprintf ppf "grant{#%d c%d r%d %a %a sn%d %a}" g.lock_id g.client
    g.rid Mode.pp g.mode pp_ranges g.ranges g.sn Lcm.pp_state g.state
