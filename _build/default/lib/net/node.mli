(** A simulated machine: one NIC ingress pipe, one RPC service processor
    and, for data servers, one storage device.  The client-cache memory
    bandwidth also lives here so writes absorbed by the cache cost
    [size / b_mem] of the owning node's memory pipe (what bounds the
    paper's N-N curve in Fig. 4). *)

type t

val create : Dessim.Engine.t -> Params.t -> name:string -> ?with_disk:bool ->
  unit -> t

val name : t -> string
val rx : t -> Dessim.Resource.t
(** Inbound bulk-data pipe ([b_net]). *)

val ctl_rx : t -> Dessim.Resource.t
(** Inbound control-message pipe: small RPCs are interleaved with bulk
    transfers by the NIC rather than queued behind them, so they ride a
    separate pipe of the same rate. *)

val ops : t -> Dessim.Resource.t
(** RPC service processor ([server_ops]). *)

val mem : t -> Dessim.Resource.t
(** Memory/cache pipe ([b_mem]). *)

val disk : t -> Dessim.Resource.t
(** @raise Invalid_argument if the node was created without a disk. *)

val has_disk : t -> bool

val disk_write : t -> int -> unit
(** Occupy the device for [bytes / b_disk] seconds (FIFO) and account the
    bytes. *)

val disk_bytes_written : t -> int
val rpc_count : t -> int
val incr_rpc : t -> unit
val net_bytes_in : t -> int
val add_net_bytes : t -> int -> unit
