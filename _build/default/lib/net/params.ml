type t = {
  rtt : float;
  b_net : float;
  server_ops : float;
  b_disk : float;
  b_mem : float;
  ctl_msg_bytes : int;
  bulk_threshold : int;
  client_io_overhead : float;
}

let default =
  {
    rtt = 10e-6;
    b_net = 12.5e9;
    server_ops = 213_000.;
    b_disk = 3e9;
    b_mem = 10e9;
    ctl_msg_bytes = 256;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 25e-6;
  }

let table1 =
  {
    rtt = 1e-6;
    b_net = 12.5e9;
    server_ops = 1e7;
    b_disk = 3e9;
    b_mem = 2.2e9;
    ctl_msg_bytes = 256;
    bulk_threshold = 16 * 1024;
    client_io_overhead = 0.;
  }

let b_flush t =
  if t.b_net = infinity then t.b_disk
  else if t.b_disk = infinity then t.b_net
  else t.b_net *. t.b_disk /. (t.b_net +. t.b_disk)

let pp ppf t =
  Format.fprintf ppf
    "rtt=%gus b_net=%s server_ops=%gk b_disk=%s b_mem=%s io_ovh=%gus"
    (t.rtt *. 1e6)
    (Ccpfs_util.Units.bandwidth_to_string t.b_net)
    (t.server_ops /. 1e3)
    (Ccpfs_util.Units.bandwidth_to_string t.b_disk)
    (Ccpfs_util.Units.bandwidth_to_string t.b_mem)
    (t.client_io_overhead *. 1e6)
