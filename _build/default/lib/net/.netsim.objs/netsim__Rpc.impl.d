lib/net/rpc.ml: Dessim Engine Ivar Node Option Params Resource
