lib/net/params.ml: Ccpfs_util Format
