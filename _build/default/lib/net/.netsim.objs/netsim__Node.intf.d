lib/net/node.mli: Dessim Params
