lib/net/node.ml: Dessim Option Params Resource
