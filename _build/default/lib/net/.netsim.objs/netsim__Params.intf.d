lib/net/params.mli: Format
