lib/net/rpc.mli: Dessim Node Params
