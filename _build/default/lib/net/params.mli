(** Hardware and transport parameters of a simulated cluster.

    These are the quantities the paper's cost model (§II-C, Table I) is
    built from.  {!default} reflects the evaluation testbed (§V-A):
    CaRT on verbs at ~213 kOPS per server, 100 Gbps HDR links, 3.2 TB
    NVMe SSDs; {!table1} reflects the idealised Table I numbers used for
    the analytical bottleneck argument. *)

type t = {
  rtt : float;  (** network round-trip time, seconds *)
  b_net : float;  (** link bandwidth, bytes/second *)
  server_ops : float;  (** RPC operations/second one server sustains *)
  b_disk : float;  (** storage-device bandwidth, bytes/second *)
  b_mem : float;  (** client-cache (memory) bandwidth, bytes/second *)
  ctl_msg_bytes : int;  (** size of lock-protocol control messages *)
  bulk_threshold : int;
      (** messages larger than this travel on the node's bulk data pipe;
          smaller ones use the control pipe.  Models packet-interleaving
          NICs / CaRT's separation of small RPCs from verbs bulk data: a
          256-byte lock message does not wait behind a full 1 MiB flush
          transfer. *)
  client_io_overhead : float;
      (** fixed client-side seconds per IO operation (syscall, page
          bookkeeping, pool allocation).  ~25 µs for ccPFS, which
          pre-registers an RDMA memory pool (§IV); larger for the
          original-Lustre client path of Fig. 20/24. *)
}

val default : t
(** Evaluation-testbed parameters. *)

val table1 : t
(** Table I parameters (idealised IB + NVMe) for the analytic model. *)

val b_flush : t -> float
(** Eq. (2): the data-flushing bandwidth B_net·B_disk/(B_net+B_disk). *)

val pp : Format.formatter -> t -> unit
