let vars = 8
let elem = 4

let accesses ~nprocs ~rank ~particles ~iterations =
  if rank < 0 || rank >= nprocs then invalid_arg "Vpic.accesses: bad rank";
  let seg = particles * elem in
  List.concat
    (List.init iterations (fun it ->
         List.init vars (fun v ->
             let base = ((it * vars) + v) * nprocs * seg in
             { Access.off = base + (rank * seg); len = seg })))

let write_size ~particles = particles * elem

let total_bytes ~nprocs ~particles ~iterations =
  nprocs * particles * elem * vars * iterations
