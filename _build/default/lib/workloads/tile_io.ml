open Ccpfs_util

type grid = { rows : int; cols : int; tile : int; overlap : int; elem : int }

let paper_grid = { rows = 8; cols = 12; tile = 20480; overlap = 100; elem = 4 }

let scaled_grid g ~scale =
  let tile = max 8 (int_of_float (float_of_int g.tile *. scale)) in
  let overlap = max 1 (min (tile / 4) (int_of_float (float_of_int g.overlap *. scale))) in
  { g with tile; overlap }

let nclients g = g.rows * g.cols

(* Global array geometry: tiles are placed on a (tile - overlap) pitch,
   so the array is pitch*n + overlap pixels on each axis. *)
let width_px g = ((g.tile - g.overlap) * g.cols) + g.overlap
let height_px g = ((g.tile - g.overlap) * g.rows) + g.overlap

let ranges g ~rank =
  if rank < 0 || rank >= nclients g then invalid_arg "Tile_io.ranges: bad rank";
  let tr = rank / g.cols and tc = rank mod g.cols in
  let pitch = g.tile - g.overlap in
  let x0 = tc * pitch and y0 = tr * pitch in
  let row_bytes = width_px g * g.elem in
  List.init g.tile (fun dy ->
      let lo = ((y0 + dy) * row_bytes) + (x0 * g.elem) in
      Interval.of_len ~lo ~len:(g.tile * g.elem))

let file_bytes g = width_px g * height_px g * g.elem
let bytes_per_client g = g.tile * g.tile * g.elem
