lib/workloads/access.ml: Ccpfs_util List
