lib/workloads/ior.ml: Access List Printf
