lib/workloads/tile_io.ml: Ccpfs_util Interval List
