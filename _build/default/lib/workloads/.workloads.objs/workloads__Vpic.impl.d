lib/workloads/vpic.ml: Access List
