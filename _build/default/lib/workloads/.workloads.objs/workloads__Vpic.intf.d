lib/workloads/vpic.mli: Access
