lib/workloads/access.mli: Ccpfs_util
