lib/workloads/ior.mli: Access
