lib/workloads/tile_io.mli: Ccpfs_util
