type t = { off : int; len : int }

let interval a = Ccpfs_util.Interval.of_len ~lo:a.off ~len:a.len

type pattern = N_n | N1_segmented | N1_strided

let pattern_to_string = function
  | N_n -> "N-N"
  | N1_segmented -> "N-1 segmented"
  | N1_strided -> "N-1 strided"

let total_length l = List.fold_left (fun acc a -> acc + a.len) 0 l
let max_end l = List.fold_left (fun acc a -> max acc (a.off + a.len)) 0 l
