(** mpi-tile-io: a 2-D tile grid over a row-major array in a shared file
    (§V-D).  Client (r, c) owns one tile of [tile]×[tile] pixels of
    [elem] bytes; adjacent tiles overlap by [overlap] pixels in both
    dimensions, so neighbouring clients write intersecting bytes and the
    write set of one client is [tile] non-contiguous row segments that
    must be written atomically. *)

type grid = {
  rows : int;
  cols : int;
  tile : int;  (** tile edge, pixels *)
  overlap : int;  (** pixels shared with each neighbour *)
  elem : int;  (** bytes per pixel *)
}

val paper_grid : grid
(** 8×12 tiles of 20480² pixels, 4-byte elements, 100-pixel overlaps. *)

val scaled_grid : grid -> scale:float -> grid
(** Shrink tile edge (and overlap proportionally) for laptop runs; grid
    shape is preserved. *)

val nclients : grid -> int

val ranges : grid -> rank:int -> Ccpfs_util.Interval.t list
(** The non-contiguous byte ranges client [rank] writes (row-major rank:
    tile row = rank / cols).  Sorted, disjoint. *)

val file_bytes : grid -> int
val bytes_per_client : grid -> int
