let accesses ~pattern ~nprocs ~rank ~xfer ~blocks =
  if rank < 0 || rank >= nprocs then invalid_arg "Ior.accesses: bad rank";
  List.init blocks (fun k ->
      let off =
        match pattern with
        | Access.N_n -> k * xfer
        | Access.N1_segmented -> ((rank * blocks) + k) * xfer
        | Access.N1_strided -> (((k * nprocs) + rank) * xfer)
      in
      { Access.off; len = xfer })

let file_of_rank ~pattern ~rank =
  match pattern with
  | Access.N_n -> Printf.sprintf "/ior.rank%d" rank
  | Access.N1_segmented | Access.N1_strided -> "/ior.shared"

let blocks_for_total ~total ~xfer = max 1 (total / xfer)
