(** Access streams: ordered (offset, length) sequences, the only thing a
    DLM observes of a workload. *)

type t = { off : int; len : int }

val interval : t -> Ccpfs_util.Interval.t

type pattern =
  | N_n  (** file per process (Fig. 2(a)) *)
  | N1_segmented  (** shared file, one contiguous segment each (Fig. 2(b)) *)
  | N1_strided  (** shared file, interleaved slots (Fig. 2(c)) *)

val pattern_to_string : pattern -> string

val total_length : t list -> int
val max_end : t list -> int
