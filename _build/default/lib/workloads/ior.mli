(** The IOR benchmark's offset streams (§II-B, §V-C).

    Every rank writes [blocks] transfers of [xfer] bytes.  In the
    segmented pattern rank r owns the contiguous region
    [r·blocks·xfer, (r+1)·blocks·xfer); in the strided pattern block k of
    rank r lands in slot k·nprocs + r; in N-N each rank has its own file
    and writes sequentially from 0. *)

val accesses :
  pattern:Access.pattern -> nprocs:int -> rank:int -> xfer:int -> blocks:int ->
  Access.t list
(** In issue order. *)

val file_of_rank : pattern:Access.pattern -> rank:int -> string
(** Shared path for N-1 patterns, per-rank path for N-N. *)

val blocks_for_total : total:int -> xfer:int -> int
(** Number of transfers for a per-rank data volume ([>= 1]). *)
