(** The VPIC-IO / h5bench particle-write kernel (§V-E).

    Each of [nprocs] processes writes [particles] particles per
    iteration; a particle is 8 variables of 4 bytes.  Within one
    iteration each variable is a contiguous 1-D dataset of
    [nprocs · particles] elements, so rank r writes 8 contiguous
    segments of [particles · 4] bytes per iteration, at
    [base(iter, var) + r · particles · 4]. *)

val vars : int  (** 8 *)

val elem : int  (** 4 bytes *)

val accesses :
  nprocs:int -> rank:int -> particles:int -> iterations:int -> Access.t list
(** In issue order (iteration-major, then variable). *)

val write_size : particles:int -> int
(** particles · 4 — 256 KiB at P = 65 536, 1 MiB at P = 262 144. *)

val total_bytes : nprocs:int -> particles:int -> iterations:int -> int
