(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   section (the same rows/series, at laptop scale — see EXPERIMENTS.md
   for the paper-vs-measured record).

   Part 2 runs Bechamel microbenchmarks of the hot paths the simulation
   rests on: extent-map updates (client cache & data-server extent
   cache), LCM checks, layout arithmetic, lock-server queue passes and
   whole mini-cluster steps.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- experiments  # tables/figures only
     dune exec bench/main.exe -- micro        # microbenchmarks only *)

open Ccpfs_util
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let iv lo hi = Interval.v ~lo ~hi

let bench_extent_map_set =
  Test.make ~name:"extent_map.set (1k live extents)"
    (Staged.stage (fun () ->
         let m =
           List.fold_left
             (fun m k -> Extent_map.set m (iv (k * 8192) ((k * 8192) + 4096)) k)
             Extent_map.empty
             (List.init 1000 (fun k -> k))
         in
         Sys.opaque_identity (Extent_map.cardinal m)))

let bench_extent_map_merge =
  let base =
    List.fold_left
      (fun m k -> Extent_map.set m (iv (k * 8192) ((k * 8192) + 4096)) k)
      Extent_map.empty
      (List.init 1000 (fun k -> k))
  in
  Test.make ~name:"extent_map.merge by SN (data-server write routine)"
    (Staged.stage (fun () ->
         let m, won =
           Extent_map.merge base (iv 0 4_000_000) 5000 ~keep_new:(fun ~old ->
               5000 > old)
         in
         Sys.opaque_identity (Extent_map.cardinal m + List.length won)))

let bench_lcm =
  let modes = Seqdlm.Mode.[| PR; NBW; BW; PW |] in
  let states = Seqdlm.Lcm.[| Granted; Canceling |] in
  Test.make ~name:"lcm.compatible (full Table II sweep)"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         Array.iter
           (fun req ->
             Array.iter
               (fun granted ->
                 Array.iter
                   (fun state ->
                     if Seqdlm.Lcm.compatible ~req ~granted ~state then incr acc)
                   states)
               modes)
           modes;
         Sys.opaque_identity !acc))

let bench_layout_chunks =
  let l = Ccpfs.Layout.v ~stripe_count:8 () in
  Test.make ~name:"layout.chunks (16MiB over 8 stripes)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (List.length (Ccpfs.Layout.chunks l (iv 12345 (12345 + (16 * Units.mib)))))))

let bench_engine_events =
  Test.make ~name:"engine: 1k processes x sleep"
    (Staged.stage (fun () ->
         let eng = Dessim.Engine.create () in
         for i = 1 to 1000 do
           Dessim.Engine.spawn eng ~name:(string_of_int i) (fun () ->
               Dessim.Engine.sleep eng (float_of_int (i mod 13) *. 1e-5))
         done;
         Dessim.Engine.run eng;
         Sys.opaque_identity (Dessim.Engine.events_dispatched eng)))

let bench_lock_handoff =
  Test.make ~name:"full lock handoff chain (2 clients, 32 transfers)"
    (Staged.stage (fun () ->
         let params = Netsim.Params.default in
         let eng = Dessim.Engine.create () in
         let node = Netsim.Node.create eng params ~name:"s" () in
         let server =
           Seqdlm.Lock_server.create eng params ~node ~name:"ls"
             ~policy:Seqdlm.Policy.seqdlm
         in
         let clients =
           Array.init 2 (fun i ->
               let cn =
                 Netsim.Node.create eng params ~name:(Printf.sprintf "c%d" i) ()
               in
               let hooks =
                 {
                   Seqdlm.Lock_client.flush = (fun ~rid:_ ~ranges:_ -> ());
                   has_dirty = (fun ~rid:_ ~ranges:_ -> false);
                   invalidate = (fun ~rid:_ ~ranges:_ -> ());
                 }
               in
               Seqdlm.Lock_client.create eng params ~node:cn ~client_id:i
                 ~route:(fun _ -> server)
                 ~hooks)
         in
         for i = 0 to 1 do
           Dessim.Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
               for _ = 1 to 16 do
                 Seqdlm.Lock_client.with_lock clients.(i) ~rid:1
                   ~mode:Seqdlm.Mode.NBW
                   ~ranges:[ Interval.to_eof ~lo:0 ]
                   (fun _ -> ())
               done)
         done;
         Dessim.Engine.run eng;
         Sys.opaque_identity (Seqdlm.Lock_server.stats server).grants))

let bench_mini_cluster =
  Test.make ~name:"mini ccPFS cluster (4 clients x 32 strided writes)"
    (Staged.stage (fun () ->
         let cl = Ccpfs.Cluster.create ~n_servers:1 ~n_clients:4 () in
         for i = 0 to 3 do
           Ccpfs.Cluster.spawn_client cl i ~name:(Printf.sprintf "w%d" i)
             (fun c ->
               let f = Ccpfs.Client.open_file c ~create:true "/bench" in
               for k = 0 to 31 do
                 Ccpfs.Client.write c f
                   ~off:(((k * 4) + i) * 65536)
                   ~len:65536
               done)
         done;
         Ccpfs.Cluster.run cl;
         Sys.opaque_identity (Ccpfs.Cluster.total_bytes_written cl)))

let bench_dllist_churn =
  Test.make ~name:"dllist: 1k push_back + removal from the middle"
    (Staged.stage (fun () ->
         let l = Dllist.create () in
         let nodes = Array.init 1000 (fun k -> Dllist.push_back l k) in
         (* evens first, then odds — every removal is from the middle *)
         for k = 0 to 499 do
           Dllist.remove l nodes.(2 * k)
         done;
         for k = 0 to 499 do
           Dllist.remove l nodes.((2 * k) + 1)
         done;
         Sys.opaque_identity (Dllist.length l)))

let bench_interval_index_query =
  let m =
    List.fold_left
      (fun m k -> Interval_index.add m (iv (k * 8192) ((k * 8192) + 4096)) ~id:k k)
      Interval_index.empty
      (List.init 1000 (fun k -> k))
  in
  Test.make ~name:"interval_index: 1k stabbing queries over 1k extents"
    (Staged.stage (fun () ->
         let acc = ref 0 in
         for k = 0 to 999 do
           Interval_index.iter_overlapping m
             (iv (k * 8192) ((k * 8192) + 16384))
             (fun _ _ _ -> incr acc)
         done;
         Sys.opaque_identity !acc))

(* The open-loop schedule generator: drawing arrival gaps is on the
   load driver's setup path (one draw per injected request, the whole
   schedule materialized before the sweep point starts), so a slow MMPP
   hunt loop would tax every rate point.  Constant is the floor (pure
   arithmetic), Poisson adds one log per gap, MMPP adds the modulated
   dwell walk. *)
let bench_arrival_gaps =
  let procs =
    [
      ("constant", Load.Arrivals.Constant 1000.);
      ("poisson", Load.Arrivals.Poisson 1000.);
      ("mmpp", Load.Arrivals.bursty ~rate:1000.);
    ]
  in
  List.map
    (fun (tag, proc) ->
      Test.make ~name:(Printf.sprintf "arrivals.next_gap x1k (%s)" tag)
        (Staged.stage (fun () ->
             let a = Load.Arrivals.create ~seed:42 proc in
             let acc = ref 0. in
             for _ = 1 to 1000 do
               acc := !acc +. Load.Arrivals.next_gap a
             done;
             Sys.opaque_identity !acc)))
    procs

(* The tentpole hot path, without the simulated network: every client
   PW-locks the whole file, so each grant goes through one full queue
   pass with the rest of the fleet blocked behind a saturating waiter. *)
let bench_lock_server_contended_pass =
  let n = 256 in
  Test.make
    ~name:(Printf.sprintf "lock_server: %d contended whole-file PW handoffs" n)
    (Staged.stage (fun () ->
         let params = Netsim.Params.default in
         let eng = Dessim.Engine.create () in
         let node = Netsim.Node.create eng params ~name:"s" () in
         let server =
           Seqdlm.Lock_server.create eng params ~node ~name:"ls"
             ~policy:Seqdlm.Policy.seqdlm
         in
         for cid = 0 to n - 1 do
           let cn =
             Netsim.Node.create eng params ~name:(Printf.sprintf "c%d" cid) ()
           in
           Seqdlm.Lock_server.register_client server cid
             (Netsim.Rpc.endpoint eng params ~node:cn
                ~name:(Printf.sprintf "c%d.cb" cid)
                ~handler:(fun _ ~reply -> reply ()))
         done;
         let to_release = Queue.create () in
         for cid = 0 to n - 1 do
           Seqdlm.Lock_server.submit server
             {
               Seqdlm.Types.client = cid;
               rid = 1;
               mode = Seqdlm.Mode.PW;
               ranges = [ Interval.to_eof ~lo:0 ];
             }
             ~on_grant:(fun g ->
               Queue.push (g.Seqdlm.Types.rid, g.Seqdlm.Types.lock_id) to_release)
         done;
         (* Ping-pong: acking + releasing the head grant lets the next
            waiter through, queueing its own (rid, lock_id) in turn. *)
         while not (Queue.is_empty to_release) do
           let rid, lock_id = Queue.pop to_release in
           Seqdlm.Lock_server.control server
             (Seqdlm.Types.Revoke_ack { rid; lock_id });
           Seqdlm.Lock_server.control server
             (Seqdlm.Types.Release { rid; lock_id })
         done;
         Sys.opaque_identity (Seqdlm.Lock_server.stats server).grants))

let micro_tests =
  Test.make_grouped ~name:"seqdlm-micro"
    [
      bench_extent_map_set;
      bench_extent_map_merge;
      bench_lcm;
      bench_layout_chunks;
      bench_dllist_churn;
      bench_interval_index_query;
      Test.make_grouped ~name:"arrivals" bench_arrival_gaps;
      bench_lock_server_contended_pass;
      bench_engine_events;
      bench_lock_handoff;
      bench_mini_cluster;
    ]

let micro_schema = "ccpfs.micro/1"

let run_micro () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  (* Hashtbl.iter order varies run to run; sort by test name so the
     table (and the JSON rows) are stable and diffable. *)
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Some est
          | _ -> None
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  print_endline "\n== microbenchmarks (ns/run) ==";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "%-55s %12.0f ns\n" name est
      | None -> Printf.printf "%-55s (no estimate)\n" name)
    rows;
  Obs.Results.clear ();
  List.iter
    (fun (name, est) ->
      Obs.Results.add
        (Obs.Json.Obj
           [
             ("name", Obs.Json.Str name);
             ( "ns_per_run",
               match est with
               | Some e -> Obs.Json.Float e
               | None -> Obs.Json.Null );
           ]))
    rows;
  let n = Obs.Results.write ~schema:micro_schema ~path:"BENCH_micro.json" () in
  Printf.printf "\nwrote BENCH_micro.json (%d rows)\n" n

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "all" || what = "experiments" then begin
    Experiments.Registry.run_all ();
    let n =
      Experiments.Registry.write_results ~path:"BENCH_experiments.json"
    in
    Printf.printf "\nwrote BENCH_experiments.json (%d rows)\n" n
  end;
  if what = "all" || what = "micro" then run_micro ()
